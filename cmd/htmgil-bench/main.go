// Command htmgil-bench regenerates the paper's tables and figures.
//
//	htmgil-bench -experiment all -quick
//	htmgil-bench -experiment fig5
//
// Experiments: micro fig5 fig6a fig6b fig7 fig8 fig9 aborts overhead
// ablation all. -quick uses scaled-down problem sizes and fewer thread
// counts; without it the full (paper-shaped) sweep runs, which takes tens
// of minutes on one host core.
package main

import (
	"flag"
	"fmt"
	"os"

	"htmgil/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to regenerate")
	quick := flag.Bool("quick", false, "scaled-down problem sizes")
	flag.Parse()
	if err := bench.ByName(*experiment, os.Stdout, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
