// Command htmgil-bench regenerates the paper's tables and figures.
//
//	htmgil-bench -experiment all -quick
//	htmgil-bench -experiment fig5 -parallel 8
//	htmgil-bench -experiment fig6b -quick -trace-summary
//	htmgil-bench -experiment fig8 -quick -report reports.json
//	htmgil-bench -experiment policy -quick -csv policy.csv
//	htmgil-bench -experiment hybrid -quick -report hybrid.json
//	htmgil-bench -experiment serving -quick -report serving.json
//	htmgil-bench -experiment resilience -quick -report resilience.json
//	htmgil-bench -experiment explore -quick
//	htmgil-bench -replay-schedule internal/explore/testdata/schedules/counter-flip2.json
//
// -list prints the experiment names: micro fig5 fig6a fig6b fig7 fig8
// fig9 aborts overhead ablation policy hybrid chaos serving resilience
// explore all.
// -quick uses scaled-down
// problem sizes and fewer thread counts; without it the full
// (paper-shaped) sweep runs, which takes tens of minutes on one host
// core. The policy experiment sweeps every contention-management policy
// of internal/policy over the NPB kernels and WEBrick, with per-policy
// abort-cause and fallback-reason attribution. The hybrid experiment
// compares the three-tier elision pipeline (HTM -> OCC -> GIL) against
// the two-tier paper runtime and the all-GIL baseline on the NPB kernels
// and WEBrick, with per-tier commit/abort attribution including OCC
// validation failures. The chaos experiment
// sweeps the deterministic fault profiles of internal/fault (spurious
// aborts, capacity jitter, network resets, timer jitter) with the elision
// circuit breaker and degradation watchdog on, reporting throughput under
// faults and time-to-recover; its reports carry the fault spec, seed,
// injection counters and breaker transitions. The serving experiment drives
// the WEBrick and Rails-lite worker pools open-loop on the large simulated
// server machines (htm.Server, 128/256 cores, 1200 client sessions):
// seeded Poisson/bursty/diurnal arrivals, Zipf route popularity, session
// affinity, slow-draining clients and a fault scenario, reporting exact
// p50/p99/p99.9/max latency and per-route SLO attainment. The resilience
// experiment stages a metastable failure on the WEBrick pool — an overload
// pulse co-timed with a connection-reset burst — and walks the protection
// ladder (legacy retries, client retry budgets, server admission control,
// full deadlines + brownout), reporting shed/gave-up/deadline-cancelled
// counts, SLO attainment and request-level time-to-recover (-1 when the
// service never climbs back out of the trap). The explore
// experiment runs
// the systematic schedule explorer (internal/explore) over its checker
// programs and fails on any serializability, progress, or trace-invariant
// violation; -replay-schedule FILE re-executes one schedule file emitted
// by the explorer byte-deterministically and verifies it still reproduces
// its recorded violation or clean fingerprint.
//
// Each configuration point is an independent deterministic simulation;
// -parallel N executes points on N workers (default: GOMAXPROCS). The
// tables, reports, and trace digests are byte-identical whatever N is.
//
// -trace-summary attaches an event aggregator to every run and appends
// per-point digests (top abort-causing yield points, length-adjustment
// timelines). -report FILE writes one machine-readable JSON record per
// configuration point ("-" for stdout); -csv FILE writes the same points
// as flat CSV rows. -cpuprofile/-memprofile write pprof profiles of the
// sweep for performance work.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"htmgil/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to regenerate (see -list)")
	list := flag.Bool("list", false, "print the valid experiment names and exit")
	replaySchedule := flag.String("replay-schedule", "", "replay a schedule file emitted by the explorer and verify it reproduces its recorded result")
	quick := flag.Bool("quick", false, "scaled-down problem sizes")
	parallel := flag.Int("parallel", 0, "workers executing configuration points (0 = GOMAXPROCS, 1 = sequential)")
	traceSummary := flag.Bool("trace-summary", false, "print per-point trace digests (abort PCs, length timelines)")
	report := flag.String("report", "", "write per-point JSON reports to this file (\"-\" = stdout)")
	csvOut := flag.String("csv", "", "write per-point CSV reports to this file (\"-\" = stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the sweep to this file")
	flag.Parse()

	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}

	if *replaySchedule != "" {
		if err := bench.ReplaySchedule(os.Stdout, *replaySchedule); err != nil {
			fatal(err)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	s := bench.NewSession(os.Stdout, *quick)
	s.TraceSummary = *traceSummary
	s.Parallel = *parallel
	if err := s.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *traceSummary {
		s.WriteTraceSummaries(os.Stdout)
	}
	if *report != "" {
		out := os.Stdout
		if *report != "-" {
			f, err := os.Create(*report)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := s.WriteReports(out); err != nil {
			fatal(err)
		}
	}
	if *csvOut != "" {
		out := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := s.WriteReportsCSV(out); err != nil {
			fatal(err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
