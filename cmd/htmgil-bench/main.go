// Command htmgil-bench regenerates the paper's tables and figures.
//
//	htmgil-bench -experiment all -quick
//	htmgil-bench -experiment fig5
//	htmgil-bench -experiment fig6b -quick -trace-summary
//	htmgil-bench -experiment fig8 -quick -report reports.json
//
// Experiments: micro fig5 fig6a fig6b fig7 fig8 fig9 aborts overhead
// ablation all. -quick uses scaled-down problem sizes and fewer thread
// counts; without it the full (paper-shaped) sweep runs, which takes tens
// of minutes on one host core.
//
// -trace-summary attaches an event aggregator to every run and appends
// per-point digests (top abort-causing yield points, length-adjustment
// timelines). -report FILE writes one machine-readable JSON record per
// configuration point ("-" for stdout).
package main

import (
	"flag"
	"fmt"
	"os"

	"htmgil/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to regenerate")
	quick := flag.Bool("quick", false, "scaled-down problem sizes")
	traceSummary := flag.Bool("trace-summary", false, "print per-point trace digests (abort PCs, length timelines)")
	report := flag.String("report", "", "write per-point JSON reports to this file (\"-\" = stdout)")
	flag.Parse()

	s := bench.NewSession(os.Stdout, *quick)
	s.TraceSummary = *traceSummary
	if err := s.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *traceSummary {
		s.WriteTraceSummaries(os.Stdout)
	}
	if *report != "" {
		out := os.Stdout
		if *report != "-" {
			f, err := os.Create(*report)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := s.WriteReports(out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}
