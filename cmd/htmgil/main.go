// Command htmgil runs a mini-Ruby program on the simulated interpreter.
//
//	htmgil -mode htm -machine zec12 script.rb
//	htmgil -mode gil -e 'puts 1 + 2'
//	htmgil -mode htm -policy backoff script.rb
//
// -policy selects the contention-management policy driving lock elision
// (paper-dynamic, fixed-N, backoff, lazy-subscription, occ-adaptive);
// "-policy list" prints them with descriptions.
//
// After the program finishes it can print the execution statistics the
// paper's evaluation is built from (-stats), and -trace out.jsonl streams
// every transaction/GIL/GC event of the run as JSON lines.
//
// -faults arms the deterministic fault-injection harness, e.g.
// "-faults spurious=30000,timerjitter=0.3,until=20000000", and -breaker
// enables the elision circuit breaker (with the livelock watchdog riding
// along when tracing is active). Injected faults and breaker transitions
// appear in -stats and in the -trace stream.
//
// The SQLite3-flavored datastore binding is always installed, so scripts
// can `$db = SQLite3.new` and issue CREATE KEYSPACE / UPDATE ... WHERE /
// range SELECT statements. -shards N splits keyspace fallbacks across N
// per-shard locks (htm mode only); per-shard occupancy shows up in -stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"htmgil"
	"htmgil/internal/compile"
)

func main() {
	mode := flag.String("mode", "htm", "execution mode: gil, htm, fgl, ideal")
	machine := flag.String("machine", "zec12", "machine profile: zec12, xeon")
	expr := flag.String("e", "", "program text (instead of a file)")
	txlen := flag.Int("txlen", 0, "fixed transaction length (0 = dynamic adjustment)")
	policyName := flag.String("policy", "", "contention-management policy (\"\" = paper default, \"list\" = show choices)")
	stats := flag.Bool("stats", false, "print execution statistics")
	dump := flag.Bool("dump", false, "disassemble the program instead of running it")
	traceOut := flag.String("trace", "", "write structured trace events to this JSONL file")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. spurious=30000,connreset=0.02,until=20000000")
	breaker := flag.Bool("breaker", false, "enable the elision circuit breaker (+ degradation watchdog)")
	shards := flag.Int("shards", 0, "sharded-GIL mode: one fallback lock per keyspace shard (0 = single GIL; htm mode only)")
	flag.Parse()

	if *policyName == "list" {
		for _, line := range htmgil.DescribePolicies() {
			fmt.Println(line)
		}
		return
	}
	if !htmgil.ValidPolicy(*policyName) {
		fmt.Fprintf(os.Stderr, "unknown policy %q; valid policies:\n", *policyName)
		for _, line := range htmgil.DescribePolicies() {
			fmt.Fprintln(os.Stderr, " ", line)
		}
		os.Exit(2)
	}

	var prof *htmgil.Profile
	switch *machine {
	case "zec12":
		prof = htmgil.ZEC12()
	case "xeon":
		prof = htmgil.XeonE3()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	var m htmgil.Mode
	switch *mode {
	case "gil":
		m = htmgil.ModeGIL
	case "htm":
		m = htmgil.ModeHTM
	case "fgl":
		m = htmgil.ModeFGL
	case "ideal":
		m = htmgil.ModeIdeal
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: htmgil [-mode M] [-machine P] [-stats] script.rb | -e 'code'")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	}

	opt := htmgil.DefaultOptions(prof, m)
	opt.TxLength = int32(*txlen)
	opt.Policy = *policyName
	opt.Shards = *shards
	opt.Out = os.Stdout
	if *faultSpec != "" {
		spec, err := htmgil.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.Faults = spec
	}
	if *breaker {
		opt.Breaker = true
		opt.Watchdog = true
	}
	var traceSink *htmgil.TraceJSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = htmgil.NewTraceJSONL(f)
		opt.Trace = htmgil.NewTraceRecorder(traceSink)
	}
	vmm := htmgil.NewMachineOpts(opt)
	vmm.InstallDatastore()
	if *dump {
		iseq, err := vmm.VM.CompileSource(src, "main")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(compile.Disassemble(iseq, vmm.VM.Syms))
		return
	}
	res, err := vmm.RunSource(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if traceSink != nil {
		if werr := traceSink.Err(); werr != nil {
			fmt.Fprintln(os.Stderr, "trace:", werr)
			os.Exit(1)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\n-- %s on %s --\n", m, prof.Name)
		fmt.Fprintf(os.Stderr, "virtual cycles: %d\n", res.Cycles)
		fmt.Fprintf(os.Stderr, "bytecodes:      %d\n", res.Stats.Bytecodes)
		fmt.Fprintf(os.Stderr, "threads:        %d\n", res.Stats.Threads)
		fmt.Fprintf(os.Stderr, "gc runs:        %d\n", res.Stats.GCs)
		if res.Stats.HTM != nil {
			fmt.Fprintf(os.Stderr, "transactions:   %d begun, %d committed, %.2f%% aborted\n",
				res.Stats.HTM.Begins, res.Stats.HTM.Commits, res.Stats.AbortRatio()*100)
			var regions []string
			for r := range res.Stats.ConflictRegions {
				regions = append(regions, r)
			}
			sort.Strings(regions)
			for _, r := range regions {
				fmt.Fprintf(os.Stderr, "  conflicts at %-14s %d\n", r, res.Stats.ConflictRegions[r])
			}
		}
		if len(res.Stats.ShardGIL) > 0 {
			fmt.Fprintf(os.Stderr, "shard GILs:     root %d acquisitions / %d hold cycles\n",
				res.Stats.RootGIL.Acquisitions, res.Stats.RootGIL.HoldCycles)
			for i, sg := range res.Stats.ShardGIL {
				fmt.Fprintf(os.Stderr, "  shard %-2d      %d acquisitions / %d hold cycles / %d fallbacks\n",
					i, sg.Acquisitions, sg.HoldCycles, res.Stats.ShardFallbacks[i])
			}
			fmt.Fprintf(os.Stderr, "  cross-shard leaks: %d\n", res.Stats.CrossShardLeaks)
		}
		if res.Stats.OCC != nil {
			fmt.Fprintf(os.Stderr, "sw transactions: %d begun, %d committed, %d aborted (%d validation failures)\n",
				res.Stats.OCC.Begins, res.Stats.OCC.Commits, res.Stats.OCC.Aborts, res.Stats.OCC.ValidationFailures)
		}
		if len(res.Stats.FaultCounts) > 0 {
			var chans []string
			for ch := range res.Stats.FaultCounts {
				chans = append(chans, ch)
			}
			sort.Strings(chans)
			fmt.Fprintf(os.Stderr, "injected faults:")
			for _, ch := range chans {
				fmt.Fprintf(os.Stderr, " %s=%d", ch, res.Stats.FaultCounts[ch])
			}
			fmt.Fprintln(os.Stderr)
		}
		if len(res.Stats.BreakerTransitions) > 0 {
			fmt.Fprintf(os.Stderr, "breaker (%d trips):", res.Stats.BreakerOpens)
			for _, tr := range res.Stats.BreakerTransitions {
				fmt.Fprintf(os.Stderr, " t=%d %s", tr.T, tr.State)
			}
			fmt.Fprintln(os.Stderr)
		}
		if len(res.Stats.Degradations) > 0 {
			var reasons []string
			for r := range res.Stats.Degradations {
				reasons = append(reasons, r)
			}
			sort.Strings(reasons)
			fmt.Fprintf(os.Stderr, "degradations:")
			for _, r := range reasons {
				fmt.Fprintf(os.Stderr, " %s=%d", r, res.Stats.Degradations[r])
			}
			fmt.Fprintln(os.Stderr)
		}
	}
}
