module htmgil

go 1.22
