// Chaos example: the deterministic fault-injection harness and the
// graceful-degradation machinery end to end. The CG kernel runs three times
// on zEC12 with the elision circuit breaker and the livelock watchdog on:
// once clean, once under a permanent spurious-abort storm, and once under
// the same storm with an until= horizon so the run can recover. The table
// shows how the storm inflates aborts and GIL fallbacks, when the breaker
// trips, and how long after the fault clears elision settles closed again —
// all byte-for-byte reproducible from the spec and seed.
package main

import (
	"fmt"
	"log"

	"htmgil"
	"htmgil/internal/npb"
	"htmgil/internal/vm"
)

func main() {
	const (
		kernel  = npb.CG
		threads = 8
		horizon = 30_000_000
	)
	prof := htmgil.ZEC12()
	params := npb.ParamsFor(kernel, npb.ClassS)

	profiles := []struct{ name, spec string }{
		{"clean", ""},
		{"storm", "spurious=6000"},
		{"storm+recover", fmt.Sprintf("spurious=6000,until=%d", horizon)},
	}

	fmt.Printf("%s on %s, %d threads — breaker + watchdog on\n", kernel, prof.Name, threads)
	fmt.Printf("%-14s %10s %6s %8s %10s %8s %6s %6s %10s\n",
		"profile", "Mcycles", "rel", "abort%", "fallbacks", "faults", "trips", "degr", "recover")

	var clean int64
	for _, p := range profiles {
		spec, err := htmgil.ParseFaultSpec(p.spec)
		if err != nil {
			log.Fatal(err)
		}
		opt := vm.DefaultOptions(prof, htmgil.ModeHTM)
		opt.Faults = spec
		opt.Breaker = true
		opt.Watchdog = true
		r, err := npb.Run(kernel, opt, threads, params)
		if err != nil {
			log.Fatal(err)
		}
		if !r.Valid {
			log.Fatalf("%s: checksum mismatch — faults must never corrupt results", p.name)
		}
		if clean == 0 {
			clean = r.Cycles
		}

		var faults, degr uint64
		for _, n := range r.Stats.FaultCounts {
			faults += n
		}
		for _, n := range r.Stats.Degradations {
			degr += n
		}
		// Time-to-recover: cycles between the fault horizon clearing and the
		// breaker's final settle into closed ("-" when there is no horizon).
		recover := "-"
		if spec.Until > 0 {
			recover = "never"
			if n := len(r.Stats.BreakerTransitions); n > 0 {
				if last := r.Stats.BreakerTransitions[n-1]; last.State == "closed" {
					d := last.T - spec.Until
					if d < 0 {
						d = 0
					}
					recover = fmt.Sprintf("+%d", d)
				}
			} else {
				recover = "untripped"
			}
		}
		fmt.Printf("%-14s %10.1f %6.2f %7.1f%% %10d %8d %6d %6d %10s\n",
			p.name, float64(r.Cycles)/1e6, float64(clean)/float64(r.Cycles),
			r.Stats.AbortRatio()*100,
			r.Stats.GILFallbacks, faults, r.Stats.BreakerOpens, degr, recover)
	}

	fmt.Printf("\n(rerun to see identical numbers — the harness is deterministic)\n")
}
