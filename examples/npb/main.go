// NPB example: run one NAS Parallel Benchmark kernel across thread counts
// and print the Figure 5-style scaling curve for GIL vs HTM-dynamic.
package main

import (
	"flag"
	"fmt"
	"log"

	"htmgil"
)

func main() {
	kernel := flag.String("kernel", "ft", "bt|cg|ft|is|lu|mg|sp|while|iterator")
	flag.Parse()
	b := htmgil.Bench(*kernel)

	base, err := htmgil.RunNPB(b, htmgil.ZEC12(), htmgil.ModeGIL, 1, htmgil.ClassS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on zEC12 (throughput, 1 = 1-thread GIL)\n", b)
	fmt.Printf("%-8s %12s %12s\n", "threads", "GIL", "HTM-dynamic")
	for _, th := range []int{1, 2, 4, 8, 12} {
		g, err := htmgil.RunNPB(b, htmgil.ZEC12(), htmgil.ModeGIL, th, htmgil.ClassS)
		if err != nil {
			log.Fatal(err)
		}
		h, err := htmgil.RunNPB(b, htmgil.ZEC12(), htmgil.ModeHTM, th, htmgil.ClassS)
		if err != nil {
			log.Fatal(err)
		}
		if !g.Valid || !h.Valid {
			log.Fatalf("validation failed at %d threads", th)
		}
		fmt.Printf("%-8d %12.2f %12.2f\n", th,
			float64(base.Cycles)/float64(g.Cycles),
			float64(base.Cycles)/float64(h.Cycles))
	}
}
