// Policies example: two contention-management policies from internal/policy
// side by side on one NPB kernel. paper-dynamic is the paper's Figure 3
// adjustment; occ-adaptive commits optimistically until a site proves hot,
// then pins it short. The table shows throughput (normalized to 1-thread
// GIL) and abort ratio for each as the thread count grows.
package main

import (
	"fmt"
	"log"

	"htmgil"
	"htmgil/internal/npb"
	"htmgil/internal/vm"
)

func main() {
	const kernel = npb.CG
	policies := [2]string{"paper-dynamic", "occ-adaptive"}

	prof := htmgil.ZEC12()
	params := npb.ParamsFor(kernel, npb.ClassS)

	baseOpt := vm.DefaultOptions(prof, htmgil.ModeGIL)
	base, err := npb.Run(kernel, baseOpt, 1, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on zEC12: %s vs %s (speedup over 1-thread GIL)\n",
		kernel, policies[0], policies[1])
	fmt.Printf("%-8s %14s %8s   %14s %8s\n",
		"threads", policies[0], "abort%", policies[1], "abort%")
	for _, threads := range []int{1, 2, 4, 8, 12} {
		row := fmt.Sprintf("%-8d", threads)
		for _, name := range policies {
			opt := vm.DefaultOptions(prof, htmgil.ModeHTM)
			opt.Policy = name
			r, err := npb.Run(kernel, opt, threads, params)
			if err != nil {
				log.Fatal(err)
			}
			if !r.Valid {
				log.Fatalf("%s with %d threads: checksum mismatch", name, threads)
			}
			row += fmt.Sprintf(" %14.2f %7.1f%%  ",
				float64(base.Cycles)/float64(r.Cycles), r.Stats.AbortRatio()*100)
		}
		fmt.Println(row)
	}
}
