// Webserver example: the paper's WEBrick experiment in miniature — a
// thread-per-request Ruby HTTP server under increasing client load,
// GIL vs HTM.
package main

import (
	"fmt"
	"log"

	"htmgil"
)

func main() {
	fmt.Println("WEBrick-style server on Xeon E3-1275 v3 (requests per virtual second)")
	fmt.Println("(1,000 requests per point: the dynamic transaction-length adjustment")
	fmt.Println(" needs a warm-up before HTM overtakes the GIL — the paper's own caveat)")
	fmt.Printf("%-8s %12s %12s %14s\n", "clients", "GIL", "HTM", "HTM abort%")
	for _, clients := range []int{1, 2, 4, 6} {
		g, err := htmgil.RunWEBrick(htmgil.XeonE3(), htmgil.ModeGIL, clients, 1000)
		if err != nil {
			log.Fatal(err)
		}
		h, err := htmgil.RunWEBrick(htmgil.XeonE3(), htmgil.ModeHTM, clients, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.0f %12.0f %13.1f%%\n",
			clients, g.Throughput, h.Throughput, h.AbortRatio*100)
	}
}
