// Datastore: drive a keyspace workload through the SQLite3-flavored
// binding, first with the single root GIL and then with four per-shard
// fallback locks, and compare cycles and fallback routing.
//
// Four threads hammer point UPDATEs with read-modify-write pairs on a
// shared keyspace. Under HTM most sections commit speculatively; the ones
// that abort persistently fall back to a lock. With -shards style routing
// (Options.Shards), a section whose aborted attempt touched exactly one
// shard serializes on that shard's lock instead of the root GIL, so
// fallback holders on different shards no longer exclude each other.
package main

import (
	"fmt"
	"log"

	"htmgil"
)

const program = `
$db = SQLite3.new
$db.execute("CREATE KEYSPACE kv ROWS 256")
threads = []
i = 0
while i < 4
  threads << Thread.new(i) do |me|
    j = 0
    while j < 48
      k = (me * 61 + j * 13) % 256
      r = $db.execute("SELECT * FROM kv WHERE key = " + k.to_s)
      v = r[0][1] + 1
      $db.execute("UPDATE kv SET val = " + v.to_s + " WHERE key = " + k.to_s)
      j += 1
    end
  end
  i += 1
end
threads.each do |t|
  t.join
end
sum = 0
rows = $db.execute("SELECT * FROM kv WHERE key >= 0 AND key < 256")
rows.each do |row|
  sum += row[1]
end
puts sum
`

func run(shards int) {
	opt := htmgil.DefaultOptions(htmgil.ZEC12(), htmgil.ModeHTM)
	opt.Shards = shards
	m := htmgil.NewMachineOpts(opt)
	m.InstallDatastore()
	res, err := m.RunSource(program)
	if err != nil {
		log.Fatal(err)
	}
	label := "single GIL"
	if shards > 1 {
		label = fmt.Sprintf("%d shard GILs", shards)
	}
	fmt.Printf("%-13s %12d cycles, %d GIL fallbacks", label, res.Cycles, res.Stats.GILFallbacks)
	if len(res.Stats.ShardGIL) > 0 {
		var shardFB uint64
		for _, n := range res.Stats.ShardFallbacks {
			shardFB += n
		}
		fmt.Printf(" (%d routed to shard locks, %d to root, %d cross-shard leaks)",
			shardFB, res.Stats.GILFallbacks-shardFB, res.Stats.CrossShardLeaks)
	}
	fmt.Println()
}

func main() {
	run(0)
	run(4)
}
