// Tuning example: the heart of the paper — fixed transaction lengths
// against the dynamic per-yield-point adjustment. Shows the tradeoff of
// Section 4.3: length 1 pays begin/end overhead, length 256 aborts
// constantly, and the dynamic adjustment finds the middle.
package main

import (
	"fmt"
	"log"

	"htmgil"
	"htmgil/internal/npb"
	"htmgil/internal/vm"
)

func main() {
	prof := htmgil.ZEC12()
	params := npb.ParamsFor(npb.FT, npb.ClassS)

	baseOpt := vm.DefaultOptions(prof, htmgil.ModeGIL)
	base, err := npb.Run(npb.FT, baseOpt, 1, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FT, 12 threads on zEC12: transaction-length tradeoff")
	fmt.Printf("%-14s %10s %10s %24s\n", "config", "speedup", "abort%", "yield-point lengths")
	for _, cfg := range []struct {
		name string
		len  int32
	}{{"HTM-1", 1}, {"HTM-16", 16}, {"HTM-256", 256}, {"HTM-dynamic", 0}} {
		opt := vm.DefaultOptions(prof, htmgil.ModeHTM)
		opt.TxLength = cfg.len
		r, err := npb.Run(npb.FT, opt, 12, params)
		if err != nil {
			log.Fatal(err)
		}
		hist := ""
		if cfg.len == 0 {
			short, long := 0, 0
			for l, n := range r.Stats.LengthHistogram {
				if l <= 16 {
					short += n
				} else {
					long += n
				}
			}
			hist = fmt.Sprintf("%d sites <=16, %d longer", short, long)
		}
		fmt.Printf("%-14s %10.2f %9.1f%% %24s\n",
			cfg.name, float64(base.Cycles)/float64(r.Cycles), r.Stats.AbortRatio()*100, hist)
	}
}
