// Resilience example: a metastable failure and the way out. The WEBrick
// worker pool serves open-loop traffic at ~75% utilization when an
// overload pulse (arrivals triple) lands together with a connection-reset
// burst. Unprotected, the stored backlog plus retry pressure keeps the
// service collapsed long after the pulse clears — recover stays -1. With
// the request-level protections on (client retry budgets, server admission
// control, deadlines, brownout priorities) the overload resolves into
// fast sheds and bounded queues, and the service snaps back within a
// couple of virtual seconds of the pulse ending. Both runs are
// byte-deterministic.
package main

import (
	"fmt"
	"log"

	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/netsim"
	"htmgil/internal/resilience"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

func get(path string) string {
	return "GET " + path + " HTTP/1.1\r\nHost: sim.example\r\nUser-Agent: open/1.0\r\nAccept: text/html\r\nConnection: close\r\n\r\n"
}

func main() {
	const (
		horizon    = 150_000_000 // 30 virtual seconds
		pulseStart = 50_000_000
		pulseEnd   = 100_000_000
		baseRate   = 21.0
	)
	prof := htm.Server(128)

	configs := []struct {
		name  string
		res   *resilience.Config
		retry *resilience.RetryConfig
	}{
		{name: "unprotected"},
		{name: "protected",
			res: &resilience.Config{
				MaxQueue:      16,
				Deadlines:     true,
				DeadlineSlack: 300_000,
				Brownout: &resilience.BrownoutConfig{
					EnterDelay: 1_000_000,
					ShedDelay:  2_500_000,
				},
			},
			retry: &resilience.RetryConfig{
				MaxAttempts: 4, Budget: 8, Refill: 0.5,
				BaseBackoff: 100_000, MaxBackoff: 3_200_000, JitterFrac: 0.5,
			}},
	}

	fmt.Printf("WEBrick pool on %s, 16 workers — 3x overload pulse + reset burst over [%dM,%dM)\n",
		prof.Name, pulseStart/1_000_000, pulseEnd/1_000_000)
	fmt.Printf("%-12s %6s %6s %7s %5s %7s %8s %10s\n",
		"config", "gen", "shed", "gaveup", "dlx", "tput", "slo", "recover")

	for _, c := range configs {
		deadlines := c.res != nil && c.res.Deadlines
		routes := []netsim.OpenRoute{
			{Name: "index", Request: get("/index.html"), SLOCycles: 2_000_000, Priority: 0},
			{Name: "about", Request: get("/about"), SLOCycles: 2_000_000, Priority: 2},
			{Name: "missing", Request: get("/missing"), SLOCycles: 1_500_000, Priority: 1},
		}
		if deadlines {
			routes[0].DeadlineCycles = 12_000_000
			routes[1].DeadlineCycles = 12_000_000
			routes[2].DeadlineCycles = 3_000_000
		}
		tracker := &resilience.RecoveryTracker{}
		gen := &netsim.OpenLoadGen{
			Seed: 7,
			Arrivals: netsim.ArrivalOpts{
				Kind:       netsim.ArrivalPoisson,
				RatePerSec: baseRate,
				Horizon:    horizon,
				PulseStart: pulseStart,
				PulseEnd:   pulseEnd,
				PulseMult:  3,
			},
			Routes:   routes,
			Sessions: 1200,
			Retry:    c.retry,
			OnOutcome: func(_, route int, arrival, done int64, outcome string) {
				ok := outcome == netsim.OutcomeCompleted &&
					done-arrival <= routes[route].SLOCycles
				tracker.Observe(done, ok)
			},
		}
		spec, err := fault.ParseSpec(fmt.Sprintf("connreset=0.3,from=%d,until=%d", pulseStart, pulseEnd))
		if err != nil {
			log.Fatal(err)
		}
		r, err := webrick.Run(webrick.Config{
			Prof: prof, Mode: vm.ModeHTM, Workers: 16,
			Open: gen, Faults: spec, Breaker: true, Watchdog: true,
			Resilience: c.res,
		})
		if err != nil {
			log.Fatal(err)
		}
		met, judged := 0, 0
		for i, route := range routes {
			for _, lat := range gen.Samples[i] {
				judged++
				if lat <= route.SLOCycles {
					met++
				}
			}
		}
		judged += gen.Shed + gen.GaveUp + gen.DeadlineExceeded
		recover := tracker.RecoverAt(pulseEnd)
		rec := fmt.Sprintf("%dM", recover/1_000_000)
		if recover < 0 {
			rec = "never"
		}
		fmt.Printf("%-12s %6d %6d %7d %5d %7.1f %7.1f%% %10s\n",
			c.name, gen.Generated, gen.Shed, gen.GaveUp, gen.DeadlineExceeded,
			r.Throughput, 100*float64(met)/float64(judged), rec)
	}
}
