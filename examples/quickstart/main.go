// Quickstart: run the same multi-threaded Ruby program under the original
// GIL and under the paper's HTM lock elision, and compare.
package main

import (
	"fmt"
	"log"

	"htmgil"
)

const program = `
counts = Array.new(8, 0)
m = Mutex.new
total = 0
threads = []
i = 0
while i < 8
  threads << Thread.new(i) do |me|
    local = 0
    j = 1
    while j <= 20000
      local += j
      j += 1
    end
    counts[me] = local
    m.synchronize do
      total += local
    end
  end
  i += 1
end
threads.each do |t|
  t.join
end
puts "total = #{total}"
`

func main() {
	for _, mode := range []htmgil.Mode{htmgil.ModeGIL, htmgil.ModeHTM} {
		m := htmgil.NewMachine(htmgil.ZEC12(), mode)
		res, err := m.RunSource(program)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s: %s  in %12d virtual cycles", mode, trimnl(res.Output), res.Cycles)
		if res.Stats.HTM != nil {
			fmt.Printf("  (%d transactions, %.1f%% aborted)",
				res.Stats.HTM.Begins, res.Stats.AbortRatio()*100)
		}
		fmt.Println()
	}
	fmt.Println("The HTM run uses all 12 simulated cores; the GIL run serializes.")
}

func trimnl(s string) string {
	for len(s) > 0 && s[len(s)-1] == '\n' {
		s = s[:len(s)-1]
	}
	return s
}
