#!/usr/bin/env bash
# covergate.sh — fail when statement coverage of ./internal/... (short mode)
# drops more than half a point below the recorded baseline.
#
#   scripts/covergate.sh           # check against scripts/coverage_baseline.txt
#   scripts/covergate.sh -update   # re-record the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

baseline_file=scripts/coverage_baseline.txt
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -short -count=1 -coverprofile="$profile" ./internal/... > /dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')

if [ "${1:-}" = "-update" ]; then
    echo "$total" > "$baseline_file"
    echo "coverage baseline updated to ${total}%"
    exit 0
fi

baseline=$(cat "$baseline_file")
awk -v t="$total" -v b="$baseline" 'BEGIN {
    if (t + 0.5 < b) {
        printf "FAIL: coverage %.1f%% fell below baseline %.1f%% (tolerance 0.5)\n", t, b
        exit 1
    }
    printf "coverage %.1f%% (baseline %.1f%%)\n", t, b
}'
