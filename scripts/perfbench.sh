#!/usr/bin/env bash
# perfbench.sh — the measurement harness behind EXPERIMENTS.md's
# "Performance" section. Runs the Go micro-benchmarks of the simulator's
# hot paths (simmem access, sched dispatch, one end-to-end sweep point),
# times a quick sweep at one worker and at N workers, and writes the
# results as machine-readable JSON (default: BENCH_2.json at the repo
# root).
#
# Environment knobs:
#   BENCH_EXPERIMENT   experiment for the timed sweep   (default fig6b)
#   BENCH_PARALLEL     worker count for the second run  (default nproc)
#   BENCH_BENCHTIME    go test -benchtime value         (default 2s)
#   BENCH_BASELINE_BIN optional path to a pre-built htmgil-bench from an
#                      older revision; when set, the same sweep is timed
#                      with it so the JSON carries a direct before/after.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=${1:-BENCH_2.json}
EXPERIMENT=${BENCH_EXPERIMENT:-fig6b}
PAR=${BENCH_PARALLEL:-$(nproc)}
BENCHTIME=${BENCH_BENCHTIME:-2s}
BASE_BIN=${BENCH_BASELINE_BIN:-}

echo "== building =="
go build -o /tmp/htmgil-bench-perf ./cmd/htmgil-bench

echo "== micro-benchmarks (${BENCHTIME}) =="
BENCHOUT=$(go test -run='^$' -bench=. -benchtime="$BENCHTIME" \
	./internal/simmem/ ./internal/sched/ ./internal/bench/ | tee /dev/stderr)

# time_sweep BIN WORKERS -> seconds (wall clock) on stdout. Older binaries
# (a pre-optimization baseline) may lack -parallel; they only run sequentially.
time_sweep() {
	local bin=$1 par=$2 t0 t1
	local flags=()
	if "$bin" -h 2>&1 | grep -q -- -parallel; then
		flags=(-parallel "$par")
	elif [ "$par" != 1 ]; then
		echo "error: $bin has no -parallel flag" >&2
		return 1
	fi
	t0=$(date +%s.%N)
	"$bin" -experiment "$EXPERIMENT" -quick "${flags[@]}" >/dev/null
	t1=$(date +%s.%N)
	awk -v a="$t0" -v b="$t1" 'BEGIN {printf "%.3f", b-a}'
}

echo "== timed quick sweep ($EXPERIMENT) =="
SEQ=$(time_sweep /tmp/htmgil-bench-perf 1)
echo "parallel=1:    ${SEQ}s"
PARSEC=$(time_sweep /tmp/htmgil-bench-perf "$PAR")
echo "parallel=$PAR:    ${PARSEC}s"

BASESEQ=null
if [ -n "$BASE_BIN" ]; then
	BASESEQ=$(time_sweep "$BASE_BIN" 1)
	echo "baseline ($BASE_BIN) parallel=1: ${BASESEQ}s"
fi

{
	echo "{"
	echo "  \"date\": \"$(date -u +%FT%TZ)\","
	echo "  \"host\": {\"cores\": $(nproc), \"go\": \"$(go version | awk '{print $3}')\"},"
	echo "  \"sweep\": {"
	echo "    \"experiment\": \"$EXPERIMENT\","
	echo "    \"quick\": true,"
	echo "    \"seconds_parallel_1\": $SEQ,"
	echo "    \"parallel\": $PAR,"
	echo "    \"seconds_parallel_n\": $PARSEC,"
	echo "    \"seconds_baseline_parallel_1\": $BASESEQ"
	echo "  },"
	echo "  \"benchmarks\": ["
	echo "$BENCHOUT" | awk '
		/^Benchmark/ {
			printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s}", sep, $1, $2, $3
			sep = ",\n"
		}
		END {print ""}'
	echo "  ]"
	echo "}"
} >"$OUT"
echo "wrote $OUT"
