package db

import (
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

// FuzzExec throws arbitrary statements at a pre-populated store. Any input
// may be rejected with an error, but none may panic the parser or walk an
// executor out of bounds.
func FuzzExec(f *testing.F) {
	for _, seed := range []string{
		"CREATE TABLE books (id, title, author)",
		"CREATE TABLE broken",
		"CREATE TABLE t ()",
		"CREATE TABLE t (, ,)",
		"CREATE KEYSPACE kv ROWS 100",
		"CREATE KEYSPACE kv ROWS",
		"CREATE KEYSPACE",
		"CREATE KEYSPACE z ROWS -3",
		"CREATE KEYSPACE z ROWS 99999999999999999999",
		"INSERT INTO books VALUES (1, 'Dune', 'Herbert')",
		"INSERT INTO t VALUES ('x, y', 2)",
		"INSERT INTO kv VALUES (1, 2)",
		"INSERT INTO kv VALUES (1)",
		"INSERT INTO kv VALUES",
		"INSERT INTO",
		"SELECT * FROM books",
		"SELECT * FROM books WHERE author = 'Lem'",
		"SELECT * FROM books WHERE id = 2",
		"SELECT * FROM kv WHERE key >= 10 AND key < 20",
		"SELECT * FROM kv WHERE key >= 20 AND key < 10",
		"SELECT * FROM kv WHERE key >= -9223372036854775808 AND key < 9223372036854775807",
		"SELECT * FROM kv WHERE",
		"SELECT * FROM kv WHERE key >= x AND key < y",
		"SELECT * FROM kv WHERE key >= 1 AND val < 2",
		"SELECT COUNT(*) FROM kv",
		"SELECT COUNT(*) FROM",
		"UPDATE kv SET val = 3 WHERE key = 1",
		"UPDATE kv SET val = 3 WHERE key >= 1 AND key < 5",
		"UPDATE kv SET",
		"UPDATE kv SET val",
		"UPDATE kv SET val = ",
		"UPDATE books SET title = 'X' WHERE id = 1",
		"UPDATE books SET title = 'X', author = 'Y'",
		"UPDATE",
		"DELETE FROM kv WHERE key = 1",
		"DELETE FROM kv WHERE key >= 0 AND key < 100",
		"DELETE FROM books WHERE id >= 1 AND id < 2",
		"DELETE FROM",
		"DROP TABLE books",
		"",
		" ",
		"WHERE",
		"SELECT * FROM kv WHERE key = 99999999999999999999",
	} {
		f.Add(seed)
	}
	opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeGIL)
	machine := vm.New(opt)
	f.Fuzz(func(t *testing.T, sql string) {
		// Oversize inputs only slow the fuzzer down; the parser sees the
		// same shapes at 4 KiB as at 4 MiB.
		if len(sql) > 4096 {
			t.Skip()
		}
		th := machine.SetupThread()
		s := NewStore()
		if _, _, err := s.Exec(th, "CREATE TABLE t (id, name)"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Exec(th, "INSERT INTO t VALUES (1, 'one')"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Exec(th, "CREATE KEYSPACE kv ROWS 64"); err != nil {
			t.Fatal(err)
		}
		s.Exec(th, sql) // must not panic
		s.Exec(th, sql) // repeating must not corrupt the store
		s.Exec(th, "SELECT COUNT(*) FROM t")
		s.Exec(th, "SELECT COUNT(*) FROM kv")
	})
}
