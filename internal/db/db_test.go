package db

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

func newThread(t *testing.T) (*vm.VM, *vm.RThread) {
	t.Helper()
	opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeGIL)
	machine := vm.New(opt)
	th := machine.SetupThread()
	return machine, th
}

func TestCreateInsertSelect(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustExec := func(q string) [][]Value {
		rows, _, err := s.Exec(th, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return rows
	}
	mustExec("CREATE TABLE books (id, title, author)")
	mustExec("INSERT INTO books VALUES (1, 'Dune', 'Herbert')")
	mustExec("INSERT INTO books VALUES (2, 'Solaris', 'Lem')")
	mustExec("INSERT INTO books VALUES (3, 'Fiasco', 'Lem')")

	rows := mustExec("SELECT * FROM books")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].Str != "Dune" || !rows[0][0].IsInt || rows[0][0].Int != 1 {
		t.Fatalf("row0 = %+v", rows[0])
	}

	rows = mustExec("SELECT * FROM books WHERE author = 'Lem'")
	if len(rows) != 2 {
		t.Fatalf("WHERE rows = %d", len(rows))
	}

	rows = mustExec("SELECT * FROM books WHERE id = 2")
	if len(rows) != 1 || rows[0][1].Str != "Solaris" {
		t.Fatalf("id lookup = %+v", rows)
	}

	rows = mustExec("SELECT COUNT(*) FROM books")
	if rows[0][0].Int != 3 {
		t.Fatalf("count = %+v", rows)
	}
}

func TestErrors(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	for _, q := range []string{
		"SELECT * FROM missing",
		"INSERT INTO missing VALUES (1)",
		"DROP TABLE x",
		"CREATE TABLE broken",
	} {
		if _, _, err := s.Exec(th, q); err == nil {
			t.Fatalf("no error for %q", q)
		}
	}
	s.Exec(th, "CREATE TABLE t (a, b)")
	if _, _, err := s.Exec(th, "INSERT INTO t VALUES (1)"); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	if _, _, err := s.Exec(th, "SELECT * FROM t WHERE nosuch = 1"); err == nil {
		t.Fatalf("unknown column accepted")
	}
}

func TestQuotedCommas(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	s.Exec(th, "CREATE TABLE t (a, b)")
	if _, _, err := s.Exec(th, "INSERT INTO t VALUES ('x, y', 2)"); err != nil {
		t.Fatal(err)
	}
	rows, _, _ := s.Exec(th, "SELECT * FROM t")
	if rows[0][0].Str != "x, y" {
		t.Fatalf("quoted comma mangled: %q", rows[0][0].Str)
	}
}

func TestRubyBinding(t *testing.T) {
	opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeGIL)
	machine := vm.New(opt)
	Install(machine)
	iseq, err := machine.CompileSource(`
db = SQLite3.new
db.execute("CREATE TABLE t (id, name)")
db.execute("INSERT INTO t VALUES (7, 'seven')")
rows = db.execute("SELECT * FROM t")
puts rows.length
puts rows[0][0]
puts rows[0][1]
`, "dbtest")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "1\n7\nseven\n") {
		t.Fatalf("output = %q", res.Output)
	}
}
