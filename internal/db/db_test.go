package db

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

func newThread(t *testing.T) (*vm.VM, *vm.RThread) {
	t.Helper()
	opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeGIL)
	machine := vm.New(opt)
	th := machine.SetupThread()
	return machine, th
}

func TestCreateInsertSelect(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustExec := func(q string) [][]Value {
		rows, _, err := s.Exec(th, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return rows
	}
	mustExec("CREATE TABLE books (id, title, author)")
	mustExec("INSERT INTO books VALUES (1, 'Dune', 'Herbert')")
	mustExec("INSERT INTO books VALUES (2, 'Solaris', 'Lem')")
	mustExec("INSERT INTO books VALUES (3, 'Fiasco', 'Lem')")

	rows := mustExec("SELECT * FROM books")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].Str != "Dune" || !rows[0][0].IsInt || rows[0][0].Int != 1 {
		t.Fatalf("row0 = %+v", rows[0])
	}

	rows = mustExec("SELECT * FROM books WHERE author = 'Lem'")
	if len(rows) != 2 {
		t.Fatalf("WHERE rows = %d", len(rows))
	}

	rows = mustExec("SELECT * FROM books WHERE id = 2")
	if len(rows) != 1 || rows[0][1].Str != "Solaris" {
		t.Fatalf("id lookup = %+v", rows)
	}

	rows = mustExec("SELECT COUNT(*) FROM books")
	if rows[0][0].Int != 3 {
		t.Fatalf("count = %+v", rows)
	}
}

func TestErrors(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	for _, q := range []string{
		"SELECT * FROM missing",
		"INSERT INTO missing VALUES (1)",
		"DROP TABLE x",
		"CREATE TABLE broken",
	} {
		if _, _, err := s.Exec(th, q); err == nil {
			t.Fatalf("no error for %q", q)
		}
	}
	s.Exec(th, "CREATE TABLE t (a, b)")
	if _, _, err := s.Exec(th, "INSERT INTO t VALUES (1)"); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	if _, _, err := s.Exec(th, "SELECT * FROM t WHERE nosuch = 1"); err == nil {
		t.Fatalf("unknown column accepted")
	}
}

func TestQuotedCommas(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	s.Exec(th, "CREATE TABLE t (a, b)")
	if _, _, err := s.Exec(th, "INSERT INTO t VALUES ('x, y', 2)"); err != nil {
		t.Fatal(err)
	}
	rows, _, _ := s.Exec(th, "SELECT * FROM t")
	if rows[0][0].Str != "x, y" {
		t.Fatalf("quoted comma mangled: %q", rows[0][0].Str)
	}
}

func TestScanEmptyRange(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustExec := func(q string) [][]Value {
		rows, _, err := s.Exec(th, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return rows
	}
	mustExec("CREATE TABLE t (id, name)")
	// A scan over a table with no rows returns the empty result, not an
	// error, for every query shape.
	if rows := mustExec("SELECT * FROM t"); len(rows) != 0 {
		t.Fatalf("empty table scan = %+v", rows)
	}
	if rows := mustExec("SELECT COUNT(*) FROM t"); rows[0][0].Int != 0 {
		t.Fatalf("empty table count = %+v", rows)
	}
	if rows := mustExec("DELETE FROM t"); rows[0][0].Int != 0 {
		t.Fatalf("empty table delete = %+v", rows)
	}
	// A WHERE range that matches nothing is equally empty.
	mustExec("INSERT INTO t VALUES (1, 'one')")
	if rows := mustExec("SELECT * FROM t WHERE id = 99"); len(rows) != 0 {
		t.Fatalf("no-match scan = %+v", rows)
	}
	if rows := mustExec("SELECT * FROM t WHERE name = 'missing'"); len(rows) != 0 {
		t.Fatalf("no-match string scan = %+v", rows)
	}
}

func TestScanSkipsDeletedKeys(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustExec := func(q string) [][]Value {
		rows, _, err := s.Exec(th, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return rows
	}
	mustExec("CREATE TABLE t (id, name)")
	mustExec("INSERT INTO t VALUES (1, 'one')")
	mustExec("INSERT INTO t VALUES (2, 'two')")
	mustExec("INSERT INTO t VALUES (3, 'three')")
	if rows := mustExec("DELETE FROM t WHERE id = 2"); rows[0][0].Int != 1 {
		t.Fatalf("delete count = %+v", rows)
	}
	// The deleted key is invisible to every later scan, and the survivors
	// keep their order and contents.
	if rows := mustExec("SELECT * FROM t WHERE id = 2"); len(rows) != 0 {
		t.Fatalf("deleted key still visible: %+v", rows)
	}
	rows := mustExec("SELECT * FROM t")
	if len(rows) != 2 || rows[0][1].Str != "one" || rows[1][1].Str != "three" {
		t.Fatalf("post-delete scan = %+v", rows)
	}
	if rows := mustExec("SELECT COUNT(*) FROM t"); rows[0][0].Int != 2 {
		t.Fatalf("post-delete count = %+v", rows)
	}
	// Deleting an already-deleted key is a zero-row no-op, not an error.
	if rows := mustExec("DELETE FROM t WHERE id = 2"); rows[0][0].Int != 0 {
		t.Fatalf("re-delete count = %+v", rows)
	}
	// Unconditional delete empties the table; inserts still work after.
	if rows := mustExec("DELETE FROM t"); rows[0][0].Int != 2 {
		t.Fatalf("delete-all count = %+v", rows)
	}
	mustExec("INSERT INTO t VALUES (4, 'four')")
	if rows := mustExec("SELECT * FROM t"); len(rows) != 1 || rows[0][0].Int != 4 {
		t.Fatalf("post-truncate insert = %+v", rows)
	}
}

// TestConcurrentUpdateDuringScan interleaves a scanning Ruby thread with a
// writer thread under the three-tier HTM runtime. Each DB#execute is one
// native operation, so every individual scan must observe an integral
// table state (counts only ever grow, between 0 and the final row count)
// even while inserts and deletes race with it; mutating statements must
// take the restricted-op path out of both transaction tiers.
func TestConcurrentUpdateDuringScan(t *testing.T) {
	for _, policy := range []string{"paper-dynamic", "occ-adaptive", "occ-first"} {
		t.Run(policy, func(t *testing.T) {
			opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeHTM)
			opt.Policy = policy
			machine := vm.New(opt)
			Install(machine)
			iseq, err := machine.CompileSource(`
$db = SQLite3.new
$db.execute("CREATE TABLE t (id, name)")
writer = Thread.new do
  i = 1
  while i <= 30
    $db.execute("INSERT INTO t VALUES (#{i}, 'row')")
    if i % 10 == 0
      $db.execute("DELETE FROM t WHERE id = #{i}")
    end
    i += 1
  end
end
bad = 0
last = 0
j = 0
while j < 40
  rows = $db.execute("SELECT COUNT(*) FROM t")
  n = rows[0][0]
  if n < 0
    bad += 1
  end
  last = n
  j += 1
end
writer.join
final = $db.execute("SELECT COUNT(*) FROM t")
puts bad
puts final[0][0]
`, "dbrace")
			if err != nil {
				t.Fatal(err)
			}
			res, err := machine.Run(iseq)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			if !strings.HasSuffix(res.Output, "0\n27\n") && !strings.Contains(res.Output, "\n0\n27\n") {
				t.Fatalf("%s: output = %q (want 0 bad scans, 27 final rows)", policy, res.Output)
			}
		})
	}
}

func TestRubyBinding(t *testing.T) {
	opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeGIL)
	machine := vm.New(opt)
	Install(machine)
	iseq, err := machine.CompileSource(`
db = SQLite3.new
db.execute("CREATE TABLE t (id, name)")
db.execute("INSERT INTO t VALUES (7, 'seven')")
rows = db.execute("SELECT * FROM t")
puts rows.length
puts rows[0][0]
puts rows[0][1]
`, "dbtest")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "1\n7\nseven\n") {
		t.Fatalf("output = %q", res.Output)
	}
}
