package db

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

func mustKS(t *testing.T, th *vm.RThread, s *Store, q string) [][]Value {
	t.Helper()
	rows, _, err := s.Exec(th, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rows
}

func TestKeyspaceBasic(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustKS(t, th, s, "CREATE KEYSPACE kv ROWS 100")

	// Bulk load: every key is live at val 0 right after create.
	rows := mustKS(t, th, s, "SELECT COUNT(*) FROM kv")
	if rows[0][0].Int != 100 {
		t.Fatalf("fresh count = %+v", rows)
	}
	rows = mustKS(t, th, s, "SELECT * FROM kv WHERE key = 42")
	if len(rows) != 1 || rows[0][0].Int != 42 || rows[0][1].Int != 0 {
		t.Fatalf("fresh point = %+v", rows)
	}

	// Update rewrites the row; the point lookup sees the new val.
	rows = mustKS(t, th, s, "UPDATE kv SET val = 7 WHERE key = 42")
	if rows[0][0].Int != 1 {
		t.Fatalf("update count = %+v", rows)
	}
	rows = mustKS(t, th, s, "SELECT * FROM kv WHERE key = 42")
	if len(rows) != 1 || rows[0][1].Int != 7 {
		t.Fatalf("post-update point = %+v", rows)
	}

	// Range scan is half-open and sorted by key.
	rows = mustKS(t, th, s, "SELECT * FROM kv WHERE key >= 40 AND key < 44")
	if len(rows) != 4 || rows[0][0].Int != 40 || rows[2][1].Int != 7 || rows[3][0].Int != 43 {
		t.Fatalf("range = %+v", rows)
	}

	// Delete tombstones; count and scans skip it.
	rows = mustKS(t, th, s, "DELETE FROM kv WHERE key = 42")
	if rows[0][0].Int != 1 {
		t.Fatalf("delete count = %+v", rows)
	}
	if rows = mustKS(t, th, s, "SELECT * FROM kv WHERE key = 42"); len(rows) != 0 {
		t.Fatalf("deleted key visible: %+v", rows)
	}
	if rows = mustKS(t, th, s, "SELECT COUNT(*) FROM kv"); rows[0][0].Int != 99 {
		t.Fatalf("post-delete count = %+v", rows)
	}
	if rows = mustKS(t, th, s, "SELECT * FROM kv WHERE key >= 40 AND key < 44"); len(rows) != 3 {
		t.Fatalf("post-delete range = %+v", rows)
	}

	// Insert revives only tombstoned keys; a live key inserts 0 rows.
	rows = mustKS(t, th, s, "INSERT INTO kv VALUES (42, 5)")
	if rows[0][0].Int != 1 {
		t.Fatalf("insert = %+v", rows)
	}
	rows = mustKS(t, th, s, "INSERT INTO kv VALUES (42, 9)")
	if rows[0][0].Int != 0 {
		t.Fatalf("double insert = %+v", rows)
	}
	rows = mustKS(t, th, s, "SELECT * FROM kv WHERE key = 42")
	if len(rows) != 1 || rows[0][1].Int != 5 {
		t.Fatalf("post-insert point = %+v", rows)
	}

	// WHERE val = v scans for matching generations.
	rows = mustKS(t, th, s, "SELECT * FROM kv WHERE val = 5")
	if len(rows) != 1 || rows[0][0].Int != 42 {
		t.Fatalf("val scan = %+v", rows)
	}
}

func TestKeyspaceEdgeCases(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustKS(t, th, s, "CREATE KEYSPACE kv ROWS 50")

	// UPDATE of a deleted row matches nothing — the tombstone hides it.
	mustKS(t, th, s, "DELETE FROM kv WHERE key = 10")
	if rows := mustKS(t, th, s, "UPDATE kv SET val = 3 WHERE key = 10"); rows[0][0].Int != 0 {
		t.Fatalf("update of deleted row = %+v", rows)
	}
	if rows := mustKS(t, th, s, "SELECT * FROM kv WHERE key = 10"); len(rows) != 0 {
		t.Fatalf("deleted row resurrected: %+v", rows)
	}
	// Re-deleting it is a zero-row no-op.
	if rows := mustKS(t, th, s, "DELETE FROM kv WHERE key = 10"); rows[0][0].Int != 0 {
		t.Fatalf("re-delete = %+v", rows)
	}

	// Empty and inverted ranges return nothing for every verb.
	if rows := mustKS(t, th, s, "SELECT * FROM kv WHERE key >= 20 AND key < 20"); len(rows) != 0 {
		t.Fatalf("empty range select = %+v", rows)
	}
	if rows := mustKS(t, th, s, "SELECT * FROM kv WHERE key >= 30 AND key < 20"); len(rows) != 0 {
		t.Fatalf("inverted range select = %+v", rows)
	}
	if rows := mustKS(t, th, s, "UPDATE kv SET val = 1 WHERE key >= 20 AND key < 20"); rows[0][0].Int != 0 {
		t.Fatalf("empty range update = %+v", rows)
	}
	if rows := mustKS(t, th, s, "DELETE FROM kv WHERE key >= 20 AND key < 20"); rows[0][0].Int != 0 {
		t.Fatalf("empty range delete = %+v", rows)
	}

	// Ranges clamp to the keyspace instead of walking off its end.
	if rows := mustKS(t, th, s, "SELECT * FROM kv WHERE key >= 45 AND key < 1000"); len(rows) != 5 {
		t.Fatalf("clamped range = %d rows", len(rows))
	}
	if rows := mustKS(t, th, s, "SELECT * FROM kv WHERE key >= -5 AND key < 2"); len(rows) != 2 {
		t.Fatalf("negative-lo range = %d rows", len(rows))
	}

	// Out-of-range point operations are empty, not errors — except INSERT,
	// whose bad key is visible in the statement text itself.
	if rows := mustKS(t, th, s, "SELECT * FROM kv WHERE key = 999"); len(rows) != 0 {
		t.Fatalf("out-of-range select = %+v", rows)
	}
	if rows := mustKS(t, th, s, "DELETE FROM kv WHERE key = -1"); rows[0][0].Int != 0 {
		t.Fatalf("out-of-range delete = %+v", rows)
	}
	if _, _, err := s.Exec(th, "INSERT INTO kv VALUES (999, 1)"); err == nil {
		t.Fatalf("out-of-range insert accepted")
	}

	// Malformed statements error cleanly.
	for _, q := range []string{
		"CREATE KEYSPACE kv ROWS 50",            // duplicate name
		"CREATE KEYSPACE z ROWS 0",              // empty keyspace
		"CREATE KEYSPACE z ROWS x",              // non-numeric size
		"CREATE KEYSPACE z ROWS 99999999999999", // oversize
		"UPDATE kv SET key = 3 WHERE key = 1",   // only val is writable
		"UPDATE kv SET val = -1 WHERE key = 1",  // negative generation
		"INSERT INTO kv VALUES (1)",             // arity
		"SELECT * FROM kv WHERE nosuch = 1",     // unknown column
	} {
		if _, _, err := s.Exec(th, q); err == nil {
			t.Fatalf("no error for %q", q)
		}
	}
}

func TestRegularTableUpdate(t *testing.T) {
	_, th := newThread(t)
	s := NewStore()
	mustKS(t, th, s, "CREATE TABLE t (id, name, n)")
	mustKS(t, th, s, "INSERT INTO t VALUES (1, 'one', 10)")
	mustKS(t, th, s, "INSERT INTO t VALUES (2, 'two', 20)")
	mustKS(t, th, s, "INSERT INTO t VALUES (3, 'three', 30)")

	// Point update through the index, multiple assignments.
	rows := mustKS(t, th, s, "UPDATE t SET name = 'TWO', n = 22 WHERE id = 2")
	if rows[0][0].Int != 1 {
		t.Fatalf("update count = %+v", rows)
	}
	rows = mustKS(t, th, s, "SELECT * FROM t WHERE id = 2")
	if len(rows) != 1 || rows[0][1].Str != "TWO" || rows[0][2].Int != 22 {
		t.Fatalf("post-update row = %+v", rows)
	}

	// Range update on an int column.
	rows = mustKS(t, th, s, "UPDATE t SET n = 0 WHERE id >= 1 AND id < 3")
	if rows[0][0].Int != 2 {
		t.Fatalf("range update count = %+v", rows)
	}
	rows = mustKS(t, th, s, "SELECT * FROM t WHERE n = 0")
	if len(rows) != 2 {
		t.Fatalf("post-range-update rows = %+v", rows)
	}

	// Updating the indexed column keeps the index consistent.
	mustKS(t, th, s, "UPDATE t SET id = 9 WHERE id = 3")
	if rows = mustKS(t, th, s, "SELECT * FROM t WHERE id = 3"); len(rows) != 0 {
		t.Fatalf("stale index hit = %+v", rows)
	}
	rows = mustKS(t, th, s, "SELECT * FROM t WHERE id = 9")
	if len(rows) != 1 || rows[0][1].Str != "three" {
		t.Fatalf("moved row = %+v", rows)
	}

	// A row grown past its original shadow span gets a fresh span.
	mustKS(t, th, s, "UPDATE t SET name = 'a much longer name than before, long enough to outgrow the span' WHERE id = 9")
	rows = mustKS(t, th, s, "SELECT * FROM t WHERE id = 9")
	if len(rows) != 1 || !strings.Contains(rows[0][1].Str, "longer") {
		t.Fatalf("grown row = %+v", rows)
	}

	// Update with no WHERE hits every row; unknown columns error.
	if rows = mustKS(t, th, s, "UPDATE t SET n = 5"); rows[0][0].Int != 3 {
		t.Fatalf("update-all count = %+v", rows)
	}
	if _, _, err := s.Exec(th, "UPDATE t SET nosuch = 1"); err == nil {
		t.Fatalf("unknown SET column accepted")
	}
	if _, _, err := s.Exec(th, "UPDATE t SET"); err == nil {
		t.Fatalf("empty SET accepted")
	}
}

// TestKeyspaceUnderTiers races point updates, deletes/inserts, and
// empty-range scans against point readers on a keyspace table under all
// three execution tiers (HTM-first, OCC-adaptive, OCC-first). Keyspace
// statements are speculative-safe, so mutations commit through HTM or OCC;
// the payload words double as a torn-row oracle — any atomicity violation
// fails the run itself.
func TestKeyspaceUnderTiers(t *testing.T) {
	for _, policy := range []string{"paper-dynamic", "occ-adaptive", "occ-first"} {
		t.Run(policy, func(t *testing.T) {
			opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeHTM)
			opt.Policy = policy
			machine := vm.New(opt)
			Install(machine)
			iseq, err := machine.CompileSource(ksRaceProgram, "ksrace")
			if err != nil {
				t.Fatal(err)
			}
			res, err := machine.Run(iseq)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			if !strings.HasSuffix(res.Output, "0\n0\n7\n") {
				t.Fatalf("%s: output = %q (want 0 bad reads, 0 empty-range rows, final val 7)", policy, res.Output)
			}
		})
	}
}

// TestKeyspaceSharded runs the same race with the keyspace sharded across
// per-shard GILs and checks that single-shard fallbacks actually land on
// shard GILs (per-shard stats populated, no cross-shard leaks).
func TestKeyspaceSharded(t *testing.T) {
	opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeHTM)
	opt.Policy = "paper-dynamic"
	opt.Shards = 4
	machine := vm.New(opt)
	Install(machine)
	iseq, err := machine.CompileSource(ksRaceProgram, "kssharded")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Output, "0\n0\n7\n") {
		t.Fatalf("output = %q", res.Output)
	}
	if len(res.Stats.ShardGIL) != 4 || len(res.Stats.ShardFallbacks) != 4 {
		t.Fatalf("shard stats missing: %d gil, %d fallbacks", len(res.Stats.ShardGIL), len(res.Stats.ShardFallbacks))
	}
	if res.Stats.CrossShardLeaks != 0 {
		t.Fatalf("cross-shard leaks = %d", res.Stats.CrossShardLeaks)
	}
}

// TestIndexConsistencyDuringDelete races indexed point lookups on a
// regular table against a writer that deletes and re-inserts the probed
// key. The index probe touches the key's bucket word, and delete/insert
// maintenance writes it, so a speculative prober racing a mutation is
// doomed rather than served a half-updated index: every lookup must return
// either the whole row or nothing.
func TestIndexConsistencyDuringDelete(t *testing.T) {
	for _, policy := range []string{"paper-dynamic", "occ-adaptive"} {
		t.Run(policy, func(t *testing.T) {
			opt := vm.DefaultOptions(htm.ZEC12(), vm.ModeHTM)
			opt.Policy = policy
			machine := vm.New(opt)
			Install(machine)
			iseq, err := machine.CompileSource(`
$db = SQLite3.new
$db.execute("CREATE TABLE t (id, n)")
$db.execute("INSERT INTO t VALUES (1, 111)")
$db.execute("INSERT INTO t VALUES (5, 555)")
$db.execute("INSERT INTO t VALUES (9, 999)")
writer = Thread.new do
  r = 0
  while r < 12
    $db.execute("DELETE FROM t WHERE id = 5")
    $db.execute("INSERT INTO t VALUES (5, 555)")
    r += 1
  end
end
bad = 0
j = 0
while j < 40
  rows = $db.execute("SELECT * FROM t WHERE id = 5")
  if rows.length > 1
    bad += 1
  end
  if rows.length == 1
    if rows[0][1] == 555
    else
      bad += 1
    end
  end
  j += 1
end
writer.join
fin = $db.execute("SELECT * FROM t WHERE id = 5")
puts bad
puts fin.length
puts fin[0][1]
`, "idxrace")
			if err != nil {
				t.Fatal(err)
			}
			res, err := machine.Run(iseq)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			if !strings.HasSuffix(res.Output, "0\n1\n555\n") {
				t.Fatalf("%s: output = %q", policy, res.Output)
			}
		})
	}
}

// ksRaceProgram: one writer updating and deleting/reviving hot keys, one
// reader doing point lookups and empty-range scans. Reads must only ever
// observe vals {0, 7, 9} (initial or one of the writer's generations).
const ksRaceProgram = `
$db = SQLite3.new
$db.execute("CREATE KEYSPACE kv ROWS 64")
writer = Thread.new do
  r = 0
  while r < 10
    i = 0
    while i < 8
      $db.execute("UPDATE kv SET val = 7 WHERE key = #{i}")
      $db.execute("UPDATE kv SET val = 9 WHERE key = #{i + 8}")
      $db.execute("DELETE FROM kv WHERE key = #{i + 16}")
      $db.execute("INSERT INTO kv VALUES (#{i + 16}, 7)")
      i += 1
    end
    r += 1
  end
end
bad = 0
emptyrows = 0
j = 0
while j < 60
  rows = $db.execute("SELECT * FROM kv WHERE key = #{j % 24}")
  if rows.length > 0
    v = rows[0][1]
    ok = 0
    if v == 0
      ok = 1
    end
    if v == 7
      ok = 1
    end
    if v == 9
      ok = 1
    end
    if ok == 0
      bad += 1
    end
  end
  e = $db.execute("SELECT * FROM kv WHERE key >= 40 AND key < 40")
  emptyrows += e.length
  j += 1
end
writer.join
$db.execute("UPDATE kv SET val = 7 WHERE key = 3")
fin = $db.execute("SELECT * FROM kv WHERE key = 3")
puts bad
puts emptyrows
puts fin[0][1]
`
