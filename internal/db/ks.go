// Keyspace tables: dense integer keyspaces living entirely in simulated
// memory, sized for the YCSB/TPC-C datastore workloads (millions of keys).
//
// A keyspace table has two implicit columns, key and val. Keys are dense
// integers 0..N-1; CREATE KEYSPACE bulk-loads all N rows at val 0 for free
// because simmem materializes lines lazily as zeros. Each row owns a
// 256-byte stride (its own cache line on the zEC12-like profiles) of which
// 8 words are active: word 0 holds the row's generation — the stored val,
// with ^0 as the tombstone — and words 1..7 hold payload words derived from
// (key, val) so that readers can detect torn rows. A point lookup probes a
// read-only index bucket region first, so index probes carry transactional
// footprint like the regular-table index.
//
// Because every byte of keyspace state lives in simulated memory, every
// verb — including UPDATE, DELETE, and INSERT — executes speculatively:
// writes land in the transaction's write set and roll back with it. This is
// what lets datastore mutations ride the HTM/OCC tiers instead of falling
// back to the GIL, and what gives range scans and TPC-C row groups
// footprints big enough to overflow HTM capacity.
//
// Sharding: a point statement subscribes the section to ShardOf(key, n)
// before touching the row, so single-shard sections may fall back to that
// shard's GIL. Range scans and counts touch every shard and therefore
// always fall back to the root GIL.
package db

import (
	"fmt"
	"strconv"
	"strings"

	"htmgil/internal/simmem"
	"htmgil/internal/vm"
)

const (
	// ksRowStrideWords spaces rows one 256-byte line apart so two keys
	// never share a conflict-detection granule.
	ksRowStrideWords = 32
	// ksRowActiveWords is the span read/written per row operation: the
	// generation word plus seven payload words.
	ksRowActiveWords = 8
	// ksIdxBuckets is the size of the read-only probe region.
	ksIdxBuckets = 4096
	// ksTombstone in the generation word marks a deleted row.
	ksTombstone = ^uint64(0)
	// ksMaxRows bounds a keyspace so a full scan stays finite.
	ksMaxRows = 1 << 24
)

// KTable is one keyspace table.
type KTable struct {
	Name string
	N    int64       // keys 0..N-1
	base simmem.Addr // row region: N * ksRowStrideWords words
	idx  simmem.Addr // index bucket region: ksIdxBuckets words
}

// mix64 is the splitmix64 finalizer; it drives the shard map, the index
// hash, and row payload generation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ShardOf maps a key onto one of n shards. The workload driver and the
// property tests use the same mapping, so it is exported and must stay
// stable: a splitmix64 finalizer over the key, reduced mod n.
func ShardOf(key int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix64(uint64(key)+0x9e3779b97f4a7c15) % uint64(n))
}

// payloadWord is the expected value of payload word j (1..7) of a row
// whose generation word holds g. Generation 0 pairs with all-zero payloads
// so freshly materialized (lazily zeroed) rows read as consistent.
func payloadWord(key int64, g uint64, j int) uint64 {
	if g == 0 {
		return 0
	}
	return mix64(uint64(key)*0x9e3779b97f4a7c15 + g + uint64(j)<<32)
}

func (k *KTable) rowBase(key int64) simmem.Addr {
	return k.base + simmem.Addr(key*ksRowStrideWords*simmem.WordBytes)
}

// touchKeyShard subscribes the section to the key's shard before any row
// or index touch — the ordering matters: in sharded mode a section must
// learn it conflicts with a held shard GIL before reading data that shard
// lock protects.
func touchKeyShard(t *vm.RThread, key int64) {
	t.TouchShard(ShardOf(key, t.ShardCount()))
}

// touchAllShards pins a whole-keyspace operation to every shard, which
// forces any GIL fallback onto the root GIL.
func touchAllShards(t *vm.RThread) {
	for s := 0; s < t.ShardCount(); s++ {
		t.TouchShard(s)
	}
}

// probe touches the key's index bucket word, giving point lookups the
// read footprint of an index probe.
func (k *KTable) probe(t *vm.RThread, key int64) {
	b := mix64(uint64(key)) % ksIdxBuckets
	t.TouchRead(k.idx + simmem.Addr(b*simmem.WordBytes))
}

// readRow reads the row's active span and returns the generation plus
// whether the payload words are consistent with it.
func (k *KTable) readRow(t *vm.RThread, key int64) (g uint64, consistent bool) {
	base := k.rowBase(key)
	g = t.TouchRead(base).Bits
	consistent = true
	for j := 1; j < ksRowActiveWords; j++ {
		w := t.TouchRead(base + simmem.Addr(j*simmem.WordBytes))
		if g != ksTombstone && w.Bits != payloadWord(key, g, j) {
			consistent = false
		}
	}
	return g, consistent
}

// writeRow rewrites the row's active span for generation g.
func (k *KTable) writeRow(t *vm.RThread, key int64, g uint64) {
	base := k.rowBase(key)
	t.TouchWrite(base, simmem.Word{Bits: g})
	for j := 1; j < ksRowActiveWords; j++ {
		t.TouchWrite(base+simmem.Addr(j*simmem.WordBytes), simmem.Word{Bits: payloadWord(key, g, j)})
	}
}

// tornRow handles an inconsistent row read. Inside a transaction the read
// may be garbage from a doomed speculation — never surface it as an error;
// doom the transaction and redo the statement, where a consistent re-read
// (or the GIL fallback) decides for real. Outside a transaction a torn row
// is a genuine atomicity violation: the store doubles as its own oracle.
func tornRow(t *vm.RThread, k *KTable, key int64) error {
	if t.InTx() {
		t.RestrictedOp()
		return vm.ErrRedo()
	}
	return fmt.Errorf("db: torn row %d in keyspace %q", key, k.Name)
}

// createKeyspace handles `CREATE KEYSPACE name ROWS n`.
func (s *Store) createKeyspace(t *vm.RThread, q string) error {
	f := strings.Fields(q)
	if len(f) != 5 || !strings.EqualFold(f[3], "ROWS") {
		return fmt.Errorf("db: bad CREATE KEYSPACE syntax (want CREATE KEYSPACE name ROWS n)")
	}
	name := f[2]
	n, err := strconv.ParseInt(f[4], 10, 64)
	if err != nil || n <= 0 {
		return fmt.Errorf("db: bad keyspace size %q", f[4])
	}
	if n > ksMaxRows {
		return fmt.Errorf("db: keyspace size %d exceeds %d", n, ksMaxRows)
	}
	if s.Tables[name] != nil || s.KTables[name] != nil {
		return fmt.Errorf("db: table %q already exists", name)
	}
	k := &KTable{Name: name, N: n}
	k.base = t.ReserveShadow("db:"+name, int(n)*ksRowStrideWords*simmem.WordBytes)
	k.idx = t.ReserveShadow("db:"+name+":idx", ksIdxBuckets*simmem.WordBytes)
	s.KTables[name] = k
	return nil
}

// ksCols are the implicit columns of every keyspace table.
var ksCols = []string{"key", "val"}

// ksClampRange clamps a parsed range onto the keyspace.
func (k *KTable) clamp(lo, hi int64) (int64, int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > k.N {
		hi = k.N
	}
	return lo, hi
}

// ksSelect handles SELECT * on a keyspace: a point lookup via the index, a
// half-open range scan, a val-match scan, or a full scan.
func (s *Store) ksSelect(t *vm.RThread, k *KTable, q string) ([][]Value, []string, error) {
	w, err := parseWhereCols(ksCols, q)
	if err != nil {
		return nil, nil, err
	}
	if w.col == 0 && !w.isRange {
		// Point lookup.
		if !w.val.IsInt {
			return nil, nil, fmt.Errorf("db: keyspace key must be an integer")
		}
		key := w.val.Int
		if key < 0 || key >= k.N {
			return nil, ksCols, nil
		}
		touchKeyShard(t, key)
		k.probe(t, key)
		g, ok := k.readRow(t, key)
		if !ok {
			return nil, nil, tornRow(t, k, key)
		}
		if g == ksTombstone {
			return nil, ksCols, nil
		}
		return [][]Value{{{IsInt: true, Int: key}, {IsInt: true, Int: int64(g)}}}, ksCols, nil
	}
	// Range or full scan (including WHERE val = v): touches every shard.
	lo, hi := int64(0), k.N
	if w.isRange && w.col == 0 {
		lo, hi = k.clamp(w.lo, w.hi)
	}
	touchAllShards(t)
	var rows [][]Value
	for key := lo; key < hi; key++ {
		g, ok := k.readRow(t, key)
		if !ok {
			return nil, nil, tornRow(t, k, key)
		}
		if g == ksTombstone {
			continue
		}
		row := []Value{{IsInt: true, Int: key}, {IsInt: true, Int: int64(g)}}
		if w.match(row) {
			rows = append(rows, row)
		}
	}
	return rows, ksCols, nil
}

// ksCount counts live rows, reading every generation word.
func (s *Store) ksCount(t *vm.RThread, k *KTable) ([][]Value, []string, error) {
	touchAllShards(t)
	var n int64
	for key := int64(0); key < k.N; key++ {
		if t.TouchRead(k.rowBase(key)).Bits != ksTombstone {
			n++
		}
	}
	return [][]Value{{{IsInt: true, Int: n}}}, []string{"count"}, nil
}

// ksUpdate handles `UPDATE ks SET val = v [WHERE ...]`: matching live rows
// get their whole active span rewritten for the new generation. Updates of
// deleted (tombstoned) rows match nothing.
func (s *Store) ksUpdate(t *vm.RThread, k *KTable, q string) ([][]Value, []string, error) {
	upper := upperASCII(q)
	si := strings.Index(upper, " SET ")
	if si < 0 {
		return nil, nil, fmt.Errorf("db: UPDATE without SET")
	}
	setPart := q[si+5:]
	if wi := strings.Index(upperASCII(setPart), "WHERE"); wi >= 0 {
		setPart = setPart[:wi]
	}
	cname, v, err := splitCmp(setPart, "=")
	if err != nil || !strings.EqualFold(cname, "val") || !v.IsInt || v.Int < 0 {
		return nil, nil, fmt.Errorf("db: keyspace UPDATE must be SET val = <nonnegative int>")
	}
	g := uint64(v.Int)
	w, err := parseWhereCols(ksCols, q)
	if err != nil {
		return nil, nil, err
	}
	var updated int64
	if w.col == 0 && !w.isRange {
		if !w.val.IsInt {
			return nil, nil, fmt.Errorf("db: keyspace key must be an integer")
		}
		key := w.val.Int
		if key >= 0 && key < k.N {
			touchKeyShard(t, key)
			k.probe(t, key)
			old, ok := k.readRow(t, key)
			if !ok {
				return nil, nil, tornRow(t, k, key)
			}
			if old != ksTombstone {
				k.writeRow(t, key, g)
				updated++
			}
		}
	} else {
		lo, hi := int64(0), k.N
		if w.isRange && w.col == 0 {
			lo, hi = k.clamp(w.lo, w.hi)
		}
		touchAllShards(t)
		for key := lo; key < hi; key++ {
			old, ok := k.readRow(t, key)
			if !ok {
				return nil, nil, tornRow(t, k, key)
			}
			row := []Value{{IsInt: true, Int: key}, {IsInt: true, Int: int64(old)}}
			if old == ksTombstone || !w.match(row) {
				continue
			}
			k.writeRow(t, key, g)
			updated++
		}
	}
	return [][]Value{{{IsInt: true, Int: updated}}}, []string{"updated"}, nil
}

// ksDelete tombstones matching live rows (one generation-word write each).
func (s *Store) ksDelete(t *vm.RThread, k *KTable, q string) ([][]Value, []string, error) {
	w, err := parseWhereCols(ksCols, q)
	if err != nil {
		return nil, nil, err
	}
	var deleted int64
	if w.col == 0 && !w.isRange {
		if !w.val.IsInt {
			return nil, nil, fmt.Errorf("db: keyspace key must be an integer")
		}
		key := w.val.Int
		if key >= 0 && key < k.N {
			touchKeyShard(t, key)
			k.probe(t, key)
			g, ok := k.readRow(t, key)
			if !ok {
				return nil, nil, tornRow(t, k, key)
			}
			if g != ksTombstone {
				t.TouchWrite(k.rowBase(key), simmem.Word{Bits: ksTombstone})
				deleted++
			}
		}
	} else {
		lo, hi := int64(0), k.N
		if w.isRange && w.col == 0 {
			lo, hi = k.clamp(w.lo, w.hi)
		}
		touchAllShards(t)
		for key := lo; key < hi; key++ {
			g, ok := k.readRow(t, key)
			if !ok {
				return nil, nil, tornRow(t, k, key)
			}
			row := []Value{{IsInt: true, Int: key}, {IsInt: true, Int: int64(g)}}
			if g == ksTombstone || !w.match(row) {
				continue
			}
			t.TouchWrite(k.rowBase(key), simmem.Word{Bits: ksTombstone})
			deleted++
		}
	}
	return [][]Value{{{IsInt: true, Int: deleted}}}, []string{"deleted"}, nil
}

// ksInsert handles `INSERT INTO ks VALUES (key, val)`. Only tombstoned
// rows accept an insert (the keyspace is dense and bulk-loaded at create).
// Inserting over a live row inserts nothing and reports 0 — erroring here
// would let a doomed speculation fabricate a fatal duplicate-key error
// from a stale read.
func (s *Store) ksInsert(t *vm.RThread, k *KTable, q string) ([][]Value, []string, error) {
	open := strings.Index(q, "(")
	closeP := strings.LastIndex(q, ")")
	if open < 0 || closeP < open {
		return nil, nil, fmt.Errorf("db: bad INSERT syntax")
	}
	toks := splitCSV(q[open+1 : closeP])
	if len(toks) != 2 {
		return nil, nil, fmt.Errorf("db: keyspace INSERT wants (key, val)")
	}
	kv, vv := parseValue(toks[0]), parseValue(toks[1])
	if !kv.IsInt || !vv.IsInt || vv.Int < 0 {
		return nil, nil, fmt.Errorf("db: keyspace INSERT wants integer key and nonnegative val")
	}
	key := kv.Int
	if key < 0 || key >= k.N {
		return nil, nil, fmt.Errorf("db: key %d out of range [0,%d)", key, k.N)
	}
	touchKeyShard(t, key)
	k.probe(t, key)
	g, ok := k.readRow(t, key)
	if !ok {
		return nil, nil, tornRow(t, k, key)
	}
	var inserted int64
	if g == ksTombstone {
		k.writeRow(t, key, uint64(vv.Int))
		inserted = 1
	}
	return [][]Value{{{IsInt: true, Int: inserted}}}, []string{"inserted"}, nil
}
