// Package db is an embedded, SQLite3-flavoured table store used by the
// Rails-like benchmark and the datastore workloads. It runs as a native
// extension: one DB#execute call is a single native operation with no yield
// points inside, and its row storage lives in simulated memory, so queries
// contribute large transactional footprints — mirroring how the SQLite C
// extension behaved under the paper's GIL elision (87% of Rails aborts were
// footprint overflows in extension code).
//
// Two table kinds exist:
//
//   - Regular tables hold their rows host-side with a per-row shadow span in
//     simulated memory plus a hashed index on the first column (bucket words
//     in simulated memory, so index probes carry transactional footprint).
//     Mutations update host state and must run under the GIL (restricted
//     operations in a transaction).
//   - Keyspace tables (CREATE KEYSPACE, see ks.go) hold a dense integer
//     keyspace entirely in simulated memory. Every statement on them is
//     speculative-safe: updates and deletes write through the transaction
//     and roll back with it.
//
// Supported statements:
//
//	CREATE TABLE name (col1, col2, ...)
//	CREATE KEYSPACE name ROWS n
//	INSERT INTO name VALUES (v1, v2, ...)
//	SELECT * FROM name
//	SELECT * FROM name WHERE col = value
//	SELECT * FROM name WHERE col >= lo AND col < hi
//	SELECT COUNT(*) FROM name
//	UPDATE name SET col = v[, col = v ...] [WHERE ...]
//	DELETE FROM name [WHERE ...]
package db

import (
	"fmt"
	"strconv"
	"strings"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
	"htmgil/internal/vm"
)

// Value is a stored cell: integer or string.
type Value struct {
	IsInt bool
	Int   int64
	Str   string
}

// idxBuckets is the bucket count of a regular table's first-column index.
const idxBuckets = 64

// Table is one regular table: column names plus host-side rows. Each row
// owns a shadow span in simulated memory that queries touch when they scan
// it, and the first column is indexed (host hash map + one simulated bucket
// word per hash bucket, touched on probe and maintenance).
type Table struct {
	Name    string
	Cols    []string
	Rows    [][]Value
	shadows []simmem.Addr // base of each row's shadow span
	spans   []int         // word count of each row's shadow span

	index   map[string][]int // first-column value -> row indices
	idxBase simmem.Addr      // bucket words (idxBuckets)
	hasIdx  bool
}

// Store is a database instance.
type Store struct {
	Tables  map[string]*Table
	KTables map[string]*KTable
}

// NewStore creates an empty database.
func NewStore() *Store {
	return &Store{Tables: make(map[string]*Table), KTables: make(map[string]*KTable)}
}

// SpeculativeSafe reports whether a statement may execute inside a
// transaction without a restricted-op fallback. Reads always may. Keyspace
// tables keep all state in simulated memory, so every verb on them is
// speculative (writes land in the transaction's write set and roll back
// with it). Mutations of regular tables update host-side state and must
// not.
func (s *Store) SpeculativeSafe(sql string) bool {
	q := strings.TrimSpace(sql)
	upper := upperASCII(q)
	switch {
	case strings.HasPrefix(upper, "SELECT"):
		return true
	case strings.HasPrefix(upper, "UPDATE"):
		return s.KTables[tableName(q, "UPDATE")] != nil
	case strings.HasPrefix(upper, "INSERT INTO"):
		return s.KTables[tableName(q, "INTO")] != nil
	case strings.HasPrefix(upper, "DELETE FROM"):
		return s.KTables[tableName(q, "FROM")] != nil
	default:
		return false
	}
}

// Exec parses and executes one statement. Row shadow allocation and the
// scan touches go through the thread's accessor so they participate in
// transactions.
func (s *Store) Exec(t *vm.RThread, sql string) ([][]Value, []string, error) {
	q := strings.TrimSpace(sql)
	upper := upperASCII(q)
	switch {
	case strings.HasPrefix(upper, "CREATE TABLE"):
		return nil, nil, s.create(t, q)
	case strings.HasPrefix(upper, "CREATE KEYSPACE"):
		return nil, nil, s.createKeyspace(t, q)
	case strings.HasPrefix(upper, "INSERT INTO"):
		if k := s.KTables[tableName(q, "INTO")]; k != nil {
			return s.ksInsert(t, k, q)
		}
		return nil, nil, s.insert(t, q)
	case strings.HasPrefix(upper, "SELECT COUNT(*) FROM"):
		name := tableName(q, "FROM")
		if k := s.KTables[name]; k != nil {
			return s.ksCount(t, k)
		}
		tab := s.Tables[name]
		if tab == nil {
			return nil, nil, fmt.Errorf("db: no such table %q", name)
		}
		s.scan(t, tab, where{col: -1})
		return [][]Value{{{IsInt: true, Int: int64(len(tab.Rows))}}}, []string{"count"}, nil
	case strings.HasPrefix(upper, "SELECT * FROM"):
		if k := s.KTables[tableName(q, "FROM")]; k != nil {
			return s.ksSelect(t, k, q)
		}
		return s.selectAll(t, q)
	case strings.HasPrefix(upper, "UPDATE"):
		if k := s.KTables[tableName(q, "UPDATE")]; k != nil {
			return s.ksUpdate(t, k, q)
		}
		n, err := s.updateRows(t, q)
		if err != nil {
			return nil, nil, err
		}
		return [][]Value{{{IsInt: true, Int: int64(n)}}}, []string{"updated"}, nil
	case strings.HasPrefix(upper, "DELETE FROM"):
		if k := s.KTables[tableName(q, "FROM")]; k != nil {
			return s.ksDelete(t, k, q)
		}
		n, err := s.deleteRows(t, q)
		if err != nil {
			return nil, nil, err
		}
		return [][]Value{{{IsInt: true, Int: int64(n)}}}, []string{"deleted"}, nil
	default:
		return nil, nil, fmt.Errorf("db: unsupported statement %q", sql)
	}
}

// upperASCII uppercases ASCII letters only. Unlike strings.ToUpper it
// never changes the byte length (invalid UTF-8 sequences stay put instead
// of becoming replacement runes), so indexes found in its result are valid
// in the original string.
func upperASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// tableName extracts the identifier following the keyword `after`. Returns
// "" when the keyword is absent or nothing follows it.
func tableName(q, after string) string {
	idx := strings.Index(upperASCII(q), after)
	if idx < 0 {
		return ""
	}
	rest := strings.TrimSpace(q[idx+len(after):])
	end := strings.IndexAny(rest, " (")
	if end < 0 {
		return rest
	}
	return rest[:end]
}

func (s *Store) create(t *vm.RThread, q string) error {
	name := tableName(q, "TABLE")
	if name == "" {
		return fmt.Errorf("db: bad CREATE TABLE syntax")
	}
	open := strings.Index(q, "(")
	closeP := strings.LastIndex(q, ")")
	if open < 0 || closeP < open {
		return fmt.Errorf("db: bad CREATE TABLE syntax")
	}
	var cols []string
	for _, c := range strings.Split(q[open+1:closeP], ",") {
		fields := strings.Fields(strings.TrimSpace(c))
		if len(fields) == 0 {
			return fmt.Errorf("db: empty column name in CREATE TABLE")
		}
		cols = append(cols, fields[0])
	}
	if len(cols) == 0 {
		return fmt.Errorf("db: CREATE TABLE with no columns")
	}
	idxBase, err := t.AllocShadow(idxBuckets)
	if err != nil {
		return err
	}
	s.Tables[name] = &Table{
		Name:    name,
		Cols:    cols,
		index:   make(map[string][]int),
		idxBase: idxBase,
		hasIdx:  true,
	}
	return nil
}

func parseValue(tok string) Value {
	tok = strings.TrimSpace(tok)
	if len(tok) >= 2 && (tok[0] == '\'' || tok[0] == '"') {
		return Value{Str: tok[1 : len(tok)-1]}
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err == nil {
		return Value{IsInt: true, Int: n}
	}
	return Value{Str: tok}
}

// valKey canonicalizes a value for index lookup.
func valKey(v Value) string {
	if v.IsInt {
		return "i:" + strconv.FormatInt(v.Int, 10)
	}
	return "s:" + v.Str
}

// bucketOf hashes a value into the regular-table index bucket range.
func bucketOf(v Value) int {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, b := range []byte(valKey(v)) {
		h = mix64(h + uint64(b))
	}
	return int(h % idxBuckets)
}

// touchBucket touches a value's index bucket word: read on probe, write on
// maintenance. Probes therefore subscribe to the bucket line, and any index
// mutation of the same bucket dooms them — the index stays transactionally
// consistent with the rows it points at.
func (tab *Table) touchBucket(t *vm.RThread, v Value, write bool) {
	if !tab.hasIdx {
		return
	}
	a := tab.idxBase + simmem.Addr(bucketOf(v)*simmem.WordBytes)
	if write {
		t.TouchWrite(a, simmem.Word{Bits: t.TouchRead(a).Bits + 1})
	} else {
		t.TouchRead(a)
	}
}

// rebuildIndex recomputes the host index after row indices shifted.
func (tab *Table) rebuildIndex() {
	if !tab.hasIdx {
		return
	}
	tab.index = make(map[string][]int, len(tab.Rows))
	for ri, row := range tab.Rows {
		k := valKey(row[0])
		tab.index[k] = append(tab.index[k], ri)
	}
}

func rowWords(row []Value) int {
	words := 0
	for _, v := range row {
		words += 1 + len(v.Str)/simmem.WordBytes
	}
	return words
}

func (s *Store) insert(t *vm.RThread, q string) error {
	name := tableName(q, "INTO")
	tab := s.Tables[name]
	if tab == nil {
		return fmt.Errorf("db: no such table %q", name)
	}
	open := strings.Index(q, "(")
	closeP := strings.LastIndex(q, ")")
	if open < 0 || closeP < open {
		return fmt.Errorf("db: bad INSERT syntax")
	}
	var row []Value
	for _, tok := range splitCSV(q[open+1 : closeP]) {
		row = append(row, parseValue(tok))
	}
	if len(row) != len(tab.Cols) {
		return fmt.Errorf("db: %d values for %d columns", len(row), len(tab.Cols))
	}
	// Shadow storage: one word per cell plus string payload words.
	words := rowWords(row)
	base, err := t.AllocShadow(words)
	if err != nil {
		return err
	}
	for i := 0; i < words; i++ {
		t.TouchWrite(base+simmem.Addr(i*simmem.WordBytes), simmem.Word{Bits: uint64(i) + 1})
	}
	ri := len(tab.Rows)
	tab.Rows = append(tab.Rows, row)
	tab.shadows = append(tab.shadows, base)
	tab.spans = append(tab.spans, words)
	if tab.hasIdx {
		k := valKey(row[0])
		tab.index[k] = append(tab.index[k], ri)
		tab.touchBucket(t, row[0], true)
	}
	return nil
}

// splitCSV splits on commas outside quotes.
func splitCSV(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// where is a parsed WHERE clause: match-all (col -1), a point predicate
// (col = val), or a half-open integer range (col >= lo AND col < hi).
type where struct {
	col     int
	isRange bool
	val     Value
	lo, hi  int64
}

// match reports whether a row satisfies the clause.
func (w where) match(row []Value) bool {
	if w.col < 0 {
		return true
	}
	v := row[w.col]
	if w.isRange {
		return v.IsInt && v.Int >= w.lo && v.Int < w.hi
	}
	return v.IsInt == w.val.IsInt && v.Int == w.val.Int && v.Str == w.val.Str
}

// colIndex resolves a column name, -1 when unknown.
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// splitCmp splits "col <op> value", requiring exactly the given operator.
func splitCmp(expr, op string) (string, Value, error) {
	i := strings.Index(expr, op)
	if i < 0 {
		return "", Value{}, fmt.Errorf("db: expected %q in %q", op, expr)
	}
	name := strings.TrimSpace(expr[:i])
	if name == "" {
		return "", Value{}, fmt.Errorf("db: missing column name in %q", expr)
	}
	return name, parseValue(expr[i+len(op):]), nil
}

// parseWhereCols parses the optional WHERE clause of q against a column
// list. Supported forms: `col = value` and `col >= lo AND col < hi` (both
// bounds integers, one column).
func parseWhereCols(cols []string, q string) (where, error) {
	w := where{col: -1}
	upper := upperASCII(q)
	wi := strings.Index(upper, "WHERE")
	if wi < 0 {
		return w, nil
	}
	cond := strings.TrimSpace(q[wi+5:])
	if cond == "" {
		return w, fmt.Errorf("db: empty WHERE clause")
	}
	if ai := strings.Index(upperASCII(cond), " AND "); ai >= 0 {
		left, right := cond[:ai], cond[ai+5:]
		lname, lv, err := splitCmp(left, ">=")
		if err != nil {
			return w, err
		}
		rname, rv, err := splitCmp(right, "<")
		if err != nil {
			return w, err
		}
		if lname != rname {
			return w, fmt.Errorf("db: range bounds on different columns %q and %q", lname, rname)
		}
		if !lv.IsInt || !rv.IsInt {
			return w, fmt.Errorf("db: range bounds must be integers")
		}
		col := colIndex(cols, lname)
		if col < 0 {
			return w, fmt.Errorf("db: no column %q", lname)
		}
		return where{col: col, isRange: true, lo: lv.Int, hi: rv.Int}, nil
	}
	parts := strings.SplitN(cond, "=", 2)
	if len(parts) != 2 {
		return w, fmt.Errorf("db: bad WHERE clause %q", cond)
	}
	cname := strings.TrimSpace(parts[0])
	// A lone `>=`/`<=`/`!=` comparison splits at its `=`; reject the
	// dangling operator instead of treating it as part of the column name.
	if strings.ContainsAny(cname, "<>!") {
		return w, fmt.Errorf("db: unsupported comparison in WHERE clause %q", cond)
	}
	col := colIndex(cols, cname)
	if col < 0 {
		return w, fmt.Errorf("db: no column %q", cname)
	}
	return where{col: col, val: parseValue(parts[1])}, nil
}

// parseWhere resolves an optional WHERE clause against tab's columns.
func parseWhere(tab *Table, q string) (where, error) {
	return parseWhereCols(tab.Cols, q)
}

// scan returns the indices of rows matching w, touching the shadow span of
// every row it inspects. Point predicates on the indexed first column probe
// the index instead (touching the bucket word plus only the candidate
// rows' spans) — the indexed point lookup of a real store.
func (s *Store) scan(t *vm.RThread, tab *Table, w where) []int {
	if !w.isRange && w.col == 0 && tab.hasIdx {
		tab.touchBucket(t, w.val, false)
		var hits []int
		for _, ri := range tab.index[valKey(w.val)] {
			base := tab.shadows[ri]
			for i := 0; i < tab.spans[ri]; i++ {
				t.TouchRead(base + simmem.Addr(i*simmem.WordBytes))
			}
			if w.match(tab.Rows[ri]) {
				hits = append(hits, ri)
			}
		}
		return hits
	}
	var hits []int
	for ri, row := range tab.Rows {
		base := tab.shadows[ri]
		for i := 0; i < tab.spans[ri]; i++ {
			t.TouchRead(base + simmem.Addr(i*simmem.WordBytes))
		}
		if w.match(row) {
			hits = append(hits, ri)
		}
	}
	return hits
}

func (s *Store) selectAll(t *vm.RThread, q string) ([][]Value, []string, error) {
	name := tableName(q, "FROM")
	tab := s.Tables[name]
	if tab == nil {
		return nil, nil, fmt.Errorf("db: no such table %q", name)
	}
	w, err := parseWhere(tab, q)
	if err != nil {
		return nil, nil, err
	}
	var rows [][]Value
	for _, ri := range s.scan(t, tab, w) {
		rows = append(rows, tab.Rows[ri])
	}
	return rows, tab.Cols, nil
}

// updateRows applies `UPDATE name SET col = v[, ...] [WHERE ...]` to a
// regular table: host row values change and each updated row's shadow span
// is rewritten. Callers must be outside any transaction (the Install gate
// makes regular-table mutations restricted operations).
func (s *Store) updateRows(t *vm.RThread, q string) (int, error) {
	name := tableName(q, "UPDATE")
	tab := s.Tables[name]
	if tab == nil {
		return 0, fmt.Errorf("db: no such table %q", name)
	}
	upper := upperASCII(q)
	si := strings.Index(upper, " SET ")
	if si < 0 {
		return 0, fmt.Errorf("db: UPDATE without SET")
	}
	setPart := q[si+5:]
	if wi := strings.Index(upperASCII(setPart), "WHERE"); wi >= 0 {
		setPart = setPart[:wi]
	}
	type assign struct {
		col int
		val Value
	}
	var assigns []assign
	for _, a := range splitCSV(setPart) {
		cname, v, err := splitCmp(a, "=")
		if err != nil {
			return 0, fmt.Errorf("db: bad SET clause %q", strings.TrimSpace(a))
		}
		col := colIndex(tab.Cols, cname)
		if col < 0 {
			return 0, fmt.Errorf("db: no column %q", cname)
		}
		assigns = append(assigns, assign{col, v})
	}
	if len(assigns) == 0 {
		return 0, fmt.Errorf("db: empty SET clause")
	}
	w, err := parseWhere(tab, q)
	if err != nil {
		return 0, err
	}
	hits := s.scan(t, tab, w)
	touchedIdx := false
	for _, ri := range hits {
		for _, a := range assigns {
			if a.col == 0 && tab.hasIdx {
				tab.touchBucket(t, tab.Rows[ri][0], true)
				tab.touchBucket(t, a.val, true)
				touchedIdx = true
			}
			tab.Rows[ri][a.col] = a.val
		}
		// Rewrite the row's shadow span; a row grown past its span gets a
		// fresh one (the old span is abandoned like a reclaimed page).
		words := rowWords(tab.Rows[ri])
		if words > tab.spans[ri] {
			base, aerr := t.AllocShadow(words)
			if aerr != nil {
				return 0, aerr
			}
			tab.shadows[ri] = base
			tab.spans[ri] = words
		}
		base := tab.shadows[ri]
		for i := 0; i < tab.spans[ri]; i++ {
			t.TouchWrite(base+simmem.Addr(i*simmem.WordBytes), simmem.Word{Bits: uint64(i) + 1})
		}
	}
	if touchedIdx {
		tab.rebuildIndex()
	}
	return len(hits), nil
}

// deleteRows removes every row matching the optional WHERE clause and
// returns how many went away. The surviving rows keep their shadow spans;
// a later scan skips the deleted spans entirely, like a real table scan
// skipping reclaimed pages.
func (s *Store) deleteRows(t *vm.RThread, q string) (int, error) {
	name := tableName(q, "FROM")
	tab := s.Tables[name]
	if tab == nil {
		return 0, fmt.Errorf("db: no such table %q", name)
	}
	w, err := parseWhere(tab, q)
	if err != nil {
		return 0, err
	}
	hits := s.scan(t, tab, w)
	if len(hits) == 0 {
		return 0, nil
	}
	doomed := make(map[int]bool, len(hits))
	for _, ri := range hits {
		doomed[ri] = true
		if tab.hasIdx {
			// Invalidate concurrent probers of the vanishing key's bucket.
			tab.touchBucket(t, tab.Rows[ri][0], true)
		}
	}
	keptRows := tab.Rows[:0]
	keptShadows := tab.shadows[:0]
	keptSpans := tab.spans[:0]
	for ri, row := range tab.Rows {
		if doomed[ri] {
			continue
		}
		keptRows = append(keptRows, row)
		keptShadows = append(keptShadows, tab.shadows[ri])
		keptSpans = append(keptSpans, tab.spans[ri])
	}
	tab.Rows = keptRows
	tab.shadows = keptShadows
	tab.spans = keptSpans
	tab.rebuildIndex()
	return len(hits), nil
}

// Install adds the SQLite3-ish API to a VM:
//
//	db = SQLite3.new
//	db.execute("CREATE TABLE books (id, title, author)")
//	rows = db.execute("SELECT * FROM books")  # array of arrays
func Install(machine *vm.VM) {
	dbC := machine.DefineClass("SQLite3", nil)
	machine.DefineStatic(dbC, "new", 0, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		o, err := t.AllocNativeObject(object.TDB, dbC, NewStore())
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	machine.DefineNative(dbC, "execute", 1, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		if args[0].Kind != object.KRef || args[0].Ref.Type != object.TString {
			return object.Nil, fmt.Errorf("SQLite3#execute expects a String")
		}
		store := self.Ref.Native.(*Store)
		sql := args[0].Ref.Str
		if t.InTx() && !store.SpeculativeSafe(sql) {
			// Statements that mutate host-side table state cannot be rolled
			// back speculatively: run them under the GIL, as the real SQLite
			// extension's write path effectively did. Keyspace-table
			// statements never take this path — their state lives entirely
			// in simulated memory.
			t.RestrictedOp()
			return object.Nil, vm.ErrRedo()
		}
		rows, _, err := store.Exec(t, sql)
		if err != nil {
			return object.Nil, err
		}
		var rowVals []object.Value
		for _, row := range rows {
			var cells []object.Value
			for _, cell := range row {
				if cell.IsInt {
					cells = append(cells, object.FixVal(cell.Int))
				} else {
					so, _, aerr := t.AllocString(cell.Str)
					if aerr != nil {
						return object.Nil, aerr
					}
					cells = append(cells, object.RefVal(so))
				}
			}
			ra, aerr := t.AllocArrayOf(cells)
			if aerr != nil {
				return object.Nil, aerr
			}
			rowVals = append(rowVals, object.RefVal(ra))
		}
		arr, aerr := t.AllocArrayOf(rowVals)
		if aerr != nil {
			return object.Nil, aerr
		}
		return object.RefVal(arr), nil
	})
}
