// Package db is an embedded, SQLite3-flavoured table store used by the
// Rails-like benchmark. It runs as a native extension: one DB#execute call
// is a single native operation with no yield points inside, and its row
// storage lives in simulated memory, so queries contribute large
// transactional footprints — mirroring how the SQLite C extension behaved
// under the paper's GIL elision (87% of Rails aborts were footprint
// overflows in extension code).
//
// Supported statements:
//
//	CREATE TABLE name (col1, col2, ...)
//	INSERT INTO name VALUES (v1, v2, ...)
//	SELECT * FROM name
//	SELECT * FROM name WHERE col = value
//	SELECT COUNT(*) FROM name
//	DELETE FROM name
//	DELETE FROM name WHERE col = value
package db

import (
	"fmt"
	"strconv"
	"strings"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
	"htmgil/internal/vm"
)

// Value is a stored cell: integer or string.
type Value struct {
	IsInt bool
	Int   int64
	Str   string
}

// Table is one table: column names plus rows. Each row owns a shadow span
// in simulated memory that queries touch when they scan it.
type Table struct {
	Name    string
	Cols    []string
	Rows    [][]Value
	shadows []simmem.Addr // base of each row's shadow words
}

// Store is a database instance.
type Store struct {
	Tables map[string]*Table
}

// NewStore creates an empty database.
func NewStore() *Store { return &Store{Tables: make(map[string]*Table)} }

// Exec parses and executes one statement. Row shadow allocation and the
// scan touches go through the thread's accessor so they participate in
// transactions.
func (s *Store) Exec(t *vm.RThread, sql string) ([][]Value, []string, error) {
	q := strings.TrimSpace(sql)
	upper := strings.ToUpper(q)
	switch {
	case strings.HasPrefix(upper, "CREATE TABLE"):
		return nil, nil, s.create(q)
	case strings.HasPrefix(upper, "INSERT INTO"):
		return nil, nil, s.insert(t, q)
	case strings.HasPrefix(upper, "SELECT COUNT(*) FROM"):
		name := tableName(q, "FROM")
		tab := s.Tables[name]
		if tab == nil {
			return nil, nil, fmt.Errorf("db: no such table %q", name)
		}
		s.scan(t, tab, -1, Value{})
		return [][]Value{{{IsInt: true, Int: int64(len(tab.Rows))}}}, []string{"count"}, nil
	case strings.HasPrefix(upper, "SELECT * FROM"):
		return s.selectAll(t, q)
	case strings.HasPrefix(upper, "DELETE FROM"):
		n, err := s.deleteRows(t, q)
		if err != nil {
			return nil, nil, err
		}
		return [][]Value{{{IsInt: true, Int: int64(n)}}}, []string{"deleted"}, nil
	default:
		return nil, nil, fmt.Errorf("db: unsupported statement %q", sql)
	}
}

func tableName(q, after string) string {
	idx := strings.Index(strings.ToUpper(q), after)
	rest := strings.TrimSpace(q[idx+len(after):])
	end := strings.IndexAny(rest, " (")
	if end < 0 {
		return rest
	}
	return rest[:end]
}

func (s *Store) create(q string) error {
	name := tableName(q, "TABLE")
	open := strings.Index(q, "(")
	closeP := strings.LastIndex(q, ")")
	if open < 0 || closeP < open {
		return fmt.Errorf("db: bad CREATE TABLE syntax")
	}
	var cols []string
	for _, c := range strings.Split(q[open+1:closeP], ",") {
		cols = append(cols, strings.TrimSpace(strings.Fields(strings.TrimSpace(c))[0]))
	}
	s.Tables[name] = &Table{Name: name, Cols: cols}
	return nil
}

func parseValue(tok string) Value {
	tok = strings.TrimSpace(tok)
	if len(tok) >= 2 && (tok[0] == '\'' || tok[0] == '"') {
		return Value{Str: tok[1 : len(tok)-1]}
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err == nil {
		return Value{IsInt: true, Int: n}
	}
	return Value{Str: tok}
}

func (s *Store) insert(t *vm.RThread, q string) error {
	name := tableName(q, "INTO")
	tab := s.Tables[name]
	if tab == nil {
		return fmt.Errorf("db: no such table %q", name)
	}
	open := strings.Index(q, "(")
	closeP := strings.LastIndex(q, ")")
	if open < 0 || closeP < open {
		return fmt.Errorf("db: bad INSERT syntax")
	}
	var row []Value
	for _, tok := range splitCSV(q[open+1 : closeP]) {
		row = append(row, parseValue(tok))
	}
	if len(row) != len(tab.Cols) {
		return fmt.Errorf("db: %d values for %d columns", len(row), len(tab.Cols))
	}
	// Shadow storage: one word per cell plus string payload words.
	words := 0
	for _, v := range row {
		words += 1 + len(v.Str)/simmem.WordBytes
	}
	base, err := t.AllocShadow(words)
	if err != nil {
		return err
	}
	for i := 0; i < words; i++ {
		t.TouchWrite(base+simmem.Addr(i*simmem.WordBytes), simmem.Word{Bits: uint64(i) + 1})
	}
	tab.Rows = append(tab.Rows, row)
	tab.shadows = append(tab.shadows, base)
	return nil
}

// splitCSV splits on commas outside quotes.
func splitCSV(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// scan touches every row's shadow words (col < 0 scans everything).
func (s *Store) scan(t *vm.RThread, tab *Table, col int, want Value) []int {
	var hits []int
	for ri, row := range tab.Rows {
		words := 0
		for _, v := range row {
			words += 1 + len(v.Str)/simmem.WordBytes
		}
		base := tab.shadows[ri]
		for i := 0; i < words; i++ {
			t.TouchRead(base + simmem.Addr(i*simmem.WordBytes))
		}
		if col < 0 {
			hits = append(hits, ri)
			continue
		}
		v := row[col]
		if v.IsInt == want.IsInt && v.Int == want.Int && v.Str == want.Str {
			hits = append(hits, ri)
		}
	}
	return hits
}

// parseWhere resolves an optional WHERE clause against tab's columns.
// Without one it returns col -1 (match everything).
func parseWhere(tab *Table, q string) (int, Value, error) {
	wi := strings.Index(strings.ToUpper(q), "WHERE")
	if wi < 0 {
		return -1, Value{}, nil
	}
	cond := strings.TrimSpace(q[wi+5:])
	parts := strings.SplitN(cond, "=", 2)
	if len(parts) != 2 {
		return 0, Value{}, fmt.Errorf("db: bad WHERE clause %q", cond)
	}
	cname := strings.TrimSpace(parts[0])
	col := -1
	for i, c := range tab.Cols {
		if c == cname {
			col = i
		}
	}
	if col < 0 {
		return 0, Value{}, fmt.Errorf("db: no column %q", cname)
	}
	return col, parseValue(parts[1]), nil
}

func (s *Store) selectAll(t *vm.RThread, q string) ([][]Value, []string, error) {
	name := tableName(q, "FROM")
	tab := s.Tables[name]
	if tab == nil {
		return nil, nil, fmt.Errorf("db: no such table %q", name)
	}
	col, want, err := parseWhere(tab, q)
	if err != nil {
		return nil, nil, err
	}
	var rows [][]Value
	for _, ri := range s.scan(t, tab, col, want) {
		rows = append(rows, tab.Rows[ri])
	}
	return rows, tab.Cols, nil
}

// deleteRows removes every row matching the optional WHERE clause and
// returns how many went away. The surviving rows keep their shadow spans;
// a later scan skips the deleted spans entirely, like a real table scan
// skipping reclaimed pages.
func (s *Store) deleteRows(t *vm.RThread, q string) (int, error) {
	name := tableName(q, "FROM")
	tab := s.Tables[name]
	if tab == nil {
		return 0, fmt.Errorf("db: no such table %q", name)
	}
	col, want, err := parseWhere(tab, q)
	if err != nil {
		return 0, err
	}
	hits := s.scan(t, tab, col, want)
	if len(hits) == 0 {
		return 0, nil
	}
	doomed := make(map[int]bool, len(hits))
	for _, ri := range hits {
		doomed[ri] = true
	}
	keptRows := tab.Rows[:0]
	keptShadows := tab.shadows[:0]
	for ri, row := range tab.Rows {
		if doomed[ri] {
			continue
		}
		keptRows = append(keptRows, row)
		keptShadows = append(keptShadows, tab.shadows[ri])
	}
	tab.Rows = keptRows
	tab.shadows = keptShadows
	return len(hits), nil
}

// Install adds the SQLite3-ish API to a VM:
//
//	db = SQLite3.new
//	db.execute("CREATE TABLE books (id, title, author)")
//	rows = db.execute("SELECT * FROM books")  # array of arrays
func Install(machine *vm.VM) {
	dbC := machine.DefineClass("SQLite3", nil)
	machine.DefineStatic(dbC, "new", 0, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		o, err := t.AllocNativeObject(object.TDB, dbC, NewStore())
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	machine.DefineNative(dbC, "execute", 1, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		if args[0].Kind != object.KRef || args[0].Ref.Type != object.TString {
			return object.Nil, fmt.Errorf("SQLite3#execute expects a String")
		}
		store := self.Ref.Native.(*Store)
		upper := strings.ToUpper(strings.TrimSpace(args[0].Ref.Str))
		if t.InTx() && !strings.HasPrefix(upper, "SELECT") {
			// Mutating statements update host-side table state that cannot
			// be rolled back speculatively: run them under the GIL, as the
			// real SQLite extension's write path effectively did.
			t.RestrictedOp()
			return object.Nil, vm.ErrRedo()
		}
		rows, _, err := store.Exec(t, args[0].Ref.Str)
		if err != nil {
			return object.Nil, err
		}
		var rowVals []object.Value
		for _, row := range rows {
			var cells []object.Value
			for _, cell := range row {
				if cell.IsInt {
					cells = append(cells, object.FixVal(cell.Int))
				} else {
					so, _, aerr := t.AllocString(cell.Str)
					if aerr != nil {
						return object.Nil, aerr
					}
					cells = append(cells, object.RefVal(so))
				}
			}
			ra, aerr := t.AllocArrayOf(cells)
			if aerr != nil {
				return object.Nil, aerr
			}
			rowVals = append(rowVals, object.RefVal(ra))
		}
		arr, aerr := t.AllocArrayOf(rowVals)
		if aerr != nil {
			return object.Nil, aerr
		}
		return object.RefVal(arr), nil
	})
}
