// Package railslite is the paper's Ruby on Rails experiment: a small MVC
// web application in mini-Ruby — regexp routing, a controller querying the
// SQLite-like store, and string-interpolation view rendering — served by
// the WEBrick-style thread-per-request loop. As in the paper, Rails'
// backward-compatibility global request lock is disabled by default (the
// paper disabled it to expose concurrency) but can be enabled for the
// ablation.
package railslite

import (
	"fmt"

	"htmgil/internal/db"
	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/netsim"
	"htmgil/internal/rbregexp"
	"htmgil/internal/resilience"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// appSource builds the Rails-like application; withLock wraps request
// processing in the global Rack lock.
func appSource(withLock bool) string {
	handler := `
      rows = $db.execute("SELECT * FROM books")
      items = ""
      rows.each do |row|
        items = items + "<li>" + row[1] + " by " + row[2] + "</li>"
      end
      body = "<html><head><title>Books</title></head><body><h1>Listing books</h1><ul>" + items + "</ul></body></html>"
`
	lockPre, lockPost := "", ""
	if withLock {
		lockPre = "$rack_lock.lock\n"
		lockPost = "$rack_lock.unlock\n"
	}
	return `
$db = SQLite3.new
$db.execute("CREATE TABLE books (id, title, author)")
seed = 0
while seed < 24
  $db.execute("INSERT INTO books VALUES (#{seed}, 'The Art of Book #{seed}', 'Author #{seed % 7}')")
  seed += 1
end
$rack_lock = Mutex.new
$reqline = Regexp.new("^(GET|POST) ([^ ]+) HTTP")
$route_books = Regexp.new("^/books")
server = TCPServer.new(80)
while true
  sock = server.accept
  Thread.new(sock) do |s|
    req = s.read_request
    m = $reqline.match(req)
    path = "/"
    unless m.nil?
      path = m[2]
    end
    body = "<html><body>Routing Error</body></html>"
    status = "404 Not Found"
    if $route_books.match?(path)
      status = "200 OK"
` + lockPre + handler + lockPost + `
    end
    resp = "HTTP/1.1 " + status + "\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: #{body.length}\r\nX-Runtime: 0.003\r\n\r\n" + body
    s.write(resp)
    s.close
  end
end
`
}

// poolAppSource is the Rails-like application served by a bounded worker
// pool instead of thread-per-request: workers Ruby threads (the main thread
// serves as one) loop accepting and handling sequentially, so open-loop
// overload queues in the listener backlog rather than spawning unbounded
// Ruby threads against the VM's 64-context cap. Request handling mirrors
// appSource.
func poolAppSource(withLock bool, workers int) string {
	if workers < 2 {
		workers = 2
	}
	handler := `
    rows = $db.execute("SELECT * FROM books")
    items = ""
    rows.each do |row|
      items = items + "<li>" + row[1] + " by " + row[2] + "</li>"
    end
    body = "<html><head><title>Books</title></head><body><h1>Listing books</h1><ul>" + items + "</ul></body></html>"
`
	lockPre, lockPost := "", ""
	if withLock {
		lockPre = "$rack_lock.lock\n"
		lockPost = "$rack_lock.unlock\n"
	}
	return `
$db = SQLite3.new
$db.execute("CREATE TABLE books (id, title, author)")
seed = 0
while seed < 24
  $db.execute("INSERT INTO books VALUES (#{seed}, 'The Art of Book #{seed}', 'Author #{seed % 7}')")
  seed += 1
end
$rack_lock = Mutex.new
$reqline = Regexp.new("^(GET|POST) ([^ ]+) HTTP")
$route_books = Regexp.new("^/books")

def handle_conn(s)
  req = s.read_request
  unless req.nil?
    m = $reqline.match(req)
    path = "/"
    unless m.nil?
      path = m[2]
    end
    body = "<html><body>Routing Error</body></html>"
    status = "404 Not Found"
    if $route_books.match?(path)
      status = "200 OK"
` + lockPre + handler + lockPost + `
    end
    resp = "HTTP/1.1 " + status + "\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: #{body.length}\r\nX-Runtime: 0.003\r\n\r\n" + body
    s.write(resp)
  end
  s.close
end

server = TCPServer.new(80)
w = 1
while w < ` + fmt.Sprint(workers) + `
  Thread.new do
    while true
      handle_conn(server.accept)
    end
  end
  w += 1
end
while true
  handle_conn(server.accept)
end
`
}

// Request fetches the book list, as the paper's Rails application did.
const Request = "GET /books HTTP/1.1\r\nHost: sim.example\r\nUser-Agent: loadgen/1.0\r\nAccept: text/html\r\n\r\n"

// Config parameterizes a run.
type Config struct {
	Prof       *htm.Profile
	Mode       vm.Mode
	TxLength   int32
	Policy     string // contention policy name ("" = TxLength semantics)
	Clients    int
	Requests   int
	GlobalLock bool // Rails' compatibility lock (paper: disabled)
	// Workers, when > 0, serves with the bounded worker-pool source instead
	// of thread-per-request (see poolAppSource).
	Workers int
	// Open, when non-nil, replaces the closed-loop clients with the
	// open-loop generator: Run fills in its network plumbing (Net, Eng,
	// Port, OnDone), starts it, and returns it in Result.Open.
	Open *netsim.OpenLoadGen
	// Trace, when non-nil, is attached to the run's VM (vm.Options.Trace)
	// so callers can observe the server's transaction events.
	Trace *trace.Recorder
	// Faults arms the deterministic fault-injection harness for the run.
	Faults *fault.Spec
	// Breaker / Watchdog enable the graceful-degradation machinery.
	Breaker  bool
	Watchdog bool
	// Resilience arms request-level protection on the server (admission
	// control, brownout, deadlines); see resilience.Config.
	Resilience *resilience.Config
}

// Result mirrors webrick.Result.
type Result struct {
	Clients    int
	Completed  int
	Cycles     int64
	Throughput float64
	AbortRatio float64
	Stats      *vm.Stats
	// Open is the finished open-loop generator when the run was driven
	// open-loop; nil for closed-loop runs.
	Open *netsim.OpenLoadGen
	// Res is the server-side resilience state when Config.Resilience was set.
	Res *resilience.Server
}

// Run executes the Rails-like benchmark.
func Run(cfg Config) (*Result, error) {
	if cfg.Requests == 0 {
		cfg.Requests = 200
	}
	opt := vm.DefaultOptions(cfg.Prof, cfg.Mode)
	opt.TxLength = cfg.TxLength
	opt.Policy = cfg.Policy
	opt.Trace = cfg.Trace
	opt.Faults = cfg.Faults
	opt.Breaker = cfg.Breaker
	opt.Watchdog = cfg.Watchdog
	var rs *resilience.Server
	if cfg.Resilience != nil && cfg.Resilience.Enabled() {
		rs = resilience.NewServer(*cfg.Resilience)
		if rs.Deadlines != nil {
			opt.Deadlines = rs.Deadlines
			opt.DeadlineSlack = cfg.Resilience.DeadlineSlack
		}
	}
	machine := vm.New(opt)
	net := netsim.NewNetwork(machine.Engine)
	// machine.Opt.Trace (not cfg.Trace): the VM may have created a
	// recorder for the watchdog.
	net.Tracer = machine.Opt.Trace
	net.Faults = machine.Faults
	if rs != nil {
		rs.Tracer = machine.Opt.Trace
		net.Res = rs
	}
	netsim.Install(machine, net)
	rbregexp.Install(machine)
	rbregexp.InstallStringMethods(machine)
	db.Install(machine)

	src := appSource(cfg.GlobalLock)
	if cfg.Workers > 0 {
		src = poolAppSource(cfg.GlobalLock, cfg.Workers)
	}
	iseq, err := machine.CompileSource(src, "railslite")
	if err != nil {
		return nil, fmt.Errorf("railslite: %w", err)
	}

	if cfg.Open != nil {
		gen := cfg.Open
		gen.Net = net
		gen.Eng = machine.Engine
		gen.Port = 80
		gen.OnDone = machine.Engine.Stop
		gen.Start()
		res, err := machine.Run(iseq)
		if err != nil {
			return nil, fmt.Errorf("railslite run: %w", err)
		}
		if gen.Resolved() < gen.Generated {
			return nil, fmt.Errorf("railslite: only %d/%d open-loop requests resolved", gen.Resolved(), gen.Generated)
		}
		return &Result{
			Clients:    gen.Sessions,
			Completed:  gen.Completed,
			Cycles:     res.Cycles,
			Throughput: gen.Throughput(),
			AbortRatio: res.Stats.AbortRatio(),
			Stats:      res.Stats,
			Open:       gen,
			Res:        rs,
		}, nil
	}

	gen := &netsim.LoadGen{
		Net:       net,
		Eng:       machine.Engine,
		Port:      80,
		Request:   Request,
		ThinkTime: 10_000,
		Target:    cfg.Requests,
		OnDone:    machine.Engine.Stop,
	}
	gen.Start(cfg.Clients)
	res, err := machine.Run(iseq)
	if err != nil {
		return nil, fmt.Errorf("railslite run: %w", err)
	}
	if gen.Completed < cfg.Requests {
		return nil, fmt.Errorf("railslite: only %d/%d requests completed", gen.Completed, cfg.Requests)
	}
	return &Result{
		Clients:    cfg.Clients,
		Completed:  gen.Completed,
		Cycles:     res.Cycles,
		Throughput: gen.Throughput(),
		AbortRatio: res.Stats.AbortRatio(),
		Stats:      res.Stats,
		Res:        rs,
	}, nil
}
