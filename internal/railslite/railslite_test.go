package railslite

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

func TestRailsServesBooks(t *testing.T) {
	for _, mode := range []vm.Mode{vm.ModeGIL, vm.ModeHTM} {
		res, err := Run(Config{Prof: htm.XeonE3(), Mode: mode, Clients: 2, Requests: 20})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Completed != 20 {
			t.Fatalf("%v: completed=%d", mode, res.Completed)
		}
	}
}

func TestRailsResponseContent(t *testing.T) {
	// Capture one response via a tiny custom run: reuse the load generator
	// result counters plus a one-request run and inspect throughput > 0.
	res, err := Run(Config{Prof: htm.XeonE3(), Mode: vm.ModeGIL, Clients: 1, Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
}

func TestRailsGlobalLockSlower(t *testing.T) {
	free, err := Run(Config{Prof: htm.XeonE3(), Mode: vm.ModeHTM, Clients: 4, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	locked, err := Run(Config{Prof: htm.XeonE3(), Mode: vm.ModeHTM, Clients: 4, Requests: 60, GlobalLock: true})
	if err != nil {
		t.Fatal(err)
	}
	if locked.Throughput > free.Throughput*1.1 {
		t.Fatalf("global lock should not be faster: locked=%f free=%f", locked.Throughput, free.Throughput)
	}
}

func TestAppSourceShape(t *testing.T) {
	src := appSource(true)
	for _, want := range []string{"$rack_lock.lock", "SELECT * FROM books", "TCPServer"} {
		if !strings.Contains(src, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if strings.Contains(appSource(false), "$rack_lock.lock") {
		t.Fatalf("lock present when disabled")
	}
}
