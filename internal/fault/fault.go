// Package fault is the deterministic fault-injection harness of the
// simulator. A Spec describes which fault channels are armed (spurious HTM
// aborts, capacity jitter, network resets/latency spikes/slow clients, GIL
// timer jitter, scheduler wake jitter) and an Injector turns the spec into
// concrete, seeded fault decisions consulted by internal/htm, internal/gil,
// internal/sched and internal/netsim.
//
// Determinism is the whole point: every channel draws from its own
// rand.Rand stream (and every HTM context from its own sub-stream), so the
// same spec and seed reproduce the exact same fault schedule byte-for-byte,
// and arming one channel never perturbs the draws of another. The engine is
// consulted from the single-threaded discrete-event loop, so the Injector
// needs no locking; all methods are nil-safe so the disabled path costs one
// pointer check.
//
// Specs support an `until=T` horizon after which every channel goes quiet —
// the knob the chaos benchmark uses to measure time-to-recover once a fault
// profile clears.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"htmgil/internal/trace"
)

// Fault channel names, used for trace attribution and injection counters.
const (
	ChanSpurious   = "spurious-abort"
	ChanCapacity   = "capacity-jitter"
	ChanConnReset  = "conn-reset"
	ChanLatSpike   = "latency-spike"
	ChanSlowClient = "slow-client"
	ChanTimer      = "timer-jitter"
	ChanWake       = "wake-jitter"
)

// Defaults for the optional magnitude halves of spec entries.
const (
	DefaultCapScale         = 0.25    // capjitter=P -> capacities scaled to 25%
	DefaultLatSpikeCycles   = 200_000 // latspike=P -> +200k cycles on the wire
	DefaultSlowClientCycles = 400_000 // slowclient=P -> client stalls 400k cycles
	DefaultWakeJitterCycles = 50_000  // wakejitter=P -> wakeups delayed up to 50k
)

// Spec is a parsed fault profile: which channels are armed and how hard.
// The zero Spec injects nothing.
type Spec struct {
	// Seed overrides the run seed for the fault streams; 0 means derive
	// from the run seed so `-faults` alone stays reproducible.
	Seed int64
	// SpuriousMean is the mean number of cycles between injected spurious
	// transient aborts per HTM context (exponentially distributed); 0 off.
	SpuriousMean int64
	// CapJitterP is the per-transaction-begin probability that the
	// read/write capacities are scaled down by CapScale (cache pressure /
	// eviction jitter); 0 off.
	CapJitterP float64
	CapScale   float64
	// ConnResetP is the probability that a client connect is dropped in
	// transit (connection reset); 0 off.
	ConnResetP float64
	// LatSpikeP adds LatSpikeCycles of extra latency to a network hop with
	// this probability; 0 off.
	LatSpikeP      float64
	LatSpikeCycles int64
	// SlowClientP stalls a client for SlowClientCycles before it writes
	// its request with this probability; 0 off.
	SlowClientP      float64
	SlowClientCycles int64
	// TimerJitterFrac perturbs each GIL timer interval uniformly in
	// [1-f, 1+f] of the nominal period; 0 off.
	TimerJitterFrac float64
	// WakeJitterP delays a thread wakeup by 1..WakeJitterCycles extra
	// cycles with this probability (preemption jitter); 0 off.
	WakeJitterP      float64
	WakeJitterCycles int64
	// From keeps every channel quiet before virtual time From; 0 = from the
	// start. Together with Until it brackets a fault window, e.g. a reset
	// burst co-timed with an overload pulse in the resilience experiment.
	From int64
	// Until silences every channel at virtual time >= Until; 0 = forever.
	Until int64
}

// Enabled reports whether any channel is armed.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.SpuriousMean > 0 || s.CapJitterP > 0 || s.ConnResetP > 0 ||
		s.LatSpikeP > 0 || s.SlowClientP > 0 || s.TimerJitterFrac > 0 ||
		s.WakeJitterP > 0
}

// String renders the spec back in the canonical comma-separated grammar
// ParseSpec accepts, with keys in a fixed order so it is stable for reports.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.SpuriousMean > 0 {
		parts = append(parts, fmt.Sprintf("spurious=%d", s.SpuriousMean))
	}
	if s.CapJitterP > 0 {
		parts = append(parts, fmt.Sprintf("capjitter=%s:%s",
			ftoa(s.CapJitterP), ftoa(s.CapScale)))
	}
	if s.ConnResetP > 0 {
		parts = append(parts, "connreset="+ftoa(s.ConnResetP))
	}
	if s.LatSpikeP > 0 {
		parts = append(parts, fmt.Sprintf("latspike=%s:%d", ftoa(s.LatSpikeP), s.LatSpikeCycles))
	}
	if s.SlowClientP > 0 {
		parts = append(parts, fmt.Sprintf("slowclient=%s:%d", ftoa(s.SlowClientP), s.SlowClientCycles))
	}
	if s.TimerJitterFrac > 0 {
		parts = append(parts, "timerjitter="+ftoa(s.TimerJitterFrac))
	}
	if s.WakeJitterP > 0 {
		parts = append(parts, fmt.Sprintf("wakejitter=%s:%d", ftoa(s.WakeJitterP), s.WakeJitterCycles))
	}
	if s.From > 0 {
		parts = append(parts, fmt.Sprintf("from=%d", s.From))
	}
	if s.Until > 0 {
		parts = append(parts, fmt.Sprintf("until=%d", s.Until))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	return strings.Join(parts, ",")
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseSpec parses the comma-separated fault grammar:
//
//	spurious=MEAN        mean cycles between spurious aborts per HTM context
//	capjitter=P[:SCALE]  per-begin capacity-scaling probability (scale 0.25)
//	connreset=P          connection-reset probability per connect
//	latspike=P[:CYCLES]  extra network latency probability (default 200000)
//	slowclient=P[:CYCLES] client write-stall probability (default 400000)
//	timerjitter=F        GIL timer interval jitter fraction in [0,1)
//	wakejitter=P[:CYCLES] wakeup-delay probability (default max 50000)
//	from=T               all channels off before virtual time T
//	until=T              all channels off at virtual time >= T
//	seed=N               fault-stream seed override (default: run seed)
//
// An empty string yields a valid, inert spec.
func ParseSpec(text string) (*Spec, error) {
	s := &Spec{
		CapScale:         DefaultCapScale,
		LatSpikeCycles:   DefaultLatSpikeCycles,
		SlowClientCycles: DefaultSlowClientCycles,
		WakeJitterCycles: DefaultWakeJitterCycles,
	}
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q: want key=value", field)
		}
		val, arg, hasArg := strings.Cut(val, ":")
		argInt := func(dst *int64) error {
			if !hasArg {
				return nil
			}
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("fault: %s: bad cycle count %q", key, arg)
			}
			*dst = n
			return nil
		}
		noArg := func() error {
			if hasArg {
				return fmt.Errorf("fault: %s takes no :argument", key)
			}
			return nil
		}
		switch key {
		case "spurious":
			if err := noArg(); err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault: spurious: bad mean %q", val)
			}
			s.SpuriousMean = n
		case "capjitter":
			p, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			s.CapJitterP = p
			if hasArg {
				f, err := strconv.ParseFloat(arg, 64)
				if err != nil || !(f > 0 && f < 1) {
					return nil, fmt.Errorf("fault: capjitter: bad scale %q (want (0,1))", arg)
				}
				s.CapScale = f
			}
		case "connreset":
			if err := noArg(); err != nil {
				return nil, err
			}
			p, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			s.ConnResetP = p
		case "latspike":
			p, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			s.LatSpikeP = p
			if err := argInt(&s.LatSpikeCycles); err != nil {
				return nil, err
			}
		case "slowclient":
			p, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			s.SlowClientP = p
			if err := argInt(&s.SlowClientCycles); err != nil {
				return nil, err
			}
		case "timerjitter":
			if err := noArg(); err != nil {
				return nil, err
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || !(f >= 0 && f < 1) {
				return nil, fmt.Errorf("fault: timerjitter: bad fraction %q (want [0,1))", val)
			}
			s.TimerJitterFrac = f
		case "wakejitter":
			p, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			s.WakeJitterP = p
			if err := argInt(&s.WakeJitterCycles); err != nil {
				return nil, err
			}
		case "from":
			if err := noArg(); err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault: from: bad time %q", val)
			}
			s.From = n
		case "until":
			if err := noArg(); err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault: until: bad time %q", val)
			}
			s.Until = n
		case "seed":
			if err := noArg(); err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: seed: bad value %q", val)
			}
			s.Seed = n
		default:
			return nil, fmt.Errorf("fault: unknown channel %q", key)
		}
	}
	return s, nil
}

func parseProb(key, val string) (float64, error) {
	// The range checks are written in positive form so NaN (for which every
	// comparison is false) is rejected rather than slipping through.
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || !(p >= 0 && p <= 1) {
		return 0, fmt.Errorf("fault: %s: bad probability %q (want [0,1])", key, val)
	}
	return p, nil
}

// mix derives a sub-stream seed from the base seed and a channel tag. The
// multipliers are the usual splitmix64-ish odd constants; the only property
// needed is that distinct (tag, lane) pairs give distinct, fixed seeds.
func mix(base, tag, lane int64) int64 {
	h := base ^ (tag * -7046029254386353131)
	h ^= lane * -4417276706812531889
	h ^= h >> 33
	return h
}

// Injector is the live fault engine for one VM run: per-channel seeded RNG
// streams plus injection counters. All methods are nil-safe no-ops, and the
// per-HTM-context hooks live on HTMFaults so each context keeps its own
// stream regardless of how many contexts a run recycles.
type Injector struct {
	Spec   *Spec
	Tracer *trace.Recorder

	seed   int64
	net    *rand.Rand
	timer  *rand.Rand
	wake   *rand.Rand
	counts map[string]uint64
}

// NewInjector builds the injector for a run. runSeed is the VM seed; the
// spec's own Seed, when non-zero, overrides it for the fault streams.
// Returns nil when the spec is nil or inert, so callers can wire the result
// unconditionally.
func NewInjector(spec *Spec, runSeed int64, tracer *trace.Recorder) *Injector {
	if !spec.Enabled() {
		return nil
	}
	seed := spec.Seed
	if seed == 0 {
		seed = runSeed
	}
	return &Injector{
		Spec:   spec,
		Tracer: tracer,
		seed:   seed,
		net:    rand.New(rand.NewSource(mix(seed, 0x6e6574, 0))),
		timer:  rand.New(rand.NewSource(mix(seed, 0x74696d, 0))),
		wake:   rand.New(rand.NewSource(mix(seed, 0x77616b, 0))),
		counts: make(map[string]uint64),
	}
}

// active reports whether now falls inside the spec's injection window.
// Draws are still consumed outside the window so stream state stays
// identical across from/until variations of the same spec.
func (in *Injector) active(now int64) bool {
	return (in.Spec.From == 0 || now >= in.Spec.From) &&
		(in.Spec.Until == 0 || now < in.Spec.Until)
}

// inject records one fired fault: counter plus (when tracing) a KindFault
// event attributing channel, context and magnitude.
func (in *Injector) inject(now int64, ch string, ctx int, cycles int64) {
	in.counts[ch]++
	if in.Tracer != nil {
		ev := trace.Ev(now, trace.KindFault)
		ev.Ctx = ctx
		ev.Cycles = cycles
		ev.Note = ch
		in.Tracer.Emit(ev)
	}
}

// Counts returns a copy of the per-channel injection counters.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil || len(in.counts) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults across all channels.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// Channels returns the armed/fired channel names sorted, for display.
func (in *Injector) Channels() []string {
	if in == nil {
		return nil
	}
	out := make([]string, 0, len(in.counts))
	for k := range in.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HTMFaults is the per-HTM-context slice of the injector: its own RNG
// stream driving the spurious-abort schedule and capacity jitter, so that
// context recycling and per-context interrupt models never perturb it.
type HTMFaults struct {
	inj          *Injector
	ctx          int
	rng          *rand.Rand
	nextSpurious int64
}

// HTMContext returns the fault hooks for HTM context id, or nil when no HTM
// channel is armed. Safe on a nil Injector.
func (in *Injector) HTMContext(id int) *HTMFaults {
	if in == nil || (in.Spec.SpuriousMean <= 0 && in.Spec.CapJitterP <= 0) {
		return nil
	}
	h := &HTMFaults{
		inj: in,
		ctx: id,
		rng: rand.New(rand.NewSource(mix(in.seed, 0x68746d, int64(id)))),
	}
	h.scheduleSpurious(0)
	return h
}

func (h *HTMFaults) scheduleSpurious(now int64) {
	if h.inj.Spec.SpuriousMean <= 0 {
		h.nextSpurious = 1 << 62
		return
	}
	h.nextSpurious = now + 1 + int64(h.rng.ExpFloat64()*float64(h.inj.Spec.SpuriousMean))
}

// SpuriousDue reports whether an injected spurious abort fires at now,
// rescheduling the stream either way. Past the spec's horizon the schedule
// keeps advancing silently so recovery runs see no faults but identical
// stream state. Safe on nil.
func (h *HTMFaults) SpuriousDue(now int64) bool {
	if h == nil || now < h.nextSpurious {
		return false
	}
	h.scheduleSpurious(now)
	if !h.inj.active(now) {
		return false
	}
	h.inj.inject(now, ChanSpurious, h.ctx, 0)
	return true
}

// CapacityScale returns the factor to apply to the transaction's read/write
// capacity at begin: CapScale with probability CapJitterP, else 1. The draw
// is taken even past the horizon to keep the stream stable. Safe on nil.
func (h *HTMFaults) CapacityScale(now int64) float64 {
	if h == nil || h.inj.Spec.CapJitterP <= 0 {
		return 1
	}
	draw := h.rng.Float64()
	if !h.inj.active(now) || draw >= h.inj.Spec.CapJitterP {
		return 1
	}
	h.inj.inject(now, ChanCapacity, h.ctx, 0)
	return h.inj.Spec.CapScale
}

// ConnReset reports whether the connect issued at now is dropped in
// transit. Safe on nil.
func (in *Injector) ConnReset(now int64) bool {
	if in == nil || in.Spec.ConnResetP <= 0 {
		return false
	}
	draw := in.net.Float64()
	if !in.active(now) || draw >= in.Spec.ConnResetP {
		return false
	}
	in.inject(now, ChanConnReset, -1, 0)
	return true
}

// LatencySpike returns extra cycles to add to a network hop at now (0 most
// of the time). Safe on nil.
func (in *Injector) LatencySpike(now int64) int64 {
	if in == nil || in.Spec.LatSpikeP <= 0 {
		return 0
	}
	draw := in.net.Float64()
	if !in.active(now) || draw >= in.Spec.LatSpikeP {
		return 0
	}
	in.inject(now, ChanLatSpike, -1, in.Spec.LatSpikeCycles)
	return in.Spec.LatSpikeCycles
}

// SlowClient returns the stall (in cycles) a client inserts before writing
// its request at now. Safe on nil.
func (in *Injector) SlowClient(now int64) int64 {
	if in == nil || in.Spec.SlowClientP <= 0 {
		return 0
	}
	draw := in.net.Float64()
	if !in.active(now) || draw >= in.Spec.SlowClientP {
		return 0
	}
	in.inject(now, ChanSlowClient, -1, in.Spec.SlowClientCycles)
	return in.Spec.SlowClientCycles
}

// TimerInterval perturbs one GIL timer period: uniform in [1-f, 1+f] of the
// nominal interval, at least 1 cycle. Safe on nil (returns the nominal).
func (in *Injector) TimerInterval(now, interval int64) int64 {
	if in == nil || in.Spec.TimerJitterFrac <= 0 {
		return interval
	}
	f := 1 + in.Spec.TimerJitterFrac*(2*in.timer.Float64()-1)
	if !in.active(now) {
		return interval
	}
	j := int64(float64(interval) * f)
	if j < 1 {
		j = 1
	}
	if j != interval {
		in.inject(now, ChanTimer, -1, j-interval)
	}
	return j
}

// WakeDelay returns extra cycles to delay a thread wakeup scheduled for at.
// Safe on nil.
func (in *Injector) WakeDelay(at int64) int64 {
	if in == nil || in.Spec.WakeJitterP <= 0 {
		return 0
	}
	draw := in.wake.Float64()
	if !in.active(at) || draw >= in.Spec.WakeJitterP {
		return 0
	}
	d := 1 + in.wake.Int63n(in.Spec.WakeJitterCycles)
	in.inject(at, ChanWake, -1, d)
	return d
}

// NamedSpec is a named chaos profile for sweeps and demos.
type NamedSpec struct {
	Name string
	Text string
}

// ChaosProfiles returns the named fault profiles the `chaos` benchmark
// sweeps, from a clean baseline to a mixed adversarial schedule. Profiles
// with an `until=` horizon let the sweep measure time-to-recover.
func ChaosProfiles() []NamedSpec {
	return []NamedSpec{
		{"clean", ""},
		{"abort-storm", "spurious=30000"},
		{"abort-recover", "spurious=6000,until=30000000"},
		{"capacity", "capjitter=0.3:0.2"},
		{"net-chaos", "connreset=0.02,latspike=0.05:250000,slowclient=0.03"},
		{"jitter", "timerjitter=0.5,wakejitter=0.1:40000"},
		{"mixed", "spurious=100000,connreset=0.01,latspike=0.03,timerjitter=0.3,until=30000000"},
	}
}
