package fault

import (
	"testing"

	"htmgil/internal/trace"
)

func mustParse(t *testing.T, text string) *Spec {
	t.Helper()
	s, err := ParseSpec(text)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", text, err)
	}
	return s
}

func TestParseSpecEmptyIsInert(t *testing.T) {
	s := mustParse(t, "")
	if s.Enabled() {
		t.Fatalf("empty spec is enabled: %+v", s)
	}
	if s.String() != "" {
		t.Fatalf("empty spec renders %q", s.String())
	}
	if inj := NewInjector(s, 1, nil); inj != nil {
		t.Fatalf("inert spec built an injector")
	}
	var nilSpec *Spec
	if nilSpec.Enabled() || nilSpec.String() != "" {
		t.Fatalf("nil spec not inert")
	}
	if inj := NewInjector(nil, 1, nil); inj != nil {
		t.Fatalf("nil spec built an injector")
	}
	// Defaults for the optional magnitude halves must be populated even on
	// the inert spec, so later field-by-field arming works.
	if s.CapScale != DefaultCapScale || s.LatSpikeCycles != DefaultLatSpikeCycles ||
		s.SlowClientCycles != DefaultSlowClientCycles || s.WakeJitterCycles != DefaultWakeJitterCycles {
		t.Fatalf("defaults missing: %+v", s)
	}
}

// TestParseSpecRoundTrip checks that String() renders the canonical grammar:
// re-parsing it yields the same spec, and the rendering is stable.
func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		text string
		want string // "" means identical to text
	}{
		{"spurious=30000", ""},
		{"capjitter=0.3:0.2", ""},
		{"capjitter=0.3", "capjitter=0.3:0.25"}, // default scale made explicit
		{"connreset=0.02", ""},
		{"latspike=0.05:250000", ""},
		{"latspike=0.05", "latspike=0.05:200000"},
		{"slowclient=0.03:123456", ""},
		{"timerjitter=0.5", ""},
		{"wakejitter=0.1:40000", ""},
		{"until=30000000,spurious=6000", "spurious=6000,until=30000000"}, // key order canonicalized
		{"connreset=0.2,from=5000000", ""},
		{"until=9000000,from=5000000,connreset=0.2", "connreset=0.2,from=5000000,until=9000000"},
		{"seed=42,connreset=1", "connreset=1,seed=42"},
		{" spurious=100 , connreset=0.5 ", "spurious=100,connreset=0.5"},
		{"spurious=100000,connreset=0.01,latspike=0.03,timerjitter=0.3,until=30000000",
			"spurious=100000,connreset=0.01,latspike=0.03:200000,timerjitter=0.3,until=30000000"},
	}
	for _, c := range cases {
		s := mustParse(t, c.text)
		want := c.want
		if want == "" {
			want = c.text
		}
		got := s.String()
		if got != want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.text, got, want)
			continue
		}
		again := mustParse(t, got)
		if again.String() != got {
			t.Errorf("%q not a fixed point: re-renders as %q", got, again.String())
		}
		if *again != *s {
			t.Errorf("round trip changed the spec: %+v vs %+v", again, s)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"spurious",          // no value
		"spurious=0",        // mean must be positive
		"spurious=-5",       //
		"spurious=1000:2",   // no :argument
		"capjitter=1.5",     // probability out of range
		"capjitter=0.5:1.5", // scale out of (0,1)
		"capjitter=0.5:0",   //
		"connreset=nan",     // NaN passes naive range checks
		"timerjitter=nan",   //
		"capjitter=0.5:nan", //
		"connreset=0.1:5",   // no :argument
		"latspike=0.1:-3",   // bad cycle count
		"latspike=0.1:x",    //
		"slowclient=2",      // probability out of range
		"timerjitter=1",     // fraction must be < 1
		"timerjitter=-0.1",  //
		"wakejitter=0.1:0",  // bad cycle count
		"until=0",           // must be positive
		"until=soon",        //
		"from=0",            // must be positive
		"from=-7",           //
		"from=later",        //
		"from=100:5",        // no :argument
		"seed=abc",          //
		"frobnicate=1",      // unknown channel
		"spurious100",       // not key=value
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
}

func TestChaosProfilesParse(t *testing.T) {
	profs := ChaosProfiles()
	if len(profs) == 0 || profs[0].Name != "clean" {
		t.Fatalf("profiles = %+v", profs)
	}
	for _, ns := range profs {
		s := mustParse(t, ns.Text)
		if ns.Name == "clean" {
			if s.Enabled() {
				t.Errorf("clean profile is armed")
			}
			continue
		}
		if !s.Enabled() {
			t.Errorf("profile %s is inert", ns.Name)
		}
		if again := mustParse(t, s.String()); *again != *s {
			t.Errorf("profile %s does not round-trip", ns.Name)
		}
	}
}

// drain samples every channel of an injector for a while and returns a
// fingerprint of all decisions, advancing virtual time deterministically.
func drain(inj *Injector, h *HTMFaults, steps int) []int64 {
	var out []int64
	now := int64(0)
	for i := 0; i < steps; i++ {
		now += 1000
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		out = append(out,
			b2i(h.SpuriousDue(now)),
			int64(h.CapacityScale(now)*1000),
			b2i(inj.ConnReset(now)),
			inj.LatencySpike(now),
			inj.SlowClient(now),
			inj.TimerInterval(now, 10_000),
			inj.WakeDelay(now),
		)
	}
	return out
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const allChannels = "spurious=5000,capjitter=0.2,connreset=0.1,latspike=0.1,slowclient=0.1,timerjitter=0.4,wakejitter=0.2"

// TestInjectorDeterminism: the same spec and seed reproduce the exact same
// fault schedule; a different seed produces a different one.
func TestInjectorDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		inj := NewInjector(mustParse(t, allChannels), seed, nil)
		return drain(inj, inj.HTMContext(0), 400)
	}
	a, b := run(7), run(7)
	if !equalI64(a, b) {
		t.Fatalf("same seed diverged")
	}
	if equalI64(a, run(8)) {
		t.Fatalf("different seeds produced an identical schedule")
	}
}

// TestSpecSeedOverridesRunSeed: seed=N in the spec pins the fault streams
// whatever run seed the harness passes.
func TestSpecSeedOverridesRunSeed(t *testing.T) {
	spec := mustParse(t, allChannels+",seed=99")
	inj1 := NewInjector(spec, 1, nil)
	a := drain(inj1, inj1.HTMContext(0), 100)
	inj2 := NewInjector(spec, 12345, nil)
	b := drain(inj2, inj2.HTMContext(0), 100)
	if !equalI64(a, b) {
		t.Fatalf("seed= override did not pin the schedule across run seeds")
	}
}

// TestChannelIndependence: arming an extra channel must not perturb the
// draws of the others — each channel owns its RNG stream.
func TestChannelIndependence(t *testing.T) {
	spurOnly := NewInjector(mustParse(t, "spurious=5000"), 3, nil)
	both := NewInjector(mustParse(t, "spurious=5000,connreset=0.3,timerjitter=0.4"), 3, nil)
	ha, hb := spurOnly.HTMContext(0), both.HTMContext(0)
	for now := int64(1000); now < 2_000_000; now += 1000 {
		if ha.SpuriousDue(now) != hb.SpuriousDue(now) {
			t.Fatalf("connreset/timerjitter arming perturbed the spurious stream at t=%d", now)
		}
		both.ConnReset(now) // consume the net stream; must not matter
		both.TimerInterval(now, 10_000)
	}
}

// TestHTMContextStreamsAreIndependent: each context draws its own spurious
// schedule, so context recycling cannot shift another context's faults.
func TestHTMContextStreamsAreIndependent(t *testing.T) {
	inj := NewInjector(mustParse(t, "spurious=5000"), 3, nil)
	sched := func(h *HTMFaults) []int64 {
		var fired []int64
		for now := int64(1000); now < 500_000; now += 1000 {
			if h.SpuriousDue(now) {
				fired = append(fired, now)
			}
		}
		return fired
	}
	a := sched(inj.HTMContext(0))
	b := sched(inj.HTMContext(1))
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("no spurious aborts fired: %d/%d", len(a), len(b))
	}
	if equalI64(a, b) {
		t.Fatalf("contexts 0 and 1 share a spurious schedule")
	}
	// And rebuilding context 0 replays its schedule exactly.
	inj2 := NewInjector(mustParse(t, "spurious=5000"), 3, nil)
	if !equalI64(a, sched(inj2.HTMContext(0))) {
		t.Fatalf("context stream not reproducible")
	}
}

// TestUntilHorizonSilencesChannels: past until=T no channel fires and no
// counter advances, but the streams keep drawing so a recovery phase sees
// identical state to a run that never had the horizon.
func TestUntilHorizonSilencesChannels(t *testing.T) {
	const horizon = 200_000
	spec := mustParse(t, allChannels)
	spec.Until = horizon
	inj := NewInjector(spec, 5, nil)
	h := inj.HTMContext(0)
	for now := int64(1000); now < 2*horizon; now += 1000 {
		past := now >= horizon
		fired := h.SpuriousDue(now) || inj.ConnReset(now) ||
			h.CapacityScale(now) != 1 || inj.LatencySpike(now) != 0 ||
			inj.SlowClient(now) != 0 || inj.WakeDelay(now) != 0 ||
			inj.TimerInterval(now, 10_000) != 10_000
		if past && fired {
			t.Fatalf("channel fired past the horizon at t=%d", now)
		}
	}
	before := inj.Total()
	if before == 0 {
		t.Fatalf("nothing fired before the horizon")
	}
	for now := int64(2 * horizon); now < 4*horizon; now += 1000 {
		h.SpuriousDue(now)
		inj.ConnReset(now)
	}
	if inj.Total() != before {
		t.Fatalf("counters advanced past the horizon: %d -> %d", before, inj.Total())
	}
}

// TestFromUntilWindowBracketsFaults: with from=A,until=B the channels fire
// only inside [A, B), and the draws consumed outside the window keep the
// in-window schedule identical to an unbracketed run's.
func TestFromUntilWindowBracketsFaults(t *testing.T) {
	const from, until = 100_000, 200_000
	run := func(bracket bool) (fires map[int64]bool, total uint64) {
		spec := mustParse(t, "connreset=0.5,latspike=0.5:777")
		if bracket {
			spec.From, spec.Until = from, until
		}
		inj := NewInjector(spec, 5, nil)
		fires = map[int64]bool{}
		for now := int64(1000); now < 3*until; now += 1000 {
			// Evaluate both channels unconditionally: short-circuiting would
			// itself desynchronize the shared net stream between runs.
			reset := inj.ConnReset(now)
			spike := inj.LatencySpike(now) != 0
			fires[now] = reset || spike
		}
		return fires, inj.Total()
	}
	open, _ := run(false)
	win, total := run(true)
	if total == 0 {
		t.Fatalf("nothing fired inside the window")
	}
	for now, fired := range win {
		if fired && (now < from || now >= until) {
			t.Fatalf("channel fired outside [from, until) at t=%d", now)
		}
		if now >= from && now < until && fired != open[now] {
			t.Fatalf("bracketing changed the in-window schedule at t=%d: %v vs %v",
				now, fired, open[now])
		}
	}
}

// TestInjectionCountersAndTrace: every fired fault is counted per channel
// and attributed as a KindFault event on the tracer.
func TestInjectionCountersAndTrace(t *testing.T) {
	agg := trace.NewAggregator()
	rec := trace.NewRecorder(agg)
	inj := NewInjector(mustParse(t, "connreset=1,latspike=1:777"), 5, rec)
	inj.ConnReset(1000)
	inj.LatencySpike(2000)
	inj.LatencySpike(3000)
	counts := inj.Counts()
	if counts[ChanConnReset] != 1 || counts[ChanLatSpike] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if inj.Total() != 3 {
		t.Fatalf("total = %d", inj.Total())
	}
	chans := inj.Channels()
	if len(chans) != 2 || chans[0] != ChanConnReset || chans[1] != ChanLatSpike {
		t.Fatalf("channels = %v", chans)
	}
	if agg.Faults[ChanConnReset] != 1 || agg.Faults[ChanLatSpike] != 2 {
		t.Fatalf("trace attribution = %v", agg.Faults)
	}
	// Counts returns a copy: mutating it must not corrupt the injector.
	counts[ChanConnReset] = 99
	if inj.Counts()[ChanConnReset] != 1 {
		t.Fatalf("Counts exposed internal state")
	}
}

// TestNilInjectorSafe: every hook is a cheap no-op on nil, so subsystems
// wire the injector unconditionally.
func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if inj.ConnReset(1) || inj.LatencySpike(1) != 0 || inj.SlowClient(1) != 0 ||
		inj.WakeDelay(1) != 0 || inj.TimerInterval(1, 500) != 500 {
		t.Fatalf("nil injector injected something")
	}
	if inj.Total() != 0 || inj.Counts() != nil || inj.Channels() != nil {
		t.Fatalf("nil injector has state")
	}
	if h := inj.HTMContext(0); h != nil {
		t.Fatalf("nil injector built HTM hooks")
	}
	var h *HTMFaults
	if h.SpuriousDue(1) || h.CapacityScale(1) != 1 {
		t.Fatalf("nil HTM hooks injected something")
	}
}

// TestHTMContextNilWhenNoHTMChannel: network-only specs must not hang HTM
// hooks on every context.
func TestHTMContextNilWhenNoHTMChannel(t *testing.T) {
	inj := NewInjector(mustParse(t, "connreset=0.5"), 1, nil)
	if inj == nil {
		t.Fatalf("armed spec built no injector")
	}
	if h := inj.HTMContext(0); h != nil {
		t.Fatalf("network-only spec armed HTM hooks")
	}
}
