// Package heap implements the interpreter's memory management, modelled on
// CRuby 1.9: fixed-size 40-byte RVALUE slots handed out from a single
// global free list (the paper's dominant conflict source), the paper's
// mitigation — thread-local free lists refilled in bulk — and a malloc-style
// arena for variable-size buffers (instance-variable tables, array and hash
// storage, string payload shadows) with either thread-local or global
// ("z/OS malloc without HEAPPOOLS") allocation, plus a stop-the-world
// mark-and-sweep collector that runs while the GIL is held.
//
// All allocator metadata (free-list heads, bump cursors, thread-local list
// state in the thread structures) lives in simulated memory, so transaction
// aborts roll allocations back and concurrent allocations conflict exactly
// where the paper observed them.
package heap

import (
	"errors"
	"fmt"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
)

// Accessor is the memory-access capability of the calling thread: a
// *simmem.Tx inside transactions, the *simmem.Memory itself under the GIL
// or in the non-HTM execution modes.
type Accessor interface {
	Load(simmem.Addr) simmem.Word
	Store(simmem.Addr, simmem.Word)
}

// ErrNeedGC is returned when the object heap is exhausted; the interpreter
// must run the garbage collector (under the GIL) and retry.
var ErrNeedGC = errors.New("heap: free list empty, GC required")

// ErrArenaExhausted is returned when the malloc arena is full even after GC.
var ErrArenaExhausted = errors.New("heap: arena exhausted")

// Config sizes the heap.
type Config struct {
	// Slots is the number of RVALUE slots (RUBY_HEAP_MIN_SLOTS; the paper
	// raises it from 10,000 to 10,000,000 — our scaled default is large
	// enough that the scaled benchmarks rarely collect).
	Slots int
	// ArenaBytes is the size of the malloc arena.
	ArenaBytes int
	// ThreadLocalFreeLists enables the paper's per-thread object free
	// lists, refilled with TLBatch objects at a time from the global list.
	ThreadLocalFreeLists bool
	// TLBatch is the bulk-refill count (256 in the paper).
	TLBatch int
	// ThreadLocalArenas enables thread-local malloc (Linux / HEAPPOOLS);
	// when false every arena operation hits the global cursor and free
	// lists, as z/OS malloc did in the paper's WEBrick experiments.
	ThreadLocalArenas bool
}

// DefaultConfig returns a heap sized for the scaled benchmarks with the
// paper's optimizations on.
func DefaultConfig() Config {
	return Config{
		Slots:                200_000,
		ArenaBytes:           64 << 20,
		ThreadLocalFreeLists: true,
		TLBatch:              256,
		ThreadLocalArenas:    true,
	}
}

// Size classes (in words) for the malloc arena. Buffers are rounded up to
// the nearest class; freed buffers are recycled per class.
var sizeClasses = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// tlClassMax is the largest class index kept in thread-local lists.
const tlClassMax = 9 // classes up to 512 words

// ThreadSlots holds the simulated addresses of the calling thread's
// allocator state inside its thread structure.
type ThreadSlots struct {
	TLHead  simmem.Addr // thread-local object free-list head (index+1; 0 empty)
	TLCount simmem.Addr // number of objects on the thread-local list
	// TLArena is the base address of the thread's per-size-class arena
	// free-list heads (tlClassMax+1 consecutive words), or 0 when the
	// thread has no thread-local arena.
	TLArena simmem.Addr
}

// ThreadArenaWords is the number of thread-structure words needed for the
// per-thread arena free lists.
const ThreadArenaWords = tlClassMax + 1

// Stats counts allocator and collector activity.
type Stats struct {
	ObjectsAllocated uint64
	TLRefills        uint64
	GlobalPops       uint64
	ArenaAllocs      uint64
	ArenaGlobalOps   uint64
	GCs              uint64
	GCSweptObjects   uint64
	GCCycles         int64
}

// Heap is the interpreter heap.
type Heap struct {
	Mem *simmem.Memory
	Cfg Config

	slotBase simmem.Addr
	objects  []object.RObject

	// Global allocator state in simulated memory.
	globalHead  simmem.Addr // object free-list head (index+1; 0 = empty)
	globalCount simmem.Addr // objects remaining on the global list
	arenaCursor simmem.Addr // bump cursor into the arena
	classHeads  simmem.Addr // global per-size-class free-list heads

	arenaBase simmem.Addr
	arenaEnd  simmem.Addr

	marks []bool // GC mark bits (host-side; GC is stop-the-world)

	Stats Stats
}

// New builds and initializes a heap inside mem.
func New(mem *simmem.Memory, cfg Config) *Heap {
	if cfg.Slots <= 0 || cfg.ArenaBytes <= 0 {
		panic("heap: invalid config")
	}
	if cfg.TLBatch <= 0 {
		cfg.TLBatch = 256
	}
	h := &Heap{Mem: mem, Cfg: cfg}
	h.slotBase = mem.Reserve("objheap", cfg.Slots*object.RVALUEBytes)
	h.globalHead = mem.Reserve("freelist", simmem.WordBytes*2)
	h.globalCount = h.globalHead + simmem.WordBytes
	h.arenaCursor = mem.Reserve("malloc-global", simmem.WordBytes)
	h.classHeads = mem.Reserve("malloc-classes", len(sizeClasses)*simmem.WordBytes)
	h.arenaBase = mem.Reserve("malloc-arena", cfg.ArenaBytes)
	h.arenaEnd = h.arenaBase + simmem.Addr(cfg.ArenaBytes)
	h.objects = make([]object.RObject, cfg.Slots)
	h.marks = make([]bool, cfg.Slots)

	// Link every slot onto the global free list (setup time, direct).
	for i := cfg.Slots - 1; i >= 0; i-- {
		h.objects[i].Index = int32(i)
		h.objects[i].Slot = h.slotBase + simmem.Addr(i*object.RVALUEBytes)
		mem.Poke(h.objects[i].AddrOf(object.SlotLink), simmem.Word{Bits: uint64(i + 1 + 1)})
	}
	mem.Poke(h.objects[cfg.Slots-1].AddrOf(object.SlotLink), simmem.Word{Bits: 0})
	mem.Poke(h.globalHead, simmem.Word{Bits: 1}) // slot 0 (index+1)
	mem.Poke(h.globalCount, simmem.Word{Bits: uint64(cfg.Slots)})
	mem.Poke(h.arenaCursor, simmem.Word{Bits: uint64(h.arenaBase)})
	return h
}

// Object returns the shell for a slot index.
func (h *Heap) Object(idx int32) *object.RObject { return &h.objects[idx] }

// FreeCount returns the number of objects on the global free list.
func (h *Heap) FreeCount() uint64 { return h.Mem.Peek(h.globalCount).Bits }

// popGlobal pops one object off the global free list through acc.
func (h *Heap) popGlobal(acc Accessor) (int32, error) {
	head := acc.Load(h.globalHead).Bits
	if head == 0 {
		return 0, ErrNeedGC
	}
	idx := int32(head - 1)
	next := acc.Load(h.Object(idx).AddrOf(object.SlotLink)).Bits
	acc.Store(h.globalHead, simmem.Word{Bits: next})
	cnt := acc.Load(h.globalCount).Bits
	acc.Store(h.globalCount, simmem.Word{Bits: cnt - 1})
	h.Stats.GlobalPops++
	return idx, nil
}

// AllocObject allocates one RVALUE of the given type and class. It returns
// ErrNeedGC when the heap is exhausted; the caller must trigger a
// collection (aborting to the GIL first when inside a transaction).
func (h *Heap) AllocObject(acc Accessor, ts ThreadSlots, typ object.RType, cls *object.RClass) (*object.RObject, error) {
	var idx int32
	if h.Cfg.ThreadLocalFreeLists && ts.TLHead != 0 {
		head := acc.Load(ts.TLHead).Bits
		if head == 0 {
			// Bulk refill: move TLBatch objects from the global list.
			gh := acc.Load(h.globalHead).Bits
			if gh == 0 {
				return nil, ErrNeedGC
			}
			moved := 0
			cursor := gh
			last := gh
			for moved < h.Cfg.TLBatch && cursor != 0 {
				last = cursor
				cursor = acc.Load(h.Object(int32(cursor - 1)).AddrOf(object.SlotLink)).Bits
				moved++
			}
			// Global list resumes after the moved span; the span becomes
			// the thread-local list.
			acc.Store(h.globalHead, simmem.Word{Bits: cursor})
			cnt := acc.Load(h.globalCount).Bits
			acc.Store(h.globalCount, simmem.Word{Bits: cnt - uint64(moved)})
			acc.Store(h.Object(int32(last-1)).AddrOf(object.SlotLink), simmem.Word{Bits: 0})
			acc.Store(ts.TLHead, simmem.Word{Bits: gh})
			acc.Store(ts.TLCount, simmem.Word{Bits: uint64(moved)})
			head = gh
			h.Stats.TLRefills++
		}
		idx = int32(head - 1)
		next := acc.Load(h.Object(idx).AddrOf(object.SlotLink)).Bits
		acc.Store(ts.TLHead, simmem.Word{Bits: next})
		tc := acc.Load(ts.TLCount).Bits
		acc.Store(ts.TLCount, simmem.Word{Bits: tc - 1})
	} else {
		var err error
		idx, err = h.popGlobal(acc)
		if err != nil {
			return nil, err
		}
	}
	o := h.Object(idx)
	o.Type = typ
	o.Class = cls
	o.Str = ""
	o.Cls = nil
	o.Native = nil
	// Clear the payload words: recycled slots otherwise leak the previous
	// occupant's buffer pointers into objects that never initialize them
	// (empty strings), which the collector would then free twice.
	acc.Store(o.AddrOf(object.SlotA), simmem.Word{})
	acc.Store(o.AddrOf(object.SlotB), simmem.Word{})
	acc.Store(o.AddrOf(object.SlotC), simmem.Word{})
	acc.Store(o.AddrOf(object.SlotAlloc), simmem.Word{Bits: 1})
	h.Stats.ObjectsAllocated++
	return o, nil
}

// FreeObject returns one object to the calling thread's free list (or the
// global list when thread-local lists are off), reversing AllocObject. The
// software-transaction tier allocates non-speculatively — a write-buffered
// free-list pop is invisible to every other allocator until commit, and
// value-based validation cannot catch the resulting double allocation when
// the interleaved lists end up holding identical words — so its aborts
// compensate by handing each allocated object back through here.
func (h *Heap) FreeObject(acc Accessor, ts ThreadSlots, o *object.RObject) {
	o.Type = object.TFree
	o.Class = nil
	o.Str = ""
	o.Cls = nil
	o.Native = nil
	acc.Store(o.AddrOf(object.SlotA), simmem.Word{})
	acc.Store(o.AddrOf(object.SlotB), simmem.Word{})
	acc.Store(o.AddrOf(object.SlotC), simmem.Word{})
	acc.Store(o.AddrOf(object.SlotAlloc), simmem.Word{})
	if h.Cfg.ThreadLocalFreeLists && ts.TLHead != 0 {
		head := acc.Load(ts.TLHead).Bits
		acc.Store(o.AddrOf(object.SlotLink), simmem.Word{Bits: head})
		acc.Store(ts.TLHead, simmem.Word{Bits: uint64(o.Index + 1)})
		tc := acc.Load(ts.TLCount).Bits
		acc.Store(ts.TLCount, simmem.Word{Bits: tc + 1})
		return
	}
	head := acc.Load(h.globalHead).Bits
	acc.Store(o.AddrOf(object.SlotLink), simmem.Word{Bits: head})
	acc.Store(h.globalHead, simmem.Word{Bits: uint64(o.Index + 1)})
	cnt := acc.Load(h.globalCount).Bits
	acc.Store(h.globalCount, simmem.Word{Bits: cnt + 1})
}

// classFor returns the smallest size class covering n words.
func classFor(n int) (int, bool) {
	for i, c := range sizeClasses {
		if n <= c {
			return i, true
		}
	}
	return 0, false
}

// AllocArena allocates a buffer of n words from the malloc arena and
// returns its base address. Buffers are recycled per size class; with
// thread-local arenas the small classes are served from the calling
// thread's lists first.
func (h *Heap) AllocArena(acc Accessor, ts ThreadSlots, n int) (simmem.Addr, error) {
	if n <= 0 {
		n = 1
	}
	ci, ok := classFor(n)
	if !ok {
		return 0, fmt.Errorf("heap: arena request of %d words exceeds largest class", n)
	}
	h.Stats.ArenaAllocs++
	useTL := h.Cfg.ThreadLocalArenas && ts.TLArena != 0 && ci <= tlClassMax
	if useTL {
		headAddr := ts.TLArena + simmem.Addr(ci*simmem.WordBytes)
		head := acc.Load(headAddr).Bits
		if head == 0 {
			classBytes := sizeClasses[ci] * simmem.WordBytes
			chunk := classBytes
			lineBytes := h.Mem.LineBytes()
			if chunk < 4*lineBytes {
				chunk = 4 * lineBytes
			}
			// Refill from the central free list first (the collector frees
			// buffers there): HEAPPOOLS thread pools draw on the main pool
			// before extending the heap, and without this the bump cursor
			// would grow without bound on long-running servers, however much
			// garbage each collection recovers.
			gheadAddr := h.classHeads + simmem.Addr(ci*simmem.WordBytes)
			ghead := acc.Load(gheadAddr).Bits
			h.Stats.ArenaGlobalOps++
			if ghead != 0 {
				// Move up to one chunk's worth of buffers to the local list.
				take := chunk / classBytes
				tail := ghead
				for n := 1; n < take; n++ {
					next := acc.Load(simmem.Addr(tail)).Bits
					if next == 0 {
						break
					}
					tail = next
				}
				rest := acc.Load(simmem.Addr(tail)).Bits
				acc.Store(gheadAddr, simmem.Word{Bits: rest})
				acc.Store(simmem.Addr(tail), simmem.Word{Bits: 0})
				next := acc.Load(simmem.Addr(ghead)).Bits
				acc.Store(headAddr, simmem.Word{Bits: next})
				return simmem.Addr(ghead), nil
			}
			// Central pool empty: extend with a line-aligned chunk from the
			// global cursor, so fresh buffers of different threads never
			// share a cache line (the HEAPPOOLS per-thread pool behaviour);
			// split it onto the thread-local list.
			cur := acc.Load(h.arenaCursor).Bits
			base := (cur + uint64(lineBytes) - 1) &^ uint64(lineBytes-1)
			h.Stats.ArenaGlobalOps++
			if base+uint64(chunk) > uint64(h.arenaEnd) {
				return 0, ErrArenaExhausted
			}
			acc.Store(h.arenaCursor, simmem.Word{Bits: base + uint64(chunk)})
			prev := uint64(0)
			for off := chunk - classBytes; off >= 0; off -= classBytes {
				a := base + uint64(off)
				acc.Store(simmem.Addr(a), simmem.Word{Bits: prev})
				prev = a
				if off == 0 {
					break
				}
			}
			acc.Store(headAddr, simmem.Word{Bits: prev})
			head = prev
		}
		next := acc.Load(simmem.Addr(head)).Bits
		acc.Store(headAddr, simmem.Word{Bits: next})
		return simmem.Addr(head), nil
	}
	{
		headAddr := h.classHeads + simmem.Addr(ci*simmem.WordBytes)
		head := acc.Load(headAddr).Bits
		h.Stats.ArenaGlobalOps++
		if head != 0 {
			next := acc.Load(simmem.Addr(head)).Bits
			acc.Store(headAddr, simmem.Word{Bits: next})
			return simmem.Addr(head), nil
		}
	}
	// Carve from the global bump cursor.
	want := uint64(sizeClasses[ci] * simmem.WordBytes)
	cur := acc.Load(h.arenaCursor).Bits
	h.Stats.ArenaGlobalOps++
	if cur+want > uint64(h.arenaEnd) {
		return 0, ErrArenaExhausted
	}
	acc.Store(h.arenaCursor, simmem.Word{Bits: cur + want})
	return simmem.Addr(cur), nil
}

// FreeArena returns a buffer of n words to its size-class free list.
// Thread-local arenas recycle small classes locally; the collector (which
// runs globally) passes ts with TLArena = 0.
func (h *Heap) FreeArena(acc Accessor, ts ThreadSlots, base simmem.Addr, n int) {
	ci, ok := classFor(n)
	if !ok || base == 0 {
		return
	}
	var headAddr simmem.Addr
	if h.Cfg.ThreadLocalArenas && ts.TLArena != 0 && ci <= tlClassMax {
		headAddr = ts.TLArena + simmem.Addr(ci*simmem.WordBytes)
	} else {
		headAddr = h.classHeads + simmem.Addr(ci*simmem.WordBytes)
		h.Stats.ArenaGlobalOps++
	}
	head := acc.Load(headAddr).Bits
	acc.Store(base, simmem.Word{Bits: head})
	acc.Store(headAddr, simmem.Word{Bits: uint64(base)})
}

// GC cycle-cost model.
const (
	gcCyclesPerSlot   = 4
	gcCyclesPerMarked = 30
)

// Collect runs a stop-the-world mark-and-sweep collection. The caller must
// hold the GIL (HTM mode) or have otherwise stopped the world. roots must
// invoke mark on every root object; payload traversal is handled here via
// traverse, which the interpreter provides to enumerate an object's
// references (arrays, hashes, ivars, procs). Collect returns the virtual
// cycle cost to charge.
func (h *Heap) Collect(roots func(mark func(*object.RObject)), traverse func(o *object.RObject, mark func(*object.RObject))) int64 {
	h.Stats.GCs++
	for i := range h.marks {
		h.marks[i] = false
	}
	var stack []*object.RObject
	mark := func(o *object.RObject) {
		if o == nil || h.marks[o.Index] {
			return
		}
		h.marks[o.Index] = true
		stack = append(stack, o)
	}
	roots(mark)
	marked := 0
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		marked++
		traverse(o, mark)
	}
	// Sweep: every allocated, unmarked slot is garbage. Slots with the
	// alloc flag clear are already on some free list (global or a thread's
	// local list) and must not be freed twice.
	swept := 0
	gts := ThreadSlots{} // global arena lists for freed buffers
	for i := range h.objects {
		o := &h.objects[i]
		if h.Mem.Peek(o.AddrOf(object.SlotAlloc)).Bits != 1 || h.marks[i] {
			continue
		}
		h.freePayload(gts, o)
		h.Mem.Store(o.AddrOf(object.SlotAlloc), simmem.Word{Bits: 0})
		head := h.Mem.Peek(h.globalHead).Bits
		h.Mem.Store(o.AddrOf(object.SlotLink), simmem.Word{Bits: head})
		h.Mem.Store(h.globalHead, simmem.Word{Bits: uint64(i + 1)})
		cnt := h.Mem.Peek(h.globalCount).Bits
		h.Mem.Store(h.globalCount, simmem.Word{Bits: cnt + 1})
		o.Type = object.TFree
		o.Class = nil
		o.Str = ""
		o.Cls = nil
		o.Native = nil
		swept++
	}
	h.Stats.GCSweptObjects += uint64(swept)
	cost := int64(len(h.objects))*gcCyclesPerSlot + int64(marked)*gcCyclesPerMarked
	h.Stats.GCCycles += cost
	return cost
}

// freePayload releases an object's arena buffer, if its type owns one.
// The buffer base and capacity (in words) are read from the slot payload
// words by convention: SlotA = base, SlotC = capacity.
func (h *Heap) freePayload(ts ThreadSlots, o *object.RObject) {
	switch o.Type {
	case object.TArray, object.THash, object.TObject, object.TString, object.TEnv:
		base := simmem.Addr(h.Mem.Peek(o.AddrOf(object.SlotA)).Bits)
		capWords := int(h.Mem.Peek(o.AddrOf(object.SlotC)).Bits)
		if base != 0 && capWords > 0 {
			h.FreeArena(h.Mem, ts, base, capWords)
		}
	}
}
