package heap

import (
	"testing"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
)

func mkHeap(slots int, tl bool) (*simmem.Memory, *Heap) {
	mem := simmem.NewMemory(simmem.Config{LineBytes: 64}, 4)
	cfg := DefaultConfig()
	cfg.Slots = slots
	cfg.ArenaBytes = 1 << 20
	cfg.ThreadLocalFreeLists = tl
	return mem, New(mem, cfg)
}

func mkThreadSlots(mem *simmem.Memory) ThreadSlots {
	base := mem.Reserve("threadstruct", 64*simmem.WordBytes)
	return ThreadSlots{
		TLHead:  base,
		TLCount: base + 8,
		TLArena: base + 16,
	}
}

func TestAllocFromGlobalList(t *testing.T) {
	mem, h := mkHeap(100, false)
	o, err := h.AllocObject(mem, ThreadSlots{}, object.TString, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Type != object.TString {
		t.Fatalf("type = %v", o.Type)
	}
	if h.FreeCount() != 99 {
		t.Fatalf("free count = %d", h.FreeCount())
	}
	if mem.Peek(o.AddrOf(object.SlotAlloc)).Bits != 1 {
		t.Fatalf("alloc flag not set")
	}
}

func TestExhaustionReturnsNeedGC(t *testing.T) {
	mem, h := mkHeap(10, false)
	for i := 0; i < 10; i++ {
		if _, err := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil); err != nil {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	if _, err := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil); err != ErrNeedGC {
		t.Fatalf("err = %v, want ErrNeedGC", err)
	}
}

func TestThreadLocalRefillBatch(t *testing.T) {
	mem, h := mkHeap(1000, true)
	ts := mkThreadSlots(mem)
	if _, err := h.AllocObject(mem, ts, object.TFloat, nil); err != nil {
		t.Fatal(err)
	}
	// One refill moved TLBatch objects; one was consumed.
	if got := mem.Peek(ts.TLCount).Bits; got != uint64(h.Cfg.TLBatch-1) {
		t.Fatalf("TL count = %d, want %d", got, h.Cfg.TLBatch-1)
	}
	if h.FreeCount() != uint64(1000-h.Cfg.TLBatch) {
		t.Fatalf("global count = %d", h.FreeCount())
	}
	// Subsequent allocations do not touch the global list.
	pops := h.Stats.GlobalPops
	refills := h.Stats.TLRefills
	for i := 0; i < 100; i++ {
		if _, err := h.AllocObject(mem, ts, object.TFloat, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats.GlobalPops != pops || h.Stats.TLRefills != refills {
		t.Fatalf("thread-local allocations hit the global list")
	}
}

func TestUniqueSlotsAcrossThreads(t *testing.T) {
	mem, h := mkHeap(2000, true)
	ts1, ts2 := mkThreadSlots(mem), mkThreadSlots(mem)
	seen := map[int32]bool{}
	for i := 0; i < 600; i++ {
		a, err := h.AllocObject(mem, ts1, object.TObject, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.AllocObject(mem, ts2, object.TObject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a.Index] || seen[b.Index] || a.Index == b.Index {
			t.Fatalf("slot handed out twice at iteration %d", i)
		}
		seen[a.Index] = true
		seen[b.Index] = true
	}
}

func TestArenaAllocAndRecycle(t *testing.T) {
	mem, h := mkHeap(100, false)
	a, err := h.AllocArena(mem, ThreadSlots{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AllocArena(mem, ThreadSlots{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("overlapping arena buffers")
	}
	// 10 words rounds to class 16: buffers are 16 words apart at least.
	if b-a < 16*simmem.WordBytes {
		t.Fatalf("buffers too close: %d", b-a)
	}
	h.FreeArena(mem, ThreadSlots{}, a, 10)
	c, err := h.AllocArena(mem, ThreadSlots{}, 12) // same class: reuses a
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed buffer not recycled: got %#x want %#x", uint64(c), uint64(a))
	}
}

func TestArenaThreadLocalRecycle(t *testing.T) {
	mem, h := mkHeap(100, true)
	ts := mkThreadSlots(mem)
	a, _ := h.AllocArena(mem, ts, 8)
	h.FreeArena(mem, ts, a, 8)
	globalOps := h.Stats.ArenaGlobalOps
	b, _ := h.AllocArena(mem, ts, 8)
	if b != a {
		t.Fatalf("thread-local arena did not recycle")
	}
	if h.Stats.ArenaGlobalOps != globalOps {
		t.Fatalf("thread-local recycle touched global state")
	}
}

func TestGCCollectsUnreachable(t *testing.T) {
	mem, h := mkHeap(50, false)
	var live []*object.RObject
	for i := 0; i < 50; i++ {
		o, err := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			live = append(live, o)
		}
	}
	if h.FreeCount() != 0 {
		t.Fatalf("free count before GC = %d", h.FreeCount())
	}
	cost := h.Collect(
		func(mark func(*object.RObject)) {
			for _, o := range live {
				mark(o)
			}
		},
		func(o *object.RObject, mark func(*object.RObject)) {},
	)
	if cost <= 0 {
		t.Fatalf("GC cost = %d", cost)
	}
	if h.FreeCount() != 40 {
		t.Fatalf("free count after GC = %d, want 40", h.FreeCount())
	}
	// Live objects keep their slots and can still allocate new ones.
	for i := 0; i < 40; i++ {
		if _, err := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil); err != nil {
			t.Fatalf("post-GC alloc %d: %v", i, err)
		}
	}
	if _, err := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil); err != ErrNeedGC {
		t.Fatalf("live slots were collected: %v", err)
	}
}

func TestGCDoesNotFreeThreadLocalListSlots(t *testing.T) {
	mem, h := mkHeap(600, true)
	ts := mkThreadSlots(mem)
	// One allocation pulls a batch of 256 onto the TL list.
	o, err := h.AllocObject(mem, ts, object.TObject, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := mem.Peek(ts.TLCount).Bits
	h.Collect(
		func(mark func(*object.RObject)) { mark(o) },
		func(o *object.RObject, mark func(*object.RObject)) {},
	)
	if got := mem.Peek(ts.TLCount).Bits; got != before {
		t.Fatalf("GC disturbed thread-local list: %d -> %d", before, got)
	}
	// The TL list must still be coherent: allocate everything on it.
	for i := uint64(0); i < before; i++ {
		if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != nil {
			t.Fatalf("TL list corrupted at %d: %v", i, err)
		}
	}
}

func TestGCTraversesReferences(t *testing.T) {
	mem, h := mkHeap(50, false)
	parent, _ := h.AllocObject(mem, ThreadSlots{}, object.TArray, nil)
	child, _ := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil)
	edges := map[*object.RObject][]*object.RObject{parent: {child}}
	h.Collect(
		func(mark func(*object.RObject)) { mark(parent) },
		func(o *object.RObject, mark func(*object.RObject)) {
			for _, ref := range edges[o] {
				mark(ref)
			}
		},
	)
	if h.FreeCount() != 48 {
		t.Fatalf("free count = %d, want 48 (parent+child live)", h.FreeCount())
	}
	if child.Type == object.TFree {
		t.Fatalf("referenced child was collected")
	}
}

func TestGCFreesArenaPayload(t *testing.T) {
	mem, h := mkHeap(50, false)
	o, _ := h.AllocObject(mem, ThreadSlots{}, object.TArray, nil)
	buf, _ := h.AllocArena(mem, ThreadSlots{}, 16)
	mem.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
	mem.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: 16})
	h.Collect(func(mark func(*object.RObject)) {}, func(o *object.RObject, mark func(*object.RObject)) {})
	// The buffer must be recyclable now.
	got, err := h.AllocArena(mem, ThreadSlots{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != buf {
		t.Fatalf("arena payload not freed by GC")
	}
}

func TestAbortedAllocationRollsBack(t *testing.T) {
	mem, h := mkHeap(100, false)
	tx := mem.Tx(0)
	tx.Begin(1<<20, 1<<20)
	o, err := h.AllocObject(tx, ThreadSlots{}, object.TFloat, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := o.Index
	tx.SelfDoom(simmem.CauseExplicit)
	tx.Rollback()
	// The slot is back on the free list and the alloc flag is clear.
	if mem.Peek(h.Object(idx).AddrOf(object.SlotAlloc)).Bits != 0 {
		t.Fatalf("alloc flag survived rollback")
	}
	if h.FreeCount() != 100 {
		t.Fatalf("free count after rollback = %d", h.FreeCount())
	}
	// The same slot is handed out again.
	o2, err := h.AllocObject(mem, ThreadSlots{}, object.TString, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Index != idx {
		t.Fatalf("rollback lost the slot: got %d want %d", o2.Index, idx)
	}
}

// TestExhaustionAndRefill drives the heap dry and back through GC with
// thread-local free lists on and off: allocation must hand out every slot
// exactly once, fail with ErrNeedGC when dry, and resume cleanly after a
// collection refills the global list.
func TestExhaustionAndRefill(t *testing.T) {
	for _, tl := range []bool{false, true} {
		name := "global-only"
		if tl {
			name = "thread-local"
		}
		t.Run(name, func(t *testing.T) {
			const slots = 700 // 2 TL batches + a partial third
			mem, h := mkHeap(slots, tl)
			ts := ThreadSlots{}
			if tl {
				ts = mkThreadSlots(mem)
			}
			seen := map[int32]bool{}
			for i := 0; i < slots; i++ {
				o, err := h.AllocObject(mem, ts, object.TObject, nil)
				if err != nil {
					t.Fatalf("alloc %d/%d failed early: %v", i, slots, err)
				}
				if seen[o.Index] {
					t.Fatalf("slot %d handed out twice", o.Index)
				}
				seen[o.Index] = true
			}
			if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != ErrNeedGC {
				t.Fatalf("exhausted heap: err = %v, want ErrNeedGC", err)
			}
			if tl {
				// The last refill was partial: slots mod TLBatch objects.
				wantRefills := uint64((slots + h.Cfg.TLBatch - 1) / h.Cfg.TLBatch)
				if h.Stats.TLRefills != wantRefills {
					t.Errorf("TL refills = %d, want %d", h.Stats.TLRefills, wantRefills)
				}
				if got := mem.Peek(ts.TLCount).Bits; got != 0 {
					t.Errorf("TL count after exhaustion = %d, want 0", got)
				}
			}
			// GC with no roots reclaims everything; allocation resumes.
			h.Collect(
				func(mark func(*object.RObject)) {},
				func(o *object.RObject, mark func(*object.RObject)) {},
			)
			if h.FreeCount() != slots {
				t.Fatalf("free count after GC = %d, want %d", h.FreeCount(), slots)
			}
			for i := 0; i < slots; i++ {
				if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != nil {
					t.Fatalf("post-GC alloc %d: %v", i, err)
				}
			}
			if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != ErrNeedGC {
				t.Fatalf("post-GC exhaustion: err = %v, want ErrNeedGC", err)
			}
		})
	}
}

// TestThreadLocalPartialRefill: when the global list holds fewer objects
// than a full batch, the refill must move what remains and leave the global
// list empty — not wrap, not under-count.
func TestThreadLocalPartialRefill(t *testing.T) {
	const slots = 300 // one full batch of 256 + 44 stragglers
	mem, h := mkHeap(slots, true)
	ts := mkThreadSlots(mem)
	// Drain one full batch through the TL list.
	for i := 0; i < h.Cfg.TLBatch; i++ {
		if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.FreeCount(); got != slots-uint64(h.Cfg.TLBatch) {
		t.Fatalf("global count = %d, want %d", got, slots-h.Cfg.TLBatch)
	}
	// The next allocation triggers a partial refill of the 44 leftovers.
	if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.FreeCount(); got != 0 {
		t.Fatalf("global count after partial refill = %d, want 0", got)
	}
	if got := mem.Peek(ts.TLCount).Bits; got != uint64(slots-h.Cfg.TLBatch-1) {
		t.Fatalf("TL count = %d, want %d", got, slots-h.Cfg.TLBatch-1)
	}
	// Exactly the leftovers remain allocatable.
	for i := 0; i < slots-h.Cfg.TLBatch-1; i++ {
		if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != nil {
			t.Fatalf("leftover alloc %d: %v", i, err)
		}
	}
	if _, err := h.AllocObject(mem, ts, object.TObject, nil); err != ErrNeedGC {
		t.Fatalf("err = %v, want ErrNeedGC", err)
	}
}

// TestThreadLocalListsIsolateThreads: two threads draining their own lists
// must only touch the global list once per batch each — the paper's whole
// point: allocation conflicts disappear from the transactional footprint.
func TestThreadLocalListsIsolateThreads(t *testing.T) {
	mem, h := mkHeap(2000, true)
	ts1, ts2 := mkThreadSlots(mem), mkThreadSlots(mem)
	for i := 0; i < h.Cfg.TLBatch; i++ {
		if _, err := h.AllocObject(mem, ts1, object.TObject, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := h.AllocObject(mem, ts2, object.TObject, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats.TLRefills != 2 {
		t.Fatalf("refills = %d, want 2 (one per thread)", h.Stats.TLRefills)
	}
	if h.Stats.GlobalPops != 0 {
		t.Fatalf("global pops = %d, want 0", h.Stats.GlobalPops)
	}
}

// TestFreeObjectRoundTrip: FreeObject (the compensation path for aborted
// software transactions) must clear the slot and push it back onto the
// right free list, so the next allocation hands the same slot out again.
func TestFreeObjectRoundTrip(t *testing.T) {
	t.Run("global", func(t *testing.T) {
		mem, h := mkHeap(100, false)
		o, err := h.AllocObject(mem, ThreadSlots{}, object.TString, nil)
		if err != nil {
			t.Fatal(err)
		}
		o.Str = "payload"
		idx := o.Index
		h.FreeObject(mem, ThreadSlots{}, o)
		if o.Type != object.TFree || o.Str != "" || o.Native != nil {
			t.Fatalf("freed object not cleared: %+v", o)
		}
		if mem.Peek(o.AddrOf(object.SlotAlloc)).Bits != 0 {
			t.Fatalf("alloc flag survived FreeObject")
		}
		if h.FreeCount() != 100 {
			t.Fatalf("free count = %d, want 100", h.FreeCount())
		}
		o2, err := h.AllocObject(mem, ThreadSlots{}, object.TObject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if o2.Index != idx {
			t.Fatalf("freed slot not at list head: got %d want %d", o2.Index, idx)
		}
	})
	t.Run("thread-local", func(t *testing.T) {
		mem, h := mkHeap(1000, true)
		ts := mkThreadSlots(mem)
		o, err := h.AllocObject(mem, ts, object.TFloat, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx := o.Index
		before := mem.Peek(ts.TLCount).Bits
		h.FreeObject(mem, ts, o)
		if got := mem.Peek(ts.TLCount).Bits; got != before+1 {
			t.Fatalf("TL count = %d, want %d", got, before+1)
		}
		o2, err := h.AllocObject(mem, ts, object.TObject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if o2.Index != idx {
			t.Fatalf("freed slot not at TL head: got %d want %d", o2.Index, idx)
		}
	})
}

func TestConcurrentAllocationConflictsOnGlobalList(t *testing.T) {
	mem, h := mkHeap(1000, false) // no thread-local lists: the paper's conflict
	a, b := mem.Tx(0), mem.Tx(1)
	a.Begin(1<<20, 1<<20)
	b.Begin(1<<20, 1<<20)
	if _, err := h.AllocObject(a, ThreadSlots{}, object.TFloat, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AllocObject(b, ThreadSlots{}, object.TFloat, nil); err != nil {
		t.Fatal(err)
	}
	if !a.Doomed() {
		t.Fatalf("concurrent global-list allocations did not conflict")
	}
	a.Rollback()
	if !b.Commit() {
		t.Fatalf("winner failed to commit")
	}
	if cc := mem.ConflictCounts()["freelist"]; cc == 0 {
		t.Fatalf("conflict not attributed to freelist: %v", mem.ConflictCounts())
	}
}
