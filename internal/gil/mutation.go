//go:build mutation

package gil

// MutDropWakeup, when set under the mutation build tag, makes Release lose
// the spinner wakeups — a seeded lost-wakeup bug the schedule explorer must
// detect (internal/explore mutation validation).
var MutDropWakeup = false
