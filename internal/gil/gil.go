// Package gil implements the Giant VM Lock of CRuby 1.9 on top of the
// simulated machine: a single global lock with FIFO handoff, a timer thread
// that periodically flags the running application thread so it yields at
// the next yield point, and a spin/wait facility used by the transactional
// lock elision of the paper (threads that merely wait for the GIL to become
// free without acquiring it).
//
// The lock state is mirrored into one word of simulated memory so that
// hardware transactions can subscribe to it: every transaction reads the
// GIL word into its read set at begin time, and the non-transactional store
// performed by an acquisition dooms all of them — exactly the Transactional
// Lock Elision protocol of the paper.
package gil

import (
	"htmgil/internal/choice"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// Costs holds the cycle costs of GIL operations.
type Costs struct {
	Acquire    int64 // uncontended acquisition
	Release    int64 // release with no waiter
	Handoff    int64 // extra latency to transfer ownership to a waiter
	SchedYield int64 // sched_yield() system call at a GIL yield point
}

// DefaultCosts returns the cost model used by the experiments.
func DefaultCosts() Costs {
	return Costs{Acquire: 180, Release: 120, Handoff: 400, SchedYield: 800}
}

// Stats counts GIL activity.
type Stats struct {
	Acquisitions uint64
	Contended    uint64
	Yields       uint64
	HoldCycles   int64
}

// GIL is the Giant VM Lock.
type GIL struct {
	mem    *simmem.Memory
	engine *sched.Engine
	costs  Costs

	// Addr is the simulated address of the GIL.acquired word. Transactions
	// read it at begin; acquisitions store to it non-transactionally.
	Addr simmem.Addr

	owner      *sched.Thread
	ownedSince int64
	waiters    []*sched.Thread // blocked until they own the GIL (FIFO)
	spinners   []*sched.Thread // blocked until the GIL is merely released

	// InterruptFlag is set on the owner by the timer thread; the owner
	// checks it at yield points. It stands in for CRuby's per-thread
	// interrupt flag.
	interruptFlagged map[*sched.Thread]bool

	Stats Stats

	// Tracer, when non-nil, receives gil-acquire/gil-release events.
	Tracer *trace.Recorder

	// TimerJitter, when non-nil, perturbs each timer period: it receives
	// the current virtual time and the nominal interval and returns the
	// interval actually used. Installed by the fault-injection harness.
	TimerJitter func(now, interval int64) int64

	// HazardTrack, when set (by the TLE runtime when a lazy-subscription
	// policy is active), opens a simmem hazard window for the duration of
	// every GIL hold: lines the holder writes non-transactionally doom
	// transactions that touch them, standing in for the begin-time
	// subscription those transactions skipped.
	HazardTrack bool

	// Chooser, when non-nil, picks which waiter receives the GIL on
	// release instead of strict FIFO order. Installed by internal/explore;
	// index 0 is the FIFO head, so a zero chooser changes nothing.
	Chooser choice.Chooser

	// ShardID attributes this lock's trace events to a keyspace shard in
	// sharded-GIL mode. It is 1-based like trace.Event.Shard: 0 (the
	// default) marks the root/global GIL, s+1 marks shard s.
	ShardID int
}

// New creates a GIL whose state word lives in its own line of mem.
func New(mem *simmem.Memory, engine *sched.Engine, costs Costs) *GIL {
	g := &GIL{
		mem:              mem,
		engine:           engine,
		costs:            costs,
		Addr:             mem.Reserve("gil", simmem.WordBytes),
		interruptFlagged: make(map[*sched.Thread]bool),
	}
	return g
}

// Acquired reports whether some thread currently holds the GIL. This is the
// plain (non-transactional) read used on fallback paths; transactional code
// must read g.Addr through its transaction instead.
func (g *GIL) Acquired() bool { return g.owner != nil }

// Owner returns the current holder, or nil.
func (g *GIL) Owner() *sched.Thread { return g.owner }

// HeldBy reports whether th holds the GIL.
func (g *GIL) HeldBy(th *sched.Thread) bool { return g.owner == th }

// TryAcquire acquires the GIL if it is free and returns (cycles, true), or
// (cycles, false) if it is held. It never blocks.
func (g *GIL) TryAcquire(th *sched.Thread, now int64) (int64, bool) {
	if g.owner != nil {
		return 0, false
	}
	g.take(th, now)
	return g.costs.Acquire, true
}

// take installs th as owner and publishes the state to simulated memory,
// dooming every transaction that subscribed to the GIL word.
func (g *GIL) take(th *sched.Thread, now int64) {
	g.owner = th
	g.ownedSince = now
	g.Stats.Acquisitions++
	g.mem.Store(g.Addr, simmem.Word{Bits: 1})
	if g.HazardTrack {
		g.mem.StartHazard()
	}
	if g.Tracer != nil {
		ev := trace.Ev(now, trace.KindGILAcquire)
		ev.Thread = th.ID
		ev.Shard = g.ShardID
		g.Tracer.Emit(ev)
	}
}

// BlockingAcquire acquires the GIL, enqueueing th as a waiter when it is
// held. It returns (cycles, true) on immediate acquisition; (0, false)
// means the thread must return sched.Blocked and will be woken owning the
// GIL (ownership handoff happens in Release).
func (g *GIL) BlockingAcquire(th *sched.Thread, now int64) (int64, bool) {
	if cycles, ok := g.TryAcquire(th, now); ok {
		return cycles, true
	}
	g.Stats.Contended++
	g.waiters = append(g.waiters, th)
	return 0, false
}

// WaitFree registers th to be woken when the GIL is next released, without
// acquiring it. The caller must return sched.Blocked. This implements the
// spin-wait of the paper's spin_and_gil_acquire().
func (g *GIL) WaitFree(th *sched.Thread) {
	g.spinners = append(g.spinners, th)
}

// Release releases the GIL held by th at time now. If waiters are queued,
// ownership is handed to the first (it wakes already owning the lock); all
// spinners wake too.
func (g *GIL) Release(th *sched.Thread, now int64) int64 {
	if g.owner != th {
		panic("gil: release by non-owner")
	}
	g.Stats.HoldCycles += now - g.ownedSince
	if g.Tracer != nil {
		ev := trace.Ev(now, trace.KindGILRelease)
		ev.Thread = th.ID
		ev.Cycles = now - g.ownedSince
		ev.Shard = g.ShardID
		g.Tracer.Emit(ev)
	}
	g.owner = nil
	g.mem.Store(g.Addr, simmem.Word{Bits: 0})
	if g.HazardTrack {
		g.mem.EndHazard()
	}
	cost := g.costs.Release

	// Wake spinners: the lock is (momentarily) free. MutDropWakeup is the
	// explorer-validation mutation: it silently loses the wakeups, leaving
	// the spinners parked forever (a lost-wakeup bug the schedule explorer
	// must detect as a deadlock).
	if !MutDropWakeup {
		for _, sp := range g.spinners {
			g.engine.Wake(sp, now+cost)
		}
	}
	g.spinners = g.spinners[:0]

	if len(g.waiters) > 0 {
		idx := 0
		if g.Chooser != nil && len(g.waiters) > 1 {
			idx = g.Chooser.Choose(choice.Handoff, len(g.waiters))
		}
		next := g.waiters[idx]
		g.waiters = append(g.waiters[:idx], g.waiters[idx+1:]...)
		g.take(next, now+cost+g.costs.Handoff)
		g.engine.Wake(next, now+cost+g.costs.Handoff)
	}
	return cost
}

// WaiterCount returns the number of threads blocked waiting to own the GIL.
// The explorer uses it to offer voluntary-yield choice points only when
// there is somebody to yield to.
func (g *GIL) WaiterCount() int { return len(g.waiters) }

// YieldCost returns the cost of a full GIL yield (release + sched_yield +
// re-acquire), used by the GIL-mode interpreter at flagged yield points.
func (g *GIL) YieldCost() int64 {
	return g.costs.Release + g.costs.SchedYield + g.costs.Acquire
}

// Costs returns the cycle cost model.
func (g *GIL) CostModel() Costs { return g.costs }

// FlagInterrupt sets the timer-interrupt flag on th.
func (g *GIL) FlagInterrupt(th *sched.Thread) { g.interruptFlagged[th] = true }

// ConsumeInterrupt reports and clears th's timer-interrupt flag.
func (g *GIL) ConsumeInterrupt(th *sched.Thread) bool {
	if g.interruptFlagged[th] {
		delete(g.interruptFlagged, th)
		return true
	}
	return false
}

// ThreadExited drops any interrupt flag still pending for a dead thread. A
// thread that exits between being flagged by the timer and reaching its next
// yield point would otherwise leave its entry in the map forever — on a long
// server run that is one leaked entry per flagged-then-finished request
// thread.
func (g *GIL) ThreadExited(th *sched.Thread) {
	delete(g.interruptFlagged, th)
}

// FlaggedCount returns the number of threads with a pending interrupt flag
// (test hook for the bookkeeping above).
func (g *GIL) FlaggedCount() int { return len(g.interruptFlagged) }

// StartTimer installs the CRuby timer thread: every interval cycles it
// flags the current GIL owner (if any), which will then yield the GIL at
// its next yield point. It keeps rescheduling itself until the engine
// stops; `while` gates rescheduling so benchmarks can end the timer.
func (g *GIL) StartTimer(interval int64, while func() bool) {
	var tick func(now int64)
	next := func(now int64) int64 {
		if g.TimerJitter == nil {
			return interval
		}
		return g.TimerJitter(now, interval)
	}
	tick = func(now int64) {
		if g.owner != nil {
			g.FlagInterrupt(g.owner)
		}
		if while == nil || while() {
			g.engine.At(now+next(now), tick)
		}
	}
	g.engine.At(next(0), tick)
}
