package gil

import (
	"testing"

	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// TestWaiterQueueFIFOFairnessUnderTimer is the waiter-queue fairness
// regression test: with several threads contending for the GIL while the
// timer thread flags the owner, handoff must stay strictly FIFO — after the
// initial enqueue, the acquisition sequence is a perfect round-robin of the
// contenders, and no thread acquires twice before every other contender
// acquired once.
func TestWaiterQueueFIFOFairnessUnderTimer(t *testing.T) {
	const (
		nthreads = 5 // >= 4 contenders per the regression's scope
		rounds   = 20
		interval = 5000 // timer period in cycles, >> the re-enqueue latency
	)
	mem := simmem.NewMemory(simmem.Config{LineBytes: 64}, nthreads)
	eng := sched.NewEngine(sched.Config{HWThreads: nthreads})
	g := New(mem, eng, DefaultCosts())

	var order []int
	running := nthreads
	for i := 0; i < nthreads; i++ {
		id := i
		var th *sched.Thread
		held := 0
		const (
			phAcquire = iota
			phWake
			phHold
		)
		phase := phAcquire
		// Threads start staggered so their first BlockingAcquire calls (and
		// hence the initial waiter order) are deterministic: 0 gets the GIL,
		// 1..4 enqueue in id order.
		th = eng.Spawn("w", int64(10*i), func(now int64) sched.StepResult {
			switch phase {
			case phAcquire:
				c, ok := g.BlockingAcquire(th, now)
				if !ok {
					phase = phWake
					return sched.StepResult{Cycles: 1, Status: sched.Blocked}
				}
				order = append(order, id)
				phase = phHold
				return sched.StepResult{Cycles: c, Status: sched.Running}
			case phWake:
				// Woken by the handoff: we must own the lock.
				if !g.HeldBy(th) {
					t.Fatalf("thread %d woke without ownership", id)
				}
				order = append(order, id)
				phase = phHold
				return sched.StepResult{Cycles: 0, Status: sched.Running}
			default: // phHold: run until the timer flags us, then yield.
				if g.ConsumeInterrupt(th) {
					g.Release(th, now)
					held++
					if held == rounds {
						running--
						return sched.StepResult{Cycles: 1, Status: sched.Done}
					}
					phase = phAcquire
					return sched.StepResult{Cycles: 1, Status: sched.Running}
				}
				return sched.StepResult{Cycles: 100, Status: sched.Running}
			}
		})
	}
	g.StartTimer(interval, func() bool { return running > 0 })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if len(order) != nthreads*rounds {
		t.Fatalf("acquisitions = %d, want %d", len(order), nthreads*rounds)
	}
	// The first cycle fixes the round-robin permutation; every later
	// acquisition must repeat it with period nthreads.
	for i := nthreads; i < len(order); i++ {
		if order[i] != order[i-nthreads] {
			t.Fatalf("FIFO violated at acquisition %d: %v", i, order[:i+1])
		}
	}
	// No thread may acquire twice within any window of nthreads
	// acquisitions (the no-starvation reading of FIFO handoff).
	for start := 0; start+nthreads <= len(order); start++ {
		seen := make(map[int]bool, nthreads)
		for _, id := range order[start : start+nthreads] {
			if seen[id] {
				t.Fatalf("thread %d acquired twice in window %d: %v",
					id, start, order[start:start+nthreads])
			}
			seen[id] = true
		}
	}
}
