package gil

import (
	"testing"

	"htmgil/internal/fault"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// TestWaiterQueueFIFOFairnessUnderTimer is the waiter-queue fairness
// regression test: with several threads contending for the GIL while the
// timer thread flags the owner, handoff must stay strictly FIFO — after the
// initial enqueue, the acquisition sequence is a perfect round-robin of the
// contenders, and no thread acquires twice before every other contender
// acquired once.
//
// The table sweeps the fault harness's timer-jitter channel (fixed seeds):
// fairness is a property of the waiter queue, so perturbing every timer
// period must never break the round-robin, only shift its phase.
func TestWaiterQueueFIFOFairnessUnderTimer(t *testing.T) {
	cases := []struct {
		name string
		spec string // fault spec text; "" = undisturbed timer
		seed int64
	}{
		{"no-jitter", "", 0},
		{"jitter-mild", "timerjitter=0.2", 1},
		{"jitter-heavy", "timerjitter=0.9", 2},
		{"jitter-heavy-reseeded", "timerjitter=0.9", 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			order := fairnessRun(t, c.spec, c.seed)
			checkRoundRobin(t, order)
			// Same spec and seed: the full acquisition schedule replays.
			again := fairnessRun(t, c.spec, c.seed)
			if len(again) != len(order) {
				t.Fatalf("replay length %d != %d", len(again), len(order))
			}
			for i := range order {
				if order[i] != again[i] {
					t.Fatalf("replay diverged at acquisition %d", i)
				}
			}
		})
	}
}

const (
	fairThreads  = 5 // >= 4 contenders per the regression's scope
	fairRounds   = 20
	fairInterval = 5000 // timer period in cycles, >> the re-enqueue latency
)

// fairnessRun drives fairThreads contenders through fairRounds timer-paced
// GIL acquisitions each, with the given fault spec's timer jitter installed,
// and returns the acquisition order.
func fairnessRun(t *testing.T, specText string, seed int64) []int {
	t.Helper()
	mem := simmem.NewMemory(simmem.Config{LineBytes: 64}, fairThreads)
	eng := sched.NewEngine(sched.Config{HWThreads: fairThreads})
	g := New(mem, eng, DefaultCosts())
	if specText != "" {
		spec, err := fault.ParseSpec(specText)
		if err != nil {
			t.Fatal(err)
		}
		g.TimerJitter = fault.NewInjector(spec, seed, nil).TimerInterval
	}

	var order []int
	running := fairThreads
	for i := 0; i < fairThreads; i++ {
		id := i
		var th *sched.Thread
		held := 0
		const (
			phAcquire = iota
			phWake
			phHold
		)
		phase := phAcquire
		// Threads start staggered so their first BlockingAcquire calls (and
		// hence the initial waiter order) are deterministic: 0 gets the GIL,
		// 1..4 enqueue in id order.
		th = eng.Spawn("w", int64(10*i), func(now int64) sched.StepResult {
			switch phase {
			case phAcquire:
				c, ok := g.BlockingAcquire(th, now)
				if !ok {
					phase = phWake
					return sched.StepResult{Cycles: 1, Status: sched.Blocked}
				}
				order = append(order, id)
				phase = phHold
				return sched.StepResult{Cycles: c, Status: sched.Running}
			case phWake:
				// Woken by the handoff: we must own the lock.
				if !g.HeldBy(th) {
					t.Fatalf("thread %d woke without ownership", id)
				}
				order = append(order, id)
				phase = phHold
				return sched.StepResult{Cycles: 0, Status: sched.Running}
			default: // phHold: run until the timer flags us, then yield.
				if g.ConsumeInterrupt(th) {
					g.Release(th, now)
					held++
					if held == fairRounds {
						running--
						return sched.StepResult{Cycles: 1, Status: sched.Done}
					}
					phase = phAcquire
					return sched.StepResult{Cycles: 1, Status: sched.Running}
				}
				return sched.StepResult{Cycles: 100, Status: sched.Running}
			}
		})
	}
	g.StartTimer(fairInterval, func() bool { return running > 0 })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return order
}

// checkRoundRobin asserts the FIFO-fairness invariants on an acquisition
// order: the first cycle fixes the round-robin permutation, every later
// acquisition repeats it with period fairThreads, and no thread acquires
// twice within any window of fairThreads acquisitions.
func checkRoundRobin(t *testing.T, order []int) {
	t.Helper()
	if len(order) != fairThreads*fairRounds {
		t.Fatalf("acquisitions = %d, want %d", len(order), fairThreads*fairRounds)
	}
	for i := fairThreads; i < len(order); i++ {
		if order[i] != order[i-fairThreads] {
			t.Fatalf("FIFO violated at acquisition %d: %v", i, order[:i+1])
		}
	}
	for start := 0; start+fairThreads <= len(order); start++ {
		seen := make(map[int]bool, fairThreads)
		for _, id := range order[start : start+fairThreads] {
			if seen[id] {
				t.Fatalf("thread %d acquired twice in window %d: %v",
					id, start, order[start:start+fairThreads])
			}
			seen[id] = true
		}
	}
}
