package gil

import (
	"testing"

	"htmgil/internal/fault"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// newSharded builds a root GIL plus n shard locks on a fresh engine.
func newSharded(hwThreads, n int) (*Sharded, *sched.Engine, *simmem.Memory) {
	mem := simmem.NewMemory(simmem.Config{LineBytes: 64}, hwThreads)
	eng := sched.NewEngine(sched.Config{HWThreads: hwThreads})
	root := New(mem, eng, DefaultCosts())
	return NewSharded(root, n), eng, mem
}

// TestShardFIFOFairnessUnderTimer extends the waiter-queue fairness
// regression to a shard lock: contenders acquiring one shard GIL through
// the Sharded protocol (root untouched) must hand off strictly FIFO, with
// or without timer jitter, and the schedule must replay under the same
// seed.
func TestShardFIFOFairnessUnderTimer(t *testing.T) {
	cases := []struct {
		name string
		spec string
		seed int64
	}{
		{"no-jitter", "", 0},
		{"jitter-mild", "timerjitter=0.2", 4},
		{"jitter-heavy", "timerjitter=0.9", 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			order := shardFairnessRun(t, c.spec, c.seed)
			checkRoundRobin(t, order)
			again := shardFairnessRun(t, c.spec, c.seed)
			if len(again) != len(order) {
				t.Fatalf("replay length %d != %d", len(again), len(order))
			}
			for i := range order {
				if order[i] != again[i] {
					t.Fatalf("replay diverged at acquisition %d", i)
				}
			}
		})
	}
}

// shardFairnessRun drives fairThreads contenders through fairRounds
// timer-paced acquisitions of shard 2 of a 4-shard Sharded and returns the
// acquisition order.
func shardFairnessRun(t *testing.T, specText string, seed int64) []int {
	t.Helper()
	const sh = 2
	s, eng, _ := newSharded(fairThreads, 4)
	g := s.Shards[sh]
	if specText != "" {
		spec, err := fault.ParseSpec(specText)
		if err != nil {
			t.Fatal(err)
		}
		g.TimerJitter = fault.NewInjector(spec, seed, nil).TimerInterval
	}

	var order []int
	running := fairThreads
	for i := 0; i < fairThreads; i++ {
		id := i
		var th *sched.Thread
		held := 0
		const (
			phAcquire = iota
			phWake
			phHold
		)
		phase := phAcquire
		th = eng.Spawn("w", int64(10*i), func(now int64) sched.StepResult {
			switch phase {
			case phAcquire:
				c, ok := s.AcquireShard(th, sh, now)
				if !ok {
					phase = phWake
					return sched.StepResult{Cycles: 1, Status: sched.Blocked}
				}
				order = append(order, id)
				phase = phHold
				return sched.StepResult{Cycles: c, Status: sched.Running}
			case phWake:
				// Root is never taken in this test, so a wake can only be
				// the shard lock's FIFO handoff.
				if !g.HeldBy(th) {
					t.Fatalf("thread %d woke without shard ownership", id)
				}
				order = append(order, id)
				phase = phHold
				return sched.StepResult{Cycles: 0, Status: sched.Running}
			default:
				if g.ConsumeInterrupt(th) {
					s.ReleaseShard(th, sh, now)
					held++
					if held == fairRounds {
						running--
						return sched.StepResult{Cycles: 1, Status: sched.Done}
					}
					phase = phAcquire
					return sched.StepResult{Cycles: 1, Status: sched.Running}
				}
				return sched.StepResult{Cycles: 100, Status: sched.Running}
			}
		})
	}
	g.StartTimer(fairInterval, func() bool { return running > 0 })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return order
}

// shardHolder spawns a thread that acquires shard sh at start, holds it for
// roughly holdCycles, releases, and stamps the release time.
func shardHolder(t *testing.T, s *Sharded, eng *sched.Engine, sh int, start, holdCycles int64, released *int64) {
	t.Helper()
	var th *sched.Thread
	phase := 0
	th = eng.Spawn("h", start, func(now int64) sched.StepResult {
		switch phase {
		case 0:
			c, ok := s.AcquireShard(th, sh, now)
			if !ok {
				t.Fatalf("shard %d holder failed immediate acquisition", sh)
			}
			phase = 1
			return sched.StepResult{Cycles: c + holdCycles, Status: sched.Running}
		default:
			c := s.ReleaseShard(th, sh, now)
			*released = now
			return sched.StepResult{Cycles: c + 1, Status: sched.Done}
		}
	})
}

// TestRootDrainsShards scripts the full drain protocol: a root requester
// parks while shard locks are held; a later shard requester is gated even
// though its own shard is free; the last shard release admits the root;
// the root release admits the gated shard.
func TestRootDrainsShards(t *testing.T) {
	s, eng, _ := newSharded(8, 4)

	var relA, relB int64
	shardHolder(t, s, eng, 0, 0, 10_000, &relA)
	shardHolder(t, s, eng, 1, 5, 14_000, &relB)

	var rootAt, rootRel int64 = -1, -1
	var gatedAt, lateAt int64 = -1, -1
	gateRefused := false

	// Root requester arrives while both shard holds are live.
	var rth *sched.Thread
	rphase := 0
	rth = eng.Spawn("root", 100, func(now int64) sched.StepResult {
		switch rphase {
		case 0:
			_, ok := s.AcquireRoot(rth, now)
			if ok {
				t.Fatalf("root acquired at %d with shard holds live", now)
			}
			rphase = 1
			return sched.StepResult{Cycles: 1, Status: sched.Blocked}
		case 1:
			// Drain wake: retry; by now every shard hold must have drained.
			if s.Root.HeldBy(rth) {
				t.Fatalf("drain wake must not imply ownership")
			}
			c, ok := s.AcquireRoot(rth, now)
			if !ok {
				return sched.StepResult{Cycles: 1, Status: sched.Blocked}
			}
			if n := s.holds(); n != 0 {
				t.Fatalf("root acquired with %d shard holds live", n)
			}
			rootAt = now
			rphase = 2
			return sched.StepResult{Cycles: c + 2_000, Status: sched.Running}
		default:
			c := s.ReleaseRoot(rth, now)
			rootRel = now
			return sched.StepResult{Cycles: c + 1, Status: sched.Done}
		}
	})

	// Shard-2 requester arrives after the drain began: shard 2 is free, but
	// the gate must park it until the root cycle completes.
	var gth *sched.Thread
	gphase := 0
	gth = eng.Spawn("gated", 200, func(now int64) sched.StepResult {
		switch gphase {
		case 0:
			_, ok := s.AcquireShard(gth, 2, now)
			if ok {
				t.Fatalf("shard 2 acquired at %d during a root drain", now)
			}
			gateRefused = true
			gphase = 1
			return sched.StepResult{Cycles: 1, Status: sched.Blocked}
		case 1:
			if s.Shards[2].HeldBy(gth) {
				t.Fatalf("gate wake must not imply ownership")
			}
			c, ok := s.AcquireShard(gth, 2, now)
			if !ok {
				return sched.StepResult{Cycles: 1, Status: sched.Blocked}
			}
			gatedAt = now
			gphase = 2
			return sched.StepResult{Cycles: c + 100, Status: sched.Running}
		default:
			c := s.ReleaseShard(gth, 2, now)
			return sched.StepResult{Cycles: c + 1, Status: sched.Done}
		}
	})

	// A very late shard requester sees a settled system and acquires
	// immediately.
	var lth *sched.Thread
	lphase := 0
	lth = eng.Spawn("late", 60_000, func(now int64) sched.StepResult {
		switch lphase {
		case 0:
			c, ok := s.AcquireShard(lth, 3, now)
			if !ok {
				lphase = 1
				return sched.StepResult{Cycles: 1, Status: sched.Blocked}
			}
			lateAt = now
			lphase = 2
			return sched.StepResult{Cycles: c + 10, Status: sched.Running}
		case 1:
			c, ok := s.AcquireShard(lth, 3, now)
			if !ok {
				return sched.StepResult{Cycles: 1, Status: sched.Blocked}
			}
			lateAt = now
			lphase = 2
			return sched.StepResult{Cycles: c + 10, Status: sched.Running}
		default:
			c := s.ReleaseShard(lth, 3, now)
			return sched.StepResult{Cycles: c + 1, Status: sched.Done}
		}
	})

	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rootAt < 0 || rootRel < 0 || gatedAt < 0 || lateAt < 0 {
		t.Fatalf("scenario incomplete: rootAt=%d rootRel=%d gatedAt=%d lateAt=%d",
			rootAt, rootRel, gatedAt, lateAt)
	}
	if !gateRefused {
		t.Fatalf("shard request during drain was not gated")
	}
	if rootAt < relA || rootAt < relB {
		t.Fatalf("root acquired at %d before shard releases (%d, %d)", rootAt, relA, relB)
	}
	if gatedAt < rootRel {
		t.Fatalf("gated shard acquired at %d before root release at %d", gatedAt, rootRel)
	}
}

// TestRootExcludesShards: while the root GIL is held, any shard
// acquisition gates, whatever shard it names; the root release wakes the
// gated requesters and they then acquire their (distinct) shards at the
// same virtual time — disjoint shard locks do not serialize against each
// other.
func TestRootExcludesShards(t *testing.T) {
	s, eng, _ := newSharded(8, 4)

	var rootRel int64 = -1
	var rth *sched.Thread
	rphase := 0
	rth = eng.Spawn("root", 0, func(now int64) sched.StepResult {
		switch rphase {
		case 0:
			c, ok := s.AcquireRoot(rth, now)
			if !ok {
				t.Fatalf("uncontended root acquisition failed")
			}
			rphase = 1
			return sched.StepResult{Cycles: c + 5_000, Status: sched.Running}
		default:
			c := s.ReleaseRoot(rth, now)
			rootRel = now
			return sched.StepResult{Cycles: c + 1, Status: sched.Done}
		}
	})

	acquiredAt := [2]int64{-1, -1}
	for i := 0; i < 2; i++ {
		sh := i // distinct shards 0 and 1
		idx := i
		var th *sched.Thread
		phase := 0
		th = eng.Spawn("w", int64(100+10*i), func(now int64) sched.StepResult {
			switch phase {
			case 0:
				_, ok := s.AcquireShard(th, sh, now)
				if ok {
					t.Fatalf("shard %d acquired at %d while root held", sh, now)
				}
				phase = 1
				return sched.StepResult{Cycles: 1, Status: sched.Blocked}
			case 1:
				c, ok := s.AcquireShard(th, sh, now)
				if !ok {
					return sched.StepResult{Cycles: 1, Status: sched.Blocked}
				}
				acquiredAt[idx] = now
				phase = 2
				return sched.StepResult{Cycles: c + 500, Status: sched.Running}
			default:
				c := s.ReleaseShard(th, sh, now)
				return sched.StepResult{Cycles: c + 1, Status: sched.Done}
			}
		})
	}

	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, at := range acquiredAt {
		if at < 0 {
			t.Fatalf("gated shard requester %d never acquired", i)
		}
		if at < rootRel {
			t.Fatalf("shard %d acquired at %d before root release at %d", i, at, rootRel)
		}
	}
	if acquiredAt[0] != acquiredAt[1] {
		t.Fatalf("disjoint shards serialized: acquisitions at %d and %d",
			acquiredAt[0], acquiredAt[1])
	}
}

// TestShardStatsIndependent: acquisitions of different shards land in their
// own Stats counters and the root's stay untouched.
func TestShardStatsIndependent(t *testing.T) {
	s, eng, _ := newSharded(4, 3)
	var rel0, rel2 int64
	shardHolder(t, s, eng, 0, 0, 1_000, &rel0)
	shardHolder(t, s, eng, 2, 0, 1_000, &rel2)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Shards[0].Stats.Acquisitions != 1 || s.Shards[2].Stats.Acquisitions != 1 {
		t.Fatalf("shard acquisitions = %d, %d, want 1, 1",
			s.Shards[0].Stats.Acquisitions, s.Shards[2].Stats.Acquisitions)
	}
	if s.Shards[1].Stats.Acquisitions != 0 || s.Root.Stats.Acquisitions != 0 {
		t.Fatalf("untouched locks recorded acquisitions")
	}
	if s.Shards[0].Stats.HoldCycles < 1_000 || s.Shards[2].Stats.HoldCycles < 1_000 {
		t.Fatalf("hold cycles not accounted: %d, %d",
			s.Shards[0].Stats.HoldCycles, s.Shards[2].Stats.HoldCycles)
	}
}
