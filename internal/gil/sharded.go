package gil

import (
	"fmt"

	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// Sharded coordinates one root GIL plus one GIL per keyspace shard. It
// implements the multi-GIL mode of the sharded-datastore experiments:
// transactions whose footprint stays inside a single shard may fall back to
// that shard's lock, so fallbacks of disjoint shards serialize against each
// other instead of against the whole VM, while everything that needs global
// mutual exclusion (interpreter-level natives, cross-shard fallbacks,
// restricted operations) still takes the root GIL.
//
// The two lock levels form a strict hierarchy with no lock-ordering
// obligations on callers:
//
//   - A shard acquisition is gated on the root: while the root GIL is held
//     or a root acquisition is draining, AcquireShard parks the caller on
//     the gate queue instead of touching its shard lock.
//   - A root acquisition first drains the shards: while any shard GIL is
//     held, AcquireRoot parks the caller on the drain queue; the release of
//     the last shard hold wakes it. New shard acquisitions are gated as soon
//     as a drain begins, so the drain is bounded by the in-flight holds
//     (each of which covers a single yield interval — see internal/core).
//
// Threads woken from the gate or drain queues do not own anything; they
// re-run their acquisition, which keeps the protocol deadlock-free and
// deterministic (queues are FIFO and wakes go through the engine clock).
type Sharded struct {
	Root   *GIL
	Shards []*GIL

	engine *sched.Engine
	drain  []*sched.Thread // root requesters waiting for shard holds to drain
	gate   []*sched.Thread // shard requesters gated behind a root hold/drain
}

// MaxShards bounds the shard count; shard masks are uint64 bitmaps.
const MaxShards = 64

// NewSharded wraps root with n per-shard GILs sharing its cost model. Each
// shard lock's state word lives in its own cache line, so transactional
// subscriptions to different shards never conflict.
func NewSharded(root *GIL, n int) *Sharded {
	if n < 1 || n > MaxShards {
		panic(fmt.Sprintf("gil: shard count %d out of range [1,%d]", n, MaxShards))
	}
	s := &Sharded{Root: root, engine: root.engine}
	for i := 0; i < n; i++ {
		g := &GIL{
			mem:              root.mem,
			engine:           root.engine,
			costs:            root.costs,
			Addr:             root.mem.Reserve(fmt.Sprintf("gil-shard%02d", i), simmem.WordBytes),
			interruptFlagged: make(map[*sched.Thread]bool),
			ShardID:          i + 1,
		}
		s.Shards = append(s.Shards, g)
	}
	return s
}

// holds counts currently-held shard GILs. Shard counts are small (≤64), so a
// scan is cheaper than maintaining a counter across the handoff paths.
func (s *Sharded) holds() int {
	n := 0
	for _, g := range s.Shards {
		if g.Acquired() {
			n++
		}
	}
	return n
}

// ByAddr returns the GIL whose state word is addr (root or shard), or nil
// when addr is not a lock word. Fallback-abort attribution uses it to tell
// lock-word dooms (TLE artifacts) from data conflicts.
func (s *Sharded) ByAddr(addr simmem.Addr) *GIL {
	if addr == s.Root.Addr {
		return s.Root
	}
	for _, g := range s.Shards {
		if addr == g.Addr {
			return g
		}
	}
	return nil
}

// AcquireShard acquires shard lock sh for th. Returns (cycles, true) on
// immediate acquisition. (0, false) means th must return sched.Blocked; when
// woken it either owns the shard lock (FIFO handoff from the previous
// holder) or was parked on the root gate and must retry the acquisition —
// callers distinguish the two with Shards[sh].HeldBy(th).
func (s *Sharded) AcquireShard(th *sched.Thread, sh int, now int64) (int64, bool) {
	if s.Root.Acquired() || len(s.drain) > 0 {
		// Root held or a root requester is draining the shards: gate the
		// acquisition so the drain stays bounded.
		s.gate = append(s.gate, th)
		return 0, false
	}
	return s.Shards[sh].BlockingAcquire(th, now)
}

// AcquireRoot acquires the root GIL for th, draining shard holds first.
// Returns like AcquireShard: a woken thread owns the root iff
// Root.HeldBy(th), otherwise it was parked on the drain queue and retries.
func (s *Sharded) AcquireRoot(th *sched.Thread, now int64) (int64, bool) {
	if s.Root.Acquired() {
		// Queue on the root lock itself; the handoff wakes th owning it.
		// Shard holds cannot accumulate behind a held root (the gate blocks
		// them), so the no-shard-holds invariant carries over the handoff.
		return s.Root.BlockingAcquire(th, now)
	}
	if s.holds() > 0 {
		s.drain = append(s.drain, th)
		return 0, false
	}
	return s.Root.BlockingAcquire(th, now)
}

// ReleaseShard releases shard lock sh held by th. When the last shard hold
// drains and root requesters are queued, they are woken to retry.
func (s *Sharded) ReleaseShard(th *sched.Thread, sh int, now int64) int64 {
	c := s.Shards[sh].Release(th, now)
	if len(s.drain) > 0 && s.holds() == 0 {
		for _, d := range s.drain {
			s.engine.Wake(d, now+c)
		}
		s.drain = s.drain[:0]
	}
	return c
}

// ReleaseRoot releases the root GIL held by th. If the root handed off to a
// queued root waiter the gate stays closed; otherwise gated shard requesters
// are woken to retry their shard acquisitions.
func (s *Sharded) ReleaseRoot(th *sched.Thread, now int64) int64 {
	c := s.Root.Release(th, now)
	if !s.Root.Acquired() && len(s.gate) > 0 {
		for _, g := range s.gate {
			s.engine.Wake(g, now+c)
		}
		s.gate = s.gate[:0]
	}
	return c
}

// ShardCount returns the number of shard GILs.
func (s *Sharded) ShardCount() int { return len(s.Shards) }
