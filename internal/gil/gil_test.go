package gil

import (
	"testing"

	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

func setup() (*simmem.Memory, *sched.Engine, *GIL) {
	mem := simmem.NewMemory(simmem.Config{LineBytes: 64}, 4)
	eng := sched.NewEngine(sched.Config{HWThreads: 4})
	g := New(mem, eng, DefaultCosts())
	return mem, eng, g
}

func TestUncontendedAcquireRelease(t *testing.T) {
	mem, eng, g := setup()
	var th *sched.Thread
	th = eng.Spawn("t", 0, func(now int64) sched.StepResult {
		c, ok := g.TryAcquire(th, now)
		if !ok || c != DefaultCosts().Acquire {
			t.Fatalf("TryAcquire = %d, %v", c, ok)
		}
		if !g.HeldBy(th) || !g.Acquired() {
			t.Fatalf("ownership wrong")
		}
		if mem.Peek(g.Addr).Bits != 1 {
			t.Fatalf("GIL word not published")
		}
		c2 := g.Release(th, now+100)
		if c2 != DefaultCosts().Release {
			t.Fatalf("release cost = %d", c2)
		}
		if g.Acquired() || mem.Peek(g.Addr).Bits != 0 {
			t.Fatalf("release not published")
		}
		return sched.StepResult{Cycles: c + c2 + 100, Status: sched.Done}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Stats.Acquisitions != 1 || g.Stats.HoldCycles != 100 {
		t.Fatalf("stats = %+v", g.Stats)
	}
}

func TestContendedHandoffFIFO(t *testing.T) {
	_, eng, g := setup()
	var order []string
	mk := func(name string, holdFor int64) {
		var th *sched.Thread
		phase := 0
		th = eng.Spawn(name, 0, func(now int64) sched.StepResult {
			switch phase {
			case 0:
				phase = 1
				if c, ok := g.BlockingAcquire(th, now); ok {
					order = append(order, name)
					return sched.StepResult{Cycles: c + holdFor, Status: sched.Running}
				}
				return sched.StepResult{Cycles: 1, Status: sched.Blocked}
			case 1:
				// Either just acquired inline, or woken owning the GIL.
				if !g.HeldBy(th) {
					if len(order) == 0 || order[len(order)-1] != name {
						order = append(order, name)
					}
					t.Fatalf("%s resumed without ownership", name)
				}
				if order[len(order)-1] != name {
					order = append(order, name)
				}
				phase = 2
				return sched.StepResult{Cycles: holdFor, Status: sched.Running}
			default:
				g.Release(th, now)
				return sched.StepResult{Cycles: 1, Status: sched.Done}
			}
		})
	}
	mk("a", 100)
	mk("b", 100)
	mk("c", 100)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("handoff order = %v", order)
	}
	if g.Stats.Contended != 2 {
		t.Fatalf("contended = %d, want 2", g.Stats.Contended)
	}
}

func TestAcquisitionDoomsSubscribedTransactions(t *testing.T) {
	mem, eng, g := setup()
	tx := mem.Tx(0)
	tx.Begin(1024, 1024)
	tx.Load(g.Addr) // subscribe, as TLE transactions do
	var th *sched.Thread
	th = eng.Spawn("t", 0, func(now int64) sched.StepResult {
		g.TryAcquire(th, now)
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !tx.Doomed() || tx.DoomCause() != simmem.CauseConflict {
		t.Fatalf("subscribed transaction not doomed by GIL acquisition")
	}
	tx.Rollback()
}

func TestWaitFreeWakesOnRelease(t *testing.T) {
	_, eng, g := setup()
	var holder, spinner *sched.Thread
	spinnerWoke := false
	holder = eng.Spawn("holder", 0, func(now int64) sched.StepResult {
		if !g.HeldBy(holder) {
			c, _ := g.TryAcquire(holder, now)
			return sched.StepResult{Cycles: c + 500, Status: sched.Running}
		}
		g.Release(holder, now)
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	})
	phase := 0
	spinner = eng.Spawn("spinner", 10, func(now int64) sched.StepResult {
		if phase == 0 {
			phase = 1
			g.WaitFree(spinner)
			return sched.StepResult{Cycles: 1, Status: sched.Blocked}
		}
		if g.Acquired() {
			t.Fatalf("spinner woke while GIL still held")
		}
		spinnerWoke = true
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !spinnerWoke {
		t.Fatalf("spinner never woke")
	}
}

func TestTimerFlagsOwner(t *testing.T) {
	_, eng, g := setup()
	var th *sched.Thread
	sawFlag := false
	n := 0
	th = eng.Spawn("t", 0, func(now int64) sched.StepResult {
		if !g.HeldBy(th) {
			c, _ := g.TryAcquire(th, now)
			return sched.StepResult{Cycles: c, Status: sched.Running}
		}
		n++
		if g.ConsumeInterrupt(th) {
			sawFlag = true
			g.Release(th, now)
			return sched.StepResult{Cycles: 1, Status: sched.Done}
		}
		if n > 10000 {
			t.Fatalf("timer never flagged the owner")
		}
		return sched.StepResult{Cycles: 100, Status: sched.Running}
	})
	g.StartTimer(5000, func() bool { return !sawFlag })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawFlag {
		t.Fatalf("interrupt flag never observed")
	}
}

// TestInterruptFlagClearedOnThreadExit is the regression test for the
// interrupt-flag leak: a thread that exits between being flagged by the
// timer and reaching its next yield point must not leave its entry in the
// flag map behind (one leaked entry per flagged-then-finished request
// thread on a long server run).
func TestInterruptFlagClearedOnThreadExit(t *testing.T) {
	_, eng, g := setup()
	var th *sched.Thread
	th = eng.Spawn("t", 0, func(now int64) sched.StepResult {
		if !g.HeldBy(th) {
			c, _ := g.TryAcquire(th, now)
			return sched.StepResult{Cycles: c, Status: sched.Running}
		}
		// Run past one timer period so the timer flags us, then exit
		// without ever consuming the flag.
		if now < 20_000 {
			return sched.StepResult{Cycles: 1000, Status: sched.Running}
		}
		g.Release(th, now)
		g.ThreadExited(th)
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	})
	g.StartTimer(5000, func() bool { return g.FlaggedCount() == 0 })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if g.FlaggedCount() != 0 {
		t.Fatalf("exited thread leaked %d interrupt-flag entries", g.FlaggedCount())
	}
}

// TestThreadExitedWithoutFlagIsNoop: clearing a never-flagged thread must
// not disturb other threads' pending flags.
func TestThreadExitedWithoutFlagIsNoop(t *testing.T) {
	_, eng, g := setup()
	a := eng.Spawn("a", 0, func(now int64) sched.StepResult {
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	})
	b := eng.Spawn("b", 0, func(now int64) sched.StepResult {
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	g.FlagInterrupt(a)
	g.ThreadExited(b)
	if g.FlaggedCount() != 1 || !g.ConsumeInterrupt(a) {
		t.Fatalf("ThreadExited(b) disturbed a's flag (count=%d)", g.FlaggedCount())
	}
	g.ThreadExited(a)
	if g.FlaggedCount() != 0 {
		t.Fatalf("count = %d after all exits", g.FlaggedCount())
	}
}
