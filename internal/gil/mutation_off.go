//go:build !mutation

package gil

// MutDropWakeup is a seeded bug used to validate the schedule explorer
// (see internal/explore): when true, Release loses the spinner wakeups.
// In normal builds it is a false constant, so the guarded branch compiles
// away; `go test -tags mutation` turns it into a settable variable.
const MutDropWakeup = false
