package core

import (
	"fmt"
	"testing"

	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/policy"
	"htmgil/internal/trace"
)

// mustSpec parses a fault spec or fails the test.
func mustSpec(t *testing.T, text string) *fault.Spec {
	t.Helper()
	s, err := fault.ParseSpec(text)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", text, err)
	}
	return s
}

// TestPoliciesUnderSpuriousStorm drives every registered contention policy
// through the TLE protocol on a contended counter while the fault harness
// delivers a heavy spurious-abort storm. Whatever mix of retries, backoff
// parking and GIL fallbacks the policy chooses, no update may be lost, and
// the storm must actually bite (faults injected, sections falling back).
func TestPoliciesUnderSpuriousStorm(t *testing.T) {
	cases := []struct {
		name string
		spec string
		seed int64
	}{
		{"storm-heavy", "spurious=2000", 1},
		{"storm-light", "spurious=20000", 2},
		{"storm-capacity", "spurious=8000,capjitter=0.5:0.1", 3},
	}
	for _, name := range policy.Names() {
		for _, c := range cases {
			t.Run(name+"/"+c.name, func(t *testing.T) {
				prof := htm.ZEC12()
				p, err := policy.New(name, prof)
				if err != nil {
					t.Fatal(err)
				}
				const n, iters = 4, 200
				r := newRigPolicy(t, prof, p, n)
				inj := fault.NewInjector(mustSpec(t, c.spec), c.seed, nil)
				for i := 0; i < n; i++ {
					hctx := r.worker(t, prof, i, iters, 0, 0)
					hctx.Faults = inj.HTMContext(i)
				}
				if err := r.eng.Run(); err != nil {
					t.Fatal(err)
				}
				if got := r.mem.Peek(r.ctrAdr).Bits; got != uint64(n*iters) {
					t.Fatalf("policy %s under %s: counter = %d, want %d (lost updates!)",
						name, c.spec, got, n*iters)
				}
				// occ-first never begins hardware transactions, so an
				// HTM-channel storm cannot bite it; the lost-update check
				// above still exercises the software tier under contention.
				if inj.Total() == 0 && name != "occ-first" {
					t.Fatalf("storm injected nothing; test is vacuous")
				}
			})
		}
	}
}

// TestSpuriousStormForcesFallbacks pins the retry/fallback dynamics of the
// paper policy under a storm dense enough that transactions rarely survive:
// the retry budget must exhaust and sections must complete under the GIL.
func TestSpuriousStormForcesFallbacks(t *testing.T) {
	prof := htm.ZEC12()
	r := newRig(t, prof, DefaultParams(prof), 4)
	inj := fault.NewInjector(mustSpec(t, "spurious=500"), 1, nil)
	const iters = 100
	for i := 0; i < 4; i++ {
		r.worker(t, prof, i, iters, 0, 0).Faults = inj.HTMContext(i)
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.mem.Peek(r.ctrAdr).Bits; got != 4*iters {
		t.Fatalf("counter = %d, want %d", got, 4*iters)
	}
	if r.el.Fallbacks == 0 {
		t.Fatalf("dense storm never forced a GIL fallback")
	}
	if r.gil.Stats.Acquisitions == 0 {
		t.Fatalf("fallbacks recorded but the GIL was never acquired")
	}
}

// TestDeterministicChaosRun: the whole stack — TLE, policy, fault streams —
// replays byte-identically from the same seed.
func TestDeterministicChaosRun(t *testing.T) {
	prof := htm.ZEC12()
	run := func() (uint64, uint64, uint64, uint64) {
		r := newRig(t, prof, DefaultParams(prof), 4)
		inj := fault.NewInjector(mustSpec(t, "spurious=4000,capjitter=0.3:0.2"), 7, nil)
		for i := 0; i < 4; i++ {
			r.worker(t, prof, i, 300, 0, 0).Faults = inj.HTMContext(i)
		}
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return r.mem.Peek(r.ctrAdr).Bits, r.gil.Stats.Acquisitions, r.el.Fallbacks, inj.Total()
	}
	c1, a1, f1, t1 := run()
	c2, a2, f2, t2 := run()
	if c1 != c2 || a1 != a2 || f1 != f2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			c1, a1, f1, t1, c2, a2, f2, t2)
	}
}

// TestBreakerStormAcceptance is the end-to-end acceptance scenario of the
// chaos harness:
//
//  1. a healthy phase commits transactionally and arms the breaker;
//  2. a persistent spurious-abort storm begins; retries exhaust, sections
//     fall back, and the breaker opens — the workload degrades to GIL-only
//     but keeps producing correct results;
//  3. the storm clears (until=); cooldown expires, half-open probes commit,
//     and the breaker settles closed — elision recovers.
//
// Everything is seeded, so the transition history is checked exactly and the
// whole scenario must replay byte-for-byte.
func TestBreakerStormAcceptance(t *testing.T) {
	// A clean 4x3000 run lasts ~750k virtual cycles (~60 cycles/section),
	// so the timeline below leaves a healthy arming phase, a storm long
	// enough to trip the breaker through several cooldown probes, and ample
	// post-storm work for the recovery to settle.
	const (
		nthreads   = 4
		iters      = 3000
		stormStart = 100_000
		stormEnd   = 400_000
	)
	type result struct {
		counter     uint64
		opens       uint64
		final       string
		transitions string
		faults      uint64
	}
	run := func() result {
		prof := htm.ZEC12()
		r := newRig(t, prof, DefaultParams(prof), nthreads)
		r.el.Breaker = NewBreaker(BreakerConfig{
			Window: 32, TripFallbacks: 24, CooldownCycles: 50_000, ProbeTarget: 8,
		})
		// Storm: mean 300 cycles between spurious aborts per context — far
		// shorter than a critical section, so while it lasts essentially no
		// transaction survives to commit.
		spec := mustSpec(t, fmt.Sprintf("spurious=300,until=%d", stormEnd))
		inj := fault.NewInjector(spec, 1, nil)
		var ctxs []*htm.Context
		for i := 0; i < nthreads; i++ {
			ctxs = append(ctxs, r.worker(t, prof, i, iters, 0, 0))
		}
		// The storm begins mid-run: attach the per-context fault hooks at
		// stormStart, after the healthy phase has armed the breaker.
		r.eng.At(stormStart, func(now int64) {
			for i, c := range ctxs {
				c.Faults = inj.HTMContext(i)
			}
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		b := r.el.Breaker
		var hist string
		for _, tr := range b.Transitions {
			hist += tr.State + ";"
		}
		return result{
			counter:     r.mem.Peek(r.ctrAdr).Bits,
			opens:       b.Opens,
			final:       b.State().String(),
			transitions: hist,
			faults:      inj.Total(),
		}
	}

	res := run()
	if res.counter != nthreads*iters {
		t.Fatalf("counter = %d, want %d — degraded mode corrupted results", res.counter, nthreads*iters)
	}
	if res.faults == 0 {
		t.Fatalf("storm injected nothing")
	}
	if res.opens == 0 {
		t.Fatalf("breaker never opened under a persistent storm (transitions: %s)", res.transitions)
	}
	if res.final != "closed" {
		t.Fatalf("breaker state = %s after the fault cleared, want closed (transitions: %s)",
			res.final, res.transitions)
	}
	// The history must end with a recovery: ... open -> half-open -> closed.
	const tail = "open;half-open;closed;"
	if len(res.transitions) < len(tail) || res.transitions[len(res.transitions)-len(tail):] != tail {
		t.Fatalf("transition history does not end in a recovery: %s", res.transitions)
	}

	if res2 := run(); res != res2 {
		t.Fatalf("acceptance scenario not reproducible:\n  %+v\n  %+v", res, res2)
	}
}

// TestBreakerOpenRoutesAroundPolicy: while the breaker is open every section
// must take the GIL with the breaker-open fallback reason, without
// consulting the policy.
func TestBreakerOpenRoutesAroundPolicy(t *testing.T) {
	prof := htm.ZEC12()
	agg := trace.NewAggregator()
	r := newRig(t, prof, DefaultParams(prof), 2)
	r.el.Tracer = trace.NewRecorder(agg)
	b := NewBreaker(BreakerConfig{Window: 8, TripFallbacks: 6, CooldownCycles: 1 << 60, ProbeTarget: 2})
	r.el.Breaker = b
	// Trip it by hand; the cooldown never expires within the run.
	for i := 0; i < b.Cfg.Window; i++ {
		b.RecordCommit(0)
	}
	for i := 0; i < b.Cfg.TripFallbacks; i++ {
		b.RecordFallback(0)
	}
	const iters = 50
	for i := 0; i < 2; i++ {
		r.worker(t, prof, i, iters, 0, 0)
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.mem.Peek(r.ctrAdr).Bits; got != 2*iters {
		t.Fatalf("counter = %d, want %d", got, 2*iters)
	}
	if agg.Begins != 0 {
		t.Fatalf("open breaker admitted %d transaction begins", agg.Begins)
	}
	if agg.FallbackReasons[BreakerReason] != 2*iters {
		t.Fatalf("fallback reasons = %v, want %d %s", agg.FallbackReasons, 2*iters, BreakerReason)
	}
}
