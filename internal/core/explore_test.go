package core_test

// Schedule-exploration entry points for the elision engine: the explorer
// (internal/explore) enumerates bounded interleavings of programs that
// exercise the TLE protocol core owns — transaction begin/commit, the
// GIL-acquire fallback, and conflict-winner choice — and checks every
// committed schedule against the GIL-only serializability oracle.

import (
	"testing"

	"htmgil/internal/explore"
)

func exploreClean(t *testing.T, cfg explore.Config) {
	t.Helper()
	res, err := explore.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s: %s", res.Program, v.Violation)
	}
	if res.Truncated {
		t.Errorf("%s: exploration truncated (%d schedules)", res.Program, res.Schedules())
	}
}

// TestExploreElisionFallback explores the mutex program, whose critical
// sections force the blocking-native fallback from elision onto the real
// GIL: hand-off order and spinner wakeups both become choice points.
func TestExploreElisionFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration is slow")
	}
	exploreClean(t, explore.Config{Program: explore.ProgramByName("mutex"), Bound: 1})
}

// TestExploreBreakerLegality explores with the circuit breaker armed: the
// trace invariant sink rejects any illegal breaker state transition, and
// serializability must hold whether elision is on, broken open, or probing
// half-open.
func TestExploreBreakerLegality(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration is slow")
	}
	exploreClean(t, explore.Config{
		Program: explore.ProgramByName("counter"),
		Bound:   1,
		Breaker: true,
	})
}
