package core

import (
	"testing"

	"htmgil/internal/gil"
	"htmgil/internal/htm"
	"htmgil/internal/occ"
	"htmgil/internal/policy"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// rig wires a simulated machine for TLE tests.
type rig struct {
	mem    *simmem.Memory
	eng    *sched.Engine
	gil    *gil.GIL
	el     *Elision
	live   int
	ctrAdr simmem.Addr
}

func newRig(t *testing.T, prof *htm.Profile, params Params, nthreads int) *rig {
	t.Helper()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, prof.HWThreads())
	eng := sched.NewEngine(sched.Config{HWThreads: prof.HWThreads(), SMTWays: prof.SMTWays, SMTPenalty: 1.9})
	g := gil.New(mem, eng, gil.DefaultCosts())
	el := New(params, g, eng, 64)
	r := &rig{mem: mem, eng: eng, gil: g, el: el, live: nthreads}
	el.LiveAppThreads = func() int { return r.live }
	r.ctrAdr = mem.Reserve("counter", 64)
	return r
}

// newRigPolicy wires the rig around an arbitrary contention policy.
func newRigPolicy(t *testing.T, prof *htm.Profile, p policy.Policy, nthreads int) *rig {
	t.Helper()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, prof.HWThreads())
	eng := sched.NewEngine(sched.Config{HWThreads: prof.HWThreads(), SMTWays: prof.SMTWays, SMTPenalty: 1.9})
	g := gil.New(mem, eng, gil.DefaultCosts())
	el := NewWithPolicy(p, g, eng)
	if policy.UsesOCCTier(p) {
		el.OCCRT = occ.NewRuntime(mem)
	}
	r := &rig{mem: mem, eng: eng, gil: g, el: el, live: nthreads}
	el.LiveAppThreads = func() int { return r.live }
	r.ctrAdr = mem.Reserve("counter", 64)
	return r
}

// worker runs `iters` critical sections, each incrementing the shared
// counter once, beginning/ending a TLE critical section per iteration.
// It follows the exact protocol the interpreter uses. Returns the worker's
// HTM context so chaos tests can hang fault hooks on it.
func (r *rig) worker(t *testing.T, prof *htm.Profile, ctxID int, iters int, extraLines int, scratch simmem.Addr) *htm.Context {
	hctx := htm.NewContext(prof, r.mem, ctxID, int64(ctxID+1))
	tle := r.el.NewThread(hctx)
	var sth *sched.Thread
	done := 0
	const (
		phBegin = iota
		phResume
		phWork
		phEnd
	)
	phase := phBegin
	step := func(now int64) sched.StepResult {
		var cycles int64
		switch phase {
		case phBegin, phResume:
			var out Outcome
			if phase == phBegin {
				cycles, out = r.el.TransactionBegin(tle, sth, now, 1)
			} else {
				cycles, out = r.el.ResumeBegin(tle, sth, now)
			}
			if out == Block {
				phase = phResume
				return sched.StepResult{Cycles: cycles, Status: sched.Blocked}
			}
			phase = phWork
			return sched.StepResult{Cycles: cycles, Status: sched.Running}
		case phWork:
			if !tle.GILMode && !tle.OCCMode && hctx.Doomed(now) {
				c, out := r.el.HandleAbort(tle, sth, now)
				if out == Block {
					phase = phResume
					return sched.StepResult{Cycles: c, Status: sched.Blocked}
				}
				return sched.StepResult{Cycles: c, Status: sched.Running}
			}
			if tle.GILMode {
				v := r.mem.Load(r.ctrAdr)
				r.mem.Store(r.ctrAdr, simmem.Word{Bits: v.Bits + 1})
			} else if tle.OCCMode {
				v := tle.OCC.Load(r.ctrAdr)
				tle.OCC.Store(r.ctrAdr, simmem.Word{Bits: v.Bits + 1})
				for l := 0; l < extraLines; l++ {
					tle.OCC.Store(scratch+simmem.Addr(l*prof.LineBytes), simmem.Word{Bits: 1})
				}
				if tle.OCC.Doomed() {
					c, out := r.el.HandleAbort(tle, sth, now)
					if out == Block {
						phase = phResume
						return sched.StepResult{Cycles: c, Status: sched.Blocked}
					}
					return sched.StepResult{Cycles: c, Status: sched.Running}
				}
			} else {
				v := hctx.Tx.Load(r.ctrAdr)
				hctx.Tx.Store(r.ctrAdr, simmem.Word{Bits: v.Bits + 1})
				for l := 0; l < extraLines; l++ {
					hctx.Tx.Store(scratch+simmem.Addr(l*prof.LineBytes), simmem.Word{Bits: 1})
				}
				if hctx.Doomed(now) {
					// Increment rolled back; undo our private bookkeeping too.
					c, out := r.el.HandleAbort(tle, sth, now)
					if out == Block {
						phase = phResume
						return sched.StepResult{Cycles: c, Status: sched.Blocked}
					}
					return sched.StepResult{Cycles: c, Status: sched.Running}
				}
			}
			phase = phEnd
			return sched.StepResult{Cycles: 40, Status: sched.Running}
		case phEnd:
			c, ok := r.el.TransactionEnd(tle, sth, now)
			if !ok {
				c2, out := r.el.HandleAbort(tle, sth, now+c)
				phase = phWork
				if out == Block {
					phase = phResume
					return sched.StepResult{Cycles: c + c2, Status: sched.Blocked}
				}
				return sched.StepResult{Cycles: c + c2, Status: sched.Running}
			}
			done++
			if done == iters {
				r.live--
				return sched.StepResult{Cycles: c, Status: sched.Done}
			}
			phase = phBegin
			return sched.StepResult{Cycles: c, Status: sched.Running}
		}
		panic("unreachable")
	}
	sth = r.eng.Spawn("w", 0, step)
	return hctx
}

func TestSingleThreadUsesGIL(t *testing.T) {
	prof := htm.ZEC12()
	r := newRig(t, prof, DefaultParams(prof), 1)
	r.worker(t, prof, 0, 100, 0, 0)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.mem.Peek(r.ctrAdr).Bits; got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if r.gil.Stats.Acquisitions != 100 {
		t.Fatalf("single thread did not use the GIL: %d acquisitions", r.gil.Stats.Acquisitions)
	}
}

func TestMultiThreadAtomicity(t *testing.T) {
	prof := htm.ZEC12()
	for _, n := range []int{2, 4, 8, 12} {
		r := newRig(t, prof, DefaultParams(prof), n)
		scratch := r.mem.Reserve("scratch", 1<<20)
		iters := 500
		for i := 0; i < n; i++ {
			// Each worker writes private scratch lines too, to vary footprints.
			r.worker(t, prof, i, iters, i%3, scratch+simmem.Addr(i*64*256))
		}
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		if got := r.mem.Peek(r.ctrAdr).Bits; got != uint64(n*iters) {
			t.Fatalf("n=%d: counter = %d, want %d (lost updates!)", n, got, n*iters)
		}
	}
}

// TestAllPoliciesPreserveAtomicity drives every registered policy through
// the full TLE protocol on a contended counter: whatever the policy decides
// (immediate retries, backoff parking, lazy commit-time subscription, OCC
// pessimistic phases), no update may be lost. The mixed footprints force
// capacity aborts too, exercising every OnAbort branch.
func TestAllPoliciesPreserveAtomicity(t *testing.T) {
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			prof := htm.ZEC12()
			p, err := policy.New(name, prof)
			if err != nil {
				t.Fatal(err)
			}
			const n, iters = 6, 400
			r := newRigPolicy(t, prof, p, n)
			scratch := r.mem.Reserve("scratch", 1<<20)
			for i := 0; i < n; i++ {
				r.worker(t, prof, i, iters, i%3, scratch+simmem.Addr(i*64*256))
			}
			if err := r.eng.Run(); err != nil {
				t.Fatal(err)
			}
			if got := r.mem.Peek(r.ctrAdr).Bits; got != uint64(n*iters) {
				t.Fatalf("policy %s: counter = %d, want %d (lost updates!)", name, got, n*iters)
			}
		})
	}
}

// TestLazySubscriptionArmsHazardTracking guards the wiring that keeps lazy
// subscription safe: building the runtime with the lazy policy must arm the
// GIL's hazard window.
func TestLazySubscriptionArmsHazardTracking(t *testing.T) {
	prof := htm.ZEC12()
	p, err := policy.New("lazy-subscription", prof)
	if err != nil {
		t.Fatal(err)
	}
	r := newRigPolicy(t, prof, p, 2)
	if !r.gil.HazardTrack {
		t.Fatalf("lazy-subscription policy did not arm GIL hazard tracking")
	}
	r2 := newRig(t, prof, DefaultParams(prof), 2)
	if r2.gil.HazardTrack {
		t.Fatalf("paper policy armed GIL hazard tracking")
	}
}

func TestPersistentAbortFallsBackToGIL(t *testing.T) {
	prof := htm.ZEC12()
	r := newRig(t, prof, DefaultParams(prof), 2)
	// One worker whose transaction always overflows the write capacity.
	scratch := r.mem.Reserve("big", 1<<22)
	capLines := prof.WriteCapBytes / prof.LineBytes
	r.worker(t, prof, 0, 50, capLines+8, scratch)
	r.worker(t, prof, 1, 50, 0, 0)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.mem.Peek(r.ctrAdr).Bits; got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if r.gil.Stats.Acquisitions == 0 {
		t.Fatalf("persistent aborts never acquired the GIL")
	}
}

func TestDeterministicTLERun(t *testing.T) {
	prof := htm.ZEC12()
	run := func() (uint64, uint64) {
		r := newRig(t, prof, DefaultParams(prof), 4)
		for i := 0; i < 4; i++ {
			r.worker(t, prof, i, 300, 0, 0)
		}
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return r.mem.Peek(r.ctrAdr).Bits, r.gil.Stats.Acquisitions
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 || a1 != a2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, a1, c2, a2)
	}
}

func TestGILRetrySpinPath(t *testing.T) {
	// A thread whose transactions repeatedly collide with a GIL holder must
	// spin (WaitFree) up to GILRetryMax times and then acquire the GIL.
	prof := htm.ZEC12()
	r := newRig(t, prof, DefaultParams(prof), 2)
	// Worker 0 takes the GIL frequently by doing restricted-style work: we
	// emulate it by a worker with a transaction that always overflows (so
	// it always falls back to the GIL).
	scratch := r.mem.Reserve("big", 1<<22)
	capLines := prof.WriteCapBytes / prof.LineBytes
	r.worker(t, prof, 0, 200, capLines+8, scratch)
	r.worker(t, prof, 1, 200, 0, 0)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.mem.Peek(r.ctrAdr).Bits; got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
	if r.gil.Stats.Contended == 0 {
		t.Fatalf("expected contended GIL acquisitions")
	}
}
