// Package core implements the paper's primary contribution: elimination of
// the Global Interpreter Lock through Transactional Lock Elision with
// dynamic per-yield-point transaction-length adjustment.
//
// It is a faithful translation of the algorithms of Figures 1–3 of the
// paper onto the simulated machine:
//
//   - transaction_begin (Figure 1): run Ruby code as a hardware transaction
//     subscribed to the GIL word; spin while the GIL is held; retry
//     transient aborts up to TRANSIENT_RETRY_MAX times; wait out up to
//     GIL_RETRY_MAX GIL conflicts; fall back to acquiring the GIL on
//     persistent aborts or exhausted retries.
//   - transaction_end / transaction_yield (Figure 2): transactions end and
//     restart at yield points, but only after a per-yield-point number of
//     yield points (the transaction length) has been passed.
//   - set/adjust_transaction_length (Figure 3): each yield point starts at
//     INITIAL_TRANSACTION_LENGTH and is attenuated by ATTENUATION_RATE
//     whenever the abort ratio observed during its profiling period exceeds
//     ADJUSTMENT_THRESHOLD/PROFILING_PERIOD (1% on zEC12, 6% on Xeon).
//
// Because the simulator schedules threads cooperatively, the blocking
// points of Figure 1 (spinning on the GIL, acquiring the GIL) are expressed
// as a small per-thread state machine: TransactionBegin/HandleAbort return
// Block when the thread must park, and ResumeBegin continues the algorithm
// after the scheduler wakes the thread.
package core

import (
	"fmt"

	"htmgil/internal/gil"
	"htmgil/internal/htm"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// Params are the tuning constants of Figures 1 and 3, with the paper's
// published values as defaults (see Section 5.1).
type Params struct {
	TransientRetryMax int     // retries of transiently aborted transactions (3)
	GILRetryMax       int     // spin-wait rounds on GIL conflicts before acquiring (16)
	InitialLength     int32   // INITIAL_TRANSACTION_LENGTH (255)
	ProfilingPeriod   int32   // transactions profiled per yield point (300)
	AdjustThreshold   int32   // aborts tolerated within a profiling period (3 or 18)
	AttenuationRate   float64 // length multiplier on adjustment (0.75)

	// ConstantLength, when > 0, disables the dynamic adjustment and runs
	// every transaction with this fixed length (the paper's HTM-1, HTM-16
	// and HTM-256 configurations).
	ConstantLength int32
}

// DefaultParams returns the paper's constants for the given machine profile
// (the adjustment threshold differs between zEC12 and Xeon).
func DefaultParams(prof *htm.Profile) Params {
	return Params{
		TransientRetryMax: 3,
		GILRetryMax:       16,
		InitialLength:     255,
		ProfilingPeriod:   int32(prof.ProfilingPeriod),
		AdjustThreshold:   int32(prof.AdjustmentThreshold),
		AttenuationRate:   0.75,
	}
}

// Outcome tells the interpreter how to continue after a TLE step.
type Outcome uint8

const (
	// Proceed: the thread is inside a transaction or holds the GIL and may
	// execute Ruby code.
	Proceed Outcome = iota
	// Block: the thread must park (return sched.Blocked) and call
	// ResumeBegin when woken.
	Block
)

// beginState is the continuation point of the Figure 1 state machine.
type beginState uint8

const (
	stIdle        beginState = iota
	stWaitPreTx              // parked at lines 6-8, waiting for GIL release
	stWaitRetry              // parked at lines 22-26 after a GIL conflict
	stWaitAcquire            // parked in gil_acquire; wakes owning the GIL
)

// Thread is the per-Ruby-thread TLE state.
type Thread struct {
	HTM *htm.Context

	// GILMode is true while the current critical section runs under the
	// GIL instead of a transaction (fallback path).
	GILMode bool

	// ChosenLength is the transaction length selected by the most recent
	// TransactionBegin; the interpreter stores it into the thread
	// structure's yield_point_counter in simulated memory.
	ChosenLength int32

	state          beginState
	pc             int
	transientRetry int
	gilRetry       int
	firstRetry     bool

	// LastAbortCause is the cause of the most recent abort (stats).
	LastAbortCause simmem.AbortCause
}

// InCriticalSection reports whether the thread currently runs Ruby code
// (transactionally or under the GIL).
func (t *Thread) InCriticalSection() bool { return t.GILMode || t.HTM.InTx() }

// Elision is the global TLE state: the per-yield-point length tables and
// the machinery shared by all threads.
type Elision struct {
	Params Params
	GIL    *gil.GIL
	Engine *sched.Engine

	// LiveAppThreads reports the number of live Ruby application threads;
	// with a single live thread the algorithm reverts to the GIL.
	LiveAppThreads func() int

	lengths    []int32
	txCounter  []int32
	abortCount []int32

	// Tracer, when non-nil, receives the tx lifecycle events: tx-begin,
	// tx-commit, tx-abort, gil-fallback and len-adjust. All htm.Context
	// begin/end/abort calls go through this layer, so trace-side counts
	// reconstruct htm.Stats exactly.
	Tracer *trace.Recorder

	// Stats
	Adjustments uint64 // number of length attenuations performed
	Fallbacks   uint64 // critical sections that fell back to the GIL
}

// New creates the TLE runtime for a program with numYieldPoints yield-point
// sites (the compiler assigns each yield-point instruction a dense id).
func New(params Params, g *gil.GIL, engine *sched.Engine, numYieldPoints int) *Elision {
	return &Elision{
		Params:     params,
		GIL:        g,
		Engine:     engine,
		lengths:    make([]int32, numYieldPoints),
		txCounter:  make([]int32, numYieldPoints),
		abortCount: make([]int32, numYieldPoints),
	}
}

// NewThread creates the TLE state for one Ruby thread bound to an HTM
// context.
func (e *Elision) NewThread(ctx *htm.Context) *Thread {
	return &Thread{HTM: ctx}
}

// grow ensures the per-PC tables cover pc (programs can load code at
// runtime, adding yield points).
func (e *Elision) grow(pc int) {
	for pc >= len(e.lengths) {
		e.lengths = append(e.lengths, 0)
		e.txCounter = append(e.txCounter, 0)
		e.abortCount = append(e.abortCount, 0)
	}
}

// LengthAt returns the current transaction length for a yield point
// (Figure 3 semantics: 0 means not yet initialized).
func (e *Elision) LengthAt(pc int) int32 {
	if pc < len(e.lengths) {
		return e.lengths[pc]
	}
	return 0
}

// Lengths returns a copy of the per-yield-point length table.
func (e *Elision) Lengths() []int32 {
	out := make([]int32, len(e.lengths))
	copy(out, e.lengths)
	return out
}

// setTransactionLength implements set_transaction_length of Figure 3.
func (e *Elision) setTransactionLength(t *Thread, pc int) {
	if e.Params.ConstantLength > 0 {
		t.ChosenLength = e.Params.ConstantLength
		return
	}
	e.grow(pc)
	if e.lengths[pc] == 0 {
		e.lengths[pc] = e.Params.InitialLength
	}
	t.ChosenLength = e.lengths[pc]
	if e.txCounter[pc] < e.Params.ProfilingPeriod {
		e.txCounter[pc]++
	}
}

// adjustTransactionLength implements adjust_transaction_length of Figure 3,
// called on the first retry of an aborted transaction.
func (e *Elision) adjustTransactionLength(pc int) {
	if e.Params.ConstantLength > 0 {
		return
	}
	e.grow(pc)
	// Figure 3 line 14 as written never ends the profiling period because
	// line 8 caps the counter at PROFILING_PERIOD; the text makes the
	// intent clear ("before the PROFILING_PERIOD number of transactions
	// began"), so monitoring stops once the counter saturates.
	if e.lengths[pc] <= 1 || e.txCounter[pc] >= e.Params.ProfilingPeriod {
		return
	}
	if e.abortCount[pc] <= e.Params.AdjustThreshold {
		e.abortCount[pc]++
		return
	}
	old := e.lengths[pc]
	nl := int32(float64(old) * e.Params.AttenuationRate)
	if nl < 1 {
		nl = 1
	}
	e.lengths[pc] = nl
	e.txCounter[pc] = 0
	e.abortCount[pc] = 0
	e.Adjustments++
	if e.Tracer != nil {
		ev := trace.Ev(e.timeNow(), trace.KindLenAdjust)
		ev.PC = pc
		ev.OldLen = old
		ev.Len = nl
		e.Tracer.Emit(ev)
	}
}

// timeNow returns the engine's virtual time; unit tests build Elision
// without an engine, in which case events carry time 0.
func (e *Elision) timeNow() int64 {
	if e.Engine != nil {
		return e.Engine.Now()
	}
	return 0
}

// sthID returns a scheduler thread's id for event attribution, -1 when the
// thread is unknown.
func sthID(sth *sched.Thread) int {
	if sth == nil {
		return -1
	}
	return sth.ID
}

// TransactionBegin implements transaction_begin of Figure 1 for the yield
// point pc. On Proceed the thread either runs inside a fresh transaction
// (t.GILMode false) or holds the GIL (t.GILMode true). On Block the thread
// must park and call ResumeBegin when woken.
func (e *Elision) TransactionBegin(t *Thread, sth *sched.Thread, now int64, pc int) (int64, Outcome) {
	if t.state != stIdle {
		panic(fmt.Sprintf("core: TransactionBegin in state %d", t.state))
	}
	t.pc = pc
	// Lines 2-3: a lone thread needs no concurrency; use the GIL.
	if e.LiveAppThreads() <= 1 {
		return e.acquireGIL(t, sth, now, "single-thread")
	}
	// Line 5.
	e.setTransactionLength(t, pc)
	// Lines 9-11.
	t.transientRetry = e.Params.TransientRetryMax
	t.gilRetry = e.Params.GILRetryMax
	t.firstRetry = true
	// Lines 6-8: wait until the GIL is free before beginning.
	if e.GIL.Acquired() {
		e.GIL.WaitFree(sth)
		t.state = stWaitPreTx
		return 2, Block
	}
	return e.tryBegin(t, sth, now)
}

// tryBegin issues TBEGIN and subscribes to the GIL word (lines 13-15).
func (e *Elision) tryBegin(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	cycles := t.HTM.Begin(now)
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindTxBegin)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Len = t.ChosenLength
		e.Tracer.Emit(ev)
	}
	w := t.HTM.Tx.Load(e.GIL.Addr)
	if w.Bits != 0 {
		// Line 15: the GIL was grabbed between our check and TBEGIN.
		t.HTM.ExplicitAbort()
	}
	t.state = stIdle
	t.GILMode = false
	return cycles, Proceed
	// A transaction doomed during Begin (learning model, immediate GIL
	// conflict) is detected by the interpreter's doom check right after
	// this returns, which routes into HandleAbort.
}

// acquireGIL performs gil_acquire, blocking when contended. reason records
// why the critical section fell back to the GIL (stats and tracing); every
// entry here is one fallback, counted once even when the acquisition blocks
// (ResumeBegin does not re-enter).
func (e *Elision) acquireGIL(t *Thread, sth *sched.Thread, now int64, reason string) (int64, Outcome) {
	e.Fallbacks++
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindGILFallback)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Note = reason
		e.Tracer.Emit(ev)
	}
	cycles, ok := e.GIL.BlockingAcquire(sth, now)
	if !ok {
		t.state = stWaitAcquire
		return 0, Block
	}
	t.state = stIdle
	t.GILMode = true
	return cycles, Proceed
}

// ResumeBegin continues the Figure 1 state machine after a wake-up.
func (e *Elision) ResumeBegin(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	switch t.state {
	case stWaitPreTx, stWaitRetry:
		// The GIL was released while we spun; begin (or re-begin) the
		// transaction. If it was re-acquired in the meantime the TBEGIN
		// subscription aborts us and we come back through HandleAbort.
		return e.tryBegin(t, sth, now)
	case stWaitAcquire:
		// Woken by the GIL handoff: we own the lock.
		if !e.GIL.HeldBy(sth) {
			panic("core: woke from gil_acquire without ownership")
		}
		t.state = stIdle
		t.GILMode = true
		return 0, Proceed
	default:
		panic(fmt.Sprintf("core: ResumeBegin in state %d", t.state))
	}
}

// HandleAbort implements the abort path (lines 16-37 of Figure 1). The
// interpreter calls it after rolling its private state back to the
// beginning of the transaction. Outcomes are as for TransactionBegin.
func (e *Elision) HandleAbort(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	var doomAddr simmem.Addr
	if e.Tracer != nil {
		doomAddr = t.HTM.Tx.DoomAddr() // Rollback clears it; read first
	}
	cause, penalty := t.HTM.Abort()
	t.LastAbortCause = cause
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindTxAbort)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Cause = cause.String()
		if cause == simmem.CauseConflict {
			ev.Region = t.HTM.Mem.RegionLabel(doomAddr)
		}
		e.Tracer.Emit(ev)
	}
	cycles := penalty
	// Lines 17-20: adjust the length on the first retry only.
	if t.firstRetry {
		t.firstRetry = false
		e.adjustTransactionLength(t.pc)
	}
	switch {
	case e.GIL.Acquired():
		// Lines 21-27: conflict at the GIL.
		t.gilRetry--
		if t.gilRetry > 0 {
			e.GIL.WaitFree(sth)
			t.state = stWaitRetry
			return cycles, Block
		}
		c, out := e.acquireGIL(t, sth, now+cycles, "gil-contention")
		return cycles + c, out
	case !cause.Transient():
		// Lines 28-29: persistent abort; retrying cannot succeed.
		c, out := e.acquireGIL(t, sth, now+cycles, "persistent-abort")
		return cycles + c, out
	default:
		// Lines 31-35: transient abort; retry a bounded number of times.
		t.transientRetry--
		if t.transientRetry > 0 {
			c, out := e.tryBegin(t, sth, now+cycles)
			return cycles + c, out
		}
		c, out := e.acquireGIL(t, sth, now+cycles, "retry-exhausted")
		return cycles + c, out
	}
}

// TransactionEnd implements transaction_end of Figure 2. It returns the
// cycle cost and whether the critical section committed; on false the
// transaction failed at commit and the interpreter must roll back its
// private state and call HandleAbort.
func (e *Elision) TransactionEnd(t *Thread, sth *sched.Thread, now int64) (int64, bool) {
	if t.GILMode {
		cost := e.GIL.Release(sth, now)
		t.GILMode = false
		return cost, true
	}
	cycles, ok := t.HTM.End(now)
	if ok && e.Tracer != nil {
		ev := trace.Ev(now, trace.KindTxCommit)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		e.Tracer.Emit(ev)
	}
	return cycles, ok
}
