// Package core implements the paper's primary contribution: elimination of
// the Global Interpreter Lock through Transactional Lock Elision.
//
// core owns the *mechanics* of elision on the simulated machine — issuing
// TBEGIN, subscribing transactions to the GIL word, parking and resuming
// threads at the blocking points of Figure 1, acquiring the fallback lock,
// and emitting the tx lifecycle trace events. Every *decision* (elide or
// take the GIL, at what transaction length, and how to react to an abort)
// is delegated to an internal/policy.Policy. The paper's Figure 1-3
// algorithm is policy.PaperDynamic; see internal/policy for the full family
// of strategies.
//
// Because the simulator schedules threads cooperatively, the blocking
// points of Figure 1 (spinning on the GIL, acquiring the GIL, backing off
// after an abort) are expressed as a small per-thread state machine:
// TransactionBegin/HandleAbort return Block when the thread must park, and
// ResumeBegin continues the algorithm after the scheduler wakes the thread.
package core

import (
	"fmt"
	"math/bits"

	"htmgil/internal/gil"
	"htmgil/internal/htm"
	"htmgil/internal/occ"
	"htmgil/internal/policy"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// Params are the tuning constants of Figures 1 and 3. They live in
// internal/policy now; the alias keeps the historical core API.
type Params = policy.Params

// DefaultParams returns the paper's constants for the given machine profile
// (the adjustment threshold differs between zEC12 and Xeon).
func DefaultParams(prof *htm.Profile) Params { return policy.DefaultParams(prof) }

// Outcome tells the interpreter how to continue after a TLE step.
type Outcome uint8

const (
	// Proceed: the thread is inside a transaction or holds the GIL and may
	// execute Ruby code.
	Proceed Outcome = iota
	// Block: the thread must park (return sched.Blocked) and call
	// ResumeBegin when woken.
	Block
)

// beginState is the continuation point of the Figure 1 state machine.
type beginState uint8

const (
	stIdle         beginState = iota
	stWaitPreTx               // parked at lines 6-8, waiting for GIL release
	stWaitRetry               // parked after an abort (GIL spin or backoff)
	stWaitAcquire             // parked in gil_acquire; wakes owning the GIL
	stWaitRetryOCC            // parked after a software-tier abort; re-begins in the tier
)

// Thread is the per-Ruby-thread TLE state.
type Thread struct {
	HTM *htm.Context

	// OCC is the thread's software-transaction context, non-nil only when
	// the active policy uses the tier (Elision.OCCRT).
	OCC *occ.Tx

	// PS is the policy's per-thread state (retry budgets, backoff ladders).
	PS policy.ThreadState

	// GILMode is true while the current critical section runs under the
	// GIL instead of a transaction (fallback path).
	GILMode bool

	// OCCMode is true while the current critical section runs in the
	// software-transaction tier.
	OCCMode bool

	// ChosenLength is the transaction length selected by the most recent
	// TransactionBegin; the interpreter stores it into the thread
	// structure's yield_point_counter in simulated memory.
	ChosenLength int32

	// ShardMask is the set of keyspace shards the current critical section
	// has touched (bit s = shard s), maintained by TouchShard in sharded-GIL
	// mode and zero otherwise. It persists across an abort into HandleAbort,
	// where it routes single-shard fallbacks to their shard's GIL.
	ShardMask uint64

	state beginState
	pc    int
	lazy  bool // current section runs with lazy GIL subscription

	// heldShard is the shard whose GIL this thread holds while GILMode is
	// set (-1: the root GIL). wantShard is the lock targeted by an
	// in-flight blocked acquisition. abortShard remembers which shard's
	// held lock triggered the most recent explicit abort (-1: the root),
	// so HandleAbort spins on the right lock.
	heldShard  int
	wantShard  int
	abortShard int

	// LastAbortCause is the cause of the most recent abort (stats).
	LastAbortCause simmem.AbortCause
}

// InCriticalSection reports whether the thread currently runs Ruby code
// (transactionally or under the GIL).
func (t *Thread) InCriticalSection() bool { return t.GILMode || t.OCCMode || t.HTM.InTx() }

// DeadlineSource reports the absolute-deadline budget of the request a
// scheduler thread is currently serving. Implemented by
// resilience.DeadlineTable; wired by the VM when deadline propagation is
// armed.
type DeadlineSource interface {
	// Remaining returns the cycles left until the thread's request deadline
	// (negative once past), with ok=false when the thread carries none.
	Remaining(thread int, now int64) (remaining int64, ok bool)
}

// Elision is the global TLE state: the contention-management policy and the
// machinery shared by all threads.
type Elision struct {
	Policy policy.Policy
	GIL    *gil.GIL
	Engine *sched.Engine

	// Deadlines, when non-nil, is the request-deadline source backing the
	// policy seam's DeadlineRuntime probe (policy.DeadlineGate).
	Deadlines DeadlineSource

	// LiveAppThreads reports the number of live Ruby application threads;
	// the policies revert to the GIL when only one thread is live.
	LiveAppThreads func() int

	// Tracer, when non-nil, receives the tx lifecycle events: tx-begin,
	// tx-commit, tx-abort, gil-fallback and len-adjust. All htm.Context
	// begin/end/abort calls go through this layer, so trace-side counts
	// reconstruct htm.Stats exactly.
	Tracer *trace.Recorder

	// Breaker, when non-nil, is the elision circuit breaker: while open,
	// every critical section goes straight to the GIL without consulting
	// the policy (fallback reason BreakerReason).
	Breaker *Breaker

	// OCCRT is the software-transaction tier runtime, non-nil only when
	// the policy uses the tier (set by the VM after construction).
	OCCRT *occ.Runtime

	// Sharded, when non-nil, is the multi-GIL coordinator of the sharded
	// keyspace mode: single-shard critical sections fall back to their
	// shard's GIL, cross-shard ones to the root. Attached by the VM via
	// AttachSharded; GIL remains the root lock either way.
	Sharded *gil.Sharded

	// Stats
	Adjustments uint64 // number of length attenuations performed
	Fallbacks   uint64 // critical sections that fell back to the GIL

	// ShardFallbacks counts, per shard, the fallbacks routed to that
	// shard's GIL (a subset of Fallbacks). Nil when unsharded.
	ShardFallbacks []uint64

	// CrossShardLeaks counts statements that, while holding one shard's
	// GIL, touched a different shard. Leaks are benign for correctness
	// (shard-GIL sections span a single statement; see DESIGN.md §13) but
	// mark workloads whose static shard analysis under-approximates their
	// footprint.
	CrossShardLeaks uint64

	// curThread is the scheduler thread id whose policy hooks are running
	// right now (the engine is single-threaded, so one at a time); -1
	// outside any hook. It keys the Deadlines lookups.
	curThread int
}

// New creates the TLE runtime with the paper's algorithm selected by
// params: ConstantLength > 0 builds the fixed-length configuration,
// otherwise the dynamic Figure 3 policy. numYieldPoints is retained for API
// compatibility; policy tables grow on demand.
func New(params Params, g *gil.GIL, engine *sched.Engine, numYieldPoints int) *Elision {
	var p policy.Policy
	if params.ConstantLength > 0 {
		p = policy.NewFixedLength(params, params.ConstantLength)
	} else {
		p = policy.NewPaperDynamic(params)
	}
	return NewWithPolicy(p, g, engine)
}

// NewWithPolicy creates the TLE runtime driven by an arbitrary policy.
func NewWithPolicy(p policy.Policy, g *gil.GIL, engine *sched.Engine) *Elision {
	if (policy.UsesLazySubscription(p) || policy.UsesOCCTier(p)) && g != nil {
		// Both lazy subscription and the software tier read memory while a
		// GIL holder may be mid-section; the hazard window models the
		// resulting unsafe-read dooms.
		g.HazardTrack = true
	}
	return &Elision{
		Policy:    p,
		GIL:       g,
		Engine:    engine,
		curThread: -1,
	}
}

// NewThread creates the TLE state for one Ruby thread bound to an HTM
// context.
func (e *Elision) NewThread(ctx *htm.Context) *Thread {
	t := &Thread{HTM: ctx, PS: e.Policy.NewThread(), heldShard: -1, wantShard: -1, abortShard: -1}
	if e.OCCRT != nil {
		t.OCC = e.OCCRT.NewTx(ctx.Tx.ID())
	}
	return t
}

// AttachSharded switches the runtime into sharded-GIL mode. s.Root must be
// the GIL this Elision was built with.
func (e *Elision) AttachSharded(s *gil.Sharded) {
	if s.Root != e.GIL {
		panic("core: AttachSharded root mismatch")
	}
	e.Sharded = s
	e.ShardFallbacks = make([]uint64, len(s.Shards))
}

// TouchShard records that the current critical section touches keyspace
// shard s. The first touch of each shard per section subscribes a hardware
// transaction to that shard's lock word (aborting immediately when it is
// held — the per-shard analogue of Figure 1 line 15), extends a software
// transaction's commit-blocking set, and — under a shard GIL — counts a
// cross-shard leak when s is not the held shard. No-op when unsharded.
func (e *Elision) TouchShard(t *Thread, s int) {
	if e.Sharded == nil || s < 0 || s >= len(e.Sharded.Shards) {
		return
	}
	bit := uint64(1) << uint(s)
	if t.ShardMask&bit != 0 {
		return
	}
	t.ShardMask |= bit
	switch {
	case t.GILMode:
		if t.heldShard >= 0 && t.heldShard != s {
			e.CrossShardLeaks++
		}
	case t.OCCMode:
		// Mask only: a held shard lock blocks the commit (TransactionEnd)
		// and its hazard window dooms unsafe reads, like the root GIL.
	case t.HTM.InTx():
		if t.HTM.Tx.Doomed() {
			return // keep the original doom cause/addr for attribution
		}
		w := t.HTM.Tx.Load(e.Sharded.Shards[s].Addr)
		if w.Bits != 0 {
			t.abortShard = s
			t.HTM.ExplicitAbort()
		}
	}
}

// LengthAt returns the current transaction length for a yield point when
// the policy keeps a length table (0 otherwise; Figure 3 semantics: 0 also
// means not yet initialized).
func (e *Elision) LengthAt(pc int) int32 {
	type lengthAt interface{ LengthAt(pc int) int32 }
	if la, ok := e.Policy.(lengthAt); ok {
		return la.LengthAt(pc)
	}
	return 0
}

// Lengths returns a copy of the policy's per-yield-point length table, or
// nil when the policy keeps none.
func (e *Elision) Lengths() []int32 { return e.Policy.Lengths() }

// Now implements policy.Runtime: the engine's virtual time; unit tests
// build Elision without an engine, in which case events carry time 0.
func (e *Elision) Now() int64 {
	if e.Engine != nil {
		return e.Engine.Now()
	}
	return 0
}

// DeadlineRemaining implements policy.DeadlineRuntime: the cycles left until
// the deadline of the request served by the thread whose policy hook is
// running, ok=false when no deadline source is wired or the thread carries
// no deadline.
func (e *Elision) DeadlineRemaining() (int64, bool) {
	if e.Deadlines == nil || e.curThread < 0 {
		return 0, false
	}
	return e.Deadlines.Remaining(e.curThread, e.Now())
}

// EmitLenAdjust implements policy.Runtime: one length attenuation.
func (e *Elision) EmitLenAdjust(pc int, oldLen, newLen int32) {
	e.Adjustments++
	if e.Tracer != nil {
		ev := trace.Ev(e.Now(), trace.KindLenAdjust)
		ev.PC = pc
		ev.OldLen = oldLen
		ev.Len = newLen
		e.Tracer.Emit(ev)
	}
}

// sthID returns a scheduler thread's id for event attribution, -1 when the
// thread is unknown.
func sthID(sth *sched.Thread) int {
	if sth == nil {
		return -1
	}
	return sth.ID
}

// TransactionBegin opens a critical section at yield point pc, asking the
// policy whether to elide. On Proceed the thread either runs inside a fresh
// transaction (t.GILMode false) or holds the GIL (t.GILMode true). On Block
// the thread must park and call ResumeBegin when woken.
func (e *Elision) TransactionBegin(t *Thread, sth *sched.Thread, now int64, pc int) (int64, Outcome) {
	if t.state != stIdle {
		panic(fmt.Sprintf("core: TransactionBegin in state %d", t.state))
	}
	t.pc = pc
	t.ShardMask = 0 // fresh section: direct-to-GIL paths must route to the root
	e.curThread = sthID(sth)
	if !e.Breaker.Allow(now) {
		// Open breaker: GIL-only, and the forced fallback stays out of
		// the breaker's own outcome window.
		t.lazy = false
		return e.acquireGIL(t, sth, now, BreakerReason, false)
	}
	live := e.LiveAppThreads()
	d := e.Policy.OnBegin(e, t.PS, pc, live)
	if !d.Elide {
		t.lazy = false
		// Single-threaded phases take the GIL by design, and deadline
		// downgrades are the request's clock running out, not elision
		// failing; recording either as fallbacks would trip the breaker
		// on healthy workloads.
		return e.acquireGIL(t, sth, now, d.Reason,
			live > 1 && d.Reason != policy.DeadlineReason)
	}
	t.ChosenLength = d.Length
	if d.OCC {
		// Software tier: no GIL pre-wait — an OCC transaction runs
		// concurrently with a GIL holder and resolves against it at
		// read (hazard window) and commit (BlockCommit) time.
		t.lazy = false
		return e.beginOCC(t, sth, now)
	}
	t.lazy = d.Lazy
	// Lines 6-8 of Figure 1: wait until the GIL is free before beginning.
	// Lazy subscription skips the wait along with the subscription: a held
	// GIL is only discovered at commit.
	if !t.lazy && e.GIL.Acquired() {
		e.GIL.WaitFree(sth)
		t.state = stWaitPreTx
		return 2, Block
	}
	return e.tryBegin(t, sth, now)
}

// tryBegin issues TBEGIN and, unless the section is lazy, subscribes to the
// GIL word (lines 13-15 of Figure 1).
func (e *Elision) tryBegin(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	t.ShardMask = 0 // retry attempts re-accumulate their shard footprint
	t.abortShard = -1
	cycles := t.HTM.Begin(now)
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindTxBegin)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Len = t.ChosenLength
		e.Tracer.Emit(ev)
	}
	if !t.lazy {
		w := t.HTM.Tx.Load(e.GIL.Addr)
		if w.Bits != 0 {
			// Line 15: the GIL was grabbed between our check and TBEGIN.
			t.HTM.ExplicitAbort()
		}
	}
	t.state = stIdle
	t.GILMode = false
	return cycles, Proceed
	// A transaction doomed during Begin (learning model, immediate GIL
	// conflict) is detected by the interpreter's doom check right after
	// this returns, which routes into HandleAbort.
}

// beginOCC opens the critical section in the software-transaction tier.
func (e *Elision) beginOCC(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	if t.OCC == nil {
		// The policy asked for the tier but the runtime lacks it
		// (defensive; the VM creates OCCRT for every UsesOCCTier policy).
		return e.acquireGIL(t, sth, now, "occ-unavailable", false)
	}
	t.ShardMask = 0
	cycles := t.OCC.Begin()
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindOCCBegin)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Len = t.ChosenLength
		e.Tracer.Emit(ev)
	}
	t.state = stIdle
	t.GILMode = false
	t.OCCMode = true
	return cycles, Proceed
}

// acquireGIL performs gil_acquire, blocking when contended. reason records
// why the critical section fell back to the GIL (stats and tracing); every
// entry here is one fallback, counted once even when the acquisition blocks
// (ResumeBegin does not re-enter). record marks fallbacks that should enter
// the circuit breaker's outcome window.
//
// In sharded mode a section whose aborted attempt touched exactly one
// keyspace shard is routed to that shard's GIL, with the section forced to a
// single yield interval (one statement) so the hold provably covers only
// accesses the shard word serializes; everything else takes the root.
func (e *Elision) acquireGIL(t *Thread, sth *sched.Thread, now int64, reason string, record bool) (int64, Outcome) {
	e.Fallbacks++
	target := -1
	if e.Sharded != nil && t.ShardMask != 0 && t.ShardMask&(t.ShardMask-1) == 0 {
		target = bits.TrailingZeros64(t.ShardMask)
		t.ChosenLength = 1
		e.ShardFallbacks[target]++
	}
	t.wantShard = target
	if record {
		e.Breaker.RecordFallback(now)
	}
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindGILFallback)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Note = reason
		ev.Shard = target + 1
		e.Tracer.Emit(ev)
	}
	cycles, ok := e.lockAcquire(t, sth, now)
	if !ok {
		t.state = stWaitAcquire
		return 0, Block
	}
	t.state = stIdle
	t.GILMode = true
	t.heldShard = target
	return cycles, Proceed
}

// lockAcquire (re)runs the fallback-lock acquisition targeted by
// t.wantShard. ok=false means the thread parked (as a lock waiter, or on the
// sharded gate/drain queues) and must retry from ResumeBegin when woken.
func (e *Elision) lockAcquire(t *Thread, sth *sched.Thread, now int64) (int64, bool) {
	if e.Sharded == nil {
		return e.GIL.BlockingAcquire(sth, now)
	}
	if t.wantShard >= 0 {
		return e.Sharded.AcquireShard(sth, t.wantShard, now)
	}
	return e.Sharded.AcquireRoot(sth, now)
}

// ResumeBegin continues the Figure 1 state machine after a wake-up.
func (e *Elision) ResumeBegin(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	switch t.state {
	case stWaitRetryOCC:
		// The GIL was released (or the backoff expired); re-run the
		// section in the software tier.
		return e.beginOCC(t, sth, now)
	case stWaitPreTx, stWaitRetry:
		// The GIL was released while we spun (or the backoff expired);
		// begin (or re-begin) the transaction. If the GIL was re-acquired
		// in the meantime the TBEGIN subscription aborts us and we come
		// back through HandleAbort.
		return e.tryBegin(t, sth, now)
	case stWaitAcquire:
		if e.Sharded == nil {
			// Woken by the GIL handoff: we own the lock.
			if !e.GIL.HeldBy(sth) {
				panic("core: woke from gil_acquire without ownership")
			}
			t.state = stIdle
			t.GILMode = true
			return 0, Proceed
		}
		// Sharded mode: a handoff wake owns the target lock, but a wake
		// from the gate/drain queues owns nothing and retries (the
		// hierarchy re-checks; see gil.Sharded).
		lock := e.Sharded.Root
		if t.wantShard >= 0 {
			lock = e.Sharded.Shards[t.wantShard]
		}
		if !lock.HeldBy(sth) {
			cycles, ok := e.lockAcquire(t, sth, now)
			if !ok {
				return 0, Block // still stWaitAcquire
			}
			t.state = stIdle
			t.GILMode = true
			t.heldShard = t.wantShard
			return cycles, Proceed
		}
		t.state = stIdle
		t.GILMode = true
		t.heldShard = t.wantShard
		return 0, Proceed
	default:
		panic(fmt.Sprintf("core: ResumeBegin in state %d", t.state))
	}
}

// HandleAbort completes an abort and asks the policy how to continue. The
// interpreter calls it after rolling its private state back to the
// beginning of the transaction. Outcomes are as for TransactionBegin.
func (e *Elision) HandleAbort(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	e.curThread = sthID(sth)
	if t.OCCMode {
		return e.handleOCCAbort(t, sth, now)
	}
	doomAddr := t.HTM.Tx.DoomAddr() // Rollback clears it; read first
	cause, penalty := t.HTM.Abort()
	t.LastAbortCause = cause
	// relevant is the lock this abort is about: in sharded mode a conflict
	// on a shard's lock word (or an explicit abort on finding one held)
	// points at that shard's GIL; everything else points at the root.
	relevant := e.GIL
	if e.Sharded != nil {
		switch cause {
		case simmem.CauseConflict:
			if g := e.Sharded.ByAddr(doomAddr); g != nil {
				relevant = g
			}
		case simmem.CauseExplicit:
			if t.abortShard >= 0 {
				relevant = e.Sharded.Shards[t.abortShard]
			}
		}
	}
	// GIL-artifact aborts — a conflict on a lock word itself, or the
	// Figure 1 line-15 explicit abort on finding a lock held — are caused
	// by *other* sections running under the lock, not by this section's own
	// inability to elide. Feeding them to the breaker would make open-state
	// GIL traffic doom every half-open probe and latch the breaker open, so
	// only root-cause fallbacks (data conflict, capacity, spurious, ...)
	// enter its outcome window.
	gilArtifact := cause == simmem.CauseExplicit ||
		(cause == simmem.CauseConflict && relevant != e.GIL) ||
		(cause == simmem.CauseConflict && doomAddr == e.GIL.Addr)
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindTxAbort)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Cause = cause.String()
		if cause == simmem.CauseConflict {
			ev.Region = t.HTM.Mem.RegionLabel(doomAddr)
		}
		e.Tracer.Emit(ev)
	}
	cycles := penalty
	d := e.Policy.OnAbort(e, t.PS, t.pc, cause, relevant.Acquired())
	switch d.Kind {
	case policy.AbortSpinRetry:
		// Lines 22-26 of Figure 1: park until the lock at fault is
		// released, then re-begin.
		relevant.WaitFree(sth)
		t.state = stWaitRetry
		return cycles, Block
	case policy.AbortRetry:
		c, out := e.tryBegin(t, sth, now+cycles)
		return cycles + c, out
	case policy.AbortBackoff:
		// Park for the backoff duration, then re-begin. The thread is not
		// registered with the GIL, so only this timed event wakes it; it
		// fires after this step returns, by which time the thread is
		// Blocked (steps complete synchronously).
		e.Engine.At(now+cycles+d.Backoff, func(at int64) {
			e.Engine.Wake(sth, at)
		})
		t.state = stWaitRetry
		return cycles, Block
	case policy.AbortOCC:
		// Degrade the failing section to the software tier instead of
		// the GIL: still concurrent, no capacity limits.
		c, out := e.beginOCC(t, sth, now+cycles)
		return cycles + c, out
	default: // policy.AbortFallback
		c, out := e.acquireGIL(t, sth, now+cycles, d.Reason,
			!gilArtifact && d.Reason != policy.DeadlineReason)
		return cycles + c, out
	}
}

// handleOCCAbort completes a software-transaction abort and asks the policy
// how to continue. The interpreter has already rolled its private state
// back; the buffered writes are simply discarded.
func (e *Elision) handleOCCAbort(t *Thread, sth *sched.Thread, now int64) (int64, Outcome) {
	gilBlocked := t.OCC.GILBlocked() // Rollback clears it; read first
	cause, penalty := t.OCC.Rollback()
	t.OCCMode = false
	t.LastAbortCause = cause
	if e.Tracer != nil {
		ev := trace.Ev(now, trace.KindOCCAbort)
		ev.Ctx = t.HTM.Tx.ID()
		ev.Thread = sthID(sth)
		ev.PC = t.pc
		ev.Cause = cause.String()
		e.Tracer.Emit(ev)
	}
	cycles := penalty
	// In sharded mode the lock blocking this software transaction may be a
	// shard GIL from its touch mask rather than the root.
	blocking := e.blockingGIL(t)
	gilHeld := blocking != nil
	if blocking == nil {
		blocking = e.GIL
	}
	var d policy.AbortDecision
	if op, ok := e.Policy.(policy.OCCPolicy); ok {
		d = op.OnOCCAbort(e, t.PS, t.pc, cause, gilHeld)
	} else {
		d = e.Policy.OnAbort(e, t.PS, t.pc, cause, gilHeld)
	}
	switch d.Kind {
	case policy.AbortSpinRetry:
		// Park until the blocking lock is released, then re-run in the tier.
		blocking.WaitFree(sth)
		t.state = stWaitRetryOCC
		return cycles, Block
	case policy.AbortRetry, policy.AbortOCC:
		c, out := e.beginOCC(t, sth, now+cycles)
		return cycles + c, out
	case policy.AbortBackoff:
		e.Engine.At(now+cycles+d.Backoff, func(at int64) {
			e.Engine.Wake(sth, at)
		})
		t.state = stWaitRetryOCC
		return cycles, Block
	default: // policy.AbortFallback
		// A commit blocked by a held GIL is the lock's fault, not this
		// section's; keep it out of the breaker window like the GIL
		// artifacts of the hardware path. Deadline downgrades likewise.
		c, out := e.acquireGIL(t, sth, now+cycles, d.Reason,
			!gilBlocked && d.Reason != policy.DeadlineReason)
		return cycles + c, out
	}
}

// ReleaseLock releases whatever fallback lock t currently holds — the root
// GIL or, in sharded mode, t's shard GIL. Used by TransactionEnd and by
// blocking natives that drop the lock around a wait (CRuby semantics).
func (e *Elision) ReleaseLock(t *Thread, sth *sched.Thread, now int64) int64 {
	if e.Sharded != nil {
		if t.heldShard >= 0 {
			c := e.Sharded.ReleaseShard(sth, t.heldShard, now)
			t.heldShard = -1
			return c
		}
		return e.Sharded.ReleaseRoot(sth, now)
	}
	return e.GIL.Release(sth, now)
}

// blockingGIL returns the lock that currently blocks t's software
// transaction from committing: the root GIL when held, else — in sharded
// mode — the first held shard lock in t's touch mask. nil when none.
func (e *Elision) blockingGIL(t *Thread) *gil.GIL {
	if e.GIL.Acquired() {
		return e.GIL
	}
	if e.Sharded != nil {
		m := t.ShardMask
		for m != 0 {
			s := bits.TrailingZeros64(m)
			m &= m - 1
			if e.Sharded.Shards[s].Acquired() {
				return e.Sharded.Shards[s]
			}
		}
	}
	return nil
}

// TransactionEnd implements transaction_end of Figure 2. It returns the
// cycle cost and whether the critical section committed; on false the
// transaction failed at commit and the interpreter must roll back its
// private state and call HandleAbort. Lazy sections perform their GIL
// subscription here, immediately before the commit attempt.
func (e *Elision) TransactionEnd(t *Thread, sth *sched.Thread, now int64) (int64, bool) {
	e.curThread = sthID(sth)
	if t.GILMode {
		cost := e.ReleaseLock(t, sth, now)
		t.GILMode = false
		t.ShardMask = 0
		return cost, true
	}
	if t.OCCMode {
		if e.blockingGIL(t) != nil {
			// A lock holder assumes exclusion; publishing (or even
			// linearizing a read-only commit) now would race its critical
			// section. Doom the transaction and let the abort path spin
			// until the lock clears.
			t.OCC.BlockCommit()
			return 2, false
		}
		cycles, ok := t.OCC.Commit()
		if ok {
			t.OCCMode = false
			t.ShardMask = 0
			if op, okp := e.Policy.(policy.OCCPolicy); okp {
				op.OnOCCCommit(e, t.PS, t.pc)
			} else {
				e.Policy.OnCommit(e, t.PS, t.pc)
			}
			e.Breaker.RecordCommit(now)
			if e.Tracer != nil {
				ev := trace.Ev(now, trace.KindOCCCommit)
				ev.Ctx = t.HTM.Tx.ID()
				ev.Thread = sthID(sth)
				ev.PC = t.pc
				e.Tracer.Emit(ev)
			}
		}
		return cycles, ok
	}
	if t.lazy && t.HTM.InTx() {
		w := t.HTM.Tx.Load(e.GIL.Addr)
		if w.Bits != 0 {
			t.HTM.ExplicitAbort()
		}
	}
	cycles, ok := t.HTM.End(now)
	if ok {
		t.ShardMask = 0
		e.Policy.OnCommit(e, t.PS, t.pc)
		e.Breaker.RecordCommit(now)
		if e.Tracer != nil {
			ev := trace.Ev(now, trace.KindTxCommit)
			ev.Ctx = t.HTM.Tx.ID()
			ev.Thread = sthID(sth)
			ev.PC = t.pc
			e.Tracer.Emit(ev)
		}
	}
	return cycles, ok
}
