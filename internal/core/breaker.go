package core

import (
	"htmgil/internal/trace"
)

// BreakerState is the elision circuit breaker's state.
type BreakerState uint8

// Breaker states, the classic circuit-breaker triple: Closed (elision
// allowed), Open (GIL-only), HalfOpen (probe transactions allowed).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerReason is the fallback reason recorded when the open breaker
// forces a critical section onto the GIL without consulting the policy.
const BreakerReason = "breaker-open"

// BreakerConfig tunes the elision circuit breaker.
type BreakerConfig struct {
	// Window is the sliding window of recent critical-section outcomes
	// (transactional commit vs GIL fallback) the trip decision looks at.
	Window int
	// TripFallbacks opens the breaker when at least this many of the last
	// Window outcomes were fallbacks — a sustained fallback-acquisition
	// storm rather than a transient blip.
	TripFallbacks int
	// CooldownCycles is how long the breaker stays open before admitting
	// half-open probe transactions.
	CooldownCycles int64
	// ProbeTarget closes the breaker after this many consecutive
	// transactional commits in the half-open state. Any fallback while
	// half-open re-opens it.
	ProbeTarget int
}

// DefaultBreakerConfig returns the default thresholds: trip when 3/4 of the
// last 64 sections fell back, cool down 2M cycles, close after 8 clean
// probes.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:         64,
		TripFallbacks:  48,
		CooldownCycles: 2_000_000,
		ProbeTarget:    8,
	}
}

// BreakerTransition is one recorded state change.
type BreakerTransition struct {
	T     int64  `json:"t"`
	State string `json:"state"`
}

// Breaker is the per-runtime elision circuit breaker. When sustained
// fallback storms show elision is doing more harm than good (every aborted
// section pays for its retries and then takes the GIL anyway), the breaker
// opens and routes every critical section straight to the GIL — the
// paper's safety net promoted to the steady state. After a cooldown it
// admits probe transactions (half-open) and fully re-enables elision once
// they commit cleanly.
//
// The breaker only arms itself after elision commits a full window's worth
// of transactions. Workloads like WEBrick spend a long warm-up aborting
// every transaction while the Figure 3 length adjustment converges;
// tripping there would freeze the learning (GIL-only sections generate no
// aborts to adjust on) and latch the breaker open on a workload that was
// about to become healthy. A storm only counts once elision has proven it
// can work.
//
// The simulator is single-threaded, so the breaker needs no locking; all
// methods are nil-safe so wiring is unconditional.
type Breaker struct {
	Cfg    BreakerConfig
	Tracer *trace.Recorder

	state     BreakerState
	commits   uint64 // lifetime transactional commits (arming)
	ring      []bool // true = fallback, circular over Cfg.Window outcomes
	next      int
	filled    int
	fallbacks int   // fallbacks among the filled entries
	openedAt  int64 // time of the most recent open transition
	probes    int   // consecutive half-open commits

	// Transitions is the full state-change history (reports, tests).
	Transitions []BreakerTransition
	// Opens counts open transitions (quick "did it trip" check).
	Opens uint64
}

// NewBreaker creates a closed breaker. Zero config fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	def := DefaultBreakerConfig()
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.TripFallbacks <= 0 {
		cfg.TripFallbacks = def.TripFallbacks
	}
	if cfg.TripFallbacks > cfg.Window {
		cfg.TripFallbacks = cfg.Window
	}
	if cfg.CooldownCycles <= 0 {
		cfg.CooldownCycles = def.CooldownCycles
	}
	if cfg.ProbeTarget <= 0 {
		cfg.ProbeTarget = def.ProbeTarget
	}
	return &Breaker{Cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State returns the current state (BreakerClosed on nil).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return b.state
}

// Allow reports whether a critical section may attempt elision at now. An
// open breaker answers false until its cooldown expires, at which point it
// moves to half-open and starts admitting probes. Nil-safe (always true).
func (b *Breaker) Allow(now int64) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if now-b.openedAt < b.Cfg.CooldownCycles {
			return false
		}
		b.probes = 0
		b.transition(now, BreakerHalfOpen)
		return true
	default:
		return true
	}
}

// push records one critical-section outcome into the sliding window.
func (b *Breaker) push(fallback bool) {
	if b.filled == len(b.ring) {
		if b.ring[b.next] {
			b.fallbacks--
		}
	} else {
		b.filled++
	}
	b.ring[b.next] = fallback
	if fallback {
		b.fallbacks++
	}
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
	}
}

// reset clears the sliding window (on any state change).
func (b *Breaker) reset() {
	b.next, b.filled, b.fallbacks = 0, 0, 0
}

// RecordFallback records a GIL fallback of a section that was allowed to
// attempt elision. While closed (and armed) it may trip the breaker; while
// half-open it feeds the probe window and re-opens the breaker when the
// storm re-materializes. Nil-safe.
func (b *Breaker) RecordFallback(now int64) {
	if b == nil {
		return
	}
	switch b.state {
	case BreakerClosed:
		if !b.armed() {
			return
		}
		b.push(true)
		if b.fallbacks >= b.Cfg.TripFallbacks {
			b.transition(now, BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probes = 0
		b.push(true)
		b.settle(now)
	}
}

// armed reports whether elision has demonstrated a healthy phase — a full
// window's worth of transactional commits — so that fallback storms count.
func (b *Breaker) armed() bool { return b.commits >= uint64(b.Cfg.Window) }

// RecordCommit records a transactional (non-GIL) critical-section commit.
// Commits arm the breaker (see armed); half-open commits count toward
// closing it. Nil-safe.
func (b *Breaker) RecordCommit(now int64) {
	if b == nil {
		return
	}
	b.commits++
	switch b.state {
	case BreakerClosed:
		b.push(false)
	case BreakerHalfOpen:
		b.probes++
		b.push(false)
		b.settle(now)
	}
}

// settle decides the half-open phase after each probe outcome. The phase is
// an observation window, not sudden death: one failed probe among many
// commits must not latch the breaker open (the open state itself breeds
// fallbacks, and warm-up workloads need sustained probing for the length
// adjustment to converge). Reopen when the window accumulates a storm's
// worth of fallbacks; close on ProbeTarget consecutive commits, or when a
// full window passed below the trip threshold.
func (b *Breaker) settle(now int64) {
	switch {
	case b.fallbacks >= b.Cfg.TripFallbacks:
		b.transition(now, BreakerOpen)
	case b.probes >= b.Cfg.ProbeTarget:
		b.transition(now, BreakerClosed)
	case b.filled == len(b.ring):
		b.transition(now, BreakerClosed)
	}
}

// transition moves to state s, recording and tracing the change.
func (b *Breaker) transition(now int64, s BreakerState) {
	b.state = s
	b.reset()
	if s == BreakerOpen {
		b.openedAt = now
		b.Opens++
	}
	b.Transitions = append(b.Transitions, BreakerTransition{T: now, State: s.String()})
	if b.Tracer != nil {
		ev := trace.Ev(now, trace.KindBreaker)
		ev.Note = s.String()
		b.Tracer.Emit(ev)
	}
}

// RecoverAt returns the time of the last transition to closed after a trip,
// or -1 when the breaker never tripped or never recovered. Used by the
// chaos benchmark to compute time-to-recover.
func (b *Breaker) RecoverAt() int64 {
	if b == nil || b.Opens == 0 {
		return -1
	}
	for i := len(b.Transitions) - 1; i >= 0; i-- {
		if b.Transitions[i].State == "closed" {
			return b.Transitions[i].T
		}
	}
	return -1
}
