package core

import (
	"testing"

	"htmgil/internal/trace"
)

// tcfg is a small breaker configuration the tests can walk by hand.
func tcfg() BreakerConfig {
	return BreakerConfig{Window: 8, TripFallbacks: 6, CooldownCycles: 1000, ProbeTarget: 3}
}

// arm feeds the breaker the lifetime commits it needs before fallback
// storms count (one full window's worth).
func arm(b *Breaker) {
	for i := 0; i < b.Cfg.Window; i++ {
		b.RecordCommit(int64(i))
	}
}

// trip arms the breaker and drives it open with a fallback storm at now.
func trip(b *Breaker, now int64) {
	arm(b)
	for i := 0; i < b.Cfg.TripFallbacks; i++ {
		b.RecordFallback(now)
	}
}

func TestBreakerDefaultsAndClamps(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.Cfg != DefaultBreakerConfig() {
		t.Fatalf("zero config not defaulted: %+v", b.Cfg)
	}
	b = NewBreaker(BreakerConfig{Window: 4, TripFallbacks: 99})
	if b.Cfg.TripFallbacks != 4 {
		t.Fatalf("TripFallbacks not clamped to Window: %+v", b.Cfg)
	}
}

// TestBreakerUnarmedIgnoresFallbacks: before elision has committed a full
// window's worth of transactions, fallback storms (e.g. the WEBrick warm-up
// while length adjustment converges) must not trip the breaker.
func TestBreakerUnarmedIgnoresFallbacks(t *testing.T) {
	b := NewBreaker(tcfg())
	for i := 0; i < 10*b.Cfg.Window; i++ {
		b.RecordFallback(int64(i))
	}
	if b.State() != BreakerClosed || b.Opens != 0 {
		t.Fatalf("unarmed breaker tripped: state=%v opens=%d", b.State(), b.Opens)
	}
	// Commits one short of the window still don't arm it.
	for i := 0; i < b.Cfg.Window-1; i++ {
		b.RecordCommit(0)
	}
	for i := 0; i < 10*b.Cfg.Window; i++ {
		b.RecordFallback(int64(i))
	}
	if b.State() != BreakerClosed {
		t.Fatalf("breaker tripped one commit short of arming")
	}
	// The final arming commit, then a storm: now it trips.
	b.RecordCommit(0)
	for i := 0; i < b.Cfg.TripFallbacks; i++ {
		b.RecordFallback(100)
	}
	if b.State() != BreakerOpen || b.Opens != 1 {
		t.Fatalf("armed breaker did not trip: state=%v opens=%d", b.State(), b.Opens)
	}
}

// TestBreakerTripNeedsStormInWindow: scattered fallbacks below the window
// threshold never trip; TripFallbacks within the window do.
func TestBreakerTripNeedsStormInWindow(t *testing.T) {
	b := NewBreaker(tcfg())
	arm(b)
	// Alternate commit/fallback: the window never accumulates 6 fallbacks.
	for i := 0; i < 100; i++ {
		b.RecordFallback(int64(i))
		b.RecordCommit(int64(i))
	}
	if b.State() != BreakerClosed {
		t.Fatalf("mixed traffic tripped the breaker: %v", b.State())
	}
	for i := 0; i < b.Cfg.TripFallbacks; i++ {
		b.RecordFallback(200)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("storm did not trip the breaker")
	}
}

// TestBreakerCooldownAndHalfOpen: an open breaker refuses elision until the
// cooldown expires, then admits probes in the half-open state.
func TestBreakerCooldownAndHalfOpen(t *testing.T) {
	b := NewBreaker(tcfg())
	trip(b, 5000)
	if b.Allow(5001) || b.Allow(5000+b.Cfg.CooldownCycles-1) {
		t.Fatalf("open breaker allowed elision during cooldown")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("Allow during cooldown changed state to %v", b.State())
	}
	if !b.Allow(5000 + b.Cfg.CooldownCycles) {
		t.Fatalf("breaker did not admit probes after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
}

// TestHalfOpenClosesOnConsecutiveProbes: ProbeTarget consecutive commits
// close the breaker.
func TestHalfOpenClosesOnConsecutiveProbes(t *testing.T) {
	b := NewBreaker(tcfg())
	trip(b, 0)
	b.Allow(b.Cfg.CooldownCycles)
	for i := 0; i < b.Cfg.ProbeTarget; i++ {
		if b.State() != BreakerHalfOpen {
			t.Fatalf("left half-open after %d probes", i)
		}
		b.RecordCommit(int64(2000 + i))
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after %d clean probes", b.State(), b.Cfg.ProbeTarget)
	}
}

// TestHalfOpenSurvivesScatteredFallbacks: half-open is an observation
// window, not sudden death — isolated fallbacks between commits reset the
// consecutive-probe count but must not reopen the breaker, and a full
// window below the trip threshold closes it.
func TestHalfOpenSurvivesScatteredFallbacks(t *testing.T) {
	cfg := tcfg()
	b := NewBreaker(cfg)
	trip(b, 0)
	b.Allow(cfg.CooldownCycles)
	// commit, fallback, commit, fallback, ... — never ProbeTarget in a row,
	// never TripFallbacks in the window. The window fills at 8 outcomes
	// (4 fallbacks < 6) and the breaker must settle closed.
	for i := 0; i < cfg.Window/2; i++ {
		b.RecordCommit(int64(3000 + 2*i))
		if b.State() != BreakerHalfOpen && i < cfg.Window/2-1 {
			t.Fatalf("left half-open early at probe pair %d: %v", i, b.State())
		}
		b.RecordFallback(int64(3001 + 2*i))
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after a full below-threshold window", b.State())
	}
	if b.Opens != 1 {
		t.Fatalf("opens = %d, scattered half-open fallbacks must not reopen", b.Opens)
	}
}

// TestHalfOpenReopensOnStorm: a sustained fallback storm during half-open
// reopens the breaker.
func TestHalfOpenReopensOnStorm(t *testing.T) {
	b := NewBreaker(tcfg())
	trip(b, 0)
	b.Allow(b.Cfg.CooldownCycles)
	for i := 0; i < b.Cfg.TripFallbacks; i++ {
		b.RecordFallback(int64(2000 + i))
	}
	if b.State() != BreakerOpen || b.Opens != 2 {
		t.Fatalf("half-open storm did not reopen: state=%v opens=%d", b.State(), b.Opens)
	}
}

// TestBreakerTransitionsAndRecoverAt: the transition history records the
// full open -> half-open -> closed sequence and RecoverAt reports the final
// close time.
func TestBreakerTransitionsAndRecoverAt(t *testing.T) {
	b := NewBreaker(tcfg())
	if b.RecoverAt() != -1 {
		t.Fatalf("untripped breaker has a recovery time")
	}
	trip(b, 500)
	b.Allow(500 + b.Cfg.CooldownCycles)
	if b.RecoverAt() != -1 {
		t.Fatalf("unclosed breaker has a recovery time")
	}
	for i := 0; i < b.Cfg.ProbeTarget; i++ {
		b.RecordCommit(int64(4000 + i))
	}
	want := []string{"open", "half-open", "closed"}
	if len(b.Transitions) != len(want) {
		t.Fatalf("transitions = %+v", b.Transitions)
	}
	for i, w := range want {
		if b.Transitions[i].State != w {
			t.Fatalf("transition %d = %q, want %q (%+v)", i, b.Transitions[i].State, w, b.Transitions)
		}
	}
	if b.Transitions[0].T != 500 {
		t.Fatalf("open recorded at %d, want 500", b.Transitions[0].T)
	}
	if got := b.RecoverAt(); got != int64(4000+b.Cfg.ProbeTarget-1) {
		t.Fatalf("RecoverAt = %d", got)
	}
}

// TestBreakerEmitsTraceEvents: every transition appears as a KindBreaker
// event on the attached recorder.
func TestBreakerEmitsTraceEvents(t *testing.T) {
	agg := trace.NewAggregator()
	b := NewBreaker(tcfg())
	b.Tracer = trace.NewRecorder(agg)
	trip(b, 0)
	b.Allow(b.Cfg.CooldownCycles)
	for i := 0; i < b.Cfg.ProbeTarget; i++ {
		b.RecordCommit(2000)
	}
	if agg.Breaker["open"] != 1 || agg.Breaker["half-open"] != 1 || agg.Breaker["closed"] != 1 {
		t.Fatalf("breaker trace events = %v", agg.Breaker)
	}
}

// TestNilBreakerSafe: the runtime wires the breaker unconditionally; every
// method must be a no-op on nil.
func TestNilBreakerSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow(0) {
		t.Fatalf("nil breaker refused elision")
	}
	b.RecordFallback(0)
	b.RecordCommit(0)
	if b.State() != BreakerClosed || b.RecoverAt() != -1 {
		t.Fatalf("nil breaker has state")
	}
}
