package core

import (
	"testing"

	"htmgil/internal/trace"
)

// wcfg is a tiny watchdog configuration the tests can walk by hand.
func wcfg() WatchdogConfig {
	return WatchdogConfig{
		WindowCycles:    1000,
		MinBegins:       4,
		StarveWindows:   2,
		StarveMinBegins: 2,
		SiteAbortRatio:  0.9,
		SiteMinBegins:   4,
	}
}

// wire builds a recorder with an aggregator and an attached watchdog.
func wire(cfg WatchdogConfig) (*Watchdog, *trace.Recorder, *trace.Aggregator) {
	agg := trace.NewAggregator()
	rec := trace.NewRecorder(agg)
	w := NewWatchdog(cfg)
	w.AttachTo(rec)
	return w, rec, agg
}

func tx(t int64, kind trace.Kind, thread, pc int) trace.Event {
	ev := trace.Ev(t, kind)
	ev.Thread = thread
	ev.PC = pc
	return ev
}

func TestWatchdogDefaults(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	if w.Cfg != DefaultWatchdogConfig() {
		t.Fatalf("zero config not defaulted: %+v", w.Cfg)
	}
}

// TestWatchdogLivelock: a window full of begins with zero commits raises a
// livelock degradation; a window with even one commit does not.
func TestWatchdogLivelock(t *testing.T) {
	w, rec, agg := wire(wcfg())
	// Window 1: 6 begins, one commit -> healthy.
	for i := 0; i < 6; i++ {
		rec.Emit(tx(int64(10*i), trace.KindTxBegin, i%2, 1))
	}
	rec.Emit(tx(900, trace.KindTxCommit, 0, 1))
	// Window 2: 6 begins, only aborts -> livelock raised when the window
	// closes (first event at t >= 2000). Begins spread over six sites and
	// six fresh threads so neither site-storm nor starvation fires too.
	for i := 0; i < 6; i++ {
		rec.Emit(tx(int64(1000+10*i), trace.KindTxBegin, 2+i, 10+i))
		rec.Emit(tx(int64(1005+10*i), trace.KindTxAbort, 2+i, 10+i))
	}
	rec.Emit(tx(2500, trace.KindTxBegin, 0, 1))
	if got := w.Raised[DegradeLivelock]; got != 1 {
		t.Fatalf("livelock raised %d times, want 1 (raised=%v)", got, w.Raised)
	}
	// The degradation must round-trip through the recorder into sinks
	// attached alongside the watchdog (re-entrant Emit).
	if agg.Degradations[DegradeLivelock] != 1 {
		t.Fatalf("degradation not in aggregator: %v", agg.Degradations)
	}
	if len(w.Events) != 1 || w.Events[0].Kind != trace.KindDegrade || w.Events[0].Note != DegradeLivelock {
		t.Fatalf("events = %+v", w.Events)
	}
}

// TestWatchdogStarvation: a thread that attempts sections but makes no
// progress for StarveWindows consecutive windows is flagged; threads that
// progress are not, and progress resets the streak.
func TestWatchdogStarvation(t *testing.T) {
	w, rec, _ := wire(wcfg())
	emitWindow := func(base int64, starvedProgress bool) {
		// Thread 0 progresses every window; thread 1 only when asked.
		rec.Emit(tx(base+0, trace.KindTxBegin, 0, 1))
		rec.Emit(tx(base+1, trace.KindTxCommit, 0, 1))
		rec.Emit(tx(base+10, trace.KindTxBegin, 1, 1))
		rec.Emit(tx(base+11, trace.KindTxAbort, 1, 1))
		rec.Emit(tx(base+20, trace.KindTxBegin, 1, 1))
		if starvedProgress {
			rec.Emit(tx(base+21, trace.KindTxCommit, 1, 1))
		} else {
			rec.Emit(tx(base+21, trace.KindTxAbort, 1, 1))
		}
	}
	emitWindow(0, false)
	emitWindow(1000, true) // progress resets thread 1's streak
	emitWindow(2000, false)
	emitWindow(3000, false)
	rec.Emit(tx(5000, trace.KindTxBegin, 0, 1)) // close window 4
	if got := w.Raised[DegradeStarvation]; got != 1 {
		t.Fatalf("starvation raised %d times, want 1 (%v)", got, w.Raised)
	}
	ev := w.Events[len(w.Events)-1]
	if ev.Note != DegradeStarvation || ev.Thread != 1 {
		t.Fatalf("starvation event = %+v, want thread 1", ev)
	}
}

// TestWatchdogSiteStorm: a yield point aborting >= SiteAbortRatio of its
// begins in a window raises site-storm with the PC attributed.
func TestWatchdogSiteStorm(t *testing.T) {
	w, rec, _ := wire(wcfg())
	// Site 7: 6 begins, 6 aborts (ratio 1.0). Site 3: 6 begins, 1 abort.
	// Commits keep the window clear of livelock.
	for i := 0; i < 6; i++ {
		rec.Emit(tx(int64(10*i), trace.KindTxBegin, 0, 7))
		rec.Emit(tx(int64(10*i+1), trace.KindTxAbort, 0, 7))
		rec.Emit(tx(int64(10*i+2), trace.KindTxBegin, 0, 3))
	}
	rec.Emit(tx(800, trace.KindTxAbort, 0, 3))
	rec.Emit(tx(900, trace.KindTxCommit, 0, 3))
	rec.Emit(tx(1500, trace.KindTxBegin, 0, 3)) // close the window
	if got := w.Raised[DegradeSiteStorm]; got != 1 {
		t.Fatalf("site-storm raised %d times, want 1 (%v)", got, w.Raised)
	}
	ev := w.Events[0]
	if ev.Note != DegradeSiteStorm || ev.PC != 7 {
		t.Fatalf("site-storm event = %+v, want PC 7", ev)
	}
}

// TestWatchdogGILProgressCountsAsCommit: GIL-held sections completing
// (KindGILRelease) are forward progress — an open breaker routing everything
// through the GIL must not read as livelock.
func TestWatchdogGILProgressCountsAsCommit(t *testing.T) {
	w, rec, _ := wire(wcfg())
	for i := 0; i < 6; i++ {
		rec.Emit(tx(int64(10*i), trace.KindGILFallback, 0, 1))
		rec.Emit(tx(int64(10*i+5), trace.KindGILRelease, 0, -1))
	}
	rec.Emit(tx(1500, trace.KindTxBegin, 0, 1))
	if len(w.Raised) != 0 {
		t.Fatalf("GIL-only progress raised degradations: %v", w.Raised)
	}
}

// TestWatchdogDeterministicStream: the same event stream produces the same
// degradation stream, byte for byte.
func TestWatchdogDeterministicStream(t *testing.T) {
	run := func() []trace.Event {
		w, rec, _ := wire(wcfg())
		for i := 0; i < 500; i++ {
			th := i % 3
			rec.Emit(tx(int64(37*i), trace.KindTxBegin, th, i%5))
			if i%4 == 0 {
				rec.Emit(tx(int64(37*i+5), trace.KindTxCommit, th, i%5))
			} else {
				rec.Emit(tx(int64(37*i+5), trace.KindTxAbort, th, i%5))
			}
		}
		return w.Events
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("stream raised nothing; test is vacuous")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestWatchdogCountsNilSafe mirrors the stats plumbing: nil watchdog and
// empty watchdog both report nil.
func TestWatchdogCountsNilSafe(t *testing.T) {
	var w *Watchdog
	if w.Counts() != nil {
		t.Fatalf("nil watchdog has counts")
	}
	if NewWatchdog(wcfg()).Counts() != nil {
		t.Fatalf("fresh watchdog has counts")
	}
}

// TestRecorderReentrantSinkOrder: a sink emitting on its own recorder (as
// the watchdog does) must deadlock-free deliver the nested event to every
// sink after the current one — one totally ordered stream.
func TestRecorderReentrantSinkOrder(t *testing.T) {
	var rec *trace.Recorder
	var seen []trace.Event
	tap := sinkFunc(func(ev trace.Event) { seen = append(seen, ev) })
	reemit := sinkFunc(func(ev trace.Event) {
		if ev.Kind == trace.KindTxAbort {
			echo := trace.Ev(ev.T+1, trace.KindDegrade)
			echo.Note = "echo"
			rec.Emit(echo)
		}
	})
	rec = trace.NewRecorder(tap, reemit)
	rec.Emit(trace.Ev(10, trace.KindTxBegin))
	rec.Emit(trace.Ev(20, trace.KindTxAbort))
	rec.Emit(trace.Ev(30, trace.KindTxCommit))
	kinds := make([]trace.Kind, len(seen))
	for i, ev := range seen {
		kinds[i] = ev.Kind
	}
	want := []trace.Kind{trace.KindTxBegin, trace.KindTxAbort, trace.KindDegrade, trace.KindTxCommit}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

type sinkFunc func(trace.Event)

func (f sinkFunc) Emit(ev trace.Event) { f(ev) }
