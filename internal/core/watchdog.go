package core

import (
	"fmt"
	"sort"

	"htmgil/internal/trace"
)

// Watchdog degradation reasons (the Note field of KindDegrade events).
const (
	DegradeLivelock   = "livelock"   // many attempts, zero commits, system-wide
	DegradeStarvation = "starvation" // one thread attempts but never progresses
	DegradeSiteStorm  = "site-storm" // one yield point aborts nearly always
)

// WatchdogConfig tunes the livelock/starvation watchdog.
type WatchdogConfig struct {
	// WindowCycles is the evaluation window in virtual cycles.
	WindowCycles int64
	// MinBegins is the minimum number of transaction begins in a window
	// for a zero-commit window to count as livelock (below it the system
	// is idle, not stuck).
	MinBegins uint64
	// StarveWindows raises starvation after this many consecutive windows
	// in which a thread attempted at least StarveMinBegins sections but
	// made no progress (no transactional commit and no GIL release).
	StarveWindows   int
	StarveMinBegins uint64
	// SiteAbortRatio flags a yield point whose aborts/begins ratio in a
	// window reaches this value with at least SiteMinBegins begins.
	SiteAbortRatio float64
	SiteMinBegins  uint64
}

// DefaultWatchdogConfig returns the default thresholds.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		WindowCycles:    2_000_000,
		MinBegins:       16,
		StarveWindows:   3,
		StarveMinBegins: 4,
		SiteAbortRatio:  0.9,
		SiteMinBegins:   16,
	}
}

// threadWindow is one thread's activity within the current window.
type threadWindow struct {
	begins   uint64
	progress uint64 // transactional commits + GIL releases
}

// siteWindow is one yield point's activity within the current window.
type siteWindow struct {
	begins uint64
	aborts uint64
}

// Watchdog observes the transaction-event stream (as a trace.Sink) and
// raises structured degradation events when forward progress looks broken:
// livelock (the whole system attempts but never commits), per-thread
// starvation, and per-site abort storms. Raised events are emitted back
// through the same Recorder (KindDegrade) so they appear in traces, in the
// Aggregator and in bench reports alongside the events that triggered them.
//
// Evaluation is windowed on virtual time and all iteration is sorted, so a
// given event stream produces a byte-identical degradation stream.
type Watchdog struct {
	Cfg WatchdogConfig

	rec         *trace.Recorder
	started     bool
	windowStart int64

	begins  uint64
	commits uint64
	threads map[int]*threadWindow
	sites   map[int]*siteWindow
	starved map[int]int // thread -> consecutive no-progress windows

	// Raised counts degradation events by reason.
	Raised map[string]uint64
	// Events is the raised degradation history.
	Events []trace.Event
}

// NewWatchdog creates a watchdog. Zero config fields take defaults.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	def := DefaultWatchdogConfig()
	if cfg.WindowCycles <= 0 {
		cfg.WindowCycles = def.WindowCycles
	}
	if cfg.MinBegins == 0 {
		cfg.MinBegins = def.MinBegins
	}
	if cfg.StarveWindows <= 0 {
		cfg.StarveWindows = def.StarveWindows
	}
	if cfg.StarveMinBegins == 0 {
		cfg.StarveMinBegins = def.StarveMinBegins
	}
	if cfg.SiteAbortRatio <= 0 {
		cfg.SiteAbortRatio = def.SiteAbortRatio
	}
	if cfg.SiteMinBegins == 0 {
		cfg.SiteMinBegins = def.SiteMinBegins
	}
	return &Watchdog{
		Cfg:     cfg,
		threads: make(map[int]*threadWindow),
		sites:   make(map[int]*siteWindow),
		starved: make(map[int]int),
		Raised:  make(map[string]uint64),
	}
}

// AttachTo registers the watchdog as a sink on rec and remembers rec as the
// destination for degradation events. The Recorder's re-entrant Emit
// delivers those to every sink, this one included (it ignores them).
func (w *Watchdog) AttachTo(rec *trace.Recorder) {
	w.rec = rec
	rec.AddSink(w)
}

func (w *Watchdog) thread(id int) *threadWindow {
	tw := w.threads[id]
	if tw == nil {
		tw = &threadWindow{}
		w.threads[id] = tw
	}
	return tw
}

func (w *Watchdog) site(pc int) *siteWindow {
	sw := w.sites[pc]
	if sw == nil {
		sw = &siteWindow{}
		w.sites[pc] = sw
	}
	return sw
}

// Emit implements trace.Sink.
func (w *Watchdog) Emit(ev trace.Event) {
	if !w.started {
		w.started = true
		w.windowStart = ev.T
	}
	for ev.T >= w.windowStart+w.Cfg.WindowCycles {
		w.evaluate(w.windowStart + w.Cfg.WindowCycles)
	}
	switch ev.Kind {
	case trace.KindTxBegin:
		w.begins++
		if ev.Thread >= 0 {
			w.thread(ev.Thread).begins++
		}
		if ev.PC >= 0 {
			w.site(ev.PC).begins++
		}
	case trace.KindTxCommit:
		w.commits++
		if ev.Thread >= 0 {
			w.thread(ev.Thread).progress++
		}
	case trace.KindTxAbort:
		if ev.PC >= 0 {
			w.site(ev.PC).aborts++
		}
	case trace.KindGILFallback:
		if ev.Thread >= 0 {
			w.thread(ev.Thread).begins++
		}
	case trace.KindGILRelease:
		// A thread finishing a GIL-held section is making progress even
		// if it never commits transactionally (e.g. breaker open).
		w.commits++
		if ev.Thread >= 0 {
			w.thread(ev.Thread).progress++
		}
	}
}

// raise emits one degradation event and records it.
func (w *Watchdog) raise(ev trace.Event) {
	w.Raised[ev.Note]++
	w.Events = append(w.Events, ev)
	if w.rec != nil {
		w.rec.Emit(ev)
	}
}

// evaluate closes the window ending at end and resets the per-window state.
func (w *Watchdog) evaluate(end int64) {
	if w.begins >= w.Cfg.MinBegins && w.commits == 0 {
		ev := trace.Ev(end, trace.KindDegrade)
		ev.Note = DegradeLivelock
		ev.Cause = fmt.Sprintf("%d begins, 0 commits in %d cycles", w.begins, w.Cfg.WindowCycles)
		w.raise(ev)
	}

	// Starvation: threads that attempted but made no progress this window.
	tids := make([]int, 0, len(w.threads))
	for id := range w.threads {
		tids = append(tids, id)
	}
	sort.Ints(tids)
	for _, id := range tids {
		tw := w.threads[id]
		if tw.begins >= w.Cfg.StarveMinBegins && tw.progress == 0 {
			w.starved[id]++
			if w.starved[id] == w.Cfg.StarveWindows {
				ev := trace.Ev(end, trace.KindDegrade)
				ev.Note = DegradeStarvation
				ev.Thread = id
				ev.Cause = fmt.Sprintf("no progress for %d windows", w.Cfg.StarveWindows)
				w.raise(ev)
				w.starved[id] = 0 // re-arm; a still-starved thread re-raises
			}
		} else if tw.progress > 0 {
			delete(w.starved, id)
		}
	}

	// Site storms: yield points aborting (nearly) every attempt.
	pcs := make([]int, 0, len(w.sites))
	for pc := range w.sites {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		sw := w.sites[pc]
		if sw.begins >= w.Cfg.SiteMinBegins &&
			float64(sw.aborts) >= w.Cfg.SiteAbortRatio*float64(sw.begins) {
			ev := trace.Ev(end, trace.KindDegrade)
			ev.Note = DegradeSiteStorm
			ev.PC = pc
			ev.Cause = fmt.Sprintf("%d/%d aborts", sw.aborts, sw.begins)
			w.raise(ev)
		}
	}

	w.windowStart = end
	w.begins, w.commits = 0, 0
	w.threads = make(map[int]*threadWindow)
	w.sites = make(map[int]*siteWindow)
}

// Counts returns a copy of the raised-degradation counters (nil-safe).
func (w *Watchdog) Counts() map[string]uint64 {
	if w == nil || len(w.Raised) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(w.Raised))
	for k, v := range w.Raised {
		out[k] = v
	}
	return out
}
