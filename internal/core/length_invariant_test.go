package core

import (
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/simmem"
)

// newTestMem builds a minimal memory for tests that never run transactions.
func newTestMem() *simmem.Memory {
	return simmem.NewMemory(simmem.Config{LineBytes: 256}, 1)
}

// invariantParams returns the paper's constants with a small profiling
// period so the tests can cycle through several adjustment rounds quickly.
func invariantParams() Params {
	p := DefaultParams(htm.ZEC12())
	p.ProfilingPeriod = 10
	p.AdjustThreshold = 3
	return p
}

// TestLengthNeverRaisedNeverBelowOne hammers one yield point with abort
// notifications and checks the Figure 3 invariants: the length only moves
// downward, never drops below 1, and each attenuation multiplies the old
// value by exactly AttenuationRate (floored, clamped to 1).
func TestLengthNeverRaisedNeverBelowOne(t *testing.T) {
	params := invariantParams()
	el := New(params, nil, nil, 4)
	hctx := htm.NewContext(htm.ZEC12(), newTestMem(), 0, 1)
	th := el.NewThread(hctx)
	const pc = 2

	prev := params.InitialLength
	for round := 0; round < 200; round++ {
		// Begin some transactions (fewer than the profiling period, which
		// would freeze monitoring), then report aborts until the threshold
		// trips.
		for i := int32(0); i < params.ProfilingPeriod-1; i++ {
			el.setTransactionLength(th, pc)
			if th.ChosenLength > prev {
				t.Fatalf("round %d: length raised %d -> %d", round, prev, th.ChosenLength)
			}
			if th.ChosenLength < 1 {
				t.Fatalf("round %d: length %d < 1", round, th.ChosenLength)
			}
		}
		before := el.Lengths()[pc]
		aborts := int32(0)
		for el.Lengths()[pc] == before && aborts < params.AdjustThreshold+2 {
			el.adjustTransactionLength(pc)
			aborts++
		}
		after := el.Lengths()[pc]
		if before == 1 {
			if after != 1 {
				t.Fatalf("round %d: length moved off the floor: %d", round, after)
			}
			return // reached and held the minimum: invariant proven
		}
		// The first AdjustThreshold+1 notifications only count; the next
		// one attenuates.
		if aborts != params.AdjustThreshold+2 {
			t.Fatalf("round %d: attenuated after %d aborts, want %d", round, aborts, params.AdjustThreshold+2)
		}
		want := int32(float64(before) * params.AttenuationRate)
		if want < 1 {
			want = 1
		}
		if after != want {
			t.Fatalf("round %d: %d attenuated to %d, want exactly %d (rate %v)",
				round, before, after, want, params.AttenuationRate)
		}
		if after > before {
			t.Fatalf("round %d: length raised %d -> %d", round, before, after)
		}
		prev = after
	}
	t.Fatalf("length never reached 1 after 200 rounds (stuck at %d)", el.Lengths()[pc])
}

// TestLengthAdjustmentRespectsProfilingPeriod checks that aborts arriving
// after the profiling window saturates do not attenuate the length: Figure 3
// only monitors the first ProfilingPeriod transactions of each round.
func TestLengthAdjustmentRespectsProfilingPeriod(t *testing.T) {
	params := invariantParams()
	el := New(params, nil, nil, 4)
	hctx := htm.NewContext(htm.ZEC12(), newTestMem(), 0, 1)
	th := el.NewThread(hctx)
	const pc = 1

	// Saturate the profiling counter.
	for i := int32(0); i < params.ProfilingPeriod; i++ {
		el.setTransactionLength(th, pc)
	}
	before := el.Lengths()[pc]
	if before != params.InitialLength {
		t.Fatalf("initial length = %d, want %d", before, params.InitialLength)
	}
	for i := 0; i < 50; i++ {
		el.adjustTransactionLength(pc)
	}
	if got := el.Lengths()[pc]; got != before {
		t.Fatalf("length changed after the profiling window closed: %d -> %d", before, got)
	}
	if el.Adjustments != 0 {
		t.Fatalf("adjustments counted outside the window: %d", el.Adjustments)
	}
}

// TestConstantLengthDisablesAdjustment checks the HTM-1/16/256 configs:
// with ConstantLength set, the chosen length is fixed and abort
// notifications never move it.
func TestConstantLengthDisablesAdjustment(t *testing.T) {
	params := invariantParams()
	params.ConstantLength = 16
	el := New(params, nil, nil, 4)
	hctx := htm.NewContext(htm.ZEC12(), newTestMem(), 0, 1)
	th := el.NewThread(hctx)
	for i := 0; i < 100; i++ {
		el.setTransactionLength(th, 3)
		if th.ChosenLength != 16 {
			t.Fatalf("chosen length = %d, want constant 16", th.ChosenLength)
		}
		el.adjustTransactionLength(3)
	}
	if el.Adjustments != 0 {
		t.Fatalf("constant-length config recorded %d adjustments", el.Adjustments)
	}
}
