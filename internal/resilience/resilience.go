// Package resilience is the request-level graceful-degradation layer of the
// serving stack. The elision breaker and watchdog (internal/core) protect a
// single VM's critical sections; this package protects the *server* from its
// own clients:
//
//   - Admission control: a deterministic queue-depth gate per listener that
//     sheds connections at the door once the backlog passes a bound, so
//     overload is rejected cheaply instead of queueing into collapse.
//   - Brownout: a server-level degradation controller (closed / brownout /
//     shed, mirroring the breaker's closed / open / half-open) driven by a
//     queue-delay EWMA that progressively disables expensive routes before
//     the hard gate has to fire.
//   - Deadline propagation: each request carries a virtual-cycle deadline
//     from the client through the listener backlog into the worker pool and
//     the VM's policy seam; expired requests are cancelled instead of
//     occupying a worker, and near-deadline critical sections are downgraded
//     from speculative retry straight to the GIL (policy.DeadlineGate).
//   - Retry budgets: the open-loop generator's refused/reset retries draw
//     from a per-session token bucket with seeded exponential backoff and
//     jitter, replacing unbounded fixed-interval retry storms.
//
// Everything is deterministic: the controllers observe only virtual time and
// queue state, and the retry jitter draws from a caller-seeded stream, so
// runs are byte-identical for a given seed.
package resilience

import "htmgil/internal/trace"

// Config parameterizes the server-side resilience layer of one run. The
// zero value disables everything.
type Config struct {
	// MaxQueue sheds any connection arriving while the listener backlog
	// already holds this many connections (0 = no admission gate).
	MaxQueue int
	// Brownout, when non-nil, arms the queue-delay brownout controller.
	Brownout *BrownoutConfig
	// Deadlines propagates request deadlines into the worker pool and the
	// VM policy seam: expired requests are cancelled, and transactions
	// within DeadlineSlack of their deadline fall back to the GIL.
	Deadlines bool
	// DeadlineSlack is the remaining-cycle threshold below which the policy
	// gate stops speculating (0 = DefaultDeadlineSlack).
	DeadlineSlack int64
}

// Enabled reports whether any server-side mechanism is armed.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.MaxQueue > 0 || c.Brownout != nil || c.Deadlines
}

// Admission-shed reasons (trace notes and counters).
const (
	ShedQueueFull = "queue-full"
	ShedBrownout  = "brownout"
	ShedOverload  = "shed"
)

// Server is the live resilience state of one simulated server: the
// admission gate, the brownout controller, the deadline table, and the shed
// accounting. The discrete-event engine is single-threaded, so no locking.
type Server struct {
	Cfg    Config
	Tracer *trace.Recorder

	// Brownout is the live controller, nil unless configured.
	Brownout *Brownout
	// Deadlines maps scheduler thread ids to the absolute deadline of the
	// request that thread is serving; nil unless Cfg.Deadlines.
	Deadlines *DeadlineTable

	// Sheds counts admission rejections by reason.
	Sheds map[string]uint64
	// Expired counts requests the server cancelled past their deadline
	// (in the backlog or in read_request).
	Expired uint64
}

// NewServer builds the live resilience state for a run.
func NewServer(cfg Config) *Server {
	s := &Server{Cfg: cfg, Sheds: make(map[string]uint64)}
	if cfg.Brownout != nil {
		s.Brownout = NewBrownout(*cfg.Brownout)
	}
	if cfg.Deadlines {
		s.Deadlines = NewDeadlineTable()
	}
	return s
}

// Admit decides whether a connection of the given route priority may join a
// listener backlog currently depth deep. On rejection it returns the shed
// reason, records the shed, and emits a net-shed trace event. Nil-safe:
// a nil Server admits everything.
func (s *Server) Admit(now int64, depth, priority int) (bool, string) {
	if s == nil {
		return true, ""
	}
	reason := ""
	switch {
	case s.Cfg.MaxQueue > 0 && depth >= s.Cfg.MaxQueue:
		reason = ShedQueueFull
	case s.Brownout != nil && s.Brownout.Rejects(priority):
		if s.Brownout.State() == BrownoutShed {
			reason = ShedOverload
		} else {
			reason = ShedBrownout
		}
	default:
		return true, ""
	}
	s.Sheds[reason]++
	if s.Tracer != nil {
		ev := trace.Ev(now, trace.KindNetShed)
		ev.Cycles = int64(depth)
		ev.Note = reason
		s.Tracer.Emit(ev)
	}
	return false, reason
}

// ObserveQueueDelay feeds one accepted connection's backlog wait into the
// brownout controller, emitting a brownout trace event on any state change.
// Nil-safe.
func (s *Server) ObserveQueueDelay(now, delay int64) {
	if s == nil || s.Brownout == nil {
		return
	}
	if st, changed := s.Brownout.Observe(now, delay); changed && s.Tracer != nil {
		ev := trace.Ev(now, trace.KindBrownout)
		ev.Note = st.String()
		s.Tracer.Emit(ev)
	}
}

// RecordExpired counts one server-side deadline cancellation and emits a
// deadline-exceeded trace event. Nil-safe.
func (s *Server) RecordExpired(now int64, thread int, where string) {
	if s == nil {
		return
	}
	s.Expired++
	if s.Tracer != nil {
		ev := trace.Ev(now, trace.KindDeadlineExceeded)
		ev.Thread = thread
		ev.Note = where
		s.Tracer.Emit(ev)
	}
}

// ShedTotal returns the total admission rejections across reasons.
func (s *Server) ShedTotal() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	for _, v := range s.Sheds {
		n += v
	}
	return n
}
