package resilience

// BrownoutState is the degradation controller's state.
type BrownoutState uint8

// Brownout states: the serving-side mirror of the elision breaker's
// closed / open / half-open triple. Closed serves everything; Brownout
// disables the expensive (low-priority) routes; Shed serves only the
// essential routes.
const (
	BrownoutClosed BrownoutState = iota
	BrownoutActive
	BrownoutShed
)

// String returns the state name used in trace events and reports.
func (s BrownoutState) String() string {
	switch s {
	case BrownoutClosed:
		return "closed"
	case BrownoutActive:
		return "brownout"
	default:
		return "shed"
	}
}

// BrownoutConfig tunes the queue-delay degradation controller.
type BrownoutConfig struct {
	// Alpha is the EWMA weight of each new queue-delay sample (0 =
	// DefaultBrownoutAlpha).
	Alpha float64
	// EnterDelay moves closed -> brownout when the queue-delay EWMA reaches
	// this many cycles; ShedDelay moves brownout -> shed. Exits happen at
	// ExitFrac of the respective threshold, after DwellCycles in the state,
	// so the controller cannot flap around a threshold.
	EnterDelay  int64
	ShedDelay   int64
	ExitFrac    float64
	DwellCycles int64
	// BrownoutPriority is the lowest route priority rejected while in
	// brownout (0 = DefaultBrownoutPriority); ShedPriority likewise for the
	// shed state. Priority 0 routes are always served — they keep delay
	// samples flowing, which is what lets the controller observe recovery.
	BrownoutPriority int
	ShedPriority     int
}

// Brownout controller defaults.
const (
	DefaultBrownoutAlpha    = 0.2
	DefaultBrownoutExitFrac = 0.5
	DefaultBrownoutDwell    = 2_000_000
	DefaultBrownoutPriority = 2
	DefaultShedPriority     = 1
)

// BrownoutTransition is one recorded state change.
type BrownoutTransition struct {
	T     int64  `json:"t"`
	State string `json:"state"`
}

// Brownout is the live controller: a queue-delay EWMA driving the
// three-state machine. Upward (degrading) transitions are immediate —
// overload must be met now — while downward (recovering) transitions
// require the EWMA under ExitFrac of the entry threshold *and* DwellCycles
// spent in the state, the same hysteresis shape as the breaker's cooldown.
type Brownout struct {
	Cfg BrownoutConfig

	state     BrownoutState
	ewma      float64
	haveEwma  bool
	enteredAt int64

	// Transitions is the full state-change history (reports, tests).
	Transitions []BrownoutTransition
}

// NewBrownout creates a closed controller. Zero config fields take defaults.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultBrownoutAlpha
	}
	if cfg.ExitFrac <= 0 || cfg.ExitFrac >= 1 {
		cfg.ExitFrac = DefaultBrownoutExitFrac
	}
	if cfg.DwellCycles <= 0 {
		cfg.DwellCycles = DefaultBrownoutDwell
	}
	if cfg.BrownoutPriority <= 0 {
		cfg.BrownoutPriority = DefaultBrownoutPriority
	}
	if cfg.ShedPriority <= 0 {
		cfg.ShedPriority = DefaultShedPriority
	}
	if cfg.ShedDelay > 0 && cfg.ShedDelay < cfg.EnterDelay {
		cfg.ShedDelay = cfg.EnterDelay
	}
	return &Brownout{Cfg: cfg}
}

// State returns the current state. Nil-safe (closed).
func (b *Brownout) State() BrownoutState {
	if b == nil {
		return BrownoutClosed
	}
	return b.state
}

// EWMA returns the current queue-delay estimate in cycles.
func (b *Brownout) EWMA() float64 {
	if b == nil {
		return 0
	}
	return b.ewma
}

// Rejects reports whether the current state refuses a route of the given
// priority. Priority 0 is always served.
func (b *Brownout) Rejects(priority int) bool {
	if b == nil || priority <= 0 {
		return false
	}
	switch b.state {
	case BrownoutActive:
		return priority >= b.Cfg.BrownoutPriority
	case BrownoutShed:
		return priority >= b.Cfg.ShedPriority
	default:
		return false
	}
}

// Observe feeds one queue-delay sample (the cycles an accepted connection
// waited in the backlog) and returns the resulting state plus whether it
// changed.
func (b *Brownout) Observe(now, delay int64) (BrownoutState, bool) {
	if !b.haveEwma {
		b.ewma, b.haveEwma = float64(delay), true
	} else {
		b.ewma += b.Cfg.Alpha * (float64(delay) - b.ewma)
	}
	prev := b.state
	switch b.state {
	case BrownoutClosed:
		if b.Cfg.ShedDelay > 0 && b.ewma >= float64(b.Cfg.ShedDelay) {
			b.transition(now, BrownoutShed)
		} else if b.Cfg.EnterDelay > 0 && b.ewma >= float64(b.Cfg.EnterDelay) {
			b.transition(now, BrownoutActive)
		}
	case BrownoutActive:
		if b.Cfg.ShedDelay > 0 && b.ewma >= float64(b.Cfg.ShedDelay) {
			b.transition(now, BrownoutShed)
		} else if b.dwelt(now) && b.ewma <= b.Cfg.ExitFrac*float64(b.Cfg.EnterDelay) {
			b.transition(now, BrownoutClosed)
		}
	case BrownoutShed:
		if b.dwelt(now) && b.ewma <= b.Cfg.ExitFrac*float64(b.Cfg.ShedDelay) {
			b.transition(now, BrownoutActive)
		}
	}
	return b.state, b.state != prev
}

func (b *Brownout) dwelt(now int64) bool {
	return now-b.enteredAt >= b.Cfg.DwellCycles
}

func (b *Brownout) transition(now int64, to BrownoutState) {
	b.state = to
	b.enteredAt = now
	b.Transitions = append(b.Transitions, BrownoutTransition{T: now, State: to.String()})
}
