package resilience

// Client-side retry budgets. The open-loop generator retries refused and
// reset connections; unbounded fixed-interval retries are exactly how
// transient overload becomes metastable — the retry traffic itself keeps the
// server saturated after the original pulse has passed. A RetryConfig
// bounds each request's attempts, makes each session draw retries from a
// token bucket refilled by successes (a failing session backs itself off
// the network), and spreads the surviving retries with seeded exponential
// backoff and jitter so they cannot re-synchronize into waves.

// Retry defaults.
const (
	DefaultRetryAttempts = 6
	DefaultRetryBudget   = 4.0
	DefaultRetryRefill   = 0.2
	DefaultRetryBase     = 50_000
	DefaultRetryMax      = 1_600_000
	DefaultRetryJitter   = 0.5
)

// RetryConfig tunes the per-session retry budget. Zero fields take the
// defaults above.
type RetryConfig struct {
	// MaxAttempts is the hard cap on connect attempts per request; a
	// request whose last allowed attempt fails gives up.
	MaxAttempts int
	// Budget is the session token-bucket capacity; every retry consumes one
	// token and a request whose session is out of tokens gives up.
	Budget float64
	// Refill is the tokens credited back to the session per completed
	// request (capped at Budget).
	Refill float64
	// BaseBackoff is the first retry's backoff in cycles; attempt k backs
	// off BaseBackoff*2^(k-1), capped at MaxBackoff.
	BaseBackoff int64
	MaxBackoff  int64
	// JitterFrac shrinks each backoff by up to this fraction, drawn from
	// the caller's seeded stream, de-synchronizing retry waves.
	JitterFrac float64
}

func (c RetryConfig) norm() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultRetryAttempts
	}
	if c.Budget <= 0 {
		c.Budget = DefaultRetryBudget
	}
	if c.Refill <= 0 {
		c.Refill = DefaultRetryRefill
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultRetryBase
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultRetryMax
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		c.JitterFrac = DefaultRetryJitter
	}
	return c
}

// AttemptCap returns the effective per-request attempt limit (the configured
// MaxAttempts or its default).
func (c RetryConfig) AttemptCap() int { return c.norm().MaxAttempts }

// Backoff returns the park duration before retry attempt k (1-based): the
// capped exponential shrunk by JitterFrac*u, where u in [0,1) comes from the
// caller's seeded stream.
func (c RetryConfig) Backoff(attempt int, u float64) int64 {
	c = c.norm()
	d := c.BaseBackoff
	for i := 1; i < attempt && d < c.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	d = int64(float64(d) * (1 - c.JitterFrac*u))
	if d < 1 {
		d = 1
	}
	return d
}

// NewBudget allocates one session's token bucket, full.
func (c RetryConfig) NewBudget() *RetryBudget {
	n := c.norm()
	return &RetryBudget{cfg: n, tokens: n.Budget}
}

// RetryBudget is one session's live token bucket.
type RetryBudget struct {
	cfg    RetryConfig
	tokens float64
}

// TryConsume takes one retry token, reporting whether one was available.
func (b *RetryBudget) TryConsume() bool {
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Refund credits the per-success refill back to the bucket.
func (b *RetryBudget) Refund() {
	b.tokens += b.cfg.Refill
	if b.tokens > b.cfg.Budget {
		b.tokens = b.cfg.Budget
	}
}

// Tokens returns the current balance (tests).
func (b *RetryBudget) Tokens() float64 { return b.tokens }
