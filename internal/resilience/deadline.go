package resilience

// DefaultDeadlineSlack is the remaining-cycle threshold below which the
// deadline policy gate (policy.DeadlineGate) stops speculating: roughly the
// cost of a couple of abort-retry round trips, so a near-deadline section
// takes the guaranteed-progress GIL path instead of gambling the budget on
// another optimistic attempt.
const DefaultDeadlineSlack = 100_000

// DeadlineTable maps scheduler thread ids to the absolute virtual-cycle
// deadline of the request each worker is currently serving. The netsim
// accept path sets an entry when a worker picks up a connection with a
// deadline; read_request/close clear it. core.Elision reads it through the
// core.DeadlineSource interface, so the policy seam never imports this
// package's wiring.
//
// The table is engine-thread-local state (the simulator is single-threaded),
// so it needs no locking.
type DeadlineTable struct {
	m map[int]int64
}

// NewDeadlineTable returns an empty table.
func NewDeadlineTable() *DeadlineTable {
	return &DeadlineTable{m: make(map[int]int64)}
}

// Set records the absolute deadline of the request thread is serving.
// deadline <= 0 clears instead.
func (t *DeadlineTable) Set(thread int, deadline int64) {
	if deadline <= 0 {
		delete(t.m, thread)
		return
	}
	t.m[thread] = deadline
}

// Clear removes the thread's entry (request finished or cancelled).
func (t *DeadlineTable) Clear(thread int) {
	delete(t.m, thread)
}

// Remaining implements core.DeadlineSource: cycles left until the deadline
// of the request thread is serving (negative once past it), with ok=false
// when the thread has no deadline-carrying request.
func (t *DeadlineTable) Remaining(thread int, now int64) (int64, bool) {
	d, ok := t.m[thread]
	if !ok {
		return 0, false
	}
	return d - now, true
}

// Len returns the number of live entries (tests).
func (t *DeadlineTable) Len() int { return len(t.m) }
