package resilience

// RecoveryTracker measures time-to-recover at the request level: it buckets
// every request outcome (SLO-met or not — sheds, give-ups and deadline
// misses count as not) into fixed windows of virtual time and, after the
// run, finds the first window past a mark (the overload pulse clearing)
// from which attainment stays at or above the threshold for the rest of the
// run. The same shape as the chaos experiment's breaker-based
// time-to-recover, but judged on what clients experience rather than on
// runtime internals.
type RecoveryTracker struct {
	// Window is the bucket width in cycles (0 = DefaultRecoveryWindow).
	Window int64
	// Threshold is the attainment a window needs to count as recovered
	// (0 = DefaultRecoveryThreshold).
	Threshold float64

	met   map[int64]int
	total map[int64]int
	last  int64 // highest bucket observed
}

// Recovery defaults.
const (
	DefaultRecoveryWindow    = 10_000_000
	DefaultRecoveryThreshold = 0.9
)

// Observe records one request outcome at virtual time done.
func (r *RecoveryTracker) Observe(done int64, ok bool) {
	if r.Window <= 0 {
		r.Window = DefaultRecoveryWindow
	}
	if r.met == nil {
		r.met = make(map[int64]int)
		r.total = make(map[int64]int)
	}
	b := done / r.Window
	r.total[b]++
	if ok {
		r.met[b]++
	}
	if b > r.last {
		r.last = b
	}
}

// RecoverAt returns the cycles between mark and the start of the first
// window from which every later non-empty window meets the threshold:
// 0 when the service was already healthy at the mark, -1 when it never
// recovered within the observed run, and -1 when nothing was observed
// after the mark (a fully collapsed service stops completing anything).
func (r *RecoveryTracker) RecoverAt(mark int64) int64 {
	if r.Window <= 0 {
		r.Window = DefaultRecoveryWindow
	}
	th := r.Threshold
	if th <= 0 {
		th = DefaultRecoveryThreshold
	}
	first := mark / r.Window
	// Walk backwards from the last bucket to find the earliest bucket b >=
	// first such that every non-empty bucket in [b, last] meets the
	// threshold.
	recovered := int64(-1)
	seen := false
	for b := r.last; b >= first; b-- {
		n := r.total[b]
		if n == 0 {
			continue
		}
		seen = true
		if float64(r.met[b])/float64(n) < th {
			break
		}
		recovered = b
	}
	if !seen || recovered < 0 {
		return -1
	}
	at := recovered * r.Window
	if at <= mark {
		return 0
	}
	return at - mark
}
