package resilience

import (
	"testing"

	"htmgil/internal/trace"
)

func TestAdmissionQueueGate(t *testing.T) {
	s := NewServer(Config{MaxQueue: 4})
	for depth := 0; depth < 4; depth++ {
		if ok, _ := s.Admit(100, depth, 2); !ok {
			t.Fatalf("depth %d rejected below MaxQueue", depth)
		}
	}
	ok, reason := s.Admit(100, 4, 0)
	if ok || reason != ShedQueueFull {
		t.Fatalf("depth 4 admitted (ok=%v reason=%q); want queue-full shed", ok, reason)
	}
	if got := s.Sheds[ShedQueueFull]; got != 1 {
		t.Fatalf("queue-full sheds = %d, want 1", got)
	}
	if s.ShedTotal() != 1 {
		t.Fatalf("ShedTotal = %d, want 1", s.ShedTotal())
	}
}

func TestAdmitNilServer(t *testing.T) {
	var s *Server
	if ok, _ := s.Admit(0, 1<<20, 9); !ok {
		t.Fatal("nil server must admit everything")
	}
	s.ObserveQueueDelay(0, 1) // must not panic
	s.RecordExpired(0, 1, "backlog")
}

func TestBrownoutEscalatesAndRecovers(t *testing.T) {
	b := NewBrownout(BrownoutConfig{
		Alpha:       1, // EWMA = last sample: exact thresholds
		EnterDelay:  1_000,
		ShedDelay:   10_000,
		DwellCycles: 100,
	})
	if b.State() != BrownoutClosed || b.Rejects(3) {
		t.Fatal("fresh controller must be closed and reject nothing")
	}
	if st, changed := b.Observe(0, 2_000); st != BrownoutActive || !changed {
		t.Fatalf("delay 2000 -> %v (changed=%v), want brownout", st, changed)
	}
	if !b.Rejects(2) || b.Rejects(1) || b.Rejects(0) {
		t.Fatal("brownout must reject priority >= 2 only")
	}
	if st, _ := b.Observe(10, 20_000); st != BrownoutShed {
		t.Fatalf("delay 20000 -> %v, want shed", st)
	}
	if !b.Rejects(1) || b.Rejects(0) {
		t.Fatal("shed must reject priority >= 1 but always serve priority 0")
	}
	// Recovery requires dwell: a low sample right away must not transition.
	if st, changed := b.Observe(20, 0); st != BrownoutShed || changed {
		t.Fatalf("recovery before dwell: %v (changed=%v)", st, changed)
	}
	if st, _ := b.Observe(200, 0); st != BrownoutActive {
		t.Fatal("low EWMA after dwell must step shed -> brownout")
	}
	if st, _ := b.Observe(400, 0); st != BrownoutClosed {
		t.Fatal("low EWMA after dwell must step brownout -> closed")
	}
	want := []string{"brownout", "shed", "brownout", "closed"}
	if len(b.Transitions) != len(want) {
		t.Fatalf("transitions %v, want states %v", b.Transitions, want)
	}
	for i, tr := range b.Transitions {
		if tr.State != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, tr.State, want[i])
		}
	}
}

func TestBrownoutHysteresisNoFlap(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Alpha: 1, EnterDelay: 1_000, DwellCycles: 100})
	b.Observe(0, 1_500) // -> brownout
	// A sample just under the entry threshold is above ExitFrac*threshold:
	// the controller must hold, not flap closed.
	if st, _ := b.Observe(500, 900); st != BrownoutActive {
		t.Fatal("EWMA above exit threshold must not close")
	}
	if st, _ := b.Observe(600, 400); st != BrownoutClosed {
		t.Fatal("EWMA under exit threshold after dwell must close")
	}
}

func TestServerShedEmitsTrace(t *testing.T) {
	rec := trace.NewRecorder()
	var got []trace.Event
	rec.AddSink(sinkFunc(func(ev trace.Event) { got = append(got, ev) }))
	s := NewServer(Config{MaxQueue: 1})
	s.Tracer = rec
	s.Admit(42, 1, 1)
	s.RecordExpired(50, 7, "read")
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
	if got[0].Kind != trace.KindNetShed || got[0].Note != ShedQueueFull || got[0].T != 42 {
		t.Fatalf("shed event = %+v", got[0])
	}
	if got[1].Kind != trace.KindDeadlineExceeded || got[1].Thread != 7 || got[1].Note != "read" {
		t.Fatalf("deadline event = %+v", got[1])
	}
}

type sinkFunc func(trace.Event)

func (f sinkFunc) Emit(ev trace.Event) { f(ev) }

func TestDeadlineTable(t *testing.T) {
	tab := NewDeadlineTable()
	if _, ok := tab.Remaining(3, 0); ok {
		t.Fatal("empty table must report no deadline")
	}
	tab.Set(3, 1_000)
	if rem, ok := tab.Remaining(3, 400); !ok || rem != 600 {
		t.Fatalf("Remaining = %d,%v, want 600,true", rem, ok)
	}
	if rem, _ := tab.Remaining(3, 1_500); rem != -500 {
		t.Fatalf("past-deadline Remaining = %d, want -500", rem)
	}
	tab.Clear(3)
	if _, ok := tab.Remaining(3, 0); ok || tab.Len() != 0 {
		t.Fatal("Clear must drop the entry")
	}
	tab.Set(4, 10)
	tab.Set(4, 0) // deadline <= 0 clears
	if tab.Len() != 0 {
		t.Fatal("Set with zero deadline must clear")
	}
}

func TestRetryBudgetAndBackoff(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 3, Budget: 2, Refill: 0.5,
		BaseBackoff: 100, MaxBackoff: 350, JitterFrac: 0.5}
	b := cfg.NewBudget()
	if !b.TryConsume() || !b.TryConsume() {
		t.Fatal("fresh bucket must hold Budget tokens")
	}
	if b.TryConsume() {
		t.Fatal("empty bucket must refuse")
	}
	b.Refund()
	if b.TryConsume() {
		t.Fatal("0.5 tokens is not a whole retry")
	}
	b.Refund()
	if !b.TryConsume() {
		t.Fatal("two refunds must buy one retry")
	}

	// Exponential, capped, deterministic in u.
	if d := cfg.Backoff(1, 0); d != 100 {
		t.Fatalf("attempt 1 u=0: %d, want 100", d)
	}
	if d := cfg.Backoff(2, 0); d != 200 {
		t.Fatalf("attempt 2 u=0: %d, want 200", d)
	}
	if d := cfg.Backoff(3, 0); d != 350 {
		t.Fatalf("attempt 3 u=0: %d, want cap 350", d)
	}
	if d := cfg.Backoff(1, 0.9999); d < 50 || d >= 100 {
		t.Fatalf("jitter must shrink by at most JitterFrac: %d", d)
	}
	if d := (RetryConfig{}).Backoff(1, 0); d != DefaultRetryBase {
		t.Fatalf("zero config must take defaults: %d", d)
	}
}

func TestRecoveryTracker(t *testing.T) {
	r := &RecoveryTracker{Window: 100, Threshold: 0.9}
	// Healthy before and at the mark: recover = 0.
	for i := int64(0); i < 10; i++ {
		r.Observe(i*100, true)
	}
	if got := r.RecoverAt(300); got != 0 {
		t.Fatalf("healthy service: RecoverAt = %d, want 0", got)
	}

	// Misses until t=500, healthy after: recovery at the first healthy window.
	r = &RecoveryTracker{Window: 100, Threshold: 0.9}
	for i := int64(0); i < 5; i++ {
		r.Observe(i*100, false)
	}
	for i := int64(5); i < 10; i++ {
		r.Observe(i*100, true)
	}
	if got := r.RecoverAt(200); got != 300 {
		t.Fatalf("RecoverAt = %d, want 300", got)
	}

	// Never healthy after the mark: -1.
	r = &RecoveryTracker{Window: 100, Threshold: 0.9}
	for i := int64(0); i < 10; i++ {
		r.Observe(i*100, i%2 == 0)
	}
	if got := r.RecoverAt(0); got != -1 {
		t.Fatalf("collapsed service: RecoverAt = %d, want -1", got)
	}

	// Nothing observed after the mark: also -1 (total collapse).
	r = &RecoveryTracker{Window: 100}
	r.Observe(50, true)
	if got := r.RecoverAt(1_000); got != -1 {
		t.Fatalf("silent service: RecoverAt = %d, want -1", got)
	}

	// Empty windows between healthy ones don't break the run.
	r = &RecoveryTracker{Window: 100, Threshold: 0.9}
	r.Observe(100, false)
	r.Observe(200, true)
	r.Observe(500, true) // buckets 3-4 empty
	if got := r.RecoverAt(100); got != 100 {
		t.Fatalf("gap run: RecoverAt = %d, want 100", got)
	}
}
