package simmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newMem(t *testing.T, lineBytes, nctx int) *Memory {
	t.Helper()
	return NewMemory(Config{LineBytes: lineBytes}, nctx)
}

func TestReserveAlignsToLines(t *testing.T) {
	m := newMem(t, 256, 2)
	a := m.Reserve("a", 10)
	b := m.Reserve("b", 10)
	if a%256 != 0 || b%256 != 0 {
		t.Fatalf("regions not line aligned: %#x %#x", a, b)
	}
	if m.LineAddr(a) == m.LineAddr(b) {
		t.Fatalf("distinct regions share a line")
	}
	if got := m.RegionLabel(a); got != "a" {
		t.Fatalf("RegionLabel(a) = %q", got)
	}
	if got := m.RegionLabel(b + 8); got != "b" {
		t.Fatalf("RegionLabel(b+8) = %q", got)
	}
	if got := m.RegionLabel(0); got != "unknown" {
		t.Fatalf("RegionLabel(0) = %q", got)
	}
}

func TestDirectLoadStore(t *testing.T) {
	m := newMem(t, 64, 1)
	base := m.Reserve("data", 1024)
	m.Store(base+8, Word{Bits: 42})
	if w := m.Load(base + 8); w.Bits != 42 {
		t.Fatalf("load = %d, want 42", w.Bits)
	}
	if w := m.Load(base + 16); w.Bits != 0 {
		t.Fatalf("uninitialized word = %d, want 0", w.Bits)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	m := newMem(t, 64, 1)
	base := m.Reserve("data", 64)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on unaligned access")
		}
	}()
	m.Load(base + 3)
}

func TestTxBuffersWritesUntilCommit(t *testing.T) {
	m := newMem(t, 64, 2)
	base := m.Reserve("data", 1024)
	tx := m.Tx(0)
	tx.Begin(1024, 1024)
	tx.Store(base, Word{Bits: 7})
	if w := tx.Load(base); w.Bits != 7 {
		t.Fatalf("tx does not see own write: %d", w.Bits)
	}
	if w := m.Peek(base); w.Bits != 0 {
		t.Fatalf("speculative write visible before commit: %d", w.Bits)
	}
	if !tx.Commit() {
		t.Fatalf("commit failed unexpectedly")
	}
	if w := m.Peek(base); w.Bits != 7 {
		t.Fatalf("committed write lost: %d", w.Bits)
	}
}

func TestRollbackDiscardsWrites(t *testing.T) {
	m := newMem(t, 64, 2)
	base := m.Reserve("data", 1024)
	m.Store(base, Word{Bits: 1})
	tx := m.Tx(0)
	tx.Begin(1024, 1024)
	tx.Store(base, Word{Bits: 99})
	tx.SelfDoom(CauseExplicit)
	if tx.Commit() {
		t.Fatalf("doomed transaction committed")
	}
	if cause := tx.Rollback(); cause != CauseExplicit {
		t.Fatalf("rollback cause = %v", cause)
	}
	if w := m.Peek(base); w.Bits != 1 {
		t.Fatalf("aborted write leaked: %d", w.Bits)
	}
	if tx.Active() {
		t.Fatalf("context still active after rollback")
	}
}

func TestWriteWriteConflictRequesterWins(t *testing.T) {
	m := newMem(t, 64, 2)
	base := m.Reserve("data", 1024)
	a, b := m.Tx(0), m.Tx(1)
	a.Begin(1024, 1024)
	b.Begin(1024, 1024)
	a.Store(base, Word{Bits: 1})
	b.Store(base, Word{Bits: 2}) // requester wins: a is doomed
	if !a.Doomed() || a.DoomCause() != CauseConflict {
		t.Fatalf("first writer not doomed: %v %v", a.Doomed(), a.DoomCause())
	}
	if b.Doomed() {
		t.Fatalf("requester doomed")
	}
	a.Rollback()
	if !b.Commit() {
		t.Fatalf("winner failed to commit")
	}
	if w := m.Peek(base); w.Bits != 2 {
		t.Fatalf("committed value = %d, want 2", w.Bits)
	}
}

func TestReadWriteConflicts(t *testing.T) {
	m := newMem(t, 64, 3)
	base := m.Reserve("data", 1024)

	// Writer dooms existing readers.
	r1, r2, w := m.Tx(0), m.Tx(1), m.Tx(2)
	r1.Begin(1024, 1024)
	r2.Begin(1024, 1024)
	w.Begin(1024, 1024)
	r1.Load(base)
	r2.Load(base)
	w.Store(base, Word{Bits: 5})
	if !r1.Doomed() || !r2.Doomed() {
		t.Fatalf("readers not doomed by writer")
	}
	if w.Doomed() {
		t.Fatalf("writer doomed by readers")
	}
	r1.Rollback()
	r2.Rollback()
	w.Commit()

	// Reader dooms existing writer.
	w.Begin(1024, 1024)
	r1.Begin(1024, 1024)
	w.Store(base, Word{Bits: 6})
	r1.Load(base)
	if !w.Doomed() {
		t.Fatalf("writer not doomed by reader")
	}
	if r1.Doomed() {
		t.Fatalf("reader doomed")
	}
	// The reader must see the pre-transactional value, not the speculative one.
	if v := r1.Load(base); v.Bits != 5 {
		t.Fatalf("reader saw speculative value %d", v.Bits)
	}
	w.Rollback()
	r1.Commit()
}

func TestConcurrentReadersDoNotConflict(t *testing.T) {
	m := newMem(t, 64, 4)
	base := m.Reserve("data", 1024)
	for i := 0; i < 4; i++ {
		m.Tx(i).Begin(1024, 1024)
	}
	for i := 0; i < 4; i++ {
		m.Tx(i).Load(base)
	}
	for i := 0; i < 4; i++ {
		if m.Tx(i).Doomed() {
			t.Fatalf("reader %d doomed", i)
		}
		if !m.Tx(i).Commit() {
			t.Fatalf("reader %d failed to commit", i)
		}
	}
}

func TestNonTxStoreDoomsEverybody(t *testing.T) {
	m := newMem(t, 64, 2)
	base := m.Reserve("data", 1024)
	r, w := m.Tx(0), m.Tx(1)
	r.Begin(1024, 1024)
	w.Begin(1024, 1024)
	r.Load(base)
	w.Store(base+8, Word{Bits: 1}) // same line, different word
	m.Store(base, Word{Bits: 9})
	if !r.Doomed() || !w.Doomed() {
		t.Fatalf("non-transactional store did not doom conflicting txs")
	}
	r.Rollback()
	w.Rollback()
	if v := m.Peek(base); v.Bits != 9 {
		t.Fatalf("direct store lost: %d", v.Bits)
	}
}

func TestNonTxLoadDoomsWriter(t *testing.T) {
	m := newMem(t, 64, 1)
	base := m.Reserve("data", 1024)
	w := m.Tx(0)
	w.Begin(1024, 1024)
	w.Store(base, Word{Bits: 3})
	if v := m.Load(base); v.Bits != 0 {
		t.Fatalf("non-tx load saw speculative value %d", v.Bits)
	}
	if !w.Doomed() {
		t.Fatalf("writer not doomed by non-tx load")
	}
	w.Rollback()
}

func TestFalseSharingWithinLine(t *testing.T) {
	// Two transactions writing *different words of the same line* conflict:
	// detection is line-granular, as on real hardware.
	m := newMem(t, 256, 2)
	base := m.Reserve("data", 1024)
	a, b := m.Tx(0), m.Tx(1)
	a.Begin(1024, 1024)
	b.Begin(1024, 1024)
	a.Store(base, Word{Bits: 1})
	b.Store(base+248, Word{Bits: 2})
	if !a.Doomed() {
		t.Fatalf("false sharing not detected at 256-byte lines")
	}
	a.Rollback()
	b.Commit()

	// With 64-byte lines the same two addresses do not share a line.
	m2 := NewMemory(Config{LineBytes: 64}, 2)
	base2 := m2.Reserve("data", 1024)
	a2, b2 := m2.Tx(0), m2.Tx(1)
	a2.Begin(1024, 1024)
	b2.Begin(1024, 1024)
	a2.Store(base2, Word{Bits: 1})
	b2.Store(base2+248, Word{Bits: 2})
	if a2.Doomed() || b2.Doomed() {
		t.Fatalf("spurious conflict across distinct 64-byte lines")
	}
	a2.Commit()
	b2.Commit()
}

func TestWriteOverflow(t *testing.T) {
	m := newMem(t, 64, 1)
	base := m.Reserve("data", 1<<20)
	tx := m.Tx(0)
	tx.Begin(1<<20, 4) // 4-line write capacity
	for i := 0; i < 4; i++ {
		tx.Store(base+Addr(i*64), Word{Bits: uint64(i)})
	}
	if tx.Doomed() {
		t.Fatalf("doomed before capacity exceeded")
	}
	tx.Store(base+Addr(4*64), Word{Bits: 4})
	if !tx.Doomed() || tx.DoomCause() != CauseWriteOverflow {
		t.Fatalf("write overflow not detected: %v", tx.DoomCause())
	}
	tx.Rollback()
}

func TestReadOverflow(t *testing.T) {
	m := newMem(t, 64, 1)
	base := m.Reserve("data", 1<<20)
	tx := m.Tx(0)
	tx.Begin(3, 1<<20)
	tx.Load(base)
	tx.Load(base + 64)
	tx.Load(base + 128)
	if tx.Doomed() {
		t.Fatalf("doomed before read capacity exceeded")
	}
	tx.Load(base + 192)
	if !tx.Doomed() || tx.DoomCause() != CauseReadOverflow {
		t.Fatalf("read overflow not detected: %v", tx.DoomCause())
	}
	tx.Rollback()
}

func TestRereadingSameLineCostsNoCapacity(t *testing.T) {
	m := newMem(t, 64, 1)
	base := m.Reserve("data", 1024)
	tx := m.Tx(0)
	tx.Begin(1, 1)
	for i := 0; i < 100; i++ {
		tx.Load(base)
		tx.Store(base+8, Word{Bits: uint64(i)})
	}
	if tx.Doomed() {
		t.Fatalf("repeated access to one line overflowed capacity")
	}
	if tx.ReadSetLines() != 1 || tx.WriteSetLines() != 1 {
		t.Fatalf("set sizes = %d/%d, want 1/1", tx.ReadSetLines(), tx.WriteSetLines())
	}
	tx.Commit()
}

func TestCleanupReleasesLineOwnership(t *testing.T) {
	m := newMem(t, 64, 2)
	base := m.Reserve("data", 1024)
	a := m.Tx(0)
	a.Begin(1024, 1024)
	a.Store(base, Word{Bits: 1})
	a.Commit()
	// After commit, a new transaction in another context must not conflict.
	b := m.Tx(1)
	b.Begin(1024, 1024)
	b.Store(base, Word{Bits: 2})
	if b.Doomed() {
		t.Fatalf("stale ownership caused conflict after commit")
	}
	b.Commit()
}

func TestConflictAttribution(t *testing.T) {
	m := newMem(t, 64, 2)
	freelist := m.Reserve("freelist", 1024)
	a, b := m.Tx(0), m.Tx(1)
	a.Begin(1024, 1024)
	b.Begin(1024, 1024)
	a.Load(freelist)
	b.Store(freelist, Word{Bits: 1})
	a.Rollback()
	b.Commit()
	if m.ConflictCounts()["freelist"] != 1 {
		t.Fatalf("conflict not attributed to freelist region: %v", m.ConflictCounts())
	}
}

// TestHTMAtomicityProperty drives random interleavings of transactional
// counter increments, with conflict-induced retries, and checks the final
// sum equals the number of successful increments (serializability of the
// simulated HTM on its simplest workload).
func TestHTMAtomicityProperty(t *testing.T) {
	f := func(seed int64, nctx8 uint8, rounds16 uint16) bool {
		nctx := int(nctx8%7) + 2
		rounds := int(rounds16%300) + 50
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory(Config{LineBytes: 64}, nctx)
		base := m.Reserve("ctr", 64)
		committed := 0
		type state struct{ started, readDone bool }
		sts := make([]state, nctx)
		for step := 0; step < rounds*nctx; step++ {
			id := rng.Intn(nctx)
			tx := m.Tx(id)
			st := &sts[id]
			switch {
			case !st.started:
				tx.Begin(1024, 1024)
				st.started = true
				st.readDone = false
			case tx.Doomed():
				tx.Rollback()
				st.started = false
			case !st.readDone:
				v := tx.Load(base)
				tx.Store(base, Word{Bits: v.Bits + 1})
				st.readDone = true
			default:
				if tx.Commit() {
					committed++
				} else {
					tx.Rollback()
				}
				st.started = false
			}
		}
		for id := range sts {
			if sts[id].started {
				m.Tx(id).Rollback()
			}
		}
		return m.Peek(base).Bits == uint64(committed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedStrongIsolation mixes transactional and direct accesses to
// overlapping lines and verifies that committed values always equal a value
// some completed write actually produced (no corruption from aborted
// buffers) by tracking an oracle of direct+committed writes.
func TestRandomizedStrongIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMemory(Config{LineBytes: 64}, 4)
	base := m.Reserve("data", 4096)
	oracle := map[Addr]uint64{}
	pending := make([]map[Addr]uint64, 4)
	for round := 0; round < 5000; round++ {
		id := rng.Intn(4)
		tx := m.Tx(id)
		addr := base + Addr(rng.Intn(64)*8)
		switch rng.Intn(6) {
		case 0: // direct write
			v := uint64(rng.Int63())
			m.Store(addr, Word{Bits: v})
			oracle[addr] = v
		case 1: // direct read
			if got, want := m.Load(addr).Bits, oracle[addr]; got != want {
				t.Fatalf("direct read %#x = %d, want %d", uint64(addr), got, want)
			}
		case 2: // tx begin
			if !tx.Active() {
				tx.Begin(1024, 1024)
				pending[id] = map[Addr]uint64{}
			}
		case 3: // tx write
			if tx.Active() && !tx.Doomed() {
				v := uint64(rng.Int63())
				tx.Store(addr, Word{Bits: v})
				pending[id][addr] = v
			}
		case 4: // tx read must see own writes else oracle
			if tx.Active() && !tx.Doomed() {
				got := tx.Load(addr).Bits
				want, own := pending[id][addr]
				if !own {
					want = oracle[addr]
				}
				if tx.Doomed() {
					break // overflow etc. during this access; value unreliable
				}
				if got != want {
					t.Fatalf("tx read %#x = %d, want %d (own=%v)", uint64(addr), got, want, own)
				}
			}
		case 5: // commit or rollback
			if tx.Active() {
				if tx.Commit() {
					for a, v := range pending[id] {
						oracle[a] = v
					}
				} else {
					tx.Rollback()
				}
				pending[id] = nil
			}
		}
	}
}

func TestAbortCauseStrings(t *testing.T) {
	causes := []AbortCause{CauseNone, CauseConflict, CauseReadOverflow,
		CauseWriteOverflow, CauseExplicit, CauseRestricted, CauseInterrupt, CauseLearning}
	seen := map[string]bool{}
	for _, c := range causes {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate cause name %q", s)
		}
		seen[s] = true
	}
	if !CauseConflict.Transient() || !CauseInterrupt.Transient() {
		t.Fatalf("conflict/interrupt must be transient")
	}
	if CauseWriteOverflow.Transient() || CauseRestricted.Transient() {
		t.Fatalf("overflow/restricted must be persistent")
	}
}
