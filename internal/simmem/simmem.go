// Package simmem provides a software-simulated shared memory with
// cache-line-granular transactional conflict detection.
//
// It is the substrate standing in for the HTM hardware of the IBM zEC12 and
// Intel 4th Generation Core processors used in the paper "Eliminating Global
// Interpreter Locks in Ruby through Hardware Transactional Memory"
// (PPoPP 2014). All shared interpreter state is stored in a Memory; accesses
// are performed either transactionally (tracked in per-transaction read and
// write sets, with eager requester-wins conflict detection) or directly
// (non-transactional accesses doom conflicting transactions, modelling the
// strong isolation of real HTM implementations).
//
// The simulator that drives the interpreter is single-threaded, so simmem
// performs no locking of its own: determinism comes for free and every
// experiment is exactly reproducible.
//
// Every interpreter memory access funnels through this package, so the line
// lookup is the hottest path of the whole simulator. Lines live in a paged
// table (fixed-size pages of line structs, addressed by line number) rather
// than a hash map, and both the Memory and each Tx keep a last-line cache
// that short-circuits the common run of consecutive accesses to one line.
// Line pointers are stable for the life of the Memory — pages are never
// moved or freed — which is what makes the caches safe.
package simmem

import (
	"fmt"
	"math/bits"
	"sort"

	"htmgil/internal/choice"
	"htmgil/internal/trace"
)

// Addr is a byte address in the simulated memory. Words are 8 bytes and all
// word accesses must be word-aligned.
type Addr uint64

// WordBytes is the size of one simulated memory word in bytes.
const WordBytes = 8

// MaxContexts is the maximum number of transactional contexts a Memory can
// host. Reader sets are tracked as 64-bit bitmaps, one bit per context.
const MaxContexts = 64

// Word is the unit of simulated storage. Bits holds immediate payloads
// (fixnums, float bits, symbol ids, simulated addresses) and Ref holds a
// reference payload for heap values. Interpretation is up to the client; the
// interpreter's value model is built directly on Word.
type Word struct {
	Bits uint64
	Ref  any
}

// AbortCause classifies why a transaction was doomed, mirroring the abort
// taxonomy of the zEC12 condition code and the Intel EAX abort status.
type AbortCause uint8

// Abort causes. Conflict and Interrupt are transient (retry may succeed);
// the overflow causes, Restricted and Explicit are persistent, and so is
// Learning, which masquerades as a capacity abort on the Intel machine.
const (
	CauseNone          AbortCause = iota
	CauseConflict                 // coherence conflict with another access
	CauseReadOverflow             // read-set footprint exceeded capacity
	CauseWriteOverflow            // write-set footprint exceeded capacity
	CauseExplicit                 // TABORT / XABORT issued by software
	CauseRestricted               // restricted operation (e.g. system call)
	CauseInterrupt                // external interrupt delivered mid-transaction
	CauseLearning                 // eager abort by the Intel-style predictor
	CauseSpurious                 // injected transient abort (fault harness)
)

// String returns a short human-readable name for the cause.
func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseConflict:
		return "conflict"
	case CauseReadOverflow:
		return "read-overflow"
	case CauseWriteOverflow:
		return "write-overflow"
	case CauseExplicit:
		return "explicit"
	case CauseRestricted:
		return "restricted"
	case CauseInterrupt:
		return "interrupt"
	case CauseLearning:
		return "learning"
	case CauseSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Transient reports whether retrying a transaction aborted for this cause is
// likely to succeed, following the paper's transient/persistent split.
func (c AbortCause) Transient() bool {
	return c == CauseConflict || c == CauseInterrupt || c == CauseSpurious
}

// line is one simulated cache line: its backing words plus the transactional
// metadata real hardware keeps per line (tx-read bits, tx-dirty owner).
type line struct {
	words   []Word
	readers uint64 // bitmap of contexts with this line in their read set
	writer  int32  // context with this line in its write set, or -1
}

// pageLineShift sizes the pages of the line table: 2^9 = 512 lines per page
// (32 KB at 64-byte lines, 128 KB at 256-byte lines).
const (
	pageLineShift = 9
	pageLines     = 1 << pageLineShift
	pageLineMask  = pageLines - 1
)

// page is a fixed block of lines. Lines are stored by value so one page is
// one allocation and the line structs of hot neighbouring addresses share
// cache locality on the host, and because the backing array of a page never
// moves, &page.lines[i] is stable for the life of the Memory.
type page struct {
	lines [pageLines]line
}

func newPage() *page {
	p := &page{}
	for i := range p.lines {
		p.lines[i].writer = -1
	}
	return p
}

// Config describes the geometry of a Memory.
type Config struct {
	// LineBytes is the cache-line size in bytes (256 on zEC12, 64 on the
	// Xeon E3-1275 v3). Must be a power of two and a multiple of WordBytes.
	LineBytes int
}

// Memory is a simulated shared memory. It owns the line table, the
// transactional contexts, the region registry used for conflict attribution
// and a simple reservation-based address-space allocator.
type Memory struct {
	cfg          Config
	lineShift    uint
	wordsPerLine int

	pages []*page
	txs   []*Tx

	// last-line cache for the direct (non-transactional) access path
	lastLA   Addr
	lastLine *line

	// address-space reservations, sorted by base (brk only grows)
	brk     Addr
	regions []region

	// version counts committed memory updates: every direct Store bumps it,
	// and every Tx.Commit that publishes writes bumps it once. The OCC tier
	// (internal/occ) uses it NOrec-style to gate read-set revalidation: a
	// software transaction whose snapshot predates the current version must
	// revalidate before consuming any further value.
	version uint64

	// hazard window for lazy-subscription elision: while non-nil, every
	// non-transactional Store records its line here, and a transactional
	// access to a recorded line dooms the accessing transaction (it would
	// observe the lock holder's intermediate state — Dice et al.'s unsafe
	// read). nil whenever no window is open, so the common policies pay
	// only a nil check per access. hazardDepth counts overlapping window
	// holders (e.g. several shard GILs held at once): the union of all
	// holders' lines is kept until the last window closes, which is
	// conservative but sound.
	hazard      map[Addr]struct{}
	hazardDepth int

	// statistics
	conflictCounts       map[string]uint64 // region label -> times a tx was doomed there
	conflictWriterCounts map[string]uint64 // subset of the above where the victim held the line dirty
	doomCount            uint64

	// Tracer, when non-nil, receives a doom event for every transaction
	// kill. The memory has no time source of its own, so Clock (typically
	// sched.Engine.Now) supplies event timestamps; without it events carry
	// time 0.
	Tracer *trace.Recorder
	Clock  func() int64

	// Chooser, when non-nil, picks the winner of each transactional
	// conflict: 0 keeps the hardware's eager requester-wins policy,
	// 1 dooms the requester instead. Installed by internal/explore.
	// Non-transactional accesses always win (strong isolation), so no
	// choice is offered there.
	Chooser choice.Chooser
}

type region struct {
	base, end Addr
	label     string
}

// NewMemory creates an empty simulated memory with the given geometry and
// capacity for nctx transactional contexts.
func NewMemory(cfg Config, nctx int) *Memory {
	if cfg.LineBytes <= 0 || cfg.LineBytes%WordBytes != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("simmem: invalid line size %d", cfg.LineBytes))
	}
	if nctx <= 0 || nctx > MaxContexts {
		panic(fmt.Sprintf("simmem: invalid context count %d", nctx))
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	m := &Memory{
		cfg:                  cfg,
		lineShift:            shift,
		wordsPerLine:         cfg.LineBytes / WordBytes,
		brk:                  Addr(cfg.LineBytes), // keep address 0 unused
		conflictCounts:       make(map[string]uint64),
		conflictWriterCounts: make(map[string]uint64),
	}
	m.txs = make([]*Tx, nctx)
	for i := range m.txs {
		m.txs[i] = &Tx{id: int32(i), mem: m, writeBuf: make(map[Addr]Word)}
	}
	return m
}

// LineBytes returns the configured cache-line size.
func (m *Memory) LineBytes() int { return m.cfg.LineBytes }

// Contexts returns the number of transactional contexts.
func (m *Memory) Contexts() int { return len(m.txs) }

// Tx returns the transactional context with the given id.
func (m *Memory) Tx(id int) *Tx { return m.txs[id] }

// Reserve carves a fresh region of the simulated address space, labels it
// for conflict attribution, and returns its base address. The region is
// line-aligned so that distinct regions never share a cache line.
func (m *Memory) Reserve(label string, bytes int) Addr {
	if bytes <= 0 {
		panic("simmem: Reserve with non-positive size")
	}
	base := m.brk
	n := Addr(bytes)
	mask := Addr(m.cfg.LineBytes - 1)
	n = (n + mask) &^ mask
	m.brk += n
	m.regions = append(m.regions, region{base: base, end: base + n, label: label})
	return base
}

// RegionLabel returns the label of the region containing addr, or "unknown".
// Reservations are handed out from a monotonically growing break, so the
// region list is sorted by base and a binary search replaces the former
// linear scan.
func (m *Memory) RegionLabel(addr Addr) string {
	// First region with base > addr; the candidate is the one before it.
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].base > addr })
	if i > 0 {
		if r := &m.regions[i-1]; addr < r.end {
			return r.label
		}
	}
	return "unknown"
}

// StartHazard opens a hazard window: until the matching EndHazard, lines
// written by non-transactional Stores doom any transaction that later
// touches them transactionally. The GIL opens a window for the duration of
// each hold when lazy-subscription elision is active (gil.GIL.HazardTrack).
// Windows nest (sharded-GIL mode can hold several lock windows at once):
// the union of all holders' lines persists until the outermost close.
func (m *Memory) StartHazard() {
	m.hazardDepth++
	if m.hazard == nil {
		m.hazard = make(map[Addr]struct{})
	}
}

// EndHazard closes one hazard window; the recorded lines are discarded only
// when the last overlapping window closes.
func (m *Memory) EndHazard() {
	if m.hazardDepth > 0 {
		m.hazardDepth--
	}
	if m.hazardDepth == 0 {
		m.hazard = nil
	}
}

// HazardActive reports whether a hazard window is open.
func (m *Memory) HazardActive() bool { return m.hazard != nil }

// ConflictCounts returns the number of conflict-induced dooms attributed to
// each region label.
func (m *Memory) ConflictCounts() map[string]uint64 { return m.conflictCounts }

// ConflictWriterCounts returns, per region label, how many of the
// conflict-induced dooms hit a transaction that held the conflicting line
// dirty (the victim was the line's writer, not just a reader).
func (m *Memory) ConflictWriterCounts() map[string]uint64 { return m.conflictWriterCounts }

// lineOf returns (creating on demand) the line containing addr.
func (m *Memory) lineOf(addr Addr) *line {
	la := addr >> m.lineShift
	if la == m.lastLA && m.lastLine != nil {
		return m.lastLine
	}
	l := m.lineAt(la)
	m.lastLA, m.lastLine = la, l
	return l
}

// lineAt returns (creating on demand) the line with line-number la.
func (m *Memory) lineAt(la Addr) *line {
	pi := int(la >> pageLineShift)
	if pi >= len(m.pages) {
		grown := make([]*page, pi+1)
		copy(grown, m.pages)
		m.pages = grown
	}
	p := m.pages[pi]
	if p == nil {
		p = newPage()
		m.pages[pi] = p
	}
	l := &p.lines[la&pageLineMask]
	if l.words == nil {
		l.words = make([]Word, m.wordsPerLine)
	}
	return l
}

// LineAddr returns the line-number (address divided by the line size) of a
// byte address. Two addresses with equal LineAddr share a cache line.
func (m *Memory) LineAddr(addr Addr) Addr { return addr >> m.lineShift }

func (m *Memory) wordIndex(addr Addr) int {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("simmem: unaligned access at %#x", uint64(addr)))
	}
	return int(addr>>3) & (m.wordsPerLine - 1)
}

// doom marks the transaction with the given id as conflict-doomed and
// records attribution for the region of addr. wasWriter records whether the
// victim held the conflicting line dirty (its write set) rather than merely
// in its read set; the split feeds the per-region writer-doom statistics and
// the doom trace event.
func (m *Memory) doom(victim int32, addr Addr, wasWriter bool) {
	tx := m.txs[victim]
	if !tx.active || tx.doomed {
		return
	}
	tx.doomed = true
	tx.doomCause = CauseConflict
	tx.doomAddr = addr
	tx.doomWasWriter = wasWriter
	m.doomCount++
	label := m.RegionLabel(addr)
	m.conflictCounts[label]++
	if wasWriter {
		m.conflictWriterCounts[label]++
	}
	m.traceDoomConflict(victim, addr, label, wasWriter)
}

// traceDoomConflict emits the doom event for a coherence conflict.
func (m *Memory) traceDoomConflict(victim int32, addr Addr, label string, wasWriter bool) {
	if m.Tracer == nil {
		return
	}
	ev := m.doomEv(victim, CauseConflict)
	if addr != 0 {
		ev.Region = label
	}
	ev.Writer = wasWriter
	m.Tracer.Emit(ev)
}

// traceDoom emits a doom event when tracing is enabled. addr 0 (never a
// valid reservation) means no implicated address is known.
func (m *Memory) traceDoom(victim int32, cause AbortCause, addr Addr) {
	if m.Tracer == nil {
		return
	}
	ev := m.doomEv(victim, cause)
	if addr != 0 {
		ev.Region = m.RegionLabel(addr)
	}
	m.Tracer.Emit(ev)
}

func (m *Memory) doomEv(victim int32, cause AbortCause) trace.Event {
	var now int64
	if m.Clock != nil {
		now = m.Clock()
	}
	ev := trace.Ev(now, trace.KindDoom)
	ev.Ctx = int(victim)
	ev.Cause = cause.String()
	return ev
}

// Load performs a direct, non-transactional read. It dooms any transaction
// holding the line dirty (a coherence read request hits tx-dirty data).
func (m *Memory) Load(addr Addr) Word {
	l := m.lineOf(addr)
	if w := l.writer; w >= 0 {
		m.doom(w, addr, true)
	}
	return l.words[m.wordIndex(addr)]
}

// Store performs a direct, non-transactional write. It dooms every
// transaction that has the line in its read or write set.
func (m *Memory) Store(addr Addr, w Word) {
	l := m.lineOf(addr)
	if wr := l.writer; wr >= 0 {
		m.doom(wr, addr, true)
	}
	if l.readers != 0 {
		m.doomReaders(l, addr, -1)
	}
	if m.hazard != nil {
		m.hazard[addr>>m.lineShift] = struct{}{}
	}
	m.version++
	l.words[m.wordIndex(addr)] = w
}

// Version returns the global commit counter: the number of times memory has
// been updated by direct Stores or committed transactions. A stable Version
// across two observations means no write was published in between.
func (m *Memory) Version() uint64 { return m.version }

// HazardHit reports whether addr's line was written non-transactionally
// inside the currently open hazard window. The OCC tier uses it to refuse
// values that may be a lock holder's intermediate state; hardware
// transactions get the same check via Tx.hazardCheck.
func (m *Memory) HazardHit(addr Addr) bool {
	if m.hazard == nil {
		return false
	}
	_, ok := m.hazard[addr>>m.lineShift]
	return ok
}

// Peek reads a word without any coherence side effects. It is intended for
// debuggers, tests and statistics, never for simulated program execution.
func (m *Memory) Peek(addr Addr) Word {
	l := m.lineOf(addr)
	return l.words[m.wordIndex(addr)]
}

// Poke writes a word without any coherence side effects (test use only).
func (m *Memory) Poke(addr Addr, w Word) {
	l := m.lineOf(addr)
	l.words[m.wordIndex(addr)] = w
}

// doomReaders dooms every reader of l except the context `except`
// (pass -1 to doom all readers).
func (m *Memory) doomReaders(l *line, addr Addr, except int32) {
	rs := l.readers
	for rs != 0 {
		id := int32(bits.TrailingZeros64(rs))
		rs &^= 1 << uint(id)
		if id != except {
			m.doom(id, addr, false)
		}
	}
}

// Tx is one transactional context: the read/write sets and the speculative
// write buffer of a single hardware thread's transaction.
type Tx struct {
	id  int32
	mem *Memory

	active        bool
	doomed        bool
	doomWasWriter bool
	doomCause     AbortCause
	doomAddr      Addr

	// last-line cache for the transactional access path (pointers into the
	// page table are stable, so the cache never needs invalidation)
	lastLA   Addr
	lastLine *line

	readLines  []Addr // line numbers newly added to the read set
	writeLines []Addr // line numbers newly added to the write set
	writeBuf   map[Addr]Word

	// Capacity limits in lines, set by the HTM layer at begin time (and
	// possibly lowered mid-transaction when an SMT sibling becomes active).
	ReadCapacity  int
	WriteCapacity int
}

// ID returns the context id of the transaction.
func (t *Tx) ID() int { return int(t.id) }

// Active reports whether a transaction is currently running in this context.
func (t *Tx) Active() bool { return t.active }

// Doomed reports whether the running transaction has been doomed and must
// abort at its next transactional instruction.
func (t *Tx) Doomed() bool { return t.doomed }

// DoomCause returns the cause recorded when the transaction was doomed.
func (t *Tx) DoomCause() AbortCause { return t.doomCause }

// DoomAddr returns the simulated address implicated in the doom, when known.
func (t *Tx) DoomAddr() Addr { return t.doomAddr }

// DoomedAsWriter reports whether the doomed transaction held the conflicting
// line in its write set (it was the line's dirty owner) rather than merely
// its read set. Only meaningful when DoomCause is CauseConflict.
func (t *Tx) DoomedAsWriter() bool { return t.doomWasWriter }

// ReadSetLines returns the current read-set size in cache lines.
func (t *Tx) ReadSetLines() int { return len(t.readLines) }

// WriteSetLines returns the current write-set size in cache lines.
func (t *Tx) WriteSetLines() int { return len(t.writeLines) }

// lineOf is the transactional-path line lookup with the per-Tx cache.
func (t *Tx) lineOf(addr Addr) *line {
	la := addr >> t.mem.lineShift
	if la == t.lastLA && t.lastLine != nil {
		return t.lastLine
	}
	l := t.mem.lineAt(la)
	t.lastLA, t.lastLine = la, l
	return l
}

// Begin starts a transaction in this context with the given capacity limits
// (in cache lines). It panics if a transaction is already active: the
// simulated machines do not support nesting beyond flattening, which the
// HTM layer implements.
func (t *Tx) Begin(readCap, writeCap int) {
	if t.active {
		panic("simmem: nested Tx.Begin")
	}
	t.active = true
	t.doomed = false
	t.doomWasWriter = false
	t.doomCause = CauseNone
	t.doomAddr = 0
	t.readLines = t.readLines[:0]
	t.writeLines = t.writeLines[:0]
	clear(t.writeBuf)
	t.ReadCapacity = readCap
	t.WriteCapacity = writeCap
}

// SelfDoom dooms the running transaction from software with the given cause
// (explicit abort, restricted operation, interrupt, learning-model abort).
func (t *Tx) SelfDoom(cause AbortCause) {
	if !t.active || t.doomed {
		return
	}
	t.doomed = true
	t.doomCause = cause
	t.mem.traceDoom(t.id, cause, 0)
}

// hazardCheck dooms the transaction when addr's line was written
// non-transactionally inside the current hazard window: without a begin-time
// lock subscription the transaction would be reading the lock holder's
// intermediate state, so the simulated hardware extension kills it with a
// conflict (attributed to addr's region like any other conflict doom).
func (t *Tx) hazardCheck(addr Addr) {
	m := t.mem
	if m.hazard == nil || t.doomed {
		return
	}
	if _, ok := m.hazard[addr>>m.lineShift]; !ok {
		return
	}
	t.doomed = true
	t.doomCause = CauseConflict
	t.doomAddr = addr
	t.doomWasWriter = false
	m.doomCount++
	label := m.RegionLabel(addr)
	m.conflictCounts[label]++
	m.traceDoomConflict(t.id, addr, label, false)
}

// Load performs a transactional read. The line joins the read set; a
// conflicting dirty line dooms its writer (requester wins). Reading beyond
// ReadCapacity dooms the transaction itself with CauseReadOverflow.
func (t *Tx) Load(addr Addr) Word {
	m := t.mem
	t.hazardCheck(addr)
	l := t.lineOf(addr)
	if w := l.writer; w >= 0 && w != t.id {
		if m.Chooser != nil && m.Chooser.Choose(choice.Conflict, 2) == 1 {
			// Explored alternative: the requester loses the conflict. It is
			// doomed without touching the line state; the value read is
			// irrelevant, the transaction rolls back at its next boundary.
			m.doom(t.id, addr, false)
			return l.words[m.wordIndex(addr)]
		}
		m.doom(w, addr, true)
	}
	bit := uint64(1) << uint(t.id)
	if l.readers&bit == 0 {
		l.readers |= bit
		t.readLines = append(t.readLines, addr>>m.lineShift)
		if len(t.readLines) > t.ReadCapacity {
			t.doomed = true
			t.doomCause = CauseReadOverflow
			t.doomAddr = addr
			m.traceDoom(t.id, CauseReadOverflow, addr)
		}
	}
	if w, ok := t.writeBuf[addr]; ok {
		return w
	}
	return l.words[m.wordIndex(addr)]
}

// Store performs a transactional write into the speculative buffer. The
// line joins the write set; conflicting readers and writers are doomed
// (requester wins). Writing beyond WriteCapacity dooms the transaction with
// CauseWriteOverflow.
func (t *Tx) Store(addr Addr, w Word) {
	m := t.mem
	t.hazardCheck(addr)
	l := t.lineOf(addr)
	if wr := l.writer; wr != t.id {
		if m.Chooser != nil && (wr >= 0 || l.readers&^(1<<uint(t.id)) != 0) &&
			m.Chooser.Choose(choice.Conflict, 2) == 1 {
			// Explored alternative: the requester loses instead of dooming
			// the holder(s); the line and write buffer stay untouched.
			m.doom(t.id, addr, false)
			return
		}
		if wr >= 0 {
			m.doom(wr, addr, true)
		}
		if l.readers&^(1<<uint(t.id)) != 0 {
			m.doomReaders(l, addr, t.id)
		}
		l.writer = t.id
		t.writeLines = append(t.writeLines, addr>>m.lineShift)
		if len(t.writeLines) > t.WriteCapacity {
			t.doomed = true
			t.doomCause = CauseWriteOverflow
			t.doomAddr = addr
			m.traceDoom(t.id, CauseWriteOverflow, addr)
		}
	}
	t.writeBuf[addr] = w
}

// Commit attempts to commit the transaction. On success the speculative
// writes are published and Commit returns true. If the transaction was
// doomed, nothing is published and Commit returns false; the caller must
// then complete the abort with Rollback.
func (t *Tx) Commit() bool {
	if !t.active {
		panic("simmem: Commit without active transaction")
	}
	if t.doomed {
		return false
	}
	m := t.mem
	if len(t.writeBuf) > 0 {
		m.version++
	}
	for addr, w := range t.writeBuf {
		l := t.lineOf(addr)
		l.words[m.wordIndex(addr)] = w
	}
	t.cleanup()
	return true
}

// Rollback discards the speculative state of a doomed (or abandoned)
// transaction and returns the abort cause.
func (t *Tx) Rollback() AbortCause {
	if !t.active {
		panic("simmem: Rollback without active transaction")
	}
	cause := t.doomCause
	if cause == CauseNone {
		cause = CauseExplicit
	}
	t.cleanup()
	return cause
}

// cleanup deregisters the transaction from every line it touched and leaves
// the context idle.
func (t *Tx) cleanup() {
	m := t.mem
	bit := uint64(1) << uint(t.id)
	for _, la := range t.readLines {
		m.lineAt(la).readers &^= bit
	}
	for _, la := range t.writeLines {
		if l := m.lineAt(la); l.writer == t.id {
			l.writer = -1
		}
	}
	t.readLines = t.readLines[:0]
	t.writeLines = t.writeLines[:0]
	clear(t.writeBuf)
	t.active = false
	t.doomed = false
	t.doomWasWriter = false
	t.doomCause = CauseNone
}
