package simmem

import "testing"

// The benchmarks model the interpreter's access mix: long runs of
// consecutive accesses within a line (the last-line cache's case) mixed
// with strides across a working set (the paged table's case).

func BenchmarkTxLoadSameLine(b *testing.B) {
	b.ReportAllocs()
	m := NewMemory(Config{LineBytes: 256}, 2)
	base := m.Reserve("data", 1<<16)
	tx := m.Tx(0)
	tx.Begin(1<<20, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Load(base + Addr(i&31)*8)
	}
}

func BenchmarkTxLoadStride(b *testing.B) {
	b.ReportAllocs()
	m := NewMemory(Config{LineBytes: 256}, 2)
	base := m.Reserve("data", 1<<20)
	tx := m.Tx(0)
	tx.Begin(1<<20, 1<<20)
	lines := (1 << 20) / 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Load(base + Addr(i%lines)*256)
	}
}

func BenchmarkTxStoreCommit(b *testing.B) {
	b.ReportAllocs()
	m := NewMemory(Config{LineBytes: 256}, 2)
	base := m.Reserve("data", 1<<16)
	tx := m.Tx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Begin(1<<20, 1<<20)
		for j := 0; j < 16; j++ {
			tx.Store(base+Addr(j)*8, Word{Bits: uint64(i)})
		}
		if !tx.Commit() {
			b.Fatal("commit failed")
		}
	}
}

func BenchmarkDirectLoadStore(b *testing.B) {
	b.ReportAllocs()
	m := NewMemory(Config{LineBytes: 256}, 2)
	base := m.Reserve("data", 1<<18)
	words := (1 << 18) / 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + Addr(i%words)*8
		m.Store(a, Word{Bits: uint64(i)})
		m.Load(a)
	}
}

func BenchmarkRegionLabel(b *testing.B) {
	m := NewMemory(Config{LineBytes: 64}, 1)
	var addrs []Addr
	for i := 0; i < 64; i++ {
		addrs = append(addrs, m.Reserve("r", 4096)+128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RegionLabel(addrs[i&63])
	}
}
