package simmem

import (
	"fmt"
	"testing"
)

// TestPagedTableSpansPages stores and reloads words across many pages,
// including page boundaries, so the paged line table and both last-line
// caches are exercised against a straight-line oracle.
func TestPagedTableSpansPages(t *testing.T) {
	m := NewMemory(Config{LineBytes: 64}, 2)
	base := m.Reserve("data", 64*pageLines*3) // three pages of lines
	// Touch every page-boundary line plus a stride through the middle.
	var addrs []Addr
	for p := 0; p < 3; p++ {
		first := base + Addr(p*pageLines*64)
		addrs = append(addrs, first, first+56, first+Addr((pageLines-1)*64))
	}
	for i := Addr(0); i < Addr(pageLines*3); i += 37 {
		addrs = append(addrs, base+i*64)
	}
	oracle := make(map[Addr]uint64)
	for i, a := range addrs {
		m.Store(a, Word{Bits: uint64(i) + 1})
		oracle[a] = uint64(i) + 1
	}
	for _, a := range addrs {
		if got := m.Load(a).Bits; got != oracle[a] {
			t.Fatalf("addr %#x = %d, want %d", uint64(a), got, oracle[a])
		}
	}
	// Line identity must be stable: the same address yields the same line
	// through both the direct and the transactional lookup path.
	tx := m.Tx(0)
	tx.Begin(1024, 1024)
	for _, a := range addrs {
		if m.lineOf(a) != tx.lineOf(a) {
			t.Fatalf("line identity differs for %#x", uint64(a))
		}
	}
	tx.Rollback()
}

// TestLastLineCacheSeesConflicts interleaves accesses from two contexts to
// the same line so any stale-cache bug would miss a doom.
func TestLastLineCacheSeesConflicts(t *testing.T) {
	m := NewMemory(Config{LineBytes: 64}, 2)
	a := m.Reserve("a", 64)
	b := m.Reserve("b", 64)
	t0, t1 := m.Tx(0), m.Tx(1)
	t0.Begin(16, 16)
	t1.Begin(16, 16)
	t0.Store(a, Word{Bits: 1}) // t0's cache now holds line a
	t1.Store(b, Word{Bits: 2}) // t1's cache now holds line b
	t1.Store(a, Word{Bits: 3}) // requester wins: t0 doomed via shared line state
	if !t0.Doomed() || t1.Doomed() {
		t.Fatalf("doomed = %v/%v, want true/false", t0.Doomed(), t1.Doomed())
	}
	if !t0.DoomedAsWriter() {
		t.Fatalf("victim held the line dirty; DoomedAsWriter = false")
	}
	t0.Rollback()
	if !t1.Commit() {
		t.Fatalf("winner failed to commit")
	}
}

// TestRegionLabelBinarySearch checks the sorted-base lookup over many
// regions, including both boundaries of each region, the unused low line,
// and addresses beyond the break.
func TestRegionLabelBinarySearch(t *testing.T) {
	m := NewMemory(Config{LineBytes: 64}, 1)
	type reg struct {
		label     string
		base, end Addr
	}
	var regs []reg
	for i := 0; i < 40; i++ {
		label := fmt.Sprintf("r%02d", i)
		bytes := 64 * (1 + i%5)
		base := m.Reserve(label, bytes)
		regs = append(regs, reg{label, base, base + Addr(bytes)})
	}
	for _, r := range regs {
		if got := m.RegionLabel(r.base); got != r.label {
			t.Fatalf("RegionLabel(base of %s) = %q", r.label, got)
		}
		if got := m.RegionLabel(r.end - WordBytes); got != r.label {
			t.Fatalf("RegionLabel(last word of %s) = %q", r.label, got)
		}
	}
	if got := m.RegionLabel(0); got != "unknown" {
		t.Fatalf("RegionLabel(0) = %q", got)
	}
	if got := m.RegionLabel(regs[len(regs)-1].end + 4096); got != "unknown" {
		t.Fatalf("RegionLabel(past brk) = %q", got)
	}
}

// TestConflictWriterAttribution checks the reader/writer doom split: a
// direct store dooms a reader (not a writer doom) and a writer (a writer
// doom), and the per-region counters record the difference.
func TestConflictWriterAttribution(t *testing.T) {
	m := NewMemory(Config{LineBytes: 64}, 3)
	addr := m.Reserve("hot", 64)

	reader, writer := m.Tx(0), m.Tx(1)
	reader.Begin(16, 16)
	writer.Begin(16, 16)
	reader.Load(addr)
	other := m.Reserve("cold", 64)
	writer.Store(other, Word{Bits: 1})

	m.Store(addr, Word{Bits: 9}) // dooms reader, as a reader
	if !reader.Doomed() || reader.DoomedAsWriter() {
		t.Fatalf("reader doom: doomed=%v asWriter=%v", reader.Doomed(), reader.DoomedAsWriter())
	}
	m.Load(other) // dooms writer, as a writer
	if !writer.Doomed() || !writer.DoomedAsWriter() {
		t.Fatalf("writer doom: doomed=%v asWriter=%v", writer.Doomed(), writer.DoomedAsWriter())
	}
	reader.Rollback()
	writer.Rollback()

	if got := m.ConflictCounts()["hot"]; got != 1 {
		t.Fatalf("hot conflicts = %d, want 1", got)
	}
	if got := m.ConflictWriterCounts()["hot"]; got != 0 {
		t.Fatalf("hot writer-conflicts = %d, want 0", got)
	}
	if got := m.ConflictWriterCounts()["cold"]; got != 1 {
		t.Fatalf("cold writer-conflicts = %d, want 1", got)
	}
	// Begin resets the per-transaction writer flag.
	writer.Begin(16, 16)
	if writer.DoomedAsWriter() {
		t.Fatalf("DoomedAsWriter survived Begin")
	}
	writer.Rollback()
}
