package simmem

import "testing"

// TestHazardWindowDoomsLazyReaders covers the lazy-subscription doom model:
// inside a hazard window, a transactional access to a line previously
// written by a non-transactional Store dooms the transaction with a
// conflict; outside the window (or on untouched lines) nothing happens.
func TestHazardWindowDoomsLazyReaders(t *testing.T) {
	m := NewMemory(Config{LineBytes: 64}, 2)
	a := m.Reserve("shared", 256)
	b := m.Reserve("other", 256)

	// Without a window, non-tx stores never doom later transactional reads.
	m.Store(a, Word{Bits: 7})
	tx := m.Tx(0)
	tx.Begin(1024, 1024)
	if tx.Load(a); tx.Doomed() {
		t.Fatalf("doomed without a hazard window")
	}
	tx.Rollback()

	// Inside a window, a line written by the (simulated) lock holder dooms
	// the transaction that touches it — read or write.
	for _, write := range []bool{false, true} {
		m.StartHazard()
		m.Store(a, Word{Bits: 8})
		tx.Begin(1024, 1024)
		if write {
			tx.Store(a, Word{Bits: 9})
		} else {
			tx.Load(a)
		}
		if !tx.Doomed() || tx.DoomCause() != CauseConflict {
			t.Fatalf("write=%v: not doomed by hazard (cause %v)", write, tx.DoomCause())
		}
		if tx.DoomAddr() != a {
			t.Fatalf("doom addr = %#x, want %#x", tx.DoomAddr(), a)
		}
		tx.Rollback()
		m.EndHazard()
	}

	// Untouched lines are safe, and the doom attributes to the region.
	m.StartHazard()
	m.Store(a, Word{Bits: 10})
	tx.Begin(1024, 1024)
	tx.Load(b)
	if tx.Doomed() {
		t.Fatalf("doomed on a line outside the hazard set")
	}
	tx.Rollback()
	if m.ConflictCounts()["shared"] != 2 {
		t.Fatalf("hazard dooms not attributed: %v", m.ConflictCounts())
	}

	// Closing the window clears the recorded lines.
	m.EndHazard()
	if m.HazardActive() {
		t.Fatalf("window still active after EndHazard")
	}
	tx.Begin(1024, 1024)
	tx.Load(a)
	if tx.Doomed() {
		t.Fatalf("doomed after the window closed")
	}
	tx.Rollback()
}
