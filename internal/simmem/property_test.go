package simmem

import (
	"fmt"
	"math/rand"
	"testing"
)

// The property tests drive random interleavings of transactional and direct
// accesses against a shadow model and check the two contracts the TLE
// protocol is built on:
//
//  1. requester wins, exactly: every conflicting access dooms precisely the
//     set of transactions whose read/write sets overlap the accessed line —
//     no survivors inside the set, no collateral dooms outside it;
//  2. committed transactions serialize: the final memory contents equal a
//     replay of the committed transactions' write sets in commit order
//     (interleaved with the direct stores), as if each had run alone.

// propLine mirrors one cache line's transactional registration.
type propLine struct {
	readers map[int]bool
	writer  int // context id, or -1
}

// propModel is the shadow state of one property-test run.
type propModel struct {
	t      *testing.T
	mem    *Memory
	nctx   int
	lines  map[Addr]*propLine // line number -> registration
	memVal map[Addr]uint64    // committed (published) value per word address
	active []bool
	doomed []bool
	wbuf   []map[Addr]uint64 // per-context speculative writes
	reads  []map[Addr]bool   // per-context line numbers read
}

func newPropModel(t *testing.T, mem *Memory, nctx int) *propModel {
	p := &propModel{
		t: t, mem: mem, nctx: nctx,
		lines:  map[Addr]*propLine{},
		memVal: map[Addr]uint64{},
		active: make([]bool, nctx),
		doomed: make([]bool, nctx),
		wbuf:   make([]map[Addr]uint64, nctx),
		reads:  make([]map[Addr]bool, nctx),
	}
	for i := 0; i < nctx; i++ {
		p.wbuf[i] = map[Addr]uint64{}
		p.reads[i] = map[Addr]bool{}
	}
	return p
}

func (p *propModel) line(la Addr) *propLine {
	l := p.lines[la]
	if l == nil {
		l = &propLine{readers: map[int]bool{}, writer: -1}
		p.lines[la] = l
	}
	return l
}

// expectDooms marks the victims of a conflicting access in the model.
func (p *propModel) doom(id int) {
	if p.active[id] && !p.doomed[id] {
		p.doomed[id] = true
	}
}

// checkDoomState compares every context's Doomed flag against the model.
// This is the "exactly the victim set" check: it fails both when a victim
// survived and when a bystander was doomed.
func (p *propModel) checkDoomState(what string) {
	p.t.Helper()
	for id := 0; id < p.nctx; id++ {
		if !p.active[id] {
			continue
		}
		got := p.mem.Tx(id).Doomed()
		if got != p.doomed[id] {
			p.t.Fatalf("%s: ctx %d doomed=%v, model says %v", what, id, got, p.doomed[id])
		}
	}
}

// txLoad models Tx.Load: the line's writer (if another context) is doomed,
// and the returned value must match own speculative buffer or memory.
func (p *propModel) txLoad(id int, addr Addr) {
	p.t.Helper()
	la := p.mem.LineAddr(addr)
	l := p.line(la)
	if l.writer >= 0 && l.writer != id {
		p.doom(l.writer)
	}
	l.readers[id] = true
	p.reads[id][la] = true
	got := p.mem.Tx(id).Load(addr).Bits
	want, inBuf := p.wbuf[id][addr]
	if !inBuf {
		want = p.memVal[addr]
	}
	if got != want {
		p.t.Fatalf("ctx %d load %#x = %d, want %d", id, uint64(addr), got, want)
	}
	p.checkDoomState(fmt.Sprintf("ctx %d load %#x", id, uint64(addr)))
}

// txStore models Tx.Store: any other writer and every other reader of the
// line is doomed; the write stays speculative.
func (p *propModel) txStore(id int, addr Addr, v uint64) {
	p.t.Helper()
	la := p.mem.LineAddr(addr)
	l := p.line(la)
	if l.writer != id {
		if l.writer >= 0 {
			p.doom(l.writer)
		}
		for r := range l.readers {
			if r != id {
				p.doom(r)
			}
		}
		l.writer = id
	}
	p.wbuf[id][addr] = v
	p.mem.Tx(id).Store(addr, Word{Bits: v})
	if p.mem.Peek(addr).Bits == v && p.memVal[addr] != v {
		p.t.Fatalf("ctx %d store %#x published before commit", id, uint64(addr))
	}
	p.checkDoomState(fmt.Sprintf("ctx %d store %#x", id, uint64(addr)))
}

// directStore models Memory.Store: the writer and all readers of the line
// are doomed and the value publishes immediately.
func (p *propModel) directStore(addr Addr, v uint64) {
	p.t.Helper()
	la := p.mem.LineAddr(addr)
	l := p.line(la)
	if l.writer >= 0 {
		p.doom(l.writer)
	}
	for r := range l.readers {
		p.doom(r)
	}
	p.memVal[addr] = v
	p.mem.Store(addr, Word{Bits: v})
	p.checkDoomState(fmt.Sprintf("direct store %#x", uint64(addr)))
}

// finish commits or rolls back context id, releasing its line registrations
// from the model. Commit publishes the speculative buffer into memVal; the
// serialization property is that this replay matches simulated memory.
func (p *propModel) finish(id int) {
	p.t.Helper()
	tx := p.mem.Tx(id)
	la := func() {
		for lnum := range p.reads[id] {
			delete(p.line(lnum).readers, id)
		}
		for lnum, l := range p.lines {
			_ = lnum
			if l.writer == id {
				l.writer = -1
			}
		}
		p.reads[id] = map[Addr]bool{}
		p.wbuf[id] = map[Addr]uint64{}
		p.active[id] = false
		p.doomed[id] = false
	}
	if p.doomed[id] {
		if tx.Commit() {
			p.t.Fatalf("ctx %d committed while doomed", id)
		}
		cause := tx.Rollback()
		if cause != CauseConflict {
			p.t.Fatalf("ctx %d rollback cause = %v, want conflict", id, cause)
		}
		// Aborted writes must not have been published.
		for addr := range p.wbuf[id] {
			if got := p.mem.Peek(addr).Bits; got != p.memVal[addr] {
				p.t.Fatalf("aborted ctx %d leaked %#x: mem=%d model=%d", id, uint64(addr), got, p.memVal[addr])
			}
		}
		la()
		return
	}
	if !tx.Commit() {
		p.t.Fatalf("ctx %d failed to commit while clean (cause %v)", id, tx.DoomCause())
	}
	for addr, v := range p.wbuf[id] {
		p.memVal[addr] = v
		if got := p.mem.Peek(addr).Bits; got != v {
			p.t.Fatalf("ctx %d commit lost %#x: mem=%d want %d", id, uint64(addr), got, v)
		}
	}
	la()
}

// TestPropertyRequesterWinsAndSerialization runs randomized interleavings
// under several seeds. Capacities are large so conflicts are the only doom
// source, which is what the model tracks.
func TestPropertyRequesterWinsAndSerialization(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 99991} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nctx = 6
			mem := NewMemory(Config{LineBytes: 64}, nctx)
			base := mem.Reserve("data", 16*64) // 16 lines of contention
			p := newPropModel(t, mem, nctx)

			addrAt := func() Addr {
				// 16 lines x 8 words: enough aliasing for both same-line
				// (false sharing) and cross-line access patterns.
				return base + Addr(rng.Intn(16*8))*WordBytes
			}
			for round := 0; round < 40; round++ {
				for id := 0; id < nctx; id++ {
					p.active[id] = true
					mem.Tx(id).Begin(1024, 1024)
				}
				for op := 0; op < 120; op++ {
					id := rng.Intn(nctx)
					if !p.active[id] {
						continue
					}
					if p.doomed[id] {
						// Doomed transactions abort at the next boundary,
						// like the interpreter does.
						p.finish(id)
						continue
					}
					switch rng.Intn(10) {
					case 0: // strong isolation: direct store from outside
						p.directStore(addrAt(), uint64(rng.Int63()))
					case 1, 2, 3, 4:
						p.txLoad(id, addrAt())
					default:
						p.txStore(id, addrAt(), uint64(rng.Int63()))
					}
				}
				for id := 0; id < nctx; id++ {
					if p.active[id] {
						p.finish(id)
					}
				}
				// Serialization: memory equals the model replay of the
				// committed transactions and direct stores.
				for addr, want := range p.memVal {
					if got := mem.Peek(addr).Bits; got != want {
						t.Fatalf("round %d: mem[%#x]=%d, replay says %d", round, uint64(addr), got, want)
					}
				}
			}
		})
	}
}

// TestPropertyOverflowDooms checks that the capacity limits doom the
// transaction itself (not its neighbours) with the right persistent cause.
func TestPropertyOverflowDooms(t *testing.T) {
	mem := NewMemory(Config{LineBytes: 64}, 2)
	base := mem.Reserve("data", 64*64)

	tx := mem.Tx(0)
	tx.Begin(4, 4)
	for i := 0; i < 5; i++ {
		tx.Load(base + Addr(i*64))
	}
	if !tx.Doomed() || tx.DoomCause() != CauseReadOverflow {
		t.Fatalf("read overflow not detected: doomed=%v cause=%v", tx.Doomed(), tx.DoomCause())
	}
	if tx.Commit() {
		t.Fatal("overflowed transaction committed")
	}
	tx.Rollback()

	tx.Begin(64, 3)
	for i := 0; i < 4; i++ {
		tx.Store(base+Addr(i*64), Word{Bits: 1})
	}
	if !tx.Doomed() || tx.DoomCause() != CauseWriteOverflow {
		t.Fatalf("write overflow not detected: doomed=%v cause=%v", tx.Doomed(), tx.DoomCause())
	}
	other := mem.Tx(1)
	other.Begin(8, 8)
	other.Load(base + Addr(40*64))
	if other.Doomed() {
		t.Fatal("bystander doomed by neighbour's overflow")
	}
	tx.Rollback()
	other.Rollback()
}
