package vm

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
)

// runSrc executes a program and returns its output.
func runSrc(t *testing.T, mode Mode, src string) (*RunResult, *VM) {
	t.Helper()
	opt := DefaultOptions(htm.ZEC12(), mode)
	opt.HeapSlots = 50_000
	opt.MaxCycles = 10_000_000_000
	v := New(opt)
	iseq, err := v.CompileSource(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := v.Run(iseq)
	if err != nil {
		t.Fatalf("run (%v): %v\noutput so far: %s", mode, err, v.Output())
	}
	return res, v
}

func expectOut(t *testing.T, mode Mode, src, want string) {
	t.Helper()
	res, _ := runSrc(t, mode, src)
	if res.Output != want {
		t.Fatalf("mode %v: output = %q, want %q", mode, res.Output, want)
	}
}

var allModes = []Mode{ModeGIL, ModeHTM, ModeFGL, ModeIdeal}

func TestHelloWorld(t *testing.T) {
	for _, m := range allModes {
		expectOut(t, m, `puts "hello, world"`, "hello, world\n")
	}
}

func TestArithmeticAndLocals(t *testing.T) {
	src := `
x = 10
y = 3
puts x + y
puts x - y
puts x * y
puts x / y
puts x % y
puts x < y
puts x >= y
puts(-x)
`
	expectOut(t, ModeGIL, src, "13\n7\n30\n3\n1\nfalse\ntrue\n-10\n")
}

func TestFloatArithmetic(t *testing.T) {
	src := `
a = 1.5
b = 2.25
c = a * b + 0.5
puts c
puts c > 3.8
puts Math.sqrt(16.0)
puts((1.0 / 0.5).to_i)
`
	expectOut(t, ModeGIL, src, "3.875\ntrue\n4.0\n2\n")
}

func TestStringsAndInterpolation(t *testing.T) {
	src := `
name = "world"
s = "hello, #{name}! #{1 + 2}"
puts s
puts s.length
puts s.include?("world")
puts "a,b,c".split(",").join("-")
puts "  pad  ".strip
`
	expectOut(t, ModeGIL, src, "hello, world! 3\n15\ntrue\na-b-c\npad\n")
}

func TestWhileLoopAndConditionals(t *testing.T) {
	src := `
i = 0
total = 0
while i < 10
  if i % 2 == 0
    total += i
  else
    total += 1
  end
  i += 1
end
puts total
`
	expectOut(t, ModeGIL, src, "25\n")
}

func TestPaperWhileBenchmarkSemantics(t *testing.T) {
	// Figure 4 While workload must compute sum(1..n).
	src := `
def workload(numIter)
  x = 0
  i = 1
  while i <= numIter
    x += i
    i += 1
  end
  x
end
puts workload(100)
`
	for _, m := range allModes {
		expectOut(t, m, src, "5050\n")
	}
}

func TestPaperIteratorBenchmarkSemantics(t *testing.T) {
	src := `
def workload(numIter)
  x = 0
  (1..numIter).each do |i|
    x += i
  end
  x
end
puts workload(100)
`
	for _, m := range allModes {
		expectOut(t, m, src, "5050\n")
	}
}

func TestMethodsAndRecursion(t *testing.T) {
	src := `
def fib(n)
  if n < 2
    n
  else
    fib(n - 1) + fib(n - 2)
  end
end
puts fib(15)
`
	expectOut(t, ModeGIL, src, "610\n")
}

func TestClassesIvarsAndAccessors(t *testing.T) {
	src := `
class Point
  attr_accessor :x, :y
  def initialize(x, y)
    @x = x
    @y = y
  end
  def dist2(o)
    dx = @x - o.x
    dy = @y - o.y
    dx * dx + dy * dy
  end
end
a = Point.new(1, 2)
b = Point.new(4, 6)
puts a.dist2(b)
a.x = 10
puts a.x
puts a.class.name
`
	for _, m := range allModes {
		expectOut(t, m, src, "25\n10\nPoint\n")
	}
}

func TestInheritanceAndSuperclassMethods(t *testing.T) {
	src := `
class Animal
  def speak
    "..."
  end
  def describe
    "I say #{speak}"
  end
end
class Dog < Animal
  def speak
    "woof"
  end
end
puts Dog.new.describe
puts Animal.new.describe
`
	expectOut(t, ModeGIL, src, "I say woof\nI say ...\n")
}

func TestArraysAndHashes(t *testing.T) {
	src := `
a = [1, 2, 3]
a << 4
a.push(5)
puts a.length
puts a[0] + a[-1]
puts a.sum
a[10] = 99
puts a.length
puts a[7].nil?

h = {"one" => 1, :two => 2}
h["three"] = 3
puts h.size
puts h["one"] + h[:two] + h["three"]
puts h["missing"].nil?
keys = h.keys
puts keys.length
`
	expectOut(t, ModeGIL, src, "5\n6\n15\n11\ntrue\n3\n6\ntrue\n3\n")
}

func TestHashGrowth(t *testing.T) {
	src := `
h = {}
i = 0
while i < 200
  h[i] = i * 2
  i += 1
end
puts h.size
puts h[77]
puts h[199]
`
	expectOut(t, ModeGIL, src, "200\n154\n398\n")
}

func TestBlocksClosuresAndCaptures(t *testing.T) {
	src := `
total = 0
[1, 2, 3].each do |x|
  total += x * 10
end
puts total
sq = [1, 2, 3].map do |x|
  x * x
end
puts sq.join(",")
3.times do |i|
  total += i
end
puts total
`
	expectOut(t, ModeGIL, src, "60\n1,4,9\n63\n")
}

func TestYieldWithMultipleArgs(t *testing.T) {
	src := `
def pairs
  i = 0
  while i < 3
    yield i, i * i
    i += 1
  end
end
pairs do |a, b|
  puts "#{a}:#{b}"
end
`
	expectOut(t, ModeGIL, src, "0:0\n1:1\n2:4\n")
}

func TestGlobalsAndConstantsAndCvars(t *testing.T) {
	src := `
$counter = 5
LIMIT = 10
class Counter
  @@instances = 0
  def initialize
    @@instances += 1
  end
  def self_count
    @@instances
  end
end
Counter.new
c = Counter.new
puts c.self_count
$counter += LIMIT
puts $counter
`
	expectOut(t, ModeGIL, src, "2\n15\n")
}

func TestThreadsJoinAndResult(t *testing.T) {
	src := `
threads = []
results = Array.new(4, 0)
i = 0
while i < 4
  threads << Thread.new(i) do |me|
    x = 0
    j = 1
    while j <= 1000
      x += j
      j += 1
    end
    results[me] = x + me
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts results.join(",")
`
	want := "500500,500501,500502,500503\n"
	for _, m := range allModes {
		expectOut(t, m, src, want)
	}
}

func TestMutexProtectsSharedCounter(t *testing.T) {
	src := `
m = Mutex.new
counter = 0
threads = []
i = 0
while i < 4
  threads << Thread.new do
    j = 0
    while j < 500
      m.synchronize do
        counter += 1
      end
      j += 1
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts counter
`
	for _, m := range allModes {
		expectOut(t, m, src, "2000\n")
	}
}

func TestUnsynchronizedCounterBehaviour(t *testing.T) {
	// Without a Mutex, `counter += 1` on a captured local is a read-modify-
	// write spanning several bytecodes. Under the GIL with CRuby's original
	// yield points (back-edges and exits only) it is never torn, so the
	// result is exact. Under HTM with the paper's extended yield points a
	// transaction may end between the read and the write — Section 4.2
	// notes exactly this behaviour change for incorrectly synchronized
	// programs — so updates may be lost, but never invented.
	src := `
counter = 0
threads = []
i = 0
while i < 8
  threads << Thread.new do
    j = 0
    while j < 300
      counter += 1
      j += 1
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts counter
`
	expectOut(t, ModeGIL, src, "2400\n")
	res, _ := runSrc(t, ModeHTM, src)
	got := strings.TrimSpace(res.Output)
	n := 0
	for i := 0; i < len(got); i++ {
		n = n*10 + int(got[i]-'0')
	}
	if n <= 0 || n > 2400 {
		t.Fatalf("HTM unsynchronized counter = %d, want (0, 2400]", n)
	}
}

func TestBarrierFromPrelude(t *testing.T) {
	src := `
b = Barrier.new(3)
log = Array.new(3, 0)
phase2 = Array.new(3, 0)
threads = []
i = 0
while i < 3
  threads << Thread.new(i) do |me|
    log[me] = 1
    b.wait
    s = 0
    k = 0
    while k < 3
      s += log[k]
      k += 1
    end
    phase2[me] = s
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts phase2.join(",")
`
	// Every thread must observe all pre-barrier writes: 3,3,3.
	for _, m := range allModes {
		expectOut(t, m, src, "3,3,3\n")
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	src := `
i = 0
while i < 30000
  s = [i, i + 1, i + 2]
  i += 1
end
puts "done"
`
	opt := DefaultOptions(htm.ZEC12(), ModeGIL)
	opt.HeapSlots = 2_000 // force collections
	v := New(opt)
	iseq, err := v.CompileSource(src, "gc-test")
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run(iseq)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output != "done\n" {
		t.Fatalf("output = %q", res.Output)
	}
	if v.Heap.Stats.GCs == 0 {
		t.Fatalf("no GC ran with a tiny heap")
	}
}

func TestGCUnderHTMAndFGL(t *testing.T) {
	src := `
total = 0
m = Mutex.new
threads = []
i = 0
while i < 4
  threads << Thread.new do
    j = 0
    local = 0
    while j < 3000
      a = [j, j * 2]
      local += a[1]
      j += 1
    end
    m.synchronize do
      total += local
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts total
`
	want := "35988000\n"
	for _, m := range []Mode{ModeHTM, ModeFGL, ModeIdeal} {
		opt := DefaultOptions(htm.ZEC12(), m)
		opt.HeapSlots = 3_000
		v := New(opt)
		iseq, err := v.CompileSource(src, "gc-mt")
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Run(iseq)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		if res.Output != want {
			t.Fatalf("mode %v: output = %q want %q", m, res.Output, want)
		}
		if v.Heap.Stats.GCs == 0 {
			t.Fatalf("mode %v: no GC with tiny heap", m)
		}
	}
}

func TestRuntimeErrorsSurface(t *testing.T) {
	cases := []string{
		`nosuchmethod(1)`,
		`x = 1 / 0`,
		`y = nil
y.foo`,
	}
	for _, src := range cases {
		opt := DefaultOptions(htm.ZEC12(), ModeGIL)
		v := New(opt)
		iseq, err := v.CompileSource(src, "err")
		if err != nil {
			continue // compile-time failure is fine too
		}
		if _, err := v.Run(iseq); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	src := `
total = 0
threads = []
i = 0
while i < 6
  threads << Thread.new do
    j = 0
    while j < 400
      total += j
      j += 1
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts total
`
	for _, m := range []Mode{ModeGIL, ModeHTM} {
		r1, _ := runSrc(t, m, src)
		r2, _ := runSrc(t, m, src)
		if r1.Cycles != r2.Cycles || r1.Output != r2.Output {
			t.Fatalf("mode %v: nondeterministic (%d/%q vs %d/%q)", m, r1.Cycles, r1.Output, r2.Cycles, r2.Output)
		}
	}
}

func TestHTMActuallyCommitsTransactions(t *testing.T) {
	src := `
threads = []
i = 0
while i < 4
  threads << Thread.new do
    x = 0
    j = 0
    while j < 2000
      x += j
      j += 1
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts "ok"
`
	res, _ := runSrc(t, ModeHTM, src)
	if res.Stats.HTM == nil || res.Stats.HTM.Commits == 0 {
		t.Fatalf("no transactions committed: %+v", res.Stats.HTM)
	}
	if strings.TrimSpace(res.Output) != "ok" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestHTMFasterThanGILOnParallelWorkload(t *testing.T) {
	src := `
threads = []
i = 0
while i < 8
  threads << Thread.new do
    x = 0
    j = 0
    while j < 4000
      x += j
      j += 1
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
`
	rg, _ := runSrc(t, ModeGIL, src)
	rh, _ := runSrc(t, ModeHTM, src)
	speedup := float64(rg.Cycles) / float64(rh.Cycles)
	if speedup < 2.0 {
		t.Fatalf("HTM speedup over GIL = %.2f, want >= 2 (gil=%d htm=%d)", speedup, rg.Cycles, rh.Cycles)
	}
}

func TestPreludeLibrary(t *testing.T) {
	src := `
a = [5, 1, 4, 2, 3]
puts a.sort.join(",")
puts a.reverse.join(",")
puts a.min
puts a.max
puts a.select { |x| x % 2 == 0 }.join(",")
puts 12.gcd(18)
puts a.count
`
	expectOut(t, ModeGIL, src, "1,2,3,4,5\n3,2,4,1,5\n1\n5\n4,2\n6\n5\n")
}
