package vm

import (
	"fmt"
	"strconv"
	"strings"

	"htmgil/internal/compile"
	"htmgil/internal/object"
	"htmgil/internal/occ"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// dispatch executes the instruction at the top frame's pc.
func (t *RThread) dispatch(now int64) sched.StepResult {
	v := t.vm
	c := &v.Costs
	f := &t.frames[len(t.frames)-1]
	in := &f.iseq.Code[f.pc]
	cycles := c.DispatchBase + c.opBaseCost(in.Op)
	t.stats.Bytecodes++
	// Objects allocated by the previous instruction are reachable from
	// program state now; release the temporary pins.
	if len(t.tempRoots) > 0 {
		t.tempRoots = t.tempRoots[:0]
	}

	if in.YP >= 0 && t.yieldEnabled(in.YPKind) {
		cycles += c.YieldCheck
		if t.skipYieldOnce {
			t.skipYieldOnce = false
		} else if r := t.atYieldPoint(in, now); r != nil {
			r.Cycles += cycles
			return *r
		}
	}

	extra, err := t.execGuarded(f, in, now)
	cycles += extra
	switch err {
	case nil:
	case errRedo:
		// pc untouched; the doom check at the next step aborts and retries.
		t.chargeExec(cycles)
		return sched.StepResult{Cycles: cycles, Status: sched.Running}
	case ErrBlocked:
		t.chargeExec(cycles)
		return t.blockForNative(now, cycles)
	case errGCWait:
		// Parked for a safepoint collection; re-execute on wake.
		t.chargeExec(cycles)
		t.park(CatIOWait, rsDispatch)
		return sched.StepResult{Cycles: cycles, Status: sched.Blocked}
	default:
		if (t.inTx() && t.hctx.Tx.Doomed()) || (t.inSTx() && t.tle.OCC.Doomed()) {
			// Sandboxing: a doomed transaction may have executed on
			// inconsistent reads — e.g. a lazy-subscription transaction
			// racing the GIL holder through a half-filled inline cache —
			// and its misbehaviour is architecturally squashed by the
			// abort. Re-execution from the checkpoint sees sane state; a
			// genuine program error recurs there and fails the VM then.
			t.chargeExec(cycles)
			res := t.doAbort(now + cycles)
			res.Cycles += cycles
			return res
		}
		v.fail(fmt.Errorf("%s:%d: %w", f.iseq.Name, in.Line, err))
		return sched.StepResult{Cycles: cycles, Status: sched.Done}
	}
	t.chargeExec(cycles)
	if t.pendingGC > 0 {
		cycles += t.pendingGC
		t.pendingGC = 0
	}
	if t.resume == rsFinish && t.sth != nil {
		res := t.finishThread(now + cycles)
		res.Cycles += cycles
		return res
	}
	return sched.StepResult{Cycles: cycles, Status: sched.Running}
}

// execGuarded runs one instruction, converting the software tier's
// doom-on-inconsistent-read panic (occ.ErrDoomed) into errRedo: the
// transaction is already doomed, so the doom check at the next step rolls
// everything — operand stack, locals, frames, pc — back to the checkpoint
// and retries. The partial instruction's speculative writes were buffered
// in the write log and its private-state mutations are in the undo log, so
// unwinding mid-instruction leaves no residue.
func (t *RThread) execGuarded(f *Frame, in *compile.Instr, now int64) (cycles int64, err error) {
	if t.inSTx() {
		defer func() {
			if r := recover(); r != nil {
				if r == occ.ErrDoomed {
					err = errRedo
					return
				}
				panic(r)
			}
		}()
	}
	return t.exec(f, in, now)
}

// blockForNative parks the thread after a native returned ErrBlocked,
// releasing the GIL around the wait as CRuby does for blocking operations.
func (t *RThread) blockForNative(now int64, sofar int64) sched.StepResult {
	v := t.vm
	switch v.Opt.Mode {
	case ModeHTM:
		if t.tle.GILMode {
			v.Elision.ReleaseLock(t.tle, t.sth, now+sofar)
			t.tle.GILMode = false
		}
		t.park(CatIOWait, rsReacquireGIL)
	case ModeGIL:
		if t.holdingGIL {
			v.GIL.Release(t.sth, now+sofar)
			t.holdingGIL = false
		}
		t.park(CatIOWait, rsReacquireGIL)
	default:
		t.park(CatIOWait, rsNativeRetry)
	}
	return sched.StepResult{Cycles: sofar, Status: sched.Blocked}
}

// exec executes one instruction. Handlers advance pc themselves. The frame
// pointer f is invalid after any operation that grows t.frames.
func (t *RThread) exec(f *Frame, in *compile.Instr, now int64) (int64, error) {
	v := t.vm
	c := &v.Costs
	switch in.Op {
	case compile.OpNop:
		f.pc++
		return 0, nil
	case compile.OpPutNil:
		t.push(object.Nil)
		f.pc++
	case compile.OpPutTrue:
		t.push(object.True)
		f.pc++
	case compile.OpPutFalse:
		t.push(object.False)
		f.pc++
	case compile.OpPutSelf:
		t.push(f.self)
		f.pc++
	case compile.OpPutInt:
		t.push(object.FixVal(in.Imm))
		f.pc++
	case compile.OpPutFloat:
		t.push(v.floats[f.iseq][in.A])
		f.pc++
	case compile.OpPutSym:
		t.push(object.SymVal(object.SymID(in.A)))
		f.pc++
	case compile.OpPutStr:
		o, cost, err := t.allocString(f.iseq.Strings[in.A])
		if err != nil {
			return cost, err
		}
		t.push(object.RefVal(o))
		f.pc++
		return cost, nil
	case compile.OpStrCat:
		n := int(in.A)
		var sb strings.Builder
		var cost int64
		parts := make([]string, n)
		for i := n - 1; i >= 0; i-- {
			s, cs := t.toS(t.pop())
			cost += cs
			parts[i] = s
		}
		for _, p := range parts {
			sb.WriteString(p)
		}
		o, ac, err := t.allocString(sb.String())
		cost += ac
		if err != nil {
			return cost, err
		}
		t.push(object.RefVal(o))
		f.pc++
		return cost, nil
	case compile.OpGetLocal:
		val, cost, err := t.getLocal(f, in.A, in.B)
		if err != nil {
			return cost, err
		}
		t.push(val)
		f.pc++
		return cost, nil
	case compile.OpSetLocal:
		val := t.pop()
		cost, err := t.setLocal(f, in.A, in.B, val)
		if err != nil {
			return cost, err
		}
		f.pc++
		return cost, nil
	case compile.OpGetIvar:
		val, cost, err := t.getIvar(f, object.SymID(in.A), in.B)
		if err != nil {
			return cost, err
		}
		t.push(val)
		f.pc++
		return cost, nil
	case compile.OpSetIvar:
		val := t.pop()
		cost, err := t.setIvar(f, object.SymID(in.A), in.B, val)
		if err != nil {
			return cost, err
		}
		f.pc++
		return cost, nil
	case compile.OpGetCvar:
		val, cost, err := t.getCvar(f, object.SymID(in.A))
		if err != nil {
			return cost, err
		}
		t.push(val)
		f.pc++
		return cost, nil
	case compile.OpSetCvar:
		val := t.pop()
		cost, err := t.setCvar(f, object.SymID(in.A), val)
		if err != nil {
			return cost, err
		}
		f.pc++
		return cost, nil
	case compile.OpGetGlobal:
		addr := v.globalAddr(object.SymID(in.A))
		t.push(object.FromWord(t.acc.Load(addr)))
		f.pc++
		return c.LocalEnv, nil
	case compile.OpSetGlobal:
		addr := v.globalAddr(object.SymID(in.A))
		t.acc.Store(addr, t.pop().Word())
		f.pc++
		return c.LocalEnv, nil
	case compile.OpGetConst:
		val, ok := v.consts[object.SymID(in.A)]
		if !ok {
			return 0, fmt.Errorf("uninitialized constant %s", v.Syms.Name(object.SymID(in.A)))
		}
		t.push(val)
		f.pc++
		return c.LocalGo, nil
	case compile.OpSetConst:
		if t.inAnyTx() {
			t.restrictedOp()
			return 0, errRedo
		}
		v.consts[object.SymID(in.A)] = t.pop()
		f.pc++
		return c.LocalGo, nil
	case compile.OpNewArray:
		n := int(in.A)
		o, cost, err := t.allocArray(n)
		if err != nil {
			return cost, err
		}
		base := simmem.Addr(t.acc.Load(o.AddrOf(object.SlotA)).Bits)
		for i := n - 1; i >= 0; i-- {
			t.acc.Store(base+simmem.Addr(i*simmem.WordBytes), t.pop().Word())
		}
		t.acc.Store(o.AddrOf(object.SlotB), simmem.Word{Bits: uint64(n)})
		t.push(object.RefVal(o))
		f.pc++
		return cost + int64(n)*4, nil
	case compile.OpNewHash:
		n := int(in.A)
		o, cost, err := t.allocHash(n * 2)
		if err != nil {
			return cost, err
		}
		// Pairs are on the stack in order; insert from the bottom.
		basePairs := t.sp - int32(n*2)
		for i := 0; i < n; i++ {
			key := t.stack[basePairs+int32(i*2)]
			val := t.stack[basePairs+int32(i*2)+1]
			hc, err := t.hashSet(o, key, val)
			cost += hc
			if err != nil {
				return cost, err
			}
		}
		t.sp = basePairs
		t.push(object.RefVal(o))
		f.pc++
		return cost, nil
	case compile.OpNewRange:
		hi := t.pop()
		lo := t.pop()
		o, err := t.allocObject(object.TRange, v.typeClass[object.TRange])
		if err != nil {
			return c.Alloc, err
		}
		t.acc.Store(o.AddrOf(object.SlotA), lo.Word())
		t.acc.Store(o.AddrOf(object.SlotB), hi.Word())
		t.acc.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: uint64(in.A)})
		t.push(object.RefVal(o))
		f.pc++
		return c.Alloc, nil
	case compile.OpPop:
		t.pop()
		f.pc++
	case compile.OpDup:
		t.push(t.peek(0))
		f.pc++
	case compile.OpJump:
		f.pc = in.A
	case compile.OpBranchIf:
		if t.pop().Truthy() {
			f.pc = in.A
		} else {
			f.pc++
		}
	case compile.OpBranchUnless:
		if !t.pop().Truthy() {
			f.pc = in.A
		} else {
			f.pc++
		}
	case compile.OpOptNot:
		val := t.pop()
		t.push(object.BoolVal(!val.Truthy()))
		f.pc++
		return c.FixnumOp, nil
	case compile.OpOptNeg:
		return t.execNeg(f)
	case compile.OpOptPlus, compile.OpOptMinus, compile.OpOptMult, compile.OpOptDiv,
		compile.OpOptMod, compile.OpOptEq, compile.OpOptNeq, compile.OpOptLt,
		compile.OpOptLe, compile.OpOptGt, compile.OpOptGe:
		return t.execBinop(f, in, now)
	case compile.OpOptLtLt:
		return t.execShovel(f, in, now)
	case compile.OpOptAref:
		return t.execAref(f, in, now)
	case compile.OpOptAset:
		return t.execAset(f, in, now)
	case compile.OpSend:
		return t.doSend(f, in, now)
	case compile.OpInvokeBlock:
		return t.doInvokeBlock(f, in, now)
	case compile.OpLeave:
		val := t.pop()
		if f.retOverride != nil {
			val = *f.retOverride
		}
		t.sp = f.base
		if len(t.frames) == 1 {
			t.result = val
			t.popFrame()
			t.resume = rsFinish
			return 0, nil
		}
		t.popFrame()
		t.push(val)
	case compile.OpDefineMethod:
		if t.inAnyTx() {
			t.restrictedOp()
			return 0, errRedo
		}
		cls := v.defTarget(f.self)
		child := f.iseq.Children[in.C]
		cls.Define(object.SymID(in.A), &object.Method{
			Name:  object.SymID(in.A),
			Arity: child.Params,
			Code:  child,
		})
		// Bump the VM-wide method state: inline caches filled under the old
		// serial must miss, or a redefined method would keep dispatching
		// its stale body through warm call sites.
		v.methodSerial++
		f.pc++
		return c.HashOp, nil
	case compile.OpDefineClass:
		if t.inAnyTx() {
			t.restrictedOp()
			return 0, errRedo
		}
		var super *object.RClass
		if in.B >= 0 {
			sv, ok := v.consts[object.SymID(in.B)]
			if !ok || sv.Kind != object.KRef || sv.Ref.Type != object.TClass {
				return 0, fmt.Errorf("undefined superclass %s", v.Syms.Name(object.SymID(in.B)))
			}
			super = sv.Ref.Cls
		}
		cls := v.DefineClass(v.Syms.Name(object.SymID(in.A)), super)
		child := f.iseq.Children[in.C]
		f.pc++
		if err := t.pushFrame(child, object.RefVal(cls.Obj), object.Nil, BlockArg{}, nil, now); err != nil {
			f.pc--
			return 0, err
		}
		return c.SendBase, nil
	default:
		return 0, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return 0, nil
}

// rsFinish marks a thread whose last frame returned.
const rsFinish resumeKind = 200

// defTarget returns the class a `def` inside self's context targets.
func (v *VM) defTarget(self object.Value) *object.RClass {
	if self.Kind == object.KRef && self.Ref.Type == object.TClass {
		return self.Ref.Cls
	}
	return v.ObjectClass
}

// ---------------------------------------------------------------------------
// Numeric and polymorphic operators.

func (t *RThread) floatOf(val object.Value) (float64, bool) {
	switch val.Kind {
	case object.KFixnum:
		return float64(val.Fix), true
	case object.KRef:
		if val.Ref.Type == object.TFloat {
			return floatFromBits(t.acc.Load(val.Ref.AddrOf(object.SlotA)).Bits), true
		}
	}
	return 0, false
}

func (t *RThread) isFloat(val object.Value) bool {
	return val.Kind == object.KRef && val.Ref.Type == object.TFloat
}

// allocFloat boxes a float (the allocation traffic central to the paper's
// NPB results: CRuby 1.9 heap-allocates every Float result).
func (t *RThread) allocFloat(fl float64) (object.Value, int64, error) {
	o, err := t.allocObject(object.TFloat, t.vm.typeClass[object.TFloat])
	if err != nil {
		return object.Nil, t.vm.Costs.Alloc, err
	}
	t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: floatBits(fl)})
	return object.RefVal(o), t.vm.Costs.Alloc + t.vm.Costs.FloatOp, nil
}

func (t *RThread) execNeg(f *Frame) (int64, error) {
	val := t.peek(0)
	switch {
	case val.Kind == object.KFixnum:
		t.pop()
		t.push(object.FixVal(-val.Fix))
		f.pc++
		return t.vm.Costs.FixnumOp, nil
	case t.isFloat(val):
		fl, _ := t.floatOf(val)
		t.pop()
		res, cost, err := t.allocFloat(-fl)
		if err != nil {
			return cost, err
		}
		t.push(res)
		f.pc++
		return cost, nil
	default:
		return 0, fmt.Errorf("cannot negate %s", t.typeName(val))
	}
}

func (t *RThread) execBinop(f *Frame, in *compile.Instr, now int64) (int64, error) {
	c := &t.vm.Costs
	b := t.peek(0)
	a := t.peek(1)
	// Fixnum fast path.
	if a.Kind == object.KFixnum && b.Kind == object.KFixnum {
		var res object.Value
		switch in.Op {
		case compile.OpOptPlus:
			res = object.FixVal(a.Fix + b.Fix)
		case compile.OpOptMinus:
			res = object.FixVal(a.Fix - b.Fix)
		case compile.OpOptMult:
			res = object.FixVal(a.Fix * b.Fix)
		case compile.OpOptDiv:
			if b.Fix == 0 {
				return 0, fmt.Errorf("divided by 0")
			}
			res = object.FixVal(floorDiv(a.Fix, b.Fix))
		case compile.OpOptMod:
			if b.Fix == 0 {
				return 0, fmt.Errorf("divided by 0")
			}
			res = object.FixVal(floorMod(a.Fix, b.Fix))
		case compile.OpOptEq:
			res = object.BoolVal(a.Fix == b.Fix)
		case compile.OpOptNeq:
			res = object.BoolVal(a.Fix != b.Fix)
		case compile.OpOptLt:
			res = object.BoolVal(a.Fix < b.Fix)
		case compile.OpOptLe:
			res = object.BoolVal(a.Fix <= b.Fix)
		case compile.OpOptGt:
			res = object.BoolVal(a.Fix > b.Fix)
		case compile.OpOptGe:
			res = object.BoolVal(a.Fix >= b.Fix)
		}
		t.pop()
		t.pop()
		t.push(res)
		f.pc++
		return c.FixnumOp, nil
	}
	// Float path (with Fixnum coercion).
	if t.isFloat(a) || t.isFloat(b) {
		af, aok := t.floatOf(a)
		bf, bok := t.floatOf(b)
		if aok && bok {
			var boolRes object.Value
			isBool := true
			switch in.Op {
			case compile.OpOptEq:
				boolRes = object.BoolVal(af == bf)
			case compile.OpOptNeq:
				boolRes = object.BoolVal(af != bf)
			case compile.OpOptLt:
				boolRes = object.BoolVal(af < bf)
			case compile.OpOptLe:
				boolRes = object.BoolVal(af <= bf)
			case compile.OpOptGt:
				boolRes = object.BoolVal(af > bf)
			case compile.OpOptGe:
				boolRes = object.BoolVal(af >= bf)
			default:
				isBool = false
			}
			if isBool {
				t.pop()
				t.pop()
				t.push(boolRes)
				f.pc++
				return c.FloatOp, nil
			}
			var fl float64
			switch in.Op {
			case compile.OpOptPlus:
				fl = af + bf
			case compile.OpOptMinus:
				fl = af - bf
			case compile.OpOptMult:
				fl = af * bf
			case compile.OpOptDiv:
				fl = af / bf
			case compile.OpOptMod:
				fl = floatMod(af, bf)
			}
			res, cost, err := t.allocFloat(fl)
			if err != nil {
				return cost, err
			}
			t.pop()
			t.pop()
			t.push(res)
			f.pc++
			return cost, nil
		}
	}
	// String paths.
	if t.isString(a) && t.isString(b) {
		switch in.Op {
		case compile.OpOptPlus:
			o, cost, err := t.allocString(a.Ref.Str + b.Ref.Str)
			if err != nil {
				return cost, err
			}
			t.pop()
			t.pop()
			t.push(object.RefVal(o))
			f.pc++
			return cost, nil
		case compile.OpOptEq, compile.OpOptNeq, compile.OpOptLt, compile.OpOptLe, compile.OpOptGt, compile.OpOptGe:
			cmp := strings.Compare(a.Ref.Str, b.Ref.Str)
			var res bool
			switch in.Op {
			case compile.OpOptEq:
				res = cmp == 0
			case compile.OpOptNeq:
				res = cmp != 0
			case compile.OpOptLt:
				res = cmp < 0
			case compile.OpOptLe:
				res = cmp <= 0
			case compile.OpOptGt:
				res = cmp > 0
			case compile.OpOptGe:
				res = cmp >= 0
			}
			t.pop()
			t.pop()
			t.push(object.BoolVal(res))
			f.pc++
			return int64(len(a.Ref.Str)/8) + c.FixnumOp, nil
		}
	}
	// Generic equality on identical kinds.
	if in.Op == compile.OpOptEq || in.Op == compile.OpOptNeq {
		eq := valueEq(a, b)
		t.pop()
		t.pop()
		if in.Op == compile.OpOptEq {
			t.push(object.BoolVal(eq))
		} else {
			t.push(object.BoolVal(!eq))
		}
		f.pc++
		return c.FixnumOp, nil
	}
	// Fall back to a real method send (user-defined operators).
	return t.sendGeneric(f, object.SymID(in.A), 1, -1, in.D, now)
}

func valueEq(a, b object.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case object.KNil, object.KTrue, object.KFalse:
		return true
	case object.KFixnum, object.KSymbol:
		return a.Fix == b.Fix
	default:
		return a.Ref == b.Ref
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m != 0 && ((a < 0) != (b < 0)) {
		m += b
	}
	return m
}

func floatMod(a, b float64) float64 {
	m := a - b*float64(int64(a/b))
	return m
}

func (t *RThread) isString(val object.Value) bool {
	return val.Kind == object.KRef && val.Ref.Type == object.TString
}

func (t *RThread) isArray(val object.Value) bool {
	return val.Kind == object.KRef && val.Ref.Type == object.TArray
}

func (t *RThread) isHash(val object.Value) bool {
	return val.Kind == object.KRef && val.Ref.Type == object.THash
}

func (t *RThread) typeName(val object.Value) string {
	switch val.Kind {
	case object.KNil:
		return "NilClass"
	case object.KTrue, object.KFalse:
		return "Boolean"
	case object.KFixnum:
		return "Fixnum"
	case object.KSymbol:
		return "Symbol"
	default:
		if val.Ref.Class != nil {
			return val.Ref.Class.Name
		}
		return "Object"
	}
}

func (t *RThread) execShovel(f *Frame, in *compile.Instr, now int64) (int64, error) {
	c := &t.vm.Costs
	val := t.peek(0)
	recv := t.peek(1)
	switch {
	case t.isArray(recv):
		cost, err := t.arrayPush(recv.Ref, val)
		if err != nil {
			return cost, err
		}
		t.pop()
		t.pop()
		t.push(recv)
		f.pc++
		return cost + c.Aset, nil
	case t.isString(recv):
		s, cost := t.toS(val)
		o, ac, err := t.allocString(recv.Ref.Str + s)
		cost += ac
		if err != nil {
			return cost, err
		}
		t.pop()
		t.pop()
		t.push(object.RefVal(o))
		f.pc++
		return cost, nil
	case recv.Kind == object.KFixnum && val.Kind == object.KFixnum:
		t.pop()
		t.pop()
		t.push(object.FixVal(recv.Fix << uint(val.Fix&63)))
		f.pc++
		return c.FixnumOp, nil
	default:
		return t.sendGeneric(f, object.SymID(in.A), 1, -1, in.D, now)
	}
}

func (t *RThread) execAref(f *Frame, in *compile.Instr, now int64) (int64, error) {
	c := &t.vm.Costs
	idx := t.peek(0)
	recv := t.peek(1)
	switch {
	case t.isArray(recv) && idx.Kind == object.KFixnum:
		val, cost := t.arrayGet(recv.Ref, idx.Fix)
		t.pop()
		t.pop()
		t.push(val)
		f.pc++
		return cost + c.Aref, nil
	case t.isHash(recv):
		val, cost, err := t.hashGet(recv.Ref, idx)
		if err != nil {
			return cost, err
		}
		t.pop()
		t.pop()
		t.push(val)
		f.pc++
		return cost, nil
	case t.isString(recv) && idx.Kind == object.KFixnum:
		s := recv.Ref.Str
		i := idx.Fix
		if i < 0 {
			i += int64(len(s))
		}
		var sub string
		if i >= 0 && i < int64(len(s)) {
			sub = s[i : i+1]
		}
		o, cost, err := t.allocString(sub)
		if err != nil {
			return cost, err
		}
		t.pop()
		t.pop()
		t.push(object.RefVal(o))
		f.pc++
		return cost, nil
	default:
		return t.sendGeneric(f, object.SymID(in.A), 1, -1, in.D, now)
	}
}

func (t *RThread) execAset(f *Frame, in *compile.Instr, now int64) (int64, error) {
	c := &t.vm.Costs
	val := t.peek(0)
	idx := t.peek(1)
	recv := t.peek(2)
	switch {
	case t.isArray(recv) && idx.Kind == object.KFixnum:
		cost, err := t.arraySet(recv.Ref, idx.Fix, val)
		if err != nil {
			return cost, err
		}
		t.pop()
		t.pop()
		t.pop()
		t.push(val)
		f.pc++
		return cost + c.Aset, nil
	case t.isHash(recv):
		cost, err := t.hashSet(recv.Ref, idx, val)
		if err != nil {
			return cost, err
		}
		t.pop()
		t.pop()
		t.pop()
		t.push(val)
		f.pc++
		return cost, nil
	default:
		return t.sendGeneric(f, object.SymID(in.A), 2, -1, in.D, now)
	}
}

// ---------------------------------------------------------------------------
// Sends.

func (t *RThread) doSend(f *Frame, in *compile.Instr, now int64) (int64, error) {
	return t.sendGeneric(f, object.SymID(in.A), in.B, in.C, in.D, now)
}

// sendGeneric dispatches mid on the receiver below argc arguments.
func (t *RThread) sendGeneric(f *Frame, mid object.SymID, argc int32, blkIdx int32, icSlot int32, now int64) (int64, error) {
	v := t.vm
	c := &v.Costs
	cost := c.SendBase + c.SendArg*int64(argc)
	recv := t.peek(argc)

	var m *object.Method
	classRecv := recv.Kind == object.KRef && recv.Ref.Type == object.TClass
	if classRecv {
		// Class-level send: the inline cache guards on the class object
		// identity (each class object is unique).
		icA := v.icAddr(f.iseq, icSlot)
		guard := t.acc.Load(icA)
		if guard.Ref == any(recv.Ref) && guard.Bits == v.methodSerial {
			m = t.acc.Load(icA + simmem.WordBytes).Ref.(*object.Method)
		} else {
			cost += c.SendMiss
			if sm, ok := statics(recv.Ref.Cls)[mid]; ok {
				m = sm
			} else if v.ClassClass != nil {
				m = v.ClassClass.Lookup(mid)
			}
			if m != nil && (!v.Opt.FillOnceInlineCaches || guard.Ref == nil) {
				t.acc.Store(icA, simmem.Word{Bits: v.methodSerial, Ref: recv.Ref})
				t.acc.Store(icA+simmem.WordBytes, simmem.Word{Ref: m})
			}
		}
	} else {
		cls := v.classOf(recv)
		if cls == nil {
			return cost, fmt.Errorf("no class for receiver in call to %s", v.Syms.Name(mid))
		}
		icA := v.icAddr(f.iseq, icSlot)
		guard := t.acc.Load(icA)
		hit := guard.Ref == any(cls) && guard.Bits == v.methodSerial
		if MutUnguardedIC && v.Opt.Mode == ModeHTM && guard.Ref != nil {
			// Seeded bug (mutation builds only): use whatever the cache
			// holds without comparing the guard — a racily shared call
			// site dispatches another class's method.
			hit = true
		}
		if hit {
			m = t.acc.Load(icA + simmem.WordBytes).Ref.(*object.Method)
		} else {
			cost += c.SendMiss
			m = cls.Lookup(mid)
			if m != nil && (!v.Opt.FillOnceInlineCaches || guard.Ref == nil) {
				t.acc.Store(icA, simmem.Word{Bits: v.methodSerial, Ref: cls})
				t.acc.Store(icA+simmem.WordBytes, simmem.Word{Ref: m})
			}
		}
	}
	if m == nil {
		// Proc#call is dispatched inline: the proc's body runs as a frame.
		if recv.Kind == object.KRef && recv.Ref.Type == object.TProc && v.Syms.Name(mid) == "call" {
			pd := recv.Ref.Native.(*procData)
			args := make([]object.Value, argc)
			copy(args, t.stack[t.sp-argc:t.sp])
			t.sp -= argc + 1
			f.pc++
			if err := t.pushFrame(pd.iseq, pd.self, pd.env, BlockArg{}, args, now); err != nil {
				f.pc--
				t.sp += argc + 1
				return cost, err
			}
			return cost + c.BlockInvoke, nil
		}
		return cost, fmt.Errorf("undefined method `%s' for %s", v.Syms.Name(mid), t.typeName(recv))
	}

	var blk BlockArg
	if blkIdx >= 0 {
		blk = BlockArg{iseq: f.iseq.Children[blkIdx], env: f.env, self: f.self}
		if !f.iseq.Escapes {
			return cost, fmt.Errorf("internal: block in non-escaping iseq %s", f.iseq.Name)
		}
	}

	if nm, ok := m.Native.(*NativeMethod); ok {
		if nm.Blocking && t.inAnyTx() {
			t.restrictedOp()
			return cost, errRedo
		}
		if m.Arity >= 0 && int32(m.Arity) != argc {
			return cost, fmt.Errorf("wrong number of arguments to %s (given %d, expected %d)",
				v.Syms.Name(mid), argc, m.Arity)
		}
		args := t.stack[t.sp-argc : t.sp]
		ret, err := nm.Fn(t, recv, args, blk, now)
		cost += nm.Cycles
		if err == errFramePushed {
			// The native completed the send itself (see callAfterNative).
			return cost, nil
		}
		if err != nil {
			return cost, err
		}
		t.sp -= argc + 1
		t.push(ret)
		f.pc++
		return cost, nil
	}

	iseq := m.Code.(*compile.ISeq)
	if int(argc) != iseq.Params {
		return cost, fmt.Errorf("wrong number of arguments to %s (given %d, expected %d)",
			v.Syms.Name(mid), argc, iseq.Params)
	}
	args := make([]object.Value, argc)
	copy(args, t.stack[t.sp-argc:t.sp])
	t.sp -= argc + 1
	f.pc++
	if err := t.pushFrame(iseq, recv, object.Nil, blk, args, now); err != nil {
		f.pc--
		t.sp += argc + 1
		return cost, err
	}
	return cost, nil
}

// doInvokeBlock implements yield.
func (t *RThread) doInvokeBlock(f *Frame, in *compile.Instr, now int64) (int64, error) {
	c := &t.vm.Costs
	blk := f.block
	if !blk.valid() {
		return 0, fmt.Errorf("no block given (yield) in %s", f.iseq.Name)
	}
	argc := in.A
	args := make([]object.Value, argc)
	copy(args, t.stack[t.sp-argc:t.sp])
	t.sp -= argc
	f.pc++
	if err := t.pushFrame(blk.iseq, blk.self, blk.env, BlockArg{}, args, now); err != nil {
		f.pc--
		t.sp += argc
		return 0, err
	}
	return c.BlockInvoke, nil
}

// callProcValue invokes a TProc object (thread bodies). Used at thread
// start; normal block invocation goes through BlockArg.
type procData struct {
	iseq *compile.ISeq
	env  object.Value
	self object.Value
}

// toS converts a value to its display string, charging cycles for the
// traversal (float reads go through simulated memory).
func (t *RThread) toS(val object.Value) (string, int64) {
	switch val.Kind {
	case object.KNil:
		return "", 2
	case object.KTrue:
		return "true", 2
	case object.KFalse:
		return "false", 2
	case object.KFixnum:
		return strconv.FormatInt(val.Fix, 10), 8
	case object.KSymbol:
		return t.vm.Syms.Name(object.SymID(val.Fix)), 4
	default:
		switch val.Ref.Type {
		case object.TString:
			return val.Ref.Str, 2
		case object.TFloat:
			fl, _ := t.floatOf(val)
			s := strconv.FormatFloat(fl, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			return s, 12
		case object.TArray:
			n := t.arrayLen(val.Ref)
			parts := make([]string, n)
			var cost int64 = 8
			for i := int64(0); i < n; i++ {
				el, _ := t.arrayGet(val.Ref, i)
				s, cs := t.toS(el)
				parts[i] = s
				cost += cs
			}
			return "[" + strings.Join(parts, ", ") + "]", cost
		case object.TRange:
			lo := object.FromWord(t.acc.Load(val.Ref.AddrOf(object.SlotA)))
			hi := object.FromWord(t.acc.Load(val.Ref.AddrOf(object.SlotB)))
			ls, c1 := t.toS(lo)
			hs, c2 := t.toS(hi)
			return ls + ".." + hs, c1 + c2
		default:
			return "#<" + t.typeName(val) + ">", 4
		}
	}
}
