package vm

// This file is the VM-facing surface of the structured tracing subsystem in
// internal/trace. A run is traced by attaching a recorder via Options.Trace;
// the recorder fans events out to sinks. Two sinks are built in:
//
//   - trace.JSONL streams one JSON object per event to an io.Writer
//     (`htmgil --trace out.jsonl`);
//   - trace.Aggregator reconstructs run statistics (transaction counts,
//     abort causes and regions, GIL fallbacks) and per-yield-point
//     transaction-length time-series from the event stream
//     (`htmgil-bench -trace-summary`).
//
// The aliases below let VM clients configure tracing without importing
// internal/trace themselves.

import (
	"io"

	"htmgil/internal/trace"
)

// Trace type aliases for clients of the vm package.
type (
	// TraceRecorder receives events from every instrumented subsystem.
	TraceRecorder = trace.Recorder
	// TraceEvent is one structured trace record.
	TraceEvent = trace.Event
	// TraceSink consumes events emitted during a run.
	TraceSink = trace.Sink
	// TraceAggregator reconstructs Stats-equivalent counters from events.
	TraceAggregator = trace.Aggregator
	// TraceJSONL streams events as JSON lines.
	TraceJSONL = trace.JSONL
)

// NewTraceRecorder creates a recorder forwarding to the given sinks; assign
// it to Options.Trace before vm.New.
func NewTraceRecorder(sinks ...trace.Sink) *trace.Recorder {
	return trace.NewRecorder(sinks...)
}

// NewTraceJSONL creates a sink writing one JSON object per event to w.
func NewTraceJSONL(w io.Writer) *trace.JSONL { return trace.NewJSONL(w) }

// NewTraceAggregator creates an in-memory aggregating sink.
func NewTraceAggregator() *trace.Aggregator { return trace.NewAggregator() }
