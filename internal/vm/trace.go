package vm

import "fmt"

// debugTrace is a development aid: a small ring of recent control events.
var debugTrace []string
var debugOn = false

func trace(format string, args ...any) {
	if !debugOn {
		return
	}
	debugTrace = append(debugTrace, fmt.Sprintf(format, args...))
	if len(debugTrace) > 400 {
		debugTrace = debugTrace[len(debugTrace)-400:]
	}
}
