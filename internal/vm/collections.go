package vm

import (
	"fmt"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
)

// ---------------------------------------------------------------------------
// Instance variables with one-entry inline caches (Section 4.4).

// getIvar reads @name on self through the per-site inline cache.
func (t *RThread) getIvar(f *Frame, sym object.SymID, icSlot int32) (object.Value, int64, error) {
	v := t.vm
	c := &v.Costs
	self := f.self
	if self.Kind != object.KRef || (self.Ref.Type != object.TObject && self.Ref.Type != object.TClass) {
		return object.Nil, 0, fmt.Errorf("instance variable on %s", t.typeName(self))
	}
	if self.Ref.Type == object.TClass {
		// Rare: ivars on class objects are not supported; behave as unset.
		return object.Nil, c.IvarHit, nil
	}
	cls := self.Ref.Class
	icA := v.icAddr(f.iseq, icSlot)
	guard := t.acc.Load(icA)
	cost := c.IvarHit
	var idx int
	hit := false
	if guard.Ref != nil {
		if v.Opt.IvarTableGuard {
			// The paper's HTM-friendly guard: the cached entry stays valid
			// as long as the ivar-table identity matches, even across
			// different classes sharing a layout.
			hit = guard.Bits == uint64(cls.IvarTableID)
		} else {
			hit = guard.Ref == any(cls)
		}
	}
	if hit {
		idx = int(t.acc.Load(icA + simmem.WordBytes).Bits)
	} else {
		cost += c.IvarMiss
		var ok bool
		idx, ok = cls.IvarIndex(sym, false)
		if !ok {
			return object.Nil, cost, nil // reading an unset ivar yields nil
		}
		// Ivar caches are always rewritten on a miss (the paper changed
		// their guard, not their fill policy).
		t.acc.Store(icA, simmem.Word{Ref: cls, Bits: uint64(cls.IvarTableID)})
		t.acc.Store(icA+simmem.WordBytes, simmem.Word{Bits: uint64(idx)})
	}
	base := simmem.Addr(t.acc.Load(self.Ref.AddrOf(object.SlotA)).Bits)
	if base == 0 {
		return object.Nil, cost, nil
	}
	capWords := int(t.acc.Load(self.Ref.AddrOf(object.SlotB)).Bits)
	if idx >= capWords {
		return object.Nil, cost, nil
	}
	return object.FromWord(t.acc.Load(base + simmem.Addr(idx*simmem.WordBytes))), cost, nil
}

// setIvar writes @name on self, growing the ivar buffer as needed.
func (t *RThread) setIvar(f *Frame, sym object.SymID, icSlot int32, val object.Value) (int64, error) {
	v := t.vm
	c := &v.Costs
	self := f.self
	if self.Kind != object.KRef || self.Ref.Type != object.TObject {
		return 0, fmt.Errorf("cannot set instance variable on %s", t.typeName(self))
	}
	cls := self.Ref.Class
	idx, _ := cls.IvarIndex(sym, true)
	cost := c.IvarHit
	base := simmem.Addr(t.acc.Load(self.Ref.AddrOf(object.SlotA)).Bits)
	capWords := int(t.acc.Load(self.Ref.AddrOf(object.SlotB)).Bits)
	if base == 0 || idx >= capWords {
		newCap := len(cls.IvarIdx)
		if newCap < 4 {
			newCap = 4
		}
		if newCap <= idx {
			newCap = idx + 1
		}
		buf, err := t.allocArena(newCap)
		if err != nil {
			return cost, err
		}
		cost += c.ArenaAlloc
		for i := 0; i < capWords; i++ {
			w := t.acc.Load(base + simmem.Addr(i*simmem.WordBytes))
			t.acc.Store(buf+simmem.Addr(i*simmem.WordBytes), w)
		}
		for i := capWords; i < newCap; i++ {
			t.acc.Store(buf+simmem.Addr(i*simmem.WordBytes), object.Nil.Word())
		}
		if base != 0 {
			t.freeArena(base, capWords)
		}
		t.acc.Store(self.Ref.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
		t.acc.Store(self.Ref.AddrOf(object.SlotB), simmem.Word{Bits: uint64(newCap)})
		t.acc.Store(self.Ref.AddrOf(object.SlotC), simmem.Word{Bits: uint64(newCap)})
		base = buf
	}
	t.acc.Store(base+simmem.Addr(idx*simmem.WordBytes), val.Word())
	return cost, nil
}

// cvarClass resolves the class owning class variables for self.
func (t *RThread) cvarClass(f *Frame) (*object.RClass, error) {
	self := f.self
	if self.Kind == object.KRef {
		if self.Ref.Type == object.TClass {
			return self.Ref.Cls, nil
		}
		if self.Ref.Class != nil {
			return self.Ref.Class, nil
		}
	}
	return nil, fmt.Errorf("class variable outside of class context")
}

func (t *RThread) getCvar(f *Frame, sym object.SymID) (object.Value, int64, error) {
	cls, err := t.cvarClass(f)
	if err != nil {
		return object.Nil, 0, err
	}
	// Class variables are looked up along the superclass chain.
	for k := cls; k != nil; k = k.Super {
		if idx, ok := k.CVarIdx[sym]; ok {
			w := t.acc.Load(k.CVarBase + simmem.Addr(idx*simmem.WordBytes))
			return object.FromWord(w), t.vm.Costs.IvarHit, nil
		}
	}
	return object.Nil, t.vm.Costs.IvarMiss, nil
}

func (t *RThread) setCvar(f *Frame, sym object.SymID, val object.Value) (int64, error) {
	cls, err := t.cvarClass(f)
	if err != nil {
		return 0, err
	}
	for k := cls; k != nil; k = k.Super {
		if idx, ok := k.CVarIdx[sym]; ok {
			t.acc.Store(k.CVarBase+simmem.Addr(idx*simmem.WordBytes), val.Word())
			return t.vm.Costs.IvarHit, nil
		}
	}
	idx := len(cls.CVarIdx)
	if idx >= 32 {
		return 0, fmt.Errorf("too many class variables in %s", cls.Name)
	}
	cls.CVarIdx[sym] = idx
	t.acc.Store(cls.CVarBase+simmem.Addr(idx*simmem.WordBytes), val.Word())
	return t.vm.Costs.IvarMiss, nil
}

// ---------------------------------------------------------------------------
// Arrays: SlotA = buffer, SlotB = length, SlotC = capacity (words).

// allocArray allocates an array with room for at least n elements.
func (t *RThread) allocArray(n int) (*object.RObject, int64, error) {
	v := t.vm
	capW := n
	if capW < 4 {
		capW = 4
	}
	o, err := t.allocObject(object.TArray, v.typeClass[object.TArray])
	if err != nil {
		return nil, v.Costs.Alloc, err
	}
	buf, err := t.allocArena(capW)
	if err != nil {
		return nil, v.Costs.Alloc, err
	}
	t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
	t.acc.Store(o.AddrOf(object.SlotB), simmem.Word{Bits: 0})
	t.acc.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: uint64(capW)})
	return o, v.Costs.Alloc + v.Costs.ArenaAlloc, nil
}

func (t *RThread) arrayLen(a *object.RObject) int64 {
	return int64(t.acc.Load(a.AddrOf(object.SlotB)).Bits)
}

func (t *RThread) arrayGet(a *object.RObject, i int64) (object.Value, int64) {
	n := t.arrayLen(a)
	if i < 0 {
		i += n
	}
	if i < 0 || i >= n {
		return object.Nil, t.vm.Costs.Aref
	}
	base := simmem.Addr(t.acc.Load(a.AddrOf(object.SlotA)).Bits)
	return object.FromWord(t.acc.Load(base + simmem.Addr(i*simmem.WordBytes))), t.vm.Costs.Aref
}

// arrayEnsure grows the buffer to hold at least want elements.
func (t *RThread) arrayEnsure(a *object.RObject, want int64) (int64, error) {
	capW := int64(t.acc.Load(a.AddrOf(object.SlotC)).Bits)
	if want <= capW {
		return 0, nil
	}
	newCap := capW * 2
	if newCap < want {
		newCap = want
	}
	buf, err := t.allocArena(int(newCap))
	if err != nil {
		return 0, err
	}
	oldBase := simmem.Addr(t.acc.Load(a.AddrOf(object.SlotA)).Bits)
	n := t.arrayLen(a)
	for i := int64(0); i < n; i++ {
		w := t.acc.Load(oldBase + simmem.Addr(i*simmem.WordBytes))
		t.acc.Store(buf+simmem.Addr(i*simmem.WordBytes), w)
	}
	t.freeArena(oldBase, int(capW))
	t.acc.Store(a.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
	t.acc.Store(a.AddrOf(object.SlotC), simmem.Word{Bits: uint64(newCap)})
	return t.vm.Costs.ArenaAlloc + n*2, nil
}

func (t *RThread) arraySet(a *object.RObject, i int64, val object.Value) (int64, error) {
	n := t.arrayLen(a)
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0, fmt.Errorf("index %d out of range", i)
	}
	var cost int64
	if i >= n {
		gc, err := t.arrayEnsure(a, i+1)
		cost += gc
		if err != nil {
			return cost, err
		}
		base := simmem.Addr(t.acc.Load(a.AddrOf(object.SlotA)).Bits)
		for j := n; j < i; j++ {
			t.acc.Store(base+simmem.Addr(j*simmem.WordBytes), object.Nil.Word())
		}
		t.acc.Store(a.AddrOf(object.SlotB), simmem.Word{Bits: uint64(i + 1)})
	}
	base := simmem.Addr(t.acc.Load(a.AddrOf(object.SlotA)).Bits)
	t.acc.Store(base+simmem.Addr(i*simmem.WordBytes), val.Word())
	return cost, nil
}

func (t *RThread) arrayPush(a *object.RObject, val object.Value) (int64, error) {
	n := t.arrayLen(a)
	cost, err := t.arrayEnsure(a, n+1)
	if err != nil {
		return cost, err
	}
	base := simmem.Addr(t.acc.Load(a.AddrOf(object.SlotA)).Bits)
	t.acc.Store(base+simmem.Addr(n*simmem.WordBytes), val.Word())
	t.acc.Store(a.AddrOf(object.SlotB), simmem.Word{Bits: uint64(n + 1)})
	return cost, nil
}

// ---------------------------------------------------------------------------
// Hashes: open addressing in an arena buffer of key/value word pairs.
// SlotA = buckets, SlotB = count, SlotC = bucket capacity. An all-zero key
// word marks an empty bucket (nil keys are not supported).

func (t *RThread) allocHash(hint int) (*object.RObject, int64, error) {
	v := t.vm
	capB := 8
	for capB < hint*2 {
		capB *= 2
	}
	o, err := t.allocObject(object.THash, v.typeClass[object.THash])
	if err != nil {
		return nil, v.Costs.Alloc, err
	}
	cost, err := t.hashInitBuckets(o, capB)
	if err != nil {
		return nil, cost, err
	}
	return o, cost + v.Costs.Alloc, nil
}

func (t *RThread) hashInitBuckets(o *object.RObject, capB int) (int64, error) {
	buf, err := t.allocArena(capB * 2)
	if err != nil {
		return 0, err
	}
	for i := 0; i < capB*2; i++ {
		t.acc.Store(buf+simmem.Addr(i*simmem.WordBytes), simmem.Word{})
	}
	t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
	t.acc.Store(o.AddrOf(object.SlotB), simmem.Word{Bits: 0})
	t.acc.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: uint64(capB)})
	return t.vm.Costs.ArenaAlloc + int64(capB), nil
}

// hashVal computes a deterministic hash of a key.
func (t *RThread) hashVal(key object.Value) (uint64, error) {
	switch key.Kind {
	case object.KFixnum:
		x := uint64(key.Fix)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x, nil
	case object.KSymbol:
		return uint64(key.Fix)*0x9e3779b97f4a7c15 + 1, nil
	case object.KTrue:
		return 3, nil
	case object.KFalse:
		return 5, nil
	case object.KRef:
		if key.Ref.Type == object.TString {
			var h uint64 = 14695981039346656037
			for i := 0; i < len(key.Ref.Str); i++ {
				h ^= uint64(key.Ref.Str[i])
				h *= 1099511628211
			}
			return h | 1, nil
		}
		return uint64(key.Ref.Index)*0x9e3779b97f4a7c15 + 7, nil
	default:
		return 0, fmt.Errorf("unsupported hash key type %s", t.typeName(key))
	}
}

// hashKeyEq compares keys (string content equality, else valueEq).
func hashKeyEq(a, b object.Value) bool {
	if a.Kind == object.KRef && b.Kind == object.KRef &&
		a.Ref.Type == object.TString && b.Ref.Type == object.TString {
		return a.Ref.Str == b.Ref.Str
	}
	return valueEq(a, b)
}

func (t *RThread) hashGet(h *object.RObject, key object.Value) (object.Value, int64, error) {
	cost := t.vm.Costs.HashOp
	hv, err := t.hashVal(key)
	if err != nil {
		return object.Nil, cost, err
	}
	base := simmem.Addr(t.acc.Load(h.AddrOf(object.SlotA)).Bits)
	capB := int64(t.acc.Load(h.AddrOf(object.SlotC)).Bits)
	if base == 0 || capB == 0 {
		return object.Nil, cost, nil
	}
	idx := int64(hv) & (capB - 1)
	for probe := int64(0); probe < capB; probe++ {
		kw := t.acc.Load(base + simmem.Addr(((idx*2)+0)*simmem.WordBytes))
		cost += 6
		if kw.Bits == 0 && kw.Ref == nil {
			return object.Nil, cost, nil
		}
		if hashKeyEq(object.FromWord(kw), key) {
			vw := t.acc.Load(base + simmem.Addr(((idx*2)+1)*simmem.WordBytes))
			return object.FromWord(vw), cost, nil
		}
		idx = (idx + 1) & (capB - 1)
	}
	return object.Nil, cost, nil
}

func (t *RThread) hashSet(h *object.RObject, key, val object.Value) (int64, error) {
	cost := t.vm.Costs.HashOp
	if key.IsNil() {
		return cost, fmt.Errorf("nil hash keys are not supported")
	}
	count := int64(t.acc.Load(h.AddrOf(object.SlotB)).Bits)
	capB := int64(t.acc.Load(h.AddrOf(object.SlotC)).Bits)
	if (count+1)*3 >= capB*2 {
		gc, err := t.hashGrow(h)
		cost += gc
		if err != nil {
			return cost, err
		}
		capB = int64(t.acc.Load(h.AddrOf(object.SlotC)).Bits)
	}
	hv, err := t.hashVal(key)
	if err != nil {
		return cost, err
	}
	base := simmem.Addr(t.acc.Load(h.AddrOf(object.SlotA)).Bits)
	idx := int64(hv) & (capB - 1)
	for {
		kaddr := base + simmem.Addr((idx*2)*simmem.WordBytes)
		kw := t.acc.Load(kaddr)
		cost += 6
		if kw.Bits == 0 && kw.Ref == nil {
			t.acc.Store(kaddr, key.Word())
			t.acc.Store(kaddr+simmem.WordBytes, val.Word())
			t.acc.Store(h.AddrOf(object.SlotB), simmem.Word{Bits: uint64(count + 1)})
			return cost, nil
		}
		if hashKeyEq(object.FromWord(kw), key) {
			t.acc.Store(kaddr+simmem.WordBytes, val.Word())
			return cost, nil
		}
		idx = (idx + 1) & (capB - 1)
	}
}

func (t *RThread) hashGrow(h *object.RObject) (int64, error) {
	oldBase := simmem.Addr(t.acc.Load(h.AddrOf(object.SlotA)).Bits)
	oldCap := int64(t.acc.Load(h.AddrOf(object.SlotC)).Bits)
	newCap := oldCap * 2
	cost, err := t.hashInitBuckets(h, int(newCap))
	if err != nil {
		return cost, err
	}
	// Reinsert old entries.
	base := simmem.Addr(t.acc.Load(h.AddrOf(object.SlotA)).Bits)
	count := int64(0)
	for i := int64(0); i < oldCap; i++ {
		kw := t.acc.Load(oldBase + simmem.Addr((i*2)*simmem.WordBytes))
		if kw.Bits == 0 && kw.Ref == nil {
			continue
		}
		vw := t.acc.Load(oldBase + simmem.Addr((i*2+1)*simmem.WordBytes))
		key := object.FromWord(kw)
		hv, _ := t.hashVal(key)
		idx := int64(hv) & (newCap - 1)
		for {
			kaddr := base + simmem.Addr((idx*2)*simmem.WordBytes)
			w := t.acc.Load(kaddr)
			if w.Bits == 0 && w.Ref == nil {
				t.acc.Store(kaddr, kw)
				t.acc.Store(kaddr+simmem.WordBytes, vw)
				break
			}
			idx = (idx + 1) & (newCap - 1)
		}
		count++
		cost += 12
	}
	t.acc.Store(h.AddrOf(object.SlotB), simmem.Word{Bits: uint64(count)})
	t.freeArena(oldBase, int(oldCap*2))
	return cost, nil
}

// hashKeys returns all keys (iteration support for the Ruby library).
func (t *RThread) hashKeys(h *object.RObject) ([]object.Value, int64) {
	base := simmem.Addr(t.acc.Load(h.AddrOf(object.SlotA)).Bits)
	capB := int64(t.acc.Load(h.AddrOf(object.SlotC)).Bits)
	var keys []object.Value
	cost := t.vm.Costs.HashOp
	for i := int64(0); i < capB; i++ {
		kw := t.acc.Load(base + simmem.Addr((i*2)*simmem.WordBytes))
		cost += 4
		if kw.Bits != 0 || kw.Ref != nil {
			keys = append(keys, object.FromWord(kw))
		}
	}
	return keys, cost
}

// ---------------------------------------------------------------------------
// Strings: immutable Go payload plus a shadow arena buffer sized with the
// content so transactional footprints scale with string length, as they do
// for CRuby's heap-allocated string bodies.

func (t *RThread) allocString(s string) (*object.RObject, int64, error) {
	v := t.vm
	o, err := t.allocObject(object.TString, v.typeClass[object.TString])
	if err != nil {
		return nil, v.Costs.Alloc, err
	}
	o.Str = s
	cost := v.Costs.Alloc
	words := (len(s) + simmem.WordBytes - 1) / simmem.WordBytes
	if words > 0 {
		buf, err := t.allocArena(words)
		if err != nil {
			return nil, cost, err
		}
		for i := 0; i < words; i++ {
			t.acc.Store(buf+simmem.Addr(i*simmem.WordBytes), simmem.Word{Bits: uint64(i) + 1})
		}
		cost += v.Costs.ArenaAlloc + int64(words)*v.Costs.StrPerWord
		t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
		t.acc.Store(o.AddrOf(object.SlotB), simmem.Word{Bits: uint64(len(s))})
		t.acc.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: uint64(roundClass(words))})
	}
	return o, cost, nil
}
