package vm

import (
	"bytes"
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/trace"
)

// TestTraceReproducesStats is the acceptance criterion of the tracing
// subsystem: a run traced to JSONL, parsed back and aggregated must
// reproduce the run's Stats exactly — transaction counts, abort causes,
// GIL fallbacks, length adjustments and conflict-doom attribution. Any
// drift means an emit site is missing, duplicated or mislabelled.
func TestTraceReproducesStats(t *testing.T) {
	for _, prof := range []*htm.Profile{htm.ZEC12(), htm.XeonE3()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			var jsonl bytes.Buffer
			opt := DefaultOptions(prof, ModeHTM)
			opt.Trace = NewTraceRecorder(NewTraceJSONL(&jsonl))
			v := New(opt)
			iseq, err := v.CompileSource(detProgram, "acceptance")
			if err != nil {
				t.Fatal(err)
			}
			res, err := v.Run(iseq)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.HTM == nil || st.HTM.Begins == 0 {
				t.Fatal("run executed no transactions; acceptance test is vacuous")
			}

			// Every line must be valid JSON with a known shape.
			agg := trace.NewAggregator()
			n, err := trace.ReadJSONL(strings.NewReader(jsonl.String()), agg)
			if err != nil {
				t.Fatalf("trace is not valid JSONL: %v", err)
			}
			if n == 0 {
				t.Fatal("no events in trace")
			}

			// Transaction lifecycle counts: all htm begin/end/abort calls go
			// through the TLE layer, which is where the events come from.
			if agg.Begins != st.HTM.Begins {
				t.Errorf("begins: trace %d, stats %d", agg.Begins, st.HTM.Begins)
			}
			if agg.Commits != st.HTM.Commits {
				t.Errorf("commits: trace %d, stats %d", agg.Commits, st.HTM.Commits)
			}
			if agg.Aborts != st.HTM.Aborts {
				t.Errorf("aborts: trace %d, stats %d", agg.Aborts, st.HTM.Aborts)
			}
			if agg.Fallbacks != st.GILFallbacks {
				t.Errorf("gil fallbacks: trace %d, stats %d", agg.Fallbacks, st.GILFallbacks)
			}
			if agg.Adjustments != st.Adjustments {
				t.Errorf("adjustments: trace %d, stats %d", agg.Adjustments, st.Adjustments)
			}
			if agg.GCs != st.GCs {
				t.Errorf("gcs: trace %d, stats %d", agg.GCs, st.GCs)
			}

			// Abort causes, cause by cause.
			var totalCauses uint64
			for cause, want := range st.AbortCauses {
				if got := agg.AbortCauses[cause.String()]; got != want {
					t.Errorf("abort cause %s: trace %d, stats %d", cause, got, want)
				}
				totalCauses += want
			}
			if totalCauses != st.HTM.Aborts {
				t.Errorf("stats internally inconsistent: causes sum %d, aborts %d", totalCauses, st.HTM.Aborts)
			}
			for cs := range agg.AbortCauses {
				found := false
				for cause := range st.AbortCauses {
					if cause.String() == cs {
						found = true
					}
				}
				if !found {
					t.Errorf("trace has abort cause %q unknown to stats", cs)
				}
			}

			// Conflict attribution: simmem emits one doom event exactly where
			// it counts a conflict against a region.
			for region, want := range st.ConflictRegions {
				if got := agg.DoomRegions[region]; got != want {
					t.Errorf("conflict region %s: trace %d, stats %d", region, got, want)
				}
			}
			for region := range agg.DoomRegions {
				if _, ok := st.ConflictRegions[region]; !ok {
					t.Errorf("trace dooms in region %q unknown to stats", region)
				}
			}
		})
	}
}

// TestTraceDisabledIsIdentical checks the nil fast path does not perturb
// execution: the same seeded run with and without a recorder attached must
// produce identical cycle counts and statistics.
func TestTraceDisabledIsIdentical(t *testing.T) {
	run := func(withTrace bool) (int64, uint64, uint64) {
		opt := DefaultOptions(htm.ZEC12(), ModeHTM)
		if withTrace {
			opt.Trace = NewTraceRecorder(NewTraceAggregator())
		}
		v := New(opt)
		iseq, err := v.CompileSource(detProgram, "fastpath")
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Run(iseq)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Stats.HTM.Begins, res.Stats.HTM.Aborts
	}
	c1, b1, a1 := run(false)
	c2, b2, a2 := run(true)
	if c1 != c2 || b1 != b2 || a1 != a2 {
		t.Fatalf("tracing changed the run: cycles %d/%d begins %d/%d aborts %d/%d", c1, c2, b1, b2, a1, a2)
	}
}
