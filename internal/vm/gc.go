package vm

import (
	"htmgil/internal/object"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// runGC performs a stop-the-world collection. In GIL/HTM modes the caller
// already holds the GIL (allocation inside transactions aborts to the GIL
// first), which stops the world: acquiring the GIL doomed every running
// transaction, and no new one can start. In FGL/Ideal modes the caller
// must have brought all threads to a safepoint (see requestGC).
func (t *RThread) runGC() error {
	v := t.vm
	if v.Opt.Mode == ModeFGL || v.Opt.Mode == ModeIdeal {
		return t.requestGC()
	}
	// Eagerly subscribed transactions were conflict-doomed the moment the
	// collector's thread stored the GIL word, but lazy-subscription
	// transactions have no begin-time subscription and would keep running —
	// and could commit — across the collection, holding references the
	// collector cannot see (their speculative write buffers). Real
	// implementations fence every core before collecting; model that by
	// dooming any transaction still live (a no-op for already-doomed ones).
	for _, th := range v.threads {
		if th.hctx != nil && th.hctx.Tx.Active() {
			th.hctx.Tx.SelfDoom(simmem.CauseInterrupt)
		}
		// Software transactions must die too, and not only because of their
		// invisible write buffers: their value-based validation cannot see
		// the collector recycling an object behind a reference they already
		// consumed (the host-side type mutates in place), so letting one
		// survive a collection risks dispatching on a reused object. The
		// doomed thread aborts at its next step boundary, before it can
		// touch anything the collector moved.
		if th.tle != nil && th.tle.OCC != nil && th.tle.OCC.Active() {
			th.tle.OCC.SelfDoom(simmem.CauseInterrupt)
		}
	}
	t.traceGC(trace.KindGCStart, 0)
	cycles := v.Heap.Collect(v.gcRoots, v.gcTraverse)
	t.charge(CatGILHeld, cycles)
	t.pendingGC += cycles // the dispatcher adds this to the step's clock
	t.traceGC(trace.KindGCEnd, cycles)
	return nil
}

// traceGC emits a GC lifecycle event attributed to the collecting thread.
// gc-end events are stamped at collection end and carry the span in Cycles.
func (t *RThread) traceGC(kind trace.Kind, span int64) {
	tr := t.vm.Opt.Trace
	if tr == nil {
		return
	}
	ev := trace.Ev(t.vm.Engine.Now()+span, kind)
	if t.sth != nil {
		ev.Thread = t.sth.ID
	}
	ev.Cycles = span
	tr.Emit(ev)
}

// requestGC implements the FGL/Ideal safepoint protocol: every running
// thread parks at its next safepoint; whoever stops the world last performs
// the collection and wakes the others.
func (t *RThread) requestGC() error {
	v := t.vm
	v.gcRequested = true
	t.gcParked = true
	v.gcWaiters = append(v.gcWaiters, t)
	if v.tryCompleteGC(v.Engine.Now(), t) {
		return nil
	}
	return errGCWait
}

// parkForGC parks a thread at a safepoint while a collection is pending.
func (t *RThread) parkForGC(now int64) sched.StepResult {
	v := t.vm
	t.gcParked = true
	v.gcWaiters = append(v.gcWaiters, t)
	if v.tryCompleteGC(now, t) {
		t.resume = rsDispatch
		return sched.StepResult{Cycles: 2, Status: sched.Running}
	}
	t.park(CatIOWait, rsGCPark)
	return sched.StepResult{Cycles: 2, Status: sched.Blocked}
}

// tryCompleteGC collects if the world has stopped. runner is the thread
// still executing (the last to reach its safepoint, or a finishing thread);
// it performs the collection and wakes every parked waiter.
func (v *VM) tryCompleteGC(now int64, runner *RThread) bool {
	if !v.gcRequested || !v.gcReady() {
		return false
	}
	runner.performSafepointGC(now)
	span := runner.pendingGC
	for _, w := range v.gcWaiters {
		w.gcParked = false
		if w != runner {
			v.Engine.Wake(w.sth, now+span)
		}
	}
	v.gcWaiters = nil
	return true
}

// gcReady reports whether every other live thread is parked (blocked or at
// a safepoint).
func (v *VM) gcReady() bool {
	running := 0
	for _, th := range v.threads {
		if th.sth != nil && th.sth.Status() == sched.Running && !th.gcParked {
			running++
		}
	}
	return running <= 1 // only the requester still runs
}

// performSafepointGC runs the collection in FGL/Ideal mode.
func (t *RThread) performSafepointGC(now int64) {
	v := t.vm
	t.traceGC(trace.KindGCStart, 0)
	cycles := v.Heap.Collect(v.gcRoots, v.gcTraverse)
	// Parallel collectors (the JVM's, for JRuby) spread the work over
	// cores; charge the span, not the total.
	span := cycles / int64(v.Opt.Prof.Cores)
	if span < 1 {
		span = 1
	}
	t.charge(CatOther, cycles)
	t.pendingGC += span
	v.gcRequested = false
	t.traceGC(trace.KindGCEnd, span)
}

// errGCWait signals that the allocating thread parked for a safepoint GC
// and the allocation must be retried on wake.
var errGCWait = errRedoGC

var errRedoGC = &gcWaitError{}

type gcWaitError struct{}

func (*gcWaitError) Error() string { return "vm: waiting for safepoint GC" }

// gcRoots enumerates every live reference outside the heap.
func (v *VM) gcRoots(mark func(*object.RObject)) {
	markVal := func(val object.Value) {
		if val.Kind == object.KRef && val.Ref.Index >= 0 {
			mark(val.Ref)
		}
	}
	for _, o := range v.pinned {
		mark(o)
	}
	for _, t := range v.threads {
		// Inside a transaction the operand stack may have been popped below
		// the begin-time checkpoint; an abort restores sp to ckSP, so the
		// slots in [sp, ckSP) come back to life and must stay marked.
		top := t.sp
		if t.logging && t.ckSP > top {
			top = t.ckSP
		}
		for i := int32(0); i < top; i++ {
			markVal(t.stack[i])
		}
		for fi := range t.frames {
			f := &t.frames[fi]
			markVal(f.self)
			markVal(f.env)
			markVal(f.parentEnv)
			markVal(f.block.env)
			markVal(f.block.self)
			for _, l := range f.locals {
				markVal(l)
			}
		}
		// Undo-log entries hold pre-transaction values that must survive.
		for i := range t.log {
			e := &t.log[i]
			markVal(e.val)
			if e.frame != nil {
				markVal(e.frame.self)
				markVal(e.frame.env)
				markVal(e.frame.parentEnv)
				for _, l := range e.frame.locals {
					markVal(l)
				}
			}
		}
		if t.thrObj != nil {
			mark(t.thrObj)
		}
		for _, o := range t.tempRoots {
			mark(o)
		}
		// Objects a software transaction allocated stay pinned until its
		// commit or abort settles them: an abort returns them to the free
		// lists itself, and sweeping them here first would free them twice.
		for _, o := range t.stxAllocObjs {
			mark(o)
		}
		markVal(t.result)
		if vals, ok := t.nativeState.([]object.Value); ok {
			for _, val := range vals {
				markVal(val)
			}
		}
	}
	for _, val := range v.consts {
		markVal(val)
	}
	for _, iseqVals := range v.floats {
		for _, val := range iseqVals {
			markVal(val)
		}
	}
	// Globals and class variables live in simulated memory.
	for _, addr := range v.globals {
		markVal(object.FromWord(v.Mem.Peek(addr)))
	}
	for _, cls := range v.classes {
		for _, idx := range cls.CVarIdx {
			markVal(object.FromWord(v.Mem.Peek(cls.CVarBase + simmem.Addr(idx*simmem.WordBytes))))
		}
	}
	for _, extra := range v.extraRoots {
		extra(mark)
	}
}

// gcTraverse enumerates the references held by one heap object.
func (v *VM) gcTraverse(o *object.RObject, mark func(*object.RObject)) {
	markVal := func(val object.Value) {
		if val.Kind == object.KRef && val.Ref.Index >= 0 {
			mark(val.Ref)
		}
	}
	mem := v.Mem
	switch o.Type {
	case object.TArray:
		base := simmem.Addr(mem.Peek(o.AddrOf(object.SlotA)).Bits)
		n := int64(mem.Peek(o.AddrOf(object.SlotB)).Bits)
		for i := int64(0); i < n; i++ {
			markVal(object.FromWord(mem.Peek(base + simmem.Addr(i*simmem.WordBytes))))
		}
	case object.THash:
		base := simmem.Addr(mem.Peek(o.AddrOf(object.SlotA)).Bits)
		capB := int64(mem.Peek(o.AddrOf(object.SlotC)).Bits)
		for i := int64(0); i < capB*2; i++ {
			w := mem.Peek(base + simmem.Addr(i*simmem.WordBytes))
			if w.Bits != 0 || w.Ref != nil {
				markVal(object.FromWord(w))
			}
		}
	case object.TObject:
		base := simmem.Addr(mem.Peek(o.AddrOf(object.SlotA)).Bits)
		n := int64(mem.Peek(o.AddrOf(object.SlotB)).Bits)
		for i := int64(0); i < n; i++ {
			markVal(object.FromWord(mem.Peek(base + simmem.Addr(i*simmem.WordBytes))))
		}
	case object.TEnv:
		base := simmem.Addr(mem.Peek(o.AddrOf(object.SlotA)).Bits)
		n := int64(mem.Peek(o.AddrOf(object.SlotB)).Bits)
		for i := int64(0); i < n; i++ {
			markVal(object.FromWord(mem.Peek(base + simmem.Addr(i*simmem.WordBytes))))
		}
	case object.TRange:
		markVal(object.FromWord(mem.Peek(o.AddrOf(object.SlotA))))
		markVal(object.FromWord(mem.Peek(o.AddrOf(object.SlotB))))
	case object.TProc:
		if pd, ok := o.Native.(*procData); ok {
			markVal(pd.env)
			markVal(pd.self)
		}
	case object.TThread:
		if rt, ok := o.Native.(*RThread); ok {
			markVal(rt.result)
		}
	default:
		if v.extraTraverse != nil {
			v.extraTraverse(o, mark)
		}
	}
}
