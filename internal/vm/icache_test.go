package vm

import (
	"testing"

	"htmgil/internal/htm"
)

// runSrcOpts is runSrc with an options hook, for toggling cache flags.
func runSrcOpts(t *testing.T, mode Mode, src string, tweak func(*Options)) *RunResult {
	t.Helper()
	opt := DefaultOptions(htm.ZEC12(), mode)
	opt.HeapSlots = 50_000
	opt.MaxCycles = 10_000_000_000
	if tweak != nil {
		tweak(&opt)
	}
	v := New(opt)
	iseq, err := v.CompileSource(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := v.Run(iseq)
	if err != nil {
		t.Fatalf("run (%v): %v\noutput so far: %s", mode, err, v.Output())
	}
	return res
}

// TestInlineCacheInvalidationOnRedefinition: filling an inline cache and
// then redefining the method must bump the VM-wide method serial, so the
// warm call site misses its guard and dispatches the new body. Covers
// top-level methods, reopened classes, and inherited methods overridden
// after the cache warmed, across modes and both cache-fill policies.
func TestInlineCacheInvalidationOnRedefinition(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "toplevel-method",
			src: `def m
  1
end
a = m
def m
  2
end
puts a * 10 + m
`,
			want: "12\n",
		},
		{
			name: "reopened-class",
			src: `class A
  def m
    1
  end
end
a = A.new
r1 = a.m
class A
  def m
    2
  end
end
puts r1 * 10 + a.m
`,
			want: "12\n",
		},
		{
			name: "override-after-inherited-hit",
			src: `class Base
  def m
    1
  end
end
class Sub < Base
end
s = Sub.new
r1 = s.m
class Sub
  def m
    2
  end
end
puts r1 * 10 + s.m
`,
			want: "12\n",
		},
		{
			name: "two-sites-one-redefinition",
			src: `class A
  def m
    1
  end
end
def site1(o)
  o.m
end
def site2(o)
  o.m
end
a = A.new
r = site1(a) + site2(a)
class A
  def m
    10
  end
end
puts r + site1(a) + site2(a)
`,
			want: "22\n",
		},
	}
	for _, tc := range cases {
		for _, mode := range []Mode{ModeGIL, ModeHTM} {
			for _, fillOnce := range []bool{false, true} {
				tc, mode, fillOnce := tc, mode, fillOnce
				name := tc.name + "/" + mode.String()
				if fillOnce {
					name += "/fill-once"
				}
				t.Run(name, func(t *testing.T) {
					res := runSrcOpts(t, mode, tc.src, func(o *Options) {
						o.FillOnceInlineCaches = fillOnce
					})
					if res.Output != tc.want {
						t.Fatalf("output = %q, want %q", res.Output, tc.want)
					}
				})
			}
		}
	}
}

// TestInlineCacheFillOnceKeepsFirstGuard: with the paper's fill-once policy
// a cache that warmed for one receiver class never refills for another, but
// dispatch must still be correct for both classes through the slow path.
func TestInlineCacheFillOnceKeepsFirstGuard(t *testing.T) {
	src := `class A
  def m
    1
  end
end
class B
  def m
    2
  end
end
def call(o)
  o.m
end
a = A.new
b = B.new
r = 0
i = 0
while i < 3
  r = r + call(a) + call(b)
  i += 1
end
puts r
`
	for _, fillOnce := range []bool{false, true} {
		res := runSrcOpts(t, ModeGIL, src, func(o *Options) {
			o.FillOnceInlineCaches = fillOnce
		})
		if res.Output != "9\n" {
			t.Fatalf("fillOnce=%v: output = %q, want %q", fillOnce, res.Output, "9\n")
		}
	}
}

// TestClassLevelCacheInvalidation: class-object sends (A.new) cache on the
// class object's identity and the same method serial; defining any method
// afterwards must not break warm class-level sites.
func TestClassLevelCacheInvalidation(t *testing.T) {
	src := `class A
  def m
    1
  end
end
a = A.new
r1 = a.m
class A
  def n
    5
  end
end
b = A.new
puts r1 + b.m + b.n
`
	res := runSrcOpts(t, ModeGIL, src, nil)
	if res.Output != "7\n" {
		t.Fatalf("output = %q, want %q", res.Output, "7\n")
	}
}
