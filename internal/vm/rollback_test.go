package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"htmgil/internal/htm"
)

// TestRollbackEquivalence is the central speculation property: any program
// must produce identical output under HTM (with its aborts, rollbacks and
// GIL fallbacks) as under the plain GIL, as long as it is properly
// synchronized. The programs below stress every category of private state
// the undo log protects: operand stacks, host locals, frame pushes/pops,
// plus the memory-resident state that rolls back with transactions.
func TestRollbackEquivalence(t *testing.T) {
	programs := []string{
		// Deep recursion with mid-frame aborts likely (allocation-heavy).
		`
def deep(n, acc)
  if n == 0
    acc
  else
    deep(n - 1, acc + n * 1.0)
  end
end
m = Mutex.new
out = Array.new(6, 0.0)
threads = []
i = 0
while i < 6
  threads << Thread.new(i) do |me|
    j = 0
    s = 0.0
    while j < 40
      s += deep(12, 0.0)
      j += 1
    end
    out[me] = s
  end
  i += 1
end
threads.each do |th| th.join end
puts out.join(",")
`,
		// Hash growth and string building across yield points.
		`
results = Array.new(4, "")
threads = []
i = 0
while i < 4
  threads << Thread.new(i) do |me|
    h = {}
    j = 0
    while j < 120
      h["k#{j}"] = j * me
      j += 1
    end
    results[me] = "#{h.size}:#{h["k7"]}"
  end
  i += 1
end
threads.each do |th| th.join end
puts results.join(" ")
`,
		// Ivar mutation through accessors under contention on the class.
		`
class Acc
  attr_accessor :v
  def initialize
    @v = 0
  end
  def bump(n)
    @v = @v + n
    self
  end
end
outs = Array.new(5, 0)
threads = []
i = 0
while i < 5
  threads << Thread.new(i) do |me|
    a = Acc.new
    j = 0
    while j < 200
      a.bump(1)
      j += 1
    end
    outs[me] = a.v
  end
  i += 1
end
threads.each do |th| th.join end
puts outs.join(",")
`,
	}
	for pi, src := range programs {
		var want string
		for _, mode := range []Mode{ModeGIL, ModeHTM, ModeFGL, ModeIdeal} {
			res, _ := runSrc(t, mode, src)
			if mode == ModeGIL {
				want = res.Output
				continue
			}
			if res.Output != want {
				t.Fatalf("program %d: mode %v output %q != GIL %q", pi, mode, res.Output, want)
			}
		}
	}
}

// TestRollbackEquivalenceProperty generates random arithmetic thread
// bodies and checks GIL/HTM output equivalence.
func TestRollbackEquivalenceProperty(t *testing.T) {
	f := func(a, b, c uint8, iters uint8) bool {
		n := int(iters%50) + 20
		src := `
outs = Array.new(3, 0)
threads = []
i = 0
while i < 3
  threads << Thread.new(i) do |me|
    x = ` + testItoa(int(a)) + `
    j = 0
    while j < ` + testItoa(n) + `
      x = x * ` + testItoa(int(b%7)+2) + ` % 10007 + ` + testItoa(int(c)) + ` - me
      j += 1
    end
    outs[me] = x
  end
  i += 1
end
threads.each do |th| th.join end
puts outs.join(",")
`
		r1, _ := runSrc(t, ModeGIL, src)
		r2, _ := runSrc(t, ModeHTM, src)
		return r1.Output == r2.Output && strings.Count(r1.Output, ",") == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestRecycledThreadStructsStayCoherent spawns far more threads over a
// run's lifetime than there are contexts, exercising struct recycling.
func TestRecycledThreadStructsStayCoherent(t *testing.T) {
	src := `
total = 0
m = Mutex.new
wave = 0
while wave < 10
  threads = []
  i = 0
  while i < 20
    threads << Thread.new(i) do |me|
      local = [me, me * 2, me * 3].sum
      m.synchronize do
        total += local
      end
    end
    i += 1
  end
  threads.each do |th| th.join end
  wave += 1
end
puts total
`
	// sum over i of 6i for i in 0..19 = 6*190 = 1140; times 10 waves.
	for _, mode := range []Mode{ModeGIL, ModeHTM} {
		expectOut(t, mode, src, "11400\n")
	}
}

func testItoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestXeonProfileRuns exercises the SMT machine end to end.
func TestXeonProfileRuns(t *testing.T) {
	opt := DefaultOptions(htm.XeonE3(), ModeHTM)
	v := New(opt)
	iseq, err := v.CompileSource(`
threads = []
i = 0
while i < 8
  threads << Thread.new do
    x = 0.0
    j = 0
    while j < 500
      x += j * 1.5
      j += 1
    end
  end
  i += 1
end
threads.each do |th| th.join end
puts "done"
`, "xeon")
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "done") {
		t.Fatalf("output = %q", res.Output)
	}
}
