package vm

import (
	"sort"
	"strconv"
	"strings"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
)

// StateFingerprint digests the observable final state of a finished run:
// the program output plus the deep value of every global variable, read
// side-effect-free through simmem.Peek. Two runs that end in equivalent
// states produce identical fingerprints regardless of the schedule that
// got them there — which is exactly what the serializability oracle of
// internal/explore compares. Heap slot indices and addresses never enter
// the digest (they vary with allocation order between equivalent runs).
func (v *VM) StateFingerprint() string {
	var b strings.Builder
	b.WriteString("out:")
	b.WriteString(v.Output())
	names := make([]string, 0, len(v.globals))
	addrs := make(map[string]simmem.Addr, len(v.globals))
	for sym, addr := range v.globals {
		n := v.Syms.Name(sym)
		names = append(names, n)
		addrs[n] = addr
	}
	sort.Strings(names)
	for _, n := range names {
		b.WriteString("|")
		b.WriteString(n)
		b.WriteString("=")
		v.encodeValue(&b, object.FromWord(v.Mem.Peek(addrs[n])), 0)
	}
	return b.String()
}

// encodeValue writes a schedule-independent encoding of val. Recursion is
// bounded: cyclic or very deep structures degrade to a type marker, which
// is still deterministic (both sides of an oracle comparison degrade the
// same way).
func (v *VM) encodeValue(b *strings.Builder, val object.Value, depth int) {
	if depth > 6 {
		b.WriteString("<deep>")
		return
	}
	switch val.Kind {
	case object.KNil:
		b.WriteString("nil")
	case object.KTrue:
		b.WriteString("true")
	case object.KFalse:
		b.WriteString("false")
	case object.KFixnum:
		b.WriteString(strconv.FormatInt(val.Fix, 10))
	case object.KSymbol:
		b.WriteString(":")
		b.WriteString(v.Syms.Name(object.SymID(val.Fix)))
	case object.KRef:
		switch val.Ref.Type {
		case object.TString:
			b.WriteString(strconv.Quote(val.Ref.Str))
		case object.TFloat:
			bits := v.Mem.Peek(val.Ref.AddrOf(object.SlotA)).Bits
			b.WriteString("f")
			b.WriteString(strconv.FormatUint(bits, 16))
		case object.TArray:
			n := int64(v.Mem.Peek(val.Ref.AddrOf(object.SlotB)).Bits)
			base := simmem.Addr(v.Mem.Peek(val.Ref.AddrOf(object.SlotA)).Bits)
			b.WriteString("[")
			const maxElems = 64
			for i := int64(0); i < n && i < maxElems; i++ {
				if i > 0 {
					b.WriteString(",")
				}
				el := object.FromWord(v.Mem.Peek(base + simmem.Addr(i*simmem.WordBytes)))
				v.encodeValue(b, el, depth+1)
			}
			if n > maxElems {
				b.WriteString(",...")
			}
			b.WriteString("]")
		case object.TClass:
			b.WriteString("class:")
			b.WriteString(val.Ref.Cls.Name)
		default:
			// Other heap objects: identity-free type marker. The explorer's
			// programs keep their observable state in immediates, strings
			// and arrays, so this branch is a safety net, not a lossy path
			// on checked state.
			b.WriteString("#<")
			if val.Ref.Class != nil {
				b.WriteString(val.Ref.Class.Name)
			}
			b.WriteString(">")
		}
	}
}
