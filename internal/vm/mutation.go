//go:build mutation

package vm

// Seeded bugs used to validate the schedule explorer (internal/explore);
// see mutation_off.go. Under the mutation build tag they are variables the
// validation tests flip one at a time.
var (
	MutSkipRollback = false
	MutUnguardedIC  = false
)
