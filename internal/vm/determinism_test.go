package vm

import (
	"bytes"
	"fmt"
	"testing"

	"htmgil/internal/htm"
)

// detProgram exercises the sources of nondeterminism the simulator must not
// have: thread scheduling, GIL handoff, transactional conflicts and the
// random interrupt/abort models.
const detProgram = `
counts = Array.new(6, 0)
m = Mutex.new
total = 0
threads = []
i = 0
while i < 6
  threads << Thread.new(i) do |me|
    local = 0
    j = 1
    while j <= 400
      local += j * (me + 1)
      j += 1
    end
    counts[me] = local
    m.synchronize do
      total += local
    end
  end
  i += 1
end
threads.each do |t|
  t.join
end
puts "total = #{total}"
`

// detRun executes the program once and returns the full JSONL trace plus
// the headline statistics.
func detRun(t *testing.T, prof *htm.Profile, mode Mode, seed int64) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	opt := DefaultOptions(prof, mode)
	opt.Seed = seed
	opt.Trace = NewTraceRecorder(NewTraceJSONL(&buf))
	v := New(opt)
	iseq, err := v.CompileSource(detProgram, "det")
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	summary := fmt.Sprintf("out=%q cycles=%d bytecodes=%d yields=%d gcs=%d fallbacks=%d adjustments=%d",
		res.Output, res.Cycles, st.Bytecodes, st.Yields, st.GCs, st.GILFallbacks, st.Adjustments)
	if st.HTM != nil {
		summary += fmt.Sprintf(" begins=%d commits=%d aborts=%d", st.HTM.Begins, st.HTM.Commits, st.HTM.Aborts)
	}
	return buf.String(), summary
}

// TestDeterministicReplay re-runs the same seeded program and demands
// byte-identical traces and statistics — the property every experiment in
// EXPERIMENTS.md and the trace tooling itself depend on.
func TestDeterministicReplay(t *testing.T) {
	cases := []struct {
		name string
		prof *htm.Profile
		mode Mode
	}{
		{"htm-zec12", htm.ZEC12(), ModeHTM},
		{"htm-xeon", htm.XeonE3(), ModeHTM},
		{"gil-zec12", htm.ZEC12(), ModeGIL},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			trace1, stats1 := detRun(t, tc.prof, tc.mode, 7)
			trace2, stats2 := detRun(t, tc.prof, tc.mode, 7)
			if stats1 != stats2 {
				t.Fatalf("stats differ across identical runs:\n  %s\n  %s", stats1, stats2)
			}
			if trace1 != trace2 {
				t.Fatalf("traces differ across identical runs (lens %d vs %d)", len(trace1), len(trace2))
			}
			if len(trace1) == 0 {
				t.Fatal("trace is empty")
			}
		})
	}
}

// TestSeedChangesSchedule is the control: with the interrupt model active a
// different seed must actually change the interleaving, proving the replay
// test is not vacuously comparing constant output.
func TestSeedChangesSchedule(t *testing.T) {
	// Xeon's interrupt and learning models consume randomness heavily.
	trace1, _ := detRun(t, htm.XeonE3(), ModeHTM, 7)
	trace2, _ := detRun(t, htm.XeonE3(), ModeHTM, 8)
	if trace1 == trace2 {
		t.Fatal("different seeds produced identical traces; determinism test is vacuous")
	}
}
