//go:build !mutation

package vm

// Seeded bugs used to validate the schedule explorer (internal/explore).
// In normal builds they are false constants, so every guarded branch
// compiles away; `go test -tags mutation` turns them into settable
// variables.
const (
	// MutSkipRollback makes rollbackPrivate forget stack/local value undos.
	MutSkipRollback = false
	// MutUnguardedIC makes HTM-mode instance sends trust the inline cache
	// without comparing its guard.
	MutUnguardedIC = false
)
