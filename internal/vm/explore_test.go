package vm_test

// Schedule-exploration entry points for the VM: these tests drive the
// systematic explorer (internal/explore) over the programs that stress
// VM-owned state — transaction rollback of interpreter-private frames and
// the shared inline-cache site — so a regression in thread.go/step.go
// surfaces here as a serializability violation, not only in the explore
// package's own belt.

import (
	"testing"

	"htmgil/internal/explore"
)

func exploreClean(t *testing.T, program string, bound int) {
	t.Helper()
	p := explore.ProgramByName(program)
	if p == nil {
		t.Fatalf("unknown explorer program %q", program)
	}
	res, err := explore.Run(explore.Config{Program: p, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s: %s", program, v.Violation)
	}
	if res.Truncated {
		t.Errorf("%s: exploration truncated (%d schedules)", program, res.Schedules())
	}
}

// TestExploreRollbackPrivateState explores the program whose loop counter
// lives in a method frame: only the undo log protects it across aborts.
func TestExploreRollbackPrivateState(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration is slow")
	}
	exploreClean(t, "localcounter", 2)
}

// TestExploreInlineCacheRaces explores two receiver classes racing through
// one shared inline-cache call site.
func TestExploreInlineCacheRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration is slow")
	}
	exploreClean(t, "polymorphic", 2)
}
