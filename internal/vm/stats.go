package vm

import (
	"htmgil/internal/core"
	"htmgil/internal/gil"
	"htmgil/internal/htm"
	"htmgil/internal/occ"
	"htmgil/internal/simmem"
)

// CycleCat is a cycle-breakdown category, matching Figure 8 of the paper.
type CycleCat int

// Breakdown categories.
const (
	CatBeginEnd  CycleCat = iota // transaction begin/end instruction overhead
	CatTxSuccess                 // cycles inside committed transactions
	CatTxAborted                 // cycles wasted in aborted transactions (incl. penalty)
	CatGILHeld                   // cycles executing while holding the GIL
	CatGILWait                   // cycles waiting for the GIL (spin or acquire)
	CatIOWait                    // cycles blocked on I/O or synchronization
	CatOther                     // non-critical-section execution (FGL/Ideal modes)
	NumCats
)

// String names the category.
func (c CycleCat) String() string {
	switch c {
	case CatBeginEnd:
		return "tx-begin/end"
	case CatTxSuccess:
		return "successful-tx"
	case CatTxAborted:
		return "aborted-tx"
	case CatGILHeld:
		return "gil-held"
	case CatGILWait:
		return "gil-wait"
	case CatIOWait:
		return "io-wait"
	default:
		return "other"
	}
}

// ThreadStats is per-Ruby-thread accounting.
type ThreadStats struct {
	Cycles    [NumCats]int64
	Bytecodes uint64
	Yields    uint64 // transaction yields / GIL yields taken
}

// Stats aggregates a whole run.
type Stats struct {
	Threads   int
	Cycles    [NumCats]int64
	Bytecodes uint64
	Yields    uint64

	HTM *htm.Stats // nil outside HTM mode
	OCC *occ.Stats // nil unless the policy uses the software tier

	// GILFallbacks counts critical sections that fell back to the GIL
	// instead of committing transactionally (HTM mode only).
	GILFallbacks uint64

	// Adjustments counts transaction-length attenuations (HTM-dynamic only).
	Adjustments uint64

	GCs      uint64
	GCCycles int64

	// ConflictRegions attributes conflict aborts to memory regions
	// (freelist, malloc, ic, threadstruct, gil, heap data, ...).
	ConflictRegions map[string]uint64

	// ConflictWriterRegions counts, per region, the conflict dooms whose
	// victim held the conflicting line dirty (write-set side of the
	// conflict) rather than merely in its read set.
	ConflictWriterRegions map[string]uint64

	// AbortCauses counts aborts by cause.
	AbortCauses map[simmem.AbortCause]uint64

	// LengthHistogram samples the per-yield-point transaction lengths at
	// the end of the run (HTM-dynamic only): length -> yield-point count.
	LengthHistogram map[int32]int

	// FaultCounts counts injected faults by channel (nil on clean runs).
	FaultCounts map[string]uint64

	// BreakerTransitions is the elision circuit breaker's state history
	// (nil unless Options.Breaker); BreakerOpens counts its trips.
	BreakerTransitions []core.BreakerTransition
	BreakerOpens       uint64

	// Degradations counts watchdog degradation events by reason (nil
	// unless Options.Watchdog raised any).
	Degradations map[string]uint64

	// Sharded-GIL mode (Options.Shards > 1; nil/zero otherwise).
	// RootGIL snapshots the root lock's occupancy for comparison against
	// the shard locks, ShardGIL holds each shard lock's
	// acquisition/hold statistics,
	// ShardFallbacks the fallbacks routed to each shard's GIL, and
	// CrossShardLeaks the statements that touched a shard other than the
	// one whose lock they held (benign; see DESIGN.md §13).
	RootGIL         gil.Stats
	ShardGIL        []gil.Stats
	ShardFallbacks  []uint64
	CrossShardLeaks uint64
}

// AbortRatio returns aborted transactions over started transactions.
func (s *Stats) AbortRatio() float64 {
	if s.HTM == nil {
		return 0
	}
	return s.HTM.AbortRatio()
}

// TotalCycles sums all categories.
func (s *Stats) TotalCycles() int64 {
	var t int64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}
