// Package vm is the mini-Ruby virtual machine: a stack-based bytecode
// interpreter in the style of CRuby 1.9 whose every piece of shared state
// lives in simulated memory, executed by simulated threads on the
// discrete-event machine of internal/sched.
//
// The VM supports four execution modes:
//
//   - ModeGIL: the original CRuby design. One Giant VM Lock serializes all
//     interpretation; a timer thread flags the runner every TimerInterval
//     cycles, making it yield at the next yield point.
//   - ModeHTM: the paper's design. Bytecode runs inside hardware
//     transactions bounded by yield points, with the GIL retained as a
//     fallback (internal/core implements Figures 1-3).
//   - ModeFGL: a JRuby-style runtime: no GIL, fine-grained safepoints for
//     GC, unsynchronized core library (used for Figure 9).
//   - ModeIdeal: no GIL, no HTM, per-thread allocation — exposes only the
//     application's inherent scalability (the paper's Java NPB stand-in).
package vm

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"htmgil/internal/choice"
	"htmgil/internal/compile"
	"htmgil/internal/core"
	"htmgil/internal/fault"
	"htmgil/internal/gil"
	"htmgil/internal/heap"
	"htmgil/internal/htm"
	"htmgil/internal/object"
	"htmgil/internal/occ"
	"htmgil/internal/policy"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// Mode selects the concurrency design.
type Mode uint8

// Execution modes.
const (
	ModeGIL Mode = iota
	ModeHTM
	ModeFGL
	ModeIdeal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGIL:
		return "GIL"
	case ModeHTM:
		return "HTM"
	case ModeFGL:
		return "FGL"
	default:
		return "Ideal"
	}
}

// Options configures a VM run. The zero value is not valid; use
// DefaultOptions and override.
type Options struct {
	Mode Mode
	Prof *htm.Profile

	// TxLength: 0 selects the paper's dynamic per-yield-point adjustment;
	// a positive value runs fixed-length transactions (HTM-1/16/256).
	TxLength int32

	// Policy selects the contention-management policy by its
	// internal/policy registry name (ModeHTM only). Empty keeps the
	// historical TxLength semantics: fixed-N when TxLength > 0,
	// paper-dynamic otherwise. New panics on an unknown name; callers
	// taking user input should validate with policy.New first.
	Policy string

	// ExtendedYieldPoints enables the paper's additional yield points
	// (Section 4.2). Without them only back-edges and leaves yield.
	ExtendedYieldPoints bool

	// Shards > 1 enables sharded-GIL mode (ModeHTM only, max 64): the
	// keyspace of the datastore extension is partitioned into this many
	// shards, each with its own fallback GIL, and critical sections whose
	// aborted attempt touched exactly one shard serialize on that shard's
	// lock instead of the root GIL. See internal/gil.Sharded and DESIGN.md
	// §13.
	Shards int

	// Conflict-removal toggles (Section 4.4).
	GlobalVarsToTLS      bool // running-thread globals moved to TLS
	ThreadLocalFreeLists bool // per-thread object free lists
	FillOnceInlineCaches bool // method inline caches filled only once
	IvarTableGuard       bool // ivar caches guarded by ivar-table identity
	PaddedThreadStructs  bool // thread structs in dedicated cache lines

	HeapSlots         int // RVALUE count (RUBY_HEAP_MIN_SLOTS analogue)
	ArenaBytes        int
	ThreadLocalArenas bool // malloc HEAPPOOLS / Linux behaviour

	TimerInterval int64 // GIL timer-thread interval in cycles
	Seed          int64
	MaxCycles     int64 // stop the run after this much virtual time (0 = off)

	Out io.Writer // program output (nil = discard)

	// Trace, when non-nil, receives structured events from every layer of
	// the machine (TLE protocol, GIL, simulated memory, scheduler, GC).
	// Nil (the default) keeps all emit sites on their nil-check fast path.
	Trace *trace.Recorder

	// Faults, when non-nil and armed, enables the deterministic
	// fault-injection harness (internal/fault): spurious HTM aborts,
	// capacity jitter, GIL timer jitter and scheduler wake jitter are
	// wired here; network faults reach internal/netsim via VM.Faults.
	Faults *fault.Spec

	// Breaker enables the elision circuit breaker (ModeHTM): sustained
	// fallback storms open it and route critical sections straight to the
	// GIL until half-open probes commit again. BreakerConfig overrides the
	// default thresholds when any field is non-zero.
	Breaker       bool
	BreakerConfig core.BreakerConfig

	// Watchdog enables the livelock/starvation watchdog, which observes
	// the trace stream and raises structured degradation events. It needs
	// a Trace recorder; when Trace is nil one is created internally.
	Watchdog       bool
	WatchdogConfig core.WatchdogConfig

	// Deadlines, when non-nil, arms request-deadline propagation into the
	// policy seam: the contention policy is wrapped in a DeadlineGate that
	// downgrades critical sections within DeadlineSlack cycles of their
	// request's deadline from speculative retry straight to the GIL. The
	// source is typically a resilience.DeadlineTable maintained by the
	// netsim accept/read path.
	Deadlines     core.DeadlineSource
	DeadlineSlack int64 // 0 = policy.NewDeadlineGate's default

	// Chooser, when non-nil, hands every nondeterministic choice point of
	// the stack — thread dispatch, timer firing, GIL yield and hand-off,
	// conflict-winner selection — to the systematic schedule explorer
	// (internal/explore). Index 0 at every point reproduces the vanilla
	// deterministic schedule.
	Chooser choice.Chooser
}

// DefaultOptions returns the paper's optimized configuration for a machine.
func DefaultOptions(prof *htm.Profile, mode Mode) Options {
	return Options{
		Mode:                 mode,
		Prof:                 prof,
		TxLength:             0,
		ExtendedYieldPoints:  true,
		GlobalVarsToTLS:      true,
		ThreadLocalFreeLists: true,
		FillOnceInlineCaches: true,
		IvarTableGuard:       true,
		PaddedThreadStructs:  true,
		HeapSlots:            200_000,
		ArenaBytes:           96 << 20,
		ThreadLocalArenas:    true,
		TimerInterval:        250_000,
		Seed:                 1,
		MaxCycles:            60_000_000_000,
	}
}

// maxContexts is the maximum number of concurrently live Ruby threads.
const maxContexts = simmem.MaxContexts

// threadStructWords is the size of one simulated thread structure.
const threadStructWords = 16

// Thread-structure word offsets.
const (
	tsYieldCounter = 0
	tsTLHead       = 1
	tsTLCount      = 2
	tsArena        = 3 // heap.ThreadArenaWords words
)

// VM is one configured mini-Ruby virtual machine instance.
type VM struct {
	Opt     Options
	Mem     *simmem.Memory
	Engine  *sched.Engine
	GIL     *gil.GIL
	Sharded *gil.Sharded // nil unless Options.Shards > 1 (ModeHTM)
	Elision *core.Elision
	Heap    *heap.Heap
	Syms    *object.SymTable
	YPs     *compile.YPAlloc
	Comp    *compile.Compiler
	Costs   Costs

	consts  map[object.SymID]object.Value
	globals map[object.SymID]simmem.Addr

	// Core classes.
	ObjectClass *object.RClass
	ClassClass  *object.RClass
	classes     []*object.RClass // all classes, for GC cvar roots

	// Well-known class objects by value kind / RType.
	kindClass [8]*object.RClass
	typeClass [32]*object.RClass

	icBases map[*compile.ISeq]simmem.Addr
	floats  map[*compile.ISeq][]object.Value
	pinned  []*object.RObject

	// methodSerial is the VM-wide method-state generation, bumped by every
	// runtime method (re)definition. Inline-cache guard words store the
	// serial they were filled under, so a redefinition invalidates every
	// cache at once (CRuby's global method-state scheme).
	methodSerial uint64

	globalsRegion simmem.Addr
	globalsUsed   int
	curThreadAddr simmem.Addr // running-thread global (conflict source)

	// Faults is the live fault injector (nil on clean runs).
	Faults *fault.Injector
	// Watchdog is the live degradation watchdog (nil unless enabled).
	Watchdog *core.Watchdog

	ctxPool           []int // free simmem context ids
	htmCtxs           [maxContexts]*htm.Context
	threadStructsBase simmem.Addr
	threads           []*RThread // live Ruby threads
	liveApp           int

	stats    Stats
	fatalErr error
	output   strings.Builder

	// gc safepoint machinery (FGL/Ideal modes)
	gcRequested bool
	gcWaiters   []*RThread

	// extension hook: extra GC marking for native payloads (db rows, ...)
	extraTraverse func(o *object.RObject, mark func(*object.RObject))
	extraRoots    []func(mark func(*object.RObject))
}

// New creates a VM.
func New(opt Options) *VM {
	if opt.Prof == nil {
		panic("vm: Options.Prof required")
	}
	if opt.HeapSlots == 0 {
		opt.HeapSlots = 200_000
	}
	if opt.ArenaBytes == 0 {
		opt.ArenaBytes = 96 << 20
	}
	if opt.TimerInterval == 0 {
		opt.TimerInterval = 250_000
	}
	v := &VM{
		Opt:     opt,
		Syms:    object.NewSymTable(),
		YPs:     &compile.YPAlloc{},
		Costs:   DefaultCosts(),
		consts:  make(map[object.SymID]object.Value),
		globals: make(map[object.SymID]simmem.Addr),
		icBases: make(map[*compile.ISeq]simmem.Addr),
		floats:  make(map[*compile.ISeq][]object.Value),
	}
	v.Comp = compile.New(v.Syms, v.YPs)
	v.Mem = simmem.NewMemory(simmem.Config{LineBytes: opt.Prof.LineBytes}, maxContexts)
	v.Engine = sched.NewEngine(sched.Config{
		HWThreads:  opt.Prof.HWThreads(),
		SMTWays:    opt.Prof.SMTWays,
		SMTPenalty: 1.9,
	})
	v.GIL = gil.New(v.Mem, v.Engine, gil.DefaultCosts())

	hcfg := heap.Config{
		Slots:                opt.HeapSlots,
		ArenaBytes:           opt.ArenaBytes,
		ThreadLocalFreeLists: opt.ThreadLocalFreeLists || opt.Mode == ModeFGL || opt.Mode == ModeIdeal,
		TLBatch:              256,
		ThreadLocalArenas:    opt.ThreadLocalArenas || opt.Mode == ModeFGL || opt.Mode == ModeIdeal,
	}
	if opt.Mode == ModeIdeal {
		// Per-thread heaps: refills so large the global list is touched
		// a handful of times per run.
		hcfg.TLBatch = opt.HeapSlots / 16
	}
	v.Heap = heap.New(v.Mem, hcfg)

	v.globalsRegion = v.Mem.Reserve("globals", 4096)
	v.curThreadAddr = v.Mem.Reserve("curthread-global", simmem.WordBytes)

	for i := 0; i < maxContexts; i++ {
		v.ctxPool = append(v.ctxPool, maxContexts-1-i) // pop from the end: 0 first
	}

	pol, err := policy.FromOptions(opt.Policy, opt.Prof, opt.TxLength)
	if err != nil {
		panic(err.Error())
	}
	if opt.Deadlines != nil {
		pol = policy.NewDeadlineGate(pol, opt.DeadlineSlack)
	}
	v.Elision = core.NewWithPolicy(pol, v.GIL, v.Engine)
	v.Elision.Deadlines = opt.Deadlines
	v.Elision.LiveAppThreads = func() int { return v.liveApp }
	if opt.Shards > 1 && opt.Mode == ModeHTM {
		v.Sharded = gil.NewSharded(v.GIL, opt.Shards)
		for _, g := range v.Sharded.Shards {
			// Shard locks inherit the root's hazard tracking: their holders
			// publish writes non-transactionally too.
			g.HazardTrack = v.GIL.HazardTrack
		}
		v.Elision.AttachSharded(v.Sharded)
	}
	if policy.UsesOCCTier(pol) {
		// The policy routes sections into the software-transaction tier:
		// create its runtime (reserving the commit-sequence word the
		// hardware contexts subscribe to).
		v.Elision.OCCRT = occ.NewRuntime(v.Mem)
	}

	if opt.Watchdog && opt.Trace == nil {
		// The watchdog observes the event stream; give it one even when
		// the caller did not ask for tracing.
		opt.Trace = trace.NewRecorder()
		v.Opt.Trace = opt.Trace
	}

	if opt.Trace != nil {
		v.Mem.Tracer = opt.Trace
		v.Mem.Clock = v.Engine.Now
		v.Engine.Tracer = opt.Trace
		v.GIL.Tracer = opt.Trace
		v.Elision.Tracer = opt.Trace
		if v.Sharded != nil {
			for _, g := range v.Sharded.Shards {
				g.Tracer = opt.Trace
			}
		}
	}

	if opt.Breaker {
		v.Elision.Breaker = core.NewBreaker(opt.BreakerConfig)
		v.Elision.Breaker.Tracer = opt.Trace
	}
	if opt.Watchdog {
		v.Watchdog = core.NewWatchdog(opt.WatchdogConfig)
		v.Watchdog.AttachTo(opt.Trace)
	}
	if v.Faults = fault.NewInjector(opt.Faults, opt.Seed, opt.Trace); v.Faults != nil {
		v.GIL.TimerJitter = v.Faults.TimerInterval
		v.Engine.WakeJitter = v.Faults.WakeDelay
	}

	if opt.Chooser != nil {
		v.Engine.Chooser = opt.Chooser
		v.GIL.Chooser = opt.Chooser
		v.Mem.Chooser = opt.Chooser
		if v.Sharded != nil {
			for _, g := range v.Sharded.Shards {
				g.Chooser = opt.Chooser
			}
		}
	}

	v.stats.ConflictRegions = make(map[string]uint64)
	v.stats.ConflictWriterRegions = make(map[string]uint64)
	v.stats.AbortCauses = make(map[simmem.AbortCause]uint64)
	v.stats.LengthHistogram = make(map[int32]int)

	v.bootstrap()
	return v
}

// fail records a fatal interpreter error and stops the machine.
func (v *VM) fail(err error) {
	if v.fatalErr == nil {
		v.fatalErr = err
	}
	v.Engine.Stop()
}

// Output returns everything the program printed.
func (v *VM) Output() string { return v.output.String() }

// writeOut emits program output.
func (v *VM) writeOut(s string) {
	v.output.WriteString(s)
	if v.Opt.Out != nil {
		io.WriteString(v.Opt.Out, s)
	}
}

// DefineClass creates (or reopens) a class known under a constant.
func (v *VM) DefineClass(name string, super *object.RClass) *object.RClass {
	sym := v.Syms.Intern(name)
	if existing, ok := v.consts[sym]; ok && existing.Kind == object.KRef && existing.Ref.Type == object.TClass {
		return existing.Ref.Cls
	}
	if super == nil && v.ObjectClass != nil {
		super = v.ObjectClass
	}
	cls := &object.RClass{
		Name:        name,
		Super:       super,
		Methods:     map[object.SymID]*object.Method{},
		IvarIdx:     map[object.SymID]int{},
		CVarIdx:     map[object.SymID]int{},
		IvarTableID: int32(len(v.classes) + 1),
	}
	cls.CVarBase = v.Mem.Reserve("cvars", 32*simmem.WordBytes)
	// The class object itself lives outside the collected heap.
	obj := &object.RObject{Type: object.TClass, Class: v.ClassClass, Cls: cls, Index: -1}
	obj.Slot = v.Mem.Reserve("classobj", object.RVALUEBytes)
	cls.Obj = obj
	v.consts[sym] = object.RefVal(obj)
	v.classes = append(v.classes, cls)
	return cls
}

// NativeMethod is the payload of a native (C-extension-style) method.
type NativeMethod struct {
	Fn NativeFn
	// Blocking marks methods that may park the thread or perform I/O:
	// they are restricted operations inside transactions (the transaction
	// aborts and execution falls back to the GIL).
	Blocking bool
	// Cycles is the base cost charged for the call.
	Cycles int64
}

// NativeFn implements a native method. It may return ErrBlocked (via
// th.blockNative) to park the thread; the VM re-invokes it after wake-up.
type NativeFn func(th *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error)

// DefineNative installs a native instance method on a class.
func (v *VM) DefineNative(cls *object.RClass, name string, arity int, blocking bool, fn NativeFn) {
	sym := v.Syms.Intern(name)
	cls.Methods[sym] = &object.Method{
		Name:   sym,
		Arity:  arity,
		Native: &NativeMethod{Fn: fn, Blocking: blocking, Cycles: DefaultCosts().NativeBase},
	}
}

// statics returns the singleton-method table of a class, stored on the
// class object's Native field.
func statics(cls *object.RClass) map[object.SymID]*object.Method {
	m, _ := cls.Obj.Native.(map[object.SymID]*object.Method)
	if m == nil {
		m = map[object.SymID]*object.Method{}
		cls.Obj.Native = m
	}
	return m
}

// DefineStatic installs a native class-level method (Thread.new, Math.sqrt).
func (v *VM) DefineStatic(cls *object.RClass, name string, arity int, blocking bool, fn NativeFn) {
	sym := v.Syms.Intern(name)
	statics(cls)[sym] = &object.Method{
		Name:   sym,
		Arity:  arity,
		Native: &NativeMethod{Fn: fn, Blocking: blocking, Cycles: DefaultCosts().NativeBase},
	}
}

// SetConst binds a constant.
func (v *VM) SetConst(name string, val object.Value) {
	v.consts[v.Syms.Intern(name)] = val
}

// Const reads a constant.
func (v *VM) Const(name string) (object.Value, bool) {
	val, ok := v.consts[v.Syms.Intern(name)]
	return val, ok
}

// globalAddr returns (allocating on demand) the simulated word of $name.
func (v *VM) globalAddr(sym object.SymID) simmem.Addr {
	if a, ok := v.globals[sym]; ok {
		return a
	}
	a := v.globalsRegion + simmem.Addr(v.globalsUsed*simmem.WordBytes)
	v.globalsUsed++
	if v.globalsUsed*simmem.WordBytes >= 4096 {
		v.fail(errors.New("vm: too many global variables"))
	}
	v.globals[sym] = a
	return a
}

// classOf returns the class used for method dispatch on v.
func (v *VM) classOf(val object.Value) *object.RClass {
	switch val.Kind {
	case object.KRef:
		if val.Ref.Type == object.TClass {
			return v.ClassClass
		}
		return val.Ref.Class
	default:
		return v.kindClass[val.Kind]
	}
}

// materializeISeq assigns inline-cache storage and literal float objects to
// an iseq tree (load time, outside any transaction).
func (v *VM) materializeISeq(iseq *compile.ISeq) error {
	if _, done := v.icBases[iseq]; done {
		return nil
	}
	n := iseq.NumICs
	if n == 0 {
		n = 1
	}
	v.icBases[iseq] = v.Mem.Reserve("ic", n*2*simmem.WordBytes)
	if len(iseq.Floats) > 0 {
		vals := make([]object.Value, len(iseq.Floats))
		for i, fl := range iseq.Floats {
			o, err := v.Heap.AllocObject(v.Mem, heap.ThreadSlots{}, object.TFloat, v.typeClass[object.TFloat])
			if err != nil {
				return fmt.Errorf("vm: allocating literal float: %w", err)
			}
			v.Mem.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: floatBits(fl)})
			vals[i] = object.RefVal(o)
			v.pinned = append(v.pinned, o)
		}
		v.floats[iseq] = vals
	}
	for _, ch := range iseq.Children {
		if err := v.materializeISeq(ch); err != nil {
			return err
		}
	}
	return nil
}

// icAddr returns the simulated address of inline-cache slot `slot` of iseq.
func (v *VM) icAddr(iseq *compile.ISeq, slot int32) simmem.Addr {
	return v.icBases[iseq] + simmem.Addr(slot)*2*simmem.WordBytes
}

// CompileSource parses, compiles and materializes a program.
func (v *VM) CompileSource(src, name string) (*compile.ISeq, error) {
	iseq, err := v.Comp.CompileSource(src, name)
	if err != nil {
		return nil, err
	}
	if err := v.materializeISeq(iseq); err != nil {
		return nil, err
	}
	return iseq, nil
}

// RunResult summarizes a completed run.
type RunResult struct {
	Cycles int64  // virtual makespan
	Output string // program output
	Stats  *Stats
}

// Run executes a compiled top-level iseq as the main Ruby thread and drives
// the machine until every thread finishes.
func (v *VM) Run(iseq *compile.ISeq) (*RunResult, error) {
	main := v.newRThread(iseq.Name)
	if main == nil {
		return nil, errors.New("vm: no thread contexts available")
	}
	main.pushEntry(iseq, object.RefVal(v.mainObject()), object.Nil, nil)
	main.spawn(0)

	if v.Opt.Mode == ModeGIL {
		v.GIL.StartTimer(v.Opt.TimerInterval, func() bool { return v.liveApp > 0 })
	}
	if v.Opt.MaxCycles > 0 {
		var watchdog func(now int64)
		watchdog = func(now int64) {
			if now >= v.Opt.MaxCycles {
				v.fail(fmt.Errorf("vm: exceeded MaxCycles=%d; threads:%s", v.Opt.MaxCycles, v.DebugThreads()))
				return
			}
			if v.liveApp > 0 {
				v.Engine.At(now+v.Opt.MaxCycles/64, watchdog)
			}
		}
		v.Engine.At(v.Opt.MaxCycles/64, watchdog)
	}

	err := v.Engine.Run()
	if v.fatalErr != nil {
		return nil, v.fatalErr
	}
	if err != nil {
		return nil, err
	}
	return v.finishRun(), nil
}

// finishRun aggregates statistics.
func (v *VM) finishRun() *RunResult {
	s := &v.stats
	s.GCs = v.Heap.Stats.GCs
	s.GCCycles = v.Heap.Stats.GCCycles
	if v.Opt.Mode == ModeHTM {
		s.HTM = htm.NewStats()
		for _, c := range v.htmCtxs {
			if c != nil {
				s.HTM.Add(c.Stats)
			}
		}
		s.GILFallbacks = v.Elision.Fallbacks
		s.Adjustments = v.Elision.Adjustments
		for r, n := range v.Mem.ConflictCounts() {
			s.ConflictRegions[r] += n
		}
		for r, n := range v.Mem.ConflictWriterCounts() {
			s.ConflictWriterRegions[r] += n
		}
		for c, n := range s.HTM.ByCause {
			s.AbortCauses[c] += n
		}
		for _, l := range v.Elision.Lengths() {
			if l > 0 {
				s.LengthHistogram[l]++
			}
		}
		if b := v.Elision.Breaker; b != nil {
			s.BreakerTransitions = append([]core.BreakerTransition(nil), b.Transitions...)
			s.BreakerOpens = b.Opens
		}
		if rt := v.Elision.OCCRT; rt != nil {
			s.OCC = rt.Stats.Clone()
		}
		if v.Sharded != nil {
			s.RootGIL = v.GIL.Stats
			for _, g := range v.Sharded.Shards {
				s.ShardGIL = append(s.ShardGIL, g.Stats)
			}
			s.ShardFallbacks = append([]uint64(nil), v.Elision.ShardFallbacks...)
			s.CrossShardLeaks = v.Elision.CrossShardLeaks
		}
	}
	s.FaultCounts = v.Faults.Counts()
	s.Degradations = v.Watchdog.Counts()
	return &RunResult{
		Cycles: v.Engine.Now(),
		Output: v.output.String(),
		Stats:  s,
	}
}

// mainObject is the toplevel self.
func (v *VM) mainObject() *object.RObject {
	val, ok := v.Const("TOPLEVEL")
	if ok {
		return val.Ref
	}
	o, err := v.Heap.AllocObject(v.Mem, heap.ThreadSlots{}, object.TObject, v.ObjectClass)
	if err != nil {
		panic(err)
	}
	v.pinned = append(v.pinned, o)
	v.SetConst("TOPLEVEL", object.RefVal(o))
	return o
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
