package vm

import "htmgil/internal/compile"

// Costs is the virtual-cycle cost model of the interpreter. The absolute
// numbers are calibrated so that the *ratios* the paper depends on hold:
// bytecode dispatch in CRuby costs on the order of 50–200 cycles, so a
// transaction begin+end pair (~200 cycles) is crippling at length 1 and
// negligible at length 16+ (Section 5.4), and the yield-point check itself
// costs a few percent (Section 5.6 reports 5–14% for the checks plus new
// yield points).
type Costs struct {
	DispatchBase int64 // every bytecode pays this
	YieldCheck   int64 // extra cost on yield-point-flagged bytecodes

	LocalGo     int64 // local access in host frame storage
	LocalEnv    int64 // local access through a heap environment
	IvarHit     int64 // inline-cache hit
	IvarMiss    int64 // hash lookup + cache fill
	SendBase    int64 // method dispatch (plus per-argument cost)
	SendArg     int64
	SendMiss    int64 // method-table walk on inline-cache miss
	NativeBase  int64 // native method invocation overhead
	BlockInvoke int64
	FixnumOp    int64 // fixnum fast path arithmetic
	FloatOp     int64 // float op excluding the boxing allocation
	Alloc       int64 // object allocation fast path
	ArenaAlloc  int64 // buffer allocation
	Aref        int64
	Aset        int64
	Branch      int64
	PutLit      int64
	StrPerWord  int64 // string payload shadow-write per 8 bytes
	HashOp      int64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		DispatchBase: 45,
		YieldCheck:   4,
		LocalGo:      6,
		LocalEnv:     14,
		IvarHit:      18,
		IvarMiss:     90,
		SendBase:     110,
		SendArg:      6,
		SendMiss:     160,
		NativeBase:   60,
		BlockInvoke:  80,
		FixnumOp:     10,
		FloatOp:      22,
		Alloc:        35,
		ArenaAlloc:   40,
		Aref:         16,
		Aset:         18,
		Branch:       5,
		PutLit:       5,
		StrPerWord:   4,
		HashOp:       45,
	}
}

// opBaseCost returns the flat extra cost of an opcode (beyond DispatchBase
// and the dynamic costs added during execution).
func (c *Costs) opBaseCost(op compile.Op) int64 {
	switch op {
	case compile.OpJump, compile.OpBranchIf, compile.OpBranchUnless:
		return c.Branch
	case compile.OpPutNil, compile.OpPutTrue, compile.OpPutFalse,
		compile.OpPutSelf, compile.OpPutInt, compile.OpPutSym,
		compile.OpPutFloat, compile.OpPop, compile.OpDup:
		return c.PutLit
	default:
		return 0
	}
}
