package vm

import (
	"htmgil/internal/choice"
	"htmgil/internal/compile"
	"htmgil/internal/core"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// step executes one scheduling step of the thread: usually one bytecode,
// sometimes a TLE protocol action (begin / abort handling / GIL yield).
func (t *RThread) step(now int64) sched.StepResult {
	v := t.vm
	if v.fatalErr != nil {
		return sched.StepResult{Cycles: 1, Status: sched.Done}
	}
	t.collectWait()

	switch t.resume {
	case rsBeginEntry:
		t.resume = rsDispatch
		return t.doBegin(now)
	case rsBeginResume:
		cycles, out := v.Elision.ResumeBegin(t.tle, t.sth, now)
		return t.afterBegin(cycles, out, now)
	case rsGILWaitOwned:
		// Woken by the GIL handoff: we own the lock — except in sharded
		// mode, where a wake off the drain queue owns nothing and must
		// retry the root acquisition (see gil.Sharded).
		if v.Sharded != nil && !v.GIL.HeldBy(t.sth) {
			cycles, ok := v.Sharded.AcquireRoot(t.sth, now)
			if !ok {
				return sched.StepResult{Cycles: cycles + 1, Status: sched.Blocked}
			}
			t.tle.GILMode = true
			t.acc = v.Mem
			t.resume = t.afterGIL
			return sched.StepResult{Cycles: cycles + 1, Status: sched.Running}
		}
		if v.Opt.Mode == ModeHTM {
			t.tle.GILMode = true
		} else {
			t.holdingGIL = true
		}
		t.acc = v.Mem
		t.resume = t.afterGIL
		return sched.StepResult{Cycles: 1, Status: sched.Running}
	case rsGCPark:
		t.resume = rsDispatch
		return sched.StepResult{Cycles: 1, Status: sched.Running}
	case rsReacquireGIL:
		// Back from a blocking native: take the GIL again (CRuby semantics)
		// and then re-dispatch the native, which consults its saved state.
		// Blocking natives always retake the root GIL — they run
		// interpreter-level synchronization, never a shard section.
		switch v.Opt.Mode {
		case ModeHTM, ModeGIL:
			cycles, ok := t.rootAcquire(now)
			if !ok {
				t.afterGIL = rsNativeRetry
				t.park(CatGILWait, rsGILWaitOwned)
				return sched.StepResult{Cycles: cycles + 2, Status: sched.Blocked}
			}
			if v.Opt.Mode == ModeHTM {
				t.tle.GILMode = true
			} else {
				t.holdingGIL = true
			}
			t.acc = v.Mem
			t.resume = rsDispatch
			return sched.StepResult{Cycles: cycles, Status: sched.Running}
		default:
			t.resume = rsDispatch
			return sched.StepResult{Cycles: 1, Status: sched.Running}
		}
	case rsNativeRetry:
		t.resume = rsDispatch
		return t.dispatch(now)
	case rsFinish:
		return t.finishThread(now)
	}

	// Doomed transactions (either tier) abort at their next instruction
	// boundary.
	if t.txDoomed(now) {
		return t.doAbort(now)
	}
	return t.dispatch(now)
}

// rootAcquire acquires the global (root) GIL, honoring the sharded
// drain/gate protocol when active. ok=false means the thread parked; the
// rsGILWaitOwned resume re-checks ownership and retries as needed.
func (t *RThread) rootAcquire(now int64) (int64, bool) {
	v := t.vm
	if v.Sharded != nil {
		return v.Sharded.AcquireRoot(t.sth, now)
	}
	return v.GIL.BlockingAcquire(t.sth, now)
}

// doBegin opens a critical section at the pending yield point.
func (t *RThread) doBegin(now int64) sched.StepResult {
	v := t.vm
	switch v.Opt.Mode {
	case ModeHTM:
		cycles, out := v.Elision.TransactionBegin(t.tle, t.sth, now, int(t.pendingYP))
		return t.afterBegin(cycles, out, now)
	case ModeGIL:
		cycles, ok := v.GIL.BlockingAcquire(t.sth, now)
		if !ok {
			t.afterGIL = rsDispatch
			t.park(CatGILWait, rsGILWaitOwned)
			return sched.StepResult{Cycles: cycles + 2, Status: sched.Blocked}
		}
		t.holdingGIL = true
		return sched.StepResult{Cycles: cycles, Status: sched.Running}
	default:
		return sched.StepResult{Cycles: 1, Status: sched.Running}
	}
}

// afterBegin handles the outcome of TransactionBegin/ResumeBegin/HandleAbort.
func (t *RThread) afterBegin(cycles int64, out core.Outcome, now int64) sched.StepResult {
	v := t.vm
	t.charge(CatBeginEnd, cycles)
	if out == core.Block {
		t.park(CatGILWait, rsBeginResume)
		return sched.StepResult{Cycles: cycles, Status: sched.Blocked}
	}
	t.resume = rsDispatch
	t.skipYieldOnce = true
	if t.tle.GILMode {
		t.acc = v.Mem
		if !v.Opt.GlobalVarsToTLS {
			// The running-thread global is rewritten on every acquisition.
			v.Mem.Store(v.curThreadAddr, simmem.Word{Bits: uint64(t.ctxID + 1)})
		}
		v.Mem.Store(t.counterAddr, simmem.Word{Bits: uint64(t.tle.ChosenLength)})
	} else if t.tle.OCCMode {
		// Software tier: run over the OCC read/write logs. The same
		// running-thread global and counter stores happen, buffered in
		// the write log like any other speculative write.
		t.acc = t.tle.OCC
		t.checkpoint()
		t.txCycles = 0
		if !v.Opt.GlobalVarsToTLS {
			t.tle.OCC.Store(v.curThreadAddr, simmem.Word{Bits: uint64(t.ctxID + 1)})
		}
		t.tle.OCC.Store(t.counterAddr, simmem.Word{Bits: uint64(t.tle.ChosenLength)})
		if t.tle.OCC.Doomed() {
			return t.doAbort(now)
		}
	} else {
		t.acc = t.hctx.Tx
		t.checkpoint()
		t.txCycles = 0
		if !v.Opt.GlobalVarsToTLS {
			// Original CRuby design: globals pointing at the running thread
			// are written inside every transaction — the paper's worst
			// conflict source (Section 4.4).
			t.hctx.Tx.Store(v.curThreadAddr, simmem.Word{Bits: uint64(t.ctxID + 1)})
		}
		t.hctx.Tx.Store(t.counterAddr, simmem.Word{Bits: uint64(t.tle.ChosenLength)})
		if t.hctx.Doomed(now) {
			// Immediate doom (learning model or GIL race): abort right away.
			return t.doAbort(now)
		}
	}
	return sched.StepResult{Cycles: cycles, Status: sched.Running}
}

// doAbort rolls back and runs the Figure 1 abort path.
func (t *RThread) doAbort(now int64) sched.StepResult {
	v := t.vm
	t.rollbackPrivate()
	t.charge(CatTxAborted, t.txCycles)
	t.txCycles = 0
	cycles, out := v.Elision.HandleAbort(t.tle, t.sth, now)
	t.charge(CatTxAborted, cycles)
	if out == core.Block {
		t.park(CatGILWait, rsBeginResume)
		return sched.StepResult{Cycles: cycles, Status: sched.Blocked}
	}
	// Retried transaction or GIL acquired; re-execute from the checkpoint.
	res := t.afterBegin(0, out, now)
	res.Cycles += cycles
	return res
}

// yieldEnabled reports whether the instruction's yield point is active
// under the current configuration.
func (t *RThread) yieldEnabled(kind compile.YPKind) bool {
	switch t.vm.Opt.Mode {
	case ModeHTM:
		if kind == compile.YPExtended {
			return t.vm.Opt.ExtendedYieldPoints
		}
		return true
	case ModeGIL:
		return kind == compile.YPOriginal
	default:
		// FGL/Ideal use original yield points as GC safepoints.
		return kind == compile.YPOriginal
	}
}

// atYieldPoint runs the per-yield-point protocol. When it returns a
// non-nil result the dispatcher must return it (a transaction ended and/or
// the thread blocked); otherwise execution continues into the instruction.
func (t *RThread) atYieldPoint(in *compile.Instr, now int64) *sched.StepResult {
	v := t.vm
	switch v.Opt.Mode {
	case ModeHTM:
		if v.liveApp <= 1 {
			return nil
		}
		cnt := int64(t.acc.Load(t.counterAddr).Bits)
		cnt--
		if t.txDoomed(now) {
			// The counter access itself may doom the transaction
			// (false sharing on unpadded thread structs).
			r := t.doAbort(now)
			return &r
		}
		if cnt > 0 {
			t.acc.Store(t.counterAddr, simmem.Word{Bits: uint64(cnt)})
			return nil
		}
		// transaction_end + transaction_begin (Figure 2 lines 12-13).
		t.stats.Yields++
		v.stats.Yields++
		endCycles, ok := v.Elision.TransactionEnd(t.tle, t.sth, now)
		if !ok {
			r := t.doAbort(now)
			r.Cycles += endCycles
			return &r
		}
		t.charge(CatBeginEnd, endCycles)
		if !t.tle.GILMode {
			t.charge(CatTxSuccess, t.txCycles)
		}
		t.txCycles = 0
		t.commitPrivate()
		t.acc = v.Mem
		t.pendingYP = in.YP
		r := t.doBegin(now + endCycles)
		r.Cycles += endCycles
		return &r
	case ModeGIL:
		if v.liveApp <= 1 {
			return nil
		}
		if !v.GIL.ConsumeInterrupt(t.sth) {
			// Under exploration, every yield point where another thread is
			// waiting is a choice point: a timer interrupt could have
			// landed exactly here. Index 0 (keep running) matches the
			// unflagged behavior.
			if v.Opt.Chooser == nil || v.GIL.WaiterCount() == 0 ||
				v.Opt.Chooser.Choose(choice.Yield, 2) == 0 {
				return nil
			}
		}
		// Yield the GIL: release, sched_yield, re-acquire.
		t.stats.Yields++
		v.stats.Yields++
		if tr := v.Opt.Trace; tr != nil {
			ev := trace.Ev(now, trace.KindGILYield)
			ev.Thread = t.sth.ID
			tr.Emit(ev)
		}
		rel := v.GIL.Release(t.sth, now)
		t.holdingGIL = false
		cost := rel + v.GIL.CostModel().SchedYield
		c2, ok := v.GIL.BlockingAcquire(t.sth, now+cost)
		if ok {
			t.holdingGIL = true
			return &sched.StepResult{Cycles: cost + c2, Status: sched.Running}
		}
		t.afterGIL = rsDispatch
		t.park(CatGILWait, rsGILWaitOwned)
		return &sched.StepResult{Cycles: cost, Status: sched.Blocked}
	default:
		// FGL/Ideal: GC safepoint.
		if v.gcRequested {
			r := t.parkForGC(now)
			return &r
		}
		return nil
	}
}

// finishThread ends the thread after its last frame returned.
func (t *RThread) finishThread(now int64) sched.StepResult {
	v := t.vm
	var cycles int64
	switch v.Opt.Mode {
	case ModeHTM:
		endCycles, ok := v.Elision.TransactionEnd(t.tle, t.sth, now)
		if !ok {
			return t.doAbort(now)
		}
		cycles += endCycles
		t.charge(CatBeginEnd, endCycles)
		if !t.tle.GILMode {
			t.charge(CatTxSuccess, t.txCycles)
		}
		t.txCycles = 0
		t.commitPrivate()
		t.acc = v.Mem
	case ModeGIL:
		if t.holdingGIL {
			cycles += v.GIL.Release(t.sth, now)
			t.holdingGIL = false
		}
	}
	t.finished = true
	v.liveApp--
	// Drop any timer-interrupt flag still pending for this thread; it will
	// never reach another yield point to consume it.
	v.GIL.ThreadExited(t.sth)
	v.stats.Threads++
	v.stats.Bytecodes += t.stats.Bytecodes
	for _, j := range t.joiners {
		v.Engine.Wake(j.sth, now+cycles)
	}
	t.joiners = nil
	t.release()
	// A pending safepoint collection may now be unblocked.
	if v.gcRequested {
		v.tryCompleteGC(now+cycles, t)
	}
	return sched.StepResult{Cycles: cycles + 1, Status: sched.Done}
}
