package vm

import (
	"errors"
	"fmt"

	"htmgil/internal/compile"
	"htmgil/internal/core"
	"htmgil/internal/heap"
	"htmgil/internal/htm"
	"htmgil/internal/object"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// BlockArg is a block passed down a call without allocating a Proc object
// (CRuby likewise keeps blocks on the stack until they are captured).
type BlockArg struct {
	iseq *compile.ISeq
	env  object.Value // defining environment chain (TEnv ref or nil)
	self object.Value
}

func (b BlockArg) valid() bool { return b.iseq != nil }

// Frame is one activation record.
type Frame struct {
	iseq      *compile.ISeq
	pc        int32
	self      object.Value
	locals    []object.Value // host storage when the iseq does not escape
	env       object.Value   // TEnv ref when it does
	parentEnv object.Value   // captured chain start for block frames
	block     BlockArg       // block argument of this invocation
	base      int32          // operand-stack base
	// retOverride, when non-nil, replaces the frame's return value at
	// leave (Class#new returns the object, not initialize's result).
	retOverride *object.Value
}

type undoKind uint8

const (
	uStack undoKind = iota // stack[a] = val
	uLocal                 // frames[a].locals[b] = val
	uPush                  // a frame was pushed: pop it
	uPop                   // a frame was popped: push *frame back, caller pc = a
)

type undoEntry struct {
	kind  undoKind
	a, b  int32
	val   object.Value
	frame *Frame
}

// resumeKind tells step what to do after a wake-up.
type resumeKind uint8

const (
	rsDispatch     resumeKind = iota // execute the instruction at pc
	rsBeginEntry                     // thread start: open the first critical section
	rsBeginResume                    // parked inside the TLE begin protocol
	rsNativeRetry                    // re-dispatch the current send (native parked)
	rsGILWaitOwned                   // parked in BlockingAcquire; wake owns the GIL
	rsGCPark                         // parked at a GC safepoint (FGL/Ideal)
	rsReacquireGIL                   // woken from a blocking native: re-acquire the GIL
)

// ErrBlocked is returned by native methods that parked the thread.
var ErrBlocked = errors.New("vm: native blocked")

// errRedo is returned when an instruction must be re-executed after the
// transaction aborts (restricted op, GC needed, ...). The dispatcher leaves
// pc untouched.
var errRedo = errors.New("vm: redo after abort")

// errFramePushed is returned by natives that completed their send by
// pushing a bytecode frame (Class#new invoking initialize).
var errFramePushed = errors.New("vm: native pushed a frame")

// RThread is one Ruby thread.
type RThread struct {
	vm    *VM
	name  string
	sth   *sched.Thread
	ctxID int
	hctx  *htm.Context
	tle   *core.Thread
	acc   heap.Accessor
	ts    heap.ThreadSlots

	structBase  simmem.Addr
	counterAddr simmem.Addr
	stackShadow simmem.Addr

	frames []Frame
	stack  []object.Value
	sp     int32

	// Transaction-private-state checkpoint and undo log.
	logging  bool
	log      []undoEntry
	ckDepth  int32
	ckSP     int32
	ckPC     int32
	txCycles int64

	resume        resumeKind
	afterGIL      resumeKind // continuation after rsGILWaitOwned
	skipYieldOnce bool
	pendingYP     int32
	waitCat       CycleCat
	waitPending   bool
	nativeState   any // blocking-native state across a park

	stats    ThreadStats
	thrObj   *object.RObject
	finished bool
	result   object.Value
	joiners  []*RThread

	holdingGIL bool // ModeGIL only: we hold the GIL

	pendingGC int64 // GC cycles to add to the current step's clock
	gcParked  bool  // parked at an FGL/Ideal safepoint

	// tempRoots pins objects allocated within the current instruction
	// (native methods build results in host locals the collector cannot
	// otherwise see). Cleared at the next dispatch.
	tempRoots []*object.RObject

	// Allocator compensation state for the software (OCC) tier, which
	// allocates non-speculatively (see allocAcc): objects and buffers the
	// running software transaction obtained (returned to the free lists on
	// abort) and buffers it released (applied only at commit, because the
	// committed state still references them until the write buffer
	// publishes).
	stxAllocObjs []*object.RObject
	stxAllocBufs []arenaRec
	stxFreeBufs  []arenaRec
}

// arenaRec identifies one malloc-arena buffer for the software tier's
// allocation/free compensation logs.
type arenaRec struct {
	base  simmem.Addr
	words int
}

// threadStructBytes returns the spacing of thread structs in simulated
// memory: line-padded per the paper's fix, or densely packed.
func (v *VM) threadStructBytes() int {
	raw := threadStructWords * simmem.WordBytes
	if !v.Opt.PaddedThreadStructs {
		return raw
	}
	lb := v.Opt.Prof.LineBytes
	return (raw + lb - 1) / lb * lb
}

// threadStructAddr returns the fixed slot for a context id inside the
// shared thread-structure region (allocated once, lazily).
func (v *VM) threadStructAddr(id int) simmem.Addr {
	if v.threadStructsBase == 0 {
		v.threadStructsBase = v.Mem.Reserve("threadstruct", maxContexts*v.threadStructBytes())
	}
	return v.threadStructsBase + simmem.Addr(id*v.threadStructBytes())
}

// newRThread allocates the per-thread state (a simmem context, a thread
// structure, a stack-shadow region). Returns nil when the context pool is
// exhausted.
func (v *VM) newRThread(name string) *RThread {
	if len(v.ctxPool) == 0 {
		v.fail(errors.New("vm: more than 64 concurrently live Ruby threads"))
		return nil
	}
	id := v.ctxPool[len(v.ctxPool)-1]
	v.ctxPool = v.ctxPool[:len(v.ctxPool)-1]

	t := &RThread{vm: v, name: name, ctxID: id, acc: v.Mem}
	// Thread structures are carved densely from one region so that the
	// unpadded configuration exhibits the false sharing the paper fixed
	// (Reserve would line-align each struct and hide it).
	t.structBase = v.threadStructAddr(id)
	t.counterAddr = t.structBase + tsYieldCounter*simmem.WordBytes
	t.ts = heap.ThreadSlots{
		TLHead:  t.structBase + tsTLHead*simmem.WordBytes,
		TLCount: t.structBase + tsTLCount*simmem.WordBytes,
		TLArena: t.structBase + tsArena*simmem.WordBytes,
	}
	if !v.Heap.Cfg.ThreadLocalFreeLists {
		t.ts.TLHead, t.ts.TLCount = 0, 0
	}
	if !v.Heap.Cfg.ThreadLocalArenas {
		t.ts.TLArena = 0
	}
	t.stackShadow = v.Mem.Reserve("stack", 8<<10)

	if v.Opt.Mode == ModeHTM {
		if v.htmCtxs[id] == nil {
			v.htmCtxs[id] = htm.NewContext(v.Opt.Prof, v.Mem, id, v.Opt.Seed+int64(id)*7919)
			v.htmCtxs[id].Tracer = v.Opt.Trace
			// Each context keeps its own fault stream for the life of the
			// run, so context recycling never perturbs the schedule.
			v.htmCtxs[id].Faults = v.Faults.HTMContext(id)
		}
		if rt := v.Elision.OCCRT; rt != nil {
			// Hardware transactions subscribe to the software tier's
			// commit-sequence word (unless the profile sandboxes them).
			v.htmCtxs[id].OCCSeqAddr = rt.SeqAddr
		}
		t.hctx = v.htmCtxs[id]
		t.tle = v.Elision.NewThread(t.hctx)
		if t.tle.OCC != nil {
			// A mid-instruction doom must unwind immediately: the interpreter
			// recovers the sentinel at its dispatch boundary (execGuarded)
			// instead of running the rest of the instruction on a snapshot
			// that no longer exists.
			t.tle.OCC.PanicOnDoom = true
		}
		t.resume = rsBeginEntry
	} else if v.Opt.Mode == ModeGIL {
		t.resume = rsBeginEntry
	}
	v.threads = append(v.threads, t)
	return t
}

// release returns the thread's simmem context to the pool at exit.
func (t *RThread) release() {
	v := t.vm
	v.ctxPool = append(v.ctxPool, t.ctxID)
	// Wire the SMT sibling-busy callback lazily; contexts are pooled.
	for i, th := range v.threads {
		if th == t {
			v.threads = append(v.threads[:i], v.threads[i+1:]...)
			break
		}
	}
}

// spawn registers the thread with the scheduler.
func (t *RThread) spawn(startAt int64) {
	v := t.vm
	t.sth = v.Engine.Spawn(t.name, startAt, t.step)
	if t.hctx != nil {
		sib := t.sth.Ctx.Sibling()
		if sib != nil {
			t.hctx.SiblingBusy = sib.Busy
		} else {
			t.hctx.SiblingBusy = nil
		}
	}
	v.liveApp++
}

// pushEntry sets up the initial frame before the thread starts.
func (t *RThread) pushEntry(iseq *compile.ISeq, self object.Value, parentEnv object.Value, args []object.Value) {
	t.frames = t.frames[:0]
	t.sp = 0
	if err := t.pushFrame(iseq, self, parentEnv, BlockArg{}, args, 0); err != nil {
		t.vm.fail(fmt.Errorf("vm: entry frame: %w", err))
	}
	t.pendingYP = iseq.EntryYP
}

// inTx reports whether the thread currently runs inside a hardware
// transaction.
func (t *RThread) inTx() bool {
	return t.vm.Opt.Mode == ModeHTM && t.tle != nil && !t.tle.GILMode && t.hctx.InTx()
}

// inSTx reports whether the thread currently runs inside a software (OCC)
// transaction.
func (t *RThread) inSTx() bool {
	return t.vm.Opt.Mode == ModeHTM && t.tle != nil && t.tle.OCCMode
}

// inAnyTx reports whether the thread runs inside a transaction of either
// tier.
func (t *RThread) inAnyTx() bool { return t.inTx() || t.inSTx() }

// txDoomed reports whether the thread's running transaction (either tier)
// has been doomed and must abort at the next boundary.
func (t *RThread) txDoomed(now int64) bool {
	if t.inSTx() {
		return t.tle.OCC.Doomed()
	}
	return t.inTx() && t.hctx.Doomed(now)
}

// restrictedOp dooms the running transaction — whatever its tier — because
// the program reached an operation that cannot run speculatively.
func (t *RThread) restrictedOp() {
	if t.inSTx() {
		t.tle.OCC.SelfDoom(simmem.CauseRestricted)
		return
	}
	t.hctx.RestrictedOp()
}

// inCritical reports whether the thread is in any critical section.
func (t *RThread) inCritical() bool {
	switch t.vm.Opt.Mode {
	case ModeHTM:
		return t.tle != nil && t.tle.InCriticalSection()
	case ModeGIL:
		return t.holdingGIL
	default:
		return false
	}
}

// charge adds cycles to a breakdown category.
func (t *RThread) charge(cat CycleCat, cycles int64) {
	t.stats.Cycles[cat] += cycles
	t.vm.stats.Cycles[cat] += cycles
}

// chargeExec attributes execution cycles by current criticality.
func (t *RThread) chargeExec(cycles int64) {
	switch {
	case t.inTx(), t.inSTx():
		t.txCycles += cycles
	case t.inCritical():
		t.charge(CatGILHeld, cycles)
	default:
		t.charge(CatOther, cycles)
	}
}

// collectWait attributes the just-finished blocked interval.
func (t *RThread) collectWait() {
	if t.waitPending {
		t.charge(t.waitCat, t.sth.LastWait())
		t.waitPending = false
	}
}

// park prepares to return Blocked.
func (t *RThread) park(cat CycleCat, next resumeKind) {
	t.waitCat = cat
	t.waitPending = true
	t.resume = next
}

// ---------------------------------------------------------------------------
// Transaction-private state: checkpoint, undo log, rollback.

// checkpoint records the private interpreter state at transaction begin.
func (t *RThread) checkpoint() {
	t.logging = true
	t.log = t.log[:0]
	t.ckDepth = int32(len(t.frames))
	t.ckSP = t.sp
	t.ckPC = t.frames[len(t.frames)-1].pc
}

// commitPrivate drops the undo log after a successful commit and settles
// the software tier's allocator logs: deferred buffer frees are applied
// now that the write buffer has published, and the allocation logs are
// dropped (the allocations are permanent).
func (t *RThread) commitPrivate() {
	t.logging = false
	t.log = t.log[:0]
	v := t.vm
	for _, r := range t.stxFreeBufs {
		v.Heap.FreeArena(v.Mem, t.ts, r.base, r.words)
	}
	t.stxFreeBufs = t.stxFreeBufs[:0]
	t.stxAllocObjs = t.stxAllocObjs[:0]
	t.stxAllocBufs = t.stxAllocBufs[:0]
}

// rollbackPrivate restores the private interpreter state to the checkpoint.
func (t *RThread) rollbackPrivate() {
	// Undo the software tier's non-speculative allocations and drop its
	// deferred frees (the committed state never saw the aborted buffers).
	v := t.vm
	for i := len(t.stxAllocObjs) - 1; i >= 0; i-- {
		v.Heap.FreeObject(v.Mem, t.ts, t.stxAllocObjs[i])
	}
	for i := len(t.stxAllocBufs) - 1; i >= 0; i-- {
		r := t.stxAllocBufs[i]
		v.Heap.FreeArena(v.Mem, t.ts, r.base, r.words)
	}
	t.stxAllocObjs = t.stxAllocObjs[:0]
	t.stxAllocBufs = t.stxAllocBufs[:0]
	t.stxFreeBufs = t.stxFreeBufs[:0]
	if MutSkipRollback {
		// Seeded bug (mutation builds only): the abort handler forgets to
		// roll back the private interpreter state. Execution resumes at the
		// abort point as if the transaction had committed, even though its
		// memory effects were discarded — the classic TLE abort-path bug,
		// and exactly the silent corruption the schedule explorer's
		// serializability oracle must catch.
		t.log = t.log[:0]
		t.logging = false
		return
	}
	for i := len(t.log) - 1; i >= 0; i-- {
		e := &t.log[i]
		switch e.kind {
		case uStack:
			t.stack[e.a] = e.val
		case uLocal:
			t.frames[e.a].locals[e.b] = e.val
		case uPush:
			t.frames = t.frames[:len(t.frames)-1]
		case uPop:
			// The bottom frame has no caller to restore a pc into (pushFrame
			// records callerPC 0 for it); commit-time aborts — e.g. a lazy
			// subscription failing in finishThread — roll back past it.
			if len(t.frames) > 0 {
				t.frames[len(t.frames)-1].pc = e.a
			}
			t.frames = append(t.frames, *e.frame)
		}
	}
	t.log = t.log[:0]
	t.logging = false
	if int32(len(t.frames)) != t.ckDepth {
		t.vm.fail(fmt.Errorf("vm: rollback frame depth %d != checkpoint %d", len(t.frames), t.ckDepth))
		return
	}
	t.sp = t.ckSP
	t.frames[len(t.frames)-1].pc = t.ckPC
}

// ---------------------------------------------------------------------------
// Operand stack with undo logging.

func (t *RThread) push(v object.Value) {
	if t.logging && t.sp < t.ckSP {
		t.log = append(t.log, undoEntry{kind: uStack, a: t.sp, val: t.stack[t.sp]})
	}
	if int(t.sp) == len(t.stack) {
		t.stack = append(t.stack, v)
	} else {
		t.stack[t.sp] = v
	}
	t.sp++
}

func (t *RThread) pop() object.Value {
	t.sp--
	return t.stack[t.sp]
}

func (t *RThread) peek(n int32) object.Value { return t.stack[t.sp-1-n] }

func (t *RThread) setLocalHost(frameIdx int32, slot int32, v object.Value) {
	f := &t.frames[frameIdx]
	if t.logging {
		t.log = append(t.log, undoEntry{kind: uLocal, a: frameIdx, b: slot, val: f.locals[slot]})
	}
	f.locals[slot] = v
}

// ---------------------------------------------------------------------------
// Frames.

// pushFrame activates iseq. Arguments arrive in args (already popped or
// sliced by the caller). The caller must have advanced its own pc first.
func (t *RThread) pushFrame(iseq *compile.ISeq, self object.Value, parentEnv object.Value, blk BlockArg, args []object.Value, now int64) error {
	f := Frame{
		iseq:      iseq,
		self:      self,
		parentEnv: parentEnv,
		block:     blk,
		base:      t.sp,
	}
	if iseq.Escapes {
		env, err := t.allocEnv(iseq.NumLocals, parentEnv, args)
		if err != nil {
			return err
		}
		f.env = env
	} else {
		f.locals = make([]object.Value, iseq.NumLocals)
		copy(f.locals, args)
	}
	if t.logging {
		t.log = append(t.log, undoEntry{kind: uPush})
	}
	t.frames = append(t.frames, f)
	// Stack-shadow write: frames occupy real memory whose lines join the
	// transaction footprint.
	depth := len(t.frames) - 1
	shadow := t.stackShadow + simmem.Addr(depth*48&^7)
	t.acc.Store(shadow, simmem.Word{Bits: uint64(depth)})
	return nil
}

// popFrame deactivates the top frame; returns false when it was the last.
func (t *RThread) popFrame() bool {
	top := len(t.frames) - 1
	if t.logging {
		saved := t.frames[top]
		callerPC := int32(0)
		if top > 0 {
			callerPC = t.frames[top-1].pc
		}
		t.log = append(t.log, undoEntry{kind: uPop, a: callerPC, frame: &saved})
	}
	t.frames = t.frames[:top]
	return top > 0
}

// callAfterNative finishes a native send by pushing a bytecode frame whose
// return value is overridden with ret. argc is the original send's argument
// count (the receiver and arguments are still on the operand stack). The
// native must return errFramePushed afterwards.
func (t *RThread) callAfterNative(iseq *compile.ISeq, self object.Value, blk BlockArg, args []object.Value, argc int, ret object.Value, now int64) error {
	caller := &t.frames[len(t.frames)-1]
	caller.pc++
	t.sp -= int32(argc) + 1
	if err := t.pushFrame(iseq, self, object.Nil, blk, args, now); err != nil {
		caller.pc--
		t.sp += int32(argc) + 1
		return err
	}
	r := ret
	t.frames[len(t.frames)-1].retOverride = &r
	return nil
}

// allocEnv allocates a TEnv heap object with its buffer.
func (t *RThread) allocEnv(nlocals int, parent object.Value, args []object.Value) (object.Value, error) {
	v := t.vm
	o, err := t.allocObject(object.TEnv, v.typeClass[object.TEnv])
	if err != nil {
		return object.Nil, err
	}
	buf, err := t.allocArena(nlocals + 1)
	if err != nil {
		return object.Nil, err
	}
	t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: uint64(buf)})
	t.acc.Store(o.AddrOf(object.SlotB), simmem.Word{Bits: uint64(nlocals + 1)})
	t.acc.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: uint64(roundClass(nlocals + 1))})
	t.acc.Store(buf, parent.Word())
	for i := 0; i < nlocals; i++ {
		val := object.Nil
		if i < len(args) {
			val = args[i]
		}
		t.acc.Store(buf+simmem.Addr((i+1)*simmem.WordBytes), val.Word())
	}
	return object.RefVal(o), nil
}

// roundClass mirrors the heap's size-class rounding for capacity metadata.
func roundClass(n int) int {
	c := 2
	for c < n {
		c *= 2
	}
	return c
}

// allocAcc returns the accessor for allocator metadata. Hardware
// transactions allocate speculatively — the paper's free-list conflicts
// depend on it — but the software tier must not: its write buffer hides a
// free-list pop from every other allocator until commit, and NOrec's
// value-based validation cannot see the resulting collision when the
// interleaved allocators leave identical list words behind, so two threads
// would initialize the same host-side object shell (Type, Class, Native)
// as different types. As in real STMs, software transactions therefore
// allocate directly and compensate on abort (see commitPrivate and
// rollbackPrivate).
func (t *RThread) allocAcc() heap.Accessor {
	if t.inSTx() {
		return t.vm.Mem
	}
	return t.acc
}

// freeArena releases an arena buffer. Inside a software transaction the
// release is deferred to commit: the committed state still references the
// buffer until the write buffer publishes, so freeing it eagerly would
// hand live memory to a concurrent allocator — and an abort would
// resurrect the buffer after its reuse.
func (t *RThread) freeArena(base simmem.Addr, words int) {
	if t.inSTx() {
		t.stxFreeBufs = append(t.stxFreeBufs, arenaRec{base: base, words: words})
		return
	}
	t.vm.Heap.FreeArena(t.acc, t.ts, base, words)
}

// allocObject allocates a heap object, handling GC-needed conditions per
// the current execution mode.
func (t *RThread) allocObject(typ object.RType, cls *object.RClass) (*object.RObject, error) {
	v := t.vm
	o, err := v.Heap.AllocObject(t.allocAcc(), t.ts, typ, cls)
	if err == nil {
		t.tempRoots = append(t.tempRoots, o)
		if t.inSTx() {
			t.stxAllocObjs = append(t.stxAllocObjs, o)
		}
		return o, nil
	}
	if !errors.Is(err, heap.ErrNeedGC) {
		return nil, err
	}
	if t.inAnyTx() {
		// GC cannot run inside a transaction: abort to the GIL and redo.
		t.restrictedOp()
		return nil, errRedo
	}
	if err := t.runGC(); err != nil {
		return nil, err
	}
	o, err = v.Heap.AllocObject(t.acc, t.ts, typ, cls)
	if err != nil {
		return nil, fmt.Errorf("vm: out of heap after GC (%d slots): %w", v.Opt.HeapSlots, err)
	}
	t.tempRoots = append(t.tempRoots, o)
	return o, nil
}

// allocArena allocates an arena buffer with the same GC protocol.
func (t *RThread) allocArena(words int) (simmem.Addr, error) {
	v := t.vm
	a, err := v.Heap.AllocArena(t.allocAcc(), t.ts, words)
	if err == nil {
		if t.inSTx() {
			t.stxAllocBufs = append(t.stxAllocBufs, arenaRec{base: a, words: words})
		}
		return a, nil
	}
	if t.inAnyTx() {
		t.restrictedOp()
		return 0, errRedo
	}
	if gerr := t.runGC(); gerr != nil {
		return 0, gerr
	}
	a, err = v.Heap.AllocArena(t.acc, t.ts, words)
	if err != nil {
		return 0, fmt.Errorf("vm: arena exhausted: %w", err)
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Local variable access through the environment chain.

// envAt returns the TEnv object `depth` hops up from the current frame
// (depth >= 1; depth 0 is the frame itself).
func (t *RThread) envAt(f *Frame, depth int32) (*object.RObject, error) {
	var cur object.Value
	if depth == 0 {
		cur = f.env
	} else {
		cur = f.parentEnv
		for i := int32(1); i < depth; i++ {
			if cur.Kind != object.KRef {
				return nil, fmt.Errorf("vm: broken environment chain at depth %d", depth)
			}
			base := simmem.Addr(t.acc.Load(cur.Ref.AddrOf(object.SlotA)).Bits)
			cur = object.FromWord(t.acc.Load(base))
		}
	}
	if cur.Kind != object.KRef || cur.Ref.Type != object.TEnv {
		return nil, fmt.Errorf("vm: missing environment at depth %d", depth)
	}
	return cur.Ref, nil
}

func (t *RThread) getLocal(f *Frame, slot, depth int32) (object.Value, int64, error) {
	if depth == 0 && f.locals != nil {
		return f.locals[slot], t.vm.Costs.LocalGo, nil
	}
	env, err := t.envAt(f, depth)
	if err != nil {
		return object.Nil, 0, err
	}
	base := simmem.Addr(t.acc.Load(env.AddrOf(object.SlotA)).Bits)
	w := t.acc.Load(base + simmem.Addr((slot+1)*simmem.WordBytes))
	return object.FromWord(w), t.vm.Costs.LocalEnv, nil
}

func (t *RThread) setLocal(f *Frame, slot, depth int32, val object.Value) (int64, error) {
	if depth == 0 && f.locals != nil {
		idx := int32(len(t.frames) - 1)
		t.setLocalHost(idx, slot, val)
		return t.vm.Costs.LocalGo, nil
	}
	env, err := t.envAt(f, depth)
	if err != nil {
		return 0, err
	}
	base := simmem.Addr(t.acc.Load(env.AddrOf(object.SlotA)).Bits)
	t.acc.Store(base+simmem.Addr((slot+1)*simmem.WordBytes), val.Word())
	return t.vm.Costs.LocalEnv, nil
}
