# Prelude: core library methods implemented in mini-Ruby itself.
# Iterators are bytecode (while + yield), so their loop back-edges and sends
# are yield points — transactions can end and begin inside `each`, exactly
# as they can inside CRuby's interpreted callers of rb_yield.

class Integer
  def times
    i = 0
    while i < self
      yield i
      i += 1
    end
    self
  end

  def upto(n)
    i = self
    while i <= n
      yield i
      i += 1
    end
    self
  end

  def downto(n)
    i = self
    while i >= n
      yield i
      i -= 1
    end
    self
  end

  def zero?
    self == 0
  end

  def min2(b)
    if self < b
      self
    else
      b
    end
  end

  def max2(b)
    if self > b
      self
    else
      b
    end
  end
end

class Range
  def each
    i = first
    if exclude_end?
      while i < last
        yield i
        i += 1
      end
    else
      while i <= last
        yield i
        i += 1
      end
    end
    self
  end

  def to_a
    out = []
    i = first
    lim = last
    if exclude_end?
      while i < lim
        out << i
        i += 1
      end
    else
      while i <= lim
        out << i
        i += 1
      end
    end
    out
  end

  def size
    if exclude_end?
      last - first
    else
      last - first + 1
    end
  end
end

class Array
  def each
    i = 0
    n = length
    while i < n
      yield self[i]
      i += 1
    end
    self
  end

  def each_index
    i = 0
    n = length
    while i < n
      yield i
      i += 1
    end
    self
  end

  def each_with_index
    i = 0
    n = length
    while i < n
      yield self[i], i
      i += 1
    end
    self
  end

  def map
    out = []
    i = 0
    n = length
    while i < n
      out << yield(self[i])
      i += 1
    end
    out
  end

  def include?(x)
    i = 0
    n = length
    while i < n
      if self[i] == x
        return true
      end
      i += 1
    end
    false
  end

  def empty?
    length == 0
  end

  def sum
    s = 0
    i = 0
    n = length
    while i < n
      s += self[i]
      i += 1
    end
    s
  end
end

class Hash
  def each
    ks = keys
    i = 0
    n = ks.length
    while i < n
      k = ks[i]
      yield k, self[k]
      i += 1
    end
    self
  end

  def empty?
    size == 0
  end
end

class Mutex
  def synchronize
    lock
    r = yield
    unlock
    r
  end
end

# A cyclic barrier in plain Ruby, as the NPB-style workloads use between
# phases. Built on Mutex and ConditionVariable only.
class Barrier
  def initialize(count)
    @count = count
    @arrived = 0
    @generation = 0
    @mutex = Mutex.new
    @cond = ConditionVariable.new
  end

  def wait
    @mutex.lock
    gen = @generation
    @arrived += 1
    if @arrived == @count
      @arrived = 0
      @generation += 1
      @cond.broadcast
    else
      while gen == @generation
        @cond.wait(@mutex)
      end
    end
    @mutex.unlock
    nil
  end
end

class Array
  def reverse
    out = []
    i = length - 1
    while i >= 0
      out << self[i]
      i -= 1
    end
    out
  end

  def min
    i = 1
    n = length
    best = self[0]
    while i < n
      if self[i] < best
        best = self[i]
      end
      i += 1
    end
    best
  end

  def max
    i = 1
    n = length
    best = self[0]
    while i < n
      if self[i] > best
        best = self[i]
      end
      i += 1
    end
    best
  end

  def sort
    # Insertion sort: quadratic but allocation-light, like the small sorts
    # the interpreter's own libraries use.
    out = []
    i = 0
    n = length
    while i < n
      out << self[i]
      i += 1
    end
    i = 1
    while i < n
      key = out[i]
      j = i - 1
      while j >= 0 && out[j] > key
        out[j + 1] = out[j]
        j -= 1
      end
      out[j + 1] = key
      i += 1
    end
    out
  end

  def select
    out = []
    i = 0
    n = length
    while i < n
      if yield(self[i])
        out << self[i]
      end
      i += 1
    end
    out
  end

  def count
    length
  end
end

class Integer
  def gcd(b)
    a = abs
    b = b.abs
    while b != 0
      t = b
      b = a % b
      a = t
    end
    a
  end
end
