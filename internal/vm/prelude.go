package vm

import (
	_ "embed"
	"fmt"

	"htmgil/internal/compile"
	"htmgil/internal/heap"
	"htmgil/internal/object"
)

//go:embed prelude.rb
var preludeSource string

// loadPrelude compiles and executes the Ruby-level core library at VM
// construction time, before any simulated thread exists.
func (v *VM) loadPrelude() error {
	iseq, err := v.CompileSource(preludeSource, "<prelude>")
	if err != nil {
		return err
	}
	return v.runSetup(iseq)
}

// runSetup executes an iseq synchronously outside the simulated machine:
// single-threaded, direct memory access, no GIL, no transactions. Used for
// the prelude and for application class definitions loaded before the run.
func (v *VM) runSetup(iseq *compile.ISeq) error {
	t := &RThread{vm: v, name: "setup", acc: v.Mem, ctxID: 0, ts: heap.ThreadSlots{}}
	t.stackShadow = v.Mem.Reserve("stack", 8<<10)
	if err := t.pushFrame(iseq, object.RefVal(v.mainObject()), object.Nil, BlockArg{}, nil, 0); err != nil {
		return err
	}
	for i := 0; ; i++ {
		if t.resume == rsFinish {
			return nil
		}
		if v.fatalErr != nil {
			return v.fatalErr
		}
		if i > 50_000_000 {
			return fmt.Errorf("vm: setup execution did not terminate")
		}
		res := t.dispatch(0)
		if res.Status != 0 { // sched.Running
			if t.resume == rsFinish {
				return nil
			}
			return fmt.Errorf("vm: setup code blocked or finished unexpectedly")
		}
	}
}
