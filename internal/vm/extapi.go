package vm

import (
	"fmt"

	"htmgil/internal/object"
	"htmgil/internal/sched"
	"htmgil/internal/simmem"
)

// This file is the API surface for native extensions living outside the vm
// package (the simulated network stack, the SQLite-like store, the regexp
// engine). It mirrors what CRuby's C extension API provides: object
// allocation, array/hash/string construction, and access to the calling
// thread's scheduling identity for blocking operations.

// Sched returns the scheduler identity of the thread (for Engine.Wake).
func (t *RThread) Sched() *sched.Thread { return t.sth }

// Machine returns the owning VM.
func (t *RThread) Machine() *VM { return t.vm }

// Valid reports whether a block was passed.
func (b BlockArg) Valid() bool { return b.valid() }

// AllocString allocates a mini-Ruby string (with its shadow footprint).
func (t *RThread) AllocString(s string) (*object.RObject, int64, error) {
	return t.allocString(s)
}

// AllocNativeObject allocates a heap object of the given type carrying a
// host-side payload (sockets, database handles, ...).
func (t *RThread) AllocNativeObject(typ object.RType, cls *object.RClass, payload any) (*object.RObject, error) {
	o, err := t.allocObject(typ, cls)
	if err != nil {
		return nil, err
	}
	o.Native = payload
	return o, nil
}

// AllocArrayOf builds a mini-Ruby array from values.
func (t *RThread) AllocArrayOf(vals []object.Value) (*object.RObject, error) {
	arr, _, err := t.allocArray(len(vals))
	if err != nil {
		return nil, err
	}
	for _, v := range vals {
		if _, err := t.arrayPush(arr, v); err != nil {
			return nil, err
		}
	}
	return arr, nil
}

// ArrayLen returns the length of a mini-Ruby array.
func (t *RThread) ArrayLen(arr *object.RObject) int64 { return t.arrayLen(arr) }

// ArrayAt reads an element of a mini-Ruby array.
func (t *RThread) ArrayAt(arr *object.RObject, i int64) object.Value {
	v, _ := t.arrayGet(arr, i)
	return v
}

// ArrayAppend pushes onto a mini-Ruby array.
func (t *RThread) ArrayAppend(arr *object.RObject, v object.Value) error {
	_, err := t.arrayPush(arr, v)
	return err
}

// ToS renders a value the way the interpreter would.
func (t *RThread) ToS(v object.Value) string {
	s, _ := t.toS(v)
	return s
}

// InTx reports whether the thread currently runs inside a transaction of
// either tier (hardware or software); extensions use it to turn
// un-speculatable work into a restricted abort.
func (t *RThread) InTx() bool { return t.inAnyTx() }

// RestrictedOp dooms the current transaction, whatever its tier (extension
// equivalent of performing a system call).
func (t *RThread) RestrictedOp() { t.restrictedOp() }

// ErrRedo tells the dispatcher to re-execute the current instruction after
// the (just-doomed) transaction aborts and falls back to the GIL.
func ErrRedo() error { return errRedo }

// TouchRead performs a transactional (or direct) read of a simulated
// address: extensions use it so their data structures contribute to the
// transaction footprint like real C-extension memory does.
func (t *RThread) TouchRead(addr simmem.Addr) simmem.Word { return t.acc.Load(addr) }

// TouchWrite performs a transactional (or direct) write.
func (t *RThread) TouchWrite(addr simmem.Addr, w simmem.Word) { t.acc.Store(addr, w) }

// AllocShadow reserves arena words for an extension's shadow footprint.
func (t *RThread) AllocShadow(words int) (simmem.Addr, error) {
	return t.allocArena(words)
}

// ReserveShadow reserves a labeled, line-aligned address-space region
// outside the arenas, for extension data too large for the per-thread
// arena budget (bulk-loaded datastore tables). The region's lines are
// materialized lazily by simmem, so reserving gigabytes costs nothing until
// touched. Must be called from load-time (setup-thread) code.
func (t *RThread) ReserveShadow(label string, bytes int) simmem.Addr {
	return t.vm.Mem.Reserve(label, bytes)
}

// TouchShard subscribes the current critical section to keyspace shard s in
// sharded-GIL mode (no-op otherwise). Extensions call it before touching
// data belonging to shard s; see core.Elision.TouchShard.
func (t *RThread) TouchShard(s int) {
	if t.vm.Sharded == nil || t.tle == nil {
		return
	}
	t.vm.Elision.TouchShard(t.tle, s)
}

// ShardCount returns the number of keyspace shards (1 when unsharded).
func (t *RThread) ShardCount() int {
	if t.vm.Sharded == nil {
		return 1
	}
	return t.vm.Sharded.ShardCount()
}

// CyclesPerSecond is the virtual-time second used by load generators.
const CyclesPerSecond = CyclesPerSec

// DebugThreads renders live-thread states for hang diagnosis.
func (v *VM) DebugThreads() string {
	out := ""
	for _, t := range v.threads {
		st := "?"
		if t.sth != nil {
			st = [3]string{"RUN", "BLK", "DONE"}[t.sth.Status()]
		}
		fr := "-"
		if len(t.frames) > 0 {
			f := t.frames[len(t.frames)-1]
			fr = f.iseq.Name
		}
		out += " [" + t.name + " " + st + " resume=" + itoa(int(t.resume)) + " gilmode=" + boolS(t.tle != nil && t.tle.GILMode) + " at=" + fr + " ns=" + toS2(t.nativeState) + "]"
	}
	out += " gilOwner="
	if v.GIL.Owner() != nil {
		out += v.GIL.Owner().Name
	} else {
		out += "none"
	}
	return out
}

func itoa(i int) string   { return fmt.Sprintf("%d", i) }
func boolS(b bool) string { return fmt.Sprintf("%v", b) }
func toS2(v any) string   { return fmt.Sprintf("%v", v) }

// SetupThread returns a host-driven thread for load-time work and
// extension tests: direct memory access, global allocator, no scheduler
// identity. It must not be used while the simulated machine runs.
func (v *VM) SetupThread() *RThread {
	return &RThread{vm: v, name: "setup", acc: v.Mem, ctxID: 0}
}

// AddGCRoots registers an extra root enumerator; extensions that retain
// heap objects in host-side structures must report them here.
func (v *VM) AddGCRoots(fn func(mark func(*object.RObject))) {
	v.extraRoots = append(v.extraRoots, fn)
}

// SetExtraTraverse registers a traversal hook for native object payloads
// that reference heap objects.
func (v *VM) SetExtraTraverse(fn func(o *object.RObject, mark func(*object.RObject))) {
	v.extraTraverse = fn
}
