package vm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"htmgil/internal/compile"
	"htmgil/internal/heap"
	"htmgil/internal/object"
	"htmgil/internal/simmem"
)

// CyclesPerSec converts wall-clock-ish quantities (sleep durations, think
// times) into virtual cycles. The simulated machines are a few GHz; the
// scaled-down constant keeps benchmark runs short.
const CyclesPerSec = 5_000_000

// mutexData is the host side of a Mutex: the lock word lives in simulated
// memory (slot A) so transactions conflict on it; only the blocked-waiter
// queue is host state (it is touched exclusively on GIL-protected paths).
type mutexData struct {
	waiters []*RThread
}

type condData struct {
	waiters []*RThread
}

// bootstrap builds the core classes and methods.
func (v *VM) bootstrap() {
	// Object and Class bootstrap each other.
	v.ClassClass = &object.RClass{Name: "Class", Methods: map[object.SymID]*object.Method{},
		IvarIdx: map[object.SymID]int{}, CVarIdx: map[object.SymID]int{}}
	v.ClassClass.CVarBase = v.Mem.Reserve("cvars", 32*simmem.WordBytes)
	ccObj := &object.RObject{Type: object.TClass, Class: v.ClassClass, Cls: v.ClassClass, Index: -1}
	ccObj.Slot = v.Mem.Reserve("classobj", object.RVALUEBytes)
	v.ClassClass.Obj = ccObj
	v.classes = append(v.classes, v.ClassClass)
	v.consts[v.Syms.Intern("Class")] = object.RefVal(ccObj)

	v.ObjectClass = v.DefineClass("Object", nil)
	v.ClassClass.Super = v.ObjectClass

	nilC := v.DefineClass("NilClass", v.ObjectClass)
	trueC := v.DefineClass("TrueClass", v.ObjectClass)
	falseC := v.DefineClass("FalseClass", v.ObjectClass)
	intC := v.DefineClass("Integer", v.ObjectClass)
	v.SetConst("Fixnum", object.RefVal(intC.Obj))
	symC := v.DefineClass("Symbol", v.ObjectClass)
	floatC := v.DefineClass("Float", v.ObjectClass)
	strC := v.DefineClass("String", v.ObjectClass)
	arrC := v.DefineClass("Array", v.ObjectClass)
	hashC := v.DefineClass("Hash", v.ObjectClass)
	rangeC := v.DefineClass("Range", v.ObjectClass)
	procC := v.DefineClass("Proc", v.ObjectClass)
	envC := v.DefineClass("Binding", v.ObjectClass)
	threadC := v.DefineClass("Thread", v.ObjectClass)
	mutexC := v.DefineClass("Mutex", v.ObjectClass)
	condC := v.DefineClass("ConditionVariable", v.ObjectClass)

	v.kindClass = [8]*object.RClass{
		object.KNil: nilC, object.KFalse: falseC, object.KTrue: trueC,
		object.KFixnum: intC, object.KSymbol: symC,
	}
	v.typeClass[object.TFloat] = floatC
	v.typeClass[object.TString] = strC
	v.typeClass[object.TArray] = arrC
	v.typeClass[object.THash] = hashC
	v.typeClass[object.TRange] = rangeC
	v.typeClass[object.TProc] = procC
	v.typeClass[object.TEnv] = envC
	v.typeClass[object.TThread] = threadC
	v.typeClass[object.TMutex] = mutexC
	v.typeClass[object.TCond] = condC
	v.typeClass[object.TObject] = v.ObjectClass

	v.installKernel()
	v.installClassMethods()
	v.installNumeric(intC, floatC)
	v.installString(strC)
	v.installArray(arrC)
	v.installHash(hashC)
	v.installRange(rangeC)
	v.installThreading(threadC, mutexC, condC)
	v.installMath()

	if err := v.loadPrelude(); err != nil {
		panic(fmt.Sprintf("vm: prelude failed: %v", err))
	}
}

func (v *VM) installKernel() {
	obj := v.ObjectClass
	v.DefineNative(obj, "puts", -1, true, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		if len(args) == 0 {
			t.vm.writeOut("\n")
		}
		for _, a := range args {
			s, _ := t.toS(a)
			if !strings.HasSuffix(s, "\n") {
				s += "\n"
			}
			t.vm.writeOut(s)
		}
		return object.Nil, nil
	})
	v.DefineNative(obj, "print", -1, true, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		for _, a := range args {
			s, _ := t.toS(a)
			t.vm.writeOut(s)
		}
		return object.Nil, nil
	})
	v.DefineNative(obj, "require", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.False, nil // everything is built in
	})
	v.DefineNative(obj, "nil?", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(self.IsNil()), nil
	})
	v.DefineNative(obj, "class", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		cls := t.vm.classOf(self)
		if cls == nil || cls.Obj == nil {
			return object.Nil, nil
		}
		return object.RefVal(cls.Obj), nil
	})
	v.DefineNative(obj, "to_s", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		s, _ := t.toS(self)
		o, _, err := t.allocString(s)
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	v.DefineNative(obj, "inspect", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		s, _ := t.toS(self)
		o, _, err := t.allocString(s)
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	v.DefineNative(obj, "sleep", 1, true, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		if t.nativeState != nil {
			t.nativeState = nil
			return object.FixVal(0), nil
		}
		var secs float64
		switch {
		case args[0].Kind == object.KFixnum:
			secs = float64(args[0].Fix)
		default:
			fl, ok := t.floatOf(args[0])
			if !ok {
				return object.Nil, fmt.Errorf("sleep: bad duration")
			}
			secs = fl
		}
		t.nativeState = "sleeping"
		wake := now + int64(secs*CyclesPerSec)
		th := t
		t.vm.Engine.At(wake, func(at int64) { th.vm.Engine.Wake(th.sth, at) })
		return object.Nil, ErrBlocked
	})
}

func (v *VM) installClassMethods() {
	cc := v.ClassClass
	v.DefineNative(cc, "new", -1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		cls := self.Ref.Cls
		o, err := t.allocObject(object.TObject, cls)
		if err != nil {
			return object.Nil, err
		}
		t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: 0})
		t.acc.Store(o.AddrOf(object.SlotB), simmem.Word{Bits: 0})
		t.acc.Store(o.AddrOf(object.SlotC), simmem.Word{Bits: 0})
		// Invoke initialize when defined: re-dispatch as a frame push.
		initSym := t.vm.Syms.Intern("initialize")
		if m := cls.Lookup(initSym); m != nil {
			if iseq, ok := m.Code.(*compile.ISeq); ok {
				if len(args) != iseq.Params {
					return object.Nil, fmt.Errorf("wrong number of arguments for %s.new (given %d, expected %d)", cls.Name, len(args), iseq.Params)
				}
				cp := make([]object.Value, len(args))
				copy(cp, args)
				if err := t.callAfterNative(iseq, object.RefVal(o), blk, cp, len(args), object.RefVal(o), now); err != nil {
					return object.Nil, err
				}
				return object.Nil, errFramePushed
			}
		}
		return object.RefVal(o), nil
	})
	v.DefineNative(cc, "name", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		o, _, err := t.allocString(self.Ref.Cls.Name)
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	accessor := func(t *RThread, self object.Value, args []object.Value, readers, writers bool) (object.Value, error) {
		cls := self.Ref.Cls
		for _, a := range args {
			if a.Kind != object.KSymbol {
				return object.Nil, fmt.Errorf("attr_accessor expects symbols")
			}
			name := t.vm.Syms.Name(a.Sym())
			ivarSym := t.vm.Syms.Intern("@" + name)
			if readers {
				v.DefineNative(cls, name, 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
					val, err := t.getIvarRaw(self, ivarSym)
					return val, err
				})
			}
			if writers {
				v.DefineNative(cls, name+"=", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
					if err := t.setIvarRaw(self, ivarSym, args[0]); err != nil {
						return object.Nil, err
					}
					return args[0], nil
				})
			}
		}
		return object.Nil, nil
	}
	v.DefineNative(cc, "attr_accessor", -1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return accessor(t, self, args, true, true)
	})
	v.DefineNative(cc, "attr_reader", -1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return accessor(t, self, args, true, false)
	})
	v.DefineNative(cc, "attr_writer", -1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return accessor(t, self, args, false, true)
	})
}

// getIvarRaw / setIvarRaw bypass inline caches (attr_* accessors).
func (t *RThread) getIvarRaw(self object.Value, sym object.SymID) (object.Value, error) {
	if self.Kind != object.KRef || self.Ref.Type != object.TObject {
		return object.Nil, fmt.Errorf("ivar read on %s", t.typeName(self))
	}
	idx, ok := self.Ref.Class.IvarIndex(sym, false)
	if !ok {
		return object.Nil, nil
	}
	base := simmem.Addr(t.acc.Load(self.Ref.AddrOf(object.SlotA)).Bits)
	capW := int(t.acc.Load(self.Ref.AddrOf(object.SlotB)).Bits)
	if base == 0 || idx >= capW {
		return object.Nil, nil
	}
	return object.FromWord(t.acc.Load(base + simmem.Addr(idx*simmem.WordBytes))), nil
}

func (t *RThread) setIvarRaw(self object.Value, sym object.SymID, val object.Value) error {
	f := &Frame{self: self}
	_, err := t.setIvar(f, sym, 0, val)
	return err
}

func (v *VM) installNumeric(intC, floatC *object.RClass) {
	v.DefineNative(intC, "to_f", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		val, _, err := t.allocFloat(float64(self.Fix))
		return val, err
	})
	v.DefineNative(intC, "to_i", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return self, nil
	})
	v.DefineNative(intC, "abs", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		if self.Fix < 0 {
			return object.FixVal(-self.Fix), nil
		}
		return self, nil
	})
	intBin := func(name string, fn func(a, b int64) int64) {
		v.DefineNative(intC, name, 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
			if args[0].Kind != object.KFixnum {
				return object.Nil, fmt.Errorf("%s expects an Integer", name)
			}
			return object.FixVal(fn(self.Fix, args[0].Fix)), nil
		})
	}
	intBin("&", func(a, b int64) int64 { return a & b })
	intBin("|", func(a, b int64) int64 { return a | b })
	intBin("^", func(a, b int64) int64 { return a ^ b })
	intBin(">>", func(a, b int64) int64 { return a >> uint(b&63) })
	v.DefineNative(intC, "**", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		switch {
		case args[0].Kind == object.KFixnum:
			r := int64(1)
			for i := int64(0); i < args[0].Fix; i++ {
				r *= self.Fix
			}
			return object.FixVal(r), nil
		default:
			fl, ok := t.floatOf(args[0])
			if !ok {
				return object.Nil, fmt.Errorf("bad exponent")
			}
			val, _, err := t.allocFloat(math.Pow(float64(self.Fix), fl))
			return val, err
		}
	})
	v.DefineNative(intC, "<=>", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		b := args[0]
		if b.Kind != object.KFixnum {
			return object.Nil, nil
		}
		switch {
		case self.Fix < b.Fix:
			return object.FixVal(-1), nil
		case self.Fix > b.Fix:
			return object.FixVal(1), nil
		}
		return object.FixVal(0), nil
	})
	v.DefineNative(intC, "even?", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(self.Fix%2 == 0), nil
	})
	v.DefineNative(intC, "odd?", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(self.Fix%2 != 0), nil
	})

	v.DefineNative(floatC, "to_i", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		fl, _ := t.floatOf(self)
		return object.FixVal(int64(fl)), nil
	})
	v.DefineNative(floatC, "to_f", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return self, nil
	})
	v.DefineNative(floatC, "abs", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		fl, _ := t.floatOf(self)
		val, _, err := t.allocFloat(math.Abs(fl))
		return val, err
	})
	v.DefineNative(floatC, "**", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		a, _ := t.floatOf(self)
		b, ok := t.floatOf(args[0])
		if !ok {
			return object.Nil, fmt.Errorf("bad exponent")
		}
		val, _, err := t.allocFloat(math.Pow(a, b))
		return val, err
	})
}

func (v *VM) installMath() {
	mathCls := v.DefineClass("MathModule", v.ObjectClass)
	v.SetConst("Math", object.RefVal(mathCls.Obj))
	unary := func(name string, fn func(float64) float64) {
		v.DefineStatic(mathCls, name, 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
			fl, ok := t.floatOf(args[0])
			if !ok {
				return object.Nil, fmt.Errorf("Math.%s expects a number", name)
			}
			val, _, err := t.allocFloat(fn(fl))
			return val, err
		})
	}
	unary("sqrt", math.Sqrt)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	unary("exp", math.Exp)
	unary("log", math.Log)
	v.DefineStatic(mathCls, "pow", 2, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		a, ok1 := t.floatOf(args[0])
		b, ok2 := t.floatOf(args[1])
		if !ok1 || !ok2 {
			return object.Nil, fmt.Errorf("Math.pow expects numbers")
		}
		val, _, err := t.allocFloat(math.Pow(a, b))
		return val, err
	})
	v.SetConst("PI", object.Nil) // replaced below with a boxed float
	o, err := v.Heap.AllocObject(v.Mem, v.setupTS(), object.TFloat, v.typeClass[object.TFloat])
	if err == nil {
		v.Mem.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: floatBits(math.Pi)})
		v.pinned = append(v.pinned, o)
		v.SetConst("PI", object.RefVal(o))
	}
}

// setupTS is the allocator state used at load time (global lists).
func (v *VM) setupTS() heap.ThreadSlots { return heap.ThreadSlots{} }

func (v *VM) installString(strC *object.RClass) {
	v.DefineNative(strC, "length", 0, false, strLen)
	v.DefineNative(strC, "size", 0, false, strLen)
	v.DefineNative(strC, "to_i", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		s := strings.TrimSpace(self.Ref.Str)
		end := 0
		for end < len(s) && (s[end] == '-' || s[end] == '+' || (s[end] >= '0' && s[end] <= '9')) {
			end++
		}
		n, _ := strconv.ParseInt(s[:end], 10, 64)
		return object.FixVal(n), nil
	})
	v.DefineNative(strC, "to_f", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		fl, _ := strconv.ParseFloat(strings.TrimSpace(self.Ref.Str), 64)
		val, _, err := t.allocFloat(fl)
		return val, err
	})
	v.DefineNative(strC, "to_s", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return self, nil
	})
	v.DefineNative(strC, "to_sym", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.SymVal(t.vm.Syms.Intern(self.Ref.Str)), nil
	})
	v.DefineNative(strC, "empty?", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(len(self.Ref.Str) == 0), nil
	})
	v.DefineNative(strC, "split", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		if !t.isString(args[0]) {
			return object.Nil, fmt.Errorf("split expects a String separator")
		}
		parts := strings.Split(self.Ref.Str, args[0].Ref.Str)
		return t.makeStringArray(parts)
	})
	v.DefineNative(strC, "include?", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(strings.Contains(self.Ref.Str, args[0].Ref.Str)), nil
	})
	v.DefineNative(strC, "start_with?", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(strings.HasPrefix(self.Ref.Str, args[0].Ref.Str)), nil
	})
	v.DefineNative(strC, "index", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		i := strings.Index(self.Ref.Str, args[0].Ref.Str)
		if i < 0 {
			return object.Nil, nil
		}
		return object.FixVal(int64(i)), nil
	})
	v.DefineNative(strC, "upcase", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		o, _, err := t.allocString(strings.ToUpper(self.Ref.Str))
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	v.DefineNative(strC, "downcase", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		o, _, err := t.allocString(strings.ToLower(self.Ref.Str))
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	v.DefineNative(strC, "strip", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		o, _, err := t.allocString(strings.TrimSpace(self.Ref.Str))
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
	v.DefineNative(strC, "slice", 2, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		s := self.Ref.Str
		from, n := args[0].Fix, args[1].Fix
		if from < 0 || from > int64(len(s)) {
			return object.Nil, nil
		}
		to := from + n
		if to > int64(len(s)) {
			to = int64(len(s))
		}
		o, _, err := t.allocString(s[from:to])
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
}

func strLen(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
	return object.FixVal(int64(len(self.Ref.Str))), nil
}

func (t *RThread) makeStringArray(parts []string) (object.Value, error) {
	arr, _, err := t.allocArray(len(parts))
	if err != nil {
		return object.Nil, err
	}
	for _, p := range parts {
		o, _, err := t.allocString(p)
		if err != nil {
			return object.Nil, err
		}
		if _, err := t.arrayPush(arr, object.RefVal(o)); err != nil {
			return object.Nil, err
		}
	}
	return object.RefVal(arr), nil
}

func (v *VM) installArray(arrC *object.RClass) {
	v.DefineStatic(arrC, "new", -1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		n := 0
		if len(args) > 0 {
			if args[0].Kind != object.KFixnum {
				return object.Nil, fmt.Errorf("Array.new expects a size")
			}
			n = int(args[0].Fix)
		}
		init := object.Nil
		if len(args) > 1 {
			init = args[1]
		}
		arr, _, err := t.allocArray(n)
		if err != nil {
			return object.Nil, err
		}
		base := simmem.Addr(t.acc.Load(arr.AddrOf(object.SlotA)).Bits)
		for i := 0; i < n; i++ {
			t.acc.Store(base+simmem.Addr(i*simmem.WordBytes), init.Word())
		}
		t.acc.Store(arr.AddrOf(object.SlotB), simmem.Word{Bits: uint64(n)})
		return object.RefVal(arr), nil
	})
	lenFn := func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.FixVal(t.arrayLen(self.Ref)), nil
	}
	v.DefineNative(arrC, "length", 0, false, lenFn)
	v.DefineNative(arrC, "size", 0, false, lenFn)
	v.DefineNative(arrC, "push", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		if _, err := t.arrayPush(self.Ref, args[0]); err != nil {
			return object.Nil, err
		}
		return self, nil
	})
	v.DefineNative(arrC, "first", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		val, _ := t.arrayGet(self.Ref, 0)
		return val, nil
	})
	v.DefineNative(arrC, "last", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		val, _ := t.arrayGet(self.Ref, t.arrayLen(self.Ref)-1)
		return val, nil
	})
	v.DefineNative(arrC, "join", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		sep := ""
		if t.isString(args[0]) {
			sep = args[0].Ref.Str
		}
		n := t.arrayLen(self.Ref)
		parts := make([]string, n)
		for i := int64(0); i < n; i++ {
			el, _ := t.arrayGet(self.Ref, i)
			parts[i], _ = t.toS(el)
		}
		o, _, err := t.allocString(strings.Join(parts, sep))
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
}

func (v *VM) installHash(hashC *object.RClass) {
	v.DefineStatic(hashC, "new", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		h, _, err := t.allocHash(0)
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(h), nil
	})
	sizeFn := func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.FixVal(int64(t.acc.Load(self.Ref.AddrOf(object.SlotB)).Bits)), nil
	}
	v.DefineNative(hashC, "size", 0, false, sizeFn)
	v.DefineNative(hashC, "length", 0, false, sizeFn)
	v.DefineNative(hashC, "keys", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		keys, _ := t.hashKeys(self.Ref)
		arr, _, err := t.allocArray(len(keys))
		if err != nil {
			return object.Nil, err
		}
		for _, k := range keys {
			if _, err := t.arrayPush(arr, k); err != nil {
				return object.Nil, err
			}
		}
		return object.RefVal(arr), nil
	})
	v.DefineNative(hashC, "has_key?", 1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		keys, _ := t.hashKeys(self.Ref)
		for _, k := range keys {
			if hashKeyEq(k, args[0]) {
				return object.True, nil
			}
		}
		return object.False, nil
	})
}

func (v *VM) installRange(rangeC *object.RClass) {
	v.DefineNative(rangeC, "first", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.FromWord(t.acc.Load(self.Ref.AddrOf(object.SlotA))), nil
	})
	v.DefineNative(rangeC, "last", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.FromWord(t.acc.Load(self.Ref.AddrOf(object.SlotB))), nil
	})
	v.DefineNative(rangeC, "exclude_end?", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		return object.BoolVal(t.acc.Load(self.Ref.AddrOf(object.SlotC)).Bits == 1), nil
	})
}

func (v *VM) installThreading(threadC, mutexC, condC *object.RClass) {
	v.DefineStatic(threadC, "new", -1, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		if !blk.valid() {
			return object.Nil, fmt.Errorf("Thread.new requires a block")
		}
		if t.inAnyTx() {
			// Spawning a thread is a scheduling side effect: GIL territory.
			t.restrictedOp()
			return object.Nil, errRedo
		}
		thObj, err := t.allocObject(object.TThread, threadC)
		if err != nil {
			return object.Nil, err
		}
		child := t.vm.newRThread(fmt.Sprintf("ruby-%d", len(t.vm.threads)))
		if child == nil {
			return object.Nil, fmt.Errorf("vm: thread limit exceeded")
		}
		child.thrObj = thObj
		thObj.Native = child
		cp := make([]object.Value, len(args))
		copy(cp, args)
		child.pushEntry(blk.iseq, blk.self, blk.env, cp)
		child.spawn(now + 2000)
		return object.RefVal(thObj), nil
	})
	joinish := func(value bool) NativeFn {
		return func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
			child, ok := self.Ref.Native.(*RThread)
			if !ok {
				return object.Nil, fmt.Errorf("join on dead thread object")
			}
			if child.finished {
				if value {
					return child.result, nil
				}
				return self, nil
			}
			child.joiners = append(child.joiners, t)
			return object.Nil, ErrBlocked
		}
	}
	v.DefineNative(threadC, "join", 0, true, joinish(false))
	v.DefineNative(threadC, "value", 0, true, joinish(true))
	v.DefineNative(threadC, "alive?", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		child, ok := self.Ref.Native.(*RThread)
		return object.BoolVal(ok && !child.finished), nil
	})

	v.DefineStatic(mutexC, "new", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		o, err := t.allocObject(object.TMutex, mutexC)
		if err != nil {
			return object.Nil, err
		}
		o.Native = &mutexData{}
		t.acc.Store(o.AddrOf(object.SlotA), simmem.Word{Bits: 0})
		return object.RefVal(o), nil
	})
	v.DefineNative(mutexC, "lock", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		md := self.Ref.Native.(*mutexData)
		owner := t.acc.Load(self.Ref.AddrOf(object.SlotA)).Bits
		if owner == uint64(t.ctxID+1) {
			// Either the unlock handoff stamped us as owner while we were
			// parked, or a transaction that observed the handoff aborted
			// and this is the retry. The lock word in simulated memory is
			// the source of truth (it rolls back with aborted transactions;
			// host-side state does not), so owner==self always means ours.
			// True recursive locking is unsupported and behaves as a
			// reentrant no-op (documented deviation from ThreadError).
			t.nativeState = nil
			return self, nil
		}
		if owner == 0 && len(md.waiters) == 0 {
			// Uncontended fast path: a plain transactional store, exactly
			// like CRuby's atomic lock word. Conflicts are detected by the
			// HTM substrate.
			t.acc.Store(self.Ref.AddrOf(object.SlotA), simmem.Word{Bits: uint64(t.ctxID + 1)})
			return self, nil
		}
		// Contended: parking is a scheduling side effect.
		if t.inAnyTx() {
			t.restrictedOp()
			return object.Nil, errRedo
		}
		if owner == 0 {
			// Free but with queued waiters: take it fairly only if we were
			// the woken waiter (our ctx id was stamped by unlock).
			t.acc.Store(self.Ref.AddrOf(object.SlotA), simmem.Word{Bits: uint64(t.ctxID + 1)})
			return self, nil
		}
		md.waiters = append(md.waiters, t)
		t.nativeState = "mutex-wait"
		return object.Nil, ErrBlocked
	})
	v.DefineNative(mutexC, "unlock", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		md := self.Ref.Native.(*mutexData)
		owner := t.acc.Load(self.Ref.AddrOf(object.SlotA)).Bits
		if owner != uint64(t.ctxID+1) {
			return object.Nil, fmt.Errorf("unlock of mutex not owned (owner=%d, self=%d)", owner, t.ctxID+1)
		}
		if len(md.waiters) > 0 {
			if t.inAnyTx() {
				// Waking a waiter cannot happen speculatively.
				t.restrictedOp()
				return object.Nil, errRedo
			}
			next := md.waiters[0]
			md.waiters = md.waiters[1:]
			t.acc.Store(self.Ref.AddrOf(object.SlotA), simmem.Word{Bits: uint64(next.ctxID + 1)})
			t.vm.Engine.Wake(next.sth, now+200)
			return self, nil
		}
		t.acc.Store(self.Ref.AddrOf(object.SlotA), simmem.Word{Bits: 0})
		return self, nil
	})

	v.DefineStatic(condC, "new", 0, false, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		o, err := t.allocObject(object.TCond, condC)
		if err != nil {
			return object.Nil, err
		}
		o.Native = &condData{}
		return object.RefVal(o), nil
	})
	v.DefineNative(condC, "wait", 1, true, func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
		cd := self.Ref.Native.(*condData)
		mu := args[0]
		if mu.Kind != object.KRef || mu.Ref.Type != object.TMutex {
			return object.Nil, fmt.Errorf("ConditionVariable#wait expects a Mutex")
		}
		md := mu.Ref.Native.(*mutexData)
		switch t.nativeState {
		case nil:
			// Release the mutex and park on the condition.
			owner := t.acc.Load(mu.Ref.AddrOf(object.SlotA)).Bits
			if owner != uint64(t.ctxID+1) {
				return object.Nil, fmt.Errorf("wait without holding the mutex")
			}
			if len(md.waiters) > 0 {
				next := md.waiters[0]
				md.waiters = md.waiters[1:]
				t.acc.Store(mu.Ref.AddrOf(object.SlotA), simmem.Word{Bits: uint64(next.ctxID + 1)})
				t.vm.Engine.Wake(next.sth, now+200)
			} else {
				t.acc.Store(mu.Ref.AddrOf(object.SlotA), simmem.Word{Bits: 0})
			}
			cd.waiters = append(cd.waiters, t)
			t.nativeState = "cv-signaled"
			return object.Nil, ErrBlocked
		case "cv-signaled":
			// Re-acquire the mutex.
			owner := t.acc.Load(mu.Ref.AddrOf(object.SlotA)).Bits
			if owner == 0 {
				t.acc.Store(mu.Ref.AddrOf(object.SlotA), simmem.Word{Bits: uint64(t.ctxID + 1)})
				t.nativeState = nil
				return self, nil
			}
			md.waiters = append(md.waiters, t)
			t.nativeState = "cv-relock"
			return object.Nil, ErrBlocked
		case "cv-relock":
			// Woken by unlock handoff: we own the mutex now.
			t.nativeState = nil
			return self, nil
		}
		return object.Nil, fmt.Errorf("ConditionVariable#wait: bad state")
	})
	wakeFn := func(all bool) NativeFn {
		return func(t *RThread, self object.Value, args []object.Value, blk BlockArg, now int64) (object.Value, error) {
			cd := self.Ref.Native.(*condData)
			if len(cd.waiters) == 0 {
				return self, nil
			}
			if t.inAnyTx() {
				t.restrictedOp()
				return object.Nil, errRedo
			}
			n := 1
			if all {
				n = len(cd.waiters)
			}
			for i := 0; i < n; i++ {
				t.vm.Engine.Wake(cd.waiters[i].sth, now+200+int64(i)*50)
			}
			cd.waiters = cd.waiters[n:]
			return self, nil
		}
	}
	v.DefineNative(condC, "signal", 0, false, wakeFn(false))
	v.DefineNative(condC, "broadcast", 0, false, wakeFn(true))
}
