package sched

import (
	"fmt"
	"testing"
)

// benchDispatch measures the per-step dispatch cost of Engine.Run: threads
// threads of equal-cost steps on ctxs hardware contexts, so every step
// forces a scheduling decision among all runnable threads.
func benchDispatch(b *testing.B, threads, ctxs int) {
	b.ReportAllocs()
	steps := b.N/threads + 1
	e := NewEngine(Config{HWThreads: ctxs})
	for i := 0; i < threads; i++ {
		e.Spawn("t", 0, counterStep(steps, int64(97+i), nil, i))
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStepDispatch(b *testing.B) {
	for _, shape := range []struct{ threads, ctxs int }{
		{4, 4}, {12, 12}, {64, 8}, {256, 8}, {1024, 64}, {1024, 256},
	} {
		b.Run(fmt.Sprintf("threads=%d/ctxs=%d", shape.threads, shape.ctxs), func(b *testing.B) {
			benchDispatch(b, shape.threads, shape.ctxs)
		})
	}
}

// BenchmarkBlockWake exercises the park/unpark path together with timed
// events, the other scheduler hot path of the server benchmarks.
func BenchmarkBlockWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(Config{HWThreads: 2})
	n := b.N
	var waiter *Thread
	waiter = e.Spawn("w", 0, func(now int64) StepResult {
		if n <= 0 {
			return StepResult{Cycles: 1, Status: Done}
		}
		e.At(now+10, func(at int64) { e.Wake(waiter, at) })
		return StepResult{Cycles: 1, Status: Blocked}
	})
	e.Spawn("driver", 0, func(now int64) StepResult {
		n--
		if n <= 0 {
			return StepResult{Cycles: 1, Status: Done}
		}
		return StepResult{Cycles: 1, Status: Running}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
