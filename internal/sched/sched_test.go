package sched

import (
	"testing"
)

// counterStep returns a StepFunc that runs n steps of the given cost.
func counterStep(n int, cost int64, trace *[]int, id int) StepFunc {
	left := n
	return func(now int64) StepResult {
		if trace != nil {
			*trace = append(*trace, id)
		}
		left--
		if left == 0 {
			return StepResult{Cycles: cost, Status: Done}
		}
		return StepResult{Cycles: cost, Status: Running}
	}
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	e := NewEngine(Config{HWThreads: 1})
	th := e.Spawn("t0", 0, counterStep(10, 100, nil, 0))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Status() != Done {
		t.Fatalf("thread not done")
	}
	if th.Clock != 1000 {
		t.Fatalf("clock = %d, want 1000", th.Clock)
	}
}

func TestTwoThreadsTwoCoresRunInParallel(t *testing.T) {
	e := NewEngine(Config{HWThreads: 2})
	a := e.Spawn("a", 0, counterStep(10, 100, nil, 0))
	b := e.Spawn("b", 0, counterStep(10, 100, nil, 1))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Parallel execution: both finish at virtual time 1000, not 2000.
	if a.Clock != 1000 || b.Clock != 1000 {
		t.Fatalf("clocks = %d, %d; want 1000, 1000", a.Clock, b.Clock)
	}
}

func TestTwoThreadsOneCoreInterleave(t *testing.T) {
	e := NewEngine(Config{HWThreads: 1})
	var trace []int
	a := e.Spawn("a", 0, counterStep(3, 100, &trace, 0))
	b := e.Spawn("b", 0, counterStep(3, 100, &trace, 1))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// One core: total time is the sum of all work.
	if got := max64(a.Clock, b.Clock); got != 600 {
		t.Fatalf("makespan = %d, want 600", got)
	}
	// The two threads alternate (min-clock scheduling at equal costs).
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSMTPenaltyAndSiblingBusy(t *testing.T) {
	// 2 hw threads forming one core with SMT penalty 2.0.
	e := NewEngine(Config{HWThreads: 2, SMTWays: 2, SMTPenalty: 2})
	a := e.Spawn("a", 0, counterStep(10, 100, nil, 0))
	b := e.Spawn("b", 0, counterStep(10, 100, nil, 1))
	if a.Ctx.Sibling() != b.Ctx || b.Ctx.Sibling() != a.Ctx {
		t.Fatalf("contexts not SMT-paired")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both run at half speed (10 steps * 200 cycles), except b's final step,
	// which runs after its sibling has finished and pays no penalty.
	if a.Clock != 2000 || b.Clock != 1900 {
		t.Fatalf("clocks = %d, %d; want 2000, 1900", a.Clock, b.Clock)
	}
}

func TestSMTPairsFillCoresFirst(t *testing.T) {
	e := NewEngine(Config{HWThreads: 8, SMTWays: 2, SMTPenalty: 2})
	var ths []*Thread
	for i := 0; i < 4; i++ {
		ths = append(ths, e.Spawn("t", 0, counterStep(1, 1, nil, i)))
	}
	// First four threads land on four distinct cores (no shared siblings).
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if ths[i].Ctx == ths[j].Ctx || ths[i].Ctx.Sibling() == ths[j].Ctx {
				t.Fatalf("threads %d and %d share a core", i, j)
			}
		}
	}
}

func TestSMTPairingOddHWThreads(t *testing.T) {
	// 7 hardware threads at SMT-2: three full cores plus one sibling-less
	// context. The truncation hazard is pairing ctx i with ctx i+3 (7/2=3),
	// which would leave the odd context *after* the primaries and make
	// round-robin placement double up a core while a whole core sat idle.
	e := NewEngine(Config{HWThreads: 7, SMTWays: 2, SMTPenalty: 2})
	ctxs := e.Contexts()
	// Pairing must be symmetric and involve exactly 6 contexts.
	paired := 0
	for _, c := range ctxs {
		if s := c.Sibling(); s != nil {
			paired++
			if s.Sibling() != c {
				t.Fatalf("asymmetric sibling pairing: ctx %d", c.ID)
			}
			if s == c {
				t.Fatalf("ctx %d is its own sibling", c.ID)
			}
		}
	}
	if paired != 6 {
		t.Fatalf("paired contexts = %d, want 6", paired)
	}
	// The first ceil(7/2) = 4 spawns must land on four distinct cores: no
	// two of them on the same context or on sibling contexts.
	var ths []*Thread
	for i := 0; i < 7; i++ {
		ths = append(ths, e.Spawn("t", 0, counterStep(1, 1, nil, i)))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if ths[i].Ctx == ths[j].Ctx || ths[i].Ctx.Sibling() == ths[j].Ctx {
				t.Fatalf("threads %d and %d share a core before all cores are filled", i, j)
			}
		}
	}
	// The remaining three spawns fill the siblings of already-used cores.
	for i := 4; i < 7; i++ {
		sib := ths[i].Ctx.Sibling()
		if sib == nil {
			t.Fatalf("thread %d landed on the sibling-less core out of order", i)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEvenSMTPairingUnchanged(t *testing.T) {
	// The even case must keep the historical layout: ctx i pairs with
	// ctx i+cores, so existing schedules stay bit-identical.
	e := NewEngine(Config{HWThreads: 8, SMTWays: 2, SMTPenalty: 2})
	ctxs := e.Contexts()
	for i := 0; i < 4; i++ {
		if ctxs[i].Sibling() != ctxs[i+4] || ctxs[i+4].Sibling() != ctxs[i] {
			t.Fatalf("ctx %d not paired with ctx %d", i, i+4)
		}
	}
}

func TestBlockAndWake(t *testing.T) {
	e := NewEngine(Config{HWThreads: 2})
	var waiter *Thread
	phase := 0
	waiter = e.Spawn("waiter", 0, func(now int64) StepResult {
		switch phase {
		case 0:
			phase = 1
			return StepResult{Cycles: 10, Status: Blocked}
		default:
			return StepResult{Cycles: 5, Status: Done}
		}
	})
	e.At(500, func(now int64) { e.Wake(waiter, now) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waiter.Clock != 505 {
		t.Fatalf("waiter clock = %d, want 505", waiter.Clock)
	}
	if waiter.LastWait() != 500-10 {
		t.Fatalf("lastWait = %d, want 490", waiter.LastWait())
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(Config{HWThreads: 1})
	e.Spawn("d", 0, func(now int64) StepResult {
		return StepResult{Cycles: 1, Status: Blocked}
	})
	if err := e.Run(); err == nil {
		t.Fatalf("expected deadlock error")
	}
}

func TestTimedEventsFireInOrder(t *testing.T) {
	e := NewEngine(Config{HWThreads: 1})
	var fired []int64
	// Events only fire while threads are alive; park one until the end.
	var waiter *Thread
	waiter = e.Spawn("w", 0, func(now int64) StepResult {
		if now < 300 {
			return StepResult{Cycles: 1, Status: Blocked}
		}
		return StepResult{Cycles: 1, Status: Done}
	})
	e.At(300, func(now int64) { fired = append(fired, now); e.Wake(waiter, now) })
	e.At(100, func(now int64) { fired = append(fired, now) })
	e.At(100, func(now int64) { fired = append(fired, now+1) }) // same time: FIFO by insertion
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[0] != 100 || fired[1] != 101 || fired[2] != 300 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimedEventBeforeStepSeesEarlierTime(t *testing.T) {
	e := NewEngine(Config{HWThreads: 1})
	var order []string
	e.Spawn("t", 200, func(now int64) StepResult {
		order = append(order, "step")
		return StepResult{Cycles: 1, Status: Done}
	})
	e.At(50, func(now int64) { order = append(order, "event") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "event" || order[1] != "step" {
		t.Fatalf("order = %v", order)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine(Config{HWThreads: 2})
	childDone := false
	e.Spawn("parent", 0, func(now int64) StepResult {
		e.Spawn("child", now+10, func(now2 int64) StepResult {
			if now2 < now+10 {
				panic("child started before its spawn time")
			}
			childDone = true
			return StepResult{Cycles: 1, Status: Done}
		})
		return StepResult{Cycles: 10, Status: Done}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childDone {
		t.Fatalf("child never ran")
	}
}

func TestStopHaltsEngine(t *testing.T) {
	e := NewEngine(Config{HWThreads: 1})
	n := 0
	e.Spawn("t", 0, func(now int64) StepResult {
		n++
		if n == 5 {
			e.Stop()
		}
		return StepResult{Cycles: 1, Status: Running}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("steps = %d, want 5", n)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []int {
		e := NewEngine(Config{HWThreads: 3})
		var trace []int
		for i := 0; i < 5; i++ {
			cost := int64(30 + i*7)
			id := i
			e.Spawn("t", 0, counterStep(20, cost, &trace, id))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
