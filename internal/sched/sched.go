// Package sched is a deterministic discrete-event simulator of a small
// multiprocessor. Simulated threads advance per-thread virtual clocks by
// executing steps (one bytecode, one native operation, ...) that report
// their cycle cost; hardware-thread contexts model core occupancy and SMT
// cycle sharing. The engine is entirely single-threaded: given the same
// inputs it produces bit-identical schedules, which makes every experiment
// in this repository reproducible.
package sched

import (
	"container/heap"
	"fmt"
	"os"
	"sort"

	"htmgil/internal/choice"
	"htmgil/internal/trace"
)

// DebugSched enables loop tracing (tests only).
var DebugSched = false

// Status is the scheduling state a step leaves its thread in.
type Status uint8

// Thread step outcomes.
const (
	Running Status = iota // keep scheduling the thread
	Blocked               // thread parked until Engine.Wake
	Done                  // thread finished
)

// StepResult reports the outcome of one simulated step.
type StepResult struct {
	Cycles int64  // virtual cycles consumed by the step
	Status Status // state after the step
}

// StepFunc executes one step of a simulated thread starting at virtual time
// now and returns its cost and resulting state.
type StepFunc func(now int64) StepResult

// Config describes the simulated machine shape.
type Config struct {
	HWThreads  int     // number of hardware threads (contexts)
	SMTWays    int     // hardware threads per core (1 or 2)
	SMTPenalty float64 // cycle multiplier while the SMT sibling is busy (e.g. 1.9)
}

// HWContext is one hardware thread of the simulated machine.
type HWContext struct {
	ID      int
	clock   int64 // time at which this hardware thread is next free
	sibling *HWContext
	nlive   int // live software threads affined to this context

	// runq holds the Running threads affined to this context. In ctx
	// dispatch mode it is a min-heap ordered by (Clock, ID); in scan mode
	// it is unused (emptied, rebuilt on mode entry).
	runq []*Thread
	// heapIdx is this context's index in the engine's context heap, -1
	// while the context has no runnable thread (or in scan mode).
	heapIdx int
}

// Clock returns the virtual time at which the context is next free.
func (c *HWContext) Clock() int64 { return c.clock }

// Busy reports whether the context has any live software thread. The HTM
// layer uses the sibling's Busy to halve transactional capacities under SMT.
func (c *HWContext) Busy() bool { return c.nlive > 0 }

// Sibling returns the SMT sibling context, or nil on non-SMT machines.
func (c *HWContext) Sibling() *HWContext { return c.sibling }

// Thread is a simulated software thread.
type Thread struct {
	ID    int
	Clock int64
	Ctx   *HWContext

	status     Status
	step       StepFunc
	blockStart int64
	lastWait   int64
	runIdx     int // index in the engine's flat Running list, -1 when not running
	ctxIdx     int // index in Ctx.runq (ctx mode), -1 when not queued
	Name       string
}

// Status returns the thread's scheduling state.
func (t *Thread) Status() Status { return t.status }

// LastWait returns the virtual time the thread spent blocked before its most
// recent wake-up; the interpreter attributes it to a wait category.
func (t *Thread) LastWait() int64 { return t.lastWait }

type timedEvent struct {
	at  int64
	seq int64
	fn  func(now int64)
}

type eventPQ []*timedEvent

func (q eventPQ) Len() int { return len(q) }
func (q eventPQ) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int)     { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)       { *q = append(*q, x.(*timedEvent)) }
func (q *eventPQ) Pop() any         { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventPQ) peek() *timedEvent { return q[0] }

// Dispatch strategy. The Running threads always live in one flat slice
// (runList); what varies is how the minimum of the dispatch order —
// (effective start, own clock, ID) — is found. Below dispatchCtxMin threads
// the engine scans the slice: a handful of inline comparisons per step beats
// any structure. At dispatchCtxMin it switches to incremental two-level
// maintenance: each context keeps a min-heap of its runnable threads ordered
// by (Clock, ID), and a top-level heap orders the contexts by their head's
// dispatch key. Below dispatchCtxExit it falls back to scanning (the gap is
// hysteresis, so a workload oscillating around the threshold does not
// rebuild the structures every step).
//
// The two-level split is what makes large-N dispatch cheap. Within one
// context, effStart = max(ctx.clock, th.Clock), so ordering by (Clock, ID)
// refines the dispatch order exactly AND is invariant under advances of the
// context's clock: a step never reorders the stepping context's queue, it
// only changes that one context's key in the small top-level heap. Each
// step therefore costs O(log threads-per-context + log contexts) instead of
// restamping every thread queued on the context (the previous design). Both
// orders are the same strict total order, so the dispatched thread — and
// therefore the whole schedule — is identical in either mode.
// BenchmarkStepDispatch measures the crossover;
// TestDispatchModesBitIdentical pins the equivalence on a randomized corpus.
//
// The thresholds are variables only so the corpus test can force one mode.
var (
	dispatchCtxMin  = 64
	dispatchCtxExit = 48
)

// runList holds the Running threads as an unordered slice; threads track
// their index for O(1) removal. It is the only structure scan mode needs,
// and ctx mode keeps it current so mode exits cost nothing.
type runList struct {
	th []*Thread
}

func (l *runList) add(t *Thread) {
	t.runIdx = len(l.th)
	l.th = append(l.th, t)
}

// removeAt detaches the thread at slice index i by swapping in the last
// element; no ordering invariant exists to repair.
func (l *runList) removeAt(i int) {
	last := len(l.th) - 1
	t := l.th[i]
	l.th[i] = l.th[last]
	l.th[i].runIdx = i
	l.th[last] = nil
	l.th = l.th[:last]
	t.runIdx = -1
}

// effStart returns the earliest virtual time th could begin its next step:
// its own clock or the time its hardware context becomes free.
func effStart(th *Thread) int64 {
	if th.Ctx.clock > th.Clock {
		return th.Ctx.clock
	}
	return th.Clock
}

// runqLess orders threads within one context's run queue: smallest own
// clock first (the longest waiter), then lowest ID. IDs are unique, so this
// is a strict total order — and because every thread in the queue shares
// the same context clock, it refines the global dispatch order
// (effStart, Clock, ID) restricted to the queue, whatever the context
// clock is.
func runqLess(a, b *Thread) bool {
	if a.Clock != b.Clock {
		return a.Clock < b.Clock
	}
	return a.ID < b.ID
}

func (c *HWContext) runqSwap(i, j int) {
	c.runq[i], c.runq[j] = c.runq[j], c.runq[i]
	c.runq[i].ctxIdx = i
	c.runq[j].ctxIdx = j
}

func (c *HWContext) runqUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !runqLess(c.runq[i], c.runq[parent]) {
			break
		}
		c.runqSwap(i, parent)
		i = parent
	}
}

func (c *HWContext) runqDown(i int) {
	n := len(c.runq)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && runqLess(c.runq[r], c.runq[l]) {
			m = r
		}
		if !runqLess(c.runq[m], c.runq[i]) {
			return
		}
		c.runqSwap(i, m)
		i = m
	}
}

func (c *HWContext) runqPush(th *Thread) {
	th.ctxIdx = len(c.runq)
	c.runq = append(c.runq, th)
	c.runqUp(th.ctxIdx)
}

// runqPopHead removes and returns the queue head.
func (c *HWContext) runqPopHead() *Thread {
	h := c.runq[0]
	last := len(c.runq) - 1
	c.runqSwap(0, last)
	c.runq[last] = nil
	c.runq = c.runq[:last]
	h.ctxIdx = -1
	if last > 0 {
		c.runqDown(0)
	}
	return h
}

// ctxBefore orders two contexts by their queue heads' dispatch keys:
// earliest effective start, then smallest own clock, then lowest ID. Both
// queues are non-empty while their contexts sit in the engine's context
// heap, and thread IDs are unique, so this is a strict total order.
func ctxBefore(a, b *HWContext) bool {
	ha, hb := a.runq[0], b.runq[0]
	ea, eb := ha.Clock, hb.Clock
	if a.clock > ea {
		ea = a.clock
	}
	if b.clock > eb {
		eb = b.clock
	}
	if ea != eb {
		return ea < eb
	}
	if ha.Clock != hb.Clock {
		return ha.Clock < hb.Clock
	}
	return ha.ID < hb.ID
}

// Engine drives the simulation.
type Engine struct {
	cfg     Config
	ctxs    []*HWContext
	run     runList // all Running threads, unordered
	ctxMode bool    // see the dispatch-strategy comment above
	ctxq    []*HWContext
	timed   eventPQ
	seq     int64
	now     int64
	live    int
	nthread int
	stopped bool
	nextCtx int

	// Tracer, when non-nil, receives thread-spawn/thread-done events.
	Tracer *trace.Recorder

	// WakeJitter, when non-nil, returns extra cycles to delay a wakeup
	// scheduled for the given time — the fault harness's stand-in for OS
	// preemption/dispatch jitter. It must be deterministic.
	WakeJitter func(at int64) int64

	// Chooser, when non-nil, takes control of thread dispatch and timer
	// firing: Run switches to the exploration loop, which offers every
	// dispatch decision (and every fire-or-defer decision for due timed
	// events) to the Chooser. Index 0 always reproduces the vanilla
	// schedule. Installed by internal/explore.
	Chooser choice.Chooser
}

// NewEngine builds a simulated machine.
func NewEngine(cfg Config) *Engine {
	if cfg.HWThreads <= 0 {
		panic("sched: need at least one hardware thread")
	}
	if cfg.SMTWays <= 0 {
		cfg.SMTWays = 1
	}
	if cfg.SMTPenalty < 1 {
		cfg.SMTPenalty = 1
	}
	e := &Engine{cfg: cfg}
	e.ctxs = make([]*HWContext, cfg.HWThreads)
	for i := range e.ctxs {
		e.ctxs[i] = &HWContext{ID: i, heapIdx: -1}
	}
	if cfg.SMTWays == 2 {
		// Contexts are ordered core-first: ctx i and ctx i+cores share core i,
		// so that spreading threads round-robin fills distinct cores first,
		// as the paper's thread placement does. cores rounds up so that an
		// odd context count yields one sibling-less core among the primaries
		// rather than a sibling-less context *after* them (which round-robin
		// placement would fill only after doubling up a core).
		cores := (cfg.HWThreads + 1) / 2
		for i := 0; i+cores < cfg.HWThreads; i++ {
			e.ctxs[i].sibling = e.ctxs[i+cores]
			e.ctxs[i+cores].sibling = e.ctxs[i]
		}
	}
	return e
}

// Contexts returns the hardware-thread contexts.
func (e *Engine) Contexts() []*HWContext { return e.ctxs }

// Now returns the current virtual time (the start time of the most recent
// step or timed event).
func (e *Engine) Now() int64 { return e.now }

// Spawn creates a thread starting at virtual time startAt, affined
// round-robin to the hardware contexts (distinct cores first).
func (e *Engine) Spawn(name string, startAt int64, step StepFunc) *Thread {
	ctx := e.ctxs[e.nextCtx%len(e.ctxs)]
	e.nextCtx++
	th := &Thread{
		ID:     e.nthread,
		Name:   name,
		Clock:  startAt,
		Ctx:    ctx,
		step:   step,
		runIdx: -1,
		ctxIdx: -1,
	}
	e.nthread++
	ctx.nlive++
	e.live++
	e.addRunning(th)
	if e.Tracer != nil {
		ev := trace.Ev(startAt, trace.KindThreadSpawn)
		ev.Thread = th.ID
		ev.Note = name
		e.Tracer.Emit(ev)
	}
	return th
}

// addRunning inserts a thread into the Running structures. In ctx mode the
// thread also enters its context's queue; the context's top-level key is
// repaired immediately, so the heaps stay valid between any two mutations
// (a step's Spawns and Wakes interleave with the stepping thread being
// temporarily dequeued).
func (e *Engine) addRunning(th *Thread) {
	e.run.add(th)
	if e.ctxMode {
		c := th.Ctx
		c.runqPush(th)
		if c.heapIdx < 0 {
			e.ctxqPush(c)
		} else if th.ctxIdx == 0 {
			e.ctxqFix(c) // new head: the context's key changed
		}
	}
}

// Context-heap maintenance (ctx mode): a hand-rolled indexed min-heap over
// the contexts with runnable threads, ordered by ctxBefore. The comparator
// reads live clocks; that is sound because every single-context mutation
// (queue push/pop, clock advance) is followed by one fix of that context
// before any other context is touched.

func (e *Engine) ctxqSwap(i, j int) {
	e.ctxq[i], e.ctxq[j] = e.ctxq[j], e.ctxq[i]
	e.ctxq[i].heapIdx = i
	e.ctxq[j].heapIdx = j
}

func (e *Engine) ctxqUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !ctxBefore(e.ctxq[i], e.ctxq[parent]) {
			break
		}
		e.ctxqSwap(i, parent)
		i = parent
	}
}

func (e *Engine) ctxqDown(i int) {
	n := len(e.ctxq)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && ctxBefore(e.ctxq[r], e.ctxq[l]) {
			m = r
		}
		if !ctxBefore(e.ctxq[m], e.ctxq[i]) {
			return
		}
		e.ctxqSwap(i, m)
		i = m
	}
}

func (e *Engine) ctxqPush(c *HWContext) {
	c.heapIdx = len(e.ctxq)
	e.ctxq = append(e.ctxq, c)
	e.ctxqUp(c.heapIdx)
}

func (e *Engine) ctxqRemove(c *HWContext) {
	i := c.heapIdx
	last := len(e.ctxq) - 1
	e.ctxqSwap(i, last)
	e.ctxq[last] = nil
	e.ctxq = e.ctxq[:last]
	c.heapIdx = -1
	if i < last {
		e.ctxqFixAt(i)
	}
}

// ctxqFix repairs c's position after its key changed.
func (e *Engine) ctxqFix(c *HWContext) { e.ctxqFixAt(c.heapIdx) }

func (e *Engine) ctxqFixAt(i int) {
	e.ctxqUp(i)
	if e.ctxq[i].heapIdx == i {
		e.ctxqDown(i)
	}
}

// setDispatchMode flips between scan and ctx dispatch with hysteresis.
// Entering ctx mode rebuilds the per-context queues from the flat Running
// list and heapifies the context heap; leaving tears the structures down
// (scan mode maintains neither).
func (e *Engine) setDispatchMode() {
	if n := len(e.run.th); e.ctxMode {
		if n < dispatchCtxExit {
			e.ctxMode = false
			for _, c := range e.ctxs {
				for i := range c.runq {
					c.runq[i].ctxIdx = -1
					c.runq[i] = nil
				}
				c.runq = c.runq[:0]
				c.heapIdx = -1
			}
			for i := range e.ctxq {
				e.ctxq[i] = nil
			}
			e.ctxq = e.ctxq[:0]
		}
	} else if n >= dispatchCtxMin {
		for _, th := range e.run.th {
			th.ctxIdx = len(th.Ctx.runq)
			th.Ctx.runq = append(th.Ctx.runq, th)
		}
		for _, c := range e.ctxs {
			if len(c.runq) == 0 {
				continue
			}
			for i := len(c.runq)/2 - 1; i >= 0; i-- {
				c.runqDown(i)
			}
			e.ctxqPush(c)
		}
		e.ctxMode = true
	}
}

// At schedules fn to run at virtual time t.
func (e *Engine) At(t int64, fn func(now int64)) {
	e.seq++
	heap.Push(&e.timed, &timedEvent{at: t, seq: e.seq, fn: fn})
}

// Wake unparks a blocked thread at virtual time t (or the thread's own
// clock, whichever is later) and records the wait duration.
func (e *Engine) Wake(t *Thread, at int64) {
	if t.status != Blocked {
		panic(fmt.Sprintf("sched: waking thread %d in state %d", t.ID, t.status))
	}
	if e.WakeJitter != nil {
		at += e.WakeJitter(at)
	}
	if at < t.Clock {
		at = t.Clock
	}
	t.lastWait = at - t.blockStart
	t.Clock = at
	t.status = Running
	e.addRunning(t)
}

// Stop makes Run return after the current step completes.
func (e *Engine) Stop() { e.stopped = true }

// Live returns the number of threads that have not finished.
func (e *Engine) Live() int { return e.live }

// Run drives the simulation until every thread is Done, Stop is called, or
// no progress is possible. It returns an error on deadlock (blocked threads
// with no pending timed events).
func (e *Engine) Run() error {
	if e.Chooser != nil {
		return e.runExplore()
	}
	dbgCount := 0
	for !e.stopped {
		if DebugSched && dbgCount < 30 {
			dbgCount++
			peekAt := int64(-1)
			if len(e.timed) > 0 {
				peekAt = e.timed.peek().at
			}
			fmt.Fprintf(os.Stderr, "sched: loop live=%d running=%d timed=%d peek=%d\n", e.live, len(e.run.th), len(e.timed), peekAt)
		}
		if e.live == 0 {
			// Every thread finished; pending timed events (timers,
			// watchdogs) must not advance the clock past the makespan.
			return nil
		}
		e.setDispatchMode()
		var pick *Thread
		var pickAt int64
		if e.ctxMode {
			if len(e.ctxq) > 0 {
				pick = e.ctxq[0].runq[0]
				pickAt = effStart(pick)
			}
		} else {
			for _, th := range e.run.th {
				at := effStart(th)
				// Prefer the earliest start time; among ties, the thread
				// that has waited longest (smallest own clock) so threads
				// sharing a core round-robin; among full ties, the lowest
				// ID (determinism).
				if pick == nil || at < pickAt ||
					(at == pickAt && (th.Clock < pick.Clock ||
						(th.Clock == pick.Clock && th.ID < pick.ID))) {
					pick, pickAt = th, at
				}
			}
		}
		// Fire timed events due before the next step.
		if len(e.timed) > 0 && (pick == nil || e.timed.peek().at <= pickAt) {
			ev := heap.Pop(&e.timed).(*timedEvent)
			if ev.at > e.now {
				e.now = ev.at
			}
			ev.fn(e.now)
			continue
		}
		if pick == nil {
			return fmt.Errorf("sched: deadlock with %d live threads", e.live)
		}
		e.execStep(pick, pickAt)
	}
	return nil
}

// execStep runs one step of pick starting at pickAt and applies the outcome
// to the Running structures. In ctx mode the pick — always its context's
// queue head — is dequeued before the step runs, because the step mutates
// the pick's clock (the queue's ordering key) and may Spawn or Wake threads
// into any queue; it re-enters with its final clock afterwards. The flat
// Running list keeps the pick throughout, as scan mode always has.
func (e *Engine) execStep(pick *Thread, pickAt int64) {
	ctx := pick.Ctx
	if e.ctxMode {
		ctx.runqPopHead()
		if len(ctx.runq) == 0 {
			e.ctxqRemove(ctx)
		} else {
			e.ctxqFix(ctx)
		}
	}
	e.now = pickAt
	pick.Clock = pickAt
	res := pick.step(pickAt)
	cost := res.Cycles
	if cost < 0 {
		panic("sched: negative step cost")
	}
	if e.cfg.SMTWays == 2 && ctx.sibling != nil && ctx.sibling.Busy() {
		cost = int64(float64(cost) * e.cfg.SMTPenalty)
	}
	end := pickAt + cost
	pick.Clock = end
	ctx.clock = end
	switch res.Status {
	case Running:
		if e.ctxMode {
			ctx.runqPush(pick)
			if ctx.heapIdx < 0 {
				e.ctxqPush(ctx)
			} else {
				// Clock advance and possible new head: one key change,
				// one fix.
				e.ctxqFix(ctx)
			}
		}
	case Blocked:
		pick.status = Blocked
		pick.blockStart = end
		e.run.removeAt(pick.runIdx)
		if e.ctxMode && ctx.heapIdx >= 0 {
			e.ctxqFix(ctx) // the context's clock advanced under its queue
		}
	case Done:
		pick.status = Done
		ctx.nlive--
		e.live--
		e.run.removeAt(pick.runIdx)
		if e.ctxMode && ctx.heapIdx >= 0 {
			e.ctxqFix(ctx)
		}
		if e.Tracer != nil {
			ev := trace.Ev(end, trace.KindThreadDone)
			ev.Thread = pick.ID
			e.Tracer.Emit(ev)
		}
	}
}

// runExplore is the dispatch loop used when a Chooser is installed. It stays
// in scan mode (exploration targets small thread counts), computes the full
// deterministic candidate order each iteration, and lets the Chooser pick
// which runnable thread steps next and whether due timed events fire before
// the step or after it. When every choice is 0 the schedule is identical to
// the vanilla Run loop's.
func (e *Engine) runExplore() error {
	var cands []*Thread
	for !e.stopped {
		if e.live == 0 {
			return nil
		}
		// The engine never enters ctx mode here; candidate order is the
		// scan preference as a total order: effective start, then own
		// clock (longest waiter), then ID.
		cands = append(cands[:0], e.run.th...)
		sort.Slice(cands, func(i, j int) bool {
			ai, aj := effStart(cands[i]), effStart(cands[j])
			if ai != aj {
				return ai < aj
			}
			if cands[i].Clock != cands[j].Clock {
				return cands[i].Clock < cands[j].Clock
			}
			return cands[i].ID < cands[j].ID
		})
		if len(cands) == 0 {
			// No runnable thread: a due timed event (a wakeup source) must
			// fire — there is no alternative to offer.
			if len(e.timed) == 0 {
				return fmt.Errorf("sched: deadlock with %d live threads", e.live)
			}
			e.fireTimed()
			continue
		}
		defaultAt := effStart(cands[0])
		if len(e.timed) > 0 && e.timed.peek().at <= defaultAt {
			// A timed event is due before the preferred thread step: offer
			// the choice to defer it past one step. Each deferral is one
			// non-default choice, so bounded exploration terminates.
			if e.Chooser.Choose(choice.Timer, 2) == 0 {
				e.fireTimed()
				continue
			}
		}
		idx := 0
		if len(cands) > 1 {
			idx = e.Chooser.Choose(choice.Dispatch, len(cands))
		}
		pick := cands[idx]
		e.execStep(pick, effStart(pick))
	}
	return nil
}

// fireTimed pops and runs the earliest timed event.
func (e *Engine) fireTimed() {
	ev := heap.Pop(&e.timed).(*timedEvent)
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn(e.now)
}
