// Package sched is a deterministic discrete-event simulator of a small
// multiprocessor. Simulated threads advance per-thread virtual clocks by
// executing steps (one bytecode, one native operation, ...) that report
// their cycle cost; hardware-thread contexts model core occupancy and SMT
// cycle sharing. The engine is entirely single-threaded: given the same
// inputs it produces bit-identical schedules, which makes every experiment
// in this repository reproducible.
package sched

import (
	"container/heap"
	"fmt"
	"os"

	"htmgil/internal/trace"
)

// DebugSched enables loop tracing (tests only).
var DebugSched = false

// Status is the scheduling state a step leaves its thread in.
type Status uint8

// Thread step outcomes.
const (
	Running Status = iota // keep scheduling the thread
	Blocked               // thread parked until Engine.Wake
	Done                  // thread finished
)

// StepResult reports the outcome of one simulated step.
type StepResult struct {
	Cycles int64  // virtual cycles consumed by the step
	Status Status // state after the step
}

// StepFunc executes one step of a simulated thread starting at virtual time
// now and returns its cost and resulting state.
type StepFunc func(now int64) StepResult

// Config describes the simulated machine shape.
type Config struct {
	HWThreads  int     // number of hardware threads (contexts)
	SMTWays    int     // hardware threads per core (1 or 2)
	SMTPenalty float64 // cycle multiplier while the SMT sibling is busy (e.g. 1.9)
}

// HWContext is one hardware thread of the simulated machine.
type HWContext struct {
	ID      int
	clock   int64 // time at which this hardware thread is next free
	sibling *HWContext
	nlive   int // live software threads affined to this context
}

// Clock returns the virtual time at which the context is next free.
func (c *HWContext) Clock() int64 { return c.clock }

// Busy reports whether the context has any live software thread. The HTM
// layer uses the sibling's Busy to halve transactional capacities under SMT.
func (c *HWContext) Busy() bool { return c.nlive > 0 }

// Sibling returns the SMT sibling context, or nil on non-SMT machines.
func (c *HWContext) Sibling() *HWContext { return c.sibling }

// Thread is a simulated software thread.
type Thread struct {
	ID    int
	Clock int64
	Ctx   *HWContext

	status     Status
	step       StepFunc
	blockStart int64
	lastWait   int64
	runIdx     int // index in the engine's running set, -1 when not running
	Name       string
}

// Status returns the thread's scheduling state.
func (t *Thread) Status() Status { return t.status }

// LastWait returns the virtual time the thread spent blocked before its most
// recent wake-up; the interpreter attributes it to a wait category.
func (t *Thread) LastWait() int64 { return t.lastWait }

type timedEvent struct {
	at  int64
	seq int64
	fn  func(now int64)
}

type eventPQ []*timedEvent

func (q eventPQ) Len() int { return len(q) }
func (q eventPQ) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int)     { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)       { *q = append(*q, x.(*timedEvent)) }
func (q *eventPQ) Pop() any         { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventPQ) peek() *timedEvent { return q[0] }

// Engine drives the simulation.
type Engine struct {
	cfg     Config
	ctxs    []*HWContext
	running []*Thread // unordered set of Running threads
	timed   eventPQ
	seq     int64
	now     int64
	live    int
	nthread int
	stopped bool
	nextCtx int

	// Tracer, when non-nil, receives thread-spawn/thread-done events.
	Tracer *trace.Recorder
}

// NewEngine builds a simulated machine.
func NewEngine(cfg Config) *Engine {
	if cfg.HWThreads <= 0 {
		panic("sched: need at least one hardware thread")
	}
	if cfg.SMTWays <= 0 {
		cfg.SMTWays = 1
	}
	if cfg.SMTPenalty < 1 {
		cfg.SMTPenalty = 1
	}
	e := &Engine{cfg: cfg}
	e.ctxs = make([]*HWContext, cfg.HWThreads)
	for i := range e.ctxs {
		e.ctxs[i] = &HWContext{ID: i}
	}
	if cfg.SMTWays == 2 {
		// Contexts are ordered core-first: ctx i and ctx i+cores share core i,
		// so that spreading threads round-robin fills distinct cores first,
		// as the paper's thread placement does.
		cores := cfg.HWThreads / 2
		for i := 0; i < cores; i++ {
			e.ctxs[i].sibling = e.ctxs[i+cores]
			e.ctxs[i+cores].sibling = e.ctxs[i]
		}
	}
	return e
}

// Contexts returns the hardware-thread contexts.
func (e *Engine) Contexts() []*HWContext { return e.ctxs }

// Now returns the current virtual time (the start time of the most recent
// step or timed event).
func (e *Engine) Now() int64 { return e.now }

// Spawn creates a thread starting at virtual time startAt, affined
// round-robin to the hardware contexts (distinct cores first).
func (e *Engine) Spawn(name string, startAt int64, step StepFunc) *Thread {
	ctx := e.ctxs[e.nextCtx%len(e.ctxs)]
	e.nextCtx++
	th := &Thread{
		ID:     e.nthread,
		Name:   name,
		Clock:  startAt,
		Ctx:    ctx,
		step:   step,
		runIdx: -1,
	}
	e.nthread++
	ctx.nlive++
	e.live++
	e.addRunning(th)
	if e.Tracer != nil {
		ev := trace.Ev(startAt, trace.KindThreadSpawn)
		ev.Thread = th.ID
		ev.Note = name
		e.Tracer.Emit(ev)
	}
	return th
}

func (e *Engine) addRunning(th *Thread) {
	th.runIdx = len(e.running)
	e.running = append(e.running, th)
}

func (e *Engine) removeRunning(th *Thread) {
	i := th.runIdx
	last := len(e.running) - 1
	e.running[i] = e.running[last]
	e.running[i].runIdx = i
	e.running = e.running[:last]
	th.runIdx = -1
}

// At schedules fn to run at virtual time t.
func (e *Engine) At(t int64, fn func(now int64)) {
	e.seq++
	heap.Push(&e.timed, &timedEvent{at: t, seq: e.seq, fn: fn})
}

// Wake unparks a blocked thread at virtual time t (or the thread's own
// clock, whichever is later) and records the wait duration.
func (e *Engine) Wake(t *Thread, at int64) {
	if t.status != Blocked {
		panic(fmt.Sprintf("sched: waking thread %d in state %d", t.ID, t.status))
	}
	if at < t.Clock {
		at = t.Clock
	}
	t.lastWait = at - t.blockStart
	t.Clock = at
	t.status = Running
	e.addRunning(t)
}

// Stop makes Run return after the current step completes.
func (e *Engine) Stop() { e.stopped = true }

// Live returns the number of threads that have not finished.
func (e *Engine) Live() int { return e.live }

// effStart returns the earliest virtual time th could begin its next step:
// its own clock or the time its hardware context becomes free.
func (e *Engine) effStart(th *Thread) int64 {
	if th.Ctx.clock > th.Clock {
		return th.Ctx.clock
	}
	return th.Clock
}

// Run drives the simulation until every thread is Done, Stop is called, or
// no progress is possible. It returns an error on deadlock (blocked threads
// with no pending timed events).
func (e *Engine) Run() error {
	dbgCount := 0
	for !e.stopped {
		if DebugSched && dbgCount < 30 {
			dbgCount++
			peekAt := int64(-1)
			if len(e.timed) > 0 {
				peekAt = e.timed.peek().at
			}
			fmt.Fprintf(os.Stderr, "sched: loop live=%d running=%d timed=%d peek=%d\n", e.live, len(e.running), len(e.timed), peekAt)
		}
		if e.live == 0 {
			// Every thread finished; pending timed events (timers,
			// watchdogs) must not advance the clock past the makespan.
			return nil
		}
		var pick *Thread
		var pickAt int64
		for _, th := range e.running {
			at := e.effStart(th)
			// Prefer the earliest start time; among ties, the thread that
			// has waited longest (smallest own clock) so threads sharing a
			// core round-robin; among full ties, the lowest ID (determinism).
			if pick == nil || at < pickAt ||
				(at == pickAt && (th.Clock < pick.Clock ||
					(th.Clock == pick.Clock && th.ID < pick.ID))) {
				pick, pickAt = th, at
			}
		}
		// Fire timed events due before the next step.
		if len(e.timed) > 0 && (pick == nil || e.timed.peek().at <= pickAt) {
			ev := heap.Pop(&e.timed).(*timedEvent)
			if ev.at > e.now {
				e.now = ev.at
			}
			ev.fn(e.now)
			continue
		}
		if pick == nil {
			return fmt.Errorf("sched: deadlock with %d live threads", e.live)
		}
		e.now = pickAt
		pick.Clock = pickAt
		res := pick.step(pickAt)
		cost := res.Cycles
		if cost < 0 {
			panic("sched: negative step cost")
		}
		if e.cfg.SMTWays == 2 && pick.Ctx.sibling != nil && pick.Ctx.sibling.Busy() {
			cost = int64(float64(cost) * e.cfg.SMTPenalty)
		}
		end := pickAt + cost
		pick.Clock = end
		pick.Ctx.clock = end
		switch res.Status {
		case Running:
		case Blocked:
			pick.status = Blocked
			pick.blockStart = end
			e.removeRunning(pick)
		case Done:
			pick.status = Done
			pick.Ctx.nlive--
			e.live--
			e.removeRunning(pick)
			if e.Tracer != nil {
				ev := trace.Ev(end, trace.KindThreadDone)
				ev.Thread = pick.ID
				e.Tracer.Emit(ev)
			}
		}
	}
	return nil
}
