// Package sched is a deterministic discrete-event simulator of a small
// multiprocessor. Simulated threads advance per-thread virtual clocks by
// executing steps (one bytecode, one native operation, ...) that report
// their cycle cost; hardware-thread contexts model core occupancy and SMT
// cycle sharing. The engine is entirely single-threaded: given the same
// inputs it produces bit-identical schedules, which makes every experiment
// in this repository reproducible.
package sched

import (
	"container/heap"
	"fmt"
	"os"
	"sort"

	"htmgil/internal/choice"
	"htmgil/internal/trace"
)

// DebugSched enables loop tracing (tests only).
var DebugSched = false

// Status is the scheduling state a step leaves its thread in.
type Status uint8

// Thread step outcomes.
const (
	Running Status = iota // keep scheduling the thread
	Blocked               // thread parked until Engine.Wake
	Done                  // thread finished
)

// StepResult reports the outcome of one simulated step.
type StepResult struct {
	Cycles int64  // virtual cycles consumed by the step
	Status Status // state after the step
}

// StepFunc executes one step of a simulated thread starting at virtual time
// now and returns its cost and resulting state.
type StepFunc func(now int64) StepResult

// Config describes the simulated machine shape.
type Config struct {
	HWThreads  int     // number of hardware threads (contexts)
	SMTWays    int     // hardware threads per core (1 or 2)
	SMTPenalty float64 // cycle multiplier while the SMT sibling is busy (e.g. 1.9)
}

// HWContext is one hardware thread of the simulated machine.
type HWContext struct {
	ID      int
	clock   int64 // time at which this hardware thread is next free
	sibling *HWContext
	nlive   int       // live software threads affined to this context
	runset  []*Thread // Running threads affined to this context
}

// Clock returns the virtual time at which the context is next free.
func (c *HWContext) Clock() int64 { return c.clock }

// Busy reports whether the context has any live software thread. The HTM
// layer uses the sibling's Busy to halve transactional capacities under SMT.
func (c *HWContext) Busy() bool { return c.nlive > 0 }

// Sibling returns the SMT sibling context, or nil on non-SMT machines.
func (c *HWContext) Sibling() *HWContext { return c.sibling }

// Thread is a simulated software thread.
type Thread struct {
	ID    int
	Clock int64
	Ctx   *HWContext

	status     Status
	step       StepFunc
	blockStart int64
	lastWait   int64
	runIdx     int   // index in the engine's run-heap, -1 when not running
	ctxIdx     int   // index in Ctx.runset, -1 when not running
	key        int64 // cached effective start time ordering the run-heap
	Name       string
}

// Status returns the thread's scheduling state.
func (t *Thread) Status() Status { return t.status }

// LastWait returns the virtual time the thread spent blocked before its most
// recent wake-up; the interpreter attributes it to a wait category.
func (t *Thread) LastWait() int64 { return t.lastWait }

type timedEvent struct {
	at  int64
	seq int64
	fn  func(now int64)
}

type eventPQ []*timedEvent

func (q eventPQ) Len() int { return len(q) }
func (q eventPQ) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int)     { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)       { *q = append(*q, x.(*timedEvent)) }
func (q *eventPQ) Pop() any         { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventPQ) peek() *timedEvent { return q[0] }

// Dispatch strategy. The Running set lives in one slice (runHeap.th); what
// varies is how the minimum is found. Below heapDispatchMin threads the
// engine scans the slice — a handful of inline comparisons per step beats
// any structure. At heapDispatchMin the slice is heapified in place and
// maintained as an indexed min-heap keyed on effective start time, turning
// each step's dispatch from O(running) into O(log running); below
// heapDispatchExit it falls back to scanning (the gap is hysteresis, so a
// workload oscillating around the threshold does not re-heapify every
// step). Both orders are the same strict total order, so the dispatched
// thread — and therefore the whole schedule — is identical in either mode.
// BenchmarkStepDispatch measures the crossover.
const (
	heapDispatchMin  = 64
	heapDispatchExit = 48
)

// runHeap holds the Running threads; in heap mode it is an indexed min-heap
// keyed on effective start time. The comparator reproduces the scan's
// preference order exactly — earliest effective start, then smallest own
// clock (longest waiter), then lowest ID — so schedules stay bit-identical.
//
// The heap orders by the CACHED key (Thread.key), not by live clocks. The
// engine keeps the invariant "key == effStart" for every queued thread: a
// push stamps the key, and when a step advances a context's clock, every
// thread queued on that context gets its key restamped and re-sifted
// (refreshCtx). Caching matters for correctness, not just speed: heap.Fix
// repairs a single changed key against an otherwise-valid heap, so if the
// comparator read live clocks, a context-clock advance would change many
// keys at once and per-node Fix could leave the heap invalid (an up-move
// during one node's fix compares against another not-yet-fixed node). With
// cached keys each restamp+Fix is a valid single-key transition.
type runHeap struct {
	th []*Thread
}

// before reports whether thread a must be dispatched before thread b.
// IDs are unique, so this is a strict total order.
func before(a, b *Thread) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.Clock != b.Clock {
		return a.Clock < b.Clock
	}
	return a.ID < b.ID
}

func (h runHeap) Len() int           { return len(h.th) }
func (h runHeap) Less(i, j int) bool { return before(h.th[i], h.th[j]) }
func (h runHeap) Swap(i, j int) {
	h.th[i], h.th[j] = h.th[j], h.th[i]
	h.th[i].runIdx = i
	h.th[j].runIdx = j
}
func (h *runHeap) Push(x any) {
	t := x.(*Thread)
	t.runIdx = len(h.th)
	h.th = append(h.th, t)
}
func (h *runHeap) Pop() any {
	old := h.th
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	h.th = old[:n-1]
	t.runIdx = -1
	return t
}

// effStart returns the earliest virtual time th could begin its next step:
// its own clock or the time its hardware context becomes free.
func effStart(th *Thread) int64 {
	if th.Ctx.clock > th.Clock {
		return th.Ctx.clock
	}
	return th.Clock
}

// Engine drives the simulation.
type Engine struct {
	cfg      Config
	ctxs     []*HWContext
	run      runHeap // Running threads; min-heap when heapMode
	heapMode bool    // see the dispatch-strategy comment on runHeap
	timed    eventPQ
	seq      int64
	now      int64
	live     int
	nthread  int
	stopped  bool
	nextCtx  int

	// Tracer, when non-nil, receives thread-spawn/thread-done events.
	Tracer *trace.Recorder

	// WakeJitter, when non-nil, returns extra cycles to delay a wakeup
	// scheduled for the given time — the fault harness's stand-in for OS
	// preemption/dispatch jitter. It must be deterministic.
	WakeJitter func(at int64) int64

	// Chooser, when non-nil, takes control of thread dispatch and timer
	// firing: Run switches to the exploration loop, which offers every
	// dispatch decision (and every fire-or-defer decision for due timed
	// events) to the Chooser. Index 0 always reproduces the vanilla
	// schedule. Installed by internal/explore.
	Chooser choice.Chooser
}

// NewEngine builds a simulated machine.
func NewEngine(cfg Config) *Engine {
	if cfg.HWThreads <= 0 {
		panic("sched: need at least one hardware thread")
	}
	if cfg.SMTWays <= 0 {
		cfg.SMTWays = 1
	}
	if cfg.SMTPenalty < 1 {
		cfg.SMTPenalty = 1
	}
	e := &Engine{cfg: cfg}
	e.ctxs = make([]*HWContext, cfg.HWThreads)
	for i := range e.ctxs {
		e.ctxs[i] = &HWContext{ID: i}
	}
	if cfg.SMTWays == 2 {
		// Contexts are ordered core-first: ctx i and ctx i+cores share core i,
		// so that spreading threads round-robin fills distinct cores first,
		// as the paper's thread placement does. cores rounds up so that an
		// odd context count yields one sibling-less core among the primaries
		// rather than a sibling-less context *after* them (which round-robin
		// placement would fill only after doubling up a core).
		cores := (cfg.HWThreads + 1) / 2
		for i := 0; i+cores < cfg.HWThreads; i++ {
			e.ctxs[i].sibling = e.ctxs[i+cores]
			e.ctxs[i+cores].sibling = e.ctxs[i]
		}
	}
	return e
}

// Contexts returns the hardware-thread contexts.
func (e *Engine) Contexts() []*HWContext { return e.ctxs }

// Now returns the current virtual time (the start time of the most recent
// step or timed event).
func (e *Engine) Now() int64 { return e.now }

// Spawn creates a thread starting at virtual time startAt, affined
// round-robin to the hardware contexts (distinct cores first).
func (e *Engine) Spawn(name string, startAt int64, step StepFunc) *Thread {
	ctx := e.ctxs[e.nextCtx%len(e.ctxs)]
	e.nextCtx++
	th := &Thread{
		ID:     e.nthread,
		Name:   name,
		Clock:  startAt,
		Ctx:    ctx,
		step:   step,
		runIdx: -1,
		ctxIdx: -1,
	}
	e.nthread++
	ctx.nlive++
	e.live++
	e.addRunning(th)
	if e.Tracer != nil {
		ev := trace.Ev(startAt, trace.KindThreadSpawn)
		ev.Thread = th.ID
		ev.Note = name
		e.Tracer.Emit(ev)
	}
	return th
}

func (e *Engine) addRunning(th *Thread) {
	if e.heapMode {
		th.key = effStart(th)
		heap.Push(&e.run, th)
		th.ctxIdx = len(th.Ctx.runset)
		th.Ctx.runset = append(th.Ctx.runset, th)
	} else {
		// Scan mode keeps no per-context run sets (only heap mode's
		// refreshCtx needs them); they are rebuilt on the next transition.
		th.runIdx = len(e.run.th)
		e.run.th = append(e.run.th, th)
	}
}

// removePick takes a thread that just finished a step (Blocked or Done) out
// of the Running set. In heap mode the heap sifts by cached keys, which are
// still mutually consistent here, so heap.Remove is sound even though the
// pick's live effective start moved.
func (e *Engine) removePick(pick *Thread) {
	if e.heapMode {
		heap.Remove(&e.run, pick.runIdx)
		e.detachCtx(pick)
	} else {
		e.run.removeAt(pick.runIdx)
	}
}

// removeAt detaches the thread at slice index i without any sifting; scan
// mode keeps no ordering invariant to repair.
func (h *runHeap) removeAt(i int) {
	last := len(h.th) - 1
	t := h.th[i]
	h.th[i] = h.th[last]
	h.th[i].runIdx = i
	h.th[last] = nil
	h.th = h.th[:last]
	t.runIdx = -1
}

// detachCtx removes th from its context's run set.
func (e *Engine) detachCtx(th *Thread) {
	set := th.Ctx.runset
	i := th.ctxIdx
	last := len(set) - 1
	set[i] = set[last]
	set[i].ctxIdx = i
	set[last] = nil
	th.Ctx.runset = set[:last]
	th.ctxIdx = -1
}

// refreshCtx restamps the cached key of every thread queued on ctx and
// re-sifts each; called after a step advanced ctx's clock in heap mode.
// Each restamp is a single-key change against a heap that is valid for the
// cached keys, so per-node heap.Fix is sound (see the runHeap comment).
// Typically ctx holds O(threads/contexts) queued threads, so this stays
// cheaper than a full scan of the Running set.
func (e *Engine) refreshCtx(ctx *HWContext) {
	for _, th := range ctx.runset {
		if k := effStart(th); k != th.key {
			th.key = k
			heap.Fix(&e.run, th.runIdx)
		}
	}
}

// setDispatchMode flips between scan and heap dispatch with hysteresis.
// Entering heap mode stamps every key, rebuilds the per-context run sets
// (scan mode does not maintain them) and heapifies in place; leaving it
// costs nothing, since scan mode ignores both slice order and run sets.
func (e *Engine) setDispatchMode() {
	if n := len(e.run.th); e.heapMode {
		if n < heapDispatchExit {
			e.heapMode = false
		}
	} else if n >= heapDispatchMin {
		for _, c := range e.ctxs {
			for i := range c.runset {
				c.runset[i] = nil
			}
			c.runset = c.runset[:0]
		}
		for _, th := range e.run.th {
			th.key = effStart(th)
			th.ctxIdx = len(th.Ctx.runset)
			th.Ctx.runset = append(th.Ctx.runset, th)
		}
		heap.Init(&e.run)
		e.heapMode = true
	}
}

// At schedules fn to run at virtual time t.
func (e *Engine) At(t int64, fn func(now int64)) {
	e.seq++
	heap.Push(&e.timed, &timedEvent{at: t, seq: e.seq, fn: fn})
}

// Wake unparks a blocked thread at virtual time t (or the thread's own
// clock, whichever is later) and records the wait duration.
func (e *Engine) Wake(t *Thread, at int64) {
	if t.status != Blocked {
		panic(fmt.Sprintf("sched: waking thread %d in state %d", t.ID, t.status))
	}
	if e.WakeJitter != nil {
		at += e.WakeJitter(at)
	}
	if at < t.Clock {
		at = t.Clock
	}
	t.lastWait = at - t.blockStart
	t.Clock = at
	t.status = Running
	e.addRunning(t)
}

// Stop makes Run return after the current step completes.
func (e *Engine) Stop() { e.stopped = true }

// Live returns the number of threads that have not finished.
func (e *Engine) Live() int { return e.live }

// Run drives the simulation until every thread is Done, Stop is called, or
// no progress is possible. It returns an error on deadlock (blocked threads
// with no pending timed events).
func (e *Engine) Run() error {
	if e.Chooser != nil {
		return e.runExplore()
	}
	dbgCount := 0
	for !e.stopped {
		if DebugSched && dbgCount < 30 {
			dbgCount++
			peekAt := int64(-1)
			if len(e.timed) > 0 {
				peekAt = e.timed.peek().at
			}
			fmt.Fprintf(os.Stderr, "sched: loop live=%d running=%d timed=%d peek=%d\n", e.live, len(e.run.th), len(e.timed), peekAt)
		}
		if e.live == 0 {
			// Every thread finished; pending timed events (timers,
			// watchdogs) must not advance the clock past the makespan.
			return nil
		}
		e.setDispatchMode()
		var pick *Thread
		var pickAt int64
		if e.heapMode {
			pick = e.run.th[0]
			pickAt = pick.key // == effStart(pick); see refreshCtx
		} else {
			for _, th := range e.run.th {
				at := effStart(th)
				// Prefer the earliest start time; among ties, the thread
				// that has waited longest (smallest own clock) so threads
				// sharing a core round-robin; among full ties, the lowest
				// ID (determinism).
				if pick == nil || at < pickAt ||
					(at == pickAt && (th.Clock < pick.Clock ||
						(th.Clock == pick.Clock && th.ID < pick.ID))) {
					pick, pickAt = th, at
				}
			}
		}
		// Fire timed events due before the next step.
		if len(e.timed) > 0 && (pick == nil || e.timed.peek().at <= pickAt) {
			ev := heap.Pop(&e.timed).(*timedEvent)
			if ev.at > e.now {
				e.now = ev.at
			}
			ev.fn(e.now)
			continue
		}
		if pick == nil {
			return fmt.Errorf("sched: deadlock with %d live threads", e.live)
		}
		e.execStep(pick, pickAt)
	}
	return nil
}

// execStep runs one step of pick starting at pickAt and applies the outcome
// to the Running set. The pick stays in the Running set while its step runs;
// a step may Spawn or Wake threads into the set, which is safe in either
// mode (a heap push compares against the pick's still-cached key, and its
// restamp comes in refreshCtx below).
func (e *Engine) execStep(pick *Thread, pickAt int64) {
	e.now = pickAt
	pick.Clock = pickAt
	res := pick.step(pickAt)
	cost := res.Cycles
	if cost < 0 {
		panic("sched: negative step cost")
	}
	if e.cfg.SMTWays == 2 && pick.Ctx.sibling != nil && pick.Ctx.sibling.Busy() {
		cost = int64(float64(cost) * e.cfg.SMTPenalty)
	}
	end := pickAt + cost
	pick.Clock = end
	pick.Ctx.clock = end
	switch res.Status {
	case Running:
		// Still in the Running set; heap mode repairs its key below.
	case Blocked:
		pick.status = Blocked
		pick.blockStart = end
		e.removePick(pick)
	case Done:
		pick.status = Done
		pick.Ctx.nlive--
		e.live--
		e.removePick(pick)
		if e.Tracer != nil {
			ev := trace.Ev(end, trace.KindThreadDone)
			ev.Thread = pick.ID
			e.Tracer.Emit(ev)
		}
	}
	// The context's clock advanced: every thread still queued on it —
	// including the pick itself when it stays Running — has a new
	// effective start time (scan mode reads the live clocks, so only
	// heap mode has cached keys to repair).
	if e.heapMode {
		e.refreshCtx(pick.Ctx)
	}
}

// runExplore is the dispatch loop used when a Chooser is installed. It stays
// in scan mode (exploration targets small thread counts), computes the full
// deterministic candidate order each iteration, and lets the Chooser pick
// which runnable thread steps next and whether due timed events fire before
// the step or after it. When every choice is 0 the schedule is identical to
// the vanilla Run loop's.
func (e *Engine) runExplore() error {
	var cands []*Thread
	for !e.stopped {
		if e.live == 0 {
			return nil
		}
		// The engine never enters heap mode here; candidate order is the
		// scan preference as a total order: effective start, then own
		// clock (longest waiter), then ID.
		cands = append(cands[:0], e.run.th...)
		sort.Slice(cands, func(i, j int) bool {
			ai, aj := effStart(cands[i]), effStart(cands[j])
			if ai != aj {
				return ai < aj
			}
			if cands[i].Clock != cands[j].Clock {
				return cands[i].Clock < cands[j].Clock
			}
			return cands[i].ID < cands[j].ID
		})
		if len(cands) == 0 {
			// No runnable thread: a due timed event (a wakeup source) must
			// fire — there is no alternative to offer.
			if len(e.timed) == 0 {
				return fmt.Errorf("sched: deadlock with %d live threads", e.live)
			}
			e.fireTimed()
			continue
		}
		defaultAt := effStart(cands[0])
		if len(e.timed) > 0 && e.timed.peek().at <= defaultAt {
			// A timed event is due before the preferred thread step: offer
			// the choice to defer it past one step. Each deferral is one
			// non-default choice, so bounded exploration terminates.
			if e.Chooser.Choose(choice.Timer, 2) == 0 {
				e.fireTimed()
				continue
			}
		}
		idx := 0
		if len(cands) > 1 {
			idx = e.Chooser.Choose(choice.Dispatch, len(cands))
		}
		pick := cands[idx]
		e.execStep(pick, effStart(pick))
	}
	return nil
}

// fireTimed pops and runs the earliest timed event.
func (e *Engine) fireTimed() {
	ev := heap.Pop(&e.timed).(*timedEvent)
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn(e.now)
}
