package sched

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file pins the central dispatch invariant: scan mode and ctx mode
// implement the same strict total order (effective start, own clock, ID),
// so every workload must yield a bit-identical schedule whichever structure
// maintains the runnable set — and however often the hybrid flips between
// them. The corpus is randomized over thread counts that straddle the mode
// thresholds, SMT shapes, step costs, block/wake via timed events, and
// spawn-during-step.

type stepRec struct {
	id int
	at int64
}

// spawnCorpusThread adds one randomized thread: 1–40 steps of varying cost,
// possibly blocking once mid-run (woken by a timed event), possibly
// spawning a child thread from inside a step. All randomness is drawn at
// construction time so a step's behavior depends only on the schedule.
func spawnCorpusThread(rng *rand.Rand, e *Engine, out *[]stepRec, startAt int64, depth int) {
	nsteps := 1 + rng.Intn(40)
	costs := make([]int64, nsteps)
	for j := range costs {
		costs[j] = 1 + rng.Int63n(500)
	}
	blockAt := -1
	var blockDelay int64
	if nsteps > 1 && rng.Intn(3) == 0 {
		blockAt = rng.Intn(nsteps - 1)
		blockDelay = 1 + rng.Int63n(2000)
	}
	spawnAt := -1
	var childSeed int64
	if depth > 0 && rng.Intn(4) == 0 {
		spawnAt = rng.Intn(nsteps)
		childSeed = rng.Int63()
	}
	step := 0
	var th *Thread
	th = e.Spawn("corpus", startAt, func(now int64) StepResult {
		*out = append(*out, stepRec{th.ID, now})
		c := costs[step]
		if step == spawnAt {
			crng := rand.New(rand.NewSource(childSeed))
			spawnCorpusThread(crng, e, out, now+c/2, depth-1)
		}
		isBlock := step == blockAt
		step++
		if step == nsteps {
			return StepResult{Cycles: c, Status: Done}
		}
		if isBlock {
			me := th
			e.At(now+c+blockDelay, func(at int64) { e.Wake(me, at) })
			return StepResult{Cycles: c, Status: Blocked}
		}
		return StepResult{Cycles: c, Status: Running}
	})
}

// runDispatchCase executes the seed's workload under the given mode
// thresholds and returns the full dispatch trace (thread ID and start time
// of every step).
func runDispatchCase(t *testing.T, seed int64, min, exit int) []stepRec {
	t.Helper()
	savedMin, savedExit := dispatchCtxMin, dispatchCtxExit
	dispatchCtxMin, dispatchCtxExit = min, exit
	defer func() { dispatchCtxMin, dispatchCtxExit = savedMin, savedExit }()

	ctxs := 1 + int(seed%16)
	smt := 1
	if seed%3 == 0 {
		smt = 2
	}
	e := NewEngine(Config{HWThreads: ctxs, SMTWays: smt, SMTPenalty: 1.9})
	var tr []stepRec
	rng := rand.New(rand.NewSource(seed))
	nthreads := 3 + rng.Intn(298)
	for i := 0; i < nthreads; i++ {
		spawnCorpusThread(rng, e, &tr, rng.Int63n(5000), 2)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d (min=%d exit=%d): %v", seed, min, exit, err)
	}
	return tr
}

func TestDispatchModesBitIdentical(t *testing.T) {
	const never = 1 << 30
	for seed := int64(1); seed <= 30; seed++ {
		scan := runDispatchCase(t, seed, never, 0) // pure scan: the reference order
		variants := []struct {
			name      string
			min, exit int
		}{
			{"hybrid-default", 64, 48}, // shipping thresholds
			{"ctx-always", 1, 0},       // ctx mode from the first step
			{"ctx-churn", 8, 6},        // flips modes constantly at corpus sizes
		}
		for _, v := range variants {
			got := runDispatchCase(t, seed, v.min, v.exit)
			if len(got) != len(scan) {
				t.Fatalf("seed %d: %s ran %d steps, scan ran %d", seed, v.name, len(got), len(scan))
			}
			for i := range scan {
				if got[i] != scan[i] {
					t.Fatalf("seed %d: %s diverges from scan at step %d: got thread %d @%d, want thread %d @%d",
						seed, v.name, i, got[i].id, got[i].at, scan[i].id, scan[i].at)
				}
			}
		}
	}
}

// TestDispatchCtxModeEngages guards the threshold plumbing itself: a
// workload larger than dispatchCtxMin must actually enter ctx mode (a
// regression here would silently re-run everything through the scan path,
// making the corpus comparison vacuous).
func TestDispatchCtxModeEngages(t *testing.T) {
	e := NewEngine(Config{HWThreads: 8})
	sawCtxMode := false
	for i := 0; i < dispatchCtxMin+10; i++ {
		e.Spawn(fmt.Sprintf("t%d", i), 0, func(now int64) StepResult {
			if e.ctxMode {
				sawCtxMode = true
			}
			return StepResult{Cycles: 10, Status: Done}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawCtxMode {
		t.Fatal("engine never entered ctx dispatch mode above dispatchCtxMin threads")
	}
}
