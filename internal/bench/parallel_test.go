package bench

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
)

// runMicroWith runs the quick micro-benchmark experiment with the given
// worker count and returns the three observable outputs: the plain-text
// table, the Reports JSON, and the trace-summary digest.
func runMicroWith(t *testing.T, parallel int) (table, reports, digest string) {
	t.Helper()
	var tb strings.Builder
	s := NewSession(&tb, true)
	s.TraceSummary = true
	s.Parallel = parallel
	if err := s.MicroTable(); err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	if err := s.WriteReports(&rep); err != nil {
		t.Fatal(err)
	}
	var dig strings.Builder
	s.WriteTraceSummaries(&dig)
	return tb.String(), rep.String(), dig.String()
}

// TestParallelDeterminism runs the same experiment sequentially and on
// eight workers and requires byte-identical tables, Reports JSON, and
// trace digests. Under -race this also exercises the worker pool for
// data races between points.
func TestParallelDeterminism(t *testing.T) {
	t1, r1, d1 := runMicroWith(t, 1)
	t8, r8, d8 := runMicroWith(t, 8)
	if !strings.Contains(t1, "Section 5.3") {
		t.Fatalf("sequential table looks empty:\n%s", t1)
	}
	if t1 != t8 {
		t.Errorf("tables differ between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", t1, t8)
	}
	if r1 != r8 {
		t.Errorf("reports JSON differs between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", r1, r8)
	}
	if d1 != d8 {
		t.Errorf("trace digests differ between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", d1, d8)
	}
}

// TestParallelFirstErrorWins checks that when several points fail on the
// worker pool, flush reports the first failure in point order — the same
// error a sequential run would have stopped at.
func TestParallelFirstErrorWins(t *testing.T) {
	s := NewSession(nil, true)
	s.Parallel = 8
	p := s.newPlan()
	for i := 0; i < 20; i++ {
		fail := i == 7 || i == 13
		p.raw(fmt.Sprintf("pt%02d", i), func(io.Writer) error {
			if fail {
				return errors.New("boom")
			}
			return nil
		})
	}
	err := p.flush()
	if err == nil || !strings.Contains(err.Error(), "pt07") {
		t.Fatalf("err = %v, want the first failing point pt07", err)
	}
}

// BenchmarkQuickFig5Point measures one end-to-end quick Figure 5
// configuration point: a full VM build plus an NPB kernel run.
func BenchmarkQuickFig5Point(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSession(io.Discard, true)
		p := s.newPlan()
		p.kernel("bench point", "bench", npb.BT, htm.ZEC12(), Configs()[4], 4, npb.ClassS, false)
		if err := p.flush(); err != nil {
			b.Fatal(err)
		}
	}
}
