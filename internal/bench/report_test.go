package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
)

// runKernelPoint runs one kernel configuration point through the plan
// machinery, as the experiments do, and returns its result.
func runKernelPoint(t *testing.T, s *Session, exp string, b npb.Bench, prof *htm.Profile, cfg Config, threads int, c npb.Class) *npb.Result {
	t.Helper()
	p := s.newPlan()
	kr := p.kernel("test point", exp, b, prof, cfg, threads, c, false)
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	return kr.res
}

// TestSessionReports runs one small kernel point per configuration and
// checks that the Session records a coherent Report for each.
func TestSessionReports(t *testing.T) {
	var sb strings.Builder
	s := NewSession(&sb, true)
	for _, cfg := range []Config{Configs()[0], Configs()[4]} {
		runKernelPoint(t, s, "test", npb.While, htm.ZEC12(), cfg, 2, npb.ClassTest)
	}
	if len(s.Reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(s.Reports))
	}
	gil, dyn := s.Reports[0], s.Reports[1]
	if gil.Config != "GIL" || dyn.Config != "HTM-dynamic" {
		t.Fatalf("configs = %q, %q", gil.Config, dyn.Config)
	}
	if gil.Machine != "zEC12" || gil.Workload != "while" || gil.Threads != 2 {
		t.Fatalf("identity wrong: %+v", gil)
	}
	if gil.Cycles <= 0 || dyn.Cycles <= 0 {
		t.Fatalf("cycles missing: %d, %d", gil.Cycles, dyn.Cycles)
	}
	if gil.Begins != 0 {
		t.Fatalf("GIL run reported transactions: %+v", gil)
	}
	if dyn.Begins == 0 || dyn.Commits == 0 {
		t.Fatalf("HTM run reported no transactions: %+v", dyn)
	}
	if dyn.Commits+dyn.Aborts != dyn.Begins {
		t.Fatalf("tx accounting: %d begin != %d commit + %d abort", dyn.Begins, dyn.Commits, dyn.Aborts)
	}
}

// TestSessionTraceSummary verifies that TraceSummary attaches an aggregator
// whose attribution lands in the Report and the printed digest.
func TestSessionTraceSummary(t *testing.T) {
	var sb strings.Builder
	s := NewSession(&sb, true)
	s.TraceSummary = true
	r := runKernelPoint(t, s, "test", npb.While, htm.ZEC12(), Configs()[4], 4, npb.ClassTest)
	rep := s.Reports[len(s.Reports)-1]
	// The aggregator watched the same run that produced Stats; the counts
	// must agree exactly.
	if rep.Begins != r.Stats.HTM.Begins || rep.Aborts != r.Stats.HTM.Aborts {
		t.Fatalf("report %d/%d vs stats %d/%d",
			rep.Begins, rep.Aborts, r.Stats.HTM.Begins, r.Stats.HTM.Aborts)
	}
	if rep.Aborts > 0 && len(rep.TopAbortPCs) == 0 {
		t.Fatalf("aborts happened but no PC attribution: %+v", rep)
	}
	var dig strings.Builder
	s.WriteTraceSummaries(&dig)
	if !strings.Contains(dig.String(), "test zEC12/while HTM-dynamic threads=4") {
		t.Fatalf("digest missing point header:\n%s", dig.String())
	}
}

// TestWriteReportsJSON round-trips the report list through its JSON form.
func TestWriteReportsJSON(t *testing.T) {
	var sb strings.Builder
	s := NewSession(&sb, true)
	runKernelPoint(t, s, "test", npb.Iterator, htm.XeonE3(), Configs()[1], 2, npb.ClassTest)
	var out strings.Builder
	if err := s.WriteReports(&out); err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal([]byte(out.String()), &back); err != nil {
		t.Fatalf("reports are not valid JSON: %v\n%s", err, out.String())
	}
	if len(back) != 1 || back[0].Experiment != "test" || back[0].Machine != "XeonE3-1275v3" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
