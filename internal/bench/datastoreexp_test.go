package bench

import (
	"strconv"
	"strings"
	"testing"
)

// runDatastoreWith runs the quick datastore experiment on the given worker
// count and returns every observable output: the plain-text tables, the
// Reports JSON, the flat CSV, and the trace-summary digest.
func runDatastoreWith(t *testing.T, parallel int) (table, reports, csvOut, digest string) {
	t.Helper()
	var tb strings.Builder
	s := NewSession(&tb, true)
	s.TraceSummary = true
	s.Parallel = parallel
	if err := s.DatastoreTable(); err != nil {
		t.Fatal(err)
	}
	var rep, cs, dig strings.Builder
	if err := s.WriteReports(&rep); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteReportsCSV(&cs); err != nil {
		t.Fatal(err)
	}
	s.WriteTraceSummaries(&dig)
	return tb.String(), rep.String(), cs.String(), dig.String()
}

// TestDatastoreGoldenDeterminism runs the datastore experiment twice
// sequentially and once on eight workers, and requires the text tables,
// Reports JSON, CSV, and trace digests to be byte-identical across all
// three runs: millions of simulated memory accesses under racing policies
// must never leak host nondeterminism into the outputs.
func TestDatastoreGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three full quick datastore runs")
	}
	tA, rA, cA, dA := runDatastoreWith(t, 1)
	tB, rB, cB, dB := runDatastoreWith(t, 1)
	tP, rP, cP, dP := runDatastoreWith(t, 8)
	if tA != tB {
		t.Errorf("tables differ run to run:\n--- run1 ---\n%s\n--- run2 ---\n%s", tA, tB)
	}
	if tA != tP {
		t.Errorf("tables differ between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", tA, tP)
	}
	if rA != rB || rA != rP {
		t.Error("reports JSON differs across runs")
	}
	if cA != cB || cA != cP {
		t.Error("reports CSV differs across runs")
	}
	if dA != dB || dA != dP {
		t.Error("trace digests differ across runs")
	}
}

// TestDatastoreTableContent spot-checks the quick experiment's output
// shape: every workload section renders, the sharded occupancy tables are
// present, the CSV carries the shard columns, and the capacity-isolation
// rows expose a footprint-overflow majority on at least one of the
// scan-heavy or TPC-C mixes.
func TestDatastoreTableContent(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick datastore run")
	}
	table, _, csvOut, _ := runDatastoreWith(t, 8)
	for _, want := range []string{
		"YCSB-A", "YCSB-E", "YCSB-tpcc",
		"per-tier attribution", "abort causes", "per-shard GIL occupancy",
		"solo fixed-1", "solo paper-dynamic",
		"cross-shard leaks: 0",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table lacks %q:\n%s", want, table)
		}
	}
	majority := false
	for _, line := range strings.Split(table, "\n") {
		if !strings.HasPrefix(line, "solo ") {
			continue
		}
		i := strings.Index(line, "capacity=")
		if i < 0 {
			continue
		}
		field := strings.Fields(line[i+len("capacity="):])[0]
		pct, err := strconv.Atoi(strings.TrimSuffix(field, "%"))
		if err == nil && pct > 50 {
			majority = true
		}
	}
	if !majority {
		t.Errorf("no capacity-isolation row shows a footprint-overflow majority:\n%s", table)
	}
	if !strings.Contains(csvOut, "shards,shardFallbacks,crossShardLeaks") {
		t.Errorf("CSV header lacks shard columns:\n%.400s", csvOut)
	}
}
