package bench

import (
	"fmt"
	"io"
	"sort"

	"htmgil/internal/db"
	"htmgil/internal/htm"
	"htmgil/internal/keyspace"
	"htmgil/internal/vm"
)

// The datastore experiment pushes the elision tiers into the regime the
// paper never reached: YCSB-style point/scan mixes and a TPC-C-flavoured
// multi-row mix over keyspace tables holding up to a million keys, where
// every statement is speculative-safe (internal/db keyspace tables) and the
// footprints of scans and new-order groups overflow HTM capacity. Each
// workload is swept over three runtimes (the paper's dynamic two-tier, the
// OCC three-tier, and fixed length 1) times two shard layouts (one root
// GIL vs the keyspace sharded over per-shard GILs), against an all-GIL
// baseline. Tables report scaled throughput, per-tier attribution, the
// abort-cause breakdown (capacity vs conflict), and per-shard GIL
// occupancy with cross-shard leak counts.

// datastoreConfig is one swept runtime+sharding combination.
type datastoreConfig struct {
	name   string
	cfg    Config
	shards int
}

func datastoreConfigs() []datastoreConfig {
	return []datastoreConfig{
		{"paper-dynamic/s1", Config{Name: "paper-dynamic/s1", Mode: vm.ModeHTM, Policy: "paper-dynamic"}, 1},
		{"paper-dynamic/s8", Config{Name: "paper-dynamic/s8", Mode: vm.ModeHTM, Policy: "paper-dynamic"}, 8},
		{"occ-adaptive/s1", Config{Name: "occ-adaptive/s1", Mode: vm.ModeHTM, Policy: "occ-adaptive"}, 1},
		{"occ-adaptive/s8", Config{Name: "occ-adaptive/s8", Mode: vm.ModeHTM, Policy: "occ-adaptive"}, 8},
		{"fixed-1/s1", Config{Name: "fixed-1/s1", Mode: vm.ModeHTM, TxLength: 1}, 1},
	}
}

// datastoreRun is the plan-side handle to one datastore point.
type datastoreRun struct {
	cycles int64
	st     *vm.Stats
	output string
	tp     float64 // committed ops per virtual second
}

// datastore enumerates one workload run: build the driver, install the
// store and the session natives, run the generated program.
func (p *plan) datastore(label string, wcfg keyspace.Config, cfg Config, shards, threads int) *datastoreRun {
	dr := &datastoreRun{}
	pt := &point{label: label}
	s := p.s
	wcfg.Threads = threads
	pt.exec = func() error {
		drv, err := keyspace.NewDriver(wcfg)
		if err != nil {
			return err
		}
		agg, rec := s.attach()
		prof := htm.DatastoreNode()
		opt := vm.DefaultOptions(prof, cfg.Mode)
		opt.TxLength = cfg.TxLength
		opt.Policy = cfg.Policy
		opt.Shards = shards
		opt.Trace = rec
		machine := vm.New(opt)
		db.Install(machine)
		drv.Install(machine)
		iseq, err := machine.CompileSource(drv.Program(), "datastore-"+wcfg.Workload)
		if err != nil {
			return err
		}
		res, err := machine.Run(iseq)
		if err != nil {
			return err
		}
		dr.cycles = res.Cycles
		dr.st = res.Stats
		dr.output = res.Output
		ops := float64(threads) * float64(wcfg.Ops)
		dr.tp = ops * float64(vm.CyclesPerSecond) / float64(res.Cycles)
		pt.rep = newReport("datastore", prof.Name, "ycsb-"+wcfg.Workload, cfg.Name,
			threads, 0, res.Cycles, dr.tp, res.Stats, agg, s.topN())
		pt.rep.Shards = shards
		for _, n := range res.Stats.ShardFallbacks {
			pt.rep.ShardFallbacks += n
		}
		pt.rep.CrossShardLeaks = res.Stats.CrossShardLeaks
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return dr
}

// datastoreCauses renders the abort-cause split that identifies the
// capacity regime: what share of hardware aborts were footprint overflows
// versus conflicts.
func datastoreCauses(w io.Writer, name string, st *vm.Stats) error {
	var total, capacity uint64
	var causes []string
	for c, n := range st.AbortCauses {
		total += n
		cs := c.String()
		if cs == "read-overflow" || cs == "write-overflow" {
			capacity += n
		}
		causes = append(causes, cs)
	}
	sort.Strings(causes)
	fmt.Fprintf(w, "%-20s", name)
	if total == 0 {
		_, err := fmt.Fprintf(w, " no aborts\n")
		return err
	}
	fmt.Fprintf(w, " capacity=%3.0f%% |", 100*float64(capacity)/float64(total))
	for _, cs := range causes {
		for c, n := range st.AbortCauses {
			if c.String() == cs {
				fmt.Fprintf(w, " %s=%.0f%%", cs, 100*float64(n)/float64(total))
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// datastoreShardTable renders per-shard GIL occupancy for a sharded point:
// acquisitions, hold cycles, and routed fallbacks per lock, root included,
// plus the cross-shard leak counter.
func datastoreShardTable(w io.Writer, st *vm.Stats) error {
	fmt.Fprintf(w, "%-8s%12s%14s%12s\n", "lock", "acquires", "holdCycles", "fallbacks")
	fmt.Fprintf(w, "%-8s%12d%14d%12d\n", "root", st.RootGIL.Acquisitions, st.RootGIL.HoldCycles, st.GILFallbacks-sumU64(st.ShardFallbacks))
	for i, g := range st.ShardGIL {
		var fb uint64
		if i < len(st.ShardFallbacks) {
			fb = st.ShardFallbacks[i]
		}
		fmt.Fprintf(w, "s%-7d%12d%14d%12d\n", i, g.Acquisitions, g.HoldCycles, fb)
	}
	_, err := fmt.Fprintf(w, "cross-shard leaks: %d\n", st.CrossShardLeaks)
	return err
}

func sumU64(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

// datastoreGrid sizes the sweep.
func datastoreGrid(quick bool) (workloads []string, keys int64, ops int, threadsList []int) {
	if quick {
		return []string{"A", "E", "tpcc"}, 50_000, 40, []int{16}
	}
	return []string{"A", "B", "C", "E", "F", "tpcc"}, 1_000_000, 100, []int{16, 32}
}

// buildDatastore enumerates the datastore experiment.
func (s *Session) buildDatastore(p *plan) {
	quick := s.Quick
	workloads, keys, ops, threadsList := datastoreGrid(quick)
	cfgs := datastoreConfigs()
	attrTh := threadsList[0]
	const seed = 20140215 // the paper's PPoPP publication month
	for _, wl := range workloads {
		wcfg := keyspace.Config{Workload: wl, Keys: keys, Ops: ops, Seed: seed}
		p.printf("\n# Datastore — YCSB-%s, %d keys on %s (throughput, 1 = 1-thread GIL)\n",
			wl, keys, htm.DatastoreNode().Name)
		base := p.datastore(fmt.Sprintf("datastore baseline %s", wl),
			wcfg, Config{Name: "GIL", Mode: vm.ModeGIL}, 1, 1)
		p.printf("%-10s", "threads")
		for _, dc := range cfgs {
			p.printf("%18s", dc.name)
		}
		p.printf("\n")
		top := map[string]*datastoreRun{}
		for _, th := range threadsList {
			p.printf("%-10d", th)
			for _, dc := range cfgs {
				r := p.datastore(fmt.Sprintf("datastore %s/%s/%d", wl, dc.name, th),
					wcfg, dc.cfg, dc.shards, th)
				if th == attrTh {
					top[dc.name] = r
				}
				baseR := base
				p.cell(func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "%18.2f", r.tp/baseR.tp)
					return err
				})
			}
			p.printf("\n")
		}
		p.printf("\n# Datastore per-tier attribution — YCSB-%s, %d threads\n", wl, attrTh)
		hybridAttributionHeader(p)
		for _, dc := range cfgs {
			r := top[dc.name]
			name := dc.name
			p.cell(func(w io.Writer) error {
				return hybridAttribution(w, name, r.st)
			})
		}
		p.printf("\n# Datastore abort causes — YCSB-%s, %d threads (capacity = footprint overflow)\n", wl, attrTh)
		for _, dc := range cfgs {
			r := top[dc.name]
			name := dc.name
			p.cell(func(w io.Writer) error {
				return datastoreCauses(w, name, r.st)
			})
		}
		// Single-thread isolation rows: with one thread there are no
		// conflicts and no lock-word doom cascades, so what remains is the
		// workload's intrinsic HTM footprint — the capacity regime laid
		// bare. fixed-1 bounds a window to one yield interval; the dynamic
		// policy's longer windows batch statements until the write set
		// bursts.
		iso1 := p.datastore(fmt.Sprintf("datastore iso %s/fixed-1", wl),
			wcfg, Config{Name: "fixed-1", Mode: vm.ModeHTM, TxLength: 1}, 1, 1)
		isoP := p.datastore(fmt.Sprintf("datastore iso %s/paper", wl),
			wcfg, Config{Name: "paper-dynamic", Mode: vm.ModeHTM, Policy: "paper-dynamic"}, 1, 1)
		p.cell(func(w io.Writer) error {
			return datastoreCauses(w, "solo fixed-1", iso1.st)
		})
		p.cell(func(w io.Writer) error {
			return datastoreCauses(w, "solo paper-dynamic", isoP.st)
		})
		p.printf("\n# Datastore per-shard GIL occupancy — YCSB-%s, paper-dynamic/s8, %d threads\n", wl, attrTh)
		sharded := top["paper-dynamic/s8"]
		p.cell(func(w io.Writer) error {
			return datastoreShardTable(w, sharded.st)
		})
		p.cell(func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# vs paper-dynamic/s1 at %d threads: occ-adaptive/s1 %.2fx, paper-dynamic/s8 %.2fx\n",
				attrTh,
				top["occ-adaptive/s1"].tp/top["paper-dynamic/s1"].tp,
				top["paper-dynamic/s8"].tp/top["paper-dynamic/s1"].tp)
			return err
		})
	}
}

// DatastoreTable regenerates the datastore experiment (see buildDatastore).
func (s *Session) DatastoreTable() error { return s.runPlan(s.buildDatastore) }

// DatastoreTable regenerates the datastore experiment in a fresh Session.
func DatastoreTable(w io.Writer, quick bool) error { return NewSession(w, quick).DatastoreTable() }
