package bench

import (
	"fmt"
	"io"

	"htmgil/internal/explore"
)

// exploreBounds picks the exploration depth: quick keeps every program at
// preemption bound 1 (a few hundred schedules each); the full run deepens
// to bound 2 with a per-mode schedule cap so the racier programs stay
// bounded (truncation is reported in the table).
func (s *Session) exploreBounds() (bound, maxSchedules int) {
	if s.Quick {
		return 1, 0
	}
	return 2, 5_000
}

// buildExplore enumerates the systematic schedule-exploration experiment:
// every checker program of internal/explore is explored in both modes and
// judged against its GIL serializability oracle. A healthy tree prints an
// all-zero violations column; any violation is a bug in the elision engine
// (or the baseline) and fails the experiment.
func (s *Session) buildExplore(p *plan) {
	bound, maxSchedules := s.exploreBounds()
	p.printf("## Schedule exploration (preemption bound %d)\n\n", bound)
	p.printf("%-14s %6s %10s %10s %8s %9s %11s %6s\n",
		"program", "bound", "gil-scheds", "htm-scheds", "oracle", "outcomes", "violations", "trunc")
	for _, prog := range explore.Programs() {
		prog := prog
		p.raw("explore/"+prog.Name, func(w io.Writer) error {
			res, err := explore.Run(explore.Config{
				Program:      prog,
				Bound:        bound,
				MaxSchedules: maxSchedules,
			})
			if err != nil {
				return err
			}
			trunc := ""
			if res.Truncated {
				trunc = "yes"
			}
			fmt.Fprintf(w, "%-14s %6d %10d %10d %8d %9d %11d %6s\n",
				res.Program, res.Bound, res.GILSchedules, res.HTMSchedules,
				len(res.Oracle), len(res.Outcomes), len(res.Violations), trunc)
			for _, v := range res.Violations {
				fmt.Fprintf(w, "  VIOLATION %s\n", v.Violation)
			}
			if len(res.Violations) > 0 {
				return fmt.Errorf("explore %s: %d schedule violations", res.Program, len(res.Violations))
			}
			return nil
		})
	}
	p.cell(func(w io.Writer) error {
		_, err := fmt.Fprintln(w)
		return err
	})
}

// ExploreTable regenerates the schedule-exploration experiment (see
// buildExplore).
func (s *Session) ExploreTable() error { return s.runPlan(s.buildExplore) }

// ReplaySchedule loads a schedule file, replays it byte-deterministically,
// and verifies it reproduces what it records (its violation, or a clean run
// with the recorded fingerprint).
func ReplaySchedule(w io.Writer, path string) error {
	sched, err := explore.LoadSchedule(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "schedule %s: program=%s mode=%s choices=%d", path, sched.Program, sched.Mode, len(sched.Choices))
	if sched.Violation != nil {
		fmt.Fprintf(w, " expects=%s", sched.Violation.Kind)
	} else {
		fmt.Fprintf(w, " expects=clean")
	}
	fmt.Fprintln(w)
	res, err := sched.Verify()
	if err != nil {
		if res != nil {
			fmt.Fprintf(w, "replayed: fingerprint=%q violation=%s cycles=%d\n",
				res.Fingerprint, res.Violation, res.Cycles)
		}
		return err
	}
	fmt.Fprintf(w, "replayed: fingerprint=%q violation=%s cycles=%d choice-points=%d\n",
		res.Fingerprint, res.Violation, res.Cycles, res.Choices)
	fmt.Fprintln(w, "OK: replay reproduces the recorded result")
	return nil
}
