package bench

import (
	"reflect"
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
	"htmgil/internal/policy"
	"htmgil/internal/vm"
)

func TestPolicyConfigsMirrorRegistry(t *testing.T) {
	cfgs := PolicyConfigs()
	names := policy.Names()
	if len(cfgs) != len(names) {
		t.Fatalf("len = %d, registry has %d", len(cfgs), len(names))
	}
	for i, n := range names {
		if cfgs[i].Name != n || cfgs[i].Policy != n {
			t.Fatalf("config %d = %+v, want name/policy %q", i, cfgs[i], n)
		}
		if cfgs[i].Mode != vm.ModeHTM || cfgs[i].TxLength != 0 {
			t.Fatalf("config %d not plain HTM: %+v", i, cfgs[i])
		}
	}
}

func TestExperimentsListsPolicy(t *testing.T) {
	exps := Experiments()
	if exps[len(exps)-1] != "all" {
		t.Fatalf("last = %q, want all", exps[len(exps)-1])
	}
	found := false
	for _, e := range exps {
		if e == "policy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("policy missing from %v", exps)
	}
	if err := ByName("nosuch", nil, true); err == nil ||
		!strings.Contains(err.Error(), "policy") {
		t.Fatalf("unknown-experiment error should list policy: %v", err)
	}
}

// TestPolicyPaperDynamicMatchesFig5HTMDynamic pins the experiment's headline
// guarantee: a paper-dynamic policy point reproduces the fig5 HTM-dynamic
// point bit for bit, even though the policy point always carries a trace
// recorder (tracing must stay a pure observer).
func TestPolicyPaperDynamicMatchesFig5HTMDynamic(t *testing.T) {
	s := NewSession(nil, true)
	p := s.newPlan()
	prof := htm.ZEC12()
	fig5 := p.kernel("fig5 point", "fig5", npb.CG, prof, Configs()[4], 4, npb.ClassS, true)
	pol := p.policyKernel("policy point", "policy", npb.CG, prof,
		Config{Name: "paper-dynamic", Mode: vm.ModeHTM, Policy: "paper-dynamic"}, 4, npb.ClassS)
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	a, b := fig5.res, pol.res
	if a.Cycles != b.Cycles || a.Checksum != b.Checksum || a.Valid != b.Valid {
		t.Fatalf("diverged: fig5 cycles=%d sum=%s, policy cycles=%d sum=%s",
			a.Cycles, a.Checksum, b.Cycles, b.Checksum)
	}
	as, bs := a.Stats, b.Stats
	if as.HTM.Begins != bs.HTM.Begins || as.HTM.Commits != bs.HTM.Commits ||
		as.HTM.Aborts != bs.HTM.Aborts || as.GILFallbacks != bs.GILFallbacks ||
		as.Adjustments != bs.Adjustments {
		t.Fatalf("stats diverged: fig5 %+v, policy %+v", as.HTM, bs.HTM)
	}
	if !reflect.DeepEqual(as.AbortCauses, bs.AbortCauses) {
		t.Fatalf("abort causes diverged: %v vs %v", as.AbortCauses, bs.AbortCauses)
	}
	if pol.agg == nil {
		t.Fatal("policy point must carry an aggregator")
	}
}

func TestWriteReportsCSV(t *testing.T) {
	s := NewSession(nil, true)
	p := s.newPlan()
	p.policyKernel("pt", "policy", npb.CG, htm.ZEC12(),
		Config{Name: "fixed-16", Mode: vm.ModeHTM, Policy: "fixed-16"}, 2, npb.ClassS)
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteReportsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,machine,workload,config,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "policy,zEC12,cg,fixed-16,2,") {
		t.Fatalf("row = %q", lines[1])
	}
}
