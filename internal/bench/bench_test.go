package bench

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
)

func TestConfigsAreThePapersFive(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 5 {
		t.Fatalf("len = %d", len(cfgs))
	}
	names := []string{"GIL", "HTM-1", "HTM-16", "HTM-256", "HTM-dynamic"}
	for i, want := range names {
		if cfgs[i].Name != want {
			t.Fatalf("config %d = %q", i, cfgs[i].Name)
		}
	}
	if cfgs[1].TxLength != 1 || cfgs[2].TxLength != 16 || cfgs[3].TxLength != 256 || cfgs[4].TxLength != 0 {
		t.Fatalf("lengths wrong: %+v", cfgs)
	}
}

func TestFig6aShape(t *testing.T) {
	var sb strings.Builder
	if err := Fig6a(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The 24 KB and 20 KB phases must fail, and a later small phase must
	// eventually report high success.
	if !strings.Contains(out, "24          0") {
		t.Fatalf("oversized phase succeeded:\n%s", out)
	}
	var sawHigh bool
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && (f[1] == "8" || f[1] == "4") {
			n := 0
			for i := 0; i < len(f[2]); i++ {
				n = n*10 + int(f[2][i]-'0')
			}
			if n >= 90 {
				sawHigh = true
			}
		}
	}
	if !sawHigh {
		t.Fatalf("success ratio never recovered:\n%s", out)
	}
}

func TestByNameDispatch(t *testing.T) {
	if err := ByName("nosuch", nil, true); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
	var sb strings.Builder
	if err := ByName("fig6a", &sb, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 6a") {
		t.Fatalf("missing header")
	}
}

func TestThreadGrids(t *testing.T) {
	z := threadsFor(htm.ZEC12(), false)
	if z[len(z)-1] != 12 || z[0] != 1 {
		t.Fatalf("zEC12 grid = %v", z)
	}
	x := threadsFor(htm.XeonE3(), false)
	if x[len(x)-1] != 8 {
		t.Fatalf("xeon grid = %v", x)
	}
}
