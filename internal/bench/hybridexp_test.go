package bench

import (
	"bytes"
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/occ"
	"htmgil/internal/vm"
)

func TestHybridConfigs(t *testing.T) {
	cfgs := hybridConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("configs = %d, want 5", len(cfgs))
	}
	byName := map[string]hybridConfig{}
	for _, c := range cfgs {
		if c.cfg.Name != c.name {
			t.Errorf("%s: config name %q disagrees", c.name, c.cfg.Name)
		}
		byName[c.name] = c
	}
	if byName["GIL"].cfg.Mode != vm.ModeGIL {
		t.Errorf("GIL config mode = %v", byName["GIL"].cfg.Mode)
	}
	for _, name := range []string{"paper-dynamic", "occ-adaptive", "occ-adpt-sbx", "occ-first"} {
		if byName[name].cfg.Mode != vm.ModeHTM {
			t.Errorf("%s: mode = %v, want HTM", name, byName[name].cfg.Mode)
		}
	}
	if byName["occ-adpt-sbx"].cfg.Policy != "occ-adaptive" || !byName["occ-adpt-sbx"].sandbox {
		t.Errorf("occ-adpt-sbx must be occ-adaptive with the sandbox on")
	}
	if byName["occ-adaptive"].sandbox || byName["occ-first"].sandbox {
		t.Errorf("only occ-adpt-sbx carries the sandbox flag")
	}
}

func TestHybridProfileSandbox(t *testing.T) {
	if p := hybridProfile(htm.ZEC12, true); !p.OCCSandbox {
		t.Fatal("sandbox flag not applied")
	}
	if p := hybridProfile(htm.ZEC12, false); p.OCCSandbox {
		t.Fatal("sandbox flag set without asking")
	}
}

func TestHybridAttributionLine(t *testing.T) {
	var buf bytes.Buffer
	st := &vm.Stats{
		HTM:          &htm.Stats{Begins: 10, Commits: 8, Aborts: 2},
		OCC:          &occ.Stats{Begins: 5, Commits: 4, Aborts: 1, ValidationFailures: 1},
		GILFallbacks: 3,
	}
	if err := hybridAttribution(&buf, "occ-adaptive", st); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, want := range []string{"occ-adaptive", "10", "8", "2", "5", "4", "1", "3"} {
		if !strings.Contains(line, want) {
			t.Errorf("attribution line %q missing %q", line, want)
		}
	}
	// Tiers the runtime never used render as zeros, not a crash.
	buf.Reset()
	if err := hybridAttribution(&buf, "GIL", &vm.Stats{GILFallbacks: 7}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "7") {
		t.Errorf("GIL-only line = %q", buf.String())
	}
}
