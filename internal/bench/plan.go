package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
	"htmgil/internal/railslite"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

// Every experiment is enumerated into a plan before anything executes: each
// configuration point becomes one self-contained exec closure (building its
// own Memory/Engine/VM, so points share nothing), and every piece of table
// output becomes an ordered render op. flush then executes the points — on a
// worker pool when the Session's parallelism allows, sequentially otherwise —
// and merges results strictly in point order, so tables, Reports, and trace
// summaries are byte-identical whatever the worker count.

var errValidation = errors.New("validation failed")

// point is one independently executable unit of a plan: one simulator run
// plus the Report it yields.
type point struct {
	label  string // error-wrapping context; empty = propagate bare
	exec   func() error
	rep    Report
	hasRep bool
	err    error
}

// kernelRun is the plan-side handle to an NPB point; res is valid once the
// plan has flushed.
type kernelRun struct {
	res *npb.Result
}

// serverRun is the handle to a Figure 7 server point.
type serverRun struct {
	tp, ab float64
}

// plan accumulates points and render ops for one or more experiments.
type plan struct {
	s   *Session
	pts []*point
	ops []func(w io.Writer) error
}

func (s *Session) newPlan() *plan { return &plan{s: s} }

// parallelism returns the worker count for executing points: Session.Parallel
// when positive, else runtime.GOMAXPROCS(0).
func (s *Session) parallelism() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// printf appends a static piece of table output. Arguments are formatted at
// flush time but must not depend on point results; use cell for those.
func (p *plan) printf(format string, args ...any) {
	p.ops = append(p.ops, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	})
}

// cell appends a render op that may read point handles.
func (p *plan) cell(fn func(w io.Writer) error) {
	p.ops = append(p.ops, fn)
}

// npb enumerates one NPB point under explicit options. checkValid makes the
// point fail when the kernel's numerics do not validate.
func (p *plan) npb(label, exp, config string, b npb.Bench, opt vm.Options, threads int, c npb.Class, checkValid bool) *kernelRun {
	kr := &kernelRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		agg, rec := s.attach()
		o := opt
		o.Trace = rec
		r, err := npb.Run(b, o, threads, npb.ParamsFor(b, c))
		if err != nil {
			return err
		}
		if checkValid && !r.Valid {
			return errValidation
		}
		kr.res = r
		pt.rep = newReport(exp, opt.Prof.Name, string(b), config, threads, 0, r.Cycles, 0, r.Stats, agg, s.topN())
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return kr
}

// kernel enumerates one NPB point for a named interpreter configuration.
func (p *plan) kernel(label, exp string, b npb.Bench, prof *htm.Profile, cfg Config, threads int, c npb.Class, checkValid bool) *kernelRun {
	opt := vm.DefaultOptions(prof, cfg.Mode)
	opt.TxLength = cfg.TxLength
	opt.Policy = cfg.Policy
	return p.npb(label, exp, cfg.Name, b, opt, threads, c, checkValid)
}

// server enumerates one Figure 7 server point.
func (p *plan) server(label, exp, app string, prof *htm.Profile, cfg Config, clients, requests int, zos bool) *serverRun {
	sr := &serverRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		agg, rec := s.attach()
		var (
			cycles int64
			st     *vm.Stats
		)
		switch app {
		case "webrick":
			r, err := webrick.Run(webrick.Config{Prof: prof, Mode: cfg.Mode, TxLength: cfg.TxLength,
				Policy: cfg.Policy, Clients: clients, Requests: requests, ZOSMalloc: zos, Trace: rec})
			if err != nil {
				return err
			}
			sr.tp, sr.ab, cycles, st = r.Throughput, r.AbortRatio, r.Cycles, r.Stats
		default:
			r, err := railslite.Run(railslite.Config{Prof: prof, Mode: cfg.Mode, TxLength: cfg.TxLength,
				Policy: cfg.Policy, Clients: clients, Requests: requests, Trace: rec})
			if err != nil {
				return err
			}
			sr.tp, sr.ab, cycles, st = r.Throughput, r.AbortRatio, r.Cycles, r.Stats
		}
		pt.rep = newReport(exp, prof.Name, app, cfg.Name, 0, clients, cycles, sr.tp, st, agg, s.topN())
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return sr
}

// raw enumerates a self-contained point (no Report) that renders its whole
// output into a buffer; the buffer is replayed at its place in the op order.
func (p *plan) raw(label string, fn func(w io.Writer) error) {
	var buf bytes.Buffer
	pt := &point{label: label, exec: func() error { return fn(&buf) }}
	p.pts = append(p.pts, pt)
	p.cell(func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	})
}

// flush executes every enumerated point and then merges in point order:
// Reports first, then the render ops against the Session writer. Whatever
// the worker count, the merged output is identical; on a point error the
// Reports of the points preceding it (in point order) are kept, matching the
// sequential harness, and rendering is skipped.
func (p *plan) flush() error {
	s := p.s
	workers := s.parallelism()
	if workers > len(p.pts) {
		workers = len(p.pts)
	}
	if workers <= 1 {
		for _, pt := range p.pts {
			if pt.err = pt.exec(); pt.err != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(p.pts) {
						return
					}
					pt := p.pts[i]
					pt.err = pt.exec()
				}
			}()
		}
		wg.Wait()
	}
	for _, pt := range p.pts {
		if pt.err != nil {
			if pt.label != "" {
				return fmt.Errorf("%s: %w", pt.label, pt.err)
			}
			return pt.err
		}
		if pt.hasRep {
			s.Reports = append(s.Reports, pt.rep)
		}
	}
	if s.W == nil {
		return nil
	}
	for _, op := range p.ops {
		if err := op(s.W); err != nil {
			return err
		}
	}
	return nil
}
