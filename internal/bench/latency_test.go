package bench

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oraclePercentile is the brute-force reference: sort a copy, index the
// nearest rank k = ceil(q*n).
func oraclePercentile(samples []int64, q float64) int64 {
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	k := int(math.Ceil(q * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

func oracleAttainment(samples []int64, slo int64) float64 {
	met := 0
	for _, v := range samples {
		if v <= slo {
			met++
		}
	}
	return float64(met) / float64(len(samples))
}

// genSamples produces the seeded distributions the estimator must handle:
// heavy ties, constant, single-sample, uniform, and heavy-tail (Pareto-ish,
// the shape open-loop overload actually produces).
func genSamples(rng *rand.Rand, shape string, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		switch shape {
		case "ties":
			out[i] = int64(rng.Intn(4)) * 1000 // only 4 distinct values
		case "constant":
			out[i] = 42
		case "uniform":
			out[i] = rng.Int63n(1_000_000)
		case "heavytail":
			// Pareto with alpha=1.2: finite mean, infinite variance.
			u := rng.Float64()
			out[i] = int64(10_000 * math.Pow(1/(1-u), 1/1.2))
		}
	}
	return out
}

func TestPercentileMatchesSortOracle(t *testing.T) {
	quantiles := []float64{0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}
	shapes := []string{"ties", "constant", "uniform", "heavytail"}
	sizes := []int{1, 2, 3, 10, 100, 997, 10_000}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, shape := range shapes {
			for _, n := range sizes {
				samples := genSamples(rng, shape, n)
				for _, q := range quantiles {
					scratch := make([]int64, len(samples))
					copy(scratch, samples)
					got := Percentile(scratch, q)
					want := oraclePercentile(samples, q)
					if got != want {
						t.Fatalf("seed=%d shape=%s n=%d q=%g: Percentile=%d oracle=%d",
							seed, shape, n, q, got, want)
					}
				}
			}
		}
	}
}

func TestSummarizeMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, shape := range []string{"ties", "uniform", "heavytail"} {
			samples := genSamples(rng, shape, 5000)
			slo := oraclePercentile(samples, 0.9) // ~90% should attain
			s := Summarize(samples, slo)
			if s.Count != len(samples) {
				t.Fatalf("count %d != %d", s.Count, len(samples))
			}
			for _, chk := range []struct {
				name string
				got  int64
				q    float64
			}{
				{"p50", s.P50, 0.5}, {"p99", s.P99, 0.99}, {"p999", s.P999, 0.999}, {"max", s.Max, 1.0},
			} {
				if want := oraclePercentile(samples, chk.q); chk.got != want {
					t.Fatalf("seed=%d shape=%s %s: got %d want %d", seed, shape, chk.name, chk.got, want)
				}
			}
			if want := oracleAttainment(samples, slo); s.Attainment != want {
				t.Fatalf("seed=%d shape=%s attainment: got %g want %g", seed, shape, s.Attainment, want)
			}
		}
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil, 100); s.Count != 0 || s.P50 != 0 || s.Attainment != 1 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarize([]int64{7}, 10)
	if s.P50 != 7 || s.P99 != 7 || s.P999 != 7 || s.Max != 7 || s.Attainment != 1 {
		t.Fatalf("single sample: %+v", s)
	}
	s = Summarize([]int64{7}, 5)
	if s.Attainment != 0 {
		t.Fatalf("single sample over SLO: %+v", s)
	}
	// No SLO: attainment defaults to 1.
	if s := Summarize([]int64{1, 2, 3}, 0); s.Attainment != 1 {
		t.Fatalf("no-SLO attainment: %+v", s)
	}
	// Summarize must not mutate its input.
	in := []int64{5, 1, 4, 2, 3}
	Summarize(in, 3)
	for i, v := range []int64{5, 1, 4, 2, 3} {
		if in[i] != v {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

// TestWithFailures: non-completed requests (shed, gave-up, deadline-exceeded)
// count as SLO misses — even without a latency target — while percentiles
// keep describing the completed samples only.
func TestWithFailures(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		slo     int64
		failed  int
		want    float64
	}{
		{"none-shed", []int64{10, 20, 30, 40}, 25, 0, 0.5},
		{"all-shed", nil, 25, 8, 0},
		{"mixed", []int64{10, 20, 30, 40}, 25, 4, 0.25},      // 2 met of 8 resolved
		{"mixed-no-slo", []int64{10, 20, 30, 40}, 0, 4, 0.5}, // 4 met of 8 resolved
		{"all-met-some-shed", []int64{10, 20}, 100, 2, 0.5},
		{"no-slo-no-failures", []int64{10, 20}, 0, 0, 1},
	}
	for _, c := range cases {
		s := Summarize(c.samples, c.slo).WithFailures(c.failed)
		if s.Attainment != c.want {
			t.Errorf("%s: attainment = %g, want %g (%+v)", c.name, s.Attainment, c.want, s)
		}
		if s.Failed != c.failed && c.failed > 0 {
			t.Errorf("%s: failed = %d, want %d", c.name, s.Failed, c.failed)
		}
		if s.Count != len(c.samples) {
			t.Errorf("%s: count = %d, want %d", c.name, s.Count, len(c.samples))
		}
		// Percentiles must be untouched by folding failures in.
		base := Summarize(c.samples, c.slo)
		if s.P50 != base.P50 || s.P99 != base.P99 || s.Max != base.Max {
			t.Errorf("%s: WithFailures changed percentiles: %+v vs %+v", c.name, s, base)
		}
	}
}
