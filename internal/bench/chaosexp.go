package bench

import (
	"fmt"
	"io"
	"strconv"

	"htmgil/internal/core"
	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/npb"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

// The chaos experiment sweeps the named fault profiles (fault.ChaosProfiles)
// over the WEBrick server and one NPB kernel with the elision circuit
// breaker and the degradation watchdog always on. Each row reports the
// throughput under faults (absolute and relative to the clean profile), the
// abort ratio, the GIL fallbacks, the per-run injection/trip/degradation
// counters, and — for profiles with an until= horizon — the time-to-recover:
// the cycles between the fault horizon clearing and the breaker settling
// closed. Like the policy experiment, every point attaches an aggregator so
// the fault and breaker events land in the Reports, which also carry the
// canonical spec text and the effective fault-stream seed that reproduce the
// run byte for byte.

// chaosRun is the handle to one chaos point.
type chaosRun struct {
	tp      float64 // webrick: requests per virtual second; kernels: 0
	cycles  int64
	ab      float64
	st      *vm.Stats
	faults  uint64 // total injected faults, all channels
	trips   uint64 // breaker opens
	degr    uint64 // watchdog degradation events
	recover *int64 // see timeToRecover
}

func (cr *chaosRun) fill(tp, ab float64, cycles int64, st *vm.Stats, spec *fault.Spec) {
	cr.tp, cr.ab, cr.cycles, cr.st = tp, ab, cycles, st
	for _, n := range st.FaultCounts {
		cr.faults += n
	}
	for _, n := range st.Degradations {
		cr.degr += n
	}
	cr.trips = st.BreakerOpens
	cr.recover = timeToRecover(st, spec)
}

// timeToRecover measures graceful degradation: the cycles between the
// spec's fault horizon clearing (until=) and the breaker's final settle
// into the closed state. nil when the profile has no bounded horizon (there
// is nothing to recover from); -1 when the breaker tripped and never closed
// again within the run; 0 when it never tripped at all.
func timeToRecover(st *vm.Stats, spec *fault.Spec) *int64 {
	if spec == nil || spec.Until <= 0 {
		return nil
	}
	var v int64
	if n := len(st.BreakerTransitions); n > 0 {
		v = -1
		if last := st.BreakerTransitions[n-1]; last.State == core.BreakerClosed.String() {
			if v = last.T - spec.Until; v < 0 {
				v = 0
			}
		}
	}
	return &v
}

// chaosSeed is the effective fault-stream seed of a chaos point: the spec's
// own override when set, else the run seed the workload harnesses use
// (vm.DefaultOptions).
func chaosSeed(spec *fault.Spec, prof *htm.Profile) int64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	return vm.DefaultOptions(prof, vm.ModeHTM).Seed
}

// chaosReport decorates the point's Report with the fault provenance.
func (s *Session) chaosReport(prof *htm.Profile, workload, config string, threads, clients int,
	cycles int64, tp float64, st *vm.Stats, agg *trace.Aggregator, spec *fault.Spec, cr *chaosRun) Report {
	rep := newReport("chaos", prof.Name, workload, config, threads, clients, cycles, tp, st, agg, s.topN())
	rep.FaultSpec = spec.String()
	if rep.FaultSpec != "" {
		rep.Seed = chaosSeed(spec, prof)
	}
	rep.RecoverCycles = cr.recover
	return rep
}

// chaosServer enumerates one WEBrick point of the chaos experiment.
func (p *plan) chaosServer(label string, prof *htm.Profile, ns fault.NamedSpec, clients, requests int, zos bool) *chaosRun {
	cr := &chaosRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		spec, err := fault.ParseSpec(ns.Text)
		if err != nil {
			return err
		}
		agg := trace.NewAggregator()
		r, err := webrick.Run(webrick.Config{Prof: prof, Mode: vm.ModeHTM,
			Clients: clients, Requests: requests, ZOSMalloc: zos,
			Trace: trace.NewRecorder(agg), Faults: spec, Breaker: true, Watchdog: true})
		if err != nil {
			return err
		}
		cr.fill(r.Throughput, r.AbortRatio, r.Cycles, r.Stats, spec)
		pt.rep = s.chaosReport(prof, "webrick", ns.Name, 0, clients, r.Cycles, r.Throughput, r.Stats, agg, spec, cr)
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return cr
}

// chaosKernel enumerates one NPB point of the chaos experiment. The kernel
// must still validate numerically: faults may slow the run down, never
// corrupt it.
func (p *plan) chaosKernel(label string, b npb.Bench, prof *htm.Profile, ns fault.NamedSpec, threads int, c npb.Class) *chaosRun {
	cr := &chaosRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		spec, err := fault.ParseSpec(ns.Text)
		if err != nil {
			return err
		}
		agg := trace.NewAggregator()
		opt := vm.DefaultOptions(prof, vm.ModeHTM)
		opt.Trace = trace.NewRecorder(agg)
		opt.Faults = spec
		opt.Breaker = true
		opt.Watchdog = true
		r, err := npb.Run(b, opt, threads, npb.ParamsFor(b, c))
		if err != nil {
			return err
		}
		if !r.Valid {
			return errValidation
		}
		cr.fill(0, r.Stats.AbortRatio(), r.Cycles, r.Stats, spec)
		pt.rep = s.chaosReport(prof, string(b), ns.Name, threads, 0, r.Cycles, 0, r.Stats, agg, spec, cr)
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return cr
}

// chaosRow renders one profile row; tput and rel are computed by the caller
// (server rows use request throughput, kernel rows use cycle ratios).
func chaosRow(w io.Writer, name string, tput, rel float64, r *chaosRun) error {
	rec := "-"
	if r.recover != nil {
		rec = strconv.FormatInt(*r.recover, 10)
	}
	_, err := fmt.Fprintf(w, "%-14s%12.1f%8.2f%8.1f%%%11d%8d%7d%7d%10s\n",
		name, tput, rel, r.ab*100, r.st.GILFallbacks, r.faults, r.trips, r.degr, rec)
	return err
}

const chaosHeader = "%-14s%12s%8s%9s%11s%8s%7s%7s%10s\n"

// buildChaos enumerates the chaos experiment: every fault profile against
// WEBrick on zEC12 and against the CG kernel, breaker and watchdog on.
func (s *Session) buildChaos(p *plan) {
	quick := s.Quick
	profiles := fault.ChaosProfiles()
	p.printf("\n# Chaos — fault profiles (elision breaker + degradation watchdog on)\n")
	for _, ns := range profiles {
		text := ns.Text
		if text == "" {
			text = "(no faults)"
		}
		p.printf("#   %-14s %s\n", ns.Name, text)
	}

	// WEBrick runs on the Xeon profile, where elision works well enough
	// (Figure 7) that the clean baseline keeps the breaker closed; on zEC12
	// the server's intrinsic abort storm would drown out the injected
	// faults this experiment is about.
	srvProf := htm.XeonE3()
	requests := 1500
	clients := 4
	if quick {
		requests = 400
	}
	p.printf("\n# Chaos — webrick on %s, %d clients, %d requests (rel = tput/clean)\n",
		srvProf.Name, clients, requests)
	p.printf(chaosHeader, "profile", "tput", "rel", "abort%", "fallbacks", "faults", "trips", "degr", "recover")
	var base *chaosRun
	for i, ns := range profiles {
		r := p.chaosServer(fmt.Sprintf("chaos webrick/%s", ns.Name), srvProf, ns, clients, requests, false)
		if i == 0 {
			base = r
		}
		name, b := ns.Name, base
		p.cell(func(w io.Writer) error {
			return chaosRow(w, name, r.tp, r.tp/b.tp, r)
		})
	}

	prof := htm.ZEC12()
	threads := 8
	class := classFor(quick)
	p.printf("\n# Chaos — %s on %s, %d threads (validated; rel = clean-cycles/cycles; tput in Mcycles)\n",
		npb.CG, prof.Name, threads)
	p.printf(chaosHeader, "profile", "Mcycles", "rel", "abort%", "fallbacks", "faults", "trips", "degr", "recover")
	base = nil
	for i, ns := range profiles {
		r := p.chaosKernel(fmt.Sprintf("chaos %s/%s", npb.CG, ns.Name), npb.CG, prof, ns, threads, class)
		if i == 0 {
			base = r
		}
		name, b := ns.Name, base
		p.cell(func(w io.Writer) error {
			return chaosRow(w, name, float64(r.cycles)/1e6, float64(b.cycles)/float64(r.cycles), r)
		})
	}
}

// ChaosTable regenerates the chaos experiment (see buildChaos).
func (s *Session) ChaosTable() error { return s.runPlan(s.buildChaos) }

// ChaosTable regenerates the chaos experiment in a fresh Session.
func ChaosTable(w io.Writer, quick bool) error { return NewSession(w, quick).ChaosTable() }
