package bench

import (
	"fmt"
	"io"
	"strconv"

	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/netsim"
	"htmgil/internal/railslite"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

// The serving experiment drives the two paper applications open-loop at
// datacenter shape: a bounded worker pool on a large simulated server
// (htm.Server, 64-256 cores), more than a thousand logical client sessions,
// and arrivals drawn from seeded stochastic processes that do not observe
// the server. Closed-loop Figure 7 measures peak throughput; this measures
// what operators actually watch — tail latency and SLO attainment under
// steady load, overload, burstiness, diurnal ramps, slow-draining clients,
// and injected network/HTM chaos (the latter with the breaker + watchdog
// on and a time-to-recover column, like the chaos experiment). Every point
// is fully deterministic, so the table, the JSON reports, and the CSV are
// byte-identical across runs.

// cyclesPerMs converts virtual cycles to milliseconds for the table.
const cyclesPerMs = float64(vm.CyclesPerSecond) / 1000

// servingScenario is one traffic shape of the sweep.
type servingScenario struct {
	name      string
	kind      netsim.ArrivalKind
	loadMult  float64 // offered rate = loadMult * the app's base rate
	slowFrac  float64 // fraction of sessions that drain slowly
	slowStall int64
	policy    string // contention policy override ("" = HTM-dynamic)
	faults    string // fault spec; arms breaker + watchdog when set
}

// servingApp is one application shape: the pool size it serves with, the
// offered load that saturates roughly 70-80% of that pool (the scenarios
// scale it), and the route classes with their latency SLOs.
type servingApp struct {
	name     string
	workers  int
	baseRate float64 // req per virtual second at loadMult 1.0
	routes   []netsim.OpenRoute
}

func servingGet(path string) string {
	return "GET " + path + " HTTP/1.1\r\nHost: sim.example\r\nUser-Agent: open/1.0\r\nAccept: text/html\r\nConnection: close\r\n\r\n"
}

// servingApps sizes each pool at its measured sweet spot: webrick peaks
// near 16 workers (~28 req/s on htm.Server; beyond that the gil and
// malloc-global conflict regions push the abort ratio past 95% and
// throughput falls), and rails sustains ~51 req/s. Base rates put steady
// load at roughly 75% of that capacity.
func servingApps() []servingApp {
	return []servingApp{
		{
			name:     "webrick",
			workers:  16,
			baseRate: 21,
			routes: []netsim.OpenRoute{
				{Name: "index", Request: servingGet("/index.html"), SLOCycles: 2_000_000},
				{Name: "about", Request: servingGet("/about"), SLOCycles: 2_000_000},
				{Name: "missing", Request: servingGet("/missing"), SLOCycles: 1_500_000},
			},
		},
		{
			name:     "rails",
			workers:  16,
			baseRate: 38,
			routes: []netsim.OpenRoute{
				{Name: "books", Request: servingGet("/books"), SLOCycles: 1_200_000},
				{Name: "book", Request: servingGet("/books/7"), SLOCycles: 1_200_000},
				{Name: "miss", Request: servingGet("/"), SLOCycles: 800_000},
			},
		},
	}
}

// servingScenarios returns the quick sweep; full adds the slower shapes.
func servingScenarios(quick bool, horizon int64) []servingScenario {
	out := []servingScenario{
		{name: "steady", kind: netsim.ArrivalPoisson, loadMult: 1.0},
		{name: "overload", kind: netsim.ArrivalPoisson, loadMult: 1.5},
		{name: "bursty", kind: netsim.ArrivalBursty, loadMult: 1.0},
		{name: "net-chaos", kind: netsim.ArrivalPoisson, loadMult: 0.8,
			faults: fmt.Sprintf("spurious=8000,connreset=0.01,slowclient=0.02,until=%d", horizon/2)},
	}
	if !quick {
		out = append(out,
			servingScenario{name: "diurnal", kind: netsim.ArrivalDiurnal, loadMult: 1.0},
			servingScenario{name: "slow-drain", kind: netsim.ArrivalPoisson, loadMult: 0.9,
				slowFrac: 0.05, slowStall: 250_000},
			servingScenario{name: "lazy-sub", kind: netsim.ArrivalPoisson, loadMult: 1.0,
				policy: "lazy-subscription"},
		)
	}
	return out
}

// servingRun is the handle to one serving point.
type servingRun struct {
	gen     *netsim.OpenLoadGen
	ab      float64
	cycles  int64
	st      *vm.Stats
	agg     LatencySummary
	routes  []RouteLatency
	recover *int64
}

// servingDigest pools the per-route samples into the aggregate summary
// (attainment judged against each route's own SLO) and the per-route table.
// Requests that never completed — shed by admission control, given up after
// exhausting retries, or cancelled past their deadline — are SLO misses:
// they fold into attainment without contributing latency samples.
func servingDigest(g *netsim.OpenLoadGen, routes []netsim.OpenRoute) (LatencySummary, []RouteLatency) {
	var all []int64
	met, judged := 0, 0
	per := make([]RouteLatency, 0, len(routes))
	for i, r := range routes {
		rs := Summarize(g.Samples[i], r.SLOCycles).WithFailures(g.FailedByRoute[i])
		per = append(per, RouteLatency{Route: r.Name, LatencySummary: rs})
		all = append(all, g.Samples[i]...)
		if r.SLOCycles > 0 {
			judged += len(g.Samples[i]) + g.FailedByRoute[i]
			met += rs.Met
		}
	}
	agg := Summarize(all, 0).WithFailures(g.Shed + g.GaveUp + g.DeadlineExceeded)
	if judged > 0 {
		agg.Attainment = float64(met) / float64(judged)
	}
	return agg, per
}

// servingPoint enumerates one point of the serving sweep.
func (p *plan) servingPoint(label string, prof *htm.Profile, app servingApp, sc servingScenario,
	seed int64, sessions int, horizon int64) *servingRun {
	sr := &servingRun{}
	pt := &point{label: label}
	s := p.s
	rate := app.baseRate * sc.loadMult
	pt.exec = func() error {
		var spec *fault.Spec
		if sc.faults != "" {
			var err error
			if spec, err = fault.ParseSpec(sc.faults); err != nil {
				return err
			}
		}
		agg, rec := s.attach()
		gen := &netsim.OpenLoadGen{
			Seed: seed,
			Arrivals: netsim.ArrivalOpts{
				Kind:       sc.kind,
				RatePerSec: rate,
				Horizon:    horizon,
			},
			Routes:       app.routes,
			Sessions:     sessions,
			SlowFraction: sc.slowFrac,
			SlowStall:    sc.slowStall,
		}
		var (
			cycles int64
			ab     float64
			st     *vm.Stats
		)
		switch app.name {
		case "webrick":
			r, err := webrick.Run(webrick.Config{Prof: prof, Mode: vm.ModeHTM, Policy: sc.policy,
				Workers: app.workers, Open: gen, Trace: rec,
				Faults: spec, Breaker: spec != nil, Watchdog: spec != nil})
			if err != nil {
				return err
			}
			cycles, ab, st = r.Cycles, r.AbortRatio, r.Stats
		default:
			r, err := railslite.Run(railslite.Config{Prof: prof, Mode: vm.ModeHTM, Policy: sc.policy,
				Workers: app.workers, Open: gen, Trace: rec,
				Faults: spec, Breaker: spec != nil, Watchdog: spec != nil})
			if err != nil {
				return err
			}
			cycles, ab, st = r.Cycles, r.AbortRatio, r.Stats
		}
		sr.gen, sr.ab, sr.cycles, sr.st = gen, ab, cycles, st
		sr.agg, sr.routes = servingDigest(gen, app.routes)
		if spec != nil {
			sr.recover = timeToRecover(st, spec)
		}

		rep := newReport("serving", prof.Name, app.name, sc.name,
			app.workers, sessions, cycles, gen.Throughput(), st, agg, s.topN())
		rep.Cores = prof.Cores
		rep.Workers = app.workers
		rep.Sessions = sessions
		rep.RatePerSec = rate
		rep.Arrivals = gen.Generated
		rep.ConnsTotal = gen.ConnsTotal
		rep.ConnsPeak = gen.ConnsPeak
		rep.Shed = gen.Shed
		rep.GaveUp = gen.GaveUp
		rep.DeadlineExceeded = gen.DeadlineExceeded
		lat := sr.agg
		rep.Latency = &lat
		rep.RouteLatency = sr.routes
		if spec != nil {
			rep.FaultSpec = spec.String()
			rep.Seed = chaosSeed(spec, prof)
			rep.RecoverCycles = sr.recover
		}
		pt.rep = rep
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return sr
}

const servingHeader = "%-12s%8s%8s%8s%9s%8s%8s%8s%9s%8s%8s%7s%10s\n"

// servingRow renders one scenario row; latencies in milliseconds. The gaveup
// column counts requests abandoned after exhausting their retry attempts (a
// distinct outcome from completions — they are SLO misses, not lost rows).
func servingRow(w io.Writer, name string, rate float64, r *servingRun) error {
	rec := "-"
	if r.recover != nil {
		rec = strconv.FormatInt(*r.recover, 10)
	}
	ms := func(c int64) float64 { return float64(c) / cyclesPerMs }
	_, err := fmt.Fprintf(w, "%-12s%8.0f%8d%8d%9.1f%8.1f%8.1f%8.1f%9.1f%7.1f%%%7.1f%%%7d%10s\n",
		name, rate, r.gen.Generated, r.gen.GaveUp, r.gen.Throughput(),
		ms(r.agg.P50), ms(r.agg.P99), ms(r.agg.P999), ms(r.agg.Max),
		r.agg.Attainment*100, r.ab*100, r.gen.ConnsPeak, rec)
	return err
}

// servingRoutesRow renders the per-route latency digest of one point.
func servingRoutesRow(w io.Writer, app string, r *servingRun) error {
	ms := func(c int64) float64 { return float64(c) / cyclesPerMs }
	for _, rl := range r.routes {
		if _, err := fmt.Fprintf(w, "%-10s%-10s%8d%8.1f%8.1f%8.1f%9.1f%7.1f%%\n",
			app, rl.Route, rl.Count, ms(rl.P50), ms(rl.P99), ms(rl.P999), ms(rl.Max),
			rl.Attainment*100); err != nil {
			return err
		}
	}
	return nil
}

// buildServing enumerates the open-loop serving sweep: every scenario for
// both applications on the 128-core server, a pool-size sweep of the
// steady scenario on the 256-core machine (where elision collapse at large
// pools shows up as an abort-ratio cliff, not more throughput), and the
// per-route latency digest of the steady points.
func (s *Session) buildServing(p *plan) {
	quick := s.Quick
	sessions := 1200
	horizon := int64(250_000_000)
	if !quick {
		horizon = 600_000_000
	}
	scs := servingScenarios(quick, horizon)
	prof := htm.Server(128)

	steady := make(map[string]*servingRun)
	for _, app := range servingApps() {
		p.printf("\n# Serving — %s pool on %s, %d workers, %d sessions, horizon %dM cycles (open-loop)\n",
			app.name, prof.Name, app.workers, sessions, horizon/1_000_000)
		p.printf(servingHeader, "scenario", "rate", "gen", "gaveup", "tput",
			"p50ms", "p99ms", "p999ms", "maxms", "slo", "abort", "peak", "recover")
		for i, sc := range scs {
			r := p.servingPoint(fmt.Sprintf("serving %s/%s/%s", app.name, prof.Name, sc.name),
				prof, app, sc, int64(7+i), sessions, horizon)
			if sc.name == "steady" {
				steady[app.name] = r
			}
			name, rate := sc.name, app.baseRate*sc.loadMult
			p.cell(func(w io.Writer) error { return servingRow(w, name, rate, r) })
		}
	}

	// Pool-size sweep on the largest machine: same steady offered load,
	// growing worker pools. More workers first buy headroom, then the
	// conflict aborts of the shared malloc/GIL lines tip the pool into the
	// fallback regime — latency degrades while the machine sits mostly idle.
	big := htm.Server(256)
	pools := []int{8, 16, 32}
	if !quick {
		pools = []int{4, 8, 16, 32, 48}
	}
	sc := scs[0]
	for _, app := range servingApps() {
		p.printf("\n# Serving — %s steady on %s across pool sizes (%d sessions)\n",
			app.name, big.Name, sessions)
		p.printf(servingHeader, "workers", "rate", "gen", "gaveup", "tput",
			"p50ms", "p99ms", "p999ms", "maxms", "slo", "abort", "peak", "recover")
		for _, w := range pools {
			a := app
			a.workers = w
			r := p.servingPoint(fmt.Sprintf("serving %s/%s/steady-%dw", app.name, big.Name, w),
				big, a, sc, 7, sessions, horizon)
			name, rate := strconv.Itoa(w), app.baseRate*sc.loadMult
			p.cell(func(w io.Writer) error { return servingRow(w, name, rate, r) })
		}
	}

	// Per-route digest of the steady points: where the SLO budget goes.
	p.printf("\n# Serving — per-route latency, steady scenario, %s\n", prof.Name)
	p.printf("%-10s%-10s%8s%8s%8s%8s%9s%8s\n",
		"app", "route", "n", "p50ms", "p99ms", "p999ms", "maxms", "slo")
	for _, app := range servingApps() {
		name, r := app.name, steady[app.name]
		p.cell(func(w io.Writer) error { return servingRoutesRow(w, name, r) })
	}
}

// ServingTable regenerates the serving experiment (see buildServing).
func (s *Session) ServingTable() error { return s.runPlan(s.buildServing) }

// ServingTable regenerates the serving experiment in a fresh Session.
func ServingTable(w io.Writer, quick bool) error { return NewSession(w, quick).ServingTable() }
