package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// runResilience executes the quick resilience ladder and returns the
// table, the JSON reports and the CSV reports.
func runResilience(t *testing.T, parallel int) (table, reports, csv string) {
	t.Helper()
	var tb strings.Builder
	s := NewSession(&tb, true)
	s.Parallel = parallel
	if err := s.ResilienceTable(); err != nil {
		t.Fatal(err)
	}
	var rep, cv strings.Builder
	if err := s.WriteReports(&rep); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteReportsCSV(&cv); err != nil {
		t.Fatal(err)
	}
	return tb.String(), rep.String(), cv.String()
}

// TestResilienceExperimentDeterministic: the metastable-failure ladder —
// table, JSON reports and CSV — is byte-identical across runs and across
// worker counts. This is the in-process version of the CI resilience job.
func TestResilienceExperimentDeterministic(t *testing.T) {
	t1, r1, c1 := runResilience(t, 0)
	t2, r2, c2 := runResilience(t, 1)
	if t1 != t2 {
		t.Errorf("resilience tables differ:\n--- a ---\n%s\n--- b ---\n%s", t1, t2)
	}
	if r1 != r2 {
		t.Errorf("resilience reports differ")
	}
	if c1 != c2 {
		t.Errorf("resilience CSVs differ")
	}

	// The headline must hold: the unprotected server never recovers from
	// the pulse, the fully protected one does — and every row's outcome
	// counters account for every generated request.
	var reps []Report
	if err := json.Unmarshal([]byte(r1), &reps); err != nil {
		t.Fatal(err)
	}
	byConfig := make(map[string]*Report)
	for i := range reps {
		if reps[i].Experiment == "resilience" {
			byConfig[reps[i].Config] = &reps[i]
		}
	}
	for _, want := range []string{"unprotected", "budgets", "admission", "full"} {
		r, ok := byConfig[want]
		if !ok {
			t.Fatalf("no report for config %q (have %d resilience reports)", want, len(byConfig))
		}
		if r.RecoverCycles == nil {
			t.Fatalf("%s: no recover cycles recorded", want)
		}
		resolved := r.Latency.Count + r.Shed + r.GaveUp + r.DeadlineExceeded
		if resolved != r.Arrivals {
			t.Errorf("%s: resolved %d != generated %d (completed %d shed %d gaveup %d dlx %d)",
				want, resolved, r.Arrivals, r.Latency.Count, r.Shed, r.GaveUp, r.DeadlineExceeded)
		}
	}
	if got := *byConfig["unprotected"].RecoverCycles; got != -1 {
		t.Errorf("unprotected recovered at %d, want -1 (collapse must outlive the pulse)", got)
	}
	if got := *byConfig["full"].RecoverCycles; got < 0 {
		t.Errorf("full protection never recovered (recover = %d)", got)
	}
	if byConfig["full"].Shed == 0 {
		t.Errorf("full protection shed nothing — admission/brownout not engaged")
	}
	if len(byConfig["full"].BrownoutTransitions) == 0 {
		t.Errorf("full protection recorded no brownout transitions")
	}
}
