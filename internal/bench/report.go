package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"htmgil/internal/core"
	"htmgil/internal/resilience"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// Report is the machine-readable record of one benchmark configuration
// point. A Session accumulates one Report per executed point so that future
// changes can diff benchmark trajectories instead of re-parsing the
// plain-text tables.
type Report struct {
	Experiment string `json:"experiment"`
	Machine    string `json:"machine"`
	Workload   string `json:"workload"`
	Config     string `json:"config"`
	Threads    int    `json:"threads,omitempty"`
	Clients    int    `json:"clients,omitempty"`

	Cycles     int64   `json:"cycles"`
	Throughput float64 `json:"throughput,omitempty"`
	AbortRatio float64 `json:"abortRatio"`

	Begins      uint64 `json:"txBegins,omitempty"`
	Commits     uint64 `json:"txCommits,omitempty"`
	Aborts      uint64 `json:"txAborts,omitempty"`
	Fallbacks   uint64 `json:"gilFallbacks,omitempty"`
	Adjustments uint64 `json:"lengthAdjustments,omitempty"`
	GCs         uint64 `json:"gcs,omitempty"`

	// Software-transaction (OCC) tier accounting, present only when the
	// point ran under a policy using the tier (the hybrid experiment).
	OCCBegins             uint64 `json:"occBegins,omitempty"`
	OCCCommits            uint64 `json:"occCommits,omitempty"`
	OCCAborts             uint64 `json:"occAborts,omitempty"`
	OCCValidationFailures uint64 `json:"occValidationFailures,omitempty"`

	AbortCauses     map[string]uint64 `json:"abortCauses,omitempty"`
	ConflictRegions map[string]uint64 `json:"conflictRegions,omitempty"`
	// ConflictWriterRegions is the subset of ConflictRegions where the
	// doomed transaction held the conflicting line in its write set.
	ConflictWriterRegions map[string]uint64 `json:"conflictWriterRegions,omitempty"`

	// Trace attribution, present only when the Session ran with
	// TraceSummary (it requires attaching an event recorder to the run).
	TopAbortPCs  []trace.PCCount              `json:"topAbortPCs,omitempty"`
	LengthSeries map[int][]trace.LengthSample `json:"lengthSeries,omitempty"`
	FallbackWhy  map[string]uint64            `json:"fallbackReasons,omitempty"`

	// Fault-injection provenance, present when the run was executed under a
	// fault spec (the chaos experiment, or any caller arming Options.Faults):
	// the canonical spec text and effective fault-stream seed that reproduce
	// the run, the per-channel injection counters, the breaker's state
	// history, the watchdog's degradation counters, and the cycles between
	// the fault horizon clearing (spec until=) and the breaker settling
	// closed again (-1 when the breaker never recovered in the run).
	FaultSpec          string                   `json:"faultSpec,omitempty"`
	Seed               int64                    `json:"seed,omitempty"`
	FaultCounts        map[string]uint64        `json:"faultCounts,omitempty"`
	BreakerTransitions []core.BreakerTransition `json:"breakerTransitions,omitempty"`
	BreakerOpens       uint64                   `json:"breakerOpens,omitempty"`
	Degradations       map[string]uint64        `json:"degradations,omitempty"`
	RecoverCycles      *int64                   `json:"recoverCycles,omitempty"`

	// Open-loop serving fields (the serving experiment): the machine size
	// and pool shape, the offered traffic, connection accounting, and the
	// latency digest — aggregate and per route class. Latency values are in
	// virtual cycles; attainment is judged against each route's SLO.
	Cores        int             `json:"cores,omitempty"`
	Workers      int             `json:"workers,omitempty"`
	Sessions     int             `json:"sessions,omitempty"`
	RatePerSec   float64         `json:"ratePerSec,omitempty"`
	Arrivals     int             `json:"arrivals,omitempty"`
	ConnsTotal   int             `json:"connsTotal,omitempty"`
	ConnsPeak    int             `json:"connsPeak,omitempty"`
	Latency      *LatencySummary `json:"latency,omitempty"`
	RouteLatency []RouteLatency  `json:"routeLatency,omitempty"`

	// Resilience accounting (the resilience experiment, or any serving point
	// run with an admission/retry/deadline config): how each non-completed
	// request was resolved, plus the brownout controller's state history.
	Shed                int                             `json:"shed,omitempty"`
	GaveUp              int                             `json:"gaveUp,omitempty"`
	DeadlineExceeded    int                             `json:"deadlineExceeded,omitempty"`
	BrownoutTransitions []resilience.BrownoutTransition `json:"brownoutTransitions,omitempty"`

	// Sharded-GIL accounting (the datastore experiment, or any point run
	// with Options.Shards > 1): the shard count, the total fallbacks routed
	// to shard locks instead of the root, and the benign cross-shard leak
	// counter (see DESIGN.md §13).
	Shards          int    `json:"shards,omitempty"`
	ShardFallbacks  uint64 `json:"shardFallbacks,omitempty"`
	CrossShardLeaks uint64 `json:"crossShardLeaks,omitempty"`
}

// RouteLatency is the latency digest of one route class of a serving point.
type RouteLatency struct {
	Route string `json:"route"`
	LatencySummary
}

// newReport builds a Report from a run's Stats plus, optionally, the
// trace aggregator that observed the run.
func newReport(exp, machine, workload, config string, threads, clients int,
	cycles int64, throughput float64, st *vm.Stats, agg *trace.Aggregator, topN int) Report {
	r := Report{
		Experiment: exp,
		Machine:    machine,
		Workload:   workload,
		Config:     config,
		Threads:    threads,
		Clients:    clients,
		Cycles:     cycles,
		Throughput: throughput,
	}
	if st != nil {
		r.AbortRatio = st.AbortRatio()
		r.Fallbacks = st.GILFallbacks
		r.Adjustments = st.Adjustments
		r.GCs = st.GCs
		if st.HTM != nil {
			r.Begins = st.HTM.Begins
			r.Commits = st.HTM.Commits
			r.Aborts = st.HTM.Aborts
		}
		if st.OCC != nil {
			r.OCCBegins = st.OCC.Begins
			r.OCCCommits = st.OCC.Commits
			r.OCCAborts = st.OCC.Aborts
			r.OCCValidationFailures = st.OCC.ValidationFailures
		}
		if len(st.AbortCauses) > 0 {
			r.AbortCauses = make(map[string]uint64, len(st.AbortCauses))
			for c, n := range st.AbortCauses {
				r.AbortCauses[c.String()] = n
			}
		}
		if len(st.ConflictRegions) > 0 {
			r.ConflictRegions = make(map[string]uint64, len(st.ConflictRegions))
			for reg, n := range st.ConflictRegions {
				r.ConflictRegions[reg] = n
			}
		}
		if len(st.ConflictWriterRegions) > 0 {
			r.ConflictWriterRegions = make(map[string]uint64, len(st.ConflictWriterRegions))
			for reg, n := range st.ConflictWriterRegions {
				r.ConflictWriterRegions[reg] = n
			}
		}
		r.FaultCounts = st.FaultCounts
		r.Degradations = st.Degradations
		r.BreakerOpens = st.BreakerOpens
		if len(st.BreakerTransitions) > 0 {
			r.BreakerTransitions = st.BreakerTransitions
		}
	}
	if agg != nil {
		r.TopAbortPCs = agg.TopAbortPCs(topN)
		if len(agg.LengthSeries) > 0 {
			r.LengthSeries = agg.LengthSeries
		}
		if len(agg.FallbackReasons) > 0 {
			r.FallbackWhy = agg.FallbackReasons
		}
	}
	return r
}

// WriteReports emits every accumulated Report as indented JSON.
func (s *Session) WriteReports(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Reports)
}

// WriteReportsCSV emits the accumulated Reports as one flat CSV row per
// configuration point: the scalar columns of the JSON reports, for
// spreadsheet/plotting pipelines that don't want to parse JSON.
func (s *Session) WriteReportsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"experiment", "machine", "workload", "config", "threads", "clients",
		"cycles", "throughput", "abortRatio",
		"txBegins", "txCommits", "txAborts", "gilFallbacks", "lengthAdjustments", "gcs",
		"occBegins", "occCommits", "occAborts", "occValidationFailures",
		"faultSpec", "seed", "faultsInjected", "breakerOpens", "recoverCycles",
		"cores", "workers", "sessions", "ratePerSec", "arrivals", "connsTotal", "connsPeak",
		"p50", "p99", "p999", "latMax", "sloAttainment",
		"shed", "gaveUp", "deadlineExceeded",
		"shards", "shardFallbacks", "crossShardLeaks",
	}); err != nil {
		return err
	}
	for i := range s.Reports {
		r := &s.Reports[i]
		var faults uint64
		for _, n := range r.FaultCounts {
			faults += n
		}
		seed, recover := "", ""
		if r.FaultSpec != "" {
			seed = strconv.FormatInt(r.Seed, 10)
		}
		if r.RecoverCycles != nil {
			recover = strconv.FormatInt(*r.RecoverCycles, 10)
		}
		p50, p99, p999, latMax, slo := "", "", "", "", ""
		if r.Latency != nil {
			p50 = strconv.FormatInt(r.Latency.P50, 10)
			p99 = strconv.FormatInt(r.Latency.P99, 10)
			p999 = strconv.FormatInt(r.Latency.P999, 10)
			latMax = strconv.FormatInt(r.Latency.Max, 10)
			slo = strconv.FormatFloat(r.Latency.Attainment, 'g', -1, 64)
		}
		if err := cw.Write([]string{
			r.Experiment, r.Machine, r.Workload, r.Config,
			strconv.Itoa(r.Threads), strconv.Itoa(r.Clients),
			strconv.FormatInt(r.Cycles, 10),
			strconv.FormatFloat(r.Throughput, 'g', -1, 64),
			strconv.FormatFloat(r.AbortRatio, 'g', -1, 64),
			strconv.FormatUint(r.Begins, 10),
			strconv.FormatUint(r.Commits, 10),
			strconv.FormatUint(r.Aborts, 10),
			strconv.FormatUint(r.Fallbacks, 10),
			strconv.FormatUint(r.Adjustments, 10),
			strconv.FormatUint(r.GCs, 10),
			strconv.FormatUint(r.OCCBegins, 10),
			strconv.FormatUint(r.OCCCommits, 10),
			strconv.FormatUint(r.OCCAborts, 10),
			strconv.FormatUint(r.OCCValidationFailures, 10),
			r.FaultSpec, seed,
			strconv.FormatUint(faults, 10),
			strconv.FormatUint(r.BreakerOpens, 10),
			recover,
			strconv.Itoa(r.Cores), strconv.Itoa(r.Workers), strconv.Itoa(r.Sessions),
			strconv.FormatFloat(r.RatePerSec, 'g', -1, 64),
			strconv.Itoa(r.Arrivals), strconv.Itoa(r.ConnsTotal), strconv.Itoa(r.ConnsPeak),
			p50, p99, p999, latMax, slo,
			strconv.Itoa(r.Shed), strconv.Itoa(r.GaveUp), strconv.Itoa(r.DeadlineExceeded),
			strconv.Itoa(r.Shards),
			strconv.FormatUint(r.ShardFallbacks, 10),
			strconv.FormatUint(r.CrossShardLeaks, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceSummaries prints the per-point trace digests collected while
// TraceSummary was on: headline counters, the top abort-causing yield
// points and regions, and the length-adjustment timeline.
func (s *Session) WriteTraceSummaries(w io.Writer) {
	for i := range s.Reports {
		r := &s.Reports[i]
		if r.Begins == 0 && len(r.TopAbortPCs) == 0 {
			continue // non-HTM point: nothing transactional to attribute
		}
		fmt.Fprintf(w, "\n## %s %s/%s %s", r.Experiment, r.Machine, r.Workload, r.Config)
		if r.Threads > 0 {
			fmt.Fprintf(w, " threads=%d", r.Threads)
		}
		if r.Clients > 0 {
			fmt.Fprintf(w, " clients=%d", r.Clients)
		}
		fmt.Fprintf(w, "\n  tx %d begin / %d commit / %d abort | %d gil-fallbacks | %d adjustments\n",
			r.Begins, r.Commits, r.Aborts, r.Fallbacks, r.Adjustments)
		if len(r.TopAbortPCs) > 0 {
			fmt.Fprintf(w, "  top abort yield points:")
			for _, pc := range r.TopAbortPCs {
				fmt.Fprintf(w, " yp%d=%d", pc.PC, pc.Count)
			}
			fmt.Fprintln(w)
		}
		if len(r.LengthSeries) > 0 {
			fmt.Fprintf(w, "  length adjustments:\n")
			for _, pc := range sortedPCs(r.LengthSeries) {
				fmt.Fprintf(w, "    yp%d:", pc)
				for _, smp := range r.LengthSeries[pc] {
					fmt.Fprintf(w, " t=%d %d->%d", smp.T, smp.Old, smp.New)
				}
				fmt.Fprintln(w)
			}
		}
	}
}

func sortedPCs(m map[int][]trace.LengthSample) []int {
	out := make([]int, 0, len(m))
	for pc := range m {
		out = append(out, pc)
	}
	for i := 1; i < len(out); i++ { // insertion sort; the map is tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
