package bench

import "math"

// Latency accounting for the serving experiment. Percentiles are exact
// nearest-rank order statistics — the k-th smallest sample with
// k = ceil(q*n) — not interpolations or sketch estimates: the sample sets
// are small enough to keep, and exactness is what lets the property tests
// pin the implementation against a brute-force sort-and-index oracle.

// LatencySummary is the digest of one route class's latency samples.
type LatencySummary struct {
	Count      int     `json:"count"`
	P50        int64   `json:"p50"`
	P99        int64   `json:"p99"`
	P999       int64   `json:"p999"`
	Max        int64   `json:"max"`
	SLO        int64   `json:"slo,omitempty"`
	Met        int     `json:"met"`              // completed samples within the SLO
	Failed     int     `json:"failed,omitempty"` // non-completed requests folded in (shed/gave-up/expired)
	Attainment float64 `json:"attainment"`       // fraction of samples <= SLO
}

// Summarize digests latency samples against an SLO (slo <= 0: attainment is
// reported as 1). The input slice is not modified.
func Summarize(samples []int64, slo int64) LatencySummary {
	s := LatencySummary{Count: len(samples), SLO: slo, Attainment: 1}
	if len(samples) == 0 {
		return s
	}
	scratch := make([]int64, len(samples))
	copy(scratch, samples)
	s.P50 = Percentile(scratch, 0.50)
	s.P99 = Percentile(scratch, 0.99)
	s.P999 = Percentile(scratch, 0.999)
	for _, v := range samples {
		if v > s.Max {
			s.Max = v
		}
		if slo <= 0 || v <= slo {
			s.Met++
		}
	}
	if slo > 0 {
		s.Attainment = float64(s.Met) / float64(len(samples))
	}
	return s
}

// WithFailures folds failed requests — shed, gave-up, or past-deadline, i.e.
// generated for this route but never completed — into the SLO accounting. A
// request the server refused or cancelled is an SLO miss by definition, even
// when slo <= 0 (no latency target): attainment becomes met / (count +
// failed) as soon as any request failed. Latency percentiles keep describing
// the completed samples only.
func (s LatencySummary) WithFailures(failed int) LatencySummary {
	if failed <= 0 {
		return s
	}
	s.Failed = failed
	s.Attainment = float64(s.Met) / float64(s.Count+failed)
	return s
}

// Percentile returns the exact nearest-rank q-quantile of samples: the k-th
// smallest with k = ceil(q*n), clamped to [1, n]. The slice is reordered
// (quickselect), not sorted; repeated calls on the same scratch slice are
// fine since the multiset is preserved.
func Percentile(samples []int64, q float64) int64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(q * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return kthSmallest(samples, k-1)
}

// kthSmallest selects the 0-indexed k-th order statistic by quickselect
// with a deterministic median-of-three pivot and three-way partitioning
// (ties collapse into the pivot band in one pass, so heavily tied sample
// sets — common for cached fast-path responses — stay O(n)).
func kthSmallest(a []int64, k int) int64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		pv := median3(a[lo], a[mid], a[hi])
		lt, i, gt := lo, lo, hi
		for i <= gt {
			switch {
			case a[i] < pv:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] > pv:
				a[i], a[gt] = a[gt], a[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt - 1
		case k > gt:
			lo = gt + 1
		default:
			return pv
		}
	}
	return a[lo]
}

func median3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
