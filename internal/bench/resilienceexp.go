package bench

import (
	"fmt"
	"io"
	"strconv"

	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/netsim"
	"htmgil/internal/resilience"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

// The resilience experiment stages a metastable failure and measures which
// protection layers let the service climb back out. One scenario, run once
// per protection config: webrick's 16-worker pool on the 128-core server at
// ~75% utilization, hit mid-run by an overload pulse (arrival rate triples
// for a fault window) co-timed with a connection-reset burst. The pulse
// stores energy in every unprotected queue — the listener backlog grows
// past anything the pool can drain, per-session queues stack behind the
// head-of-line request, and reset retries multiply the connect load — so
// when the pulse clears, the post-pulse offered load plus the stored
// backlog still exceeds capacity and the service stays collapsed: the
// classic metastable trap, visible as recover = -1.
//
// The protection ladder, cumulative row over row:
//
//	unprotected  legacy fixed-interval retries, unbounded backlog
//	budgets      client retry budgets + exponential backoff/jitter: reset
//	             storms resolve to gave-up instead of hammering the listener
//	admission    + server queue-depth gate: bounded backlog bounds queueing
//	             delay, overload resolves to fast sheds
//	full         + deadlines (expired requests cancelled, near-deadline
//	             transactions stop speculating) and the brownout controller
//	             (sheds low-priority routes while the queue-delay EWMA is
//	             hot, keeping the essential route inside its SLO)
//
// Recovery is judged at the request level, not from runtime internals: a
// RecoveryTracker buckets every outcome (an SLO-met completion is ok;
// sheds, give-ups, deadline cancels and late completions are not) and
// recover is the cycles from the pulse clearing until attainment stays
// above threshold for the rest of the run.

// resilienceRow is one protection config of the ladder.
type resilienceRow struct {
	name  string
	retry *resilience.RetryConfig // client-side budgets; nil = legacy retries
	res   *resilience.Config      // server-side protections; nil = none
}

// resilienceBudgets is the client retry policy of every protected row:
// few attempts, a small per-session token bucket refilled by successes,
// exponential backoff with heavy jitter to spread retry waves.
func resilienceBudgets() *resilience.RetryConfig {
	return &resilience.RetryConfig{
		MaxAttempts: 4,
		Budget:      8,
		Refill:      0.5,
		BaseBackoff: 100_000,
		MaxBackoff:  3_200_000,
		JitterFrac:  0.5,
	}
}

// resilienceRows returns the protection ladder.
func resilienceRows() []resilienceRow {
	budgets := resilienceBudgets()
	return []resilienceRow{
		{name: "unprotected"},
		{name: "budgets", retry: budgets},
		{name: "admission", retry: budgets, res: &resilience.Config{MaxQueue: 16}},
		{name: "full", retry: budgets, res: &resilience.Config{
			MaxQueue:      16,
			Deadlines:     true,
			DeadlineSlack: 300_000,
			Brownout: &resilience.BrownoutConfig{
				EnterDelay: 1_000_000,
				ShedDelay:  2_500_000,
			},
		}},
	}
}

// resilienceRoutes is the webrick route mix with brownout priorities:
// index is the essential route (priority 0, never shed by the controller),
// missing is degraded only in the shed state, about goes first in
// brownout. Deadline rows give the page routes a cancel-after budget of 6x
// their SLO — above the admission-bounded queue wait plus the saturated
// service time, so the gate only touches genuine stragglers instead of
// downgrading the whole pool to the GIL — and the cheap 404 a tight 2x
// budget: a 404 that has already blown its SLO threefold is pure wasted
// work, so the server cancels it in the backlog instead of serving it.
func resilienceRoutes(deadlines bool) []netsim.OpenRoute {
	routes := []netsim.OpenRoute{
		{Name: "index", Request: servingGet("/index.html"), SLOCycles: 2_000_000, Priority: 0},
		{Name: "about", Request: servingGet("/about"), SLOCycles: 2_000_000, Priority: 2},
		{Name: "missing", Request: servingGet("/missing"), SLOCycles: 1_500_000, Priority: 1},
	}
	if deadlines {
		for i := range routes {
			routes[i].DeadlineCycles = 6 * routes[i].SLOCycles
		}
		routes[2].DeadlineCycles = 2 * routes[2].SLOCycles
	}
	return routes
}

// resilienceRun is the handle to one point of the ladder.
type resilienceRun struct {
	gen     *netsim.OpenLoadGen
	res     *resilience.Server
	ab      float64
	agg     LatencySummary
	routes  []RouteLatency
	recover int64
}

// resiliencePoint enumerates one protection config under the metastable
// scenario: baseRate at loadMult 1, pulsed by pulseMult over [pulseStart,
// pulseEnd) with a co-timed reset burst, horizon cycles total.
func (p *plan) resiliencePoint(label string, prof *htm.Profile, row resilienceRow,
	baseRate float64, sessions int, horizon, pulseStart, pulseEnd int64, pulseMult float64) *resilienceRun {
	rr := &resilienceRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		specText := fmt.Sprintf("connreset=0.3,from=%d,until=%d", pulseStart, pulseEnd)
		spec, err := fault.ParseSpec(specText)
		if err != nil {
			return err
		}
		agg, rec := s.attach()
		routes := resilienceRoutes(row.res != nil && row.res.Deadlines)
		tracker := &resilience.RecoveryTracker{}
		gen := &netsim.OpenLoadGen{
			Seed: 7,
			Arrivals: netsim.ArrivalOpts{
				Kind:       netsim.ArrivalPoisson,
				RatePerSec: baseRate,
				Horizon:    horizon,
				PulseStart: pulseStart,
				PulseEnd:   pulseEnd,
				PulseMult:  pulseMult,
			},
			Routes:       routes,
			Sessions:     sessions,
			SlowFraction: 0.05,
			SlowStall:    250_000,
			Retry:        row.retry,
			OnOutcome: func(_, route int, arrival, done int64, outcome string) {
				ok := outcome == netsim.OutcomeCompleted &&
					done-arrival <= routes[route].SLOCycles
				tracker.Observe(done, ok)
			},
		}
		r, err := webrick.Run(webrick.Config{Prof: prof, Mode: vm.ModeHTM,
			Workers: 16, Open: gen, Trace: rec,
			Faults: spec, Breaker: true, Watchdog: true,
			Resilience: row.res})
		if err != nil {
			return err
		}
		rr.gen, rr.res, rr.ab = gen, r.Res, r.AbortRatio
		rr.agg, rr.routes = servingDigest(gen, routes)
		rr.recover = tracker.RecoverAt(pulseEnd)

		rep := newReport("resilience", prof.Name, "webrick", row.name,
			16, sessions, r.Cycles, gen.Throughput(), r.Stats, agg, s.topN())
		rep.Cores = prof.Cores
		rep.Workers = 16
		rep.Sessions = sessions
		rep.RatePerSec = baseRate
		rep.Arrivals = gen.Generated
		rep.ConnsTotal = gen.ConnsTotal
		rep.ConnsPeak = gen.ConnsPeak
		rep.Shed = gen.Shed
		rep.GaveUp = gen.GaveUp
		rep.DeadlineExceeded = gen.DeadlineExceeded
		lat := rr.agg
		rep.Latency = &lat
		rep.RouteLatency = rr.routes
		rep.FaultSpec = spec.String()
		rep.Seed = chaosSeed(spec, prof)
		rec2 := rr.recover
		rep.RecoverCycles = &rec2
		if rr.res != nil && rr.res.Brownout != nil {
			rep.BrownoutTransitions = rr.res.Brownout.Transitions
		}
		pt.rep = rep
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return rr
}

const resilienceHeader = "%-12s%8s%8s%8s%8s%9s%8s%8s%9s%8s%12s\n"

// resilienceRow renders one ladder row; recover is in cycles from the
// pulse clearing (-1: the service never climbed back out).
func resilienceRowOut(w io.Writer, name string, r *resilienceRun) error {
	ms := func(c int64) float64 { return float64(c) / cyclesPerMs }
	_, err := fmt.Fprintf(w, "%-12s%8d%8d%8d%8d%9.1f%8.1f%8.1f%8.1f%%%7.1f%%%12s\n",
		name, r.gen.Generated, r.gen.Shed, r.gen.GaveUp, r.gen.DeadlineExceeded,
		r.gen.Throughput(), ms(r.agg.P50), ms(r.agg.P99),
		r.agg.Attainment*100, r.ab*100, strconv.FormatInt(r.recover, 10))
	return err
}

// buildResilience enumerates the metastable-failure ladder.
func (s *Session) buildResilience(p *plan) {
	prof := htm.Server(128)
	sessions := 1200
	baseRate := 21.0
	horizon := int64(250_000_000)
	if !s.Quick {
		horizon = 400_000_000
	}
	pulseStart, pulseEnd := int64(80_000_000), int64(160_000_000)
	pulseMult := 3.0

	p.printf("\n# Resilience — metastable failure: webrick on %s, 16 workers, %d sessions, %.0f req/s\n",
		prof.Name, sessions, baseRate)
	p.printf("# pulse %.0fx over [%dM,%dM) cycles + connreset=0.3 burst; recover = cycles from pulse end\n",
		pulseMult, pulseStart/1_000_000, pulseEnd/1_000_000)
	p.printf(resilienceHeader, "config", "gen", "shed", "gaveup", "dlx",
		"tput", "p50ms", "p99ms", "slo", "abort", "recover")
	runs := make([]*resilienceRun, 0, 4)
	names := make([]string, 0, 4)
	for _, row := range resilienceRows() {
		r := p.resiliencePoint("resilience webrick/"+row.name, prof, row,
			baseRate, sessions, horizon, pulseStart, pulseEnd, pulseMult)
		name := row.name
		p.cell(func(w io.Writer) error { return resilienceRowOut(w, name, r) })
		runs = append(runs, r)
		names = append(names, name)
	}

	// Per-route digest: what the brownout priorities buy — the essential
	// index route keeps its SLO through the pulse while the sheddable
	// routes absorb the rejections.
	p.printf("\n# Resilience — per-route attainment across the ladder\n")
	p.printf("%-12s%-10s%8s%8s%8s%8s%8s\n",
		"config", "route", "n", "failed", "p50ms", "p99ms", "slo")
	for i := range runs {
		name, r := names[i], runs[i]
		p.cell(func(w io.Writer) error { return resilienceRoutesRow(w, name, r) })
	}
}

// resilienceRoutesRow renders the per-route digest of one ladder row.
func resilienceRoutesRow(w io.Writer, config string, r *resilienceRun) error {
	ms := func(c int64) float64 { return float64(c) / cyclesPerMs }
	for _, rl := range r.routes {
		if _, err := fmt.Fprintf(w, "%-12s%-10s%8d%8d%8.1f%8.1f%7.1f%%\n",
			config, rl.Route, rl.Count, rl.Failed, ms(rl.P50), ms(rl.P99),
			rl.Attainment*100); err != nil {
			return err
		}
	}
	return nil
}

// ResilienceTable regenerates the resilience experiment (see buildResilience).
func (s *Session) ResilienceTable() error { return s.runPlan(s.buildResilience) }

// ResilienceTable regenerates the resilience experiment in a fresh Session.
func ResilienceTable(w io.Writer, quick bool) error { return NewSession(w, quick).ResilienceTable() }
