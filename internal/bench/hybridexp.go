package bench

import (
	"fmt"
	"io"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

// The hybrid experiment evaluates the three-tier elision pipeline: where
// does the software-transaction (OCC) tier between HTM and the GIL pay
// off? It sweeps five runtimes over the NPB kernels and WEBrick:
//
//   GIL            every critical section under the lock (the baseline)
//   paper-dynamic  the paper's two tiers: HTM with a GIL fallback
//   occ-adaptive   three tiers: per-site routing HTM -> OCC -> GIL
//   occ-adpt-sbx   occ-adaptive with sandboxed HTM: hardware transactions
//                  skip the OCC sequence-word subscription and rely on
//                  per-line publication conflicts alone
//   occ-first      the software tier only: OCC with a GIL fallback
//
// Every point attaches a trace aggregator (like the policy experiment),
// and the per-tier attribution tables break commits and aborts down by
// tier — hardware, software, and lock — including OCC validation
// failures. The headline question each summary line answers: at the
// highest thread count, does replacing the GIL fallback with OCC beat
// running the contended sections under the lock?

// hybridConfig pairs a swept runtime with its machine-profile tweak.
type hybridConfig struct {
	name    string
	cfg     Config
	sandbox bool // htm.Profile.OCCSandbox: skip the seq-word subscription
}

func hybridConfigs() []hybridConfig {
	return []hybridConfig{
		{"GIL", Config{Name: "GIL", Mode: vm.ModeGIL}, false},
		{"paper-dynamic", Config{Name: "paper-dynamic", Mode: vm.ModeHTM, Policy: "paper-dynamic"}, false},
		{"occ-adaptive", Config{Name: "occ-adaptive", Mode: vm.ModeHTM, Policy: "occ-adaptive"}, false},
		{"occ-adpt-sbx", Config{Name: "occ-adpt-sbx", Mode: vm.ModeHTM, Policy: "occ-adaptive"}, true},
		{"occ-first", Config{Name: "occ-first", Mode: vm.ModeHTM, Policy: "occ-first"}, false},
	}
}

// hybridProfile builds the per-config machine profile.
func hybridProfile(base func() *htm.Profile, sandbox bool) *htm.Profile {
	p := base()
	p.OCCSandbox = sandbox
	return p
}

// hybridAttribution renders one per-tier attribution line: hardware
// begin/commit/abort, software begin/commit/abort plus commit-time
// validation failures, and sections that ended up under the lock.
func hybridAttribution(w io.Writer, name string, st *vm.Stats) error {
	var hb, hc, ha uint64
	if st.HTM != nil {
		hb, hc, ha = st.HTM.Begins, st.HTM.Commits, st.HTM.Aborts
	}
	var ob, oc, oa, ovf uint64
	if st.OCC != nil {
		ob, oc, oa, ovf = st.OCC.Begins, st.OCC.Commits, st.OCC.Aborts, st.OCC.ValidationFailures
	}
	_, err := fmt.Fprintf(w, "%-16s%10d%10d%10d%10d%10d%10d%10d%10d\n",
		name, hb, hc, ha, ob, oc, oa, ovf, st.GILFallbacks)
	return err
}

func hybridAttributionHeader(p *plan) {
	p.printf("%-16s%10s%10s%10s%10s%10s%10s%10s%10s\n", "policy",
		"htmBegin", "htmCommit", "htmAbort", "occBegin", "occCommit", "occAbort", "valFail", "gilFall")
}

// buildHybrid enumerates the hybrid-TM experiment: throughput tables
// normalized to 1-thread (1-client) GIL, a per-tier attribution table at
// the highest contention point, and a summary line comparing the
// OCC-using runtimes against the all-GIL baseline at that point.
func (s *Session) buildHybrid(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	cfgs := hybridConfigs()
	for _, base := range []func() *htm.Profile{htm.ZEC12, htm.XeonE3} {
		prof := base()
		ths := threadsFor(prof, quick)
		maxTh := ths[len(ths)-1]
		for _, bench := range policyKernels(quick) {
			p.printf("\n# Hybrid TM — %s on %s (throughput, 1 = 1-thread GIL)\n", bench, prof.Name)
			baseRun := p.kernel(fmt.Sprintf("hybrid baseline %s/%s", prof.Name, bench),
				"hybrid", bench, prof, cfgs[0].cfg, 1, class, false)
			p.printf("%-10s", "threads")
			for _, hc := range cfgs {
				p.printf("%16s", hc.name)
			}
			p.printf("\n")
			top := map[string]*policyRun{}
			for _, th := range ths {
				p.printf("%-10d", th)
				for _, hc := range cfgs {
					r := p.policyKernel(fmt.Sprintf("hybrid %s/%s/%s/%d", prof.Name, bench, hc.name, th),
						"hybrid", bench, hybridProfile(base, hc.sandbox), hc.cfg, th, class)
					if th == maxTh {
						top[hc.name] = r
					}
					p.cell(func(w io.Writer) error {
						_, err := fmt.Fprintf(w, "%16.2f", float64(baseRun.res.Cycles)/float64(r.res.Cycles))
						return err
					})
				}
				p.printf("\n")
			}
			p.printf("\n# Hybrid per-tier attribution — %s on %s, %d threads\n", bench, prof.Name, maxTh)
			hybridAttributionHeader(p)
			for _, hc := range cfgs {
				r := top[hc.name]
				name := hc.name
				p.cell(func(w io.Writer) error {
					return hybridAttribution(w, name, r.res.Stats)
				})
			}
			gilTop := top["GIL"]
			p.cell(func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "# vs all-GIL at %d threads: occ-first %.2fx, occ-adaptive %.2fx, paper-dynamic %.2fx\n",
					maxTh,
					float64(gilTop.res.Cycles)/float64(top["occ-first"].res.Cycles),
					float64(gilTop.res.Cycles)/float64(top["occ-adaptive"].res.Cycles),
					float64(gilTop.res.Cycles)/float64(top["paper-dynamic"].res.Cycles))
				return err
			})
		}
	}
	// WEBrick on zEC12 (z/OS malloc shadowing, like the policy sweep).
	requests := 3000
	clientsList := []int{1, 2, 4, 6}
	if quick {
		requests = 800
		clientsList = []int{1, 4}
	}
	maxCl := clientsList[len(clientsList)-1]
	p.printf("\n# Hybrid TM — webrick on zEC12 (throughput, 1 = 1-client GIL)\n")
	baseSrv := p.server("hybrid webrick baseline", "hybrid", "webrick", htm.ZEC12(), cfgs[0].cfg, 1, requests, true)
	p.printf("%-10s", "clients")
	for _, hc := range cfgs {
		p.printf("%16s", hc.name)
	}
	p.printf("\n")
	topSrv := map[string]*policyServerRun{}
	for _, cl := range clientsList {
		p.printf("%-10d", cl)
		for _, hc := range cfgs {
			r := p.policyServer(fmt.Sprintf("hybrid webrick/%s/%d", hc.name, cl),
				"hybrid", hybridProfile(htm.ZEC12, hc.sandbox), hc.cfg, cl, requests, true)
			if cl == maxCl {
				topSrv[hc.name] = r
			}
			p.cell(func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "%16.2f", r.tp/baseSrv.tp)
				return err
			})
		}
		p.printf("\n")
	}
	p.printf("\n# Hybrid per-tier attribution — webrick on zEC12, %d clients\n", maxCl)
	hybridAttributionHeader(p)
	for _, hc := range cfgs {
		r := topSrv[hc.name]
		name := hc.name
		p.cell(func(w io.Writer) error {
			return hybridAttribution(w, name, r.st)
		})
	}
	gilSrv := topSrv["GIL"]
	p.cell(func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "# vs all-GIL at %d clients: occ-first %.2fx, occ-adaptive %.2fx, paper-dynamic %.2fx\n",
			maxCl,
			topSrv["occ-first"].tp/gilSrv.tp,
			topSrv["occ-adaptive"].tp/gilSrv.tp,
			topSrv["paper-dynamic"].tp/gilSrv.tp)
		return err
	})
}

// HybridTable regenerates the hybrid-TM experiment (see buildHybrid).
func (s *Session) HybridTable() error { return s.runPlan(s.buildHybrid) }

// HybridTable regenerates the hybrid-TM experiment in a fresh Session.
func HybridTable(w io.Writer, quick bool) error { return NewSession(w, quick).HybridTable() }
