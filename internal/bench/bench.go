// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated machines. Each experiment
// writes a plain-text table whose rows correspond to the points of the
// original plot; EXPERIMENTS.md records the comparison against the paper.
//
// Experiments run inside a Session, which accumulates one machine-readable
// Report per executed configuration point (WriteReports) and, when
// TraceSummary is on, attaches a trace aggregator to every VM run so the
// per-point digests can attribute aborts to yield points and regions and
// show the dynamic length-adjustment timeline (WriteTraceSummaries). The
// package-level Fig*/Table functions are thin wrappers over a fresh Session
// for callers that only want the plain-text tables.
//
// Every configuration point is an independent, fully deterministic
// single-threaded simulation, so each experiment first enumerates its points
// into a plan and then executes them on a pool of Session.Parallel workers
// (see plan.go); results are merged in point order, keeping the output
// byte-identical to a sequential run.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// Config names one interpreter configuration of Figure 5/7.
type Config struct {
	Name     string
	Mode     vm.Mode
	TxLength int32
	// Policy selects a contention-management policy by registry name
	// (internal/policy); empty keeps the historical TxLength semantics,
	// so the paper's five configurations are unaffected.
	Policy string
}

// Configs returns the paper's five configurations.
func Configs() []Config {
	return []Config{
		{Name: "GIL", Mode: vm.ModeGIL},
		{Name: "HTM-1", Mode: vm.ModeHTM, TxLength: 1},
		{Name: "HTM-16", Mode: vm.ModeHTM, TxLength: 16},
		{Name: "HTM-256", Mode: vm.ModeHTM, TxLength: 256},
		{Name: "HTM-dynamic", Mode: vm.ModeHTM},
	}
}

// threadsFor returns the paper's thread counts for a machine.
func threadsFor(p *htm.Profile, quick bool) []int {
	if p.SMTWays == 1 {
		if quick {
			return []int{1, 4, 12}
		}
		return []int{1, 2, 4, 8, 12}
	}
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 4, 6, 8}
}

func classFor(quick bool) npb.Class {
	if quick {
		return npb.ClassS
	}
	return npb.ClassW
}

// Session runs experiments and accumulates their results. The zero value
// plus a writer is usable; NewSession fills in the defaults.
type Session struct {
	W     io.Writer
	Quick bool
	// TraceSummary attaches an event aggregator to every VM run so that
	// Reports carry abort-PC attribution and length-adjustment timelines
	// (and WriteTraceSummaries has something to print).
	TraceSummary bool
	// TopN bounds the abort-PC rankings kept per report (default 5).
	TopN int
	// Parallel is the number of workers executing configuration points;
	// 0 selects runtime.GOMAXPROCS(0) and 1 forces sequential execution.
	// Whatever the value, tables and Reports come out in the same order
	// with the same bytes.
	Parallel int
	Reports  []Report
}

// NewSession returns a Session writing plain-text tables to w.
func NewSession(w io.Writer, quick bool) *Session {
	return &Session{W: w, Quick: quick, TopN: 5}
}

func (s *Session) topN() int {
	if s.TopN > 0 {
		return s.TopN
	}
	return 5
}

// attach creates the per-run aggregator and recorder when TraceSummary is
// on; both are nil otherwise, keeping the instrumented runtime on its
// nil-check fast path.
func (s *Session) attach() (*trace.Aggregator, *trace.Recorder) {
	if !s.TraceSummary {
		return nil, nil
	}
	agg := trace.NewAggregator()
	return agg, trace.NewRecorder(agg)
}

// buildFig5 enumerates Figure 5: NPB throughput against threads for the five
// configurations on both machines, normalized to 1-thread GIL.
func (s *Session) buildFig5(p *plan) {
	quick := s.Quick
	for _, prof := range []*htm.Profile{htm.ZEC12(), htm.XeonE3()} {
		for _, bench := range npb.Kernels {
			p.printf("\n# Figure 5 — %s on %s (throughput, 1 = 1-thread GIL)\n", bench, prof.Name)
			base := p.kernel(fmt.Sprintf("fig5 baseline %s", bench),
				"fig5", bench, prof, Configs()[0], 1, classFor(quick), false)
			p.printf("%-12s", "threads")
			for _, cfg := range Configs() {
				p.printf("%14s", cfg.Name)
			}
			p.printf("\n")
			for _, th := range threadsFor(prof, quick) {
				p.printf("%-12d", th)
				for _, cfg := range Configs() {
					r := p.kernel(fmt.Sprintf("fig5 %s/%s/%d", bench, cfg.Name, th),
						"fig5", bench, prof, cfg, th, classFor(quick), true)
					p.cell(func(w io.Writer) error {
						_, err := fmt.Fprintf(w, "%14.2f", float64(base.res.Cycles)/float64(r.res.Cycles))
						return err
					})
				}
				p.printf("\n")
			}
		}
	}
}

// buildFig6a enumerates Figure 6(a): the TSX learning behaviour. A synthetic
// transaction writes a shrinking working set; the success ratio recovers
// only gradually after the set drops below capacity. It drives the HTM
// layer directly (no VM run), so it contributes no Reports and forms a
// single plan point.
func (s *Session) buildFig6a(p *plan) {
	quick := s.Quick
	p.raw("fig6a", func(w io.Writer) error {
		prof := htm.XeonE3()
		prof.InterruptMeanCycles = 0
		mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 1)
		base := mem.Reserve("data", 1<<21)
		ctx := htm.NewContext(prof, mem, 0, 42)
		iters := 10000
		if quick {
			iters = 2000
		}
		fmt.Fprintf(w, "\n# Figure 6a — write-set shrink on %s (success ratio per %d-iteration window)\n", prof.Name, 100)
		fmt.Fprintf(w, "%-12s%-12s%-12s\n", "iteration", "sizeKB", "success%")
		window, succ := 0, 0
		iter := 0
		for _, sizeKB := range []int{24, 20, 16, 12, 8, 4} {
			lines := sizeKB << 10 / prof.LineBytes
			for i := 0; i < iters; i++ {
				ctx.Begin(0)
				for l := 0; l < lines && !ctx.Tx.Doomed(); l++ {
					ctx.Tx.Store(base+simmem.Addr(l*prof.LineBytes), simmem.Word{Bits: 1})
				}
				if _, ok := ctx.End(0); ok {
					succ++
				} else {
					ctx.Abort()
				}
				window++
				iter++
				if window == 100 {
					fmt.Fprintf(w, "%-12d%-12d%-12d\n", iter, sizeKB, succ)
					window, succ = 0, 0
				}
			}
		}
		return nil
	})
}

// buildFig6b enumerates Figure 6(b): BT with the larger class on Xeon, where
// the longer run lets HTM-dynamic reach and beat the fixed lengths.
func (s *Session) buildFig6b(p *plan) {
	quick := s.Quick
	prof := htm.XeonE3()
	class := npb.ClassW
	if quick {
		class = npb.ClassS
	}
	p.printf("\n# Figure 6b — BT class W on %s (throughput, 1 = 1-thread GIL)\n", prof.Name)
	base := p.kernel("fig6b baseline", "fig6b", npb.BT, prof, Configs()[0], 1, class, false)
	p.printf("%-12s", "threads")
	for _, cfg := range Configs() {
		p.printf("%14s", cfg.Name)
	}
	p.printf("\n")
	for _, th := range threadsFor(prof, quick) {
		p.printf("%-12d", th)
		for _, cfg := range Configs() {
			r := p.kernel(fmt.Sprintf("fig6b %s/%d", cfg.Name, th),
				"fig6b", npb.BT, prof, cfg, th, class, false)
			p.cell(func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "%14.2f", float64(base.res.Cycles)/float64(r.res.Cycles))
				return err
			})
		}
		p.printf("\n")
	}
}

// buildFig7 enumerates Figure 7: WEBrick on both machines and Rails on Xeon,
// throughput normalized to 1-client GIL, plus HTM-dynamic abort ratios.
func (s *Session) buildFig7(p *plan) {
	quick := s.Quick
	// The dynamic adjustment needs enough requests to adapt the handler
	// sites' transaction lengths (the paper served 30,000 per point).
	requests := 3000
	clientsList := []int{1, 2, 3, 4, 5, 6}
	if quick {
		requests = 800
		clientsList = []int{1, 2, 4, 6}
	}
	type app struct {
		name string
		prof *htm.Profile
		zos  bool
	}
	apps := []app{
		{"webrick", htm.ZEC12(), true},
		{"webrick", htm.XeonE3(), false},
		{"rails", htm.XeonE3(), false},
	}
	for _, a := range apps {
		p.printf("\n# Figure 7 — %s on %s (throughput, 1 = 1-client GIL; rightmost: HTM-dynamic abort%%)\n", a.name, a.prof.Name)
		base := p.server(fmt.Sprintf("fig7 %s baseline", a.name),
			"fig7", a.name, a.prof, Configs()[0], 1, requests, a.zos)
		p.printf("%-10s", "clients")
		for _, cfg := range Configs() {
			p.printf("%14s", cfg.Name)
		}
		p.printf("%14s\n", "abort%")
		for _, cl := range clientsList {
			p.printf("%-10d", cl)
			var dyn *serverRun
			for _, cfg := range Configs() {
				r := p.server(fmt.Sprintf("fig7 %s/%s/%d", a.name, cfg.Name, cl),
					"fig7", a.name, a.prof, cfg, cl, requests, a.zos)
				if cfg.Name == "HTM-dynamic" {
					dyn = r
				}
				p.cell(func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "%14.2f", r.tp/base.tp)
					return err
				})
			}
			last := dyn
			p.cell(func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "%14.1f\n", last.ab*100)
				return err
			})
		}
	}
}

// buildFig8 enumerates Figure 8: HTM-dynamic abort ratios of the NPB against
// threads on both machines, and the cycle breakdown at 12 threads on zEC12.
func (s *Session) buildFig8(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	dyn := Configs()[4]
	for _, prof := range []*htm.Profile{htm.ZEC12(), htm.XeonE3()} {
		p.printf("\n# Figure 8 — HTM-dynamic abort ratios (%%) on %s\n", prof.Name)
		p.printf("%-10s", "threads")
		for _, b := range npb.Kernels {
			p.printf("%8s", b)
		}
		p.printf("\n")
		for _, th := range threadsFor(prof, quick) {
			p.printf("%-10d", th)
			for _, b := range npb.Kernels {
				r := p.kernel(fmt.Sprintf("fig8 %s/%d", b, th),
					"fig8", b, prof, dyn, th, class, false)
				p.cell(func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "%8.1f", r.res.Stats.AbortRatio()*100)
					return err
				})
			}
			p.printf("\n")
		}
	}
	// Cycle breakdown, 12 threads on zEC12.
	p.printf("\n# Figure 8 — cycle breakdown, HTM-dynamic, 12 threads, zEC12 (%%)\n")
	p.printf("%-8s%14s%14s%14s%14s%14s\n", "bench",
		vm.CatBeginEnd, vm.CatTxSuccess, vm.CatTxAborted, vm.CatGILHeld, vm.CatGILWait)
	for _, b := range npb.Kernels {
		r := p.kernel(fmt.Sprintf("fig8 breakdown %s", b),
			"fig8", b, htm.ZEC12(), dyn, 12, class, false)
		p.cell(func(w io.Writer) error {
			st := r.res.Stats
			total := float64(st.Cycles[vm.CatBeginEnd] + st.Cycles[vm.CatTxSuccess] +
				st.Cycles[vm.CatTxAborted] + st.Cycles[vm.CatGILHeld] + st.Cycles[vm.CatGILWait])
			if total == 0 {
				total = 1
			}
			fmt.Fprintf(w, "%-8s", b)
			for _, cat := range []vm.CycleCat{vm.CatBeginEnd, vm.CatTxSuccess, vm.CatTxAborted, vm.CatGILHeld, vm.CatGILWait} {
				fmt.Fprintf(w, "%14.1f", 100*float64(st.Cycles[cat])/total)
			}
			_, err := fmt.Fprintln(w)
			return err
		})
	}
}

// buildFig9 enumerates Figure 9: scalability of HTM-dynamic (zEC12), the
// JRuby-style fine-grained-locking runtime, and the Ideal runtime (the
// Java NPB stand-in), each normalized to its own 1-thread run.
func (s *Session) buildFig9(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	runtimes := []struct {
		name string
		prof *htm.Profile
		mode vm.Mode
	}{
		{"HTM-dynamic/zEC12", htm.ZEC12(), vm.ModeHTM},
		{"FGL (JRuby-like)", htm.ZEC12(), vm.ModeFGL},
		{"Ideal (Java-like)", htm.ZEC12(), vm.ModeIdeal},
	}
	for _, rt := range runtimes {
		p.printf("\n# Figure 9 — scalability of %s (1 = own 1-thread)\n", rt.name)
		p.printf("%-10s", "threads")
		for _, b := range npb.Kernels {
			p.printf("%8s", b)
		}
		p.printf("\n")
		bases := map[npb.Bench]*kernelRun{}
		for _, b := range npb.Kernels {
			opt := vm.DefaultOptions(rt.prof, rt.mode)
			bases[b] = p.npb(fmt.Sprintf("fig9 %s/%s/1", rt.name, b),
				"fig9", rt.name, b, opt, 1, class, false)
		}
		for _, th := range threadsFor(rt.prof, quick) {
			p.printf("%-10d", th)
			for _, b := range npb.Kernels {
				opt := vm.DefaultOptions(rt.prof, rt.mode)
				r := p.npb(fmt.Sprintf("fig9 %s/%s/%d", rt.name, b, th),
					"fig9", rt.name, b, opt, th, class, false)
				base := bases[b]
				p.cell(func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "%8.2f", float64(base.res.Cycles)/float64(r.res.Cycles))
					return err
				})
			}
			p.printf("\n")
		}
	}
}

// buildMicro enumerates the Section 5.3 micro-benchmark result: While and
// Iterator speedups of the best HTM configuration over the GIL at 12
// threads on zEC12 (the paper reports 11- and 10-fold).
func (s *Session) buildMicro(p *plan) {
	quick := s.Quick
	prof := htm.ZEC12()
	class := classFor(quick)
	p.printf("\n# Section 5.3 — micro-benchmark throughput over 1-thread GIL on %s\n", prof.Name)
	p.printf("# (Figure 4 workloads run per thread, so throughput = threads * cycle ratio)\n")
	p.printf("%-10s%10s%16s%16s\n", "bench", "threads", "GIL", "HTM-dynamic")
	for _, b := range npb.Micro {
		base := p.kernel(fmt.Sprintf("micro baseline %s", b),
			"micro", b, prof, Configs()[0], 1, class, false)
		for _, th := range []int{1, 12} {
			g := p.kernel(fmt.Sprintf("micro %s/GIL/%d", b, th),
				"micro", b, prof, Configs()[0], th, class, false)
			h := p.kernel(fmt.Sprintf("micro %s/HTM-dynamic/%d", b, th),
				"micro", b, prof, Configs()[4], th, class, false)
			p.cell(func(w io.Writer) error {
				work := float64(th)
				_, err := fmt.Fprintf(w, "%-10s%10d%16.2f%16.2f\n", b, th,
					work*float64(base.res.Cycles)/float64(g.res.Cycles),
					work*float64(base.res.Cycles)/float64(h.res.Cycles))
				return err
			})
		}
	}
}

// buildAborts enumerates the Section 5.6 analyses: abort causes and the
// memory regions responsible for conflict aborts.
func (s *Session) buildAborts(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	dyn := Configs()[4]
	p.printf("\n# Section 5.6 — abort causes and conflict regions, HTM-dynamic, 12 threads, zEC12\n")
	for _, b := range npb.Kernels {
		r := p.kernel(fmt.Sprintf("aborts %s", b),
			"aborts", b, htm.ZEC12(), dyn, 12, class, false)
		p.cell(func(w io.Writer) error {
			st := r.res.Stats
			fmt.Fprintf(w, "%-6s causes:", b)
			var causes []string
			for c := range st.AbortCauses {
				causes = append(causes, c.String())
			}
			sort.Strings(causes)
			total := uint64(0)
			for _, n := range st.AbortCauses {
				total += n
			}
			for _, cs := range causes {
				for c, n := range st.AbortCauses {
					if c.String() == cs && total > 0 {
						fmt.Fprintf(w, " %s=%.0f%%", cs, 100*float64(n)/float64(total))
					}
				}
			}
			fmt.Fprintf(w, " | conflict regions:")
			var regions []string
			ctotal := uint64(0)
			for reg, n := range st.ConflictRegions {
				regions = append(regions, reg)
				ctotal += n
			}
			sort.Strings(regions)
			for _, reg := range regions {
				if ctotal > 0 {
					fmt.Fprintf(w, " %s=%.0f%%", reg, 100*float64(st.ConflictRegions[reg])/float64(ctotal))
				}
			}
			_, err := fmt.Fprintln(w)
			return err
		})
	}
}

// buildOverhead enumerates the Section 5.6 single-thread overhead: the
// paper reports HTM-dynamic 18–35% slower than the GIL with one thread.
func (s *Session) buildOverhead(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	p.printf("\n# Section 5.6 — single-thread overhead of HTM-dynamic vs GIL (zEC12)\n")
	p.printf("%-8s%14s\n", "bench", "overhead%")
	for _, b := range npb.Kernels {
		g := p.kernel(fmt.Sprintf("overhead %s/GIL", b),
			"overhead", b, htm.ZEC12(), Configs()[0], 1, class, false)
		h := p.kernel(fmt.Sprintf("overhead %s/HTM-dynamic", b),
			"overhead", b, htm.ZEC12(), Configs()[4], 1, class, false)
		p.cell(func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%-8s%14.1f\n", b,
				100*(float64(h.res.Cycles)/float64(g.res.Cycles)-1))
			return err
		})
	}
}

// buildAblation enumerates the Section 4.2/4.4 findings: removing the new
// yield points or the conflict removals destroys the HTM speedup.
func (s *Session) buildAblation(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	prof := htm.ZEC12()
	threads := 8
	bench := npb.FT
	baseOpt := vm.DefaultOptions(prof, vm.ModeGIL)
	baseRun := p.npb("ablation baseline", "ablation", "GIL", bench, baseOpt, threads, class, false)
	p.printf("\n# Ablations — %s, %d threads, zEC12 (speedup over GIL at same threads)\n", bench, threads)
	p.printf("%-38s%14s\n", "configuration", "speedup")
	type variant struct {
		name string
		mut  func(*vm.Options)
	}
	variants := []variant{
		{"HTM-dynamic (all optimizations)", func(o *vm.Options) {}},
		{"- extended yield points (§4.2)", func(o *vm.Options) { o.ExtendedYieldPoints = false }},
		{"- thread-local free lists (§4.4)", func(o *vm.Options) { o.ThreadLocalFreeLists = false }},
		{"- globals in TLS (§4.4)", func(o *vm.Options) { o.GlobalVarsToTLS = false }},
		{"- fill-once inline caches (§4.4)", func(o *vm.Options) { o.FillOnceInlineCaches = false }},
		{"- padded thread structs (§4.4)", func(o *vm.Options) { o.PaddedThreadStructs = false }},
		{"- all conflict removals", func(o *vm.Options) {
			o.ThreadLocalFreeLists = false
			o.GlobalVarsToTLS = false
			o.FillOnceInlineCaches = false
			o.PaddedThreadStructs = false
		}},
	}
	for _, va := range variants {
		opt := vm.DefaultOptions(prof, vm.ModeHTM)
		va.mut(&opt)
		r := p.npb(fmt.Sprintf("ablation %q", va.name),
			"ablation", va.name, bench, opt, threads, class, false)
		p.cell(func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%-38s%14.2f\n", va.name,
				float64(baseRun.res.Cycles)/float64(r.res.Cycles))
			return err
		})
	}
}

// Fig5 regenerates Figure 5 (see buildFig5).
func (s *Session) Fig5() error { return s.runPlan(s.buildFig5) }

// Fig6a regenerates Figure 6(a) (see buildFig6a).
func (s *Session) Fig6a() error { return s.runPlan(s.buildFig6a) }

// Fig6b regenerates Figure 6(b) (see buildFig6b).
func (s *Session) Fig6b() error { return s.runPlan(s.buildFig6b) }

// Fig7 regenerates Figure 7 (see buildFig7).
func (s *Session) Fig7() error { return s.runPlan(s.buildFig7) }

// Fig8 regenerates Figure 8 (see buildFig8).
func (s *Session) Fig8() error { return s.runPlan(s.buildFig8) }

// Fig9 regenerates Figure 9 (see buildFig9).
func (s *Session) Fig9() error { return s.runPlan(s.buildFig9) }

// MicroTable regenerates the Section 5.3 micro-benchmark table.
func (s *Session) MicroTable() error { return s.runPlan(s.buildMicro) }

// AbortsTable regenerates the Section 5.6 abort analyses.
func (s *Session) AbortsTable() error { return s.runPlan(s.buildAborts) }

// OverheadTable regenerates the Section 5.6 single-thread overhead table.
func (s *Session) OverheadTable() error { return s.runPlan(s.buildOverhead) }

// AblationTable regenerates the Section 4.2/4.4 ablations.
func (s *Session) AblationTable() error { return s.runPlan(s.buildAblation) }

// runPlan enumerates one experiment into a fresh plan and flushes it.
func (s *Session) runPlan(build func(*plan)) error {
	p := s.newPlan()
	build(p)
	return p.flush()
}

// All runs every experiment in one plan, so the worker pool spans experiment
// boundaries and the tail of one experiment overlaps the head of the next.
func (s *Session) All() error {
	p := s.newPlan()
	for _, st := range s.steps() {
		st.build(p)
	}
	return p.flush()
}

func (s *Session) steps() []struct {
	name  string
	build func(*plan)
} {
	return []struct {
		name  string
		build func(*plan)
	}{
		{"micro", s.buildMicro}, {"fig5", s.buildFig5}, {"fig6a", s.buildFig6a}, {"fig6b", s.buildFig6b},
		{"fig7", s.buildFig7}, {"fig8", s.buildFig8}, {"fig9", s.buildFig9},
		{"aborts", s.buildAborts}, {"overhead", s.buildOverhead}, {"ablation", s.buildAblation},
		{"policy", s.buildPolicy}, {"hybrid", s.buildHybrid}, {"chaos", s.buildChaos},
		{"serving", s.buildServing}, {"resilience", s.buildResilience},
		{"datastore", s.buildDatastore}, {"explore", s.buildExplore},
	}
}

// Experiments returns every experiment name accepted by Run, "all" last.
func Experiments() []string {
	var s Session
	steps := s.steps()
	out := make([]string, 0, len(steps)+1)
	for _, st := range steps {
		out = append(out, st.name)
	}
	return append(out, "all")
}

// Run dispatches one experiment by id.
func (s *Session) Run(name string) error {
	if name == "all" {
		return s.All()
	}
	for _, st := range s.steps() {
		if st.name == name {
			return s.runPlan(st.build)
		}
	}
	return fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(Experiments(), " "))
}

// Package-level wrappers retain the original one-shot API: each runs the
// experiment in a fresh Session and discards the reports.

// Fig5 regenerates Figure 5 (see Session.Fig5).
func Fig5(w io.Writer, quick bool) error { return NewSession(w, quick).Fig5() }

// Fig6a regenerates Figure 6(a) (see Session.Fig6a).
func Fig6a(w io.Writer, quick bool) error { return NewSession(w, quick).Fig6a() }

// Fig6b regenerates Figure 6(b) (see Session.Fig6b).
func Fig6b(w io.Writer, quick bool) error { return NewSession(w, quick).Fig6b() }

// Fig7 regenerates Figure 7 (see Session.Fig7).
func Fig7(w io.Writer, quick bool) error { return NewSession(w, quick).Fig7() }

// Fig8 regenerates Figure 8 (see Session.Fig8).
func Fig8(w io.Writer, quick bool) error { return NewSession(w, quick).Fig8() }

// Fig9 regenerates Figure 9 (see Session.Fig9).
func Fig9(w io.Writer, quick bool) error { return NewSession(w, quick).Fig9() }

// MicroTable regenerates the Section 5.3 table (see Session.MicroTable).
func MicroTable(w io.Writer, quick bool) error { return NewSession(w, quick).MicroTable() }

// AbortsTable regenerates the Section 5.6 analyses (see Session.AbortsTable).
func AbortsTable(w io.Writer, quick bool) error { return NewSession(w, quick).AbortsTable() }

// OverheadTable regenerates the Section 5.6 overhead table (see Session.OverheadTable).
func OverheadTable(w io.Writer, quick bool) error { return NewSession(w, quick).OverheadTable() }

// AblationTable regenerates the ablation table (see Session.AblationTable).
func AblationTable(w io.Writer, quick bool) error { return NewSession(w, quick).AblationTable() }

// All runs every experiment in a fresh Session.
func All(w io.Writer, quick bool) error { return NewSession(w, quick).All() }

// ByName dispatches one experiment by id in a fresh Session.
func ByName(name string, w io.Writer, quick bool) error { return NewSession(w, quick).Run(name) }
