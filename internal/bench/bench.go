// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated machines. Each experiment
// writes a plain-text table whose rows correspond to the points of the
// original plot; EXPERIMENTS.md records the comparison against the paper.
//
// Experiments run inside a Session, which accumulates one machine-readable
// Report per executed configuration point (WriteReports) and, when
// TraceSummary is on, attaches a trace aggregator to every VM run so the
// per-point digests can attribute aborts to yield points and regions and
// show the dynamic length-adjustment timeline (WriteTraceSummaries). The
// package-level Fig*/Table functions are thin wrappers over a fresh Session
// for callers that only want the plain-text tables.
package bench

import (
	"fmt"
	"io"
	"sort"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
	"htmgil/internal/railslite"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

// Config names one interpreter configuration of Figure 5/7.
type Config struct {
	Name     string
	Mode     vm.Mode
	TxLength int32
}

// Configs returns the paper's five configurations.
func Configs() []Config {
	return []Config{
		{"GIL", vm.ModeGIL, 0},
		{"HTM-1", vm.ModeHTM, 1},
		{"HTM-16", vm.ModeHTM, 16},
		{"HTM-256", vm.ModeHTM, 256},
		{"HTM-dynamic", vm.ModeHTM, 0},
	}
}

// threadsFor returns the paper's thread counts for a machine.
func threadsFor(p *htm.Profile, quick bool) []int {
	if p.SMTWays == 1 {
		if quick {
			return []int{1, 4, 12}
		}
		return []int{1, 2, 4, 8, 12}
	}
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 4, 6, 8}
}

func classFor(quick bool) npb.Class {
	if quick {
		return npb.ClassS
	}
	return npb.ClassW
}

// Session runs experiments and accumulates their results. The zero value
// plus a writer is usable; NewSession fills in the defaults.
type Session struct {
	W     io.Writer
	Quick bool
	// TraceSummary attaches an event aggregator to every VM run so that
	// Reports carry abort-PC attribution and length-adjustment timelines
	// (and WriteTraceSummaries has something to print).
	TraceSummary bool
	// TopN bounds the abort-PC rankings kept per report (default 5).
	TopN    int
	Reports []Report
}

// NewSession returns a Session writing plain-text tables to w.
func NewSession(w io.Writer, quick bool) *Session {
	return &Session{W: w, Quick: quick, TopN: 5}
}

func (s *Session) topN() int {
	if s.TopN > 0 {
		return s.TopN
	}
	return 5
}

// attach creates the per-run aggregator and recorder when TraceSummary is
// on; both are nil otherwise, keeping the instrumented runtime on its
// nil-check fast path.
func (s *Session) attach() (*trace.Aggregator, *trace.Recorder) {
	if !s.TraceSummary {
		return nil, nil
	}
	agg := trace.NewAggregator()
	return agg, trace.NewRecorder(agg)
}

// runNPB executes one NPB point under explicit options and records it.
func (s *Session) runNPB(exp, config string, b npb.Bench, opt vm.Options, threads int, c npb.Class) (*npb.Result, error) {
	agg, rec := s.attach()
	opt.Trace = rec
	r, err := npb.Run(b, opt, threads, npb.ParamsFor(b, c))
	if err != nil {
		return nil, err
	}
	s.Reports = append(s.Reports,
		newReport(exp, opt.Prof.Name, string(b), config, threads, 0, r.Cycles, 0, r.Stats, agg, s.topN()))
	return r, nil
}

// runKernel executes one NPB configuration point.
func (s *Session) runKernel(exp string, b npb.Bench, p *htm.Profile, cfg Config, threads int, c npb.Class) (*npb.Result, error) {
	opt := vm.DefaultOptions(p, cfg.Mode)
	opt.TxLength = cfg.TxLength
	return s.runNPB(exp, cfg.Name, b, opt, threads, c)
}

// serverPoint executes one Figure 7 server point and records it.
func (s *Session) serverPoint(exp, app string, prof *htm.Profile, cfg Config, clients, requests int, zos bool) (float64, float64, error) {
	agg, rec := s.attach()
	var (
		tp, ab float64
		cycles int64
		st     *vm.Stats
	)
	switch app {
	case "webrick":
		r, err := webrick.Run(webrick.Config{Prof: prof, Mode: cfg.Mode, TxLength: cfg.TxLength,
			Clients: clients, Requests: requests, ZOSMalloc: zos, Trace: rec})
		if err != nil {
			return 0, 0, err
		}
		tp, ab, cycles, st = r.Throughput, r.AbortRatio, r.Cycles, r.Stats
	default:
		r, err := railslite.Run(railslite.Config{Prof: prof, Mode: cfg.Mode, TxLength: cfg.TxLength,
			Clients: clients, Requests: requests, Trace: rec})
		if err != nil {
			return 0, 0, err
		}
		tp, ab, cycles, st = r.Throughput, r.AbortRatio, r.Cycles, r.Stats
	}
	s.Reports = append(s.Reports,
		newReport(exp, prof.Name, app, cfg.Name, 0, clients, cycles, tp, st, agg, s.topN()))
	return tp, ab, nil
}

// Fig5 regenerates Figure 5: NPB throughput against threads for the five
// configurations on both machines, normalized to 1-thread GIL.
func (s *Session) Fig5() error {
	w, quick := s.W, s.Quick
	for _, prof := range []*htm.Profile{htm.ZEC12(), htm.XeonE3()} {
		for _, bench := range npb.Kernels {
			fmt.Fprintf(w, "\n# Figure 5 — %s on %s (throughput, 1 = 1-thread GIL)\n", bench, prof.Name)
			base, err := s.runKernel("fig5", bench, prof, Configs()[0], 1, classFor(quick))
			if err != nil {
				return fmt.Errorf("fig5 baseline %s: %w", bench, err)
			}
			fmt.Fprintf(w, "%-12s", "threads")
			for _, cfg := range Configs() {
				fmt.Fprintf(w, "%14s", cfg.Name)
			}
			fmt.Fprintln(w)
			for _, th := range threadsFor(prof, quick) {
				fmt.Fprintf(w, "%-12d", th)
				for _, cfg := range Configs() {
					r, err := s.runKernel("fig5", bench, prof, cfg, th, classFor(quick))
					if err != nil {
						return fmt.Errorf("fig5 %s/%s/%d: %w", bench, cfg.Name, th, err)
					}
					if !r.Valid {
						return fmt.Errorf("fig5 %s/%s/%d: validation failed", bench, cfg.Name, th)
					}
					fmt.Fprintf(w, "%14.2f", float64(base.Cycles)/float64(r.Cycles))
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}

// Fig6a regenerates Figure 6(a): the TSX learning behaviour. A synthetic
// transaction writes a shrinking working set; the success ratio recovers
// only gradually after the set drops below capacity. It drives the HTM
// layer directly (no VM run), so it contributes no Reports.
func (s *Session) Fig6a() error {
	w, quick := s.W, s.Quick
	prof := htm.XeonE3()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 1)
	base := mem.Reserve("data", 1<<21)
	ctx := htm.NewContext(prof, mem, 0, 42)
	iters := 10000
	if quick {
		iters = 2000
	}
	fmt.Fprintf(w, "\n# Figure 6a — write-set shrink on %s (success ratio per %d-iteration window)\n", prof.Name, 100)
	fmt.Fprintf(w, "%-12s%-12s%-12s\n", "iteration", "sizeKB", "success%")
	window, succ := 0, 0
	iter := 0
	for _, sizeKB := range []int{24, 20, 16, 12, 8, 4} {
		lines := sizeKB << 10 / prof.LineBytes
		for i := 0; i < iters; i++ {
			ctx.Begin(0)
			for l := 0; l < lines && !ctx.Tx.Doomed(); l++ {
				ctx.Tx.Store(base+simmem.Addr(l*prof.LineBytes), simmem.Word{Bits: 1})
			}
			if _, ok := ctx.End(0); ok {
				succ++
			} else {
				ctx.Abort()
			}
			window++
			iter++
			if window == 100 {
				fmt.Fprintf(w, "%-12d%-12d%-12d\n", iter, sizeKB, succ)
				window, succ = 0, 0
			}
		}
	}
	return nil
}

// Fig6b regenerates Figure 6(b): BT with the larger class on Xeon, where
// the longer run lets HTM-dynamic reach and beat the fixed lengths.
func (s *Session) Fig6b() error {
	w, quick := s.W, s.Quick
	prof := htm.XeonE3()
	class := npb.ClassW
	if quick {
		class = npb.ClassS
	}
	fmt.Fprintf(w, "\n# Figure 6b — BT class W on %s (throughput, 1 = 1-thread GIL)\n", prof.Name)
	base, err := s.runKernel("fig6b", npb.BT, prof, Configs()[0], 1, class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s", "threads")
	for _, cfg := range Configs() {
		fmt.Fprintf(w, "%14s", cfg.Name)
	}
	fmt.Fprintln(w)
	for _, th := range threadsFor(prof, quick) {
		fmt.Fprintf(w, "%-12d", th)
		for _, cfg := range Configs() {
			r, err := s.runKernel("fig6b", npb.BT, prof, cfg, th, class)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%14.2f", float64(base.Cycles)/float64(r.Cycles))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig7 regenerates Figure 7: WEBrick on both machines and Rails on Xeon,
// throughput normalized to 1-client GIL, plus HTM-dynamic abort ratios.
func (s *Session) Fig7() error {
	w, quick := s.W, s.Quick
	// The dynamic adjustment needs enough requests to adapt the handler
	// sites' transaction lengths (the paper served 30,000 per point).
	requests := 3000
	clientsList := []int{1, 2, 3, 4, 5, 6}
	if quick {
		requests = 800
		clientsList = []int{1, 2, 4, 6}
	}
	type app struct {
		name string
		prof *htm.Profile
		zos  bool
	}
	apps := []app{
		{"webrick", htm.ZEC12(), true},
		{"webrick", htm.XeonE3(), false},
		{"rails", htm.XeonE3(), false},
	}
	for _, a := range apps {
		fmt.Fprintf(w, "\n# Figure 7 — %s on %s (throughput, 1 = 1-client GIL; rightmost: HTM-dynamic abort%%)\n", a.name, a.prof.Name)
		baseTp, _, err := s.serverPoint("fig7", a.name, a.prof, Configs()[0], 1, requests, a.zos)
		if err != nil {
			return fmt.Errorf("fig7 %s baseline: %w", a.name, err)
		}
		fmt.Fprintf(w, "%-10s", "clients")
		for _, cfg := range Configs() {
			fmt.Fprintf(w, "%14s", cfg.Name)
		}
		fmt.Fprintf(w, "%14s\n", "abort%")
		for _, cl := range clientsList {
			fmt.Fprintf(w, "%-10d", cl)
			var dynAbort float64
			for _, cfg := range Configs() {
				tp, ab, err := s.serverPoint("fig7", a.name, a.prof, cfg, cl, requests, a.zos)
				if err != nil {
					return fmt.Errorf("fig7 %s/%s/%d: %w", a.name, cfg.Name, cl, err)
				}
				if cfg.Name == "HTM-dynamic" {
					dynAbort = ab
				}
				fmt.Fprintf(w, "%14.2f", tp/baseTp)
			}
			fmt.Fprintf(w, "%14.1f\n", dynAbort*100)
		}
	}
	return nil
}

// Fig8 regenerates Figure 8: HTM-dynamic abort ratios of the NPB against
// threads on both machines, and the cycle breakdown at 12 threads on zEC12.
func (s *Session) Fig8() error {
	w, quick := s.W, s.Quick
	class := classFor(quick)
	dyn := Configs()[4]
	for _, prof := range []*htm.Profile{htm.ZEC12(), htm.XeonE3()} {
		fmt.Fprintf(w, "\n# Figure 8 — HTM-dynamic abort ratios (%%) on %s\n", prof.Name)
		fmt.Fprintf(w, "%-10s", "threads")
		for _, b := range npb.Kernels {
			fmt.Fprintf(w, "%8s", b)
		}
		fmt.Fprintln(w)
		for _, th := range threadsFor(prof, quick) {
			fmt.Fprintf(w, "%-10d", th)
			for _, b := range npb.Kernels {
				r, err := s.runKernel("fig8", b, prof, dyn, th, class)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%8.1f", r.Stats.AbortRatio()*100)
			}
			fmt.Fprintln(w)
		}
	}
	// Cycle breakdown, 12 threads on zEC12.
	fmt.Fprintf(w, "\n# Figure 8 — cycle breakdown, HTM-dynamic, 12 threads, zEC12 (%%)\n")
	fmt.Fprintf(w, "%-8s%14s%14s%14s%14s%14s\n", "bench",
		vm.CatBeginEnd, vm.CatTxSuccess, vm.CatTxAborted, vm.CatGILHeld, vm.CatGILWait)
	for _, b := range npb.Kernels {
		r, err := s.runKernel("fig8", b, htm.ZEC12(), dyn, 12, class)
		if err != nil {
			return err
		}
		total := float64(r.Stats.Cycles[vm.CatBeginEnd] + r.Stats.Cycles[vm.CatTxSuccess] +
			r.Stats.Cycles[vm.CatTxAborted] + r.Stats.Cycles[vm.CatGILHeld] + r.Stats.Cycles[vm.CatGILWait])
		if total == 0 {
			total = 1
		}
		fmt.Fprintf(w, "%-8s", b)
		for _, cat := range []vm.CycleCat{vm.CatBeginEnd, vm.CatTxSuccess, vm.CatTxAborted, vm.CatGILHeld, vm.CatGILWait} {
			fmt.Fprintf(w, "%14.1f", 100*float64(r.Stats.Cycles[cat])/total)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9 regenerates Figure 9: scalability of HTM-dynamic (zEC12), the
// JRuby-style fine-grained-locking runtime, and the Ideal runtime (the
// Java NPB stand-in), each normalized to its own 1-thread run.
func (s *Session) Fig9() error {
	w, quick := s.W, s.Quick
	class := classFor(quick)
	runtimes := []struct {
		name string
		prof *htm.Profile
		mode vm.Mode
	}{
		{"HTM-dynamic/zEC12", htm.ZEC12(), vm.ModeHTM},
		{"FGL (JRuby-like)", htm.ZEC12(), vm.ModeFGL},
		{"Ideal (Java-like)", htm.ZEC12(), vm.ModeIdeal},
	}
	for _, rt := range runtimes {
		fmt.Fprintf(w, "\n# Figure 9 — scalability of %s (1 = own 1-thread)\n", rt.name)
		fmt.Fprintf(w, "%-10s", "threads")
		for _, b := range npb.Kernels {
			fmt.Fprintf(w, "%8s", b)
		}
		fmt.Fprintln(w)
		bases := map[npb.Bench]int64{}
		for _, b := range npb.Kernels {
			opt := vm.DefaultOptions(rt.prof, rt.mode)
			r, err := s.runNPB("fig9", rt.name, b, opt, 1, class)
			if err != nil {
				return err
			}
			bases[b] = r.Cycles
		}
		for _, th := range threadsFor(rt.prof, quick) {
			fmt.Fprintf(w, "%-10d", th)
			for _, b := range npb.Kernels {
				opt := vm.DefaultOptions(rt.prof, rt.mode)
				r, err := s.runNPB("fig9", rt.name, b, opt, th, class)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%8.2f", float64(bases[b])/float64(r.Cycles))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// MicroTable regenerates the Section 5.3 micro-benchmark result: While and
// Iterator speedups of the best HTM configuration over the GIL at 12
// threads on zEC12 (the paper reports 11- and 10-fold).
func (s *Session) MicroTable() error {
	w, quick := s.W, s.Quick
	prof := htm.ZEC12()
	class := classFor(quick)
	fmt.Fprintf(w, "\n# Section 5.3 — micro-benchmark throughput over 1-thread GIL on %s\n", prof.Name)
	fmt.Fprintf(w, "# (Figure 4 workloads run per thread, so throughput = threads * cycle ratio)\n")
	fmt.Fprintf(w, "%-10s%10s%16s%16s\n", "bench", "threads", "GIL", "HTM-dynamic")
	for _, b := range npb.Micro {
		base, err := s.runKernel("micro", b, prof, Configs()[0], 1, class)
		if err != nil {
			return err
		}
		for _, th := range []int{1, 12} {
			g, err := s.runKernel("micro", b, prof, Configs()[0], th, class)
			if err != nil {
				return err
			}
			h, err := s.runKernel("micro", b, prof, Configs()[4], th, class)
			if err != nil {
				return err
			}
			work := float64(th)
			fmt.Fprintf(w, "%-10s%10d%16.2f%16.2f\n", b, th,
				work*float64(base.Cycles)/float64(g.Cycles), work*float64(base.Cycles)/float64(h.Cycles))
		}
	}
	return nil
}

// AbortsTable regenerates the Section 5.6 analyses: abort causes and the
// memory regions responsible for conflict aborts.
func (s *Session) AbortsTable() error {
	w, quick := s.W, s.Quick
	class := classFor(quick)
	dyn := Configs()[4]
	fmt.Fprintf(w, "\n# Section 5.6 — abort causes and conflict regions, HTM-dynamic, 12 threads, zEC12\n")
	for _, b := range npb.Kernels {
		r, err := s.runKernel("aborts", b, htm.ZEC12(), dyn, 12, class)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s causes:", b)
		var causes []string
		for c := range r.Stats.AbortCauses {
			causes = append(causes, c.String())
		}
		sort.Strings(causes)
		total := uint64(0)
		for _, n := range r.Stats.AbortCauses {
			total += n
		}
		for _, cs := range causes {
			for c, n := range r.Stats.AbortCauses {
				if c.String() == cs && total > 0 {
					fmt.Fprintf(w, " %s=%.0f%%", cs, 100*float64(n)/float64(total))
				}
			}
		}
		fmt.Fprintf(w, " | conflict regions:")
		var regions []string
		ctotal := uint64(0)
		for reg, n := range r.Stats.ConflictRegions {
			regions = append(regions, reg)
			ctotal += n
		}
		sort.Strings(regions)
		for _, reg := range regions {
			if ctotal > 0 {
				fmt.Fprintf(w, " %s=%.0f%%", reg, 100*float64(r.Stats.ConflictRegions[reg])/float64(ctotal))
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// OverheadTable regenerates the Section 5.6 single-thread overhead: the
// paper reports HTM-dynamic 18–35% slower than the GIL with one thread.
func (s *Session) OverheadTable() error {
	w, quick := s.W, s.Quick
	class := classFor(quick)
	fmt.Fprintf(w, "\n# Section 5.6 — single-thread overhead of HTM-dynamic vs GIL (zEC12)\n")
	fmt.Fprintf(w, "%-8s%14s\n", "bench", "overhead%")
	for _, b := range npb.Kernels {
		g, err := s.runKernel("overhead", b, htm.ZEC12(), Configs()[0], 1, class)
		if err != nil {
			return err
		}
		h, err := s.runKernel("overhead", b, htm.ZEC12(), Configs()[4], 1, class)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s%14.1f\n", b, 100*(float64(h.Cycles)/float64(g.Cycles)-1))
	}
	return nil
}

// AblationTable regenerates the Section 4.2/4.4 findings: removing the new
// yield points or the conflict removals destroys the HTM speedup.
func (s *Session) AblationTable() error {
	w, quick := s.W, s.Quick
	class := classFor(quick)
	prof := htm.ZEC12()
	threads := 8
	bench := npb.FT
	baseOpt := vm.DefaultOptions(prof, vm.ModeGIL)
	baseRun, err := s.runNPB("ablation", "GIL", bench, baseOpt, threads, class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n# Ablations — %s, %d threads, zEC12 (speedup over GIL at same threads)\n", bench, threads)
	fmt.Fprintf(w, "%-38s%14s\n", "configuration", "speedup")
	type variant struct {
		name string
		mut  func(*vm.Options)
	}
	variants := []variant{
		{"HTM-dynamic (all optimizations)", func(o *vm.Options) {}},
		{"- extended yield points (§4.2)", func(o *vm.Options) { o.ExtendedYieldPoints = false }},
		{"- thread-local free lists (§4.4)", func(o *vm.Options) { o.ThreadLocalFreeLists = false }},
		{"- globals in TLS (§4.4)", func(o *vm.Options) { o.GlobalVarsToTLS = false }},
		{"- fill-once inline caches (§4.4)", func(o *vm.Options) { o.FillOnceInlineCaches = false }},
		{"- padded thread structs (§4.4)", func(o *vm.Options) { o.PaddedThreadStructs = false }},
		{"- all conflict removals", func(o *vm.Options) {
			o.ThreadLocalFreeLists = false
			o.GlobalVarsToTLS = false
			o.FillOnceInlineCaches = false
			o.PaddedThreadStructs = false
		}},
	}
	for _, va := range variants {
		opt := vm.DefaultOptions(prof, vm.ModeHTM)
		va.mut(&opt)
		r, err := s.runNPB("ablation", va.name, bench, opt, threads, class)
		if err != nil {
			return fmt.Errorf("ablation %q: %w", va.name, err)
		}
		fmt.Fprintf(w, "%-38s%14.2f\n", va.name, float64(baseRun.Cycles)/float64(r.Cycles))
	}
	return nil
}

// All runs every experiment.
func (s *Session) All() error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"micro", s.MicroTable}, {"fig5", s.Fig5}, {"fig6a", s.Fig6a}, {"fig6b", s.Fig6b},
		{"fig7", s.Fig7}, {"fig8", s.Fig8}, {"fig9", s.Fig9},
		{"aborts", s.AbortsTable}, {"overhead", s.OverheadTable}, {"ablation", s.AblationTable},
	}
	for _, st := range steps {
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
	}
	return nil
}

// Run dispatches one experiment by id.
func (s *Session) Run(name string) error {
	m := map[string]func() error{
		"micro": s.MicroTable, "fig5": s.Fig5, "fig6a": s.Fig6a, "fig6b": s.Fig6b,
		"fig7": s.Fig7, "fig8": s.Fig8, "fig9": s.Fig9,
		"aborts": s.AbortsTable, "overhead": s.OverheadTable, "ablation": s.AblationTable,
		"all": s.All,
	}
	fn, ok := m[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (try: micro fig5 fig6a fig6b fig7 fig8 fig9 aborts overhead ablation all)", name)
	}
	return fn()
}

// Package-level wrappers retain the original one-shot API: each runs the
// experiment in a fresh Session and discards the reports.

// Fig5 regenerates Figure 5 (see Session.Fig5).
func Fig5(w io.Writer, quick bool) error { return NewSession(w, quick).Fig5() }

// Fig6a regenerates Figure 6(a) (see Session.Fig6a).
func Fig6a(w io.Writer, quick bool) error { return NewSession(w, quick).Fig6a() }

// Fig6b regenerates Figure 6(b) (see Session.Fig6b).
func Fig6b(w io.Writer, quick bool) error { return NewSession(w, quick).Fig6b() }

// Fig7 regenerates Figure 7 (see Session.Fig7).
func Fig7(w io.Writer, quick bool) error { return NewSession(w, quick).Fig7() }

// Fig8 regenerates Figure 8 (see Session.Fig8).
func Fig8(w io.Writer, quick bool) error { return NewSession(w, quick).Fig8() }

// Fig9 regenerates Figure 9 (see Session.Fig9).
func Fig9(w io.Writer, quick bool) error { return NewSession(w, quick).Fig9() }

// MicroTable regenerates the Section 5.3 table (see Session.MicroTable).
func MicroTable(w io.Writer, quick bool) error { return NewSession(w, quick).MicroTable() }

// AbortsTable regenerates the Section 5.6 analyses (see Session.AbortsTable).
func AbortsTable(w io.Writer, quick bool) error { return NewSession(w, quick).AbortsTable() }

// OverheadTable regenerates the Section 5.6 overhead table (see Session.OverheadTable).
func OverheadTable(w io.Writer, quick bool) error { return NewSession(w, quick).OverheadTable() }

// AblationTable regenerates the ablation table (see Session.AblationTable).
func AblationTable(w io.Writer, quick bool) error { return NewSession(w, quick).AblationTable() }

// All runs every experiment in a fresh Session.
func All(w io.Writer, quick bool) error { return NewSession(w, quick).All() }

// ByName dispatches one experiment by id in a fresh Session.
func ByName(name string, w io.Writer, quick bool) error { return NewSession(w, quick).Run(name) }
