package bench

import (
	"strings"
	"testing"
)

// runChaos executes the quick chaos experiment and returns the table, the
// JSON reports and the CSV reports.
func runChaos(t *testing.T, parallel int) (table, reports, csv string) {
	t.Helper()
	var tb strings.Builder
	s := NewSession(&tb, true)
	s.Parallel = parallel
	if err := s.ChaosTable(); err != nil {
		t.Fatal(err)
	}
	var rep, cv strings.Builder
	if err := s.WriteReports(&rep); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteReportsCSV(&cv); err != nil {
		t.Fatal(err)
	}
	return tb.String(), rep.String(), cv.String()
}

// TestChaosExperimentDeterministic: the fixed-seed chaos sweep — table,
// JSON reports and CSV — is byte-identical across runs and across worker
// counts. This is the in-process version of the CI chaos job.
func TestChaosExperimentDeterministic(t *testing.T) {
	t1, r1, c1 := runChaos(t, 0)
	t2, r2, c2 := runChaos(t, 1)
	if t1 != t2 {
		t.Errorf("chaos tables differ:\n--- a ---\n%s\n--- b ---\n%s", t1, t2)
	}
	if r1 != r2 {
		t.Errorf("chaos reports differ")
	}
	if c1 != c2 {
		t.Errorf("chaos CSV differs")
	}

	// Sanity on the content: every profile row renders, the reports carry
	// the fault provenance, and at least one bounded-horizon profile
	// reports a recovery time.
	for _, want := range []string{"clean", "abort-storm", "abort-recover", "capacity",
		"net-chaos", "jitter", "mixed", "recover"} {
		if !strings.Contains(t1, want) {
			t.Errorf("chaos table missing %q:\n%s", want, t1)
		}
	}
	for _, want := range []string{`"faultSpec"`, `"seed"`, `"faultCounts"`, `"breakerTransitions"`} {
		if !strings.Contains(r1, want) {
			t.Errorf("chaos reports missing %s", want)
		}
	}
	if !strings.Contains(c1, "faultSpec") || !strings.Contains(c1, "recoverCycles") {
		t.Errorf("chaos CSV header missing fault columns:\n%s", strings.SplitN(c1, "\n", 2)[0])
	}
}
