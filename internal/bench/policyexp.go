package bench

import (
	"fmt"
	"io"
	"sort"

	"htmgil/internal/htm"
	"htmgil/internal/npb"
	"htmgil/internal/policy"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
	"htmgil/internal/webrick"
)

// The policy experiment sweeps every registered contention-management
// policy (internal/policy) over the NPB kernels and the WEBrick server,
// with the same normalization as Figures 5 and 7 so the paper-dynamic
// column reproduces the HTM-dynamic numbers bit for bit. Unlike the other
// experiments, every point always attaches a trace aggregator: the
// attribution tables break the abort causes and GIL-fallback reasons down
// per policy, which is the whole point of comparing them.

// PolicyConfigs returns one ModeHTM configuration per registered
// contention-management policy, in registry order.
func PolicyConfigs() []Config {
	names := policy.Names()
	out := make([]Config, 0, len(names))
	for _, n := range names {
		out = append(out, Config{Name: n, Mode: vm.ModeHTM, Policy: n})
	}
	return out
}

// policyRun is the handle to a policy-experiment kernel point: the kernel
// result plus the always-attached aggregator for fallback attribution.
type policyRun struct {
	res *npb.Result
	agg *trace.Aggregator
}

// policyKernel enumerates one NPB point of the policy or hybrid
// experiment. It differs from plan.kernel in always attaching a trace
// aggregator, so the attribution tables work without the Session's
// TraceSummary switch.
func (p *plan) policyKernel(label, exp string, b npb.Bench, prof *htm.Profile, cfg Config, threads int, c npb.Class) *policyRun {
	pr := &policyRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		agg := trace.NewAggregator()
		opt := vm.DefaultOptions(prof, cfg.Mode)
		opt.TxLength = cfg.TxLength
		opt.Policy = cfg.Policy
		opt.Trace = trace.NewRecorder(agg)
		r, err := npb.Run(b, opt, threads, npb.ParamsFor(b, c))
		if err != nil {
			return err
		}
		if !r.Valid {
			return errValidation
		}
		pr.res, pr.agg = r, agg
		pt.rep = newReport(exp, prof.Name, string(b), cfg.Name, threads, 0, r.Cycles, 0, r.Stats, agg, s.topN())
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return pr
}

// policyServerRun is the handle to a policy-experiment WEBrick point.
type policyServerRun struct {
	tp, ab float64
	st     *vm.Stats
	agg    *trace.Aggregator
}

// policyServer enumerates one WEBrick point of the policy or hybrid
// experiment.
func (p *plan) policyServer(label, exp string, prof *htm.Profile, cfg Config, clients, requests int, zos bool) *policyServerRun {
	pr := &policyServerRun{}
	pt := &point{label: label}
	s := p.s
	pt.exec = func() error {
		agg := trace.NewAggregator()
		r, err := webrick.Run(webrick.Config{Prof: prof, Mode: cfg.Mode, TxLength: cfg.TxLength,
			Policy: cfg.Policy, Clients: clients, Requests: requests, ZOSMalloc: zos,
			Trace: trace.NewRecorder(agg)})
		if err != nil {
			return err
		}
		pr.tp, pr.ab, pr.st, pr.agg = r.Throughput, r.AbortRatio, r.Stats, agg
		pt.rep = newReport(exp, prof.Name, "webrick", cfg.Name, 0, clients, r.Cycles, r.Throughput, r.Stats, agg, s.topN())
		pt.hasRep = true
		return nil
	}
	p.pts = append(p.pts, pt)
	return pr
}

// attribution renders one per-policy attribution line: abort ratio,
// fallback and adjustment counts, then the sorted abort causes and the
// sorted GIL-fallback reasons observed by the trace aggregator.
func attribution(w io.Writer, name string, st *vm.Stats, agg *trace.Aggregator) error {
	fallbacks, adjusts := uint64(0), uint64(0)
	if st != nil {
		fallbacks, adjusts = st.GILFallbacks, st.Adjustments
	}
	fmt.Fprintf(w, "%-18s%9.1f%%%12d%12d  ", name, st.AbortRatio()*100, fallbacks, adjusts)
	var parts []string
	for c, n := range st.AbortCauses {
		parts = append(parts, fmt.Sprintf("%s=%d", c, n))
	}
	sort.Strings(parts)
	for i, s := range parts {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprint(w, s)
	}
	if len(parts) == 0 {
		fmt.Fprint(w, "-")
	}
	fmt.Fprint(w, " | ")
	parts = parts[:0]
	for reason, n := range agg.FallbackReasons {
		parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
	}
	sort.Strings(parts)
	for i, s := range parts {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprint(w, s)
	}
	if len(parts) == 0 {
		fmt.Fprint(w, "-")
	}
	_, err := fmt.Fprintln(w)
	return err
}

// policyKernels returns the NPB kernels the policy experiment sweeps.
func policyKernels(quick bool) []npb.Bench {
	if quick {
		return []npb.Bench{npb.CG, npb.FT, npb.SP}
	}
	return npb.Kernels
}

// buildPolicy enumerates the policy-comparison experiment: every registered
// policy against threads on the NPB kernels (normalized to 1-thread GIL,
// like Figure 5 — the paper-dynamic column is bit-identical to fig5's
// HTM-dynamic column) and against clients on WEBrick (normalized to
// 1-client GIL, like Figure 7), each table followed by a per-policy abort
// attribution at the highest contention point.
func (s *Session) buildPolicy(p *plan) {
	quick := s.Quick
	class := classFor(quick)
	pols := PolicyConfigs()
	for _, prof := range []*htm.Profile{htm.ZEC12(), htm.XeonE3()} {
		ths := threadsFor(prof, quick)
		maxTh := ths[len(ths)-1]
		for _, bench := range policyKernels(quick) {
			p.printf("\n# Policy comparison — %s on %s (throughput, 1 = 1-thread GIL)\n", bench, prof.Name)
			base := p.kernel(fmt.Sprintf("policy baseline %s", bench),
				"policy", bench, prof, Configs()[0], 1, class, false)
			p.printf("%-10s", "threads")
			for _, pc := range pols {
				p.printf("%18s", pc.Name)
			}
			p.printf("\n")
			top := map[string]*policyRun{}
			for _, th := range ths {
				p.printf("%-10d", th)
				for _, pc := range pols {
					r := p.policyKernel(fmt.Sprintf("policy %s/%s/%d", bench, pc.Name, th),
						"policy", bench, prof, pc, th, class)
					if th == maxTh {
						top[pc.Name] = r
					}
					p.cell(func(w io.Writer) error {
						_, err := fmt.Fprintf(w, "%18.2f", float64(base.res.Cycles)/float64(r.res.Cycles))
						return err
					})
				}
				p.printf("\n")
			}
			p.printf("\n# Policy abort attribution — %s on %s, %d threads\n", bench, prof.Name, maxTh)
			p.printf("%-18s%10s%12s%12s  %s\n", "policy", "abort%", "fallbacks", "adjusts", "causes | fallback reasons")
			for _, pc := range pols {
				r := top[pc.Name]
				name := pc.Name
				p.cell(func(w io.Writer) error {
					return attribution(w, name, r.res.Stats, r.agg)
				})
			}
		}
	}
	// WEBrick: the server workload the paper used on both machines. Requests
	// and client counts match Figure 7 so the numbers stay comparable.
	requests := 3000
	clientsList := []int{1, 2, 4, 6}
	if quick {
		requests = 800
		clientsList = []int{1, 4}
	}
	for _, a := range []struct {
		prof *htm.Profile
		zos  bool
	}{{htm.ZEC12(), true}, {htm.XeonE3(), false}} {
		prof := a.prof
		maxCl := clientsList[len(clientsList)-1]
		p.printf("\n# Policy comparison — webrick on %s (throughput, 1 = 1-client GIL)\n", prof.Name)
		base := p.server(fmt.Sprintf("policy webrick baseline %s", prof.Name),
			"policy", "webrick", prof, Configs()[0], 1, requests, a.zos)
		p.printf("%-10s", "clients")
		for _, pc := range pols {
			p.printf("%18s", pc.Name)
		}
		p.printf("\n")
		top := map[string]*policyServerRun{}
		for _, cl := range clientsList {
			p.printf("%-10d", cl)
			for _, pc := range pols {
				r := p.policyServer(fmt.Sprintf("policy webrick/%s/%s/%d", prof.Name, pc.Name, cl),
					"policy", prof, pc, cl, requests, a.zos)
				if cl == maxCl {
					top[pc.Name] = r
				}
				p.cell(func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "%18.2f", r.tp/base.tp)
					return err
				})
			}
			p.printf("\n")
		}
		p.printf("\n# Policy abort attribution — webrick on %s, %d clients\n", prof.Name, maxCl)
		p.printf("%-18s%10s%12s%12s  %s\n", "policy", "abort%", "fallbacks", "adjusts", "causes | fallback reasons")
		for _, pc := range pols {
			r := top[pc.Name]
			name := pc.Name
			p.cell(func(w io.Writer) error {
				return attribution(w, name, r.st, r.agg)
			})
		}
	}
}

// PolicyTable regenerates the policy-comparison experiment (see buildPolicy).
func (s *Session) PolicyTable() error { return s.runPlan(s.buildPolicy) }

// PolicyTable regenerates the policy comparison in a fresh Session.
func PolicyTable(w io.Writer, quick bool) error { return NewSession(w, quick).PolicyTable() }
