package rbregexp

import "testing"

func TestBasicMatching(t *testing.T) {
	cases := []struct {
		pat, subject string
		want         bool
	}{
		{"abc", "xxabcxx", true},
		{"abc", "xxabx", false},
		{"a.c", "abc", true},
		{"a.c", "a\nc", false},
		{"^GET", "GET /index HTTP/1.1", true},
		{"^GET", "POST GET", false},
		{"end$", "the end", true},
		{"end$", "end of it", false},
		{"[0-9]+", "abc123def", true},
		{"[^0-9]+", "123", false},
		{"a*b", "b", true},
		{"a+b", "b", false},
		{"a+b", "aaab", true},
		{"colou?r", "color", true},
		{"colou?r", "colour", true},
		{"cat|dog", "hotdog", true},
		{"cat|dog", "bird", false},
		{`\d+\.\d+`, "pi is 3.14 ok", true},
		{`\w+`, "  hello ", true},
		{`\s`, "nospace", false},
	}
	for _, c := range cases {
		re, err := Compile(c.pat)
		if err != nil {
			t.Fatalf("compile %q: %v", c.pat, err)
		}
		got := re.Match(c.subject).Matched()
		if got != c.want {
			t.Fatalf("%q =~ %q: got %v want %v", c.pat, c.subject, got, c.want)
		}
	}
}

func TestCaptures(t *testing.T) {
	re := MustCompile(`^(GET|POST) ([^ ]+) HTTP/([0-9.]+)`)
	m := re.Match("GET /books?id=7 HTTP/1.1\r\nHost: x")
	if !m.Matched() {
		t.Fatalf("request line did not match")
	}
	subject := "GET /books?id=7 HTTP/1.1\r\nHost: x"
	g1, _ := m.GroupString(subject, 1)
	g2, _ := m.GroupString(subject, 2)
	g3, _ := m.GroupString(subject, 3)
	if g1 != "GET" || g2 != "/books?id=7" || g3 != "1.1" {
		t.Fatalf("captures = %q %q %q", g1, g2, g3)
	}
}

func TestBacktracking(t *testing.T) {
	re := MustCompile("a*a*a*b")
	if !re.Match("aaab").Matched() {
		t.Fatalf("nested stars failed")
	}
	if re.Match("aaac").Matched() {
		t.Fatalf("false positive")
	}
	re2 := MustCompile("(x+)(x+)y")
	m := re2.Match("xxxy")
	if !m.Matched() {
		t.Fatalf("greedy split failed")
	}
}

func TestStepsAccounting(t *testing.T) {
	re := MustCompile("a+b")
	m := re.Match("aaaaaaaaaaac")
	if m.Matched() {
		t.Fatalf("should not match")
	}
	if m.Steps == 0 {
		t.Fatalf("no steps recorded")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pat := range []string{"(", "[abc", "*a", "a\\"} {
		if _, err := Compile(pat); err == nil {
			t.Fatalf("no error for %q", pat)
		}
	}
}

func TestClassEscapesInsideClass(t *testing.T) {
	re := MustCompile(`[\d\-x]+`)
	m := re.Match("ab12-x34cd")
	if !m.Matched() {
		t.Fatalf("class with escapes failed")
	}
	got := "ab12-x34cd"[m.Begin:m.End]
	if got != "12-x34" {
		t.Fatalf("matched %q", got)
	}
}
