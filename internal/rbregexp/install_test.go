package rbregexp

import (
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/vm"
)

func runRb(t *testing.T, src string) string {
	t.Helper()
	machine := vm.New(vm.DefaultOptions(htm.ZEC12(), vm.ModeGIL))
	Install(machine)
	InstallStringMethods(machine)
	iseq, err := machine.CompileSource(src, "re")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

func TestRegexpFromRuby(t *testing.T) {
	out := runRb(t, `
re = Regexp.new("^GET ([^ ]+)")
m = re.match("GET /books HTTP/1.1")
puts m[1]
puts re.match?("POST /x")
puts re.source
`)
	if out != "/books\nfalse\n^GET ([^ ]+)\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSubGsubFromRuby(t *testing.T) {
	out := runRb(t, `
s = "one fish two fish"
puts s.sub(Regexp.new("fish"), "cat")
puts s.gsub(Regexp.new("fish"), "cat")
puts s.gsub("o", "0")
puts "a.b.c".gsub(".", "-")
`)
	want := "one cat two fish\none cat two cat\n0ne fish tw0 fish\na-b-c\n"
	if out != want {
		t.Fatalf("out = %q want %q", out, want)
	}
}

func TestMatchInsideTransactionTouchesSubject(t *testing.T) {
	machine := vm.New(vm.DefaultOptions(htm.ZEC12(), vm.ModeHTM))
	Install(machine)
	iseq, err := machine.CompileSource(`
re = Regexp.new("needle")
threads = []
i = 0
while i < 4
  threads << Thread.new do
    hay = "hay hay hay needle hay"
    j = 0
    while j < 50
      re.match?(hay)
      j += 1
    end
  end
  i += 1
end
threads.each do |th| th.join end
puts "ok"
`, "tx-re")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(iseq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "ok\n" {
		t.Fatalf("out = %q", res.Output)
	}
}
