package rbregexp

import (
	"fmt"

	"htmgil/internal/object"
	"htmgil/internal/simmem"
	"htmgil/internal/vm"
)

// Install adds the Regexp class to a VM:
//
//	re = Regexp.new("^GET ([^ ]+)")
//	m = re.match(str)   # => array of captures (m[0] = whole match) or nil
//	re.match?(str)      # => boolean
//
// A match reads the subject string's shadow storage through the calling
// thread's accessor, so long subjects inflate the transaction read set the
// way Oniguruma's scanning inflated real footprints.
func Install(machine *vm.VM) {
	reC := machine.DefineClass("Regexp", nil)

	machine.DefineStatic(reC, "new", 1, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		if args[0].Kind != object.KRef || args[0].Ref.Type != object.TString {
			return object.Nil, fmt.Errorf("Regexp.new expects a String")
		}
		re, err := Compile(args[0].Ref.Str)
		if err != nil {
			return object.Nil, err
		}
		o, aerr := t.AllocNativeObject(object.TRegexp, reC, re)
		if aerr != nil {
			return object.Nil, aerr
		}
		o.Str = re.Source
		return object.RefVal(o), nil
	})

	doMatch := func(t *vm.RThread, self object.Value, subject object.Value) (*MatchResult, string, error) {
		if subject.Kind != object.KRef || subject.Ref.Type != object.TString {
			return nil, "", fmt.Errorf("Regexp#match expects a String")
		}
		re := self.Ref.Native.(*Regexp)
		s := subject.Ref.Str
		// Touch the subject's shadow storage: the scan reads the whole
		// string (possibly several times while backtracking).
		base := simmem.Addr(t.TouchRead(subject.Ref.AddrOf(object.SlotA)).Bits)
		if base != 0 {
			words := (len(s) + simmem.WordBytes - 1) / simmem.WordBytes
			for i := 0; i < words; i++ {
				t.TouchRead(base + simmem.Addr(i*simmem.WordBytes))
			}
		}
		return re.Match(s), s, nil
	}

	machine.DefineNative(reC, "match", 1, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		m, s, err := doMatch(t, self, args[0])
		if err != nil {
			return object.Nil, err
		}
		if !m.Matched() {
			return object.Nil, nil
		}
		vals := make([]object.Value, 0, len(m.Groups))
		for i := range m.Groups {
			g, ok := m.GroupString(s, i)
			if !ok {
				vals = append(vals, object.Nil)
				continue
			}
			o, _, aerr := t.AllocString(g)
			if aerr != nil {
				return object.Nil, aerr
			}
			vals = append(vals, object.RefVal(o))
		}
		arr, aerr := t.AllocArrayOf(vals)
		if aerr != nil {
			return object.Nil, aerr
		}
		return object.RefVal(arr), nil
	})

	machine.DefineNative(reC, "match?", 1, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		m, _, err := doMatch(t, self, args[0])
		if err != nil {
			return object.Nil, err
		}
		return object.BoolVal(m.Matched()), nil
	})

	machine.DefineNative(reC, "source", 0, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		o, _, err := t.AllocString(self.Ref.Str)
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})
}

// InstallStringMethods adds regexp-backed String methods (sub, gsub,
// match?) to the VM's String class.
func InstallStringMethods(machine *vm.VM) {
	strVal, ok := machine.Const("String")
	if !ok {
		return
	}
	strC := strVal.Ref.Cls
	replaceFn := func(all bool) vm.NativeFn {
		return func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
			if len(args) != 2 || args[0].Kind != object.KRef || args[1].Kind != object.KRef ||
				args[1].Ref.Type != object.TString {
				return object.Nil, fmt.Errorf("sub/gsub expect (Regexp|String, String)")
			}
			var re *Regexp
			switch args[0].Ref.Type {
			case object.TRegexp:
				re = args[0].Ref.Native.(*Regexp)
			case object.TString:
				var err error
				re, err = Compile(quoteLiteral(args[0].Ref.Str))
				if err != nil {
					return object.Nil, err
				}
			default:
				return object.Nil, fmt.Errorf("sub/gsub pattern must be a Regexp or String")
			}
			subject := self.Ref.Str
			repl := args[1].Ref.Str
			var out []byte
			pos := 0
			for pos <= len(subject) {
				m := re.Match(subject[pos:])
				if !m.Matched() {
					break
				}
				out = append(out, subject[pos:pos+m.Begin]...)
				out = append(out, repl...)
				adv := m.End
				if m.End == m.Begin {
					if pos+m.Begin < len(subject) {
						out = append(out, subject[pos+m.Begin])
					}
					adv++
				}
				pos += adv
				if !all {
					break
				}
			}
			if pos <= len(subject) {
				out = append(out, subject[pos:]...)
			}
			o, _, err := t.AllocString(string(out))
			if err != nil {
				return object.Nil, err
			}
			return object.RefVal(o), nil
		}
	}
	machine.DefineNative(strC, "sub", 2, false, replaceFn(false))
	machine.DefineNative(strC, "gsub", 2, false, replaceFn(true))
}

// quoteLiteral escapes regexp metacharacters so a plain string pattern
// matches literally (Regexp.escape semantics).
func quoteLiteral(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.', '*', '+', '?', '(', ')', '[', ']', '^', '$', '|', '\\':
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
