// Package rbregexp is a small backtracking regular-expression engine
// exposed to the interpreter as a native extension, standing in for
// CRuby's Oniguruma. Like the real library it contains no yield points, so
// under HTM an entire match executes inside one transaction; its reads of
// the subject string's shadow storage contribute the footprint that made
// regexp matching a leading source of overflow aborts in WEBrick and Rails
// (Section 5.6).
//
// Supported syntax: literals, '.', character classes [abc], [a-z], [^...],
// escapes \d \w \s \D \W \S and escaped metacharacters, groups (...),
// alternation |, quantifiers * + ? applied to the preceding atom, and the
// anchors ^ and $.
package rbregexp

import (
	"fmt"
)

// node kinds
type nkind uint8

const (
	nChar nkind = iota
	nAny
	nClass
	nGroup
	nStar
	nPlus
	nOpt
	nAlt
	nSeq
	nBegin
	nEnd
)

type node struct {
	kind nkind
	ch   byte
	set  *classSet
	subs []*node
	grp  int // capture index for nGroup, -1 for non-capturing internals
}

type classSet struct {
	neg    bool
	ranges [][2]byte
}

func (c *classSet) match(b byte) bool {
	in := false
	for _, r := range c.ranges {
		if b >= r[0] && b <= r[1] {
			in = true
			break
		}
	}
	if c.neg {
		return !in
	}
	return in
}

// Regexp is a compiled pattern.
type Regexp struct {
	Source string
	root   *node
	groups int
}

// Compile parses a pattern.
func Compile(pattern string) (*Regexp, error) {
	p := &parser{src: pattern}
	root, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rbregexp: unexpected %q at %d", p.src[p.pos], p.pos)
	}
	return &Regexp{Source: pattern, root: root, groups: p.groups}, nil
}

// MustCompile panics on bad patterns (test helper).
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

type parser struct {
	src    string
	pos    int
	groups int
}

func (p *parser) parseAlt() (*node, error) {
	left, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		right, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		left = &node{kind: nAlt, subs: []*node{left, right}}
	}
	return left, nil
}

func (p *parser) parseSeq() (*node, error) {
	seq := &node{kind: nSeq}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '|' || c == ')' {
			break
		}
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		// Quantifier?
		if p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '*':
				p.pos++
				atom = &node{kind: nStar, subs: []*node{atom}}
			case '+':
				p.pos++
				atom = &node{kind: nPlus, subs: []*node{atom}}
			case '?':
				p.pos++
				atom = &node{kind: nOpt, subs: []*node{atom}}
			}
		}
		seq.subs = append(seq.subs, atom)
	}
	return seq, nil
}

func (p *parser) parseAtom() (*node, error) {
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		p.groups++
		idx := p.groups
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("rbregexp: unclosed group")
		}
		p.pos++
		return &node{kind: nGroup, subs: []*node{inner}, grp: idx}, nil
	case '.':
		p.pos++
		return &node{kind: nAny}, nil
	case '^':
		p.pos++
		return &node{kind: nBegin}, nil
	case '$':
		p.pos++
		return &node{kind: nEnd}, nil
	case '[':
		return p.parseClass()
	case '\\':
		p.pos++
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("rbregexp: trailing backslash")
		}
		e := p.src[p.pos]
		p.pos++
		if set := escapeClass(e); set != nil {
			return &node{kind: nClass, set: set}, nil
		}
		switch e {
		case 'n':
			return &node{kind: nChar, ch: '\n'}, nil
		case 't':
			return &node{kind: nChar, ch: '\t'}, nil
		case 'r':
			return &node{kind: nChar, ch: '\r'}, nil
		}
		return &node{kind: nChar, ch: e}, nil
	case '*', '+', '?', ')':
		return nil, fmt.Errorf("rbregexp: misplaced %q", c)
	default:
		p.pos++
		return &node{kind: nChar, ch: c}, nil
	}
}

func escapeClass(e byte) *classSet {
	switch e {
	case 'd':
		return &classSet{ranges: [][2]byte{{'0', '9'}}}
	case 'D':
		return &classSet{neg: true, ranges: [][2]byte{{'0', '9'}}}
	case 'w':
		return &classSet{ranges: [][2]byte{{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}}
	case 'W':
		return &classSet{neg: true, ranges: [][2]byte{{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}}
	case 's':
		return &classSet{ranges: [][2]byte{{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}}}
	case 'S':
		return &classSet{neg: true, ranges: [][2]byte{{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}}}
	}
	return nil
}

func (p *parser) parseClass() (*node, error) {
	p.pos++ // [
	set := &classSet{}
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		set.neg = true
		p.pos++
	}
	for {
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("rbregexp: unclosed class")
		}
		c := p.src[p.pos]
		if c == ']' {
			p.pos++
			return &node{kind: nClass, set: set}, nil
		}
		if c == '\\' && p.pos+1 < len(p.src) {
			p.pos++
			e := p.src[p.pos]
			p.pos++
			if sub := escapeClass(e); sub != nil {
				set.ranges = append(set.ranges, sub.ranges...)
				continue
			}
			set.ranges = append(set.ranges, [2]byte{e, e})
			continue
		}
		p.pos++
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			hi := p.src[p.pos+1]
			p.pos += 2
			set.ranges = append(set.ranges, [2]byte{c, hi})
		} else {
			set.ranges = append(set.ranges, [2]byte{c, c})
		}
	}
}

// MatchResult reports a successful match.
type MatchResult struct {
	Begin, End int
	Groups     [][2]int // capture spans, -1,-1 when unset
	Steps      int      // backtracking steps taken (cost accounting)
}

// Match finds the leftmost match of re in subject, or a result with
// Begin == -1.
func (re *Regexp) Match(subject string) *MatchResult {
	m := &matcher{re: re, subject: subject}
	for start := 0; start <= len(subject); start++ {
		m.groups = make([][2]int, re.groups+1)
		for i := range m.groups {
			m.groups[i] = [2]int{-1, -1}
		}
		matchEnd := -1
		if m.match(re.root, start, func(end int) bool {
			matchEnd = end
			return true
		}) {
			m.groups[0] = [2]int{start, matchEnd}
			return &MatchResult{Begin: start, End: matchEnd, Groups: m.groups, Steps: m.steps}
		}
		if len(re.Source) > 0 && re.Source[0] == '^' {
			break
		}
	}
	return &MatchResult{Begin: -1, End: -1, Steps: m.steps, Groups: nil}
}

type matcher struct {
	re      *Regexp
	subject string
	groups  [][2]int
	steps   int
}

// match runs node n at pos and calls cont with each candidate end position
// (continuation-passing style gives full backtracking through groups and
// alternations).
func (m *matcher) match(n *node, pos int, cont func(int) bool) bool {
	m.steps++
	switch n.kind {
	case nChar:
		return pos < len(m.subject) && m.subject[pos] == n.ch && cont(pos+1)
	case nAny:
		return pos < len(m.subject) && m.subject[pos] != '\n' && cont(pos+1)
	case nClass:
		return pos < len(m.subject) && n.set.match(m.subject[pos]) && cont(pos+1)
	case nBegin:
		return pos == 0 && cont(pos)
	case nEnd:
		return pos == len(m.subject) && cont(pos)
	case nGroup:
		saved := m.groups[n.grp]
		ok := m.match(n.subs[0], pos, func(end int) bool {
			m.groups[n.grp] = [2]int{pos, end}
			if cont(end) {
				return true
			}
			m.groups[n.grp] = saved
			return false
		})
		return ok
	case nAlt:
		if m.match(n.subs[0], pos, cont) {
			return true
		}
		return m.match(n.subs[1], pos, cont)
	case nSeq:
		var seq func(i, p int) bool
		seq = func(i, p int) bool {
			if i == len(n.subs) {
				return cont(p)
			}
			return m.match(n.subs[i], p, func(end int) bool {
				return seq(i+1, end)
			})
		}
		return seq(0, pos)
	case nStar:
		return m.repeat(n.subs[0], pos, 0, cont)
	case nPlus:
		return m.repeat(n.subs[0], pos, 1, cont)
	case nOpt:
		if m.match(n.subs[0], pos, cont) {
			return true
		}
		return cont(pos)
	}
	return false
}

// repeat matches sub greedily at least min times, backtracking shorter.
func (m *matcher) repeat(sub *node, pos, min int, cont func(int) bool) bool {
	// Collect greedy end positions first.
	ends := []int{pos}
	cur := pos
	for {
		matchedFurther := false
		m.match(sub, cur, func(end int) bool {
			if end > cur {
				cur = end
				matchedFurther = true
			}
			return true // take the first (greedy enough for our atoms)
		})
		if !matchedFurther {
			break
		}
		ends = append(ends, cur)
	}
	for k := len(ends) - 1; k >= min; k-- {
		if cont(ends[k]) {
			return true
		}
	}
	return false
}

// GroupString extracts a capture from the subject.
func (r *MatchResult) GroupString(subject string, i int) (string, bool) {
	if r.Begin < 0 || i >= len(r.Groups) || r.Groups[i][0] < 0 {
		return "", false
	}
	return subject[r.Groups[i][0]:r.Groups[i][1]], true
}

// Matched reports whether the match succeeded.
func (r *MatchResult) Matched() bool { return r.Begin >= 0 }
