//go:build mutation

package occ

// Seeded bug used to validate the schedule explorer (internal/explore);
// see mutation_off.go. Under the mutation build tag it is a variable the
// validation tests flip.
var (
	// MutSkipLastRead makes read-set validation skip the last read-log
	// entry, so a transaction whose most recently first-read location went
	// stale still commits — a lost update the explorer must catch.
	MutSkipLastRead = false
)
