// Package occ implements the software-transaction tier of the hybrid TM
// system: optimistic concurrency control with per-thread read/write logs
// over internal/simmem and commit-time validation.
//
// When hardware elision keeps failing at a site (capacity overflow, the
// learning model, retry exhaustion), the paper's runtime falls back to the
// GIL and serializes every concurrent thread. The OCC tier is a middle
// ground: the fallback thread keeps running optimistically, buffering its
// writes and logging the values it read, and publishes atomically at the
// yield point only if every logged read still holds its logged value.
//
// The design is NOrec-flavored (Dalessandro et al.), adapted to the
// deterministic single-stepped simulator:
//
//   - Reads are value-logged, not line-registered: an OCC transaction is
//     invisible to the coherence machinery, so it never dooms an HTM
//     transaction by merely reading (its Loads still doom a dirty HTM
//     *writer*, matching the strong isolation every real STM sees from
//     hardware transactions).
//   - A global memory version (simmem.Memory.Version) gates revalidation:
//     whenever the version moved since the snapshot was last validated, the
//     whole read log is re-checked before the next value is consumed.
//     Zombie transactions — continuing on an inconsistent snapshot after a
//     concurrent commit — are therefore killed at their next read, before
//     the inconsistency can reach the interpreter.
//   - Commit re-validates (if the version moved), then publishes the write
//     buffer with direct Stores inside one scheduler step. Publication is
//     atomic by construction — the simulator is single-threaded — and each
//     Store dooms conflicting HTM readers/writers exactly like any
//     non-transactional write (strong isolation, requester wins).
//   - Before publishing its data writes, a committing transaction bumps a
//     dedicated sequence word. Hardware transactions subscribe to it at
//     begin time (unless the profile opts into Dice-style sandboxing, see
//     htm.Profile.OCCSandbox), modelling conservative hardware that aborts
//     all concurrent HTM on any software commit.
//   - While the GIL is held, OCC commits must not publish (the GIL holder
//     assumes exclusion). The elision layer refuses the commit (BlockCommit)
//     and the thread retries or falls back; reads during a GIL hold are
//     protected by the hazard window (Memory.HazardHit): a value written by
//     the lock holder mid-hold dooms the reader.
//
// Serializability argument: a committed OCC transaction's reads all held
// their logged values at the commit step (validation), its writes were
// published at that same step, and no other thread runs within a step — so
// the whole transaction is equivalent to one executed entirely at the
// commit point. ABA reuse of a value between validation passes is benign
// for exactly the same reason: validation only asserts the *value* the
// transaction consumed is the value at its linearization point.
package occ

import (
	"errors"

	"htmgil/internal/simmem"
)

// ErrDoomed is the sentinel a Load panics with under Tx.PanicOnDoom when
// the transaction dooms mid-read: its logged reads and current memory no
// longer form one consistent snapshot, so no value can safely be returned.
// The interpreter recovers it at the instruction boundary and aborts.
var ErrDoomed = errors.New("occ: transaction doomed on inconsistent read")

// Deterministic cost model, in simulated cycles. The software tier pays
// bookkeeping on every access and validation work proportional to the read
// log — that is its handicap against raw HTM — but it has no capacity
// limits and survives interrupts, which is its advantage over the GIL
// fallback on overflow- and interrupt-heavy workloads.
const (
	// BeginCycles initializes the logs (cheaper than a GIL acquisition,
	// far cheaper than a zEC12 TBEGIN).
	BeginCycles = 40
	// ReadLogCycles is the bookkeeping per first read of a location.
	ReadLogCycles = 4
	// WriteLogCycles is the bookkeeping per first write of a location.
	WriteLogCycles = 6
	// ValidateEntryCycles is the cost per read-log entry per validation
	// pass (a Peek and a compare).
	ValidateEntryCycles = 3
	// PublishCycles is the cost per buffered write published at commit.
	PublishCycles = 10
	// CommitCycles is the fixed commit overhead (fence + sequence bump).
	CommitCycles = 30
	// AbortCycles is the fixed rollback penalty.
	AbortCycles = 150
)

// Stats counts software-transaction outcomes for per-tier attribution in
// vm.Stats, trace summaries and bench reports.
type Stats struct {
	Begins             uint64
	Commits            uint64
	Aborts             uint64
	Validations        uint64 // validation passes (incremental + commit)
	ValidationFailures uint64 // passes that found a stale read
	GILBlockedCommits  uint64 // commits refused because the GIL was held
	ByCause            map[simmem.AbortCause]uint64
}

// NewStats returns a zeroed Stats with its cause map allocated.
func NewStats() *Stats {
	return &Stats{ByCause: make(map[simmem.AbortCause]uint64)}
}

// Clone returns a deep copy (for snapshotting into vm.Stats at run end).
func (s *Stats) Clone() *Stats {
	c := *s
	c.ByCause = make(map[simmem.AbortCause]uint64, len(s.ByCause))
	for k, v := range s.ByCause {
		c.ByCause[k] = v
	}
	return &c
}

// Runtime is the per-VM state of the OCC tier: the memory it runs over,
// the sequence word hardware transactions subscribe to, and the shared
// statistics. Created by the VM only when the active policy uses the tier.
type Runtime struct {
	Mem     *simmem.Memory
	SeqAddr simmem.Addr
	Stats   *Stats
}

// NewRuntime reserves the sequence word and returns the tier runtime.
func NewRuntime(mem *simmem.Memory) *Runtime {
	return &Runtime{
		Mem:     mem,
		SeqAddr: mem.Reserve("occ-seq", simmem.WordBytes),
		Stats:   NewStats(),
	}
}

// NewTx returns a fresh software-transaction context for one thread.
func (rt *Runtime) NewTx(id int) *Tx {
	return &Tx{
		rt:       rt,
		id:       id,
		readIdx:  make(map[simmem.Addr]int),
		writeBuf: make(map[simmem.Addr]simmem.Word),
	}
}

type readEntry struct {
	addr simmem.Addr
	val  simmem.Word
}

// Tx is one thread's software-transaction context. It implements the same
// Load/Store accessor shape as simmem.Tx, so the interpreter runs over it
// unchanged (heap.Accessor).
type Tx struct {
	rt *Runtime
	id int

	// PanicOnDoom makes a Load that dooms the transaction (validation
	// failure or hazard hit) panic with ErrDoomed instead of returning a
	// value. After such a doom the transaction's logged reads and current
	// memory no longer form one consistent snapshot, so letting the caller
	// continue — even for a single interpreter instruction — can feed host
	// code impossible states (a torn free-list pointer, a half-updated
	// collection). The interpreter recovers the sentinel at its dispatch
	// boundary and aborts; direct users (tests, the core rig) that check
	// Doomed() after every access leave it off.
	PanicOnDoom bool

	active     bool
	doomed     bool
	doomCause  simmem.AbortCause
	gilBlocked bool

	reads    []readEntry
	readIdx  map[simmem.Addr]int // addr -> index into reads
	writeOrd []simmem.Addr       // first-write order, for deterministic publication
	writeBuf map[simmem.Addr]simmem.Word

	// validatedAt is the memory version the read log was last validated
	// against (or the begin-time version while the log is empty).
	validatedAt uint64

	// overhead accumulates per-access bookkeeping cycles; charged at the
	// commit/abort boundary so the accessor interface can stay cost-free.
	overhead int64
}

// ID returns the owning thread's transactional context id.
func (t *Tx) ID() int { return t.id }

// Active reports whether a software transaction is running in this context.
func (t *Tx) Active() bool { return t.active }

// Doomed reports whether the running transaction has failed validation (or
// was self-doomed) and must abort at its next boundary.
func (t *Tx) Doomed() bool { return t.doomed }

// DoomCause returns the cause recorded when the transaction was doomed.
func (t *Tx) DoomCause() simmem.AbortCause { return t.doomCause }

// GILBlocked reports whether the doom came from a commit refused under a
// held GIL (the retry should wait for the lock to clear, not back off).
func (t *Tx) GILBlocked() bool { return t.gilBlocked }

// ReadLogLen returns the current read-log length in entries.
func (t *Tx) ReadLogLen() int { return len(t.reads) }

// WriteLogLen returns the current write-buffer size in entries.
func (t *Tx) WriteLogLen() int { return len(t.writeOrd) }

// Begin starts a software transaction and returns its fixed startup cost.
func (t *Tx) Begin() int64 {
	if t.active {
		panic("occ: nested Tx.Begin")
	}
	t.active = true
	t.validatedAt = t.rt.Mem.Version()
	t.rt.Stats.Begins++
	return BeginCycles
}

// SelfDoom dooms the running transaction from software (restricted
// operation, explicit abort).
func (t *Tx) SelfDoom(cause simmem.AbortCause) {
	if !t.active || t.doomed {
		return
	}
	t.doomed = true
	t.doomCause = cause
}

// doomConflict marks the transaction conflict-doomed (stale read, hazard
// hit, or GIL-blocked commit).
func (t *Tx) doomConflict() {
	t.doomed = true
	t.doomCause = simmem.CauseConflict
}

// panicDoomed raises the doom sentinel when PanicOnDoom is armed; see the
// field's comment. Called only on Load paths that would otherwise hand an
// inconsistent value to the caller.
func (t *Tx) panicDoomed() {
	if t.PanicOnDoom {
		panic(ErrDoomed)
	}
}

// revalidate re-checks the whole read log against current memory and
// advances validatedAt on success. It must be called only when the global
// version moved. Returns false (and dooms the transaction) on a stale read.
func (t *Tx) revalidate(v uint64) bool {
	t.rt.Stats.Validations++
	t.overhead += int64(len(t.reads)) * ValidateEntryCycles
	if !t.validate() {
		t.doomConflict()
		t.rt.Stats.ValidationFailures++
		return false
	}
	t.validatedAt = v
	return true
}

// validate compares every read-log entry against current memory contents.
func (t *Tx) validate() bool {
	n := len(t.reads)
	if MutSkipLastRead && n > 0 {
		// Seeded bug (mutation builds only): the most recently first-read
		// location escapes validation, admitting lost updates. The explorer
		// must catch this as a serializability violation.
		n--
	}
	for i := 0; i < n; i++ {
		e := &t.reads[i]
		w := t.rt.Mem.Peek(e.addr)
		if w.Bits != e.val.Bits || w.Ref != e.val.Ref {
			return false
		}
	}
	return true
}

// Load performs a software-transactional read. Buffered writes are read
// back directly (read-own-writes); other reads revalidate the log if the
// global version moved, refuse hazard-window lines (a GIL holder's
// intermediate state), and are value-logged on first touch.
func (t *Tx) Load(addr simmem.Addr) simmem.Word {
	if !t.active {
		panic("occ: Load without active transaction")
	}
	if w, ok := t.writeBuf[addr]; ok {
		return w
	}
	m := t.rt.Mem
	if t.doomed {
		// Zombie read: side-effect-free, the value is never committed.
		t.panicDoomed()
		return m.Peek(addr)
	}
	if v := m.Version(); v != t.validatedAt && !t.revalidate(v) {
		t.panicDoomed()
		return m.Peek(addr)
	}
	if m.HazardHit(addr) {
		t.doomConflict()
		t.panicDoomed()
		return m.Peek(addr)
	}
	// A direct load: dooms a dirty HTM writer of the line (strong
	// isolation, requester wins), exactly like a plain memory access.
	w := m.Load(addr)
	if _, ok := t.readIdx[addr]; !ok {
		t.readIdx[addr] = len(t.reads)
		t.reads = append(t.reads, readEntry{addr: addr, val: w})
		t.overhead += ReadLogCycles
	}
	return w
}

// Store buffers a software-transactional write. Nothing is visible to
// other threads until Commit publishes.
func (t *Tx) Store(addr simmem.Addr, w simmem.Word) {
	if !t.active {
		panic("occ: Store without active transaction")
	}
	if _, ok := t.writeBuf[addr]; !ok {
		t.writeOrd = append(t.writeOrd, addr)
		t.overhead += WriteLogCycles
	}
	t.writeBuf[addr] = w
}

// BlockCommit records that the commit point was reached while the GIL was
// held: publication would violate the lock holder's exclusion assumption,
// so the transaction is doomed and must retry once the lock is free.
func (t *Tx) BlockCommit() {
	if !t.active {
		panic("occ: BlockCommit without active transaction")
	}
	t.rt.Stats.GILBlockedCommits++
	if !t.doomed {
		t.doomConflict()
	}
	t.gilBlocked = true
}

// Commit validates the read log and atomically publishes the write buffer.
// It returns the cycles consumed (including the accumulated per-access
// overhead) and whether the commit succeeded; on failure the caller must
// complete the abort with Rollback.
func (t *Tx) Commit() (int64, bool) {
	if !t.active {
		panic("occ: Commit without active transaction")
	}
	cycles := t.overhead + CommitCycles
	t.overhead = 0
	if t.doomed {
		return cycles, false
	}
	if v := t.rt.Mem.Version(); v != t.validatedAt && !t.revalidate(v) {
		return cycles, false
	}
	if len(t.writeOrd) > 0 {
		m := t.rt.Mem
		// Bump the sequence word first: subscribed hardware transactions
		// abort before any data write becomes visible to them.
		seq := m.Peek(t.rt.SeqAddr)
		m.Store(t.rt.SeqAddr, simmem.Word{Bits: seq.Bits + 1})
		for _, a := range t.writeOrd {
			m.Store(a, t.writeBuf[a])
			cycles += PublishCycles
		}
	}
	t.rt.Stats.Commits++
	t.cleanup()
	return cycles, true
}

// Rollback discards the speculative state of a doomed (or abandoned)
// transaction and returns the abort cause plus the rollback penalty.
func (t *Tx) Rollback() (simmem.AbortCause, int64) {
	if !t.active {
		panic("occ: Rollback without active transaction")
	}
	cause := t.doomCause
	if cause == simmem.CauseNone {
		cause = simmem.CauseExplicit
	}
	t.rt.Stats.Aborts++
	t.rt.Stats.ByCause[cause]++
	cycles := t.overhead + AbortCycles
	t.cleanup()
	return cause, cycles
}

// cleanup resets the context to idle.
func (t *Tx) cleanup() {
	t.reads = t.reads[:0]
	clear(t.readIdx)
	t.writeOrd = t.writeOrd[:0]
	clear(t.writeBuf)
	t.active = false
	t.doomed = false
	t.doomCause = simmem.CauseNone
	t.gilBlocked = false
	t.overhead = 0
}
