//go:build !mutation

package occ

// In regular builds the seeded validation bug is a constant false, so the
// checks compile away entirely; see mutation.go.
const (
	MutSkipLastRead = false
)
