package occ

import (
	"testing"

	"htmgil/internal/simmem"
)

func newMem() *simmem.Memory {
	return simmem.NewMemory(simmem.Config{LineBytes: 64}, 4)
}

func TestCommitPublishesBufferedWrites(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)
	b := m.Reserve("b", 8)
	m.Poke(a, simmem.Word{Bits: 1})

	tx := rt.NewTx(0)
	tx.Begin()
	if got := tx.Load(a); got.Bits != 1 {
		t.Fatalf("Load(a) = %d, want 1", got.Bits)
	}
	tx.Store(b, simmem.Word{Bits: 7})
	if m.Peek(b).Bits != 0 {
		t.Fatal("Store published before commit")
	}
	if got := tx.Load(b); got.Bits != 7 {
		t.Fatalf("read-own-write = %d, want 7", got.Bits)
	}
	if _, ok := tx.Commit(); !ok {
		t.Fatal("unconflicted commit failed")
	}
	if m.Peek(b).Bits != 7 {
		t.Fatal("commit did not publish")
	}
	if rt.Stats.Commits != 1 || rt.Stats.Begins != 1 {
		t.Fatalf("stats = %+v", *rt.Stats)
	}
}

func TestCommitBumpsSequenceWord(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Store(a, simmem.Word{Bits: 1})
	tx.Commit()
	if m.Peek(rt.SeqAddr).Bits != 1 {
		t.Fatalf("seq = %d after writing commit, want 1", m.Peek(rt.SeqAddr).Bits)
	}

	// A read-only commit must not bump the sequence word.
	tx.Begin()
	tx.Load(a)
	if _, ok := tx.Commit(); !ok {
		t.Fatal("read-only commit failed")
	}
	if m.Peek(rt.SeqAddr).Bits != 1 {
		t.Fatalf("seq = %d after read-only commit, want 1", m.Peek(rt.SeqAddr).Bits)
	}
}

func TestStaleReadFailsCommitValidation(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Load(a)
	m.Store(a, simmem.Word{Bits: 99}) // concurrent writer invalidates the read
	if _, ok := tx.Commit(); ok {
		t.Fatal("commit succeeded over a stale read")
	}
	if rt.Stats.ValidationFailures != 1 {
		t.Fatalf("ValidationFailures = %d, want 1", rt.Stats.ValidationFailures)
	}
	cause, _ := tx.Rollback()
	if cause != simmem.CauseConflict {
		t.Fatalf("cause = %v, want conflict", cause)
	}
	if rt.Stats.Aborts != 1 || rt.Stats.ByCause[simmem.CauseConflict] != 1 {
		t.Fatalf("stats = %+v", *rt.Stats)
	}
}

func TestZombieKilledAtNextRead(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)
	b := m.Reserve("b", 8)
	m.Poke(a, simmem.Word{Bits: 1})
	m.Poke(b, simmem.Word{Bits: 1})

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Load(a)
	// Concurrent commit changes both locations; the transaction's snapshot
	// of a is now stale, so its next read must not observe the new b
	// alongside the old a.
	m.Store(a, simmem.Word{Bits: 2})
	m.Store(b, simmem.Word{Bits: 2})
	tx.Load(b)
	if !tx.Doomed() {
		t.Fatal("inconsistent snapshot not detected at next read")
	}
}

func TestVersionGatedRevalidationAllowsConsistentProgress(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)
	b := m.Reserve("b", 8)
	c := m.Reserve("c", 8)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Load(a)
	// A concurrent write to an unrelated location moves the version but
	// leaves the snapshot valid: revalidation passes, the tx lives on.
	m.Store(c, simmem.Word{Bits: 5})
	tx.Load(b)
	if tx.Doomed() {
		t.Fatal("doomed despite consistent snapshot")
	}
	if _, ok := tx.Commit(); !ok {
		t.Fatal("commit failed despite consistent snapshot")
	}
	if rt.Stats.Validations == 0 {
		t.Fatal("revalidation never ran")
	}
}

func TestHazardWindowDoomsReader(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	tx := rt.NewTx(0)
	tx.Begin()
	m.StartHazard()
	m.Store(a, simmem.Word{Bits: 3}) // lock holder's intermediate write
	tx.Load(a)
	if !tx.Doomed() {
		t.Fatal("hazard-window read did not doom the transaction")
	}
	m.EndHazard()
}

func TestLoadDoomsDirtyHTMWriter(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	htx := m.Tx(1)
	htx.Begin(64, 64)
	htx.Store(a, simmem.Word{Bits: 9})

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Load(a)
	if !htx.Doomed() {
		t.Fatal("OCC read did not doom the dirty hardware writer")
	}
	if tx.Doomed() {
		t.Fatal("requester must win the conflict")
	}
	htx.Rollback()
}

func TestCommitDoomsConflictingHTMReader(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	htx := m.Tx(1)
	htx.Begin(64, 64)
	htx.Load(a)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Store(a, simmem.Word{Bits: 4})
	if htx.Doomed() {
		t.Fatal("buffered OCC write must be invisible")
	}
	if _, ok := tx.Commit(); !ok {
		t.Fatal("commit failed")
	}
	if !htx.Doomed() {
		t.Fatal("publication did not doom the hardware reader")
	}
	htx.Rollback()
}

func TestBlockCommitDoomsAndRecordsGIL(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Store(a, simmem.Word{Bits: 1})
	tx.BlockCommit()
	if !tx.Doomed() || !tx.GILBlocked() {
		t.Fatal("BlockCommit must doom and flag the transaction")
	}
	if _, ok := tx.Commit(); ok {
		t.Fatal("blocked commit must fail")
	}
	if m.Peek(a).Bits != 0 {
		t.Fatal("blocked commit published")
	}
	if rt.Stats.GILBlockedCommits != 1 {
		t.Fatalf("GILBlockedCommits = %d, want 1", rt.Stats.GILBlockedCommits)
	}
	tx.Rollback()
	if tx.GILBlocked() {
		t.Fatal("rollback must clear the GIL-blocked flag")
	}
}

func TestSelfDoomRestricted(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.SelfDoom(simmem.CauseRestricted)
	if _, ok := tx.Commit(); ok {
		t.Fatal("self-doomed commit succeeded")
	}
	cause, _ := tx.Rollback()
	if cause != simmem.CauseRestricted {
		t.Fatalf("cause = %v, want restricted", cause)
	}
}

func TestAccessorsAndStatsClone(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)
	b := m.Reserve("b", 8)

	tx := rt.NewTx(3)
	if tx.ID() != 3 {
		t.Fatalf("ID = %d, want 3", tx.ID())
	}
	if tx.Active() {
		t.Fatal("active before Begin")
	}
	// SelfDoom outside a transaction is a no-op, not a panic.
	tx.SelfDoom(simmem.CauseRestricted)
	if tx.Doomed() {
		t.Fatal("SelfDoom doomed an inactive context")
	}

	tx.Begin()
	if !tx.Active() {
		t.Fatal("inactive after Begin")
	}
	tx.Store(a, simmem.Word{Bits: 1})
	tx.Store(a, simmem.Word{Bits: 2}) // rewrite: same entry
	tx.Store(b, simmem.Word{Bits: 3})
	if tx.WriteLogLen() != 2 {
		t.Fatalf("write log = %d entries, want 2", tx.WriteLogLen())
	}
	tx.SelfDoom(simmem.CauseInterrupt)
	tx.SelfDoom(simmem.CauseRestricted) // first cause sticks
	if tx.DoomCause() != simmem.CauseInterrupt {
		t.Fatalf("cause = %v, want interrupt", tx.DoomCause())
	}
	tx.Rollback()
	if tx.Active() {
		t.Fatal("active after Rollback")
	}

	clone := rt.Stats.Clone()
	if clone.Begins != rt.Stats.Begins || clone.Aborts != rt.Stats.Aborts {
		t.Fatalf("clone = %+v, want %+v", *clone, *rt.Stats)
	}
	clone.ByCause[simmem.CauseConflict] += 10
	if rt.Stats.ByCause[simmem.CauseConflict] == clone.ByCause[simmem.CauseConflict] {
		t.Fatal("Clone shares the cause map")
	}
}

func TestPanicOnDoomRaisesSentinel(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)
	b := m.Reserve("b", 8)

	tx := rt.NewTx(0)
	tx.PanicOnDoom = true
	tx.Begin()
	tx.Load(a)
	// A concurrent commit makes the snapshot stale: the next read must
	// raise the sentinel instead of returning a value.
	m.Store(a, simmem.Word{Bits: 2})
	m.Store(b, simmem.Word{Bits: 2})
	func() {
		defer func() {
			if r := recover(); r != ErrDoomed {
				t.Fatalf("recover = %v, want ErrDoomed", r)
			}
		}()
		tx.Load(b)
		t.Fatal("doomed Load returned instead of panicking")
	}()
	// Zombie reads after the doom raise it too.
	func() {
		defer func() {
			if r := recover(); r != ErrDoomed {
				t.Fatalf("zombie recover = %v, want ErrDoomed", r)
			}
		}()
		tx.Load(a)
		t.Fatal("zombie Load returned instead of panicking")
	}()
	tx.Rollback()
}

func TestReadLogDedup(t *testing.T) {
	m := newMem()
	rt := NewRuntime(m)
	a := m.Reserve("a", 8)

	tx := rt.NewTx(0)
	tx.Begin()
	tx.Load(a)
	tx.Load(a)
	tx.Load(a)
	if tx.ReadLogLen() != 1 {
		t.Fatalf("read log = %d entries, want 1", tx.ReadLogLen())
	}
	tx.Commit()
}
