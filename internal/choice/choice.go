// Package choice defines the pluggable nondeterminism interface used by the
// systematic schedule explorer (internal/explore). Every layer of the stack
// that makes a scheduling-relevant decision — thread dispatch in sched, timer
// firing, GIL yield and hand-off order in gil/vm, conflict-winner selection
// in simmem — consults a Chooser when one is installed, and falls back to its
// historical deterministic behavior (always index 0) otherwise.
//
// The package is a dependency leaf: sched, gil, simmem and vm all import it,
// so it must import nothing from this repository.
package choice

// Kind identifies one class of nondeterministic choice point.
type Kind uint8

// The choice points of the stack. At every point, index 0 is the decision
// the un-instrumented simulator would have made, so a Chooser that always
// returns 0 reproduces the vanilla schedule exactly.
const (
	// Dispatch picks which runnable thread executes the next step
	// (sched.Engine). n = number of runnable threads, ordered by the
	// engine's deterministic preference (effective start, own clock, ID).
	Dispatch Kind = iota
	// Timer decides whether a due timed event fires before the next thread
	// step (0) or is deferred past one step (1). n = 2.
	Timer
	// Yield decides whether a GIL-mode thread voluntarily yields the GIL at
	// an unflagged yield point (1) or keeps running (0), modelling a timer
	// interrupt landing at exactly that yield point. n = 2.
	Yield
	// Handoff picks which blocked waiter receives the GIL on release
	// (gil.Release). n = number of waiters; 0 is FIFO order.
	Handoff
	// Conflict picks the winner of a transactional conflict in simmem:
	// 0 dooms the current holder(s) (requester wins, the hardware's eager
	// policy), 1 dooms the requester. n = 2.
	Conflict
)

// String returns the schedule-file tag of the kind.
func (k Kind) String() string {
	switch k {
	case Dispatch:
		return "dispatch"
	case Timer:
		return "timer"
	case Yield:
		return "yield"
	case Handoff:
		return "handoff"
	case Conflict:
		return "conflict"
	}
	return "unknown"
}

// ParseKind is the inverse of String; ok is false for unknown tags.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "dispatch":
		return Dispatch, true
	case "timer":
		return Timer, true
	case "yield":
		return Yield, true
	case "handoff":
		return Handoff, true
	case "conflict":
		return Conflict, true
	}
	return 0, false
}

// Chooser resolves one nondeterministic choice point. n is the number of
// alternatives (always >= 2 when consulted); the return value must be in
// [0, n). Implementations must be deterministic functions of the choice
// sequence so far — the explorer both records and replays through this
// interface.
type Chooser interface {
	Choose(kind Kind, n int) int
}
