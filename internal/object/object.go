// Package object defines the mini-Ruby value model used by the interpreter:
// immediate values (nil, booleans, Fixnums, Symbols) and heap objects
// (RVALUE-style 40-byte slots in simulated memory), classes with method and
// instance-variable tables, and the one-entry inline caches whose behaviour
// under HTM the paper analyses.
//
// Mutable state that Ruby threads share — instance variables, array and
// hash contents, boxed float payloads, class variables — lives in simulated
// memory, so the HTM substrate observes genuine conflicts and footprints
// and rolls the state back on aborts. Immutable payloads (string contents,
// class metadata) live on the Go side for speed, with shadow footprint
// writes where their size matters to transactional capacity.
package object

import (
	"fmt"

	"htmgil/internal/simmem"
)

// Kind discriminates Value.
type Kind uint8

// Value kinds. Ref marks heap values (everything that is not an immediate).
const (
	KNil Kind = iota
	KFalse
	KTrue
	KFixnum
	KSymbol
	KRef
)

// SymID identifies an interned symbol.
type SymID uint32

// Value is a mini-Ruby value: an immediate or a heap reference. Fixnums are
// immediates as in CRuby; Floats are heap-allocated (CRuby 1.9 semantics),
// which is what makes numeric code allocation-intensive under the paper's
// workloads.
type Value struct {
	Kind Kind
	Fix  int64 // Fixnum value or SymID
	Ref  *RObject
}

// Common immediates.
var (
	Nil   = Value{Kind: KNil}
	False = Value{Kind: KFalse}
	True  = Value{Kind: KTrue}
)

// FixVal makes a Fixnum value.
func FixVal(i int64) Value { return Value{Kind: KFixnum, Fix: i} }

// SymVal makes a Symbol value.
func SymVal(id SymID) Value { return Value{Kind: KSymbol, Fix: int64(id)} }

// BoolVal converts a Go bool.
func BoolVal(b bool) Value {
	if b {
		return True
	}
	return False
}

// RefVal makes a heap reference value.
func RefVal(o *RObject) Value { return Value{Kind: KRef, Ref: o} }

// Truthy implements Ruby truthiness: everything but nil and false.
func (v Value) Truthy() bool { return v.Kind != KNil && v.Kind != KFalse }

// IsNil reports whether the value is nil.
func (v Value) IsNil() bool { return v.Kind == KNil }

// Sym returns the symbol id of a Symbol value.
func (v Value) Sym() SymID { return SymID(v.Fix) }

// Word encodes a Value into one simulated-memory word: the kind in the low
// three bits, the immediate payload shifted above them (Fixnums are 61-bit
// in simulated memory, mirroring CRuby's tagged Fixnums), references in the
// word's Ref slot.
func (v Value) Word() simmem.Word {
	w := simmem.Word{Bits: uint64(v.Fix)<<3 | uint64(v.Kind)}
	if v.Kind == KRef {
		w.Ref = v.Ref
	}
	return w
}

// FromWord decodes a Value from a simulated-memory word.
func FromWord(w simmem.Word) Value {
	k := Kind(w.Bits & 7)
	v := Value{Kind: k, Fix: int64(w.Bits) >> 3}
	if k == KRef {
		if w.Ref != nil {
			v.Ref = w.Ref.(*RObject)
		} else {
			// A zeroed word decodes as nil; a KRef with no Ref would be
			// corruption.
			panic("object: KRef word without reference")
		}
	}
	return v
}

// RType is the heap-object type tag (CRuby's T_* constants).
type RType uint8

// Heap object types.
const (
	TFree RType = iota
	TFloat
	TString
	TArray
	THash
	TObject
	TClass
	TProc
	TRange
	TThread
	TMutex
	TCond
	TRegexp
	TSocket
	TServer
	TDB
	TDBResult
	// TEnv is an escaped local-variable environment: a heap object so that
	// blocks sharing a parent frame's locals share one rollback-aware,
	// garbage-collected buffer.
	TEnv
)

// Slot word offsets within an RVALUE (5 words = 40 bytes, as in CRuby 1.9).
const (
	SlotLink  = 0 // free-list next index when free
	SlotA     = 1 // payload word 1 (float bits, buffer base, range lo, ...)
	SlotB     = 2 // payload word 2 (length, range hi, ...)
	SlotC     = 3 // payload word 3 (capacity, ...)
	SlotAlloc = 4 // allocation flag: 1 while allocated (transactional)
	SlotWords = 5
)

// RVALUEBytes is the size of one heap slot.
const RVALUEBytes = SlotWords * simmem.WordBytes

// RObject is the Go-side shell of a heap object. Its identity is stable for
// the lifetime of one allocation (shells are recycled with their slots).
// Mutable shared payloads live at Slot in simulated memory; Str, Cls and
// Native hold immutable or runtime-private payloads.
type RObject struct {
	Type  RType
	Class *RClass
	Slot  simmem.Addr // base address of the RVALUE in simulated memory
	Index int32       // slot index in the heap

	Str    string // TString/TRegexp payload (immutable)
	Cls    *RClass
	Native any // runtime payloads: threads, mutexes, procs, sockets, ...
}

func (o *RObject) String() string {
	if o == nil {
		return "<nil object>"
	}
	return fmt.Sprintf("#<%s slot=%d>", o.Class.Name, o.Index)
}

// AddrOf returns the simulated address of one of the object's slot words.
func (o *RObject) AddrOf(word int) simmem.Addr {
	return o.Slot + simmem.Addr(word*simmem.WordBytes)
}

// RClass is a mini-Ruby class: a method table, an instance-variable layout
// shared by its instances, and class variables in simulated memory.
type RClass struct {
	Name    string
	Super   *RClass
	Methods map[SymID]*Method

	// IvarIdx maps instance-variable symbols to indices in instance ivar
	// buffers. IvarTableID identifies the layout: the paper's HTM-friendly
	// inline-cache guard compares ivar-table identity instead of class
	// identity, so subclasses sharing a layout do not miss.
	IvarIdx     map[SymID]int
	IvarTableID int32

	// CVarIdx maps class-variable symbols to indices in the class's cvar
	// buffer (CVarBase, in simulated memory).
	CVarIdx  map[SymID]int
	CVarBase simmem.Addr

	Obj *RObject // the class object, for constants referencing the class
}

// Lookup resolves a method along the superclass chain. It returns the
// method and the defining class's ivar-table id for cache guards.
func (c *RClass) Lookup(name SymID) *Method {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.Methods[name]; ok {
			return m
		}
	}
	return nil
}

// Define installs a method on the class.
func (c *RClass) Define(name SymID, m *Method) { c.Methods[name] = m }

// IvarIndex returns the buffer index of an instance variable, creating a
// new layout entry on first use (layout identity changes, as adding an
// ivar to a class does in CRuby).
func (c *RClass) IvarIndex(name SymID, create bool) (int, bool) {
	if i, ok := c.IvarIdx[name]; ok {
		return i, true
	}
	if !create {
		return 0, false
	}
	i := len(c.IvarIdx)
	c.IvarIdx[name] = i
	return i, true
}

// Method is one callable: bytecode (Code is a *compile.ISeq, kept as `any`
// to avoid a package cycle) or a native implementation (Native is a VM
// function, likewise `any`).
type Method struct {
	Name   SymID
	Arity  int // required positional parameters; -1 = variadic native
	Code   any
	Native any
}

// SymTable interns symbols.
type SymTable struct {
	ids   map[string]SymID
	names []string
}

// NewSymTable creates an empty symbol table.
func NewSymTable() *SymTable {
	return &SymTable{ids: make(map[string]SymID)}
}

// Intern returns the id of the symbol, creating it on first use.
func (s *SymTable) Intern(name string) SymID {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := SymID(len(s.names))
	s.ids[name] = id
	s.names = append(s.names, name)
	return id
}

// Name returns the string of a symbol id.
func (s *SymTable) Name(id SymID) string { return s.names[id] }

// Len returns the number of interned symbols.
func (s *SymTable) Len() int { return len(s.names) }
