package object

import (
	"testing"
	"testing/quick"
)

func TestValueEncodingRoundTrip(t *testing.T) {
	o := &RObject{Type: TString, Str: "hi"}
	cases := []Value{
		Nil, True, False,
		FixVal(0), FixVal(42), FixVal(-42), FixVal(1<<60 - 1), FixVal(-(1 << 60)),
		SymVal(7),
		RefVal(o),
	}
	for _, v := range cases {
		got := FromWord(v.Word())
		if got.Kind != v.Kind || got.Fix != v.Fix || got.Ref != v.Ref {
			t.Fatalf("round trip failed: %+v -> %+v", v, got)
		}
	}
}

func TestFixnumRoundTripProperty(t *testing.T) {
	f := func(i int64) bool {
		// 61-bit payload, as documented.
		i = i << 3 >> 3
		return FromWord(FixVal(i).Word()).Fix == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruthiness(t *testing.T) {
	if Nil.Truthy() || False.Truthy() {
		t.Fatalf("nil/false must be falsy")
	}
	if !True.Truthy() || !FixVal(0).Truthy() || !SymVal(0).Truthy() {
		t.Fatalf("true/0/:sym must be truthy")
	}
}

func TestZeroWordDecodesAsNil(t *testing.T) {
	v := FromWord(Nil.Word())
	if !v.IsNil() {
		t.Fatalf("zero word is not nil")
	}
}

func TestSymTable(t *testing.T) {
	st := NewSymTable()
	a := st.Intern("foo")
	b := st.Intern("bar")
	if a == b {
		t.Fatalf("distinct symbols collided")
	}
	if st.Intern("foo") != a {
		t.Fatalf("re-intern changed id")
	}
	if st.Name(a) != "foo" || st.Name(b) != "bar" {
		t.Fatalf("names wrong")
	}
	if st.Len() != 2 {
		t.Fatalf("len = %d", st.Len())
	}
}

func TestClassLookupChain(t *testing.T) {
	st := NewSymTable()
	base := &RClass{Name: "Base", Methods: map[SymID]*Method{}, IvarIdx: map[SymID]int{}}
	sub := &RClass{Name: "Sub", Super: base, Methods: map[SymID]*Method{}, IvarIdx: map[SymID]int{}}
	m := &Method{Name: st.Intern("foo")}
	base.Define(st.Intern("foo"), m)
	if sub.Lookup(st.Intern("foo")) != m {
		t.Fatalf("inherited lookup failed")
	}
	if sub.Lookup(st.Intern("missing")) != nil {
		t.Fatalf("missing method found")
	}
	override := &Method{Name: st.Intern("foo")}
	sub.Define(st.Intern("foo"), override)
	if sub.Lookup(st.Intern("foo")) != override {
		t.Fatalf("override not preferred")
	}
	if base.Lookup(st.Intern("foo")) != m {
		t.Fatalf("base polluted by override")
	}
}

func TestIvarIndexAssignment(t *testing.T) {
	st := NewSymTable()
	c := &RClass{Name: "C", Methods: map[SymID]*Method{}, IvarIdx: map[SymID]int{}}
	i1, _ := c.IvarIndex(st.Intern("@x"), true)
	i2, _ := c.IvarIndex(st.Intern("@y"), true)
	if i1 == i2 {
		t.Fatalf("ivar indices collided")
	}
	again, ok := c.IvarIndex(st.Intern("@x"), false)
	if !ok || again != i1 {
		t.Fatalf("ivar index unstable")
	}
	if _, ok := c.IvarIndex(st.Intern("@z"), false); ok {
		t.Fatalf("missing ivar resolved without create")
	}
}
