package htm

import (
	"testing"

	"htmgil/internal/simmem"
)

func TestProfiles(t *testing.T) {
	z, x := ZEC12(), XeonE3()
	if z.HWThreads() != 12 {
		t.Fatalf("zEC12 hw threads = %d", z.HWThreads())
	}
	if x.HWThreads() != 8 {
		t.Fatalf("Xeon hw threads = %d", x.HWThreads())
	}
	if z.LineBytes != 256 || x.LineBytes != 64 {
		t.Fatalf("line sizes wrong")
	}
	if z.Learning || !x.Learning {
		t.Fatalf("learning flags wrong")
	}
	if z.WriteCapBytes/z.LineBytes != 32 {
		t.Fatalf("zEC12 write capacity = %d lines, want 32", z.WriteCapBytes/z.LineBytes)
	}
}

func TestBeginCommitStats(t *testing.T) {
	prof := ZEC12()
	prof.InterruptMeanCycles = 0 // no external interrupts in unit tests
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 2)
	base := mem.Reserve("data", 4096)
	c := NewContext(prof, mem, 0, 1)
	cost := c.Begin(0)
	if cost != prof.TBeginCycles {
		t.Fatalf("begin cost = %d", cost)
	}
	c.Tx.Store(base, simmem.Word{Bits: 1})
	endCost, ok := c.End(10)
	if !ok || endCost != prof.TEndCycles {
		t.Fatalf("end = %d, %v", endCost, ok)
	}
	if c.Stats.Begins != 1 || c.Stats.Commits != 1 || c.Stats.Aborts != 0 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if mem.Peek(base).Bits != 1 {
		t.Fatalf("commit lost")
	}
}

func TestCapacityHalvedWhenSiblingBusy(t *testing.T) {
	prof := XeonE3()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 2)
	busy := false
	c := NewContext(prof, mem, 0, 1)
	c.SiblingBusy = func() bool { return busy }
	c.Begin(0)
	full := c.Tx.WriteCapacity
	c.Tx.Rollback()
	c.Stats = NewStats()
	busy = true
	c.Begin(0)
	if c.Tx.WriteCapacity != full/2 {
		t.Fatalf("capacity with busy sibling = %d, want %d", c.Tx.WriteCapacity, full/2)
	}
	c.Tx.Rollback()
}

func TestAbortStatsAndRegionAttribution(t *testing.T) {
	prof := ZEC12()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 2)
	freelist := mem.Reserve("freelist", 4096)
	a := NewContext(prof, mem, 0, 1)
	b := NewContext(prof, mem, 1, 2)
	a.Begin(0)
	b.Begin(0)
	a.Tx.Load(freelist)
	b.Tx.Store(freelist, simmem.Word{Bits: 1}) // dooms a
	if _, ok := a.End(5); ok {
		t.Fatalf("doomed context committed")
	}
	cause, pen := a.Abort()
	if cause != simmem.CauseConflict || pen != prof.AbortCycles {
		t.Fatalf("abort = %v, %d", cause, pen)
	}
	if a.Stats.ByRegion["freelist"] != 1 {
		t.Fatalf("conflict region not attributed: %v", a.Stats.ByRegion)
	}
	b.End(5)
}

func TestExternalInterruptDooms(t *testing.T) {
	prof := ZEC12()
	prof.InterruptMeanCycles = 100 // very frequent
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 1)
	c := NewContext(prof, mem, 0, 7)
	c.Begin(0)
	if !c.Doomed(1 << 40) { // far future: interrupt certainly pending
		t.Fatalf("interrupt did not doom transaction")
	}
	cause, _ := c.Abort()
	if cause != simmem.CauseInterrupt {
		t.Fatalf("cause = %v", cause)
	}
}

// TestLearningModelRecoversGradually reproduces the qualitative shape of
// Figure 6(a): after thousands of overflowing transactions, shrinking the
// write set below capacity does not restore the success ratio immediately;
// it recovers over thousands of executions.
func TestLearningModelRecoversGradually(t *testing.T) {
	prof := XeonE3()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 1)
	base := mem.Reserve("data", 1<<21)
	c := NewContext(prof, mem, 0, 42)

	capLines := prof.WriteCapBytes / prof.LineBytes
	runBatch := func(lines, iters int) (successes int) {
		for i := 0; i < iters; i++ {
			c.Begin(0)
			for l := 0; l < lines && !c.Tx.Doomed(); l++ {
				c.Tx.Store(base+simmem.Addr(l*prof.LineBytes), simmem.Word{Bits: 1})
			}
			if _, ok := c.End(0); ok {
				successes++
			} else {
				c.Abort()
			}
		}
		return successes
	}

	// Phase 1: oversized write sets always overflow and build suspicion.
	if s := runBatch(capLines+10, 3000); s != 0 {
		t.Fatalf("overflowing transactions succeeded: %d", s)
	}
	if c.Suspicion() < 0.9 {
		t.Fatalf("suspicion after overflow phase = %f", c.Suspicion())
	}
	// Phase 2: shrink well below capacity; early success ratio must be low.
	early := runBatch(capLines/4, 200)
	if float64(early)/200 > 0.5 {
		t.Fatalf("success ratio recovered immediately: %d/200", early)
	}
	// Phase 3: after thousands more, the ratio must be high again.
	runBatch(capLines/4, 6000)
	late := runBatch(capLines/4, 500)
	if float64(late)/500 < 0.9 {
		t.Fatalf("success ratio never recovered: %d/500", late)
	}
}

func TestNoLearningOnZEC12(t *testing.T) {
	prof := ZEC12()
	prof.InterruptMeanCycles = 0
	mem := simmem.NewMemory(simmem.Config{LineBytes: prof.LineBytes}, 1)
	base := mem.Reserve("data", 1<<21)
	c := NewContext(prof, mem, 0, 42)
	capLines := prof.WriteCapBytes / prof.LineBytes
	// Overflow many times, then small transactions must succeed at once.
	for i := 0; i < 1000; i++ {
		c.Begin(0)
		for l := 0; l <= capLines && !c.Tx.Doomed(); l++ {
			c.Tx.Store(base+simmem.Addr(l*prof.LineBytes), simmem.Word{Bits: 1})
		}
		if _, ok := c.End(0); !ok {
			c.Abort()
		}
	}
	ok := 0
	for i := 0; i < 100; i++ {
		c.Begin(0)
		c.Tx.Store(base, simmem.Word{Bits: 1})
		if _, good := c.End(0); good {
			ok++
		} else {
			c.Abort()
		}
	}
	if ok != 100 {
		t.Fatalf("zEC12 recovered only %d/100 without learning model", ok)
	}
}

func TestStatsAdd(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Begins, a.Aborts = 10, 2
	b.Begins, b.Commits = 5, 5
	b.ByCause[simmem.CauseConflict] = 2
	a.Add(b)
	if a.Begins != 15 || a.Commits != 5 || a.ByCause[simmem.CauseConflict] != 2 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if r := a.AbortRatio(); r != 2.0/15.0 {
		t.Fatalf("abort ratio = %f", r)
	}
	if (NewStats()).AbortRatio() != 0 {
		t.Fatalf("empty abort ratio != 0")
	}
}
