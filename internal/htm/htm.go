// Package htm models the hardware-transactional-memory facilities of the
// two machines evaluated in the paper: the IBM zEnterprise EC12 and the
// Intel 4th Generation Core (Xeon E3-1275 v3, "Haswell").
//
// A Context wraps one simmem transactional context and adds what the ISA
// and micro-architecture add on top of raw conflict detection: begin/end
// instruction overheads, capacity limits derived from the cache geometry
// (halved while an SMT sibling is busy), external interrupts, explicit
// aborts, and — on the Intel profile — the undocumented "learning"
// behaviour of Figure 6(a), where a context that recently suffered capacity
// overflows eagerly aborts transactions for thousands of executions even
// after the footprint has shrunk below the real capacity.
package htm

import (
	"fmt"
	"math/rand"

	"htmgil/internal/fault"
	"htmgil/internal/simmem"
	"htmgil/internal/trace"
)

// Profile describes one HTM implementation and the machine around it.
type Profile struct {
	Name      string
	Cores     int // physical cores
	SMTWays   int // hardware threads per core (1 on zEC12, 2 on Xeon)
	LineBytes int // cache-line size: 256 on zEC12, 64 on Xeon

	WriteCapBytes int // maximum write-set size (8 KB zEC12, ~19 KB Xeon)
	ReadCapBytes  int // maximum read-set size (~1 MB zEC12, ~6 MB Xeon)

	TBeginCycles int64 // cost of TBEGIN/XBEGIN plus surrounding checks
	TEndCycles   int64 // cost of TEND/XEND
	AbortCycles  int64 // pipeline penalty on abort, on top of wasted work

	// InterruptMeanCycles is the mean interval between external interrupts
	// delivered to a hardware thread; an interrupt dooms a running
	// transaction (transient cause). Zero disables interrupts.
	InterruptMeanCycles int64

	// Learning enables the Intel-style capacity predictor.
	Learning bool

	// OCCSandbox models hardware that sandboxes hardware transactions
	// against concurrent software-transaction commits (Dice et al.'s
	// hardened lazy subscription): when false (conservative default),
	// every hardware transaction subscribes to the OCC commit-sequence
	// word at begin time, so any software commit aborts all running
	// hardware transactions. When true the subscription is skipped and
	// only the per-line dooms of the published writes remain — cheaper,
	// and sound in this model because publication is line-precise.
	OCCSandbox bool

	// TargetAbortRatio is the paper's per-machine tuning input for the
	// dynamic transaction-length adjustment: 1% on zEC12, 6% on Xeon.
	TargetAbortRatio float64
	// ProfilingPeriod and AdjustmentThreshold encode the same ratio as the
	// paper's integer constants (3/300 and 18/300).
	ProfilingPeriod     int
	AdjustmentThreshold int
}

// HWThreads returns the total number of hardware threads of the machine.
func (p *Profile) HWThreads() int { return p.Cores * p.SMTWays }

// ZEC12 returns the IBM zEnterprise EC12 profile used in the paper: 12
// dedicated cores (one LPAR), 256-byte lines, an 8 KB gathering store cache
// bounding the write set and an L2-sized read set.
func ZEC12() *Profile {
	return &Profile{
		Name:                "zEC12",
		Cores:               12,
		SMTWays:             1,
		LineBytes:           256,
		WriteCapBytes:       8 << 10,
		ReadCapBytes:        1 << 20,
		TBeginCycles:        140,
		TEndCycles:          70,
		AbortCycles:         280,
		InterruptMeanCycles: 4_000_000,
		Learning:            false,
		TargetAbortRatio:    0.01,
		ProfilingPeriod:     300,
		AdjustmentThreshold: 3,
	}
}

// XeonE3 returns the Intel Xeon E3-1275 v3 profile: 4 cores with 2-way SMT,
// 64-byte lines, experimentally measured ~19 KB write-set and ~6 MB read-set
// capacities, and the learning abort predictor of Figure 6(a).
func XeonE3() *Profile {
	return &Profile{
		Name:                "XeonE3-1275v3",
		Cores:               4,
		SMTWays:             2,
		LineBytes:           64,
		WriteCapBytes:       19 << 10,
		ReadCapBytes:        6 << 20,
		TBeginCycles:        110,
		TEndCycles:          60,
		AbortCycles:         180,
		InterruptMeanCycles: 4_000_000,
		Learning:            true,
		TargetAbortRatio:    0.06,
		ProfilingPeriod:     300,
		AdjustmentThreshold: 18,
	}
}

// Explore returns the machine profile used by the systematic schedule
// explorer (internal/explore): a small SMT-less machine with no random
// external interrupts and no learning predictor, so that every remaining
// source of nondeterminism is a choice point under the explorer's control.
// Capacities are kept generous — the explorer's programs are tiny and
// capacity aborts are not among the behaviors it enumerates.
func Explore() *Profile {
	return &Profile{
		Name:                "explore",
		Cores:               4,
		SMTWays:             1,
		LineBytes:           64,
		WriteCapBytes:       8 << 10,
		ReadCapBytes:        1 << 20,
		TBeginCycles:        140,
		TEndCycles:          70,
		AbortCycles:         280,
		InterruptMeanCycles: 0,
		Learning:            false,
		TargetAbortRatio:    0.01,
		ProfilingPeriod:     300,
		AdjustmentThreshold: 3,
	}
}

// Server returns a scaled-out serving-machine profile for the open-loop
// experiments: cores SMT-less cores with Haswell-like cache geometry,
// capacities and instruction costs, and no learning predictor. It is not
// either machine the paper measured — it extrapolates the paper's HTM
// parameters to the large server parts the serving scenario targets
// (64–256 cores), so dispatch and contention at scale can be studied with
// per-core behavior held at published values.
func Server(cores int) *Profile {
	return &Profile{
		Name:                fmt.Sprintf("server-%dc", cores),
		Cores:               cores,
		SMTWays:             1,
		LineBytes:           64,
		WriteCapBytes:       19 << 10,
		ReadCapBytes:        6 << 20,
		TBeginCycles:        110,
		TEndCycles:          60,
		AbortCycles:         180,
		InterruptMeanCycles: 4_000_000,
		Learning:            false,
		TargetAbortRatio:    0.06,
		ProfilingPeriod:     300,
		AdjustmentThreshold: 18,
	}
}

// DatastoreNode returns the profile of the datastore experiments: a 32-core
// SMT-less machine with zEC12-like mainframe HTM (256-byte lines, 8 KB
// gathering store cache bounding the write set) but read tracking limited to
// the 96 KB L1 data cache rather than zEC12's L2-backed megabyte. Limited
// read-set tracking is the common case across shipped and proposed HTMs
// (POWER8's 8 KB TM CAM; FORTH's limited read/write-set designs), and it is
// what makes multi-hundred-row scans overflow capacity — the regime the
// paper saw dominate its SQLite extension, where 87% of Rails aborts were
// footprint overflow inside the native store.
func DatastoreNode() *Profile {
	return &Profile{
		Name:                "datastore-32c",
		Cores:               32,
		SMTWays:             1,
		LineBytes:           256,
		WriteCapBytes:       8 << 10,
		ReadCapBytes:        96 << 10,
		TBeginCycles:        140,
		TEndCycles:          70,
		AbortCycles:         280,
		InterruptMeanCycles: 4_000_000,
		Learning:            false,
		TargetAbortRatio:    0.01,
		ProfilingPeriod:     300,
		AdjustmentThreshold: 3,
	}
}

// Stats aggregates per-context transaction outcomes.
type Stats struct {
	Begins   uint64
	Commits  uint64
	Aborts   uint64
	ByCause  map[simmem.AbortCause]uint64
	ByRegion map[string]uint64 // doom-address region of conflict aborts
}

// NewStats returns an empty Stats.
func NewStats() *Stats {
	return &Stats{
		ByCause:  make(map[simmem.AbortCause]uint64),
		ByRegion: make(map[string]uint64),
	}
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Begins += other.Begins
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	for c, n := range other.ByCause {
		s.ByCause[c] += n
	}
	for r, n := range other.ByRegion {
		s.ByRegion[r] += n
	}
}

// AbortRatio returns aborts / begins, or 0 when no transaction began.
func (s *Stats) AbortRatio() float64 {
	if s.Begins == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Begins)
}

// Learning-model constants (calibrated against Figure 6a: recovery to a
// steady state takes on the order of 5,000 transactions).
const (
	learnOverflowBoost = 0.03   // suspicion += boost*(1-suspicion) per overflow
	learnEagerDecay    = 2500.0 // suspicion *= 1-1/decay per eager abort
	learnSuccessDecay  = 400.0  // suspicion *= 1-1/decay per commit
	learnMax           = 0.985
)

// Context is one hardware thread's transactional execution facility.
type Context struct {
	Prof *Profile
	Tx   *simmem.Tx
	Mem  *simmem.Memory

	// SiblingBusy reports whether the SMT sibling hardware thread is
	// currently executing; capacity is halved while it is. Nil means no SMT.
	SiblingBusy func() bool

	Stats *Stats

	// Tracer, when non-nil, receives interrupt-delivery and learning-abort
	// events (the TLE layer traces the tx lifecycle itself).
	Tracer *trace.Recorder

	// Faults, when non-nil, is this context's slice of the fault-injection
	// harness: spurious transient aborts delivered like interrupts, and
	// capacity jitter applied at Begin.
	Faults *fault.HTMFaults

	// OCCSeqAddr, when non-zero, is the software-transaction tier's
	// commit-sequence word (occ.Runtime.SeqAddr). Unless the profile
	// sandboxes hardware transactions (Prof.OCCSandbox), Begin subscribes
	// to it so concurrent OCC commits doom this context's transaction.
	OCCSeqAddr simmem.Addr

	suspicion     float64 // Intel learning predictor state
	rng           *rand.Rand
	nextInterrupt int64
}

// NewContext creates a context bound to the given simmem transaction slot.
func NewContext(prof *Profile, mem *simmem.Memory, txID int, seed int64) *Context {
	c := &Context{
		Prof:  prof,
		Tx:    mem.Tx(txID),
		Mem:   mem,
		Stats: NewStats(),
		rng:   rand.New(rand.NewSource(seed)),
	}
	c.scheduleInterrupt(0)
	return c
}

func (c *Context) scheduleInterrupt(now int64) {
	if c.Prof.InterruptMeanCycles <= 0 {
		c.nextInterrupt = 1 << 62
		return
	}
	c.nextInterrupt = now + int64(c.rng.ExpFloat64()*float64(c.Prof.InterruptMeanCycles)) + 1
}

// capLines converts a byte capacity to lines, applying SMT sharing.
func (c *Context) capLines(bytes int) int {
	lines := bytes / c.Prof.LineBytes
	if c.SiblingBusy != nil && c.SiblingBusy() {
		lines /= 2
	}
	if lines < 1 {
		lines = 1
	}
	return lines
}

// Begin starts a transaction (TBEGIN/XBEGIN). It returns the cycle cost of
// the begin instruction. With the learning model enabled, a suspicious
// context may doom the new transaction immediately (an eager capacity-style
// abort that the program observes shortly after begin).
func (c *Context) Begin(now int64) int64 {
	c.Stats.Begins++
	readCap, writeCap := c.capLines(c.Prof.ReadCapBytes), c.capLines(c.Prof.WriteCapBytes)
	if scale := c.Faults.CapacityScale(now); scale != 1 {
		// Injected eviction pressure: the footprint available to this
		// transaction shrinks, making capacity overflows more likely.
		if readCap = int(float64(readCap) * scale); readCap < 1 {
			readCap = 1
		}
		if writeCap = int(float64(writeCap) * scale); writeCap < 1 {
			writeCap = 1
		}
	}
	c.Tx.Begin(readCap, writeCap)
	if c.OCCSeqAddr != 0 && !c.Prof.OCCSandbox {
		// Subscribe to the OCC commit-sequence word: a software-tier
		// publication bumps it and dooms this transaction before any of
		// the published data writes could be observed.
		c.Tx.Load(c.OCCSeqAddr)
	}
	if c.Prof.Learning && c.suspicion > 0 {
		if c.rng.Float64() < c.suspicion {
			c.Tx.SelfDoom(simmem.CauseLearning)
			if c.Tracer != nil {
				ev := trace.Ev(now, trace.KindLearning)
				ev.Ctx = c.Tx.ID()
				c.Tracer.Emit(ev)
			}
		}
	}
	return c.Prof.TBeginCycles
}

// Doomed reports whether the running transaction must abort. It also
// delivers any pending external interrupt.
func (c *Context) Doomed(now int64) bool {
	if !c.Tx.Active() {
		return false
	}
	if now >= c.nextInterrupt {
		c.Tx.SelfDoom(simmem.CauseInterrupt)
		c.scheduleInterrupt(now)
		if c.Tracer != nil {
			ev := trace.Ev(now, trace.KindInterrupt)
			ev.Ctx = c.Tx.ID()
			c.Tracer.Emit(ev)
		}
	}
	if c.Faults.SpuriousDue(now) {
		// Injected spurious abort: transient, like a delivered interrupt.
		c.Tx.SelfDoom(simmem.CauseSpurious)
	}
	return c.Tx.Doomed()
}

// End attempts to commit (TEND/XEND). On success it returns (cost, true).
// On failure the transaction remains to be rolled back via Abort.
func (c *Context) End(now int64) (int64, bool) {
	if c.Doomed(now) {
		return 0, false
	}
	if !c.Tx.Commit() {
		return 0, false
	}
	c.Stats.Commits++
	if c.Prof.Learning {
		c.suspicion *= 1 - 1/learnSuccessDecay
	}
	return c.Prof.TEndCycles, true
}

// ExplicitAbort dooms the running transaction from software (TABORT/XABORT).
func (c *Context) ExplicitAbort() { c.Tx.SelfDoom(simmem.CauseExplicit) }

// RestrictedOp dooms the running transaction because the program attempted
// an operation transactions cannot contain (a system call, I/O, ...).
func (c *Context) RestrictedOp() { c.Tx.SelfDoom(simmem.CauseRestricted) }

// Abort rolls back the doomed transaction, updates statistics and the
// learning predictor, and returns the abort cause plus the cycle penalty.
func (c *Context) Abort() (simmem.AbortCause, int64) {
	doomAddr := c.Tx.DoomAddr()
	cause := c.Tx.Rollback()
	c.Stats.Aborts++
	c.Stats.ByCause[cause]++
	if cause == simmem.CauseConflict {
		c.Stats.ByRegion[c.Mem.RegionLabel(doomAddr)]++
	}
	if c.Prof.Learning {
		switch cause {
		case simmem.CauseWriteOverflow, simmem.CauseReadOverflow:
			c.suspicion += learnOverflowBoost * (1 - c.suspicion)
			if c.suspicion > learnMax {
				c.suspicion = learnMax
			}
		case simmem.CauseLearning:
			c.suspicion *= 1 - 1/learnEagerDecay
		}
	}
	return cause, c.Prof.AbortCycles
}

// InTx reports whether a transaction is currently active in this context.
func (c *Context) InTx() bool { return c.Tx.Active() }

// Suspicion exposes the learning predictor state (tests and experiments).
func (c *Context) Suspicion() float64 { return c.suspicion }
