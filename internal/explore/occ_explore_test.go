package explore

import (
	"reflect"
	"testing"
)

// The tests below explore *mixed-tier* schedules: under "occ-1" every
// elidable section runs as a software transaction (OCC commits racing GIL
// fallbacks), and under "occ-adaptive" sections migrate HTM -> OCC -> GIL
// as the per-PC gate turns pessimistic, so a single tree interleaves all
// three tiers. The checker requirements are unchanged: every final state
// must be GIL-reachable (serializability), the GIL stays mutually
// exclusive, no OCC commit publishes while the GIL is held, and every
// schedule terminates within the cycle budget (progress).

// TestMixedTierCleanAtBoundOne explores racy registry programs at bound 1
// under both OCC-using policies. The unmutated trees must be violation-free.
func TestMixedTierCleanAtBoundOne(t *testing.T) {
	for _, pol := range []string{"occ-1", "occ-adaptive"} {
		for _, name := range []string{"counter", "mutex", "reader"} {
			p := ProgramByName(name)
			t.Run(pol+"/"+name, func(t *testing.T) {
				res, err := Run(Config{Program: p, Bound: 1, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range res.Violations {
					t.Errorf("violation: %s", v.Violation)
				}
				if res.Truncated {
					t.Errorf("exploration truncated at bound 1 (%d schedules)", res.Schedules())
				}
				if len(res.Oracle) == 0 {
					t.Fatalf("empty oracle")
				}
			})
		}
	}
}

// TestExhaustiveCounterOCCBoundTwo is the software-tier analogue of the
// bound-2 counter acceptance test: exhaustive exploration with every
// section running OCC, zero violations, and the single GIL-reachable
// final state.
func TestExhaustiveCounterOCCBoundTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("counter bound 2 takes several seconds")
	}
	res, err := Run(Config{Program: ProgramByName("counter"), Bound: 2, Policy: "occ-1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("truncated: %d schedules", res.Schedules())
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v.Violation)
	}
	if want := []string{"out:6\n|$c=6"}; !reflect.DeepEqual(res.Oracle, want) {
		t.Errorf("oracle = %q, want %q", res.Oracle, want)
	}
	t.Logf("counter/occ-1 bound 2: %d GIL + %d OCC schedules, %d outcomes",
		res.GILSchedules, res.HTMSchedules, len(res.Outcomes))
}

// TestMixedTierDeterminism: same config, same Result, bit for bit — with
// the software tier in the loop.
func TestMixedTierDeterminism(t *testing.T) {
	cfg := Config{Program: ProgramByName("counter"), Bound: 1, Policy: "occ-adaptive"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical explorations diverged:\n%+v\n%+v", a, b)
	}
}
