package explore

import (
	"flag"
	"path/filepath"
	"testing"

	"htmgil/internal/choice"
)

var update = flag.Bool("update", false, "regenerate testdata/schedules")

// regressionSpecs describes the committed regression schedules: clean
// (violation-free) schedules with non-default choices pinned into the
// territory of the PR 3 rollback fixes — GC during live transactions
// (gcstress), conflict-winner flips on the racy counter, and method-frame
// rollback (localcounter). Each file records the fingerprint its choices
// must reproduce; Verify fails on any drift.
var regressionSpecs = []struct {
	file    string
	program string
	flips   int // leading multi-way choices to flip
	kind    int // restrict flips to this choice.Kind; -1 = any
}{
	{"counter-flip2.json", "counter", 2, -1},
	{"counter-conflict.json", "counter", 1, int(choice.Conflict)},
	{"localcounter-flip2.json", "localcounter", 2, -1},
	{"gcstress-flip2.json", "gcstress", 2, -1},
	{"gcstress-conflict.json", "gcstress", 1, int(choice.Conflict)},
	{"mutex-flip2.json", "mutex", 2, -1},
}

// buildRegressionSchedule runs the program with the first `flips` eligible
// multi-way choices flipped to alternative 1 and records the resulting
// clean schedule.
func buildRegressionSchedule(t *testing.T, program string, flips, kind int) *Schedule {
	t.Helper()
	p := ProgramByName(program)
	if p == nil {
		t.Fatalf("unknown program %q", program)
	}
	cfg := Config{Program: p}
	e := &explorer{cfg: cfg.withDefaults()}
	var prefix []Choice
	probe := e.run("htm", prefix)
	done := 0
	for i := 0; i < len(probe.log) && done < flips; i++ {
		c := probe.log[i]
		if c.N < 2 || (kind >= 0 && int(c.Kind) != kind) {
			continue
		}
		prefix = append(append([]Choice{}, probe.log[:i]...), mkChoice(c.Kind, c.N, 1))
		done++
		probe = e.run("htm", prefix)
	}
	if done < flips {
		t.Fatalf("%s: only %d/%d eligible choice points (kind %v)", program, done, flips, kind)
	}
	out := e.run("htm", prefix)
	if out.runErr != nil || out.replayErr != nil || len(out.invariants) > 0 {
		t.Fatalf("%s: schedule not clean: %v / %v / %v", program, out.runErr, out.replayErr, out.invariants)
	}
	return &Schedule{
		Version:     ScheduleVersion,
		Program:     p.Name,
		Desc:        p.Desc,
		Source:      p.Source,
		Mode:        "htm",
		Policy:      e.cfg.Policy,
		HeapSlots:   p.HeapSlots,
		Choices:     trimDefaults(out.log),
		Fingerprint: out.fingerprint,
	}
}

// TestRegressionSchedules replays every committed schedule file and fails
// if one no longer reproduces its recorded fingerprint — the replayable
// regression belt for schedule-sensitive fixes. Run with -update to
// regenerate the files after an intentional machine change.
func TestRegressionSchedules(t *testing.T) {
	dir := filepath.Join("testdata", "schedules")
	if *update {
		for _, spec := range regressionSpecs {
			s := buildRegressionSchedule(t, spec.program, spec.flips, spec.kind)
			if err := s.WriteFile(filepath.Join(dir, spec.file)); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d choices)", spec.file, len(s.Choices))
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < len(regressionSpecs) {
		t.Fatalf("found %d schedule files in %s, want >= %d (run go test -run TestRegressionSchedules -update)",
			len(files), dir, len(regressionSpecs))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			s, err := LoadSchedule(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Verify()
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("replayed %d choice points, fingerprint %q", res.Choices, res.Fingerprint)
		})
	}
}
