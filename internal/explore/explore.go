// Package explore is a systematic schedule explorer and serializability
// checker for the simulated HTM-GIL stack. It takes control of every
// nondeterministic choice point — thread dispatch and timer firing in
// internal/sched, GIL yield and hand-off in internal/gil and the VM,
// conflict-winner selection in internal/simmem — through the pluggable
// choice.Chooser interface, and enumerates bounded schedule trees of small
// multi-threaded programs (CHESS-style preemption bounding: at most Bound
// non-default choices per schedule).
//
// For every explored schedule it checks:
//
//   - serializability: the final VM state (program output + every global,
//     deep) of an HTM-elided run must equal the final state of some
//     GIL-only schedule of the same program — the paper's invisibility
//     claim, decided against an oracle set built by exploring ModeGIL;
//   - GIL mutual exclusion and breaker state-machine legality, from the
//     structured trace stream;
//   - progress: no deadlocks (lost wakeups) and no livelock past the cycle
//     budget.
//
// A violation is minimized to the shortest reproducing choice prefix and
// emitted as a replayable schedule file (htmgil-bench -replay-schedule).
package explore

import (
	"fmt"
	"sort"
	"strings"

	"htmgil/internal/htm"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// Explorer machine defaults. Exploration wants runs that are cheap and
// fully choice-controlled: no random interrupts (htm.Explore), a timer
// pushed past the horizon (yields are explicit choice points instead), and
// a cycle budget small enough that livelocks fail fast but generous enough
// that no legal schedule of the tiny checker programs comes near it.
const (
	exploreHeapSlots     = 3_000
	exploreArenaBytes    = 1 << 20
	exploreTimerInterval = int64(1) << 40
	exploreMaxCycles     = 50_000_000
)

// Config parameterizes one exploration.
type Config struct {
	Program *Program

	// Bound is the preemption bound: the maximum number of non-default
	// choices per explored schedule (default 3).
	Bound int
	// OracleBound bounds the ModeGIL oracle exploration (default: Bound).
	OracleBound int
	// MaxSchedules caps the schedules enumerated per mode (default 50000);
	// Result.Truncated reports whether the cap cut the tree.
	MaxSchedules int
	// DepthCap stops branching past this many choice points into a run
	// (default 2048).
	DepthCap int
	// MaxViolations stops the HTM phase after this many violating
	// schedules have been collected (default 3); each is minimized.
	MaxViolations int

	// Policy selects the contention-management policy of the HTM phase.
	// The default is "fixed-1" (the paper's HTM-1): one-yield-point
	// transactions make elision atomicity exactly as fine-grained as the
	// GIL oracle's, maximizing the schedules where conflicts and aborts
	// can land. Set "paper-dynamic" (or any registered name) explicitly to
	// explore other policies. Breaker arms the elision circuit breaker.
	Policy  string
	Breaker bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Bound == 0 {
		out.Bound = 3
	}
	if out.OracleBound == 0 {
		out.OracleBound = out.Bound
	}
	if out.MaxSchedules == 0 {
		out.MaxSchedules = 50_000
	}
	if out.DepthCap == 0 {
		out.DepthCap = 2048
	}
	if out.MaxViolations == 0 {
		out.MaxViolations = 3
	}
	if out.Policy == "" {
		out.Policy = "fixed-1"
	}
	return out
}

// Result summarizes one exploration.
type Result struct {
	Program      string
	Bound        int
	GILSchedules int      // oracle-phase schedules enumerated
	HTMSchedules int      // HTM-phase schedules enumerated
	Oracle       []string // sorted GIL-reachable final-state fingerprints
	Outcomes     []string // sorted distinct HTM final-state fingerprints
	Violations   []*FoundViolation
	Truncated    bool // a MaxSchedules cap cut one of the trees
	// ShardOverlapCommits totals, across every HTM-phase schedule, the HTM
	// commits that landed while a shard GIL was held — evidence the sharded
	// runtime actually overlaps hardware commits with shard-lock fallbacks
	// instead of serializing them (always 0 for unsharded programs).
	ShardOverlapCommits int
	// ShardAcquires totals shard-lock acquisitions across HTM schedules —
	// the weaker signal that exploration reaches shard fallbacks at all.
	ShardAcquires int
}

// Schedules returns the total number of schedules executed.
func (r *Result) Schedules() int { return r.GILSchedules + r.HTMSchedules }

// FoundViolation pairs a violation with its minimized replayable schedule.
type FoundViolation struct {
	Violation *Violation
	Schedule  *Schedule
}

// Run explores cfg.Program: first ModeGIL to build the serializability
// oracle, then ModeHTM checking every schedule against it and the trace
// invariants. The whole exploration is deterministic: same config, same
// result, bit for bit.
func Run(cfg Config) (*Result, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("explore: Config.Program required")
	}
	c := cfg.withDefaults()
	e := &explorer{cfg: c}

	gil := e.exploreMode("gil", c.OracleBound, nil)
	oracle := make([]string, 0, len(gil.fingerprints))
	for fp := range gil.fingerprints {
		oracle = append(oracle, fp)
	}
	sort.Strings(oracle)

	htmRun := e.exploreMode("htm", c.Bound, oracle)
	outcomes := make([]string, 0, len(htmRun.fingerprints))
	for fp := range htmRun.fingerprints {
		outcomes = append(outcomes, fp)
	}
	sort.Strings(outcomes)

	res := &Result{
		Program:             c.Program.Name,
		Bound:               c.Bound,
		GILSchedules:        gil.schedules,
		HTMSchedules:        htmRun.schedules,
		Oracle:              oracle,
		Outcomes:            outcomes,
		Truncated:           gil.truncated || htmRun.truncated,
		ShardOverlapCommits: htmRun.shardOverlaps,
		ShardAcquires:       htmRun.shardAcquires,
	}
	// A GIL-phase violation (mutual exclusion, lost wakeup, livelock) is a
	// bug in the baseline itself; report those too.
	for _, raw := range append(gil.violations, htmRun.violations...) {
		if len(res.Violations) >= c.MaxViolations {
			break
		}
		res.Violations = append(res.Violations, e.minimize(raw, oracle))
	}
	return res, nil
}

// explorer carries the per-run configuration through the phases.
type explorer struct {
	cfg Config
}

// rawViolation is a violating schedule before minimization.
type rawViolation struct {
	mode      string
	prefix    []Choice
	violation *Violation
}

type modeOutcome struct {
	schedules     int
	fingerprints  map[string]int
	violations    []*rawViolation
	truncated     bool
	shardOverlaps int
	shardAcquires int
}

// exploreMode runs a bounded DFS over the schedule tree of one mode. Each
// iteration replays a forced prefix and takes defaults beyond it; every
// choice point at or after the prefix spawns sibling prefixes for each
// untaken alternative, as long as the divergence budget allows.
func (e *explorer) exploreMode(mode string, bound int, oracle []string) *modeOutcome {
	mo := &modeOutcome{fingerprints: make(map[string]int)}
	stack := [][]Choice{nil}
	for len(stack) > 0 {
		if mo.schedules >= e.cfg.MaxSchedules {
			mo.truncated = true
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := e.run(mode, prefix)
		mo.schedules++
		mo.shardOverlaps += out.shardOverlapCommits
		mo.shardAcquires += out.shardAcquires
		if out.runErr == nil && out.fingerprint != "" {
			mo.fingerprints[out.fingerprint]++
		}
		if v := out.violation(oracle); v != nil {
			mo.violations = append(mo.violations, &rawViolation{
				mode:      mode,
				prefix:    append([]Choice(nil), trimDefaults(out.log)...),
				violation: v,
			})
			if len(mo.violations) >= e.cfg.MaxViolations {
				// Enough evidence; minimization narrows these down.
				break
			}
		}
		if nonDefault(prefix) >= bound {
			continue
		}
		limit := len(out.log)
		if limit > e.cfg.DepthCap {
			limit = e.cfg.DepthCap
		}
		for i := limit - 1; i >= len(prefix); i-- {
			c := out.log[i]
			for alt := c.N - 1; alt >= 1; alt-- {
				np := make([]Choice, i+1)
				copy(np, out.log[:i])
				np[i] = mkChoice(c.Kind, c.N, alt)
				stack = append(stack, np)
			}
		}
	}
	return mo
}

// minimize shrinks a violating prefix to the shortest prefix that still
// reproduces the same violation kind, dropping trailing choices greedily.
func (e *explorer) minimize(raw *rawViolation, oracle []string) *FoundViolation {
	if raw.mode == "gil" {
		oracle = nil
	}
	best := trimDefaults(raw.prefix)
	for len(best) > 0 {
		shorter := trimDefaults(best[:len(best)-1])
		out := e.run(raw.mode, shorter)
		v := out.violation(oracle)
		if v == nil || v.Kind != raw.violation.Kind {
			break
		}
		best = shorter
		raw.violation = v
	}
	// Re-run the minimized prefix to record the reproduced fingerprint.
	out := e.run(raw.mode, best)
	s := &Schedule{
		Version:     ScheduleVersion,
		Program:     e.cfg.Program.Name,
		Desc:        e.cfg.Program.Desc,
		Source:      e.cfg.Program.Source,
		Mode:        raw.mode,
		Policy:      e.cfg.Policy,
		Breaker:     e.cfg.Breaker,
		HeapSlots:   e.cfg.Program.HeapSlots,
		Shards:      e.cfg.Program.Shards,
		Choices:     append([]Choice(nil), best...),
		Violation:   raw.violation,
		Fingerprint: out.fingerprint,
	}
	if raw.violation.Kind == "serializability" {
		s.Oracle = append([]string(nil), oracle...)
	}
	return &FoundViolation{Violation: raw.violation, Schedule: s}
}

// run executes one schedule of the configured program.
func (e *explorer) run(mode string, prefix []Choice) *outcome {
	return runSpec(&spec{
		source:    e.cfg.Program.Source,
		name:      e.cfg.Program.Name,
		mode:      mode,
		policy:    e.cfg.Policy,
		breaker:   e.cfg.Breaker,
		heapSlots: e.cfg.Program.HeapSlots,
		install:   e.cfg.Program.Install,
		shards:    e.cfg.Program.Shards,
		prefix:    prefix,
	})
}

// runSchedule executes a loaded schedule file through the same machinery.
// Native installs cannot be serialized, so they resolve back through the
// program registry by name; a schedule of a since-removed program with no
// shards or extensions still replays from its embedded source.
func runSchedule(s *Schedule) *outcome {
	sp := &spec{
		source:    s.Source,
		name:      s.Program,
		mode:      s.Mode,
		policy:    s.Policy,
		breaker:   s.Breaker,
		heapSlots: s.HeapSlots,
		shards:    s.Shards,
		prefix:    s.Choices,
	}
	if p := ProgramByName(s.Program); p != nil {
		sp.install = p.Install
	}
	return runSpec(sp)
}

type spec struct {
	source    string
	name      string
	mode      string
	policy    string
	breaker   bool
	heapSlots int
	install   func(machine *vm.VM)
	shards    int
	prefix    []Choice
}

// outcome is everything one explored run produced.
type outcome struct {
	log         []Choice
	fingerprint string
	cycles      int64
	runErr      error
	invariants  []string
	replayErr   error
	// shardOverlapCommits counts HTM commits that landed while some shard
	// GIL was held — the concurrency the sharded fallback exists to allow.
	shardOverlapCommits int
	// shardAcquires counts shard-lock acquisitions in the run.
	shardAcquires int
}

// violation classifies the outcome, worst first. A nil return means the
// run is clean (modulo the oracle when none was supplied).
func (o *outcome) violation(oracle []string) *Violation {
	if o.replayErr != nil {
		return &Violation{Kind: "replay-divergence", Detail: o.replayErr.Error()}
	}
	if o.runErr != nil {
		msg := o.runErr.Error()
		if strings.Contains(msg, "MaxCycles") || strings.Contains(msg, "deadlock") {
			return &Violation{Kind: "progress", Detail: msg}
		}
		return &Violation{Kind: "error", Detail: msg}
	}
	if len(o.invariants) > 0 {
		return &Violation{Kind: "invariant", Detail: strings.Join(o.invariants, "; ")}
	}
	if oracle != nil {
		i := sort.SearchStrings(oracle, o.fingerprint)
		if i >= len(oracle) || oracle[i] != o.fingerprint {
			return &Violation{
				Kind: "serializability",
				Detail: fmt.Sprintf("final state %q not reachable by any explored GIL schedule (%d oracle states)",
					o.fingerprint, len(oracle)),
			}
		}
	}
	return nil
}

// runSpec builds a fresh machine for the spec and executes one run under
// the recording chooser.
func runSpec(sp *spec) *outcome {
	rec := &recorder{prefix: sp.prefix}
	inv := newInvariantSink()
	vmMode := vm.ModeGIL
	if sp.mode == "htm" {
		vmMode = vm.ModeHTM
	}
	heapSlots := sp.heapSlots
	if heapSlots == 0 {
		heapSlots = exploreHeapSlots
	}
	shards := 0
	if sp.mode == "htm" && sp.shards > 1 {
		// Sharded-GIL mode is an elision-tier concept; the GIL oracle keeps
		// the single root lock so it defines legality, not mirrors the
		// implementation under test.
		shards = sp.shards
	}
	opt := vm.Options{
		Mode:                 vmMode,
		Prof:                 htm.Explore(),
		ExtendedYieldPoints:  false, // both modes must share yield-point placement
		GlobalVarsToTLS:      true,
		ThreadLocalFreeLists: true,
		FillOnceInlineCaches: true,
		IvarTableGuard:       true,
		PaddedThreadStructs:  true,
		HeapSlots:            heapSlots,
		ArenaBytes:           exploreArenaBytes,
		ThreadLocalArenas:    true,
		TimerInterval:        exploreTimerInterval,
		Seed:                 1,
		MaxCycles:            exploreMaxCycles,
		Policy:               sp.policy,
		Breaker:              sp.breaker,
		Shards:               shards,
		Chooser:              rec,
		Trace:                trace.NewRecorder(inv),
	}
	v := vm.New(opt)
	if sp.install != nil {
		sp.install(v)
	}
	out := &outcome{}
	iseq, err := v.CompileSource(sp.source, sp.name)
	if err != nil {
		out.runErr = fmt.Errorf("compile: %w", err)
		return out
	}
	res, err := v.Run(iseq)
	out.log = rec.log
	out.replayErr = rec.mismatch
	out.invariants = inv.violations
	out.shardOverlapCommits = inv.shardOverlapCommits
	out.shardAcquires = inv.shardAcquires
	if err != nil {
		out.runErr = err
		return out
	}
	out.cycles = res.Cycles
	out.fingerprint = v.StateFingerprint()
	return out
}
