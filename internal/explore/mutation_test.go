//go:build mutation

package explore

import (
	"testing"

	"htmgil/internal/gil"
	"htmgil/internal/occ"
	"htmgil/internal/vm"
)

// The mutation belt validates the checker itself: each seeded bug below is a
// build-tagged fault (go test -tags mutation) the explorer MUST detect
// within the default preemption bound. A checker that passes a broken tree
// checks nothing.

func runMutated(t *testing.T, program string, bound int) *Result {
	t.Helper()
	p := ProgramByName(program)
	if p == nil {
		t.Fatalf("unknown program %q", program)
	}
	res, err := Run(Config{Program: p, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func wantViolation(t *testing.T, res *Result, kinds ...string) {
	t.Helper()
	if len(res.Violations) == 0 {
		t.Fatalf("explorer missed the seeded bug: %d schedules explored, zero violations",
			res.Schedules())
	}
	v := res.Violations[0]
	for _, k := range kinds {
		if v.Violation.Kind == k {
			t.Logf("caught: %s (minimized to %d choices, %d schedules explored)",
				v.Violation, len(v.Schedule.Choices), res.Schedules())
			// The minimized schedule must replay the same failure.
			if _, err := v.Schedule.Verify(); err != nil {
				t.Fatalf("minimized schedule does not replay: %v", err)
			}
			return
		}
	}
	t.Fatalf("caught a violation of kind %q, want one of %v: %s",
		v.Violation.Kind, kinds, v.Violation)
}

// TestMutationSkipRollback seeds a transaction rollback that leaks
// speculative operand-stack and local-variable writes into the retry.
// A leaked loop counter skips increments, so the counter program commits
// totals no GIL schedule can produce.
func TestMutationSkipRollback(t *testing.T) {
	vm.MutSkipRollback = true
	defer func() { vm.MutSkipRollback = false }()
	wantViolation(t, runMutated(t, "localcounter", 3), "serializability", "error")
}

// TestMutationDropWakeup seeds a GIL release that skips waking spinning
// acquirers (a lost wakeup). A spinner then parks forever and the run
// livelocks into the cycle budget: a progress violation.
func TestMutationDropWakeup(t *testing.T) {
	gil.MutDropWakeup = true
	defer func() { gil.MutDropWakeup = false }()
	wantViolation(t, runMutated(t, "mutex", 3), "progress")
}

// TestMutationOCCSkipLastRead seeds a commit-time validation that skips the
// final read-log entry. On the counter program under "occ-1" the shared
// counter is the last value a section reads, so a concurrent commit between
// a thread's read and its commit goes unnoticed: a classic OCC lost update
// that only the skipped entry could have caught. The explorer must find a
// schedule whose final state no GIL interleaving can produce.
func TestMutationOCCSkipLastRead(t *testing.T) {
	occ.MutSkipLastRead = true
	defer func() { occ.MutSkipLastRead = false }()
	p := ProgramByName("counter")
	if p == nil {
		t.Fatal("unknown program counter")
	}
	// Every GIL schedule of the counter commits $c=6, so OracleBound 1
	// already yields the complete oracle; the bug hunt happens in the
	// software-tier phase at the default bound.
	res, err := Run(Config{Program: p, Bound: 3, OracleBound: 1, Policy: "occ-1"})
	if err != nil {
		t.Fatal(err)
	}
	wantViolation(t, res, "serializability", "error")
}

// TestMutationUnguardedIC seeds an inline-cache hit that trusts a filled
// cache without comparing the receiver-class guard. The polymorphic
// program's shared call site then dispatches the wrong class's method.
func TestMutationUnguardedIC(t *testing.T) {
	vm.MutUnguardedIC = true
	defer func() { vm.MutUnguardedIC = false }()
	wantViolation(t, runMutated(t, "polymorphic", 3), "serializability")
}
