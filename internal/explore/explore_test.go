package explore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestProgramsCleanAtBoundOne explores every registry program at preemption
// bound 1 in both modes. The unmutated tree must be violation-free, and the
// oracle must contain at least one final state.
func TestProgramsCleanAtBoundOne(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := Run(Config{Program: p, Bound: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v.Violation)
			}
			if res.Truncated {
				t.Errorf("exploration truncated at bound 1 (%d schedules)", res.Schedules())
			}
			if len(res.Oracle) == 0 {
				t.Fatalf("empty oracle")
			}
			for _, fp := range res.Outcomes {
				t.Logf("outcome %q", fp)
			}
		})
	}
}

// TestExhaustiveReaderBoundThree is the acceptance bar: exhaustive
// exploration of a two-thread program at preemption bound 3, zero
// violations, no truncation.
func TestExhaustiveReaderBoundThree(t *testing.T) {
	res, err := Run(Config{Program: ProgramByName("reader"), Bound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("truncated: %d schedules", res.Schedules())
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v.Violation)
	}
	if len(res.Outcomes) < 2 {
		t.Errorf("HTM exploration reached %d final states, want >= 2 (both join orders)", len(res.Outcomes))
	}
	t.Logf("reader bound 3: %d GIL + %d HTM schedules, %d oracle states, %d HTM outcomes",
		res.GILSchedules, res.HTMSchedules, len(res.Oracle), len(res.Outcomes))
}

// TestExhaustiveCounterBoundTwo explores the racier counter program
// exhaustively at bound 2 (several thousand schedules).
func TestExhaustiveCounterBoundTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("counter bound 2 takes ~10s")
	}
	res, err := Run(Config{Program: ProgramByName("counter"), Bound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("truncated: %d schedules", res.Schedules())
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v.Violation)
	}
	if want := []string{"out:6\n|$c=6"}; !reflect.DeepEqual(res.Oracle, want) {
		t.Errorf("oracle = %q, want %q", res.Oracle, want)
	}
}

// TestRunDeterminism: the same config must produce the identical Result.
func TestRunDeterminism(t *testing.T) {
	cfg := Config{Program: ProgramByName("polymorphic"), Bound: 1}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical explorations diverged:\n%+v\n%+v", a, b)
	}
}

// TestReplayByteDeterminism drives a non-default schedule twice through
// Replay and through serialization: fingerprints, results, and the schedule
// file bytes must be identical run to run.
func TestReplayByteDeterminism(t *testing.T) {
	p := ProgramByName("counter")
	cfg := Config{Program: p}
	e := &explorer{cfg: cfg.withDefaults()}

	// Build a non-trivial prefix: flip the first three multi-way choices.
	probe := e.run("htm", nil)
	var prefix []Choice
	flips := 0
	for i := 0; i < len(probe.log) && flips < 3; i++ {
		c := probe.log[i]
		if c.N > 1 {
			prefix = append(append([]Choice{}, probe.log[:i]...), mkChoice(c.Kind, c.N, 1))
			flips++
			probe = e.run("htm", prefix)
		}
	}
	out := e.run("htm", prefix)
	if out.runErr != nil || out.replayErr != nil {
		t.Fatalf("prefix run failed: %v / %v", out.runErr, out.replayErr)
	}

	s := &Schedule{
		Version:     ScheduleVersion,
		Program:     p.Name,
		Desc:        p.Desc,
		Source:      p.Source,
		Mode:        "htm",
		Policy:      e.cfg.Policy,
		Choices:     trimDefaults(out.log),
		Fingerprint: out.fingerprint,
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	if err := s.WriteFile(pathA); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSchedule(pathA)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := loaded.Verify()
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	r2, err := loaded.Verify()
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if r1.Fingerprint != r2.Fingerprint || r1.Choices != r2.Choices || r1.Cycles != r2.Cycles {
		t.Fatalf("replays diverged: %+v vs %+v", r1, r2)
	}
	if err := loaded.WriteFile(pathB); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(pathA)
	b, _ := os.ReadFile(pathB)
	if !bytes.Equal(a, b) {
		t.Fatalf("schedule file round-trip changed bytes:\n%s\n---\n%s", a, b)
	}
}

// TestScheduleValidation: corrupt schedules must be rejected with clear
// errors, not replayed.
func TestScheduleValidation(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"bad-version": `{"version": 99, "program": "x", "source": "", "mode": "htm", "choices": []}`,
		"bad-mode":    `{"version": 1, "program": "x", "source": "", "mode": "fgl", "choices": []}`,
		"bad-kind":    `{"version": 1, "program": "x", "source": "", "mode": "htm", "choices": [{"k": "quantum", "n": 2, "p": 1}]}`,
		"bad-json":    `{`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSchedule(path); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
}

// TestChooserReplayDivergence: a prefix that no longer matches the run's
// choice points must surface as a replay-divergence violation.
func TestChooserReplayDivergence(t *testing.T) {
	cfg := Config{Program: ProgramByName("reader")}
	e := &explorer{cfg: cfg.withDefaults()}
	probe := e.run("htm", nil)
	if len(probe.log) == 0 {
		t.Fatal("no choice points")
	}
	// Lie about the first choice point's arity.
	c := probe.log[0]
	bad := []Choice{mkChoice(c.Kind, c.N+7, 0)}
	out := e.run("htm", bad)
	v := out.violation(nil)
	if v == nil || v.Kind != "replay-divergence" {
		t.Fatalf("violation = %v, want replay-divergence", v)
	}
}

func TestTrimAndCount(t *testing.T) {
	cs := []Choice{
		mkChoice(0, 3, 0), mkChoice(0, 2, 1), mkChoice(1, 2, 0), mkChoice(0, 4, 0),
	}
	if got := nonDefault(cs); got != 1 {
		t.Errorf("nonDefault = %d, want 1", got)
	}
	if got := trimDefaults(cs); len(got) != 2 {
		t.Errorf("trimDefaults kept %d, want 2", len(got))
	}
	if got := trimDefaults(nil); len(got) != 0 {
		t.Errorf("trimDefaults(nil) = %v", got)
	}
}
