package explore

import (
	"encoding/json"
	"fmt"
	"os"

	"htmgil/internal/choice"
)

// ScheduleVersion is the schedule-file format version.
const ScheduleVersion = 1

// Schedule is a replayable schedule file: everything needed to reproduce
// one explored run byte-deterministically — the program (embedded, so the
// file stays valid even if the registry changes), the configuration knobs
// that shape the machine, and the choice prefix. Choices beyond the prefix
// are implicitly the default (0), which is how minimization shrinks files.
type Schedule struct {
	Version   int    `json:"version"`
	Program   string `json:"program"`
	Desc      string `json:"desc,omitempty"`
	Source    string `json:"source"`
	Mode      string `json:"mode"` // "gil" or "htm"
	Policy    string `json:"policy,omitempty"`
	Breaker   bool   `json:"breaker,omitempty"`
	HeapSlots int    `json:"heapSlots,omitempty"`
	// Shards replays the run in sharded-GIL mode (HTM schedules only;
	// 0/1 = plain single GIL). Native installs resolve via the program
	// registry by name.
	Shards    int        `json:"shards,omitempty"`
	Choices   []Choice   `json:"choices"`
	Violation *Violation `json:"violation,omitempty"`
	// Fingerprint is the final-state digest the schedule must reproduce.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Oracle is the sorted GIL-reachable fingerprint set recorded when the
	// schedule captures a serializability violation, so replay can re-judge
	// membership without re-running the oracle exploration.
	Oracle []string `json:"oracle,omitempty"`
}

// Violation describes one invariant failure found by the explorer.
type Violation struct {
	// Kind is one of: serializability, progress, invariant, error,
	// replay-divergence.
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (v *Violation) String() string {
	if v == nil {
		return "none"
	}
	return v.Kind + ": " + v.Detail
}

// normalize restores the parsed Kind field of each choice (the JSON form
// carries only the string tag) and validates tags.
func (s *Schedule) normalize() error {
	if s.Version != ScheduleVersion {
		return fmt.Errorf("explore: schedule version %d, want %d", s.Version, ScheduleVersion)
	}
	if s.Mode != "gil" && s.Mode != "htm" {
		return fmt.Errorf("explore: schedule mode %q, want gil or htm", s.Mode)
	}
	for i := range s.Choices {
		k, ok := choice.ParseKind(s.Choices[i].K)
		if !ok {
			return fmt.Errorf("explore: choice %d has unknown kind %q", i, s.Choices[i].K)
		}
		s.Choices[i].Kind = k
	}
	return nil
}

// WriteFile saves the schedule as indented JSON.
func (s *Schedule) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSchedule reads and validates a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	if err := s.normalize(); err != nil {
		return nil, fmt.Errorf("explore: %s: %v", path, err)
	}
	return &s, nil
}

// ReplayResult is the outcome of replaying one schedule.
type ReplayResult struct {
	Fingerprint string
	Violation   *Violation // nil when the replayed run is clean
	Choices     int        // total choice points the run consulted
	Cycles      int64
}

// Replay re-executes the schedule and reports what happened. It does not
// judge the result against the schedule's expectations — Verify does.
func (s *Schedule) Replay() (*ReplayResult, error) {
	if err := s.normalize(); err != nil {
		return nil, err
	}
	out := runSchedule(s)
	res := &ReplayResult{
		Fingerprint: out.fingerprint,
		Violation:   out.violation(s.Oracle),
		Choices:     len(out.log),
		Cycles:      out.cycles,
	}
	return res, nil
}

// Verify replays the schedule and checks it byte-deterministically
// reproduces what it records: the same fingerprint, and the same violation
// kind (or a clean run for regression schedules with no violation).
func (s *Schedule) Verify() (*ReplayResult, error) {
	res, err := s.Replay()
	if err != nil {
		return nil, err
	}
	if s.Violation == nil {
		if res.Violation != nil {
			return res, fmt.Errorf("explore: schedule %s expects a clean run, got %s",
				s.Program, res.Violation)
		}
		if s.Fingerprint != "" && res.Fingerprint != s.Fingerprint {
			return res, fmt.Errorf("explore: schedule %s fingerprint drifted:\n  recorded %q\n  replayed %q",
				s.Program, s.Fingerprint, res.Fingerprint)
		}
		return res, nil
	}
	if res.Violation == nil {
		return res, fmt.Errorf("explore: schedule %s no longer reproduces its %s violation",
			s.Program, s.Violation.Kind)
	}
	if res.Violation.Kind != s.Violation.Kind {
		return res, fmt.Errorf("explore: schedule %s reproduces %s, recorded %s",
			s.Program, res.Violation.Kind, s.Violation.Kind)
	}
	if s.Fingerprint != "" && res.Fingerprint != s.Fingerprint {
		return res, fmt.Errorf("explore: schedule %s fingerprint drifted:\n  recorded %q\n  replayed %q",
			s.Program, s.Fingerprint, res.Fingerprint)
	}
	return res, nil
}
