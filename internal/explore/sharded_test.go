package explore

import (
	"strings"
	"testing"
)

// TestShardedKVExploration drives the sharded-GIL runtime through bounded
// exploration: two threads race single-statement kstable UPDATEs under two
// shard locks. The per-lock exclusion invariant must hold on every schedule
// (same-shard GIL phases never interleave), every HTM outcome must be in
// the single-root-GIL oracle, and at least one explored schedule must
// commit an HTM transaction while a shard lock is held — proof the sharded
// runtime overlaps hardware commits with shard-GIL fallbacks instead of
// serializing them behind one lock.
func TestShardedKVExploration(t *testing.T) {
	res, err := Run(Config{Program: ProgramByName("shardedkv"), Bound: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v.Violation)
	}
	if res.Truncated {
		t.Errorf("exploration truncated at bound 1 (%d schedules)", res.Schedules())
	}
	// Key 0 always ends at 3; key 1 at 5 or 7 depending on write order.
	want := map[string]bool{"out:35": true, "out:37": true}
	seen := map[string]bool{}
	for _, fp := range res.Oracle {
		digest, _, _ := strings.Cut(fp, "\n")
		if !want[digest] {
			t.Errorf("oracle contains unexpected digest %q (fingerprint %q)", digest, fp)
		}
		seen[digest] = true
	}
	for d := range want {
		if !seen[d] {
			t.Errorf("oracle never reached digest %q (oracle %q)", d, res.Oracle)
		}
	}
	if res.ShardAcquires == 0 {
		t.Errorf("no schedule ever acquired a shard lock across %d HTM schedules", res.HTMSchedules)
	}
	if res.ShardOverlapCommits == 0 {
		t.Errorf("no HTM commit landed while a shard lock was held across %d HTM schedules; sharding never overlapped",
			res.HTMSchedules)
	}
	t.Logf("shardedkv bound 1: %d GIL + %d HTM schedules, %d oracle states, %d shard acquires, %d shard-overlap commits",
		res.GILSchedules, res.HTMSchedules, len(res.Oracle), res.ShardAcquires, res.ShardOverlapCommits)
}

// TestShardedScheduleRoundTrip: a schedule minimized from a sharded program
// records its shard count and replays through the sharded runtime with a
// stable fingerprint.
func TestShardedScheduleRoundTrip(t *testing.T) {
	p := ProgramByName("shardedkv")
	cfg := Config{Program: p}
	e := &explorer{cfg: cfg.withDefaults()}
	out := e.run("htm", nil)
	if out.runErr != nil || out.replayErr != nil {
		t.Fatalf("default run failed: %v / %v", out.runErr, out.replayErr)
	}
	s := &Schedule{
		Version:     ScheduleVersion,
		Program:     p.Name,
		Source:      p.Source,
		Mode:        "htm",
		Policy:      e.cfg.Policy,
		Shards:      p.Shards,
		Choices:     trimDefaults(out.log),
		Fingerprint: out.fingerprint,
	}
	res, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != out.fingerprint {
		t.Fatalf("replay fingerprint %q, explored %q", res.Fingerprint, out.fingerprint)
	}
}
