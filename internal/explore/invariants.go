package explore

import (
	"fmt"

	"htmgil/internal/trace"
)

// invariantSink is a trace sink checking event-stream invariants while a
// run executes:
//
//   - GIL mutual exclusion: gil-acquire only when free, gil-release only by
//     the owner.
//   - Breaker state-machine legality: closed→open, open→half-open,
//     half-open→{closed,open} are the only transitions.
//   - OCC/GIL exclusion: a software transaction may never publish its
//     write buffer while any thread holds the GIL — GIL code runs
//     non-transactionally and must not observe a concurrent OCC
//     publication (the runtime refuses such commits via BlockCommit).
//
// Violations are recorded, never panicked — the run completes and the
// explorer turns them into minimized schedules.
type invariantSink struct {
	gilOwner   int // thread id, -1 when free
	breaker    string
	violations []string
}

func newInvariantSink() *invariantSink {
	return &invariantSink{gilOwner: -1, breaker: "closed"}
}

func (s *invariantSink) fail(format string, args ...any) {
	if len(s.violations) < 8 {
		s.violations = append(s.violations, fmt.Sprintf(format, args...))
	}
}

func (s *invariantSink) Emit(ev trace.Event) {
	switch ev.Kind {
	case trace.KindGILAcquire:
		if s.gilOwner != -1 {
			s.fail("gil-exclusion: thread %d acquired at t=%d while thread %d holds the lock",
				ev.Thread, ev.T, s.gilOwner)
		}
		s.gilOwner = ev.Thread
	case trace.KindGILRelease:
		if s.gilOwner != ev.Thread {
			s.fail("gil-exclusion: thread %d released at t=%d but owner is %d",
				ev.Thread, ev.T, s.gilOwner)
		}
		s.gilOwner = -1
	case trace.KindOCCCommit:
		if s.gilOwner != -1 {
			s.fail("occ-gil-exclusion: thread %d published an OCC commit at t=%d while thread %d holds the GIL",
				ev.Thread, ev.T, s.gilOwner)
		}
	case trace.KindBreaker:
		from, to := s.breaker, ev.Note
		ok := (from == "closed" && to == "open") ||
			(from == "open" && to == "half-open") ||
			(from == "half-open" && (to == "closed" || to == "open"))
		if !ok {
			s.fail("breaker-legality: transition %s -> %s at t=%d", from, to, ev.T)
		}
		s.breaker = to
	}
}
