package explore

import (
	"fmt"

	"htmgil/internal/trace"
)

// invariantSink is a trace sink checking event-stream invariants while a
// run executes:
//
//   - GIL mutual exclusion, per lock: gil-acquire only when that lock is
//     free, gil-release only by its owner. Under the sharded runtime each
//     shard lock (and the root) is tracked independently — same-shard GIL
//     phases must never interleave, while distinct shards may overlap.
//   - Breaker state-machine legality: closed→open, open→half-open,
//     half-open→{closed,open} are the only transitions.
//   - OCC/root-GIL exclusion: a software transaction may never publish its
//     write buffer while any thread holds the root GIL — root-GIL code runs
//     non-transactionally and must not observe a concurrent OCC
//     publication (the runtime refuses such commits via BlockCommit).
//
// Violations are recorded, never panicked — the run completes and the
// explorer turns them into minimized schedules.
type invariantSink struct {
	// owners maps lock id -> holding thread. Lock 0 is the root (or the
	// plain single GIL); ids >= 1 are shard locks. Absent key = free.
	owners  map[int]int
	breaker string
	// shardOverlapCommits counts HTM commits that landed while some shard
	// lock was held — the coverage signal that sharding actually lets
	// hardware commits proceed alongside single-shard GIL fallbacks.
	shardOverlapCommits int
	// shardAcquires counts shard-lock acquisitions (Shard >= 1) — the
	// weaker coverage signal that explored schedules reach shard fallbacks
	// at all.
	shardAcquires int
	violations    []string
}

func newInvariantSink() *invariantSink {
	return &invariantSink{owners: make(map[int]int), breaker: "closed"}
}

func (s *invariantSink) fail(format string, args ...any) {
	if len(s.violations) < 8 {
		s.violations = append(s.violations, fmt.Sprintf(format, args...))
	}
}

func lockName(id int) string {
	if id == 0 {
		return "gil"
	}
	return fmt.Sprintf("gil-shard%02d", id-1)
}

func (s *invariantSink) shardHeld() bool {
	for id := range s.owners {
		if id != 0 {
			return true
		}
	}
	return false
}

func (s *invariantSink) Emit(ev trace.Event) {
	switch ev.Kind {
	case trace.KindGILAcquire:
		if owner, held := s.owners[ev.Shard]; held {
			s.fail("gil-exclusion: thread %d acquired %s at t=%d while thread %d holds the lock",
				ev.Thread, lockName(ev.Shard), ev.T, owner)
		}
		if ev.Shard > 0 {
			s.shardAcquires++
		}
		s.owners[ev.Shard] = ev.Thread
	case trace.KindGILRelease:
		if owner, held := s.owners[ev.Shard]; !held || owner != ev.Thread {
			cur := -1
			if held {
				cur = owner
			}
			s.fail("gil-exclusion: thread %d released %s at t=%d but owner is %d",
				ev.Thread, lockName(ev.Shard), ev.T, cur)
		}
		delete(s.owners, ev.Shard)
	case trace.KindTxCommit:
		if s.shardHeld() {
			s.shardOverlapCommits++
		}
	case trace.KindOCCCommit:
		if owner, held := s.owners[0]; held {
			s.fail("occ-gil-exclusion: thread %d published an OCC commit at t=%d while thread %d holds the GIL",
				ev.Thread, ev.T, owner)
		}
	case trace.KindBreaker:
		from, to := s.breaker, ev.Note
		ok := (from == "closed" && to == "open") ||
			(from == "open" && to == "half-open") ||
			(from == "half-open" && (to == "closed" || to == "open"))
		if !ok {
			s.fail("breaker-legality: transition %s -> %s at t=%d", from, to, ev.T)
		}
		s.breaker = to
	}
}
