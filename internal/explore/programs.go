package explore

import (
	"htmgil/internal/db"
	"htmgil/internal/vm"
)

// Program is one small multi-threaded mini-Ruby program explored by the
// checker. Programs keep their observable state in globals and print a
// digest from the main thread after joining, so the final-state fingerprint
// (vm.StateFingerprint) captures everything schedules can influence.
// They are deliberately tiny: the schedule tree grows with the number of
// executed choice points, and exhaustive bounded exploration needs the
// per-thread step count in the tens, not thousands.
type Program struct {
	Name   string
	Desc   string
	Source string
	// HeapSlots overrides the explorer's default heap size when non-zero
	// (the GC-pressure program shrinks it to force collections mid-run).
	HeapSlots int
	// Install, when non-nil, registers native extensions (the datastore
	// binding) on each freshly built machine before the program compiles.
	// Schedule files resolve it back through the registry by program name.
	Install func(machine *vm.VM)
	// Shards runs the HTM phase in sharded-GIL mode with this many
	// per-shard locks (0/1 = plain single GIL). The GIL oracle phase always
	// runs the single root lock: the oracle defines what outcomes are
	// legal, and the sharded runtime must not be able to produce anything
	// beyond it.
	Shards int
}

// Programs returns the registry of checker programs in deterministic order.
func Programs() []*Program {
	return []*Program{CounterProgram(), LocalCounterProgram(), MutexProgram(),
		OrderProgram(), ReaderProgram(), PolymorphicProgram(), GCStressProgram(),
		ShardedKVProgram()}
}

// ProgramByName resolves a registry name; nil when unknown.
func ProgramByName(name string) *Program {
	for _, p := range Programs() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// CounterProgram is the workhorse: two threads race unsynchronized
// increments of a global. Each `$c += 1` sits between yield points, so it
// is atomic under both the GIL and yield-point-bounded transactions: every
// correct schedule ends with $c == 6. Lost increments (a rollback that
// leaks speculative local state into the retry) or duplicated increments
// change the printed digest.
func CounterProgram() *Program {
	return &Program{
		Name: "counter",
		Desc: "2 threads x 3 unsynchronized increments of $c",
		Source: `$c = 0
t1 = Thread.new do
  j = 0
  while j < 3
    $c += 1
    j += 1
  end
end
t2 = Thread.new do
  j = 0
  while j < 3
    $c += 1
    j += 1
  end
end
t1.join
t2.join
puts $c
`,
	}
}

// LocalCounterProgram is the counter with the loop moved into a method:
// thread-body locals live in heap environments (blocks capture the
// enclosing scope), but a method frame's locals are interpreter-private
// state protected only by the undo log. An abort that leaks the speculative
// loop counter into the retry skips iterations — the program that catches
// the MutSkipRollback seeded bug.
func LocalCounterProgram() *Program {
	return &Program{
		Name: "localcounter",
		Desc: "2 threads increment $c from a method-frame-local loop",
		Source: `$c = 0
def work
  i = 0
  while i < 3
    $c += 1
    i += 1
  end
end
t1 = Thread.new do
  work
end
t2 = Thread.new do
  work
end
t1.join
t2.join
puts $c
`,
	}
}

// MutexProgram exercises the blocking-native fallback path: synchronize
// forces each critical section onto the GIL, so hand-off order, spinner
// wakeups and the spin-and-acquire path of the TLE protocol all matter.
func MutexProgram() *Program {
	return &Program{
		Name: "mutex",
		Desc: "2 threads x 2 mutex-protected increments",
		Source: `$c = 0
m = Mutex.new
t1 = Thread.new do
  j = 0
  while j < 2
    m.synchronize do
      $c += 1
    end
    j += 1
  end
end
t2 = Thread.new do
  j = 0
  while j < 2
    m.synchronize do
      $c += 1
    end
    j += 1
  end
end
t1.join
t2.join
puts $c
`,
	}
}

// OrderProgram has several legal outcomes: three threads append their id to
// a shared array under a mutex. The oracle set is the set of reachable
// permutations — checking that HTM never commits an order the GIL could not
// have produced.
func OrderProgram() *Program {
	return &Program{
		Name: "order",
		Desc: "3 threads append ids to $order under a mutex",
		Source: `$order = []
m = Mutex.new
threads = []
i = 1
while i <= 3
  threads << Thread.new(i) do |me|
    m.synchronize do
      $order << me
    end
  end
  i += 1
end
threads.each do |th|
  th.join
end
puts $order.join(",")
`,
	}
}

// ReaderProgram checks write-order visibility: the writer publishes $a then
// $b; the reader samples both in one atomic statement. Seeing $b == 1 with
// $a == 0 would be a reordering neither the GIL nor a serializable
// transaction schedule permits.
func ReaderProgram() *Program {
	return &Program{
		Name: "reader",
		Desc: "write-order visibility across two globals",
		Source: `$a = 0
$b = 0
$r = 0
w = Thread.new do
  $a = 1
  $b = 1
end
r = Thread.new do
  $r = $b * 10 + $a
end
w.join
r.join
puts $r
`,
	}
}

// PolymorphicProgram shares one inline-cache call site between two receiver
// classes from two threads. A racy or unguarded cache fill dispatches the
// wrong class's method, which the digest exposes ($x + $y*10 != 21). This
// is the program that catches the MutUnguardedIC seeded bug.
func PolymorphicProgram() *Program {
	return &Program{
		Name: "polymorphic",
		Desc: "2 classes through one shared inline-cache site",
		Source: `class A
  def m
    1
  end
end
class B
  def m
    2
  end
end
def call(o)
  o.m
end
$x = 0
$y = 0
a = A.new
b = B.new
t1 = Thread.new do
  $x = call(a)
end
t2 = Thread.new do
  $y = call(b)
end
t1.join
t2.join
puts $x + $y * 10
`,
	}
}

// ShardedKVProgram drives keyspace point updates through the sharded-GIL
// runtime: three threads over a tiny kstable under two shard locks (key 1
// hashes to shard 1, key 2 to shard 0). Threads 1 and 2 hammer the hot
// key 1 — doom-the-holder conflicts exhaust a section's transient retries
// and route its fallback to shard 1's lock, with the losing thread left
// spinning on the held shard word. Thread 3 meanwhile updates only key 2,
// so explored schedules include HTM commits on shard 0 landing while
// shard 1's lock is held — the overlap the sharded fallback exists to
// allow. The updates sit in while loops, not straight-line sequences: the
// loop back-edge is a yield point, making every update its own critical
// section (a straight-line body would fuse into one long section and a
// single fallback would swallow the whole thread). Key 2 always ends at
// 3; key 1 ends at 5 or 7 depending on write order — the oracle's two
// legal digests. The per-lock exclusion invariant checks that same-shard
// GIL phases never interleave.
func ShardedKVProgram() *Program {
	return &Program{
		Name: "shardedkv",
		Desc: "3 threads race kstable point updates under 2 shard GILs",
		// Large enough that thread-local free lists never refill from the
		// shared pool mid-run: refill conflicts on allocator metadata would
		// drown the key-level conflicts this program is about.
		HeapSlots: 40_000,
		Install:   db.Install,
		Shards:    2,
		Source: `$db = SQLite3.new
$db.execute("CREATE KEYSPACE kv ROWS 8")
t1 = Thread.new do
  j = 0
  while j < 4
    $db.execute("UPDATE kv SET val = 5 WHERE key = 1")
    j += 1
  end
end
t2 = Thread.new do
  j = 0
  while j < 4
    $db.execute("UPDATE kv SET val = 7 WHERE key = 1")
    j += 1
  end
end
t3 = Thread.new do
  j = 0
  while j < 6
    $db.execute("UPDATE kv SET val = 3 WHERE key = 2")
    j += 1
  end
end
t1.join
t2.join
t3.join
r2 = $db.execute("SELECT * FROM kv WHERE key = 2")
r1 = $db.execute("SELECT * FROM kv WHERE key = 1")
puts r2[0][1] * 10 + r1[0][1]
`,
	}
}

// GCStressProgram allocates arrays inside transactional loops on a small
// heap, forcing collections while transactions are live — the regression
// territory of the PR 3 rollback fixes (bottom-frame underflow, gcRoots
// stack hole). Every correct schedule sums to the same digest.
func GCStressProgram() *Program {
	return &Program{
		Name:      "gcstress",
		Desc:      "allocation loops on a tiny heap (GC during transactions)",
		HeapSlots: 2000,
		Source: `$acc = 0
t1 = Thread.new do
  j = 0
  while j < 3
    s = [j, j + 1]
    $acc += s[0] + s[1]
    j += 1
  end
end
t2 = Thread.new do
  j = 0
  while j < 3
    s = [j + 2, j + 3]
    $acc += s[0] + s[1]
    j += 1
  end
end
t1.join
t2.join
puts $acc
`,
	}
}
