package explore

import (
	"fmt"

	"htmgil/internal/choice"
)

// Choice is one resolved choice point: its kind, how many alternatives the
// simulator offered, and which one was taken. Pick 0 is always the decision
// the un-instrumented simulator would have made.
type Choice struct {
	Kind choice.Kind `json:"-"`
	K    string      `json:"k"` // Kind's schedule-file tag
	N    int         `json:"n"`
	Pick int         `json:"p"`
}

func mkChoice(kind choice.Kind, n, pick int) Choice {
	return Choice{Kind: kind, K: kind.String(), N: n, Pick: pick}
}

// recorder is the Chooser driving one explored run: it replays a forced
// prefix of choices and picks the default (0) everywhere after it, logging
// every choice point it is consulted at. A recorder with an empty prefix
// reproduces the vanilla deterministic schedule.
type recorder struct {
	prefix   []Choice
	log      []Choice
	mismatch error // first replay divergence, if any
}

func (r *recorder) Choose(kind choice.Kind, n int) int {
	i := len(r.log)
	pick := 0
	if i < len(r.prefix) {
		p := r.prefix[i]
		if p.Kind != kind || p.N != n {
			if r.mismatch == nil {
				r.mismatch = fmt.Errorf(
					"explore: replay divergence at choice %d: schedule has %s/%d, run offered %s/%d",
					i, p.Kind, p.N, kind, n)
			}
		} else {
			pick = p.Pick
		}
	}
	if pick < 0 || pick >= n {
		if r.mismatch == nil {
			r.mismatch = fmt.Errorf(
				"explore: choice %d pick %d out of range [0,%d)", i, pick, n)
		}
		pick = 0
	}
	r.log = append(r.log, mkChoice(kind, n, pick))
	return pick
}

// nonDefault counts the non-default picks in a choice sequence — the
// divergence count bounded by Config.Bound (the preemption bound).
func nonDefault(cs []Choice) int {
	n := 0
	for _, c := range cs {
		if c.Pick != 0 {
			n++
		}
	}
	return n
}

// trimDefaults drops trailing default picks: running a prefix is identical
// to running it with any number of appended defaults.
func trimDefaults(cs []Choice) []Choice {
	end := len(cs)
	for end > 0 && cs[end-1].Pick == 0 {
		end--
	}
	return cs[:end]
}
