package netsim

import (
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/rbregexp"
	"htmgil/internal/resilience"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// guardedEchoServer is the pool echo server with the nil guard every real
// handler needs once deadlines are armed: read_request returns nil for a
// cancelled request and the worker must simply move on.
const guardedEchoServer = `
def handle(s)
  req = s.read_request
  unless req.nil?
    s.write("ECHO:" + req)
  end
  s.close
end
server = TCPServer.new(9090)
w = 1
while w < 4
  Thread.new do
    while true
      handle(server.accept)
    end
  end
  w += 1
end
while true
  handle(server.accept)
end
`

// runResilientEcho drives the guarded pool echo server open-loop with a
// resilience.Server attached to the network fabric.
func runResilientEcho(t *testing.T, cfg resilience.Config, g *OpenLoadGen) (*resilience.Server, kindCounter) {
	t.Helper()
	kinds := kindCounter{}
	opt := vm.DefaultOptions(htm.XeonE3(), vm.ModeGIL)
	opt.Trace = trace.NewRecorder(kinds)
	rs := resilience.NewServer(cfg)
	if rs.Deadlines != nil {
		opt.Deadlines = rs.Deadlines
		opt.DeadlineSlack = cfg.DeadlineSlack
	}
	machine := vm.New(opt)
	net := NewNetwork(machine.Engine)
	net.Tracer = machine.Opt.Trace
	net.Faults = machine.Faults
	rs.Tracer = machine.Opt.Trace
	net.Res = rs
	Install(machine, net)
	rbregexp.Install(machine)
	iseq, err := machine.CompileSource(guardedEchoServer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	g.Net, g.Eng = net, machine.Engine
	if g.Port == 0 {
		g.Port = 9090
	}
	g.OnDone = machine.Engine.Stop
	g.Start()
	if _, err := machine.Run(iseq); err != nil {
		t.Fatal(err)
	}
	return rs, kinds
}

// TestOpenLoadAdmissionShedsOverload: with a tiny admission queue under an
// offered load far beyond capacity, part of the traffic is shed at the
// listener, every request still resolves, and the generator's shed counter
// agrees with the server's and the trace stream's.
func TestOpenLoadAdmissionShedsOverload(t *testing.T) {
	g := &OpenLoadGen{
		Seed: 17,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 3_000, Horizon: 30_000_000},
		Routes:   echoRoutes(),
		Sessions: 64,
	}
	rs, kinds := runResilientEcho(t, resilience.Config{MaxQueue: 4}, g)
	if g.Resolved() != g.Generated || g.Generated == 0 {
		t.Fatalf("resolved %d of %d", g.Resolved(), g.Generated)
	}
	if g.Shed == 0 {
		t.Fatalf("queue of 4 under 3000/s offered load shed nothing")
	}
	if g.Completed == 0 {
		t.Fatalf("admission control starved the server entirely")
	}
	if uint64(g.Shed) != rs.ShedTotal() {
		t.Fatalf("generator shed %d, server recorded %d", g.Shed, rs.ShedTotal())
	}
	if kinds[trace.KindNetShed] != rs.ShedTotal() {
		t.Fatalf("net-shed events %d, server recorded %d", kinds[trace.KindNetShed], rs.ShedTotal())
	}
	if rs.Sheds[resilience.ShedQueueFull] != rs.ShedTotal() {
		t.Fatalf("all sheds should be queue-full: %v", rs.Sheds)
	}
}

// TestOpenLoadDeadlineCancels: routes carrying a deadline shorter than the
// queueing delay under overload get cancelled — in the backlog or at read —
// rather than served late, and the trace stream records each cancellation.
func TestOpenLoadDeadlineCancels(t *testing.T) {
	routes := echoRoutes()
	for i := range routes {
		routes[i].DeadlineCycles = 400_000
	}
	g := &OpenLoadGen{
		Seed: 23,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 1_000, Horizon: 30_000_000},
		Routes:   routes,
		Sessions: 48,
		// Half the sessions deliver their bytes 600k cycles late — past the
		// 400k deadline — pinning workers in read_request until the deadline
		// wake cancels them and backing the listener queue up behind them.
		SlowFraction: 0.5,
		SlowStall:    600_000,
	}
	rs, kinds := runResilientEcho(t, resilience.Config{Deadlines: true}, g)
	if g.Resolved() != g.Generated || g.Generated == 0 {
		t.Fatalf("resolved %d of %d", g.Resolved(), g.Generated)
	}
	if g.DeadlineExceeded == 0 {
		t.Fatalf("400k-cycle deadlines under overload: no cancellations")
	}
	if g.Completed == 0 {
		t.Fatalf("nothing completed at all")
	}
	// Some cancellations happen server-side (backlog/read), the rest
	// client-side before connecting (session queue or retry backoff); the
	// server's count can only cover the former.
	if rs.Expired > uint64(g.DeadlineExceeded) {
		t.Fatalf("server expired %d > generator's %d", rs.Expired, g.DeadlineExceeded)
	}
	if kinds[trace.KindDeadlineExceeded] != rs.Expired {
		t.Fatalf("deadline-exceeded events %d, server recorded %d",
			kinds[trace.KindDeadlineExceeded], rs.Expired)
	}
	// Completed requests all started service before their deadline: the
	// server checks at accept and at read, so completions can overshoot only
	// by the final service-and-response time, not by queueing.
	const overshoot = 100_000
	for r, samples := range g.Samples {
		for _, v := range samples {
			if v > routes[r].DeadlineCycles+overshoot {
				t.Fatalf("route %d served %d cycles after a %d-cycle deadline",
					r, v, routes[r].DeadlineCycles)
			}
		}
	}
}

// TestOpenLoadRetryBudgetGivesUp: against a port nobody ever binds, budgeted
// sessions abandon their requests as gave-up after a bounded number of
// attempts instead of retrying forever.
func TestOpenLoadRetryBudgetGivesUp(t *testing.T) {
	g := &OpenLoadGen{
		Seed: 5,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 200, Horizon: 10_000_000},
		Routes:   echoRoutes(),
		Sessions: 6,
		Retry:    &resilience.RetryConfig{MaxAttempts: 3, Budget: 2, Refill: 0},
	}
	// No server behind this port: every connect is refused.
	g.Port = 9999
	rs, _ := runResilientEcho(t, resilience.Config{}, g)
	_ = rs
	if g.GaveUp != g.Generated || g.Generated == 0 {
		t.Fatalf("gave up %d of %d", g.GaveUp, g.Generated)
	}
	if g.Completed != 0 || g.Shed != 0 {
		t.Fatalf("no server, yet completed=%d shed=%d", g.Completed, g.Shed)
	}
	// Budget of 2 with no refill: each session pays at most 2 retries, so
	// attempts stay well under generated * MaxAttempts.
	if g.ConnsTotal >= g.Generated*3 {
		t.Fatalf("budget did not bound retries: %d connects for %d requests",
			g.ConnsTotal, g.Generated)
	}
}

// TestOpenLoadLegacyRetryCapped: even without a RetryConfig the generator no
// longer retries forever — a request that only ever sees refusals resolves
// as gave-up at the hard attempt cap.
func TestOpenLoadLegacyRetryCapped(t *testing.T) {
	g := &OpenLoadGen{
		Seed: 9,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 50, Horizon: 5_000_000},
		Routes:   echoRoutes(),
		Sessions: 4,
	}
	g.Port = 9999 // never bound
	runResilientEcho(t, resilience.Config{}, g)
	if g.GaveUp != g.Generated || g.Generated == 0 {
		t.Fatalf("gave up %d of %d", g.GaveUp, g.Generated)
	}
	if g.Refused != g.ConnsTotal {
		t.Fatalf("refused %d of %d connects", g.Refused, g.ConnsTotal)
	}
	// Each request makes exactly openRetryCap attempts before giving up.
	if g.ConnsTotal != g.Generated*openRetryCap {
		t.Fatalf("connects = %d, want %d requests * %d cap",
			g.ConnsTotal, g.Generated, openRetryCap)
	}
}

// TestOpenLoadBrownoutShedsLowPriority: under a sustained overload with the
// brownout controller armed, low-priority routes are shed while priority-0
// traffic keeps being admitted (up to queue overflow).
func TestOpenLoadBrownoutShedsLowPriority(t *testing.T) {
	routes := echoRoutes()
	routes[0].Priority = 0 // essential
	routes[1].Priority = 1 // shed under brownout/shed states
	g := &OpenLoadGen{
		Seed: 29,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 1_000, Horizon: 40_000_000},
		Routes:   routes,
		Sessions: 64,
		// Pin workers with slow drains so accept-time queue delays grow far
		// past the brownout thresholds.
		SlowFraction: 0.5,
		SlowStall:    500_000,
	}
	rs, kinds := runResilientEcho(t, resilience.Config{
		MaxQueue: 256,
		Brownout: &resilience.BrownoutConfig{
			EnterDelay:       100_000,
			ShedDelay:        400_000,
			BrownoutPriority: 1,
			ShedPriority:     1,
			DwellCycles:      1_000_000,
		},
	}, g)
	if g.Resolved() != g.Generated || g.Generated == 0 {
		t.Fatalf("resolved %d of %d", g.Resolved(), g.Generated)
	}
	if rs.Sheds[resilience.ShedBrownout] == 0 {
		t.Fatalf("sustained overload never tripped the brownout controller: %v (state %v, transitions %d)",
			rs.Sheds, rs.Brownout.State(), len(rs.Brownout.Transitions))
	}
	if kinds[trace.KindBrownout] == 0 {
		t.Fatalf("brownout transitions not traced")
	}
	if len(g.Samples[0]) == 0 {
		t.Fatalf("essential route starved under brownout")
	}
	// Brownout sheds target only the low-priority route, so its completion
	// share must drop below its fair Zipf share.
	if g.Shed == 0 {
		t.Fatalf("no requests shed")
	}
}

// TestOpenLoadResilienceDeterministic: the full resilience stack — admission,
// deadlines, budgets, brownout — reproduces byte-identical counters and
// samples across runs.
func TestOpenLoadResilienceDeterministic(t *testing.T) {
	run := func() *OpenLoadGen {
		routes := echoRoutes()
		routes[0].DeadlineCycles = 2_000_000
		routes[1].DeadlineCycles = 1_000_000
		routes[1].Priority = 1
		g := &OpenLoadGen{
			Seed: 42,
			Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
				RatePerSec: 1_500, Horizon: 30_000_000,
				PulseStart: 10_000_000, PulseEnd: 20_000_000, PulseMult: 3},
			Routes:   routes,
			Sessions: 32,
			Retry:    &resilience.RetryConfig{},
		}
		runResilientEcho(t, resilience.Config{
			MaxQueue:  16,
			Deadlines: true,
			Brownout:  &resilience.BrownoutConfig{EnterDelay: 200_000, ShedDelay: 800_000},
		}, g)
		return g
	}
	a, b := run(), run()
	if a.Generated != b.Generated || a.Completed != b.Completed ||
		a.Shed != b.Shed || a.GaveUp != b.GaveUp ||
		a.DeadlineExceeded != b.DeadlineExceeded ||
		a.Resets != b.Resets || a.ConnsTotal != b.ConnsTotal {
		t.Fatalf("counters diverge:\n%+v\nvs\n%+v", a, b)
	}
	for r := range a.Samples {
		if len(a.Samples[r]) != len(b.Samples[r]) {
			t.Fatalf("route %d: %d vs %d samples", r, len(a.Samples[r]), len(b.Samples[r]))
		}
		for i := range a.Samples[r] {
			if a.Samples[r][i] != b.Samples[r][i] {
				t.Fatalf("route %d sample %d: %d vs %d", r, i, a.Samples[r][i], b.Samples[r][i])
			}
		}
	}
}

// TestArrivalPulseRaisesRate: the pulse window sees roughly PulseMult times
// the out-of-pulse arrival rate.
func TestArrivalPulseRaisesRate(t *testing.T) {
	o := ArrivalOpts{Kind: ArrivalPoisson, Seed: 11, RatePerSec: 2_000,
		Horizon: 900_000_000, PulseStart: 300_000_000, PulseEnd: 600_000_000, PulseMult: 4}
	in, out := 0, 0
	for _, v := range collectArrivals(o) {
		if v >= o.PulseStart && v < o.PulseEnd {
			in++
		} else {
			out++
		}
	}
	// In/out windows are equal-length (300M in-pulse vs 600M out, so halve
	// the out count for a per-window rate).
	inRate, outRate := float64(in), float64(out)/2
	if outRate == 0 || inRate < 3*outRate || inRate > 5*outRate {
		t.Fatalf("pulse contrast off: in=%d out=%d (want ~4x)", in, out)
	}
}
