package netsim

import (
	"math"
	"math/rand"
	"sort"

	"htmgil/internal/resilience"
	"htmgil/internal/sched"
	"htmgil/internal/vm"
)

// Open-loop load generation. The closed-loop LoadGen above issues the next
// request only after the previous response arrives, so offered load
// self-throttles to whatever the server sustains and queueing delay never
// accumulates — tails stay flat no matter how overloaded the server is. An
// open-loop generator draws arrival times from a seeded stochastic process
// that does not observe the server at all; when the server falls behind,
// requests pile up and the latency distribution grows the heavy tail that
// real serving systems (and the TM-contention literature) care about.
// Everything is seeded and consumed in schedule order, so runs are
// bit-identical.

// ArrivalKind selects the arrival process shape.
type ArrivalKind string

// Arrival processes.
const (
	// ArrivalPoisson is a homogeneous Poisson process at RatePerSec.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalBursty alternates on/off phases (on = ~3.3x the mean rate for
	// 20% of each period) while keeping the long-run mean at RatePerSec.
	ArrivalBursty ArrivalKind = "bursty"
	// ArrivalDiurnal modulates the rate with a raised sine (trough 25% of
	// peak) whose long-run mean is RatePerSec — a compressed day/night
	// traffic profile.
	ArrivalDiurnal ArrivalKind = "diurnal"
)

// Bursty/diurnal profile shape constants (see the ArrivalKind docs).
const (
	burstOnFrac  = 0.2
	burstOffMult = 0.125
	diurnalLo    = 0.25
)

// ArrivalOpts parameterizes an ArrivalStream.
type ArrivalOpts struct {
	Kind       ArrivalKind
	Seed       int64
	RatePerSec float64 // long-run mean arrivals per virtual second
	Horizon    int64   // arrivals are generated in [0, Horizon) cycles
	// Period is the modulation period in cycles for bursty (on/off cycle)
	// and diurnal (full sine) processes; it defaults to Horizon/8 and
	// Horizon respectively.
	Period int64
	// PulseMult > 1 multiplies the rate by that factor during
	// [PulseStart, PulseEnd) — an overload pulse layered on any base
	// process, the trigger for metastable-failure scenarios.
	PulseStart int64
	PulseEnd   int64
	PulseMult  float64
}

// ArrivalStream generates the arrival times of a (possibly nonhomogeneous)
// Poisson process by thinning: homogeneous candidates at the peak rate are
// accepted with probability rate(t)/peak. Given the same options the
// sequence of times is byte-identical across runs.
type ArrivalStream struct {
	rng     *rand.Rand
	t       float64
	peak    float64 // arrivals per cycle at peak modulation
	horizon float64
	profile func(t float64) float64 // acceptance probability in (0, 1]
}

// NewArrivalStream builds the seeded arrival-time generator.
func NewArrivalStream(o ArrivalOpts) *ArrivalStream {
	rate := o.RatePerSec / float64(vm.CyclesPerSecond)
	s := &ArrivalStream{
		rng:     rand.New(rand.NewSource(o.Seed)),
		horizon: float64(o.Horizon),
	}
	switch o.Kind {
	case ArrivalBursty:
		period := float64(o.Period)
		if period <= 0 {
			period = float64(o.Horizon) / 8
		}
		// Mean multiplier over a period is onFrac + (1-onFrac)*offMult;
		// scale the peak so the long-run mean stays at the requested rate.
		s.peak = rate / (burstOnFrac + (1-burstOnFrac)*burstOffMult)
		s.profile = func(t float64) float64 {
			if math.Mod(t, period) < burstOnFrac*period {
				return 1
			}
			return burstOffMult
		}
	case ArrivalDiurnal:
		period := float64(o.Period)
		if period <= 0 {
			period = float64(o.Horizon)
		}
		s.peak = rate / (diurnalLo + (1-diurnalLo)*0.5)
		s.profile = func(t float64) float64 {
			return diurnalLo + (1-diurnalLo)*0.5*(1-math.Cos(2*math.Pi*t/period))
		}
	default: // ArrivalPoisson
		s.peak = rate
	}
	if o.PulseMult > 1 && o.PulseEnd > o.PulseStart {
		// Layer the overload pulse on top of the base profile: raise the
		// candidate rate to the pulsed peak and thin everything outside the
		// pulse window back down by the same factor.
		mult := o.PulseMult
		start, end := float64(o.PulseStart), float64(o.PulseEnd)
		base := s.profile
		s.peak *= mult
		s.profile = func(t float64) float64 {
			p := 1.0
			if base != nil {
				p = base(t)
			}
			if t >= start && t < end {
				return p
			}
			return p / mult
		}
	}
	return s
}

// Next returns the next arrival time, or false once the horizon is passed.
func (s *ArrivalStream) Next() (int64, bool) {
	for {
		s.t += s.rng.ExpFloat64() / s.peak
		if s.t >= s.horizon {
			return 0, false
		}
		if s.profile == nil || s.rng.Float64() < s.profile(s.t) {
			return int64(s.t), true
		}
	}
}

// ZipfPicker draws route indices with Zipf-distributed popularity: route i
// (0-based) has weight 1/(i+1)^s. Sampling is by inverse CDF over the
// normalized cumulative weights, so it is exact and seeded.
type ZipfPicker struct {
	rng *rand.Rand
	cum []float64
}

// NewZipfPicker builds a picker over n routes with exponent s (s <= 0
// defaults to 1.1, a typical web-traffic skew).
func NewZipfPicker(seed int64, n int, s float64) *ZipfPicker {
	if s <= 0 {
		s = 1.1
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfPicker{rng: rand.New(rand.NewSource(seed)), cum: cum}
}

// Pick returns the next route index.
func (z *ZipfPicker) Pick() int {
	i := sort.SearchFloat64s(z.cum, z.rng.Float64())
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// mixSeed derives an independent RNG stream seed (splitmix64 finalizer), so
// the generator's channels — arrivals, route choice, session choice — never
// perturb each other: consuming more randomness on one cannot shift another.
func mixSeed(seed int64, lane uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(lane+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// OpenRoute is one route class the generator sweeps: the request it sends
// and the latency SLO its responses are judged against.
type OpenRoute struct {
	Name      string
	Request   string
	SLOCycles int64
	// DeadlineCycles > 0 stamps each request of this route with an absolute
	// deadline of arrival+DeadlineCycles; the server cancels requests past
	// it (see Conn.Deadline) instead of serving them.
	DeadlineCycles int64
	// Priority classifies the route for brownout shedding: higher values are
	// less essential and shed first. Zero (or negative) is never shed by the
	// brownout controller (admission-queue overflow still applies).
	Priority int
}

// Request outcomes reported through OnOutcome. Every generated request
// resolves to exactly one of these.
const (
	OutcomeCompleted = "completed"
	OutcomeShed      = "shed"     // rejected by server-side admission/brownout
	OutcomeGaveUp    = "gave-up"  // retries exhausted (attempt cap or budget)
	OutcomeDeadline  = "deadline" // cancelled past its deadline
)

type openReq struct {
	arrival  int64 // latency is measured from here, queueing included
	route    int
	deadline int64 // absolute cancel-after cycle; 0 = none
	attempts int   // connect attempts made so far
}

// openSession is one logical client. A session issues its requests in
// order: an arrival landing on a busy session queues behind the in-flight
// request (its latency clock already running), which is what ties tail
// latency to per-client head-of-line blocking rather than treating every
// request as an independent connection.
type openSession struct {
	id     int
	busy   bool
	slow   bool
	queue  []*openReq
	budget *resilience.RetryBudget // nil unless OpenLoadGen.Retry is set
}

// OpenLoadGen drives open-loop traffic: arrivals from an ArrivalStream,
// Zipf route selection, session affinity, and slow-client drain stalls.
// Refused and reset connections are retried with the same backoff as
// LoadGen — crucially keeping the original arrival time, so retries pay
// their full latency cost.
type OpenLoadGen struct {
	Net  *Network
	Eng  *sched.Engine
	Port int64

	Seed     int64
	Arrivals ArrivalOpts // Seed field is overridden from Seed
	Routes   []OpenRoute
	ZipfS    float64 // route-popularity exponent (<= 0: 1.1)
	Sessions int     // logical clients (<= 0: 1)
	// SlowFraction of the sessions drain slowly: each of their requests is
	// written SlowStall cycles late, pinning a server thread in
	// read_request for the duration (independent of injected slowclient
	// faults, which hit any session).
	SlowFraction float64
	SlowStall    int64

	// Retry, when set, arms per-session retry budgets with seeded
	// exponential backoff and jitter in place of the legacy fixed-interval
	// retries (which stay capped at openRetryCap attempts either way).
	Retry *resilience.RetryConfig

	// OnDone fires when the arrival horizon has passed and every generated
	// request has resolved (completed, shed, gave up, or expired).
	OnDone func()
	// OnComplete, when set, observes every completed request (tests).
	OnComplete func(session, route int, arrival, done int64)
	// OnOutcome, when set, observes every resolution, successful or not
	// (recovery tracking; outcome is one of the Outcome* constants).
	OnOutcome func(session, route int, arrival, done int64, outcome string)

	// Counters and samples (valid once the run finishes).
	Generated        int // requests the arrival process produced
	Completed        int
	Shed             int // rejected by server-side admission control/brownout
	GaveUp           int // abandoned after exhausting retries or budget
	DeadlineExceeded int // cancelled by the server past their deadline
	Refused          int // connect attempts before the server was up
	Resets           int // connects dropped by injected resets (each retried)
	Stalls           int // injected slow-client stalls (fault channel)
	ConnsTotal       int
	ConnsPeak        int
	Samples          [][]int64 // per-route latency samples, completion order
	FailedByRoute    []int     // per-route non-completed requests (shed + gave-up + expired)

	stream      *ArrivalStream
	zipf        *ZipfPicker
	sessRng     *rand.Rand
	retryRng    *rand.Rand
	sessions    []*openSession
	inflight    int
	outstanding int
	drained     bool
	doneFired   bool
	lastDone    int64
}

const (
	openRetryBackoff = 50_000 // cycles; matches LoadGen's refused/reset backoff
	// openRetryCap bounds retries even on the legacy (budget-less) path: a
	// request refused or reset this many times is abandoned as gave-up
	// rather than retried forever.
	openRetryCap = 64
)

// Resolved returns the number of generated requests that reached a terminal
// outcome; a finished run has Resolved() == Generated.
func (g *OpenLoadGen) Resolved() int {
	return g.Completed + g.Shed + g.GaveUp + g.DeadlineExceeded
}

// Start seeds the streams and schedules the first arrival.
func (g *OpenLoadGen) Start() {
	if g.Sessions <= 0 {
		g.Sessions = 1
	}
	a := g.Arrivals
	a.Seed = mixSeed(g.Seed, 1)
	g.stream = NewArrivalStream(a)
	g.zipf = NewZipfPicker(mixSeed(g.Seed, 2), len(g.Routes), g.ZipfS)
	g.sessRng = rand.New(rand.NewSource(mixSeed(g.Seed, 3)))
	g.retryRng = rand.New(rand.NewSource(mixSeed(g.Seed, 4)))
	g.Samples = make([][]int64, len(g.Routes))
	g.FailedByRoute = make([]int, len(g.Routes))
	nslow := int(math.Round(g.SlowFraction * float64(g.Sessions)))
	g.sessions = make([]*openSession, g.Sessions)
	for i := range g.sessions {
		g.sessions[i] = &openSession{id: i, slow: i < nslow}
		if g.Retry != nil {
			g.sessions[i].budget = g.Retry.NewBudget()
		}
	}
	if t, ok := g.stream.Next(); ok {
		g.scheduleArrival(t)
	} else {
		g.drained = true
		g.maybeDone()
	}
}

func (g *OpenLoadGen) scheduleArrival(t int64) {
	g.Eng.At(t, func(now int64) {
		g.Generated++
		g.outstanding++
		req := &openReq{arrival: now, route: g.zipf.Pick()}
		if d := g.Routes[req.route].DeadlineCycles; d > 0 {
			req.deadline = now + d
		}
		s := g.sessions[g.sessRng.Intn(len(g.sessions))]
		if s.busy {
			s.queue = append(s.queue, req)
		} else {
			s.busy = true
			g.startRequest(s, req, now)
		}
		if nt, ok := g.stream.Next(); ok {
			g.scheduleArrival(nt)
		} else {
			g.drained = true
			// The request above can resolve synchronously (e.g. a refused
			// connect on an exhausted retry budget), in which case its
			// maybeDone ran before drained was set — re-check here.
			g.maybeDone()
		}
	})
}

func (g *OpenLoadGen) startRequest(s *openSession, req *openReq, now int64) {
	if req.deadline > 0 && now >= req.deadline {
		// The deadline passed while the request waited (session queue or
		// retry backoff): don't even connect.
		g.finish(s, req, now, OutcomeDeadline)
		return
	}
	req.attempts++
	g.ConnsTotal++
	g.inflight++
	if g.inflight > g.ConnsPeak {
		g.ConnsPeak = g.inflight
	}
	conn, err := g.Net.Connect(now, g.Port, func(done int64, data string) {
		g.inflight--
		g.finish(s, req, done, OutcomeCompleted)
	})
	if err != nil {
		// Connection refused: the server has not bound the port yet.
		g.Refused++
		g.inflight--
		g.retry(s, req, now)
		return
	}
	conn.Deadline = req.deadline
	conn.Priority = g.Routes[req.route].Priority
	conn.OnReset = func(resetAt int64) {
		g.Resets++
		g.inflight--
		g.retry(s, req, resetAt)
	}
	conn.OnShed = func(at int64) {
		g.inflight--
		g.finish(s, req, at, OutcomeShed)
	}
	conn.OnDeadline = func(at int64) {
		g.inflight--
		g.finish(s, req, at, OutcomeDeadline)
	}
	stall := g.Net.Faults.SlowClient(now)
	if stall > 0 {
		g.Stalls++
	}
	if s.slow {
		stall += g.SlowStall
	}
	conn.Send(now+stall, g.Routes[req.route].Request)
}

// retry re-issues a refused or reset request, or abandons it as gave-up when
// the attempt cap (or, with Retry armed, the session's token budget) is
// exhausted. Budgeted retries back off exponentially with seeded jitter;
// legacy retries keep the fixed LoadGen interval.
func (g *OpenLoadGen) retry(s *openSession, req *openReq, now int64) {
	limit := openRetryCap
	if g.Retry != nil {
		limit = g.Retry.AttemptCap()
	}
	if req.attempts >= limit {
		g.finish(s, req, now, OutcomeGaveUp)
		return
	}
	backoff := int64(openRetryBackoff)
	if g.Retry != nil {
		if !s.budget.TryConsume() {
			g.finish(s, req, now, OutcomeGaveUp)
			return
		}
		backoff = g.Retry.Backoff(req.attempts, g.retryRng.Float64())
	}
	g.Eng.At(now+backoff, func(at int64) { g.startRequest(s, req, at) })
}

// finish resolves a request with a terminal outcome and starts the session's
// next queued request, if any.
func (g *OpenLoadGen) finish(s *openSession, req *openReq, done int64, outcome string) {
	g.outstanding--
	switch outcome {
	case OutcomeCompleted:
		g.Completed++
		g.lastDone = done
		g.Samples[req.route] = append(g.Samples[req.route], done-req.arrival)
		if s.budget != nil {
			s.budget.Refund()
		}
		if g.OnComplete != nil {
			g.OnComplete(s.id, req.route, req.arrival, done)
		}
	case OutcomeShed:
		g.Shed++
		g.FailedByRoute[req.route]++
	case OutcomeGaveUp:
		g.GaveUp++
		g.FailedByRoute[req.route]++
	case OutcomeDeadline:
		g.DeadlineExceeded++
		g.FailedByRoute[req.route]++
	}
	if g.OnOutcome != nil {
		g.OnOutcome(s.id, req.route, req.arrival, done, outcome)
	}
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		g.startRequest(s, next, done)
	} else {
		s.busy = false
	}
	g.maybeDone()
}

func (g *OpenLoadGen) maybeDone() {
	if g.drained && g.outstanding == 0 && !g.doneFired {
		g.doneFired = true
		if g.OnDone != nil {
			g.OnDone()
		}
	}
}

// Throughput returns completed requests per virtual second.
func (g *OpenLoadGen) Throughput() float64 {
	if g.lastDone == 0 {
		return 0
	}
	return float64(g.Completed) / (float64(g.lastDone) / float64(vm.CyclesPerSecond))
}
