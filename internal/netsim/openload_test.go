package netsim

import (
	"math"
	"testing"

	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/rbregexp"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// ---------------------------------------------------------------------------
// Arrival-process property tests.

func collectArrivals(o ArrivalOpts) []int64 {
	s := NewArrivalStream(o)
	var out []int64
	for {
		t, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

var arrivalKinds = []ArrivalKind{ArrivalPoisson, ArrivalBursty, ArrivalDiurnal}

// TestArrivalStreamByteDeterministic: identical options yield the identical
// arrival sequence, element for element, for every process kind.
func TestArrivalStreamByteDeterministic(t *testing.T) {
	for _, k := range arrivalKinds {
		o := ArrivalOpts{Kind: k, Seed: 99, RatePerSec: 800, Horizon: 100_000_000}
		a, b := collectArrivals(o), collectArrivals(o)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d arrivals", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d: %d vs %d", k, i, a[i], b[i])
			}
		}
	}
}

// TestArrivalStreamOrderedWithinHorizon: times are nondecreasing and live in
// [0, Horizon).
func TestArrivalStreamOrderedWithinHorizon(t *testing.T) {
	for _, k := range arrivalKinds {
		o := ArrivalOpts{Kind: k, Seed: 3, RatePerSec: 500, Horizon: 50_000_000}
		ts := collectArrivals(o)
		if len(ts) == 0 {
			t.Fatalf("%s: no arrivals", k)
		}
		prev := int64(0)
		for i, v := range ts {
			if v < prev || v < 0 || v >= o.Horizon {
				t.Fatalf("%s: arrival %d = %d (prev %d, horizon %d)", k, i, v, prev, o.Horizon)
			}
			prev = v
		}
	}
}

// TestArrivalStreamEmpiricalRate: every process keeps its long-run mean at
// RatePerSec. The horizon spans whole modulation periods (8 bursty cycles,
// one diurnal sine), so the expected count is exactly rate*seconds; the
// observed count must land within 4 standard deviations of a Poisson of
// that mean.
func TestArrivalStreamEmpiricalRate(t *testing.T) {
	const (
		rate    = 500.0
		horizon = int64(1_000_000_000) // 200 virtual seconds
	)
	want := rate * float64(horizon) / float64(vm.CyclesPerSecond)
	tol := 4 * math.Sqrt(want)
	for i, k := range arrivalKinds {
		o := ArrivalOpts{Kind: k, Seed: int64(41 + i), RatePerSec: rate, Horizon: horizon}
		got := float64(len(collectArrivals(o)))
		if math.Abs(got-want) > tol {
			t.Fatalf("%s: %v arrivals, want %v +- %v", k, got, want, tol)
		}
	}
}

// TestArrivalBurstyContrast: within each on/off period the on-phase rate
// must far exceed the off-phase rate (the shape is 1 vs 0.125; demand at
// least 4x to leave sampling noise room).
func TestArrivalBurstyContrast(t *testing.T) {
	o := ArrivalOpts{Kind: ArrivalBursty, Seed: 5, RatePerSec: 2000,
		Horizon: 800_000_000, Period: 100_000_000}
	on, off := 0, 0
	for _, v := range collectArrivals(o) {
		if v%o.Period < int64(burstOnFrac*float64(o.Period)) {
			on++
		} else {
			off++
		}
	}
	onRate := float64(on) / burstOnFrac
	offRate := float64(off) / (1 - burstOnFrac)
	if off == 0 || onRate < 4*offRate {
		t.Fatalf("burst contrast too weak: on=%d off=%d (rates %.0f vs %.0f)", on, off, onRate, offRate)
	}
}

// TestArrivalDiurnalRamp: the sine trough (start of the period) must see
// far fewer arrivals than the peak (middle of the period).
func TestArrivalDiurnalRamp(t *testing.T) {
	o := ArrivalOpts{Kind: ArrivalDiurnal, Seed: 6, RatePerSec: 2000, Horizon: 1_000_000_000}
	trough, peak := 0, 0
	tenth := o.Horizon / 10
	for _, v := range collectArrivals(o) {
		if v < tenth {
			trough++
		} else if v >= 45*o.Horizon/100 && v < 45*o.Horizon/100+tenth {
			peak++
		}
	}
	if trough == 0 || float64(peak) < 2*float64(trough) {
		t.Fatalf("diurnal ramp too weak: trough=%d peak=%d", trough, peak)
	}
}

// TestZipfPickerSkewedAndDeterministic: same seed, same picks; empirical
// popularity is ordered by rank and roughly matches the 1/(i+1)^s weights.
func TestZipfPickerSkewedAndDeterministic(t *testing.T) {
	const n, draws = 6, 60_000
	za, zb := NewZipfPicker(77, n, 1.1), NewZipfPicker(77, n, 1.1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		a, b := za.Pick(), zb.Pick()
		if a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
		counts[a]++
	}
	for i := 1; i < n; i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("popularity not rank-ordered: counts=%v", counts)
		}
	}
	// Rank-0 weight is 1/H where H = sum 1/(i+1)^1.1; check within 10%.
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), 1.1)
	}
	want := float64(draws) / total
	if math.Abs(float64(counts[0])-want) > 0.1*want {
		t.Fatalf("rank-0 count %d, want ~%.0f", counts[0], want)
	}
}

// TestMixSeedLaneSeparation: the derived stream seeds are distinct across
// lanes and across base seeds (no lane collapses onto another).
func TestMixSeedLaneSeparation(t *testing.T) {
	seen := map[int64]bool{}
	for _, seed := range []int64{0, 1, 7, -9, 1 << 40} {
		for lane := uint64(0); lane < 8; lane++ {
			v := mixSeed(seed, lane)
			if seen[v] {
				t.Fatalf("collision at seed=%d lane=%d", seed, lane)
			}
			seen[v] = true
		}
	}
}

// ---------------------------------------------------------------------------
// Open-loop generator against a live server: session affinity and fault
// interaction.

// poolEchoServer serves echo with a 4-worker bounded pool, so open-loop
// tests cannot run into the VM's transaction-context cap.
const poolEchoServer = `
def handle(s)
  req = s.read_request
  s.write("ECHO:" + req)
  s.close
end
server = TCPServer.new(9090)
w = 1
while w < 4
  Thread.new do
    while true
      handle(server.accept)
    end
  end
  w += 1
end
while true
  handle(server.accept)
end
`

type openDone struct {
	session, route int
	arrival, done  int64
}

// runOpenEcho drives the pool echo server open-loop under an optional fault
// spec and returns the generator, the completion log, the aggregator and
// the per-kind event tally.
func runOpenEcho(t *testing.T, specText string, g *OpenLoadGen) ([]openDone, *trace.Aggregator, kindCounter) {
	t.Helper()
	agg := trace.NewAggregator()
	kinds := kindCounter{}
	opt := vm.DefaultOptions(htm.XeonE3(), vm.ModeGIL)
	opt.Trace = trace.NewRecorder(agg, kinds)
	if specText != "" {
		spec, err := fault.ParseSpec(specText)
		if err != nil {
			t.Fatal(err)
		}
		opt.Faults = spec
	}
	machine := vm.New(opt)
	net := NewNetwork(machine.Engine)
	net.Tracer = machine.Opt.Trace
	net.Faults = machine.Faults
	Install(machine, net)
	rbregexp.Install(machine)
	iseq, err := machine.CompileSource(poolEchoServer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	var log []openDone
	g.Net, g.Eng, g.Port = net, machine.Engine, 9090
	g.OnDone = machine.Engine.Stop
	g.OnComplete = func(session, route int, arrival, done int64) {
		log = append(log, openDone{session, route, arrival, done})
	}
	g.Start()
	if _, err := machine.Run(iseq); err != nil {
		t.Fatal(err)
	}
	return log, agg, kinds
}

func echoRoutes() []OpenRoute {
	return []OpenRoute{
		{Name: "ping", Request: "ping\r\n", SLOCycles: 1_000_000},
		{Name: "pong", Request: "pong\r\n", SLOCycles: 1_000_000},
	}
}

// TestOpenLoadSessionAffinity: each session is a serial client — its
// requests complete in arrival order, with nondecreasing completion times,
// even when arrivals outpace it and queue behind the in-flight request.
func TestOpenLoadSessionAffinity(t *testing.T) {
	g := &OpenLoadGen{
		Seed: 21,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 400, Horizon: 30_000_000},
		Routes:   echoRoutes(),
		Sessions: 5, // few sessions at high rate: per-session queues must form
	}
	log, _, _ := runOpenEcho(t, "", g)
	if g.Completed != g.Generated || g.Completed == 0 {
		t.Fatalf("completed %d of %d", g.Completed, g.Generated)
	}
	if len(log) != g.Completed {
		t.Fatalf("OnComplete saw %d of %d completions", len(log), g.Completed)
	}
	lastArrival := map[int]int64{}
	lastDone := map[int]int64{}
	queued := false
	for _, d := range log {
		if d.session < 0 || d.session >= g.Sessions {
			t.Fatalf("completion on unknown session %d", d.session)
		}
		if d.arrival < lastArrival[d.session] {
			t.Fatalf("session %d completed out of arrival order: %d after %d",
				d.session, d.arrival, lastArrival[d.session])
		}
		if d.done < lastDone[d.session] {
			t.Fatalf("session %d done times regressed: %d after %d",
				d.session, d.done, lastDone[d.session])
		}
		if d.arrival < lastDone[d.session] {
			queued = true // arrived while a prior request was still in flight
		}
		lastArrival[d.session], lastDone[d.session] = d.arrival, d.done
	}
	if !queued {
		t.Fatalf("no request ever queued behind its session: affinity untested at this rate")
	}
}

// TestOpenLoadFaultAccounting: injected connection resets and slow-client
// stalls land on the generator's connections, every request still
// completes (retries keep the original arrival time), and the generator's
// counters agree with the trace stream's fault attribution.
func TestOpenLoadFaultAccounting(t *testing.T) {
	g := &OpenLoadGen{
		Seed: 8,
		Arrivals: ArrivalOpts{Kind: ArrivalPoisson,
			RatePerSec: 150, Horizon: 40_000_000},
		Routes:   echoRoutes(),
		Sessions: 12,
	}
	log, agg, kinds := runOpenEcho(t, "connreset=0.08,slowclient=0.1:30000,seed=4", g)
	if g.Completed != g.Generated || g.Completed == 0 {
		t.Fatalf("completed %d of %d", g.Completed, g.Generated)
	}
	if g.Resets == 0 || g.Stalls == 0 {
		t.Fatalf("faults armed but none injected: resets=%d stalls=%d", g.Resets, g.Stalls)
	}
	if kinds[trace.KindNetReset] != uint64(g.Resets) {
		t.Fatalf("net-reset events = %d, generator counted %d", kinds[trace.KindNetReset], g.Resets)
	}
	if agg.Faults[fault.ChanConnReset] != uint64(g.Resets) {
		t.Fatalf("reset attribution %d, generator counted %d", agg.Faults[fault.ChanConnReset], g.Resets)
	}
	if agg.Faults[fault.ChanSlowClient] != uint64(g.Stalls) {
		t.Fatalf("slow-client attribution %d, generator counted %d", agg.Faults[fault.ChanSlowClient], g.Stalls)
	}
	// A reset retry reconnects: total connections must exceed completions.
	if g.ConnsTotal != g.Completed+g.Resets+g.Refused {
		t.Fatalf("conn accounting: total=%d completed=%d resets=%d refused=%d",
			g.ConnsTotal, g.Completed, g.Resets, g.Refused)
	}
	// Latency is measured from arrival: every sample is positive and the
	// completion log agrees with the sample count.
	n := 0
	for _, s := range g.Samples {
		n += len(s)
	}
	if n != len(log) {
		t.Fatalf("samples %d vs completions %d", n, len(log))
	}
}

// TestOpenLoadDeterministicUnderFaults: the full open-loop + fault stack
// reproduces byte-identical counters and samples across runs.
func TestOpenLoadDeterministicUnderFaults(t *testing.T) {
	run := func() *OpenLoadGen {
		g := &OpenLoadGen{
			Seed: 31,
			Arrivals: ArrivalOpts{Kind: ArrivalBursty,
				RatePerSec: 120, Horizon: 30_000_000},
			Routes:       echoRoutes(),
			Sessions:     8,
			SlowFraction: 0.25,
			SlowStall:    50_000,
		}
		runOpenEcho(t, "connreset=0.05,slowclient=0.08:20000,seed=9", g)
		return g
	}
	a, b := run(), run()
	if a.Generated != b.Generated || a.Completed != b.Completed ||
		a.Resets != b.Resets || a.Stalls != b.Stalls ||
		a.ConnsTotal != b.ConnsTotal || a.ConnsPeak != b.ConnsPeak {
		t.Fatalf("counters diverge: %+v vs %+v", a, b)
	}
	for r := range a.Samples {
		for i := range a.Samples[r] {
			if a.Samples[r][i] != b.Samples[r][i] {
				t.Fatalf("route %d sample %d: %d vs %d", r, i, a.Samples[r][i], b.Samples[r][i])
			}
		}
	}
}
