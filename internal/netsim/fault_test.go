package netsim

import (
	"testing"

	"htmgil/internal/fault"
	"htmgil/internal/htm"
	"htmgil/internal/rbregexp"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// kindCounter tallies trace events by kind.
type kindCounter map[trace.Kind]uint64

func (k kindCounter) Emit(ev trace.Event) { k[ev.Kind]++ }

// runServerFaults runs the echo server with the given fault spec armed on
// the network fabric and returns the load generator, the trace aggregator
// and a per-kind event tally observing the run.
func runServerFaults(t *testing.T, specText string, clients, requests int) (*LoadGen, *trace.Aggregator, kindCounter) {
	t.Helper()
	spec, err := fault.ParseSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	agg := trace.NewAggregator()
	kinds := kindCounter{}
	opt := vm.DefaultOptions(htm.XeonE3(), vm.ModeGIL)
	opt.Trace = trace.NewRecorder(agg, kinds)
	opt.Faults = spec
	machine := vm.New(opt)
	net := NewNetwork(machine.Engine)
	net.Tracer = machine.Opt.Trace
	net.Faults = machine.Faults
	Install(machine, net)
	rbregexp.Install(machine)
	iseq, err := machine.CompileSource(echoServer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	gen := &LoadGen{Net: net, Eng: machine.Engine, Port: 9090, Request: "ping\r\n",
		ThinkTime: 5000, Target: requests, OnDone: machine.Engine.Stop}
	gen.Start(clients)
	if _, err := machine.Run(iseq); err != nil {
		t.Fatal(err)
	}
	return gen, agg, kinds
}

// TestNetChaosAllRequestsComplete: with resets, latency spikes and
// slow-client stalls armed, every request must still complete — faults slow
// the run down, never wedge or corrupt it.
func TestNetChaosAllRequestsComplete(t *testing.T) {
	const spec = "connreset=0.15,latspike=0.2:50000,slowclient=0.1:20000"
	gen, agg, kinds := runServerFaults(t, spec, 4, 40)
	if gen.Completed != 40 {
		t.Fatalf("completed = %d, want 40", gen.Completed)
	}
	if gen.Resets == 0 {
		t.Fatalf("reset channel armed at p=0.15 but no connection was dropped")
	}
	if gen.Stalls == 0 {
		t.Fatalf("slow-client channel armed but no stall fired")
	}
	// The injected faults must be attributed in the trace stream.
	if agg.Faults[fault.ChanConnReset] == 0 || agg.Faults[fault.ChanLatSpike] == 0 ||
		agg.Faults[fault.ChanSlowClient] == 0 {
		t.Fatalf("fault attribution incomplete: %v", agg.Faults)
	}
	// Every dropped connect must also appear as a net-reset event (the
	// structured replacement for the old stderr Debug tracing).
	if kinds[trace.KindNetReset] != uint64(gen.Resets) {
		t.Fatalf("net-reset events = %d, want %d", kinds[trace.KindNetReset], gen.Resets)
	}
}

// TestNetChaosDeterministic: the same spec and seed reproduce the same
// reset/stall schedule and the same completion cycle count.
func TestNetChaosDeterministic(t *testing.T) {
	const spec = "connreset=0.1,latspike=0.1:30000,slowclient=0.05,seed=11"
	g1, a1, _ := runServerFaults(t, spec, 4, 30)
	g2, a2, _ := runServerFaults(t, spec, 4, 30)
	if g1.Resets != g2.Resets || g1.Stalls != g2.Stalls || g1.TotalWait != g2.TotalWait {
		t.Fatalf("nondeterministic: resets %d/%d stalls %d/%d wait %d/%d",
			g1.Resets, g2.Resets, g1.Stalls, g2.Stalls, g1.TotalWait, g2.TotalWait)
	}
	for ch, n := range a1.Faults {
		if a2.Faults[ch] != n {
			t.Fatalf("fault channel %s: %d vs %d", ch, n, a2.Faults[ch])
		}
	}
}

// TestNetTraceEventsReplaceDebug: a clean traced run emits the structured
// connect/arrive/accept lifecycle for every request.
func TestNetTraceEventsReplaceDebug(t *testing.T) {
	gen, agg, kinds := runServerFaults(t, "", 2, 10)
	if gen.Completed != 10 {
		t.Fatalf("completed = %d", gen.Completed)
	}
	if kinds[trace.KindNetConnect] < 10 || kinds[trace.KindNetAccept] < 10 {
		t.Fatalf("net lifecycle events missing: %v", kinds)
	}
	if agg.NetEvents == 0 {
		t.Fatalf("aggregator counted no network events")
	}
}
