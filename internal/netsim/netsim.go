// Package netsim provides virtual-time TCP-ish networking for the server
// benchmarks: listeners and stream connections inside the simulated
// machine, plus Go-level load generators standing in for the paper's HTTP
// clients (which consumed <5% CPU on a separate machine and are therefore
// modelled outside the interpreter).
//
// Blocking socket operations are exposed to the interpreter as blocking
// native methods, so they release the GIL — and abort transactions as
// restricted operations — exactly like CRuby's I/O.
package netsim

import (
	"fmt"
	"strings"

	"htmgil/internal/fault"
	"htmgil/internal/object"
	"htmgil/internal/resilience"
	"htmgil/internal/sched"
	"htmgil/internal/trace"
	"htmgil/internal/vm"
)

// Latency constants (virtual cycles).
const (
	connectLatency = 20_000
	writeLatency   = 8_000
	perByteCost    = 4
)

// Network is the simulated network fabric.
type Network struct {
	eng       *sched.Engine
	listeners map[int64]*Listener

	// Tracer, when non-nil, receives net-connect/net-arrive/net-accept/
	// net-park/net-reset events — the structured replacement for the old
	// stderr Debug tracing, sharing the stream (and ordering) of the
	// transaction events.
	Tracer *trace.Recorder

	// Faults, when non-nil, injects connection resets, latency spikes and
	// slow-client stalls into the fabric.
	Faults *fault.Injector

	// Res, when non-nil, is the server's request-level resilience layer:
	// its admission gate and brownout controller judge every connection at
	// backlog-arrival time, its deadline table tracks which worker serves
	// which deadline, and expired requests are cancelled in the backlog and
	// in read_request instead of occupying a worker.
	Res *resilience.Server
}

// NewNetwork creates a network bound to the machine's scheduler.
func NewNetwork(eng *sched.Engine) *Network {
	return &Network{eng: eng, listeners: make(map[int64]*Listener)}
}

// emit sends one network trace event (no-op without a Tracer).
func (n *Network) emit(t int64, kind trace.Kind, thread int, cycles int64, note string) {
	if n.Tracer == nil {
		return
	}
	ev := trace.Ev(t, kind)
	ev.Thread = thread
	ev.Cycles = cycles
	ev.Note = note
	n.Tracer.Emit(ev)
}

// Listener is a bound server port.
type Listener struct {
	net     *Network
	port    int64
	backlog []*Conn
	// acceptor is the parked server thread's wake callback.
	acceptors []func(now int64)
}

// Conn is one established connection. The server side is driven by the
// interpreter; the client side by a load generator.
type Conn struct {
	net *Network
	// toServer holds request bytes awaiting the server.
	toServer strings.Builder
	// onResponse delivers the server's reply to the client side.
	onResponse func(now int64, data string)
	// OnReset, when set, fires instead of delivery if the connection was
	// dropped in transit by an injected reset; the connection never
	// reaches the listener.
	OnReset func(at int64)
	// Deadline is the absolute virtual-cycle deadline of the request this
	// connection carries (0 = none). The server cancels expired requests in
	// the backlog and at read_request instead of serving them.
	Deadline int64
	// Priority is the route priority the admission/brownout layer judges:
	// 0 = essential (always served), higher = shed earlier.
	Priority int
	// OnShed fires when the admission gate rejects the connection at the
	// listener; it never reaches the backlog.
	OnShed func(at int64)
	// OnDeadline fires when the server cancels the request past its
	// deadline (backlog expiry or read_request cancellation).
	OnDeadline func(at int64)
	// serverReader is a parked server thread waiting for request data.
	serverReader func(now int64)
	// arrived is when the connection joined the backlog (queue-delay
	// accounting for the brownout controller).
	arrived   int64
	closed    bool
	cancelled bool
}

// Listen binds a port.
func (n *Network) Listen(port int64) *Listener {
	l := &Listener{net: n, port: port}
	n.listeners[port] = l
	return l
}

// Connect opens a client connection to port at virtual time now and
// returns the connection after simulated connect latency; onResponse fires
// when the server writes.
func (n *Network) Connect(now int64, port int64, onResponse func(now int64, data string)) (*Conn, error) {
	l := n.listeners[port]
	if l == nil {
		return nil, fmt.Errorf("netsim: connection refused on port %d", port)
	}
	c := &Conn{net: n, onResponse: onResponse}
	latency := int64(connectLatency) + n.Faults.LatencySpike(now)
	n.emit(now, trace.KindNetConnect, -1, latency, "")
	if n.Faults.ConnReset(now) {
		// The connect dies in transit: it never reaches the listener, and
		// the client learns at would-be-arrival time.
		n.eng.At(now+latency, func(at int64) {
			n.emit(at, trace.KindNetReset, -1, 0, "")
			if c.OnReset != nil {
				c.OnReset(at)
			}
		})
		return c, nil
	}
	n.eng.At(now+latency, func(at int64) {
		if ok, _ := n.Res.Admit(at, len(l.backlog), c.Priority); !ok {
			// Shed at the door: the connection never joins the backlog,
			// so overload is rejected for the cost of one callback
			// instead of queueing toward collapse. The Admit call has
			// already recorded the shed and emitted the net-shed event.
			if c.OnShed != nil {
				c.OnShed(at)
			}
			return
		}
		c.arrived = at
		l.backlog = append(l.backlog, c)
		n.emit(at, trace.KindNetArrive, -1, 0,
			fmt.Sprintf("backlog=%d acceptors=%d", len(l.backlog), len(l.acceptors)))
		if len(l.acceptors) > 0 {
			wake := l.acceptors[0]
			l.acceptors = l.acceptors[1:]
			wake(at)
		}
	})
	return c, nil
}

// expire cancels a request past its deadline: the connection is marked dead
// (a late server write is dropped), the cancellation is recorded and traced,
// and the client learns through OnDeadline.
func (n *Network) expire(c *Conn, now int64, thread int, where string) {
	c.cancelled = true
	if n.Res != nil {
		n.Res.RecordExpired(now, thread, where)
	} else {
		n.emit(now, trace.KindDeadlineExceeded, thread, 0, where)
	}
	if c.OnDeadline != nil {
		c.OnDeadline(now)
	}
}

// Send delivers request bytes from the client to the server side.
func (c *Conn) Send(now int64, data string) {
	latency := writeLatency + int64(len(data))*perByteCost + c.net.Faults.LatencySpike(now)
	c.net.eng.At(now+latency, func(at int64) {
		c.toServer.WriteString(data)
		if c.serverReader != nil {
			wake := c.serverReader
			c.serverReader = nil
			wake(at)
		}
	})
}

// Install adds the socket classes to a VM: TCPServer.new(port),
// TCPServer#accept, Socket#read_request, Socket#write, Socket#close.
func Install(machine *vm.VM, n *Network) {
	serverC := machine.DefineClass("TCPServer", nil)
	sockC := machine.DefineClass("Socket", nil)

	machine.DefineStatic(serverC, "new", 1, false, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		if args[0].Kind != object.KFixnum {
			return object.Nil, fmt.Errorf("TCPServer.new expects a port number")
		}
		o, err := t.AllocNativeObject(object.TServer, serverC, n.Listen(args[0].Fix))
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})

	machine.DefineNative(serverC, "accept", 0, true, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		l := self.Ref.Native.(*Listener)
		// Pop the backlog, cancelling any connection whose deadline passed
		// while it queued — an expired request must not occupy a worker.
		var conn *Conn
		for len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			if c.Deadline > 0 && now >= c.Deadline {
				n.expire(c, now, t.Sched().ID, "backlog")
				continue
			}
			conn = c
			break
		}
		if conn == nil {
			sth := t.Sched()
			l.acceptors = append(l.acceptors, func(at int64) {
				machine.Engine.Wake(sth, at)
			})
			n.emit(now, trace.KindNetPark, sth.ID, 0, "accept")
			return object.Nil, vm.ErrBlocked
		}
		n.emit(now, trace.KindNetAccept, t.Sched().ID, 0,
			fmt.Sprintf("backlog=%d", len(l.backlog)+1))
		// The backlog wait of the accepted connection is the brownout
		// controller's load signal.
		n.Res.ObserveQueueDelay(now, now-conn.arrived)
		if conn.Deadline > 0 && n.Res != nil && n.Res.Deadlines != nil {
			n.Res.Deadlines.Set(t.Sched().ID, conn.Deadline)
		}
		o, err := t.AllocNativeObject(object.TSocket, sockC, conn)
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})

	machine.DefineNative(sockC, "read_request", 0, true, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		conn := self.Ref.Native.(*Conn)
		if conn.Deadline > 0 && now >= conn.Deadline {
			// The request's clock ran out while its bytes were in flight:
			// cancel instead of serving, freeing this worker immediately.
			conn.toServer.Reset()
			if n.Res != nil && n.Res.Deadlines != nil {
				n.Res.Deadlines.Clear(t.Sched().ID)
			}
			n.expire(conn, now, t.Sched().ID, "read")
			return object.Nil, nil
		}
		if conn.toServer.Len() == 0 {
			sth := t.Sched()
			conn.serverReader = func(at int64) { machine.Engine.Wake(sth, at) }
			if conn.Deadline > 0 {
				// Wake the worker at the deadline even if the client never
				// delivers; the re-invocation hits the expiry branch above,
				// so slow clients cannot pin workers past the deadline.
				c := conn
				machine.Engine.At(conn.Deadline, func(at int64) {
					if c.serverReader != nil && !c.cancelled {
						wake := c.serverReader
						c.serverReader = nil
						wake(at)
					}
				})
			}
			n.emit(now, trace.KindNetPark, sth.ID, 0, "read")
			return object.Nil, vm.ErrBlocked
		}
		data := conn.toServer.String()
		conn.toServer.Reset()
		o, cost, err := t.AllocString(data)
		_ = cost
		if err != nil {
			return object.Nil, err
		}
		return object.RefVal(o), nil
	})

	machine.DefineNative(sockC, "write", 1, true, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		conn := self.Ref.Native.(*Conn)
		if args[0].Kind != object.KRef || args[0].Ref.Type != object.TString {
			return object.Nil, fmt.Errorf("Socket#write expects a String")
		}
		data := args[0].Ref.Str
		if conn.onResponse != nil && !conn.closed && !conn.cancelled {
			cb := conn.onResponse
			latency := writeLatency + int64(len(data))*perByteCost + n.Faults.LatencySpike(now)
			machine.Engine.At(now+latency, func(at int64) {
				cb(at, data)
			})
		}
		return object.FixVal(int64(len(data))), nil
	})

	machine.DefineNative(sockC, "close", 0, true, func(t *vm.RThread, self object.Value, args []object.Value, blk vm.BlockArg, now int64) (object.Value, error) {
		conn := self.Ref.Native.(*Conn)
		conn.closed = true
		if n.Res != nil && n.Res.Deadlines != nil {
			n.Res.Deadlines.Clear(t.Sched().ID)
		}
		return object.Nil, nil
	})
}

// LoadGen drives closed-loop clients: each client connects, sends one
// request, waits for the response, thinks briefly, and repeats.
type LoadGen struct {
	Net       *Network
	Eng       *sched.Engine
	Port      int64
	Request   string
	ThinkTime int64

	Completed  int
	TotalWait  int64
	firstStart int64
	lastDone   int64

	// Refused counts connection attempts made before the server was up.
	Refused int
	// Resets counts connections dropped by injected resets (each is
	// retried after the usual client backoff).
	Resets int
	// Stalls counts injected slow-client stalls.
	Stalls int

	// Stop ends the run after this many total responses.
	Target int
	OnDone func()
}

// Start launches n clients at virtual time 0.
func (g *LoadGen) Start(nclients int) {
	for i := 0; i < nclients; i++ {
		start := int64(i) * 1_000 // slight stagger
		g.runClient(start)
	}
}

func (g *LoadGen) runClient(at int64) {
	g.Eng.At(at, func(now int64) {
		if g.Target > 0 && g.Completed >= g.Target {
			return
		}
		issued := now
		conn, err := g.Net.Connect(now, g.Port, func(done int64, data string) {
			g.Completed++
			g.TotalWait += done - issued
			g.lastDone = done
			if g.Target > 0 && g.Completed >= g.Target {
				if g.OnDone != nil {
					g.OnDone()
				}
				return
			}
			g.runClient(done + g.ThinkTime)
		})
		if err != nil {
			// Connection refused: the server has not bound the port yet.
			// Real clients see ECONNREFUSED and retry.
			g.Refused++
			g.runClient(now + 50_000)
			return
		}
		conn.OnReset = func(resetAt int64) {
			// The connect was dropped in transit; back off and retry like
			// a refused connection.
			g.Resets++
			g.runClient(resetAt + 50_000)
		}
		// An injected slow-client stall delays the request write, pinning
		// a server thread in read_request for the duration.
		stall := g.Net.Faults.SlowClient(now)
		if stall > 0 {
			g.Stalls++
		}
		conn.Send(now+stall, g.Request)
	})
}

// Throughput returns completed requests per virtual second (CyclesPerSec
// virtual cycles).
func (g *LoadGen) Throughput() float64 {
	if g.lastDone == 0 {
		return 0
	}
	return float64(g.Completed) / (float64(g.lastDone) / float64(vm.CyclesPerSecond))
}
