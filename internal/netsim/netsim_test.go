package netsim

import (
	"strings"
	"testing"

	"htmgil/internal/htm"
	"htmgil/internal/rbregexp"
	"htmgil/internal/vm"
)

// echoServer is a minimal mini-Ruby server used by the tests.
const echoServer = `
server = TCPServer.new(9090)
while true
  sock = server.accept
  Thread.new(sock) do |s|
    req = s.read_request
    s.write("ECHO:" + req)
    s.close
  end
end
`

func runServer(t *testing.T, mode vm.Mode, clients, requests int) (*LoadGen, error) {
	t.Helper()
	opt := vm.DefaultOptions(htm.XeonE3(), mode)
	machine := vm.New(opt)
	net := NewNetwork(machine.Engine)
	Install(machine, net)
	rbregexp.Install(machine)
	iseq, err := machine.CompileSource(echoServer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	gen := &LoadGen{Net: net, Eng: machine.Engine, Port: 9090, Request: "ping\r\n",
		ThinkTime: 5000, Target: requests, OnDone: machine.Engine.Stop}
	gen.Start(clients)
	_, err = machine.Run(iseq)
	return gen, err
}

func TestEchoRoundTrips(t *testing.T) {
	gen, err := runServer(t, vm.ModeGIL, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Completed != 10 {
		t.Fatalf("completed = %d", gen.Completed)
	}
	if gen.TotalWait <= 0 {
		t.Fatalf("no latency recorded")
	}
}

func TestResponseContent(t *testing.T) {
	opt := vm.DefaultOptions(htm.XeonE3(), vm.ModeGIL)
	machine := vm.New(opt)
	net := NewNetwork(machine.Engine)
	Install(machine, net)
	iseq, err := machine.CompileSource(echoServer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	var got string
	// Connect after the server has had time to bind the port.
	machine.Engine.At(100_000, func(now int64) {
		conn, err := net.Connect(now, 9090, func(done int64, data string) {
			got = data
			machine.Engine.Stop()
		})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		conn.Send(now, "hello")
	})
	if _, err := machine.Run(iseq); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "ECHO:hello") {
		t.Fatalf("response = %q", got)
	}
}

func TestConnectionRefusedRetries(t *testing.T) {
	// Clients that start before the server binds must eventually succeed.
	gen, err := runServer(t, vm.ModeGIL, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Completed != 20 {
		t.Fatalf("completed = %d", gen.Completed)
	}
	if gen.Refused == 0 {
		t.Fatalf("expected early refusals before the server bound the port")
	}
}

func TestConcurrentClientsAllServed(t *testing.T) {
	for _, mode := range []vm.Mode{vm.ModeGIL, vm.ModeHTM} {
		gen, err := runServer(t, mode, 6, 60)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if gen.Completed != 60 {
			t.Fatalf("%v: completed = %d", mode, gen.Completed)
		}
	}
}

func TestThroughputPositive(t *testing.T) {
	gen, err := runServer(t, vm.ModeGIL, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Throughput() <= 0 {
		t.Fatalf("throughput = %f", gen.Throughput())
	}
}
