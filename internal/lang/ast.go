package lang

// Node is any AST node. Statements and expressions are unified: every node
// yields a value (Ruby semantics); statement-position values are dropped.
type Node interface{ Line() int }

type base struct{ Ln int }

// Line returns the source line of the node.
func (b base) Line() int { return b.Ln }

// IntLit is an integer literal.
type IntLit struct {
	base
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	base
	Val float64
}

// StrSeg is one segment of a (possibly interpolated) string literal.
type StrSeg struct {
	Lit  string
	Expr Node // non-nil for #{...} segments
}

// StrLit is a string literal with optional interpolations.
type StrLit struct {
	base
	Segs []StrSeg
}

// SymLit is a symbol literal.
type SymLit struct {
	base
	Name string
}

// NilLit is the nil literal.
type NilLit struct{ base }

// BoolLit is true or false.
type BoolLit struct {
	base
	Val bool
}

// SelfLit is the self expression.
type SelfLit struct{ base }

// ArrayLit is [e1, e2, ...].
type ArrayLit struct {
	base
	Elems []Node
}

// HashLit is {k1 => v1, ...}.
type HashLit struct {
	base
	Keys, Vals []Node
}

// RangeLit is lo..hi (Excl true for lo...hi).
type RangeLit struct {
	base
	Lo, Hi Node
	Excl   bool
}

// LocalRef reads a local variable.
type LocalRef struct {
	base
	Name string
}

// IvarRef reads an instance variable (@x).
type IvarRef struct {
	base
	Name string
}

// CvarRef reads a class variable (@@x).
type CvarRef struct {
	base
	Name string
}

// GvarRef reads a global variable ($x).
type GvarRef struct {
	base
	Name string
}

// ConstRef reads a constant.
type ConstRef struct {
	base
	Name string
}

// Assign assigns Value to Target (a LocalRef, IvarRef, CvarRef, GvarRef,
// ConstRef, Index, or attribute Call with no arguments).
type Assign struct {
	base
	Target Node
	Value  Node
}

// BinOp is a binary operator that compiles to an opt_* bytecode or a send.
type BinOp struct {
	base
	Op   string
	L, R Node
}

// AndOr is short-circuit && or ||.
type AndOr struct {
	base
	Op   string // "&&" or "||"
	L, R Node
}

// UnOp is unary - or !.
type UnOp struct {
	base
	Op string
	X  Node
}

// Index is recv[args...].
type Index struct {
	base
	Recv Node
	Args []Node
}

// Block is a literal block ({ |x| ... } or do |x| ... end).
type Block struct {
	base
	Params []string
	Body   []Node
}

// Call invokes Name on Recv (nil Recv = self / functional call).
type Call struct {
	base
	Recv  Node
	Name  string
	Args  []Node
	Block *Block
}

// Yield invokes the current method's block.
type Yield struct {
	base
	Args []Node
}

// If is if/unless with optional elsif chain flattened into Else.
type If struct {
	base
	Cond Node
	Then []Node
	Else []Node
}

// While is while/until ... end.
type While struct {
	base
	Cond  Node
	Body  []Node
	Until bool
}

// Break exits the innermost loop.
type Break struct {
	base
	Val Node
}

// Next continues the innermost loop or returns from the block iteration.
type Next struct {
	base
	Val Node
}

// Return returns from the current method.
type Return struct {
	base
	Val Node
}

// Def defines a method (on the enclosing class, or at toplevel on Object).
type Def struct {
	base
	Name   string
	Params []string
	Body   []Node
}

// ClassDef defines or reopens a class.
type ClassDef struct {
	base
	Name      string
	SuperName string // "" for Object
	Body      []Node
}

// Program is a parsed source file.
type Program struct {
	Body []Node
}
