// Package lang contains the mini-Ruby front end: a lexer and a
// recursive-descent parser producing the AST consumed by internal/compile.
//
// The language is the subset of Ruby 1.9 exercised by the paper's
// workloads: classes, methods, blocks with captured locals, instance/class/
// global variables, Fixnum/Float/String/Symbol/Array/Hash/Range literals
// (with string interpolation), the usual operators and control flow, and
// thread primitives provided as library classes by the VM.
package lang

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TNewline
	TInt
	TFloat
	TString // with .Parts for interpolation
	TSymbol
	TIdent
	TConst
	TIvar // @x
	TCvar // @@x
	TGvar // $x
	TKeyword
	TOp
)

// Token is one lexeme. For interpolated strings, Parts alternates literal
// segments and nil markers; Exprs holds the source of each interpolation.
type Token struct {
	Kind  TokKind
	Text  string
	Int   int64
	Float float64
	Line  int

	// StrParts is non-nil for interpolated strings: literal fragments
	// interleaved with interpolation sources (IsExpr true).
	StrParts []StrPart
}

// StrPart is a fragment of a string literal.
type StrPart struct {
	Lit    string
	Expr   string // source text of #{...}; empty for literal fragments
	IsExpr bool
}

var keywords = map[string]bool{
	"def": true, "end": true, "if": true, "elsif": true, "else": true,
	"unless": true, "while": true, "until": true, "break": true,
	"next": true, "return": true, "class": true, "self": true,
	"true": true, "false": true, "nil": true, "do": true, "then": true,
	"yield": true, "and": true, "or": true, "not": true,
}

// Lexer turns mini-Ruby source into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	err  error
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1} }

func (l *Lexer) errorf(format string, args ...any) Token {
	if l.err == nil {
		l.err = fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
	}
	return Token{Kind: TEOF, Line: l.line}
}

// Err returns the first lexing error, if any.
func (l *Lexer) Err() error { return l.err }

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLower(c byte) bool  { return c >= 'a' && c <= 'z' || c == '_' }
func isUpper(c byte) bool  { return c >= 'A' && c <= 'Z' }
func isLetter(c byte) bool { return isLower(c) || isUpper(c) }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// Next returns the next token.
func (l *Lexer) Next() Token {
	for {
		c := l.peekByte()
		switch {
		case c == 0:
			return Token{Kind: TEOF, Line: l.line}
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
			continue
		case c == '\\' && l.peekAt(1) == '\n':
			l.pos += 2
			l.line++
			continue
		case c == '#':
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.pos++
			}
			continue
		case c == '\n':
			l.pos++
			tok := Token{Kind: TNewline, Line: l.line}
			l.line++
			return tok
		case c == ';':
			l.pos++
			return Token{Kind: TNewline, Line: l.line}
		case isDigit(c):
			return l.lexNumber()
		case c == '"':
			return l.lexString()
		case c == '\'':
			return l.lexRawString()
		case c == ':' && (isLetter(l.peekAt(1)) || l.peekAt(1) == '"'):
			return l.lexSymbol()
		case c == '@' && l.peekAt(1) == '@':
			l.pos += 2
			return l.lexName(TCvar, "@@")
		case c == '@':
			l.pos++
			return l.lexName(TIvar, "@")
		case c == '$':
			l.pos++
			return l.lexName(TGvar, "$")
		case isLower(c):
			tok := l.lexName(TIdent, "")
			// Identifiers may end in ? or !; `nil?` is an identifier, not
			// the keyword nil.
			if l.peekByte() == '?' || l.peekByte() == '!' {
				tok.Text += string(l.peekByte())
				l.pos++
			} else if keywords[tok.Text] {
				tok.Kind = TKeyword
			}
			return tok
		case isUpper(c):
			return l.lexName(TConst, "")
		default:
			return l.lexOp()
		}
	}
}

func (l *Lexer) lexName(kind TokKind, prefix string) Token {
	start := l.pos
	for isIdent(l.peekByte()) {
		l.pos++
	}
	if start == l.pos {
		return l.errorf("expected name after %q", prefix)
	}
	return Token{Kind: kind, Text: prefix + l.src[start:l.pos], Line: l.line}
}

func (l *Lexer) lexNumber() Token {
	start := l.pos
	for isDigit(l.peekByte()) || l.peekByte() == '_' {
		l.pos++
	}
	isFloat := false
	if l.peekByte() == '.' && isDigit(l.peekAt(1)) {
		isFloat = true
		l.pos++
		for isDigit(l.peekByte()) {
			l.pos++
		}
	}
	if l.peekByte() == 'e' || l.peekByte() == 'E' {
		save := l.pos
		l.pos++
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.pos++
		}
		if isDigit(l.peekByte()) {
			isFloat = true
			for isDigit(l.peekByte()) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	tok := Token{Line: l.line, Text: text}
	if isFloat {
		tok.Kind = TFloat
		if _, err := fmt.Sscanf(text, "%g", &tok.Float); err != nil {
			return l.errorf("bad float %q", text)
		}
	} else {
		tok.Kind = TInt
		if _, err := fmt.Sscanf(text, "%d", &tok.Int); err != nil {
			return l.errorf("bad integer %q", text)
		}
	}
	return tok
}

func (l *Lexer) lexString() Token {
	l.pos++ // opening quote
	var parts []StrPart
	var lit strings.Builder
	for {
		c := l.peekByte()
		switch c {
		case 0, '\n':
			return l.errorf("unterminated string")
		case '"':
			l.pos++
			parts = append(parts, StrPart{Lit: lit.String()})
			return Token{Kind: TString, Line: l.line, StrParts: parts}
		case '\\':
			l.pos++
			e := l.peekByte()
			l.pos++
			switch e {
			case 'n':
				lit.WriteByte('\n')
			case 't':
				lit.WriteByte('\t')
			case 'r':
				lit.WriteByte('\r')
			case '\\', '"', '\'', '#':
				lit.WriteByte(e)
			case '0':
				lit.WriteByte(0)
			default:
				return l.errorf("unknown escape \\%c", e)
			}
		case '#':
			if l.peekAt(1) == '{' {
				parts = append(parts, StrPart{Lit: lit.String()})
				lit.Reset()
				l.pos += 2
				depth := 1
				start := l.pos
				for depth > 0 {
					switch l.peekByte() {
					case 0, '\n':
						return l.errorf("unterminated interpolation")
					case '{':
						depth++
					case '}':
						depth--
					}
					if depth > 0 {
						l.pos++
					}
				}
				parts = append(parts, StrPart{Expr: l.src[start:l.pos], IsExpr: true})
				l.pos++ // closing }
			} else {
				lit.WriteByte('#')
				l.pos++
			}
		default:
			lit.WriteByte(c)
			l.pos++
		}
	}
}

func (l *Lexer) lexRawString() Token {
	l.pos++
	start := l.pos
	for l.peekByte() != '\'' {
		if l.peekByte() == 0 || l.peekByte() == '\n' {
			return l.errorf("unterminated string")
		}
		l.pos++
	}
	s := l.src[start:l.pos]
	l.pos++
	return Token{Kind: TString, Line: l.line, StrParts: []StrPart{{Lit: s}}}
}

func (l *Lexer) lexSymbol() Token {
	l.pos++ // colon
	if l.peekByte() == '"' {
		t := l.lexString()
		if len(t.StrParts) != 1 || t.StrParts[0].IsExpr {
			return l.errorf("interpolation not allowed in symbols")
		}
		return Token{Kind: TSymbol, Text: t.StrParts[0].Lit, Line: l.line}
	}
	start := l.pos
	for isIdent(l.peekByte()) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if l.peekByte() == '?' || l.peekByte() == '!' || l.peekByte() == '=' {
		text += string(l.peekByte())
		l.pos++
	}
	return Token{Kind: TSymbol, Text: text, Line: l.line}
}

// multi-character operators, longest first.
var operators = []string{
	"<=>", "**=", "<<=", ">>=", "...", "||=", "&&=",
	"==", "!=", "<=", ">=", "=>", "&&", "||", "<<", ">>", "**", "..",
	"+=", "-=", "*=", "/=", "%=", "=~",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "[", "]",
	"{", "}", ",", ".", "?", "&", "|", "^", "~",
}

func (l *Lexer) lexOp() Token {
	rest := l.src[l.pos:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			return Token{Kind: TOp, Text: op, Line: l.line}
		}
	}
	return l.errorf("unexpected character %q", l.peekByte())
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == TEOF {
			break
		}
	}
	return toks, l.Err()
}
