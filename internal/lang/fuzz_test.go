package lang

import (
	"testing"
)

// fuzzSeeds is the shared seed corpus: every front-end construct the
// workloads exercise, plus inputs that previously needed care (unterminated
// strings, deep nesting, interpolation, comments).
var fuzzSeeds = []string{
	"",
	"x = 1 + 2 * 3\nputs x",
	"def f(a, b)\n  a < b ? a : b\nend\nputs f(3, 4)",
	"class Foo\n  def initialize(n)\n    @n = n\n  end\n  def get\n    @n\n  end\nend",
	"i = 0\nwhile i < 10\n  i += 1\nend",
	"a = [1, 2.5, \"s\", :sym, nil, true]\nh = {\"k\" => 1, \"j\" => 2}",
	"t = Thread.new(1) do |x|\n  x + 1\nend\nt.join",
	"m = Mutex.new\nm.synchronize do\n  $g = ($g || 0) + 1\nend",
	"s = \"a#{1 + 2}b#{\"nested #{3}\"}c\"",
	"(1..10).each do |i|\n  next if i == 3\n  break if i > 8\nend",
	"unless x.nil?\n  puts x\nelse\n  puts \"nil\"\nend",
	"# comment only\n",
	"\"unterminated",
	"def broken(",
	"if true",
	"a[1][2] = b[3]",
	"x = -1e10\ny = 0.5\nz = 1_000",
	"@@cv = 1\nFOO = 2\n$bar = 3",
	"a, b = 1, 2",
	"puts 1 if 2 > 1",
	"case\nwhen 1\nend",
	"((((((((((1))))))))))",
	"x ||= 5\ny &&= 6",
	"%w[a b c]",
	"begin\n  f\nrescue\n  g\nend",
}

// FuzzTokenize checks the lexer never panics and always terminates; invalid
// input must surface as an error, not a crash or hang.
func FuzzTokenize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		// Tokenizing the same input again must give the same stream.
		again, err2 := Tokenize(src)
		if err2 != nil {
			t.Fatalf("second tokenize failed: %v", err2)
		}
		if len(again) != len(toks) {
			t.Fatalf("tokenize not deterministic: %d vs %d tokens", len(toks), len(again))
		}
	})
}

// FuzzParse checks the parser never panics: every input either parses or
// returns an error, and a successful parse is repeatable.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
		if _, err := Parse(src); err != nil {
			t.Fatalf("second parse failed: %v", err)
		}
	})
}
